//! Every generated benchmark must be a valid mini-C program, terminate in
//! the reference interpreter, and (sampled, for test speed) produce the
//! interpreter's checksum through the full pipeline at every OM level and in
//! both compile modes.

use om_core::{optimize_and_link, OmLevel};
use om_linker::Linker;
use om_sim::run_image;
use om_workloads::build::{build, interp_reference, sources, CompileMode};
use om_workloads::spec;

const INTERP_STEPS: u64 = 200_000_000;
const SIM_STEPS: u64 = 80_000_000;

#[test]
fn all_benchmarks_generate_valid_programs() {
    for s in spec::all() {
        let q = spec::quick(&s);
        for (name, src) in sources(&q) {
            let unit = om_minic::parse_unit(&name, &src)
                .unwrap_or_else(|e| panic!("{}/{name}: {e}\n{src}", s.name));
            om_minic::check_unit(&unit).unwrap_or_else(|e| panic!("{}/{name}: {e}", s.name));
        }
    }
}

#[test]
fn all_benchmarks_terminate_in_the_interpreter() {
    for s in spec::all() {
        let q = spec::quick(&s);
        let r = interp_reference(&q, INTERP_STEPS)
            .unwrap_or_else(|e| panic!("{}: {e}", s.name));
        // Checksums are nontrivial and deterministic.
        let r2 = interp_reference(&q, INTERP_STEPS).unwrap();
        assert_eq!(r, r2, "{}", s.name);
    }
}

#[test]
fn generation_is_deterministic() {
    for s in [spec::by_name("spice").unwrap(), spec::by_name("li").unwrap()] {
        assert_eq!(sources(&s), sources(&s));
    }
}

/// The full pipeline oracle on a sample of benchmarks (the whole suite runs
/// in the benchmark harness; here a cross-section keeps `cargo test` fast).
#[test]
fn sampled_benchmarks_agree_across_all_build_variants() {
    for name in ["compress", "li", "spice", "tomcatv"] {
        let s = spec::quick(&spec::by_name(name).unwrap());
        let expected = interp_reference(&s, INTERP_STEPS).unwrap();

        for mode in [CompileMode::Each, CompileMode::All] {
            let built = build(&s, mode).unwrap();

            // Standard link.
            let mut linker = Linker::new();
            for o in built.objects.clone() {
                linker = linker.object(o);
            }
            for l in built.libs.iter() {
                linker = linker.library(l.clone());
            }
            let (image, _) = linker.link().unwrap_or_else(|e| panic!("{name}: {e}"));
            let r = run_image(&image, SIM_STEPS).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(r.result, expected, "{name} {} standard link", mode.name());

            // All OM levels.
            for level in [OmLevel::None, OmLevel::Simple, OmLevel::Full, OmLevel::FullSched] {
                let out = optimize_and_link(&built.objects, &built.libs, level)
                    .unwrap_or_else(|e| panic!("{name} {} {}: {e}", mode.name(), level.name()));
                let r = run_image(&out.image, SIM_STEPS)
                    .unwrap_or_else(|e| panic!("{name} {} {}: {e}", mode.name(), level.name()));
                assert_eq!(
                    r.result,
                    expected,
                    "{name} {} {}",
                    mode.name(),
                    level.name()
                );
            }
        }
    }
}

#[test]
fn workload_shapes_exercise_the_paper_features() {
    // The generated programs must actually contain the constructs whose
    // optimization the paper measures.
    let s = spec::quick(&spec::by_name("li").unwrap());
    let built = build(&s, CompileMode::Each).unwrap();
    let out = optimize_and_link(&built.objects, &built.libs, OmLevel::Full).unwrap();
    let st = out.stats;
    assert!(st.addr_loads_total > 50, "{st:?}");
    assert!(st.calls_total > 20, "{st:?}");
    assert!(st.calls_indirect > 0, "li uses procedure variables: {st:?}");
    assert!(st.gat_slots_before > 20, "{st:?}");
}

#[test]
fn generated_sources_roundtrip_through_the_printer() {
    // Broad grammar coverage for the pretty-printer: every generated module
    // of every benchmark (quick mode) must reach a printing fixpoint.
    for s in spec::all() {
        let q = spec::quick(&s);
        for (name, src) in sources(&q) {
            let u1 = om_minic::parse_unit(&name, &src).unwrap();
            let printed = om_minic::printer::print_unit(&u1);
            let u2 = om_minic::parse_unit(&name, &printed)
                .unwrap_or_else(|e| panic!("{}/{name}: {e}", s.name));
            assert_eq!(
                om_minic::printer::print_unit(&u2),
                printed,
                "{}/{name}",
                s.name
            );
        }
    }
}
