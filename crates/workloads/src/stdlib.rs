//! The pre-compiled standard library every benchmark links against.
//!
//! This reproduces a key property of the paper's experimental setup: library
//! code was compiled long before the applications ("In fact, we have no
//! sources for the library routines"), so compile-time interprocedural
//! optimization can do nothing about calls into it — but OM sees the library
//! members "in exactly the same way that it handles user code". The modules
//! deliberately call each other: in the paper's `spice`, "statically half
//! the calls are from one library routine to another".
//!
//! Everything is ordinary mini-C. `__divq`/`__remq` are the divide millicode
//! the Alpha needs because it has no integer-divide instruction; their
//! conventions (`x/0 == 0`, `x%0 == x`) match the reference interpreter.

/// `(module name, source)` for every library member.
pub const STDLIB_SOURCES: &[(&str, &str)] = &[
    (
        "divmod",
        "
        int __divq(int a, int b) {
            if (b == 0) { return 0; }
            if (a == 0x8000000000000000) {
                // Split MIN (which cannot be negated) into halves.
                int q2 = __divq(a >> 1, b);
                int r2 = (a >> 1) - q2 * b;
                return q2 * 2 + __divq(r2 * 2, b);
            }
            if (b == 0x8000000000000000) { return 0; }
            int neg = 0;
            if (a < 0) { a = 0 - a; neg = 1 - neg; }
            if (b < 0) { b = 0 - b; neg = 1 - neg; }
            int q = 0;
            if (b > 0x4000000000000000) {
                if (a >= b) { q = 1; }
                if (neg) { return 0 - q; }
                return q;
            }
            int r = 0;
            int i = 62;
            for (i = 62; i >= 0; i = i - 1) {
                r = (r << 1) | ((a >> i) & 1);
                if (r >= b) { r = r - b; q = q + (1 << i); }
            }
            if (neg) { return 0 - q; }
            return q;
        }
        int __remq(int a, int b) {
            if (b == 0) { return a; }
            return a - __divq(a, b) * b;
        }",
    ),
    (
        "mathint",
        "
        int abs_i(int x) { if (x < 0) { return 0 - x; } return x; }
        int min_i(int a, int b) { if (a < b) { return a; } return b; }
        int max_i(int a, int b) { if (a > b) { return a; } return b; }
        int clamp_i(int x, int lo, int hi) { return max_i(lo, min_i(x, hi)); }
        int sign_i(int x) { if (x > 0) { return 1; } if (x < 0) { return -1; } return 0; }
        int gcd_i(int a, int b) {
            a = abs_i(a);
            b = abs_i(b);
            while (b != 0) { int t = a % b; a = b; b = t; }
            return a;
        }
        int isqrt(int x) {
            if (x <= 0) { return 0; }
            int r = x;
            int last = 0;
            int n = 0;
            for (n = 0; n < 40; n = n + 1) {
                last = r;
                r = (r + x / r) / 2;
                if (r == last) { return r; }
            }
            return r;
        }
        int ipow(int base, int e) {
            int r = 1;
            while (e > 0) {
                if (e & 1) { r = r * base; }
                base = base * base;
                e = e >> 1;
            }
            return r;
        }",
    ),
    (
        "mathf",
        "
        float fabs_f(float x) { if (x < 0.0) { return 0.0 - x; } return x; }
        float fmin_f(float a, float b) { if (a < b) { return a; } return b; }
        float fmax_f(float a, float b) { if (a > b) { return a; } return b; }
        float sqrt_f(float x) {
            if (x <= 0.0) { return 0.0; }
            float r = x;
            int n = 0;
            for (n = 0; n < 30; n = n + 1) { r = (r + x / r) * 0.5; }
            return r;
        }
        float exp_f(float x) {
            // Bounded series; adequate for benchmark arithmetic.
            float term = 1.0;
            float sum = 1.0;
            int n = 1;
            x = fmax_f(-8.0, fmin_f(x, 8.0));
            for (n = 1; n < 18; n = n + 1) { term = term * x / float(n); sum = sum + term; }
            return sum;
        }
        float sin_f(float x) {
            // Clamp (keeps the crude range reduction bounded), then reduce
            // and evaluate a short Taylor series.
            x = fmax_f(-512.0, fmin_f(x, 512.0));
            while (x > 3.141592653589793) { x = x - 6.283185307179586; }
            while (x < -3.141592653589793) { x = x + 6.283185307179586; }
            float x2 = x * x;
            return x * (1.0 - x2 / 6.0 * (1.0 - x2 / 20.0 * (1.0 - x2 / 42.0)));
        }
        float lerp_f(float a, float b, float t) { return a + (b - a) * t; }",
    ),
    (
        "hash",
        "
        int mix64(int x) {
            x = x ^ (x >> 30);
            x = x * 0x4F2162361A852F2B;
            x = x ^ (x >> 27);
            x = x * 0x465A4A7D4FD1CC2F;
            x = x ^ (x >> 31);
            return x;
        }
        int hash2(int a, int b) { return mix64(a ^ mix64(b)); }
        static int cksum_state;
        int cksum_reset() { cksum_state = 0; return 0; }
        int cksum_add(int x) {
            cksum_state = mix64(cksum_state ^ x) + x;
            return cksum_state;
        }
        int cksum_get() { return cksum_state & 0xFFFFFFFF; }",
    ),
    (
        "rng",
        "
        extern int mix64(int);
        static int rng_state = 0x9E3779B97F4A7C15;
        int rng_seed(int s) { rng_state = mix64(s) | 1; return rng_state; }
        int rng_next() {
            rng_state = rng_state * 6364136223846793005 + 1442695040888963407;
            return (rng_state >> 17) & 0x7FFFFFFF;
        }
        int rng_range(int n) {
            if (n <= 0) { return 0; }
            return rng_next() % n;
        }",
    ),
    (
        "stats",
        "
        extern int abs_i(int);
        extern int isqrt(int);
        static int s_count;
        static int s_sum;
        static int s_min;
        static int s_max;
        int stat_reset() { s_count = 0; s_sum = 0; s_min = 0; s_max = 0; return 0; }
        int stat_push(int x) {
            if (s_count == 0) { s_min = x; s_max = x; }
            if (x < s_min) { s_min = x; }
            if (x > s_max) { s_max = x; }
            s_count = s_count + 1;
            s_sum = s_sum + x;
            return s_count;
        }
        int stat_mean() { if (s_count == 0) { return 0; } return s_sum / s_count; }
        int stat_spread() { return abs_i(s_max - s_min); }
        int stat_rms_ish() { return isqrt(abs_i(s_sum)); }",
    ),
    (
        "sort",
        "
        extern int min_i(int, int);
        static int heap[128];
        static int heap_n;
        int pq_reset() { heap_n = 0; return 0; }
        int pq_push(int x) {
            if (heap_n >= 128) { return -1; }
            heap[heap_n] = x;
            int i = heap_n;
            heap_n = heap_n + 1;
            while (i > 0) {
                int parent = (i - 1) / 2;
                if (heap[parent] <= heap[i]) { return i; }
                int t = heap[parent];
                heap[parent] = heap[i];
                heap[i] = t;
                i = parent;
            }
            return 0;
        }
        int pq_pop() {
            if (heap_n == 0) { return -1; }
            int top = heap[0];
            heap_n = heap_n - 1;
            heap[0] = heap[heap_n];
            int i = 0;
            while (1) {
                int l = 2 * i + 1;
                int r = 2 * i + 2;
                int best = i;
                if (l < heap_n && heap[l] < heap[best]) { best = l; }
                if (r < heap_n && heap[r] < heap[best]) { best = r; }
                if (best == i) { return top; }
                int t = heap[best];
                heap[best] = heap[i];
                heap[i] = t;
            }
            return top;
        }",
    ),
];

#[cfg(test)]
mod tests {
    use super::*;
    use om_minic::interp::run_sources;

    fn with_main(main: &str) -> i64 {
        let mut sources: Vec<(&str, &str)> = STDLIB_SOURCES.to_vec();
        sources.push(("main", main));
        run_sources(&sources, 50_000_000).unwrap()
    }

    #[test]
    fn stdlib_parses_and_checks() {
        for (name, src) in STDLIB_SOURCES {
            let unit = om_minic::parse_unit(name, src)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            om_minic::check_unit(&unit).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn division_millicode_matches_interpreter_builtin() {
        assert_eq!(
            with_main(
                "int main() { return 17/5 * 1000000 + (-17)/5 * -10000 + 17%5 * 100 + (-17)%5 * -1; }"
            ),
            3 * 1000000 + 3 * 10000 + 2 * 100 + 2
        );
        assert_eq!(with_main("int main() { return 7 / 0 + 7 % 0; }"), 7);
        assert_eq!(
            with_main("int main() { return 0x7FFFFFFFFFFFFFFF / 3; }"),
            0x7FFF_FFFF_FFFF_FFFFi64 / 3
        );
    }

    #[test]
    fn math_helpers() {
        assert_eq!(with_main("extern int isqrt(int); int main() { return isqrt(1000000); }"), 1000);
        assert_eq!(with_main("extern int gcd_i(int,int); int main() { return gcd_i(84, -36); }"), 12);
        assert_eq!(with_main("extern int ipow(int,int); int main() { return ipow(3, 7); }"), 2187);
        assert_eq!(
            with_main("extern int clamp_i(int,int,int); int main() { return clamp_i(50, 0, 10) + clamp_i(-5, 0, 10); }"),
            10
        );
    }

    #[test]
    fn float_helpers() {
        let r = with_main("extern float sqrt_f(float); int main() { return int(sqrt_f(2.0) * 1000000.0); }");
        assert!((r - 1414213).abs() <= 1, "sqrt_f(2) ~ 1.414213: got {r}");
        let r = with_main("extern float sin_f(float); int main() { return int(sin_f(1.5707963267948966) * 1000.0); }");
        assert!((r - 1000).abs() <= 5, "sin(pi/2) ~ 1: got {r}");
        let r = with_main("extern float exp_f(float); int main() { return int(exp_f(1.0) * 1000.0); }");
        assert!((r - 2718).abs() <= 2, "e ~ 2.718: got {r}");
    }

    #[test]
    fn stateful_modules() {
        let r = with_main(
            "extern int cksum_reset(); extern int cksum_add(int); extern int cksum_get();
             int main() {
               cksum_reset();
               int i = 0;
               for (i = 0; i < 10; i = i + 1) { cksum_add(i * 37); }
               return cksum_get();
             }",
        );
        assert_ne!(r, 0);
        let r2 = with_main(
            "extern int cksum_reset(); extern int cksum_add(int); extern int cksum_get();
             int main() {
               cksum_reset();
               int i = 0;
               for (i = 0; i < 10; i = i + 1) { cksum_add(i * 37); }
               return cksum_get();
             }",
        );
        assert_eq!(r, r2, "deterministic");
    }

    #[test]
    fn priority_queue_sorts() {
        let r = with_main(
            "extern int pq_reset(); extern int pq_push(int); extern int pq_pop();
             int main() {
               pq_reset();
               pq_push(5); pq_push(1); pq_push(9); pq_push(3); pq_push(7);
               int out = 0;
               int i = 0;
               for (i = 0; i < 5; i = i + 1) { out = out * 10 + pq_pop(); }
               return out;
             }",
        );
        assert_eq!(r, 13579);
    }

    #[test]
    fn rng_is_deterministic_and_lib_calls_lib() {
        let r = with_main(
            "extern int rng_seed(int); extern int rng_range(int);
             int main() {
               rng_seed(42);
               int s = 0;
               int i = 0;
               for (i = 0; i < 100; i = i + 1) { s = s + rng_range(1000); }
               return s;
             }",
        );
        assert!(r > 0 && r < 100 * 1000);
    }
}
