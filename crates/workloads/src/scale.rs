//! The `--scale N` workload axis: deterministic 1000+-module,
//! 100k+-procedure programs whose literal pools overflow single-GAT reach,
//! plus the scenario packs that ride on it (shared-library images and
//! archive-heavy links with deep library-to-library call chains).
//!
//! The paper's figures stop at SPEC92-shaped programs; the subsystems built
//! since (multi-GAT layout, the coalescing relink cache, the block-cache
//! simulator) only show their worth on programs big and hostile enough to
//! stress them. The generator here is arithmetic-deterministic — no RNG at
//! all — so every scale point is bit-reproducible across machines and the
//! bench rows it produces can be drift-gated.
//!
//! # Shape
//!
//! A scale-N program is `N` user modules plus a driver:
//!
//! * every module defines [`ScaleSpec::globals_per_module`] scalars — sized
//!   via [`overflow_slots_per_module`] so the *sum* of the per-module
//!   literal pools always exceeds [`GAT_GROUP_CAPACITY`], forcing a GP
//!   group split at any `N`;
//! * every module defines [`ScaleSpec::procs_per_module`] procedures: one
//!   exported accessor, a within-module call chain that touches every
//!   global, and one exported entry that calls the chain, the previous
//!   module's accessor (cross-module traffic), and a library routine;
//! * `main` calls every module's entry and folds the results through the
//!   stdlib checksum, so a single misrelocated slot anywhere in the image
//!   changes the exit value.
//!
//! Call chains nest only *within* a module (the interpreter oracle is a
//! tree-walker, so cross-module entry chains would grow its stack with
//! `N`).
//!
//! # Compile-all at scale
//!
//! A monolithic compile-all merge of a scale program would put more than
//! one group's worth of literals into a *single* module, which the layout
//! rules cannot split (groups break only at module boundaries) — exactly
//! the wall real LTO deployments hit on Mozilla-sized links. [`build_scale`]
//! therefore partitions compile-all into slot-budgeted chunks
//! ([`CHUNK_SLOT_BUDGET`]), keeping interprocedural optimization within
//! each partition while every partition still fits a GAT group.

use crate::build::{stdlib_libs, BuildError, BuiltBenchmark, CompileMode};
use crate::stdlib::STDLIB_SOURCES;
use om_codegen::{compile_all_sources, compile_source, crt0, CompileOpts};
use om_linker::GAT_GROUP_CAPACITY;
use om_objfile::{Archive, LitaEntry, Module, SymId, Symbol};

/// Default procedures per module (entry + accessor + chain). 1000 modules
/// at the default hit the 100k-procedure mark of ROADMAP item 5.
pub const PROCS_PER_MODULE: usize = 100;

/// Literal-slot budget per compile-all partition: comfortably under
/// [`GAT_GROUP_CAPACITY`] so a merged chunk module never needs a split the
/// layout rules cannot perform.
pub const CHUNK_SLOT_BUDGET: usize = 6000;

/// Loop iterations of the driver: two is enough for read-after-write
/// effects on every module's globals to reach the checksum.
pub const SCALE_ITERS: u64 = 2;

/// The smallest per-module literal-pool size that guarantees `modules`
/// modules *together* overflow one GAT group (`modules * result >`
/// [`GAT_GROUP_CAPACITY`]), forcing a GP group split at link time.
///
/// Shared by the scale generator and `tests/multigat.rs`, so the test and
/// the generator cannot drift on the 8191-slot boundary.
pub fn overflow_slots_per_module(modules: usize) -> usize {
    GAT_GROUP_CAPACITY / modules.max(1) + 1
}

/// Pads a module's GAT with `n` never-referenced slots (each naming its own
/// fresh common symbol, so none of them merge across modules).
///
/// # Panics
///
/// Panics if the padded module fails validation (test-helper semantics).
pub fn pad_gat(m: &mut Module, n: usize, tag: &str) {
    for i in 0..n {
        let id = SymId(m.symbols.len() as u32);
        m.symbols.push(Symbol::common(format!("pad_{tag}_{i}"), 8, 8));
        m.lita.push(LitaEntry { sym: id, addend: 0 });
    }
    m.validate().unwrap();
}

/// Shape of one scale point. Fields are public so tests can shrink the
/// per-module work (debug builds) while keeping the overflow guarantee.
#[derive(Debug, Clone)]
pub struct ScaleSpec {
    /// Workload name (`scale{N}` from [`scale_spec`]).
    pub name: String,
    /// User modules (excluding crt0 and the driver).
    pub modules: usize,
    /// Procedures per module; at least 3 (accessor, chain, entry).
    pub procs_per_module: usize,
    /// Scalar globals per module; [`scale_spec`] derives this from
    /// [`overflow_slots_per_module`] so the program always splits.
    pub globals_per_module: usize,
    /// Driver loop iterations.
    pub iters: u64,
}

/// The canonical scale point for `N` user modules: default procedure count,
/// overflow-guaranteeing globals, two driver iterations.
///
/// # Panics
///
/// Panics if `n < 2` (a single module cannot split) or `n > 4000` (the
/// driver's own literal pool must stay within one GAT group).
pub fn scale_spec(n: usize) -> ScaleSpec {
    assert!((2..=4000).contains(&n), "scale N must be in 2..=4000, got {n}");
    ScaleSpec {
        name: format!("scale{n}"),
        modules: n,
        procs_per_module: PROCS_PER_MODULE,
        globals_per_module: overflow_slots_per_module(n),
        iters: SCALE_ITERS,
    }
}

/// Total procedures across the user modules (the driver adds one more).
pub fn total_procs(spec: &ScaleSpec) -> usize {
    spec.modules * spec.procs_per_module
}

fn module_source(spec: &ScaleSpec, m: usize) -> String {
    let g_count = spec.globals_per_module;
    let p = spec.procs_per_module.max(3);
    let chain = p - 2; // procs 1..=chain; 0 is the accessor, p-1 the entry
    let mut s = String::with_capacity(64 * (g_count + p));

    s.push_str("extern int mix64(int);\n");
    if m > 0 {
        s.push_str(&format!("extern int a{}(int, int);\n", m - 1));
    }

    // Globals: every fifth is an initialized strong definition (lands in
    // the data section), the rest are commons — both kinds occupy GAT
    // slots, and the mix exercises common-merge ordering at scale.
    for g in 0..g_count {
        if g % 5 == 4 {
            s.push_str(&format!("int g{m}_{g} = {};\n", (m * 31 + g * 7) % 97));
        } else {
            s.push_str(&format!("int g{m}_{g};\n"));
        }
    }

    // Exported accessor: the cross-module target of module m+1's entry.
    s.push_str(&format!(
        "int a{m}(int x, int y) {{ return x * {} + (y ^ {}); }}\n",
        (m % 7) + 3,
        (m * 131 + 77) & 1023
    ));

    // Within-module call chain; proc j reads the globals assigned to it and
    // writes one, so every global is live (GAT reduction cannot drop it).
    for j in 1..=chain {
        let linkage = if j % 7 == 3 { "static int" } else { "int" };
        s.push_str(&format!("{linkage} p{m}_{j}(int x, int y) {{\n"));
        s.push_str(&format!("  int t = x * 3 + y + {j};\n"));
        let mut g = j - 1;
        while g < g_count {
            s.push_str(&format!("  t = t + g{m}_{g};\n"));
            g += chain;
        }
        if g_count > 0 {
            let gw = (j - 1) % g_count;
            s.push_str(&format!("  g{m}_{gw} = g{m}_{gw} + (t & 8191);\n"));
        }
        let callee = if j == 1 {
            format!("a{m}")
        } else {
            format!("p{m}_{}", j - 1)
        };
        s.push_str(&format!(
            "  t = t ^ {callee}(t & 1023, y + {});\n  return t;\n}}\n",
            j % 7
        ));
    }

    // Exported entry: chain + library call + previous module's accessor.
    let prev = if m > 0 { m - 1 } else { m };
    s.push_str(&format!(
        "int e{m}(int x, int y) {{\n  int t = x ^ (y * 5 + {});\n",
        m % 251
    ));
    s.push_str(&format!("  t = t + p{m}_{chain}(x & 4095, y & 2047);\n"));
    s.push_str("  t = t ^ mix64(t & 65535);\n");
    s.push_str(&format!("  t = t + a{prev}(t & 511, y);\n  return t;\n}}\n"));
    s
}

fn main_source(spec: &ScaleSpec) -> String {
    let mut s = String::with_capacity(48 * spec.modules);
    s.push_str("extern int cksum_reset(); extern int cksum_add(int); extern int cksum_get();\n");
    for m in 0..spec.modules {
        s.push_str(&format!("extern int e{m}(int, int);\n"));
    }
    s.push_str("int main() {\n  int t = 1;\n  int i = 0;\n  cksum_reset();\n");
    s.push_str(&format!("  for (i = 0; i < {}; i = i + 1) {{\n", spec.iters));
    for m in 0..spec.modules {
        s.push_str(&format!("    t = t + e{m}(i + {m}, t & 65535);\n"));
    }
    s.push_str("    cksum_add(t);\n  }\n  return cksum_get() ^ (t & 65535);\n}\n");
    s
}

/// Generates the scale program's user sources: `N` modules followed by the
/// driver (`scale_main`). Purely arithmetic — same spec, same bytes.
pub fn sources(spec: &ScaleSpec) -> Vec<(String, String)> {
    let mut out = Vec::with_capacity(spec.modules + 1);
    for m in 0..spec.modules {
        out.push((format!("s{m:04}"), module_source(spec, m)));
    }
    out.push(("scale_main".to_string(), main_source(spec)));
    out
}

/// How many user modules one compile-all partition may merge before its
/// literal pool risks outgrowing a single GAT group.
pub fn chunk_modules(spec: &ScaleSpec) -> usize {
    // Per-module slot estimate: one per global, one per procedure (PV
    // slots dominate at scale), plus a few for externs and GP bookkeeping.
    let est = spec.globals_per_module + spec.procs_per_module + 4;
    (CHUNK_SLOT_BUDGET / est.max(1)).max(1)
}

/// Compiles a scale point. Compile-each mirrors [`crate::build::build`];
/// compile-all is *partitioned* (see the module docs) with the driver kept
/// as its own unit, the way a real system LTO-partitions an application
/// against its libraries.
///
/// # Errors
///
/// Propagates generator-output compile errors (a generator bug if ever hit).
pub fn build_scale(spec: &ScaleSpec, mode: CompileMode) -> Result<BuiltBenchmark, BuildError> {
    let srcs = sources(spec);
    let opts = CompileOpts::o2();
    let mut objects = vec![crt0::module()?];
    match mode {
        CompileMode::Each => {
            for (name, src) in &srcs {
                objects.push(compile_source(name, src, &opts)?);
            }
        }
        CompileMode::All => {
            let (driver, user) = srcs.split_last().expect("sources are never empty");
            for (ci, chunk) in user.chunks(chunk_modules(spec)).enumerate() {
                let refs: Vec<(&str, &str)> =
                    chunk.iter().map(|(n, s)| (n.as_str(), s.as_str())).collect();
                objects.push(compile_all_sources(
                    &format!("{}_all{ci}", spec.name),
                    &refs,
                    &opts,
                )?);
            }
            objects.push(compile_source(&driver.0, &driver.1, &opts)?);
        }
    }
    Ok(BuiltBenchmark {
        name: spec.name.clone(),
        mode,
        objects,
        libs: stdlib_libs()?,
    })
}

/// Reference checksum from the mini-C interpreter (the behavioral oracle,
/// independent of the whole object-code pipeline).
///
/// # Errors
///
/// Returns a message on compile or runtime errors.
pub fn interp_reference_scale(spec: &ScaleSpec, steps: u64) -> Result<i64, String> {
    let mut all = sources(spec);
    for (n, s) in STDLIB_SOURCES {
        all.push((n.to_string(), s.to_string()));
    }
    let refs: Vec<(&str, &str)> = all.iter().map(|(n, s)| (n.as_str(), s.as_str())).collect();
    om_minic::interp::run_sources(&refs, steps)
}

/// The shared-library scenario pack: the subset of entries a dynamic image
/// must treat as preemptible (every sixteenth module's entry, and always at
/// least one), promoting `examples/shared_library.rs` into a measured
/// variant of the scale workload.
pub fn preemptible_entries(spec: &ScaleSpec) -> Vec<String> {
    let mut out: Vec<String> = (0..spec.modules)
        .filter(|m| m % 16 == 7)
        .map(|m| format!("e{m}"))
        .collect();
    if out.is_empty() {
        out.push("e0".to_string());
    }
    out
}

/// The archive-heavy scenario pack: `archives` archives of `members_per`
/// live members each, chained caller-to-callee straight through every
/// archive (member `l` of archive `k` calls member `l+1`, the last member
/// calls the first member of archive `k+1`), plus two never-referenced
/// decoy members per archive that demand-driven selection must skip.
///
/// Chains point *forward* only: the resolver makes a single pass over the
/// archive list, so a backward reference would be a genuine user error, not
/// a stress case.
#[derive(Debug, Clone)]
pub struct ArchivePack {
    /// crt0 + the application object.
    pub objects: Vec<Module>,
    /// The archive chain, in link order.
    pub libs: Vec<Archive>,
    /// Application + member sources, for the interpreter oracle.
    pub sources: Vec<(String, String)>,
    /// Depth of the library-to-library call chain.
    pub chain_depth: usize,
    /// Members actually reachable from the application.
    pub live_members: usize,
    /// All members, decoys included.
    pub total_members: usize,
}

impl ArchivePack {
    /// Reference result from the mini-C interpreter.
    ///
    /// # Errors
    ///
    /// Returns a message on compile or runtime errors.
    pub fn expected(&self, steps: u64) -> Result<i64, String> {
        let refs: Vec<(&str, &str)> =
            self.sources.iter().map(|(n, s)| (n.as_str(), s.as_str())).collect();
        om_minic::interp::run_sources(&refs, steps)
    }
}

/// Decoy members per archive (defined but never called).
pub const ARCHIVE_DECOYS: usize = 2;

fn member_source(k: usize, l: usize, archives: usize, members_per: usize) -> String {
    let a = (k * 13 + l * 5 + 3) & 255;
    let b = (k * 7 + l * 11 + 1) & 1023;
    let sh = (l % 5) + 1;
    let terminal = k + 1 == archives && l + 1 == members_per;
    let mut s = String::new();
    if !terminal {
        let (nk, nl) = if l + 1 < members_per { (k, l + 1) } else { (k + 1, 0) };
        s.push_str(&format!("extern int lib{nk}_{nl}(int);\n"));
        s.push_str(&format!(
            "int lib{k}_{l}(int x) {{\n  int v = x * {a} + {b};\n  v = v ^ (v >> {sh});\n  \
             return lib{nk}_{nl}(v & 1048575) + {};\n}}\n",
            (k + l) & 127
        ));
    } else {
        s.push_str(&format!(
            "int lib{k}_{l}(int x) {{\n  int v = x * {a} + {b};\n  return v ^ (v >> {sh});\n}}\n"
        ));
    }
    s
}

/// Builds the archive pack. `archives * members_per` is the chain depth and
/// must stay at or under 64 (the interpreter oracle is a tree-walker; the
/// whole chain nests on its stack).
///
/// # Errors
///
/// Propagates generator-output compile errors.
///
/// # Panics
///
/// Panics if the requested chain depth exceeds 64.
pub fn archive_pack(
    archives: usize,
    members_per: usize,
    iters: u64,
) -> Result<ArchivePack, BuildError> {
    assert!(archives >= 1 && members_per >= 1);
    let depth = archives * members_per;
    assert!(depth <= 64, "chain depth {depth} would stress the interpreter stack");
    let opts = CompileOpts::o2();
    let mut sources = Vec::new();

    let app = format!(
        "extern int lib0_0(int);\nint main() {{\n  int t = 5;\n  int i = 0;\n  \
         for (i = 0; i < {iters}; i = i + 1) {{ t = t + lib0_0(i + (t & 255)); }}\n  \
         return t & 16777215;\n}}\n"
    );
    sources.push(("app".to_string(), app.clone()));

    let mut libs = Vec::with_capacity(archives);
    for k in 0..archives {
        let mut ar = Archive::new(&format!("libchain{k}"));
        for l in 0..members_per {
            let src = member_source(k, l, archives, members_per);
            ar.add(compile_source(&format!("lib{k}_{l}"), &src, &opts)?)?;
            sources.push((format!("lib{k}_{l}"), src));
        }
        for d in 0..ARCHIVE_DECOYS {
            let src = format!("int dead{k}_{d}(int x) {{ return x * {} + {k}; }}\n", d + 3);
            ar.add(compile_source(&format!("dead{k}_{d}"), &src, &opts)?)?;
            sources.push((format!("dead{k}_{d}"), src));
        }
        libs.push(ar);
    }

    let objects = vec![crt0::module()?, compile_source("app", &app, &opts)?];
    Ok(ArchivePack {
        objects,
        libs,
        sources,
        chain_depth: depth,
        live_members: archives * members_per,
        total_members: archives * (members_per + ARCHIVE_DECOYS),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overflow_helper_always_overflows() {
        for n in [1, 2, 3, 16, 100, 1000, 4000] {
            let per = overflow_slots_per_module(n);
            assert!(n * per > GAT_GROUP_CAPACITY, "n={n} per={per}");
        }
    }

    #[test]
    fn scale_spec_counts() {
        let s = scale_spec(1000);
        assert!(total_procs(&s) >= 100_000);
        assert_eq!(s.modules, 1000);
        assert!(s.modules * s.globals_per_module > GAT_GROUP_CAPACITY);
    }

    #[test]
    fn small_scale_point_builds_and_agrees_with_interp() {
        // Tiny point (debug-friendly) with the structural invariants of the
        // real thing: overflow globals, both compile modes, chunked merge.
        let spec = ScaleSpec {
            name: "scale_t".to_string(),
            modules: 4,
            procs_per_module: 6,
            globals_per_module: 24,
            iters: 2,
        };
        let each = build_scale(&spec, CompileMode::Each).unwrap();
        assert_eq!(each.objects.len(), spec.modules + 2); // crt0 + N + driver
        let all = build_scale(&spec, CompileMode::All).unwrap();
        assert!(all.objects.len() < each.objects.len());
        assert!(interp_reference_scale(&spec, 10_000_000).is_ok());
    }

    #[test]
    fn archive_pack_shape() {
        let p = archive_pack(3, 4, 2).unwrap();
        assert_eq!(p.chain_depth, 12);
        assert_eq!(p.libs.len(), 3);
        assert_eq!(p.total_members, 3 * (4 + ARCHIVE_DECOYS));
        assert!(p.expected(10_000_000).is_ok());
    }
}
