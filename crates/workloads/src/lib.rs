//! Synthetic SPEC92 stand-in workloads for the OM reproduction.
//!
//! The paper evaluates on the 19 programs of SPEC92 (minus `gcc`) compiled
//! two ways and linked with pre-compiled libraries. This crate generates 19
//! deterministic mini-C benchmarks with matching structural character (see
//! [`spec`]), a pre-compiled standard library ([`stdlib`]), and build
//! drivers for the paper's compile-each and compile-all variants
//! ([`build`]).
//!
//! # Example
//!
//! ```
//! use om_workloads::{build::{build, CompileMode}, spec};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut s = spec::by_name("compress").unwrap();
//! s.iters = 5; // keep the doc test fast
//! let built = build(&spec::quick(&s), CompileMode::Each)?;
//! assert!(built.objects.len() > 2); // crt0 + several user modules
//! assert_eq!(built.libs.len(), 1);
//! # Ok(())
//! # }
//! ```

pub mod build;
pub mod gen;
pub mod scale;
pub mod spec;
pub mod stdlib;

pub use build::{stdlib_archive, stdlib_libs, BuildError, BuiltBenchmark, CompileMode};
pub use gen::BenchSpec;
pub use scale::{overflow_slots_per_module, pad_gat, scale_spec, ScaleSpec};
