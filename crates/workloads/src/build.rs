//! Build drivers: compile a benchmark the two ways the paper measures.
//!
//! * **compile-each** — every user source file compiled separately at `-O2`
//!   (intraprocedural global optimization only);
//! * **compile-all** — all user sources compiled monolithically with
//!   interprocedural optimization (merging + inlining).
//!
//! Both variants link against the same pre-compiled [`stdlib`] archive, so
//! compile-time interprocedural optimization never sees library internals —
//! the asymmetry at the heart of the paper's compile-all result.
//!
//! [`stdlib`]: crate::stdlib

use crate::gen::{generate, BenchSpec, Sources};
use crate::stdlib::STDLIB_SOURCES;
use om_codegen::{compile_all_sources, compile_source, crt0, CodegenError, CompileOpts};
use om_objfile::{Archive, Module, ObjError};
use std::fmt;
use std::sync::{Arc, OnceLock};

/// How the user sources are compiled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompileMode {
    /// Separate compilation of each source file (`-O2`).
    Each,
    /// Monolithic compilation with interprocedural optimization.
    All,
}

impl CompileMode {
    /// Both modes, in the order the paper's figures list them. The single
    /// source of truth for mode iteration in the evaluation harness.
    pub const ALL: [CompileMode; 2] = [CompileMode::Each, CompileMode::All];

    /// This mode's position in [`CompileMode::ALL`] (dense, for tables).
    pub fn index(self) -> usize {
        match self {
            CompileMode::Each => 0,
            CompileMode::All => 1,
        }
    }

    /// Paper terminology.
    pub fn name(self) -> &'static str {
        match self {
            CompileMode::Each => "compile-each",
            CompileMode::All => "compile-all",
        }
    }
}

/// Build errors.
#[derive(Debug)]
pub enum BuildError {
    Codegen(CodegenError),
    Object(ObjError),
    /// The process-wide shared stdlib failed to compile (stringified because
    /// the cached result is cloned to every caller).
    Stdlib(String),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Codegen(e) => write!(f, "{e}"),
            BuildError::Object(e) => write!(f, "{e}"),
            BuildError::Stdlib(e) => write!(f, "stdlib: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<CodegenError> for BuildError {
    fn from(e: CodegenError) -> Self {
        BuildError::Codegen(e)
    }
}

impl From<ObjError> for BuildError {
    fn from(e: ObjError) -> Self {
        BuildError::Object(e)
    }
}

/// A benchmark ready to link: crt0 + user objects, plus the library archive.
///
/// The library slice is shared (`Arc`): every benchmark in the process
/// points at the same pre-compiled stdlib, mirroring how a real system
/// installs one `libc.a` that every link reads. Consumers borrow it
/// (`&b.libs` coerces to `&[Archive]`).
#[derive(Debug, Clone)]
pub struct BuiltBenchmark {
    pub name: String,
    pub mode: CompileMode,
    /// crt0 followed by the user objects.
    pub objects: Vec<Module>,
    /// The pre-compiled standard library, shared process-wide.
    pub libs: Arc<[Archive]>,
}

/// The shared stdlib: compiled at most once per process, then handed out by
/// `Arc`. Errors are stringified so the cached result clones.
static STDLIB: OnceLock<Result<Arc<[Archive]>, String>> = OnceLock::new();

fn compile_stdlib() -> Result<Archive, BuildError> {
    let mut ar = Archive::new("libstd");
    for (name, src) in STDLIB_SOURCES {
        ar.add(compile_source(name, src, &CompileOpts::o2())?)?;
    }
    Ok(ar)
}

/// The standard library archive, compiled once per process and shared by
/// every [`build`] (`-O2`, compiled "long before" the application).
///
/// # Errors
///
/// Propagates compile errors (the library sources are fixed, so this only
/// fails if the toolchain regresses).
pub fn stdlib_libs() -> Result<Arc<[Archive]>, BuildError> {
    STDLIB
        .get_or_init(|| {
            compile_stdlib()
                .map(|ar| Arc::from(vec![ar]))
                .map_err(|e| e.to_string())
        })
        .clone()
        .map_err(BuildError::Stdlib)
}

/// An owned copy of the stdlib archive, for tools that write it to disk.
/// Shares the process-wide compilation with [`stdlib_libs`].
///
/// # Errors
///
/// See [`stdlib_libs`].
pub fn stdlib_archive() -> Result<Archive, BuildError> {
    Ok(stdlib_libs()?[0].clone())
}

/// Generates a benchmark's user sources (library excluded).
pub fn sources(spec: &BenchSpec) -> Sources {
    generate(spec)
}

/// Compiles a benchmark in the given mode.
///
/// # Errors
///
/// Propagates generator-output compile errors (a generator bug if ever hit).
pub fn build(spec: &BenchSpec, mode: CompileMode) -> Result<BuiltBenchmark, BuildError> {
    let srcs = sources(spec);
    let opts = CompileOpts::o2();
    let mut objects = vec![crt0::module()?];
    match mode {
        CompileMode::Each => {
            for (name, src) in &srcs {
                objects.push(compile_source(name, src, &opts)?);
            }
        }
        CompileMode::All => {
            let refs: Vec<(&str, &str)> = srcs
                .iter()
                .map(|(n, s)| (n.as_str(), s.as_str()))
                .collect();
            objects.push(compile_all_sources(
                &format!("{}_all", spec.name),
                &refs,
                &opts,
            )?);
        }
    }
    Ok(BuiltBenchmark {
        name: spec.name.to_string(),
        mode,
        objects,
        libs: stdlib_libs()?,
    })
}

/// Computes the benchmark's reference checksum with the mini-C interpreter
/// (the behavioral oracle, independent of the whole object-code pipeline).
///
/// # Errors
///
/// Returns a message on compile or runtime errors.
pub fn interp_reference(spec: &BenchSpec, steps: u64) -> Result<i64, String> {
    let mut all: Vec<(String, String)> = sources(spec);
    for (n, s) in STDLIB_SOURCES {
        all.push((n.to_string(), s.to_string()));
    }
    let refs: Vec<(&str, &str)> = all.iter().map(|(n, s)| (n.as_str(), s.as_str())).collect();
    om_minic::interp::run_sources(&refs, steps)
}
