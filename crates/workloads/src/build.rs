//! Build drivers: compile a benchmark the two ways the paper measures.
//!
//! * **compile-each** — every user source file compiled separately at `-O2`
//!   (intraprocedural global optimization only);
//! * **compile-all** — all user sources compiled monolithically with
//!   interprocedural optimization (merging + inlining).
//!
//! Both variants link against the same pre-compiled [`stdlib`] archive, so
//! compile-time interprocedural optimization never sees library internals —
//! the asymmetry at the heart of the paper's compile-all result.
//!
//! [`stdlib`]: crate::stdlib

use crate::gen::{generate, BenchSpec, Sources};
use crate::stdlib::STDLIB_SOURCES;
use om_codegen::{compile_all_sources, compile_source, crt0, CodegenError, CompileOpts};
use om_objfile::{Archive, Module, ObjError};
use std::fmt;

/// How the user sources are compiled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompileMode {
    /// Separate compilation of each source file (`-O2`).
    Each,
    /// Monolithic compilation with interprocedural optimization.
    All,
}

impl CompileMode {
    /// Paper terminology.
    pub fn name(self) -> &'static str {
        match self {
            CompileMode::Each => "compile-each",
            CompileMode::All => "compile-all",
        }
    }
}

/// Build errors.
#[derive(Debug)]
pub enum BuildError {
    Codegen(CodegenError),
    Object(ObjError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Codegen(e) => write!(f, "{e}"),
            BuildError::Object(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<CodegenError> for BuildError {
    fn from(e: CodegenError) -> Self {
        BuildError::Codegen(e)
    }
}

impl From<ObjError> for BuildError {
    fn from(e: ObjError) -> Self {
        BuildError::Object(e)
    }
}

/// A benchmark ready to link: crt0 + user objects, plus the library archive.
#[derive(Debug, Clone)]
pub struct BuiltBenchmark {
    pub name: String,
    pub mode: CompileMode,
    /// crt0 followed by the user objects.
    pub objects: Vec<Module>,
    /// The pre-compiled standard library.
    pub libs: Vec<Archive>,
}

impl BuiltBenchmark {
    /// All link inputs: explicit objects plus selected library members are
    /// resolved by the consumer (standard linker or OM).
    pub fn objects_cloned(&self) -> Vec<Module> {
        self.objects.clone()
    }
}

/// Compiles the standard library into its archive (`-O2`, compiled "long
/// before" the application).
///
/// # Errors
///
/// Propagates compile errors (the library sources are fixed, so this only
/// fails if the toolchain regresses).
pub fn stdlib_archive() -> Result<Archive, BuildError> {
    let mut ar = Archive::new("libstd");
    for (name, src) in STDLIB_SOURCES {
        ar.add(compile_source(name, src, &CompileOpts::o2())?)?;
    }
    Ok(ar)
}

/// Generates a benchmark's user sources (library excluded).
pub fn sources(spec: &BenchSpec) -> Sources {
    generate(spec)
}

/// Compiles a benchmark in the given mode.
///
/// # Errors
///
/// Propagates generator-output compile errors (a generator bug if ever hit).
pub fn build(spec: &BenchSpec, mode: CompileMode) -> Result<BuiltBenchmark, BuildError> {
    let srcs = sources(spec);
    let opts = CompileOpts::o2();
    let mut objects = vec![crt0::module()?];
    match mode {
        CompileMode::Each => {
            for (name, src) in &srcs {
                objects.push(compile_source(name, src, &opts)?);
            }
        }
        CompileMode::All => {
            let refs: Vec<(&str, &str)> = srcs
                .iter()
                .map(|(n, s)| (n.as_str(), s.as_str()))
                .collect();
            objects.push(compile_all_sources(
                &format!("{}_all", spec.name),
                &refs,
                &opts,
            )?);
        }
    }
    Ok(BuiltBenchmark {
        name: spec.name.to_string(),
        mode,
        objects,
        libs: vec![stdlib_archive()?],
    })
}

/// Computes the benchmark's reference checksum with the mini-C interpreter
/// (the behavioral oracle, independent of the whole object-code pipeline).
///
/// # Errors
///
/// Returns a message on compile or runtime errors.
pub fn interp_reference(spec: &BenchSpec, steps: u64) -> Result<i64, String> {
    let mut all: Vec<(String, String)> = sources(spec);
    for (n, s) in STDLIB_SOURCES {
        all.push((n.to_string(), s.to_string()));
    }
    let refs: Vec<(&str, &str)> = all.iter().map(|(n, s)| (n.as_str(), s.as_str())).collect();
    om_minic::interp::run_sources(&refs, steps)
}
