//! The 19-benchmark suite: SPEC92 minus `gcc`, exactly the set the paper
//! evaluates ("The programs we used are the SPEC92 suite with the exception
//! of gcc").
//!
//! Each entry's structural parameters mimic the named program's published
//! character: `fpppp` and `doduc` have very large basic blocks (the paper
//! singles them out as expensive to schedule), `li` and `sc` are built from
//! many small procedures with procedure variables, `spice` makes heavy
//! library use ("statically half the calls are from one library routine to
//! another"), and the floating-point codes lean on FP-typed procedures and
//! larger arrays.

use crate::gen::BenchSpec;

/// Shorthand constructor with the common defaults.
#[allow(clippy::too_many_arguments)]
const fn spec(
    name: &'static str,
    seed: u64,
    modules: usize,
    procs_per_module: usize,
    static_frac: f64,
    float_frac: f64,
    calls_per_proc: usize,
    lib_call_frac: f64,
    fnptrs: usize,
    iters: u64,
    block_stmts: usize,
) -> BenchSpec {
    BenchSpec {
        name,
        seed,
        modules,
        procs_per_module,
        static_frac,
        scalars_per_module: 96,
        arrays_per_module: 10,
        array_pow2: 7,
        float_frac,
        calls_per_proc,
        lib_call_frac,
        fnptrs,
        iters,
        block_stmts,
        recursive: true,
    }
}

/// All 19 benchmarks.
pub fn all() -> Vec<BenchSpec> {
    vec![
        // name        seed mod pr  stat  fp   calls lib  fnp iters blk
        spec("alvinn", 11, 3, 5, 0.10, 0.60, 2, 0.30, 0, 260, 14),
        spec("compress", 12, 3, 6, 0.20, 0.00, 2, 0.35, 0, 300, 10),
        spec("doduc", 13, 5, 6, 0.10, 0.55, 3, 0.25, 0, 120, 42),
        spec("ear", 14, 4, 5, 0.15, 0.60, 2, 0.30, 0, 240, 12),
        spec("eqntott", 15, 3, 7, 0.15, 0.00, 2, 0.40, 1, 280, 8),
        spec("espresso", 16, 7, 8, 0.20, 0.00, 3, 0.30, 1, 150, 9),
        spec("fpppp", 17, 2, 3, 0.00, 0.55, 2, 0.25, 0, 120, 70),
        spec("hydro2d", 18, 4, 6, 0.10, 0.65, 2, 0.30, 0, 220, 16),
        spec("li", 19, 6, 9, 0.25, 0.00, 3, 0.35, 4, 130, 5),
        spec("mdljdp2", 20, 4, 5, 0.10, 0.60, 2, 0.30, 0, 240, 15),
        spec("mdljsp2", 21, 4, 5, 0.10, 0.60, 2, 0.30, 0, 240, 14),
        spec("nasa7", 22, 3, 5, 0.05, 0.65, 2, 0.30, 0, 260, 18),
        spec("ora", 23, 2, 4, 0.10, 0.60, 2, 0.40, 0, 340, 10),
        spec("sc", 24, 5, 8, 0.25, 0.00, 3, 0.35, 3, 150, 6),
        spec("spice", 25, 6, 6, 0.10, 0.30, 4, 0.70, 1, 140, 12),
        spec("su2cor", 26, 4, 5, 0.10, 0.60, 2, 0.30, 0, 240, 16),
        spec("swm256", 27, 3, 4, 0.05, 0.65, 2, 0.25, 0, 280, 20),
        spec("tomcatv", 28, 2, 4, 0.05, 0.65, 2, 0.25, 0, 320, 18),
        spec("wave5", 29, 4, 6, 0.10, 0.60, 2, 0.30, 0, 220, 14),
    ]
}

/// Looks up a benchmark by name.
pub fn by_name(name: &str) -> Option<BenchSpec> {
    all().into_iter().find(|s| s.name == name)
}

/// A scaled-down copy of a spec for fast tests (fewer iterations).
pub fn quick(spec: &BenchSpec) -> BenchSpec {
    BenchSpec { iters: spec.iters.min(12), ..*spec }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nineteen_benchmarks_with_unique_names() {
        let specs = all();
        assert_eq!(specs.len(), 19, "SPEC92 minus gcc");
        let mut names: Vec<&str> = specs.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 19);
        assert!(by_name("spice").is_some());
        assert!(by_name("gcc").is_none());
    }

    #[test]
    fn character_parameters_follow_the_paper() {
        let spice = by_name("spice").unwrap();
        let fpppp = by_name("fpppp").unwrap();
        let li = by_name("li").unwrap();
        // spice: heaviest library calling.
        assert!(all().iter().all(|s| s.lib_call_frac <= spice.lib_call_frac));
        // fpppp: the largest basic blocks.
        assert!(all().iter().all(|s| s.block_stmts <= fpppp.block_stmts));
        // li: procedure variables present.
        assert!(li.fnptrs > 0);
    }

    #[test]
    fn quick_mode_shrinks_iterations() {
        let s = by_name("tomcatv").unwrap();
        assert!(quick(&s).iters < s.iters);
        assert_eq!(quick(&s).modules, s.modules);
    }
}
