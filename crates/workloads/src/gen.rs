//! Deterministic synthetic benchmark generator.
//!
//! We cannot obtain the 1994 SPEC92 sources, so each benchmark is a
//! generated mini-C program whose *structural statistics* — module count,
//! procedures per module, fraction of `static` procedures, global/array
//! traffic, call density, library-call fraction, procedure variables,
//! basic-block size — are set per benchmark (see [`crate::spec`]) to mimic
//! the named program's character. The address-calculation behavior OM
//! optimizes depends on exactly these statistics, not on what the loops
//! compute.
//!
//! Generation is fully deterministic (seeded per benchmark), the call graph
//! is a DAG plus one bounded recursive procedure, array indices are masked
//! to their power-of-two lengths, and integer arithmetic wraps — so every
//! generated program terminates with a well-defined checksum that all build
//! variants must reproduce bit-for-bit.

use om_prng::StdRng;
use std::fmt::Write as _;

/// Structural parameters of one synthetic benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchSpec {
    pub name: &'static str,
    pub seed: u64,
    /// Separately-compiled user modules.
    pub modules: usize,
    pub procs_per_module: usize,
    /// Fraction of procedures declared `static` (unexported).
    pub static_frac: f64,
    pub scalars_per_module: usize,
    pub arrays_per_module: usize,
    /// Array length = `1 << array_pow2` elements.
    pub array_pow2: u32,
    /// Fraction of procedures computing in floating point.
    pub float_frac: f64,
    /// Direct calls seeded into each procedure body.
    pub calls_per_proc: usize,
    /// Fraction of those calls that target the pre-compiled library.
    pub lib_call_frac: f64,
    /// Procedure variables (fnptr globals) dispatched in `main`.
    pub fnptrs: usize,
    /// Main-loop iterations (controls dynamic instruction count).
    pub iters: u64,
    /// Straight-line statements per procedure body (large for fpppp/doduc).
    pub block_stmts: usize,
    /// Include a bounded recursive procedure.
    pub recursive: bool,
}

/// A generated program: `(module name, source)` in link order.
pub type Sources = Vec<(String, String)>;

#[derive(Clone, Copy, PartialEq)]
enum Kind {
    Int,
    Float,
}

struct Proc {
    module: usize,
    name: String,
    kind: Kind,
    is_static: bool,
    /// Leaf procedures make no user calls; branch procedures call leaves
    /// plus at most one earlier branch. This keeps the dynamic call tree
    /// polynomial while preserving realistic static call density.
    is_leaf: bool,
    /// Tiny single-expression accessors: the procedures a monolithic
    /// compile-all build inlines away (separate compilation cannot).
    is_accessor: bool,
}

/// Library routines the generator may call: `(name, arity, returns_float)`.
const LIB_FNS: &[(&str, usize, bool)] = &[
    ("mix64", 1, false),
    ("hash2", 2, false),
    ("abs_i", 1, false),
    ("min_i", 2, false),
    ("max_i", 2, false),
    ("sign_i", 1, false),
    ("gcd_i", 2, false),
    ("isqrt", 1, false),
    ("ipow", 2, false),
    ("stat_push", 1, false),
    ("stat_mean", 0, false),
    ("cksum_add", 1, false),
    ("rng_range", 1, false),
];

const LIB_FNS_F: &[(&str, usize)] = &[
    ("fabs_f", 1),
    ("fmin_f", 2),
    ("fmax_f", 2),
    ("sqrt_f", 1),
    ("sin_f", 1),
    ("lerp_f", 3),
];

struct Gen {
    spec: BenchSpec,
    rng: StdRng,
    procs: Vec<Proc>,
    /// Per module: extern declarations needed (rendered lines).
    externs: Vec<std::collections::BTreeSet<String>>,
}

impl Gen {
    fn new(spec: BenchSpec) -> Gen {
        let mut rng = StdRng::seed_from_u64(spec.seed ^ SEED_SALT);
        let mut procs = Vec::new();
        for m in 0..spec.modules {
            for j in 0..spec.procs_per_module {
                let last = j + 1 == spec.procs_per_module;
                let kind = if !last && rng.gen_bool(spec.float_frac) {
                    Kind::Float
                } else {
                    Kind::Int
                };
                // The last proc of each module is the module's exported
                // entry; the first two are tiny accessors.
                let is_accessor = !last && j < 2;
                let is_static = !last && !is_accessor && rng.gen_bool(spec.static_frac);
                let is_leaf = !last && j < spec.procs_per_module / 2 + 1;
                let kind = if is_accessor { Kind::Int } else { kind };
                procs.push(Proc {
                    module: m,
                    name: format!("p{m}_{j}"),
                    kind,
                    is_static,
                    is_leaf,
                    is_accessor,
                });
            }
        }
        Gen {
            externs: vec![std::collections::BTreeSet::new(); spec.modules],
            spec,
            rng,
            procs,
        }
    }

    /// Array `a` of any module has `1 << pow2(a)` elements: sizes are varied
    /// around the spec's base so the sorted-commons layout has a realistic
    /// size distribution straddling the GP window.
    fn array_pow2(&self, a: usize) -> u32 {
        self.spec.array_pow2 + (a as u32 % 4)
    }

    fn array_len(&self, a: usize) -> u64 {
        1u64 << self.array_pow2(a)
    }

    fn array_mask(&self, a: usize) -> u64 {
        self.array_len(a) - 1
    }

    /// Record that module `m` needs an extern declaration.
    fn need_extern(&mut self, m: usize, decl: String) {
        self.externs[m].insert(decl);
    }

    fn lib_call_int(&mut self, m: usize, args: &[String]) -> String {
        let (name, arity, _) = LIB_FNS[self.rng.gen_range(0..LIB_FNS.len())];
        let params = vec!["int"; arity].join(", ");
        self.need_extern(m, format!("extern int {name}({params});"));
        let mut chosen = Vec::new();
        for i in 0..arity {
            chosen.push(args[i % args.len()].clone());
        }
        format!("{name}({})", chosen.join(", "))
    }

    fn lib_call_float(&mut self, m: usize, args: &[String]) -> String {
        let (name, arity) = LIB_FNS_F[self.rng.gen_range(0..LIB_FNS_F.len())];
        let params = vec!["float"; arity].join(", ");
        self.need_extern(m, format!("extern float {name}({params});"));
        let mut chosen = Vec::new();
        for i in 0..arity {
            chosen.push(args[i % args.len()].clone());
        }
        format!("{name}({})", chosen.join(", "))
    }

    /// A call to an earlier user procedure, respecting visibility. Branch
    /// callees are rationed by `branch_budget` (at most one per caller) so
    /// the dynamic call tree stays shallow.
    fn user_call(
        &mut self,
        from: usize,
        global_idx: usize,
        branch_budget: &mut usize,
    ) -> Option<String> {
        // Leaves never call user code (bounds the dynamic call tree).
        if self.procs[global_idx].is_leaf {
            return None;
        }
        // Candidate callees: strictly earlier in the roster; statics only
        // within the same module; branches only while budget remains.
        let candidates: Vec<usize> = (0..global_idx)
            .filter(|&i| !self.procs[i].is_static || self.procs[i].module == from)
            .filter(|&i| self.procs[i].is_leaf || *branch_budget > 0)
            .collect();
        if candidates.is_empty() {
            return None;
        }
        let idx = candidates[self.rng.gen_range(0..candidates.len())];
        if !self.procs[idx].is_leaf {
            *branch_budget -= 1;
        }
        let callee_module = self.procs[idx].module;
        let callee_kind = self.procs[idx].kind;
        let name = self.procs[idx].name.clone();
        if callee_module != from {
            let decl = match callee_kind {
                Kind::Int => format!("extern int {name}(int, int);"),
                Kind::Float => format!("extern float {name}(float, int);"),
            };
            self.need_extern(from, decl);
        }
        let a = self.int_term_simple();
        let b = self.int_term_simple();
        Some(match callee_kind {
            Kind::Int => format!("{name}({a}, {b})"),
            Kind::Float => format!("int({name}(float({a}) * 0.125, {b}))"),
        })
    }

    /// A simple int expression over the conventional names in scope
    /// (`a`, `b`, `acc`).
    fn int_term_simple(&mut self) -> String {
        let k = self.rng.gen_range(1..100);
        match self.rng.gen_range(0..6) {
            0 => format!("(a + {k})"),
            1 => format!("(b ^ {k})"),
            2 => format!("(acc >> {})", self.rng.gen_range(1..8)),
            3 => "(acc & 0xFFFF)".to_string(),
            4 => format!("(a * {k})"),
            _ => "(b + acc)".to_string(),
        }
    }

    /// An int term that may touch globals, arrays, the library, or other
    /// procedures.
    fn int_term(&mut self, m: usize, global_idx: usize, branch_budget: &mut usize) -> String {
        match self.rng.gen_range(0..10) {
            0 | 1 => self.int_term_simple(),
            2 => {
                let g = self.rng.gen_range(0..self.spec.scalars_per_module);
                format!("g{m}_{g}")
            }
            3 | 4 => {
                let a = self.rng.gen_range(0..self.spec.arrays_per_module);
                let idx = self.int_term_simple();
                let lmask = self.array_mask(a);
                format!("arr{m}_{a}[{idx} & {lmask}]")
            }
            5 => {
                let args = [self.int_term_simple(), self.int_term_simple()];
                self.lib_call_int(m, &args)
            }
            6 => {
                // Integer divide/remainder: millicode traffic.
                let k = self.rng.gen_range(3..17);
                let t = self.int_term_simple();
                if self.rng.gen_bool(0.5) {
                    format!("({t} / {k})")
                } else {
                    format!("({t} % {k})")
                }
            }
            _ => match self.user_call(m, global_idx, branch_budget) {
                Some(c) => c,
                None => self.int_term_simple(),
            },
        }
    }

    fn float_term(&mut self, m: usize) -> String {
        let c = self.rng.gen_range(1..100) as f64 / 16.0;
        match self.rng.gen_range(0..6) {
            0 => format!("(fa * {c:.4} + 0.5)"),
            1 => "(fa - float(b) * 0.0625)".to_string(),
            2 => format!("(facc * 0.5 + {c:.4})"),
            3 => {
                let args = ["fa".to_string(), "facc".to_string(), format!("{c:.4}")];
                self.lib_call_float(m, &args)
            }
            4 => format!("(fa / ({c:.4} + 1.0))"),
            _ => format!("float(b & 255) * {c:.4}"),
        }
    }

    /// Emits one procedure body.
    fn proc_source(&mut self, global_idx: usize) -> String {
        let spec = self.spec;
        let m = self.procs[global_idx].module;
        let kind = self.procs[global_idx].kind;
        let is_static = self.procs[global_idx].is_static;
        let name = self.procs[global_idx].name.clone();

        if self.procs[global_idx].is_accessor {
            let k1 = self.rng.gen_range(3..60);
            let k2 = self.rng.gen_range(1..30);
            return format!(
                "int {name}(int a, int b) {{ return a * {k1} + (b ^ {k2}); }}\n\n"
            );
        }

        let mut body = String::new();
        let header = match (kind, is_static) {
            (Kind::Int, false) => format!("int {name}(int a, int b) {{\n"),
            (Kind::Int, true) => format!("static int {name}(int a, int b) {{\n"),
            (Kind::Float, false) => format!("float {name}(float fa, int b) {{\n"),
            (Kind::Float, true) => format!("static float {name}(float fa, int b) {{\n"),
        };
        body.push_str(&header);
        match kind {
            Kind::Int => body.push_str("  int acc = a * 3 + b;\n"),
            Kind::Float => {
                body.push_str("  float facc = fa + float(b) * 0.25;\n  int acc = b + 1;\n  int a = b * 7;\n")
            }
        }

        // Straight-line statement block, with calls sprinkled through it.
        let is_leaf = self.procs[global_idx].is_leaf;
        let mut call_budget = if is_leaf { 0 } else { spec.calls_per_proc };
        let mut branch_budget = if is_leaf { 0 } else { 1usize };
        // Leaves do substantial register work per invocation (no calls), so
        // call bookkeeping stays a realistic fraction of dynamic cost.
        let block_stmts = if is_leaf {
            spec.block_stmts.clamp(12, 20)
        } else {
            spec.block_stmts
        };
        for s in 0..block_stmts {
            let want_call = call_budget > 0
                && (block_stmts - s) <= call_budget * 2;
            let stmt = if want_call || (call_budget > 0 && self.rng.gen_bool(0.35)) {
                call_budget -= 1;
                if self.rng.gen_bool(spec.lib_call_frac) {
                    let args = [self.int_term_simple(), "acc".to_string()];
                    let c = self.lib_call_int(m, &args);
                    format!("  acc = acc + {c};\n")
                } else {
                    match self.user_call(m, global_idx, &mut branch_budget) {
                        Some(c) => format!("  acc = acc ^ {c};\n"),
                        None => {
                            let args = [self.int_term_simple(), "acc".to_string()];
                            let c = self.lib_call_int(m, &args);
                            format!("  acc = acc + {c};\n")
                        }
                    }
                }
            } else {
                // Weighted statement mix: real -O2 code spends most of its
                // dynamic instructions in register arithmetic between global
                // accesses; the bookkeeping OM removes must not dominate.
                match self.rng.gen_range(0..14) {
                    0 => {
                        let g = self.rng.gen_range(0..spec.scalars_per_module);
                        let t = self.int_term(m, global_idx, &mut branch_budget);
                        format!("  g{m}_{g} = g{m}_{g} + {t};\n")
                    }
                    1 => {
                        let a = self.rng.gen_range(0..spec.arrays_per_module);
                        let idx = self.int_term_simple();
                        let t = self.int_term_simple();
                        let lmask = self.array_mask(a);
                        format!("  arr{m}_{a}[{idx} & {lmask}] = acc + {t};\n")
                    }
                    2 if kind == Kind::Float => {
                        let t = self.float_term(m);
                        format!("  facc = {t};\n")
                    }
                    3 => {
                        let t1 = self.int_term(m, global_idx, &mut branch_budget);
                        let t2 = self.int_term_simple();
                        let k = self.rng.gen_range(0..4096);
                        format!(
                            "  if ((acc & 4095) > {k}) {{ acc = acc + {t1}; }} else {{ acc = acc ^ {t2}; }}\n"
                        )
                    }
                    4 => {
                        // A short array scan with real arithmetic per element
                        // (a compiler with loop-invariant motion would hoist
                        // the GAT load; ours reloads it, so keep scans short
                        // to avoid inflating OM's dynamic benefit).
                        let a = self.rng.gen_range(0..spec.arrays_per_module);
                        let n = self.rng.gen_range(2..5);
                        let lmask = self.array_mask(a);
                        format!(
                            "  int lt{s} = 0;\n  for (lt{s} = 0; lt{s} < {n}; lt{s} = lt{s} + 1) {{ acc = acc + arr{m}_{a}[(lt{s} + a) & {lmask}] * (lt{s} + 3) + (acc >> 2); }}\n"
                        )
                    }
                    5 => {
                        let t = self.int_term(m, global_idx, &mut branch_budget);
                        format!("  acc = acc * 5 + {t};\n")
                    }
                    6 | 7 => {
                        // Pure register arithmetic chain (3 ops, no memory).
                        let k1 = self.rng.gen_range(3..50);
                        let k2 = self.rng.gen_range(1..30);
                        let sh = self.rng.gen_range(1..9);
                        format!("  acc = (acc * {k1} + a * {k2}) ^ (b >> {sh});\n")
                    }
                    8 | 9 => {
                        let k = self.rng.gen_range(1..64);
                        format!("  acc = acc + ((a ^ acc) & {k}) * (b | 1);\n")
                    }
                    10 | 11 => {
                        let sh = self.rng.gen_range(1..16);
                        format!("  acc = (acc << 1) ^ (acc >> {sh}) ^ a;\n")
                    }
                    _ => {
                        let k = self.rng.gen_range(2..40);
                        format!("  acc = acc + (a + b) * {k} - (acc >> 3);\n")
                    }
                }
            };
            body.push_str(&stmt);
        }

        match kind {
            Kind::Int => body.push_str("  return acc;\n}\n\n"),
            Kind::Float => body.push_str("  return facc + float(acc & 65535) * 0.001;\n}\n\n"),
        }
        body
    }

    fn module_source(&mut self, m: usize) -> String {
        let spec = self.spec;
        let mut out = String::new();

        // Globals: non-static scalars become commons (for the common-sorting
        // transformation); some are static or initialized for variety.
        for g in 0..spec.scalars_per_module {
            match g % 4 {
                0 => {
                    let _ = writeln!(out, "static int g{m}_{g} = {};", (g * 13 + m) % 97);
                }
                1 => {
                    let _ = writeln!(out, "int g{m}_{g} = {};", (g * 7 + m) % 89);
                }
                _ => {
                    let _ = writeln!(out, "int g{m}_{g};");
                }
            }
        }
        for a in 0..spec.arrays_per_module {
            let len = self.array_len(a);
            if a % 5 == 0 {
                // Initialized arrays go to .data, far beyond the GP window:
                // their address loads can only ever be converted, not
                // nullified.
                let _ = writeln!(
                    out,
                    "int arr{m}_{a}[{len}] = {{ {}, {} }};",
                    (a * 3 + m) % 100,
                    (a * 7 + m) % 100
                );
            } else if a % 5 == 1 {
                let _ = writeln!(out, "static int arr{m}_{a}[{len}];");
            } else {
                // Uninitialized exported arrays become commons, sorted by
                // size near the GAT at link time.
                let _ = writeln!(out, "int arr{m}_{a}[{len}];");
            }
        }
        out.push('\n');

        // Procedures (externs are prepended afterwards).
        let mut bodies = String::new();
        for idx in 0..self.procs.len() {
            if self.procs[idx].module == m {
                bodies.push_str(&self.proc_source(idx));
            }
        }

        let mut head = String::new();
        for d in &self.externs[m] {
            let _ = writeln!(head, "{d}");
        }
        head.push('\n');
        format!("{head}{out}{bodies}")
    }

    /// The `main` module: initialization, the driving loop, procedure
    /// variables, the bounded recursive procedure, and the final checksum.
    fn main_source(&mut self) -> String {
        let spec = self.spec;
        let mut out = String::new();
        let mut out_kernel = String::new();
        let mut decls = std::collections::BTreeSet::new();
        decls.insert("extern int cksum_reset();".to_string());
        decls.insert("extern int cksum_add(int);".to_string());
        decls.insert("extern int cksum_get();".to_string());
        decls.insert("extern int rng_seed(int);".to_string());
        decls.insert("extern int stat_reset();".to_string());

        // Entries: the last (exported, int) proc of each module.
        let mut entries = Vec::new();
        for m in 0..spec.modules {
            let p = &self.procs[m * spec.procs_per_module + spec.procs_per_module - 1];
            assert!(!p.is_static && p.kind == Kind::Int);
            decls.insert(format!("extern int {}(int, int);", p.name));
            entries.push(p.name.clone());
        }

        // fnptr targets: exported int procs.
        let targets: Vec<String> = self
            .procs
            .iter()
            .filter(|p| !p.is_static && p.kind == Kind::Int)
            .map(|p| p.name.clone())
            .collect();
        let mut fnptr_lines = String::new();
        for f in 0..spec.fnptrs {
            let t = &targets[f % targets.len()];
            decls.insert(format!("extern int {t}(int, int);"));
            let _ = writeln!(fnptr_lines, "fnptr hp{f} = &{t};");
        }

        if spec.recursive {
            out.push_str(
                "static int recurse(int n, int salt) {\n  if (n <= 1) { return salt & 1023; }\n  return recurse(n - 1, salt * 3 + n) + (n & 7);\n}\n\n",
            );
        }

        // The hot kernel: a long register-arithmetic loop with sparse memory
        // traffic, like the inner loops where real SPEC codes spend their
        // cycles. Most of its dynamic instructions are not removable
        // bookkeeping, which keeps OM's dynamic benefit in the paper's range.
        let kiters = 24 + (spec.seed % 17) * 3;
        let kmask = self.array_mask(2);
        let klen = self.array_len(2);
        decls.insert(format!("extern int arr0_2[{klen}];"));
        let _ = write!(
            out_kernel,
            "static int kernel(int a, int b) {{\n  int x = a * 3 + 1;\n  int y = b | 5;\n  int s = 0;\n  int k = 0;\n  for (k = 0; k < {kiters}; k = k + 1) {{\n    x = (x * 29 + y) ^ (s >> 3);\n    y = (y << 1) ^ (x >> 7) ^ k;\n    s = s + ((x ^ y) & 8191);\n    x = x + (y & 63) * 9 - (x >> 11);\n    y = y ^ (x * 13 + 7);\n    s = (s << 1) ^ (s >> 9) ^ (x & y);\n    x = x * 5 + y * 3 - (s & 4095);\n    y = y + (x >> 2) - (s >> 5);\n    if ((k & 7) == 0) {{ s = s + arr0_2[(x ^ k) & {kmask}]; }}\n    s = s ^ (x + y);\n  }}\n  return s;\n}}\n\n"
        );

        out.push_str(&out_kernel);
        out.push_str("int main() {\n");
        let _ = writeln!(out, "  cksum_reset();");
        let _ = writeln!(out, "  stat_reset();");
        let _ = writeln!(out, "  rng_seed({});", spec.seed % 100_000);
        out.push_str("  int t = 1;\n  int i = 0;\n");
        let _ = writeln!(out, "  for (i = 0; i < {}; i = i + 1) {{", spec.iters);
        let _ = writeln!(out, "    t = t + kernel(i, t & 1023);");
        let _ = writeln!(out, "    t = t ^ kernel(t & 511, i + 7);");
        for (k, e) in entries.iter().enumerate() {
            let _ = writeln!(out, "    t = t + {e}(i + {k}, t & 0xFFFF);");
        }
        for f in 0..spec.fnptrs {
            let a = &targets[(f * 7 + 3) % targets.len()];
            let b = &targets[(f * 5 + 1) % targets.len()];
            decls.insert(format!("extern int {a}(int, int);"));
            decls.insert(format!("extern int {b}(int, int);"));
            let _ = writeln!(
                out,
                "    if ((i & 3) == {}) {{ hp{f} = &{a}; }} else {{ hp{f} = &{b}; }}",
                f % 4
            );
            let _ = writeln!(out, "    t = t ^ hp{f}(i, t & 255);");
        }
        if spec.recursive {
            let _ = writeln!(out, "    t = t + recurse((i & 15) + 2, t);");
        }
        out.push_str("    cksum_add(t);\n  }\n");
        out.push_str("  return cksum_get() ^ (t & 0xFFFF);\n}\n");

        let mut head = String::new();
        for d in &decls {
            let _ = writeln!(head, "{d}");
        }
        format!("{head}\n{fnptr_lines}\n{out}")
    }
}

/// A nonce folded into every seed so workload streams are distinct from any
/// other use of the seeds.
const SEED_SALT: u64 = 0x0707_1994_0606_1994;

/// Generates the user-module sources of a benchmark (library excluded).
pub fn generate(spec: &BenchSpec) -> Sources {
    let mut g = Gen::new(*spec);
    let mut sources = Vec::new();
    for m in 0..spec.modules {
        let src = g.module_source(m);
        sources.push((format!("{}_{m:02}", spec.name), src));
    }
    sources.push((format!("{}_main", spec.name), g.main_source()));
    sources
}
