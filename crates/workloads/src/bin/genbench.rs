//! `genbench` — write a synthetic benchmark's mini-C sources (and the
//! standard library's) to a directory, so the whole pipeline can be driven
//! through the command-line tools:
//!
//! ```text
//! genbench spice out/
//! mcc out/*.mc                       # each source -> out/*.o
//! om -o spice.exe out/*.o out/libstd.a --stats
//! asim --timing spice.exe
//! ```
//!
//! (`out/crt0.o` and `out/libstd.a` are emitted pre-built; the library
//! sources under `out/lib/` are included for inspection or rebuilding with
//! `mcc --ar`.)
//!
//! `genbench --scale N out/` writes the N-module scale workload instead —
//! the program that forces multi-GAT group splits at real size (N user
//! modules, 100 procedures each; see `om_workloads::scale`). At large N,
//! compile the sources in partitioned groups (`mcc --all` over chunks) or
//! one `mcc` per source; a monolithic merge of all N would exceed a single
//! GP group's capacity and the linker will refuse it with a Range error.

use om_codegen::crt0;
use om_objfile::binary;
use om_workloads::build::stdlib_archive;
use om_workloads::scale;
use om_workloads::spec;
use std::path::PathBuf;
use std::process::exit;

fn main() {
    let mut args = std::env::args().skip(1);
    let (Some(name), Some(dir)) = (args.next(), args.next()) else {
        eprintln!("usage: genbench BENCHMARK OUTDIR [--quick]");
        eprintln!("       genbench --scale N OUTDIR");
        eprintln!("benchmarks: {}", spec::all().iter().map(|s| s.name).collect::<Vec<_>>().join(" "));
        exit(2);
    };

    let user_sources: Vec<(String, String)> = if name == "--scale" {
        let Ok(n) = dir.parse::<usize>() else {
            eprintln!("genbench: --scale needs a module count");
            exit(2);
        };
        if !(2..=4000).contains(&n) {
            eprintln!("genbench: --scale module count must be in 2..=4000");
            exit(2);
        }
        let Some(outdir) = args.next() else {
            eprintln!("usage: genbench --scale N OUTDIR");
            exit(2);
        };
        let sp = scale::scale_spec(n);
        eprintln!(
            "genbench: scale{} = {} modules x {} procs ({} procedures; compile in groups of <= {})",
            n,
            sp.modules,
            sp.procs_per_module,
            scale::total_procs(&sp),
            scale::chunk_modules(&sp)
        );
        return write_out(&outdir, scale::sources(&sp));
    } else {
        let Some(mut s) = spec::by_name(&name) else {
            eprintln!("genbench: unknown benchmark `{name}`");
            exit(2);
        };
        if args.next().as_deref() == Some("--quick") {
            s = spec::quick(&s);
        }
        om_workloads::build::sources(&s)
    };
    write_out(&dir, user_sources);
}

fn write_out(dir: &str, user_sources: Vec<(String, String)>) {
    let dir = PathBuf::from(dir);
    std::fs::create_dir_all(&dir).unwrap();
    let libdir = dir.join("lib");
    std::fs::create_dir_all(&libdir).unwrap();

    let n_user = user_sources.len();
    for (module, src) in user_sources {
        let p = dir.join(format!("{module}.mc"));
        std::fs::write(&p, src).unwrap();
    }
    eprintln!("genbench: wrote {n_user} sources to {}", dir.display());
    for (module, src) in om_workloads::stdlib::STDLIB_SOURCES {
        let p = libdir.join(format!("{module}.mc"));
        std::fs::write(&p, src).unwrap();
    }
    eprintln!("genbench: wrote {} library sources to {}", om_workloads::stdlib::STDLIB_SOURCES.len(), libdir.display());

    // Convenience: a pre-built libstd.a and crt0.o so the tool pipeline can
    // start immediately.
    let ar = stdlib_archive().unwrap();
    std::fs::write(dir.join("libstd.a"), binary::write_archive(&ar)).unwrap();
    std::fs::write(
        dir.join("crt0.o"),
        binary::write_module(&crt0::module().unwrap()),
    )
    .unwrap();
    eprintln!("genbench: wrote {} and {}", dir.join("libstd.a").display(), dir.join("crt0.o").display());
}
