//! `genbench` — write a synthetic benchmark's mini-C sources (and the
//! standard library's) to a directory, so the whole pipeline can be driven
//! through the command-line tools:
//!
//! ```text
//! genbench spice out/
//! mcc out/*.mc                       # each source -> out/*.o
//! om -o spice.exe out/*.o out/libstd.a --stats
//! asim --timing spice.exe
//! ```
//!
//! (`out/crt0.o` and `out/libstd.a` are emitted pre-built; the library
//! sources under `out/lib/` are included for inspection or rebuilding with
//! `mcc --ar`.)

use om_codegen::crt0;
use om_objfile::binary;
use om_workloads::build::stdlib_archive;
use om_workloads::spec;
use std::path::PathBuf;
use std::process::exit;

fn main() {
    let mut args = std::env::args().skip(1);
    let (Some(name), Some(dir)) = (args.next(), args.next()) else {
        eprintln!("usage: genbench BENCHMARK OUTDIR [--quick]");
        eprintln!("benchmarks: {}", spec::all().iter().map(|s| s.name).collect::<Vec<_>>().join(" "));
        exit(2);
    };
    let quick = args.next().as_deref() == Some("--quick");

    let Some(mut s) = spec::by_name(&name) else {
        eprintln!("genbench: unknown benchmark `{name}`");
        exit(2);
    };
    if quick {
        s = spec::quick(&s);
    }

    let dir = PathBuf::from(dir);
    std::fs::create_dir_all(&dir).unwrap();
    let libdir = dir.join("lib");
    std::fs::create_dir_all(&libdir).unwrap();

    for (module, src) in om_workloads::build::sources(&s) {
        let p = dir.join(format!("{module}.mc"));
        std::fs::write(&p, src).unwrap();
        eprintln!("genbench: wrote {}", p.display());
    }
    for (module, src) in om_workloads::stdlib::STDLIB_SOURCES {
        let p = libdir.join(format!("{module}.mc"));
        std::fs::write(&p, src).unwrap();
    }
    eprintln!("genbench: wrote {} library sources to {}", om_workloads::stdlib::STDLIB_SOURCES.len(), libdir.display());

    // Convenience: a pre-built libstd.a and crt0.o so the tool pipeline can
    // start immediately.
    let ar = stdlib_archive().unwrap();
    std::fs::write(dir.join("libstd.a"), binary::write_archive(&ar)).unwrap();
    std::fs::write(
        dir.join("crt0.o"),
        binary::write_module(&crt0::module().unwrap()),
    )
    .unwrap();
    eprintln!("genbench: wrote {} and {}", dir.join("libstd.a").display(), dir.join("crt0.o").display());
}
