//! Regression tests: malformed modules must fail the link with a typed
//! [`LinkError`], never a panic. Each case here reconstructs an input that
//! formerly crashed (out-of-bounds patch slices, catch-all `panic!` arms) —
//! a long-running link server cannot afford to abort the process on one bad
//! request.

use om_linker::{link_modules, LayoutOpts, LinkError, Linker};
use om_objfile::{LitaEntry, Module, Reloc, RelocKind, SecId, SymId, Symbol};

/// A well-formed standalone program: `__start` loads `g`'s address through
/// its GAT slot and returns. Every malformed case below is a corruption of
/// this module.
fn base_module() -> Module {
    let mut m = Module::new("m");
    // Four encoded no-op-ish words; contents never execute in these tests,
    // they only need to decode as far as the linker cares (it does not).
    m.text = vec![0; 16];
    m.data = vec![0; 16];
    m.symbols.push(Symbol::proc("__start", 0, 16, 0));
    m.symbols.push(Symbol::data("g", SecId::Data, 0, 8));
    m.lita.push(LitaEntry { sym: SymId(1), addend: 0 });
    m.relocs.push(Reloc::text(0, RelocKind::Literal { lita: 0 }));
    m
}

fn link(m: Module) -> Result<(), LinkError> {
    link_modules(&[m], &[], &LayoutOpts::default()).map(|_| ())
}

#[test]
fn base_module_links() {
    link(base_module()).unwrap();
}

#[test]
fn truncated_patch_field_is_a_typed_error() {
    // A text relocation naming the last two bytes of the section: the
    // 2-byte displacement patch starts in bounds but the 4-byte instruction
    // field it belongs to does not fit — formerly an out-of-bounds slice
    // panic inside the linker's `patch16`.
    let mut m = base_module();
    m.relocs.push(Reloc::text(14, RelocKind::Gprel16 { sym: SymId(1), addend: 0, gp_group: 0 }));
    assert!(matches!(link(m), Err(LinkError::Object(_))));
}

#[test]
fn unaligned_text_relocation_is_a_typed_error() {
    let mut m = base_module();
    m.relocs.push(Reloc::text(2, RelocKind::Gprel16 { sym: SymId(1), addend: 0, gp_group: 0 }));
    assert!(matches!(link(m), Err(LinkError::Object(_))));
}

#[test]
fn refquad_overhanging_its_section_is_a_typed_error() {
    // An 8-byte data patch whose field sticks out past the section end —
    // formerly an out-of-bounds slice panic in the data-segment patch loop.
    let mut m = base_module();
    m.relocs.push(Reloc {
        sec: SecId::Data,
        offset: 12,
        kind: RelocKind::RefQuad { sym: SymId(1), addend: 0 },
    });
    assert!(matches!(link(m), Err(LinkError::Object(_))));
}

#[test]
fn refquad_in_zero_fill_section_is_a_typed_error() {
    // There are no bytes to patch in .bss — formerly the relocation
    // dispatcher's catch-all arm.
    let mut m = base_module();
    m.bss_size = 16;
    m.relocs.push(Reloc {
        sec: SecId::Bss,
        offset: 0,
        kind: RelocKind::RefQuad { sym: SymId(1), addend: 0 },
    });
    assert!(matches!(link(m), Err(LinkError::Object(_))));
}

#[test]
fn text_only_relocation_in_data_is_a_typed_error() {
    // A GPDISP (or any text-only kind) against the data section has no
    // meaning; the dispatcher's `(sec, other)` catch-all used to
    // `panic!("{other:?}")` on it.
    let mut m = base_module();
    m.relocs.push(Reloc {
        sec: SecId::Data,
        offset: 8,
        kind: RelocKind::Gpdisp { pair_offset: 4, anchor: 0, gp_group: 0 },
    });
    assert!(matches!(link(m), Err(LinkError::Object(_))));
}

#[test]
fn literal_indexing_missing_lita_slot_is_a_typed_error() {
    let mut m = base_module();
    m.relocs.push(Reloc::text(4, RelocKind::Literal { lita: 9 }));
    assert!(matches!(link(m), Err(LinkError::Object(_))));
}

#[test]
fn builder_api_reports_the_same_typed_error() {
    let mut m = base_module();
    m.relocs.push(Reloc::text(14, RelocKind::Gprel16 { sym: SymId(1), addend: 0, gp_group: 0 }));
    let r = Linker::new().object(m).link();
    assert!(matches!(r, Err(LinkError::Object(_))));
}

#[test]
fn near_i32_max_section_is_a_typed_range_error() {
    // A .bss that alone fills the data segment's 31-bit span: layout must
    // reject it with LinkError::Range *before* build_image tries to
    // materialize a multi-gigabyte zero fill.
    let mut m = base_module();
    m.bss_size = i32::MAX as u64;
    let e = link(m).unwrap_err();
    assert!(matches!(e, LinkError::Range { .. }), "{e}");
    assert!(e.to_string().contains("span"), "{e}");
}

#[test]
fn wrapping_section_sizes_are_a_typed_range_error() {
    // Sizes whose sum wraps u64: formerly silent wraparound in the layout
    // accumulator, producing overlapping sections.
    let mut a = base_module();
    a.bss_size = u64::MAX - 64;
    let mut b = base_module();
    b.name = "n".to_string();
    b.symbols[0] = Symbol::data("g2", SecId::Data, 0, 8);
    b.symbols[1] = Symbol::data("g3", SecId::Data, 8, 8);
    b.bss_size = 128;
    let r = link_modules(&[a, b], &[], &LayoutOpts::default()).map(|_| ());
    assert!(matches!(r, Err(LinkError::Range { .. })), "{r:?}");
}

#[test]
fn single_module_gat_overflow_is_a_typed_range_error() {
    // GP groups split only at module boundaries, so one module with more
    // unique literal slots than a group holds can never be laid out — the
    // failure mode of a monolithic compile-all merge at scale.
    let mut m = base_module();
    om_workloads::pad_gat(&mut m, om_linker::GAT_GROUP_CAPACITY + 1, "x");
    let e = link(m).unwrap_err();
    assert!(matches!(e, LinkError::Range { .. }), "{e}");
    assert!(e.to_string().contains("GAT"), "{e}");
}

#[test]
fn exactly_one_group_of_slots_still_links() {
    // The boundary itself is legal: a module with exactly GAT_GROUP_CAPACITY
    // unique slots fills one group without error.
    let mut m = base_module();
    om_workloads::pad_gat(&mut m, om_linker::GAT_GROUP_CAPACITY - 1, "y");
    link(m).unwrap();
}

#[test]
fn errors_render_without_panicking() {
    let mut m = base_module();
    m.relocs.push(Reloc::text(14, RelocKind::Gprel16 { sym: SymId(1), addend: 0, gp_group: 0 }));
    let e = link(m).unwrap_err();
    assert!(!e.to_string().is_empty());
}
