//! Executable images.

use std::collections::HashMap;

/// A loaded memory segment.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    /// Virtual base address.
    pub base: u64,
    /// Contents; zero-fill sections are materialized as zero bytes.
    pub bytes: Vec<u8>,
}

impl Segment {
    /// End address (exclusive).
    pub fn end(&self) -> u64 {
        self.base + self.bytes.len() as u64
    }

    /// True if `addr` falls inside the segment.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.end()
    }
}

/// Section extents recorded for statistics and diagnostics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Extent {
    pub base: u64,
    pub size: u64,
}

/// Section-level layout summary of a linked image.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LayoutInfo {
    pub text: Extent,
    pub lita: Extent,
    pub sdata: Extent,
    pub sbss: Extent,
    pub data: Extent,
    pub bss: Extent,
    /// GP value per GAT group.
    pub gp_values: Vec<u64>,
}

/// A fully linked, executable program image.
#[derive(Debug, Clone, PartialEq)]
pub struct Image {
    /// Text segment then data segment.
    pub segments: Vec<Segment>,
    /// Address of `__start`.
    pub entry: u64,
    /// Global symbol addresses (exported symbols and procedures), for
    /// debugging, statistics, and the simulator's profiler.
    pub symbols: HashMap<String, u64>,
    pub layout: LayoutInfo,
}

impl Image {
    /// Reads the byte at `addr`, if mapped.
    pub fn read_byte(&self, addr: u64) -> Option<u8> {
        self.segments
            .iter()
            .find(|s| s.contains(addr))
            .map(|s| s.bytes[(addr - s.base) as usize])
    }

    /// Total mapped size in bytes.
    pub fn mapped_size(&self) -> u64 {
        self.segments.iter().map(|s| s.bytes.len() as u64).sum()
    }

    /// Serializes the image to the on-disk executable format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w: Vec<u8> = Vec::new();
        w.extend_from_slice(b"OMEXE01\0");
        let pu64 = |w: &mut Vec<u8>, v: u64| w.extend_from_slice(&v.to_le_bytes());
        pu64(&mut w, self.entry);
        pu64(&mut w, self.segments.len() as u64);
        for s in &self.segments {
            pu64(&mut w, s.base);
            pu64(&mut w, s.bytes.len() as u64);
            w.extend_from_slice(&s.bytes);
        }
        let mut syms: Vec<(&String, &u64)> = self.symbols.iter().collect();
        syms.sort();
        pu64(&mut w, syms.len() as u64);
        for (name, &addr) in syms {
            pu64(&mut w, name.len() as u64);
            w.extend_from_slice(name.as_bytes());
            pu64(&mut w, addr);
        }
        // Layout info: the extents plus GP values.
        for e in [
            self.layout.text,
            self.layout.lita,
            self.layout.sdata,
            self.layout.sbss,
            self.layout.data,
            self.layout.bss,
        ] {
            pu64(&mut w, e.base);
            pu64(&mut w, e.size);
        }
        pu64(&mut w, self.layout.gp_values.len() as u64);
        for &g in &self.layout.gp_values {
            pu64(&mut w, g);
        }
        w
    }

    /// Deserializes an image written by [`Image::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns a message describing the first malformed field.
    pub fn from_bytes(bytes: &[u8]) -> Result<Image, String> {
        struct R<'a>(&'a [u8], usize);
        impl<'a> R<'a> {
            fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
                if self.1 + n > self.0.len() {
                    return Err("truncated image".to_string());
                }
                let s = &self.0[self.1..self.1 + n];
                self.1 += n;
                Ok(s)
            }
            fn u64(&mut self) -> Result<u64, String> {
                Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
            }
        }
        let mut r = R(bytes, 0);
        if r.take(8)? != b"OMEXE01\0" {
            return Err("bad image magic".to_string());
        }
        let entry = r.u64()?;
        let nseg = r.u64()? as usize;
        if nseg > 1024 {
            return Err("implausible segment count".to_string());
        }
        let mut segments = Vec::with_capacity(nseg);
        for _ in 0..nseg {
            let base = r.u64()?;
            let len = r.u64()? as usize;
            segments.push(Segment { base, bytes: r.take(len)?.to_vec() });
        }
        let nsym = r.u64()? as usize;
        let mut symbols = HashMap::with_capacity(nsym);
        for _ in 0..nsym {
            let len = r.u64()? as usize;
            let name = String::from_utf8(r.take(len)?.to_vec())
                .map_err(|_| "bad symbol name".to_string())?;
            symbols.insert(name, r.u64()?);
        }
        let mut ext = [Extent::default(); 6];
        for e in &mut ext {
            e.base = r.u64()?;
            e.size = r.u64()?;
        }
        let ngp = r.u64()? as usize;
        let mut gp_values = Vec::with_capacity(ngp);
        for _ in 0..ngp {
            gp_values.push(r.u64()?);
        }
        Ok(Image {
            segments,
            entry,
            symbols,
            layout: LayoutInfo {
                text: ext[0],
                lita: ext[1],
                sdata: ext[2],
                sbss: ext[3],
                data: ext[4],
                bss: ext[5],
                gp_values,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_bounds() {
        let s = Segment { base: 0x1000, bytes: vec![7; 16] };
        assert!(s.contains(0x1000) && s.contains(0x100F));
        assert!(!s.contains(0x1010));
        assert_eq!(s.end(), 0x1010);
    }

    #[test]
    fn image_reads() {
        let img = Image {
            segments: vec![Segment { base: 0x1000, bytes: vec![1, 2, 3] }],
            entry: 0x1000,
            symbols: HashMap::new(),
            layout: LayoutInfo::default(),
        };
        assert_eq!(img.read_byte(0x1001), Some(2));
        assert_eq!(img.read_byte(0x2000), None);
        assert_eq!(img.mapped_size(), 3);
    }

    #[test]
    fn image_binary_roundtrip() {
        let mut symbols = HashMap::new();
        symbols.insert("main".to_string(), 0x1_2000_0040u64);
        symbols.insert("__start".to_string(), 0x1_2000_0000u64);
        let img = Image {
            segments: vec![
                Segment { base: 0x1_2000_0000, bytes: vec![0x1F, 4, 0xFF, 0x47] },
                Segment { base: 0x1_4000_0000, bytes: vec![9; 32] },
            ],
            entry: 0x1_2000_0000,
            symbols,
            layout: LayoutInfo {
                text: Extent { base: 0x1_2000_0000, size: 4 },
                gp_values: vec![0x1_4000_8000],
                ..LayoutInfo::default()
            },
        };
        let back = Image::from_bytes(&img.to_bytes()).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn image_rejects_garbage() {
        assert!(Image::from_bytes(b"NOTANEXE").is_err());
        let good = Image {
            segments: vec![],
            entry: 0,
            symbols: HashMap::new(),
            layout: LayoutInfo::default(),
        }
        .to_bytes();
        assert!(Image::from_bytes(&good[..good.len() - 1]).is_err());
    }
}
