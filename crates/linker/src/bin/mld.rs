//! `mld` — the standard (non-optimizing) linker driver.
//!
//! ```text
//! mld [-o OUT.exe] [--sort-commons] FILE.o... [LIB.a...]
//! ```
//!
//! Inputs ending in `.a` are searched as archives (in the order given);
//! everything else is an explicit object. Writes an executable image and
//! prints link statistics.

use om_linker::{LayoutOpts, Linker};
use om_objfile::binary;
use std::path::PathBuf;
use std::process::exit;

fn main() {
    let mut objects = Vec::new();
    let mut libs = Vec::new();
    let mut out = PathBuf::from("a.exe");
    let mut opts = LayoutOpts::default();

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-o" => {
                i += 1;
                out = PathBuf::from(args.get(i).unwrap_or_else(|| {
                    eprintln!("mld: -o needs a path");
                    exit(2);
                }));
            }
            "--sort-commons" => opts.sort_commons = true,
            f if !f.starts_with('-') => {
                let bytes = std::fs::read(f).unwrap_or_else(|e| {
                    eprintln!("mld: cannot read {f}: {e}");
                    exit(1);
                });
                if f.ends_with(".a") {
                    libs.push(binary::read_archive(&bytes).unwrap_or_else(|e| {
                        eprintln!("mld: {f}: {e}");
                        exit(1);
                    }));
                } else {
                    objects.push(binary::read_module(&bytes).unwrap_or_else(|e| {
                        eprintln!("mld: {f}: {e}");
                        exit(1);
                    }));
                }
            }
            other => {
                eprintln!("mld: unknown option {other}");
                exit(2);
            }
        }
        i += 1;
    }
    if objects.is_empty() {
        eprintln!("usage: mld [-o OUT.exe] [--sort-commons] FILE.o... [LIB.a...]");
        exit(2);
    }

    let mut linker = Linker::new().layout_opts(opts);
    for o in objects {
        linker = linker.object(o);
    }
    for l in libs {
        linker = linker.library(l);
    }
    match linker.link() {
        Ok((image, stats)) => {
            std::fs::write(&out, image.to_bytes()).unwrap();
            eprintln!(
                "mld: wrote {} ({} modules, text {} bytes, GAT {} slots in {} group(s))",
                out.display(),
                stats.modules,
                stats.text_bytes,
                stats.gat_slots,
                stats.gp_groups
            );
        }
        Err(e) => {
            eprintln!("mld: {e}");
            exit(1);
        }
    }
}
