//! Link-time errors.

use std::fmt;

/// Errors produced while resolving, laying out, or relocating a program.
#[derive(Debug, Clone, PartialEq)]
pub enum LinkError {
    /// A referenced symbol has no definition in any module or library.
    Undefined { name: String, referenced_by: String },
    /// Two modules export conflicting definitions of one name.
    Duplicate { name: String, modules: (String, String) },
    /// A displacement no longer fits its instruction field.
    Range { what: String },
    /// A relocation kind/section combination the linker does not handle —
    /// malformed (or hostile) input, reported instead of crashing so a
    /// long-running link server fails the request, not the process.
    Unsupported { what: String },
    /// A module failed structural validation.
    Object(om_objfile::ObjError),
    /// The program has no `__start`.
    NoEntry,
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkError::Undefined { name, referenced_by } => {
                write!(f, "undefined symbol `{name}` (referenced by `{referenced_by}`)")
            }
            LinkError::Duplicate { name, modules } => write!(
                f,
                "symbol `{name}` multiply defined (in `{}` and `{}`)",
                modules.0, modules.1
            ),
            LinkError::Range { what } => write!(f, "relocation out of range: {what}"),
            LinkError::Unsupported { what } => write!(f, "unsupported relocation: {what}"),
            LinkError::Object(e) => write!(f, "{e}"),
            LinkError::NoEntry => write!(f, "no `__start` symbol in the program"),
        }
    }
}

impl std::error::Error for LinkError {}

impl From<om_objfile::ObjError> for LinkError {
    fn from(e: om_objfile::ObjError) -> Self {
        LinkError::Object(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_parties() {
        let e = LinkError::Undefined { name: "sin".into(), referenced_by: "main".into() };
        assert!(e.to_string().contains("sin") && e.to_string().contains("main"));
    }
}
