//! Relocation application and image construction.

use crate::error::LinkError;
use crate::image::{Image, Segment};
use crate::layout::{sym_addr, ProgramLayout};
use crate::resolve::SymbolTable;
use om_objfile::{Module, RelocKind, SecId, SymbolDef, Visibility, DATA_BASE};
use std::collections::HashMap;

// The patch helpers bounds-check every write: relocation offsets are
// validated against their module's section extents up front, but segment
// offsets here are *derived* (module base + relocation offset), so a checked
// slice turns any inconsistency into a typed error instead of a panic — a
// daemon serving link requests must never abort on one bad input.

fn patched<'a>(buf: &'a mut [u8], off: usize, width: usize) -> Result<&'a mut [u8], LinkError> {
    buf.get_mut(off..off.saturating_add(width)).ok_or_else(|| LinkError::Range {
        what: format!("{width}-byte patch at +{off:#x} outside its segment"),
    })
}

fn patch16(buf: &mut [u8], off: usize, v: i16) -> Result<(), LinkError> {
    patched(buf, off, 2)?.copy_from_slice(&(v as u16).to_le_bytes());
    Ok(())
}

fn patch64(buf: &mut [u8], off: usize, v: u64) -> Result<(), LinkError> {
    patched(buf, off, 8)?.copy_from_slice(&v.to_le_bytes());
    Ok(())
}

fn patch_branch(buf: &mut [u8], off: usize, disp: i32) -> Result<(), LinkError> {
    if !(-(1 << 20)..(1 << 20)).contains(&disp) {
        return Err(LinkError::Range { what: format!("branch displacement {disp}") });
    }
    let field = patched(buf, off, 4)?;
    let mut word = u32::from_le_bytes(field[..4].try_into().unwrap());
    word = (word & 0xFFE0_0000) | (disp as u32 & 0x001F_FFFF);
    field.copy_from_slice(&word.to_le_bytes());
    Ok(())
}

/// Splits a 32-bit displacement into LDAH/LDA halves (the low half is
/// sign-extended by hardware, so the high half compensates).
///
/// # Errors
///
/// Returns [`LinkError::Range`] when `disp` exceeds the pair's ±2GB span.
pub fn split_gpdisp(disp: i64) -> Result<(i16, i16), LinkError> {
    let lo = disp as i16;
    let rest = disp - lo as i64;
    if rest & 0xFFFF != 0 {
        // Unreachable arithmetically (disp - sign_extend(disp as i16) always
        // clears the low half), but a real error beats silent truncation if
        // the invariant is ever broken.
        return Err(LinkError::Range { what: format!("gpdisp {disp} low half") });
    }
    let hi = i16::try_from(rest >> 16)
        .map_err(|_| LinkError::Range { what: format!("gpdisp {disp}") })?;
    Ok((hi, lo))
}

/// Applies all relocations and builds the final image.
///
/// # Errors
///
/// Returns [`LinkError`] on unresolvable symbols or out-of-range fields.
pub fn build_image(
    modules: &[Module],
    symtab: &SymbolTable,
    layout: &ProgramLayout,
) -> Result<Image, LinkError> {
    // Text segment.
    let text_size = layout.info.text.size as usize;
    let mut text = vec![0u8; text_size];
    for (mi, m) in modules.iter().enumerate() {
        let off = (layout.bases[mi].text - layout.info.text.base) as usize;
        text[off..off + m.text.len()].copy_from_slice(&m.text);
    }

    // Data segment covers everything from the GAT through the end of .bss.
    let data_end = layout.info.bss.base + layout.info.bss.size;
    let mut data = vec![0u8; (data_end - DATA_BASE) as usize];
    for (mi, m) in modules.iter().enumerate() {
        let b = &layout.bases[mi];
        let s = (b.sdata - DATA_BASE) as usize;
        data[s..s + m.sdata.len()].copy_from_slice(&m.sdata);
        let d = (b.data - DATA_BASE) as usize;
        data[d..d + m.data.len()].copy_from_slice(&m.data);
    }

    // Fill the merged GAT: every module writes its resolved slot values
    // (deduplicated slots are written multiple times with identical values).
    for (mi, m) in modules.iter().enumerate() {
        for (li, e) in m.lita.iter().enumerate() {
            let v = (sym_addr(modules, symtab, layout, mi, e.sym)? as i64 + e.addend) as u64;
            let slot = layout.lita_addr[mi][li];
            patch64(&mut data, (slot - DATA_BASE) as usize, v)?;
        }
    }

    // Apply relocations.
    for (mi, m) in modules.iter().enumerate() {
        let bases = &layout.bases[mi];
        let gp = layout.gp_values[layout.group_of_module[mi] as usize];
        for r in &m.relocs {
            match (r.sec, &r.kind) {
                (SecId::Text, RelocKind::Literal { lita }) => {
                    let slot = layout.lita_addr[mi][*lita as usize];
                    let disp = slot as i64 - gp as i64;
                    let d = i16::try_from(disp).map_err(|_| LinkError::Range {
                        what: format!("GAT slot {disp} bytes from GP in `{}`", m.name),
                    })?;
                    let off = (bases.text - layout.info.text.base + r.offset) as usize;
                    patch16(&mut text, off, d)?;
                }
                (SecId::Text, RelocKind::Gpdisp { pair_offset, anchor, .. }) => {
                    let disp = gp as i64 - (bases.text + anchor) as i64;
                    let (hi, lo) = split_gpdisp(disp)?;
                    let hi_off = (bases.text - layout.info.text.base + r.offset) as usize;
                    let lo_off = (hi_off as i64 + pair_offset) as usize;
                    patch16(&mut text, hi_off, hi)?;
                    patch16(&mut text, lo_off, lo)?;
                }
                (SecId::Text, RelocKind::BrAddr { sym, addend }) => {
                    let target = (sym_addr(modules, symtab, layout, mi, *sym)? as i64 + addend) as u64;
                    let pc = bases.text + r.offset;
                    let delta = target as i64 - (pc as i64 + 4);
                    if delta % 4 != 0 {
                        return Err(LinkError::Range {
                            what: format!(
                                "branch target {target:#x} not instruction-aligned in `{}`",
                                m.name
                            ),
                        });
                    }
                    let off = (pc - layout.info.text.base) as usize;
                    patch_branch(&mut text, off, (delta / 4) as i32)?;
                }
                (SecId::Text, RelocKind::Gprel16 { sym, addend, .. }) => {
                    let target =
                        sym_addr(modules, symtab, layout, mi, *sym)? as i64 + addend;
                    let disp = target - gp as i64;
                    let d = i16::try_from(disp).map_err(|_| LinkError::Range {
                        what: format!("gprel16 {disp} in `{}`", m.name),
                    })?;
                    let off = (bases.text - layout.info.text.base + r.offset) as usize;
                    patch16(&mut text, off, d)?;
                }
                (SecId::Text, RelocKind::GprelHigh { sym, addend, .. }) => {
                    let target = sym_addr(modules, symtab, layout, mi, *sym)? as i64 + addend;
                    let (hi, _) = split_gpdisp(target - gp as i64)?;
                    let off = (bases.text - layout.info.text.base + r.offset) as usize;
                    patch16(&mut text, off, hi)?;
                }
                (SecId::Text, RelocKind::GprelLow { sym, addend, hi_addend, .. }) => {
                    let target = sym_addr(modules, symtab, layout, mi, *sym)?;
                    let (hi, _) = split_gpdisp(target as i64 + hi_addend - gp as i64)?;
                    let disp = target as i64 + addend - gp as i64 - ((hi as i64) << 16);
                    let d = i16::try_from(disp).map_err(|_| LinkError::Range {
                        what: format!("gprellow {disp} in `{}`", m.name),
                    })?;
                    let off = (bases.text - layout.info.text.base + r.offset) as usize;
                    patch16(&mut text, off, d)?;
                }
                (SecId::Text, _) => {} // LITUSE hints need no patching
                (sec, RelocKind::RefQuad { sym, addend }) => {
                    let v = (sym_addr(modules, symtab, layout, mi, *sym)? as i64 + addend) as u64;
                    let base = match sec {
                        SecId::Data => bases.data,
                        SecId::Sdata => bases.sdata,
                        _ => {
                            return Err(LinkError::Unsupported {
                                what: format!("refquad in zero-fill section {sec}"),
                            })
                        }
                    };
                    patch64(&mut data, (base - DATA_BASE + r.offset) as usize, v)?;
                }
                (sec, other) => {
                    return Err(LinkError::Unsupported {
                        what: format!("{other:?} in {sec}"),
                    })
                }
            }
        }
    }

    // Symbol map: exported strong symbols plus local procedures (qualified).
    let mut symbols: HashMap<String, u64> = HashMap::new();
    for (name, &(mi, id)) in &symtab.globals {
        symbols.insert(name.clone(), sym_addr(modules, symtab, layout, mi, id)?);
    }
    for (name, &addr) in &layout.common_addr {
        symbols.insert(name.clone(), addr);
    }
    for (mi, m) in modules.iter().enumerate() {
        for (id, s) in m.symbols_with_ids() {
            if s.vis == Visibility::Local && matches!(s.def, SymbolDef::Proc { .. }) {
                symbols
                    .entry(format!("{}.{}", s.name, m.name))
                    .or_insert(sym_addr(modules, symtab, layout, mi, id)?);
            }
        }
    }

    let entry = *symbols.get("__start").ok_or(LinkError::NoEntry)?;

    Ok(Image {
        segments: vec![
            Segment { base: layout.info.text.base, bytes: text },
            Segment { base: DATA_BASE, bytes: data },
        ],
        entry,
        symbols,
        layout: layout.info.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpdisp_split_reconstructs() {
        for disp in [0i64, 1, -1, 32767, -32768, 32768, 0x1234_5678, -0x1234_5678, 0x7FFF_7FFF] {
            let (hi, lo) = split_gpdisp(disp).unwrap();
            assert_eq!(((hi as i64) << 16) + lo as i64, disp, "disp {disp:#x}");
        }
    }

    #[test]
    fn gpdisp_split_rejects_out_of_range() {
        assert!(split_gpdisp(1 << 40).is_err());
        assert!(split_gpdisp(-(1 << 40)).is_err());
        // The exact boundary: hi must fit i16 after low-half compensation.
        assert!(split_gpdisp(0x7FFF_7FFF).is_ok());
        assert!(split_gpdisp(0x7FFF_8000).is_err());
    }

    #[test]
    fn gpdisp_low_half_sign_compensation() {
        // A displacement whose low 16 bits are "negative" forces hi up by 1.
        let disp = 0x0001_8000; // lo = -32768, hi = 2
        let (hi, lo) = split_gpdisp(disp).unwrap();
        assert_eq!(lo, -32768);
        assert_eq!(hi, 2);
    }

    #[test]
    fn branch_patch_bounds() {
        let mut buf = vec![0u8; 4];
        assert!(patch_branch(&mut buf, 0, (1 << 20) - 1).is_ok());
        assert!(patch_branch(&mut buf, 0, -(1 << 20)).is_ok());
        assert!(patch_branch(&mut buf, 0, 1 << 20).is_err());
        assert!(patch_branch(&mut buf, 0, -(1 << 20) - 1).is_err());
    }

    #[test]
    fn branch_patch_preserves_opcode_bits() {
        let word = om_alpha::encode(om_alpha::Inst::Br {
            op: om_alpha::BrOp::Bsr,
            ra: om_alpha::Reg::RA,
            disp: 0,
        });
        let mut buf = word.to_le_bytes().to_vec();
        patch_branch(&mut buf, 0, -7).unwrap();
        let patched = u32::from_le_bytes(buf.try_into().unwrap());
        match om_alpha::decode(patched).unwrap() {
            om_alpha::Inst::Br { op: om_alpha::BrOp::Bsr, ra, disp } => {
                assert_eq!(ra, om_alpha::Reg::RA);
                assert_eq!(disp, -7);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn patch16_writes_little_endian() {
        let mut buf = vec![0u8; 4];
        patch16(&mut buf, 0, -2).unwrap();
        assert_eq!(&buf[..2], &[0xFE, 0xFF]);
    }
}
