//! Program layout: section placement, GAT merging with deduplication, GP
//! value selection, and common-symbol allocation.
//!
//! The data segment is laid out as `[.lita][.sdata][commons][.sbss][.data]
//! [.bss]`, so the GAT sits at the bottom of the GP window and the small
//! data right above it. The GP for each GAT group is `group base + 0x8000`,
//! putting the entire group plus as much small data as possible within the
//! signed 16-bit window — the "simple heuristic to pick a good value for the
//! GP" the paper mentions.

use crate::error::LinkError;
use crate::image::{Extent, LayoutInfo};
use crate::resolve::SymbolTable;
use om_objfile::{Module, SecId, SymbolDef, SymId, Visibility, DATA_BASE, TEXT_BASE};
use std::collections::HashMap;

/// Maximum GAT slots per GP group: a signed 16-bit displacement spans 64KB
/// around GP; with GP at `base + 0x8000` every slot of an 8191-entry table
/// is addressable.
pub const GAT_GROUP_CAPACITY: usize = 8191;

/// Layout policy knobs (the standard linker vs OM-simple differ only here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[derive(Default)]
pub struct LayoutOpts {
    /// Sort common symbols by size so the smallest land nearest the GAT
    /// (an OM-simple improvement; the standard linker allocates them in
    /// input order).
    pub sort_commons: bool,
}


/// Per-module section bases.
#[derive(Debug, Clone, Copy, Default)]
pub struct ModuleBases {
    pub text: u64,
    pub data: u64,
    pub sdata: u64,
    pub sbss: u64,
    pub bss: u64,
}

/// Identity of a GAT entry for deduplication: the resolved symbol plus
/// addend. Locally-visible symbols are distinct per module.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum GatKey {
    Global(String, i64),
    Local(usize, SymId, i64),
}

/// The computed program layout.
#[derive(Debug, Clone, Default)]
pub struct ProgramLayout {
    pub bases: Vec<ModuleBases>,
    /// GAT group of each module.
    pub group_of_module: Vec<u32>,
    /// GP value per group.
    pub gp_values: Vec<u64>,
    /// Per module, per local `.lita` index: the merged slot's address.
    pub lita_addr: Vec<Vec<u64>>,
    /// Allocated common symbol addresses.
    pub common_addr: HashMap<String, u64>,
    /// Deduplicated GAT slots in address order: (address, module, local index).
    pub slots: Vec<(u64, usize, u32)>,
    pub info: LayoutInfo,
    /// Total `.lita` entries before deduplication.
    pub gat_entries_input: usize,
    /// Slots after merging.
    pub gat_slots: usize,
}

fn align(v: u64, a: u64) -> u64 {
    v.div_ceil(a) * a
}

/// Largest data-segment span the relocation machinery can address: GPDISP
/// splitting covers ±2GB around any text address, so the whole segment must
/// stay within a signed 32-bit reach of its base.
pub const MAX_DATA_SPAN: u64 = i32::MAX as u64;

/// Advances `addr` by `size`, failing with a typed [`LinkError::Range`] if
/// the addition wraps or pushes the data segment past [`MAX_DATA_SPAN`].
/// Catching this here (not at relocation-patch time) also keeps
/// `build_image` from materializing a multi-gigabyte zero fill first.
fn data_bump(addr: &mut u64, size: u64, what: impl FnOnce() -> String) -> Result<(), LinkError> {
    match addr.checked_add(size) {
        Some(next) if next - DATA_BASE <= MAX_DATA_SPAN => {
            *addr = next;
            Ok(())
        }
        _ => Err(LinkError::Range {
            what: format!(
                "{} pushes the data segment past its {MAX_DATA_SPAN}-byte span",
                what()
            ),
        }),
    }
}

/// Computes the layout of `modules`.
///
/// # Errors
///
/// [`LinkError::Range`] when a single module's literal pool cannot fit one
/// GAT group (groups split only at module boundaries) or when the section
/// sizes overflow the data segment's addressable span.
pub fn layout(
    modules: &[Module],
    symtab: &SymbolTable,
    opts: &LayoutOpts,
) -> Result<ProgramLayout, LinkError> {
    let mut out = ProgramLayout {
        bases: vec![ModuleBases::default(); modules.len()],
        group_of_module: vec![0; modules.len()],
        lita_addr: modules.iter().map(|m| vec![0; m.lita.len()]).collect(),
        ..ProgramLayout::default()
    };

    // Text.
    let mut pc = TEXT_BASE;
    for (mi, m) in modules.iter().enumerate() {
        pc = align(pc, 16);
        out.bases[mi].text = pc;
        pc += m.text.len() as u64;
    }
    out.info.text = Extent { base: TEXT_BASE, size: pc - TEXT_BASE };

    // GAT groups: walk modules, dedup entries, splitting when a group fills.
    let mut addr = DATA_BASE;
    let lita_base = addr;
    let mut group_start = addr;
    let mut current: HashMap<GatKey, u64> = HashMap::new();
    let mut group_id: u32 = 0;
    let mut group_bases: Vec<u64> = vec![group_start];

    for (mi, m) in modules.iter().enumerate() {
        out.gat_entries_input += m.lita.len();
        // How many new slots would this module add to the current group?
        let keys: Vec<GatKey> = m
            .lita
            .iter()
            .map(|e| gat_key(modules, symtab, mi, e.sym, e.addend))
            .collect();
        let new = keys.iter().filter(|k| !current.contains_key(*k)).count();
        if current.len() + new > GAT_GROUP_CAPACITY {
            if !current.is_empty() {
                // Seal the group and start a new one for this module.
                group_id += 1;
                group_start = addr;
                group_bases.push(group_start);
                current = HashMap::new();
            }
            // Groups split only at module boundaries, so a module whose own
            // pool outgrows a fresh group can never be laid out — the wall
            // a monolithic compile-all merge of a scale-sized program hits.
            let distinct = keys.iter().collect::<std::collections::HashSet<_>>().len();
            if distinct > GAT_GROUP_CAPACITY {
                return Err(LinkError::Range {
                    what: format!(
                        "module `{}` alone needs {distinct} GAT slots but one GP group \
                         holds {GAT_GROUP_CAPACITY}; groups split only at module \
                         boundaries (recompile in smaller units)",
                        m.name
                    ),
                });
            }
        }
        out.group_of_module[mi] = group_id;
        for (li, k) in keys.into_iter().enumerate() {
            let slot = *current.entry(k).or_insert_with(|| {
                let a = addr;
                addr += 8;
                out.slots.push((a, mi, li as u32));
                a
            });
            out.lita_addr[mi][li] = slot;
        }
    }
    out.gat_slots = ((addr - lita_base) / 8) as usize;
    out.info.lita = Extent { base: lita_base, size: addr - lita_base };
    out.gp_values = group_bases.iter().map(|&b| b + 0x8000).collect();
    out.info.gp_values = out.gp_values.clone();

    // .sdata per module.
    let sdata_base = addr;
    for (mi, m) in modules.iter().enumerate() {
        out.bases[mi].sdata = addr;
        data_bump(&mut addr, m.sdata.len() as u64, || format!(".sdata of `{}`", m.name))?;
    }
    addr = align(addr, 8);
    out.info.sdata = Extent { base: sdata_base, size: addr - sdata_base };

    // Commons, optionally sorted by size (OM-simple's improvement).
    let mut commons: Vec<(&String, u64, u64)> = symtab
        .commons
        .iter()
        .map(|(n, &(size, al))| (n, size, al))
        .collect();
    if opts.sort_commons {
        commons.sort_by_key(|&(n, size, _)| (size, n.clone()));
    } else {
        // Deterministic "input" order: the order names first appear across
        // modules.
        let mut first_seen: HashMap<&str, usize> = HashMap::new();
        let mut i = 0;
        for m in modules {
            for s in &m.symbols {
                if matches!(s.def, SymbolDef::Common { .. })
                    && !first_seen.contains_key(s.name.as_str())
                {
                    first_seen.insert(&s.name, i);
                    i += 1;
                }
            }
        }
        commons.sort_by_key(|&(n, _, _)| first_seen.get(n.as_str()).copied().unwrap_or(usize::MAX));
    }
    for (name, size, al) in commons {
        addr = align(addr, al.max(8));
        out.common_addr.insert(name.clone(), addr);
        data_bump(&mut addr, size, || format!("common `{name}`"))?;
    }

    // .sbss per module.
    let sbss_base = addr;
    for (mi, m) in modules.iter().enumerate() {
        addr = align(addr, 8);
        out.bases[mi].sbss = addr;
        data_bump(&mut addr, m.sbss_size, || format!(".sbss of `{}`", m.name))?;
    }
    out.info.sbss = Extent { base: sbss_base, size: addr - sbss_base };

    // .data per module.
    addr = align(addr, 16);
    let data_base = addr;
    for (mi, m) in modules.iter().enumerate() {
        addr = align(addr, 16);
        out.bases[mi].data = addr;
        data_bump(&mut addr, m.data.len() as u64, || format!(".data of `{}`", m.name))?;
    }
    out.info.data = Extent { base: data_base, size: addr - data_base };

    // .bss per module.
    addr = align(addr, 16);
    let bss_base = addr;
    for (mi, m) in modules.iter().enumerate() {
        addr = align(addr, 16);
        out.bases[mi].bss = addr;
        data_bump(&mut addr, m.bss_size, || format!(".bss of `{}`", m.name))?;
    }
    out.info.bss = Extent { base: bss_base, size: addr - bss_base };

    Ok(out)
}

fn gat_key(
    modules: &[Module],
    symtab: &SymbolTable,
    mi: usize,
    sym: SymId,
    addend: i64,
) -> GatKey {
    let s = modules[mi].symbol(sym);
    if s.vis == Visibility::Local && s.is_defined() {
        GatKey::Local(mi, sym, addend)
    } else {
        // Exported definition or external reference: identity is the name.
        let _ = symtab;
        GatKey::Global(s.name.clone(), addend)
    }
}

/// Resolves the address of a symbol reference `(module, id)` under `layout`.
///
/// # Errors
///
/// Returns [`LinkError::Undefined`] for unresolvable externals (cannot occur
/// after [`crate::resolve::build_symbol_table`] succeeded).
pub fn sym_addr(
    modules: &[Module],
    symtab: &SymbolTable,
    layout: &ProgramLayout,
    mi: usize,
    id: SymId,
) -> Result<u64, LinkError> {
    let s = modules[mi].symbol(id);
    let defining = if s.is_defined() && (s.vis == Visibility::Local) {
        Some((mi, id))
    } else if let Some(&(dm, did)) = symtab.globals.get(&s.name) {
        Some((dm, did))
    } else {
        None
    };
    if let Some((dm, did)) = defining {
        let d = modules[dm].symbol(did);
        let b = &layout.bases[dm];
        let addr = match &d.def {
            SymbolDef::Proc { offset, .. } => b.text + offset,
            SymbolDef::Data { sec, offset, .. } => match sec {
                SecId::Data => b.data + offset,
                SecId::Sdata => b.sdata + offset,
                SecId::Sbss => b.sbss + offset,
                SecId::Bss => b.bss + offset,
                SecId::Text => b.text + offset,
            },
            SymbolDef::Common { .. } | SymbolDef::Extern => {
                // A "defined" local common cannot exist; fall through to the
                // common allocation.
                return layout
                    .common_addr
                    .get(&d.name)
                    .copied()
                    .ok_or_else(|| LinkError::Undefined {
                        name: d.name.clone(),
                        referenced_by: modules[mi].name.clone(),
                    });
            }
        };
        return Ok(addr);
    }
    layout
        .common_addr
        .get(&s.name)
        .copied()
        .ok_or_else(|| LinkError::Undefined {
            name: s.name.clone(),
            referenced_by: modules[mi].name.clone(),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolve::build_symbol_table;
    use om_objfile::{LitaEntry, Symbol};

    fn mod_with_lita(name: &str, refs: &[&str]) -> Module {
        let mut m = Module::new(name);
        m.text = vec![0; 8];
        m.symbols.push(Symbol::proc(format!("{name}_p"), 0, 8, 0));
        for r in refs {
            let id = SymId(m.symbols.len() as u32);
            m.symbols.push(Symbol::external(*r));
            m.lita.push(LitaEntry { sym: id, addend: 0 });
        }
        m
    }

    fn defs(names: &[&str]) -> Module {
        let mut m = Module::new("defs");
        m.text = vec![0; 8 * names.len()];
        for (i, n) in names.iter().enumerate() {
            m.symbols.push(Symbol::proc(*n, 8 * i as u64, 8, 0));
        }
        m
    }

    #[test]
    fn gat_entries_dedup_across_modules() {
        let mods = vec![
            mod_with_lita("a", &["f", "g"]),
            mod_with_lita("b", &["g", "h"]),
            defs(&["f", "g", "h"]),
        ];
        let t = build_symbol_table(&mods).unwrap();
        let l = layout(&mods, &t, &LayoutOpts::default()).unwrap();
        assert_eq!(l.gat_entries_input, 4);
        assert_eq!(l.gat_slots, 3); // g is shared
        // Both modules' `g` slots resolve to the same address.
        assert_eq!(l.lita_addr[0][1], l.lita_addr[1][0]);
    }

    #[test]
    fn local_symbols_do_not_merge() {
        let mut a = Module::new("a");
        a.text = vec![0; 8];
        a.symbols.push(Symbol::proc("p", 0, 8, 0).local());
        a.lita.push(LitaEntry { sym: SymId(0), addend: 0 });
        let mut b = Module::new("b");
        b.text = vec![0; 8];
        b.symbols.push(Symbol::proc("p", 0, 8, 0).local());
        b.lita.push(LitaEntry { sym: SymId(0), addend: 0 });
        let mods = vec![a, b];
        let t = build_symbol_table(&mods).unwrap();
        let l = layout(&mods, &t, &LayoutOpts::default()).unwrap();
        assert_eq!(l.gat_slots, 2);
        assert_ne!(l.lita_addr[0][0], l.lita_addr[1][0]);
    }

    #[test]
    fn gp_window_covers_the_gat() {
        let mods = vec![mod_with_lita("a", &["f"]), defs(&["f"])];
        let t = build_symbol_table(&mods).unwrap();
        let l = layout(&mods, &t, &LayoutOpts::default()).unwrap();
        let gp = l.gp_values[0];
        let slot = l.lita_addr[0][0];
        let disp = slot as i64 - gp as i64;
        assert!(i16::try_from(disp).is_ok());
    }

    #[test]
    fn sorted_commons_place_small_first() {
        let mut a = Module::new("a");
        a.symbols.push(Symbol::common("big", 4096, 8));
        a.symbols.push(Symbol::common("tiny", 8, 8));
        a.symbols.push(Symbol::external("f"));
        let mods = vec![a, defs(&["f"])];
        let t = build_symbol_table(&mods).unwrap();

        let plain = layout(&mods, &t, &LayoutOpts { sort_commons: false }).unwrap();
        let sorted = layout(&mods, &t, &LayoutOpts { sort_commons: true }).unwrap();
        // Input order: big first. Sorted: tiny first.
        assert!(plain.common_addr["big"] < plain.common_addr["tiny"]);
        assert!(sorted.common_addr["tiny"] < sorted.common_addr["big"]);
    }

    #[test]
    fn sections_do_not_overlap() {
        let mods = vec![
            {
                let mut m = mod_with_lita("a", &["f"]);
                m.sdata = vec![0; 24];
                m.data = vec![0; 100];
                m.bss_size = 64;
                m.sbss_size = 16;
                m
            },
            defs(&["f"]),
        ];
        let t = build_symbol_table(&mods).unwrap();
        let l = layout(&mods, &t, &LayoutOpts::default()).unwrap();
        let i = &l.info;
        assert!(i.lita.base + i.lita.size <= i.sdata.base);
        assert!(i.sdata.base + i.sdata.size <= i.sbss.base);
        assert!(i.sbss.base + i.sbss.size <= i.data.base);
        assert!(i.data.base + i.data.size <= i.bss.base);
    }

    #[test]
    fn group_splitting_respects_capacity() {
        // Two modules, each with GAT_GROUP_CAPACITY unique entries.
        let mut mods = Vec::new();
        for name in ["a", "b"] {
            let mut m = Module::new(name);
            m.text = vec![0; 8];
            m.symbols.push(Symbol::proc(format!("{name}_p"), 0, 8, 0));
            for i in 0..GAT_GROUP_CAPACITY {
                let id = SymId(m.symbols.len() as u32);
                m.symbols.push(Symbol::common(format!("{name}_c{i}"), 8, 8));
                m.lita.push(LitaEntry { sym: id, addend: 0 });
            }
            mods.push(m);
        }
        let t = build_symbol_table(&mods).unwrap();
        let l = layout(&mods, &t, &LayoutOpts::default()).unwrap();
        assert_eq!(l.gp_values.len(), 2);
        assert_eq!(l.group_of_module, vec![0, 1]);
    }
}
