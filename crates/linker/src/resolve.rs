//! Input resolution: archive member selection, the global symbol table, and
//! common-symbol merging.

use crate::error::LinkError;
use om_objfile::{Archive, Module, SymbolDef, SymId, Visibility};
use std::collections::HashMap;

/// Selects the modules participating in a link: all explicit objects plus
/// any archive members (transitively) needed to satisfy undefined symbols,
/// in archive order — the `ld` discipline that brings pre-compiled library
/// code into the program.
///
/// Borrows its inputs: callers keep their modules and can run many links
/// (standard and OM, at every level) off one build without cloning up
/// front. The one copy into the returned selection happens here.
///
/// # Errors
///
/// Returns [`LinkError::Object`] if any module fails validation.
pub fn select_modules(
    objects: &[Module],
    libs: &[Archive],
) -> Result<Vec<Module>, LinkError> {
    for m in objects {
        m.validate()?;
    }
    let mut defined: HashMap<&str, ()> = HashMap::new();
    let mut undefined: Vec<String> = Vec::new();
    for m in objects {
        for s in &m.symbols {
            if s.is_defined() && s.vis == Visibility::Exported {
                defined.insert(&s.name, ());
            }
        }
    }
    for m in objects {
        for s in &m.symbols {
            if !s.is_defined() && !defined.contains_key(s.name.as_str()) {
                undefined.push(s.name.clone());
            }
        }
    }

    let mut out = objects.to_vec();
    for lib in libs {
        let picked = lib.select(undefined.iter().cloned());
        // Members may satisfy each other; recompute what is still undefined
        // for the *next* archive.
        for m in picked {
            out.push(m.clone());
        }
        let now_defined: HashMap<&str, ()> = out
            .iter()
            .flat_map(|m| m.symbols.iter())
            .filter(|s| s.is_defined() && s.vis == Visibility::Exported)
            .map(|s| (s.name.as_str(), ()))
            .collect();
        undefined = out
            .iter()
            .flat_map(|m| m.symbols.iter())
            .filter(|s| !s.is_defined() && !now_defined.contains_key(s.name.as_str()))
            .map(|s| s.name.clone())
            .collect();
    }
    Ok(out)
}

/// The program-wide symbol table.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    /// Exported strong definitions: name → (module index, symbol id).
    pub globals: HashMap<String, (usize, SymId)>,
    /// Names defined only as commons: name → (max size, max align).
    pub commons: HashMap<String, (u64, u64)>,
}

/// Builds the symbol table over the selected modules.
///
/// Strong definitions (procedures, data) override common (tentative)
/// definitions; duplicate strong definitions are an error; every referenced
/// name must end up defined.
///
/// # Errors
///
/// Returns [`LinkError::Duplicate`] or [`LinkError::Undefined`].
pub fn build_symbol_table(modules: &[Module]) -> Result<SymbolTable, LinkError> {
    let mut table = SymbolTable::default();
    for (mi, m) in modules.iter().enumerate() {
        for (id, s) in m.symbols_with_ids() {
            if s.vis != Visibility::Exported {
                continue;
            }
            match &s.def {
                SymbolDef::Proc { .. } | SymbolDef::Data { .. } => {
                    if let Some(&(prev, _)) = table.globals.get(&s.name) {
                        return Err(LinkError::Duplicate {
                            name: s.name.clone(),
                            modules: (modules[prev].name.clone(), m.name.clone()),
                        });
                    }
                    table.globals.insert(s.name.clone(), (mi, id));
                }
                SymbolDef::Common { size, align } => {
                    let e = table.commons.entry(s.name.clone()).or_insert((0, 8));
                    e.0 = e.0.max(*size);
                    e.1 = e.1.max(*align);
                }
                SymbolDef::Extern => {}
            }
        }
    }
    // Strong definitions override commons.
    for name in table.globals.keys() {
        table.commons.remove(name.as_str());
        let _ = name;
    }
    let resolved: HashMap<&str, ()> = table
        .globals
        .keys()
        .map(|k| (k.as_str(), ()))
        .chain(table.commons.keys().map(|k| (k.as_str(), ())))
        .collect();
    for m in modules {
        for s in &m.symbols {
            if !s.is_defined() && !resolved.contains_key(s.name.as_str()) {
                return Err(LinkError::Undefined {
                    name: s.name.clone(),
                    referenced_by: m.name.clone(),
                });
            }
        }
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_objfile::Symbol;

    fn module(name: &str, defs: &[&str], refs: &[&str]) -> Module {
        let mut m = Module::new(name);
        m.text = vec![0; 8 * defs.len().max(1)];
        for (i, d) in defs.iter().enumerate() {
            m.symbols.push(Symbol::proc(*d, 8 * i as u64, 8, 0));
        }
        for r in refs {
            m.symbols.push(Symbol::external(*r));
        }
        m
    }

    #[test]
    fn library_members_are_pulled_transitively() {
        let mut lib = Archive::new("libstd");
        lib.add(module("a", &["alpha"], &["beta"])).unwrap();
        lib.add(module("b", &["beta"], &[])).unwrap();
        lib.add(module("c", &["gamma"], &[])).unwrap();
        let mods = select_modules(&[module("main", &["main"], &["alpha"])], &[lib]).unwrap();
        let names: Vec<&str> = mods.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, ["main", "a", "b"]);
    }

    #[test]
    fn duplicate_strong_definitions_rejected() {
        let e = build_symbol_table(&[module("x", &["f"], &[]), module("y", &["f"], &[])]);
        assert!(matches!(e, Err(LinkError::Duplicate { .. })));
    }

    #[test]
    fn undefined_reference_reported_with_referrer() {
        let e = build_symbol_table(&[module("m", &["main"], &["mystery"])]);
        match e {
            Err(LinkError::Undefined { name, referenced_by }) => {
                assert_eq!(name, "mystery");
                assert_eq!(referenced_by, "m");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn commons_merge_to_max_and_strong_wins() {
        let mut a = Module::new("a");
        a.symbols.push(Symbol::common("buf", 100, 8));
        let mut b = Module::new("b");
        b.symbols.push(Symbol::common("buf", 200, 16));
        let t = build_symbol_table(&[a.clone(), b]).unwrap();
        assert_eq!(t.commons["buf"], (200, 16));

        // Now a strong definition of buf appears: commons drop out.
        let mut strong = Module::new("s");
        strong.data = vec![0; 8];
        strong
            .symbols
            .push(Symbol::data("buf", om_objfile::SecId::Data, 0, 8));
        let t = build_symbol_table(&[a, strong]).unwrap();
        assert!(t.commons.is_empty());
        assert!(t.globals.contains_key("buf"));
    }
}
