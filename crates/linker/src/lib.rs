//! The standard (non-optimizing) linker: the baseline OM is measured
//! against.
//!
//! Links object modules and archives into an executable image: archive
//! member selection, symbol resolution, common merging, section layout, GAT
//! merging with deduplication (the paper: the linker "treats these GATs as
//! literal pools, removing duplicate addresses and merging the individual
//! GATs into a single large GAT if possible"), GP selection, and relocation.
//!
//! # Example
//!
//! ```
//! use om_codegen::{compile_source, CompileOpts, crt0};
//! use om_linker::Linker;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let main_obj = compile_source("main", "int main() { return 42; }", &CompileOpts::o2())?;
//! let image = Linker::new()
//!     .object(crt0::module()?)
//!     .object(main_obj)
//!     .link()?
//!     .0;
//! assert!(image.symbols.contains_key("main"));
//! # Ok(())
//! # }
//! ```

pub mod error;
pub mod image;
pub mod layout;
pub mod relocate;
pub mod resolve;

pub use error::LinkError;
pub use image::{Extent, Image, LayoutInfo, Segment};
pub use layout::{layout, sym_addr, LayoutOpts, ProgramLayout, GAT_GROUP_CAPACITY};
pub use relocate::build_image;
pub use resolve::{build_symbol_table, select_modules, SymbolTable};

use om_objfile::{Archive, Module};

/// Link statistics (feeds the build-time and GAT-size comparisons).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    pub modules: usize,
    /// `.lita` entries across all input modules.
    pub gat_entries_input: usize,
    /// Slots in the merged GAT.
    pub gat_slots: usize,
    pub gp_groups: usize,
    pub text_bytes: u64,
    pub data_bytes: u64,
}

/// A builder-style linker front end.
#[derive(Debug, Default)]
pub struct Linker {
    objects: Vec<Module>,
    libs: Vec<Archive>,
    opts: LayoutOpts,
}

impl Linker {
    /// Creates a linker with standard layout policy.
    pub fn new() -> Linker {
        Linker::default()
    }

    /// Adds an explicit object module.
    #[must_use]
    pub fn object(mut self, m: Module) -> Linker {
        self.objects.push(m);
        self
    }

    /// Adds a library archive (searched in the order added).
    #[must_use]
    pub fn library(mut self, a: Archive) -> Linker {
        self.libs.push(a);
        self
    }

    /// Overrides layout policy (OM passes `sort_commons: true`).
    #[must_use]
    pub fn layout_opts(mut self, opts: LayoutOpts) -> Linker {
        self.opts = opts;
        self
    }

    /// Performs the link.
    ///
    /// # Errors
    ///
    /// Returns [`LinkError`] for unresolved or duplicate symbols, malformed
    /// modules, or out-of-range relocations.
    pub fn link(self) -> Result<(Image, LinkStats), LinkError> {
        link_modules(&self.objects, &self.libs, &self.opts)
    }
}

/// Links `objects` (+ library members) with the given layout policy.
///
/// Borrows its inputs — callers that link the same build repeatedly (the
/// evaluation harness, OM at several levels) pay no per-link clone of their
/// module list.
///
/// # Errors
///
/// See [`Linker::link`].
pub fn link_modules(
    objects: &[Module],
    libs: &[Archive],
    opts: &LayoutOpts,
) -> Result<(Image, LinkStats), LinkError> {
    let modules = select_modules(objects, libs)?;
    let symtab = build_symbol_table(&modules)?;
    let lay = {
        let mut s = om_obs::span("link.layout");
        let lay = layout(&modules, &symtab, opts)?;
        s.arg("gat_slots", lay.gat_slots as u64);
        s.arg("gp_groups", lay.gp_values.len() as u64);
        lay
    };
    let image = {
        let _s = om_obs::span("link.image");
        build_image(&modules, &symtab, &lay)?
    };
    if om_obs::enabled() {
        om_obs::count("link.gat_slots", lay.gat_slots as u64);
        om_obs::count("link.text_bytes", lay.info.text.size);
        om_obs::count(
            "link.segment_bytes",
            image.segments.iter().map(|s| s.bytes.len()).sum::<usize>() as u64,
        );
    }
    let stats = LinkStats {
        modules: modules.len(),
        gat_entries_input: lay.gat_entries_input,
        gat_slots: lay.gat_slots,
        gp_groups: lay.gp_values.len(),
        text_bytes: lay.info.text.size,
        data_bytes: image.segments[1].bytes.len() as u64,
    };
    Ok((image, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_codegen::{compile_source, crt0, CompileOpts};

    fn compile(name: &str, src: &str) -> Module {
        compile_source(name, src, &CompileOpts::o2()).unwrap()
    }

    #[test]
    fn links_a_minimal_program() {
        let (image, stats) = Linker::new()
            .object(crt0::module().unwrap())
            .object(compile("m", "int main() { return 7; }"))
            .link()
            .unwrap();
        assert_eq!(stats.gp_groups, 1);
        assert!(image.entry >= image.layout.text.base);
        assert!(stats.gat_slots >= 1); // main's address for crt0
    }

    #[test]
    fn undefined_symbol_fails() {
        let r = Linker::new()
            .object(crt0::module().unwrap())
            .object(compile("m", "extern int nowhere(int); int main() { return nowhere(1); }"))
            .link();
        assert!(matches!(r, Err(LinkError::Undefined { .. })));
    }

    #[test]
    fn archives_satisfy_references() {
        let mut lib = om_objfile::Archive::new("libm");
        lib.add(compile("dblmod", "int dbl(int x) { return x * 2; }")).unwrap();
        lib.add(compile("unused", "int nobody(int x) { return x; }")).unwrap();
        let (image, stats) = Linker::new()
            .object(crt0::module().unwrap())
            .object(compile("m", "extern int dbl(int); int main() { return dbl(21); }"))
            .library(lib)
            .link()
            .unwrap();
        assert_eq!(stats.modules, 3, "crt0 + main + dbl, not `unused`");
        assert!(image.symbols.contains_key("dbl"));
        assert!(!image.symbols.contains_key("nobody"));
    }

    #[test]
    fn gat_dedup_happens_across_modules() {
        // Both modules call `shared`, so both have a GAT entry for it.
        let (_, stats) = Linker::new()
            .object(crt0::module().unwrap())
            .object(compile(
                "a",
                "extern int shared(int); extern int other(int);\n\
                 int main() { return shared(1) + other(2); }",
            ))
            .object(compile(
                "b",
                "extern int shared(int);\n\
                 int other(int x) { return shared(x); }\n\
                 int shared(int x) { return x; }",
            ))
            .link()
            .unwrap();
        assert!(stats.gat_slots < stats.gat_entries_input);
    }

    #[test]
    fn duplicate_definition_fails() {
        let r = Linker::new()
            .object(crt0::module().unwrap())
            .object(compile("a", "int f(int x) { return x; } int main() { return f(1); }"))
            .object(compile("b", "int f(int x) { return x + 1; }"))
            .link();
        assert!(matches!(r, Err(LinkError::Duplicate { .. })));
    }

    #[test]
    fn image_has_disjoint_segments() {
        let (image, _) = Linker::new()
            .object(crt0::module().unwrap())
            .object(compile("m", "int g = 5; int main() { return g; }"))
            .link()
            .unwrap();
        let t = &image.segments[0];
        let d = &image.segments[1];
        assert!(t.end() <= d.base);
    }
}
