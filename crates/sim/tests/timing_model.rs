//! Hand-computed cycle counts for the 21064-class timing model.
//!
//! Unlike the relative assertions in `om_sim::timing`'s unit tests, every
//! test here pins an *exact* total derived by tracing the model's rules by
//! hand, so any change to the pairing rule, a latency, a cache penalty, or
//! the branch bubble shows up as a concrete number, not a direction.
//!
//! Model parameters (the defaults): 8KB direct-mapped I- and D-caches with
//! 32-byte lines and an 8-cycle miss penalty, dual issue only within an
//! 8-byte-aligned quadword, 3-cycle load latency, 21-cycle multiply,
//! 1-cycle taken-branch bubble.

use om_alpha::{BrOp, Inst, Operand, OprOp, Reg};
use om_sim::{Observer, Pipeline, Retired};

fn retire(p: &mut Pipeline, pc: u64, inst: Inst) {
    p.retire(&Retired { pc, inst, ea: None, taken: false });
}

fn retire_load(p: &mut Pipeline, pc: u64, inst: Inst, ea: u64) {
    p.retire(&Retired { pc, inst, ea: Some(ea), taken: false });
}

fn addq(ra: Reg, rc: Reg) -> Inst {
    Inst::Opr { op: OprOp::Addq, ra, rb: Operand::Reg(ra), rc }
}

#[test]
fn aligned_int_mem_pair_costs_eight_cycles() {
    // mov @ 0x1000: compulsory I-miss (8), issues at cycle 8.
    // lda @ 0x1004: same quadword, 0x1000 is 8-aligned, IntOp+Mem pair,
    //               operands ready — dual-issues at cycle 8.
    let mut p = Pipeline::default();
    retire(&mut p, 0x1000, Inst::mov(Reg::new(1), Reg::new(2)));
    retire(&mut p, 0x1004, Inst::lda(Reg::new(3), 0, Reg::SP));
    let t = p.stats();
    assert_eq!(t.cycles, 8);
    assert_eq!(t.dual_issued, 1);
    assert_eq!(t.icache_misses, 1);
}

#[test]
fn misaligned_pair_costs_nine_cycles() {
    // The same two instructions shifted by 4 bytes: 0x1004 is not 8-aligned,
    // so the quadword rule forbids pairing and the lda issues one cycle
    // later (cycle 9). The one extra cycle is exactly what a quadword-
    // alignment UNOP buys back at a hot branch target.
    let mut p = Pipeline::default();
    retire(&mut p, 0x1004, Inst::mov(Reg::new(1), Reg::new(2)));
    retire(&mut p, 0x1008, Inst::lda(Reg::new(3), 0, Reg::SP));
    let t = p.stats();
    assert_eq!(t.cycles, 9);
    assert_eq!(t.dual_issued, 0);
}

#[test]
fn same_pipe_pair_never_dual_issues() {
    // Two IntOps in one aligned quadword: compatible addresses but the same
    // E-box pipe, so no pairing — 9 cycles, like the misaligned case.
    let mut p = Pipeline::default();
    retire(&mut p, 0x1000, Inst::mov(Reg::new(1), Reg::new(2)));
    retire(&mut p, 0x1004, Inst::mov(Reg::new(3), Reg::new(4)));
    let t = p.stats();
    assert_eq!(t.cycles, 9);
    assert_eq!(t.dual_issued, 0);
}

#[test]
fn dependent_load_use_costs_nineteen_cycles() {
    // ldq @ 0x1000: I-miss (8) → issues at 8; D-miss adds 8 to the 3-cycle
    // load latency, so r1 is ready at 8 + 3 + 8 = 19.
    // addq r1 @ 0x1004: waits for r1 — issues at cycle 19.
    let mut p = Pipeline::default();
    retire_load(&mut p, 0x1000, Inst::ldq(Reg::new(1), 0, Reg::SP), 0x2000);
    retire(&mut p, 0x1004, addq(Reg::new(1), Reg::new(2)));
    let t = p.stats();
    assert_eq!(t.cycles, 19);
    assert_eq!(t.dual_issued, 0);
    assert_eq!(t.dcache_misses, 1);
}

#[test]
fn independent_use_pairs_with_the_load() {
    // Same shape, but the addq reads r3, not the loaded r1: nothing to wait
    // for, Mem+IntOp pair in the aligned quadword — both issue at cycle 8.
    // Removing a load-use dependence is worth 11 cycles here (19 → 8).
    let mut p = Pipeline::default();
    retire_load(&mut p, 0x1000, Inst::ldq(Reg::new(1), 0, Reg::SP), 0x2000);
    retire(&mut p, 0x1004, addq(Reg::new(3), Reg::new(2)));
    let t = p.stats();
    assert_eq!(t.cycles, 8);
    assert_eq!(t.dual_issued, 1);
}

#[test]
fn taken_branch_to_aligned_target_costs_nine_cycles() {
    // br @ 0x1000: I-miss (8) → issues at 8; taken, so the 1-cycle fetch
    // bubble puts the machine at cycle 9 and breaks the pairing window.
    // mov @ 0x1010 (same I-line): issues at 9; lda @ 0x1014 pairs with it
    // because the target quadword is 8-aligned. Total: 9 cycles.
    let mut p = Pipeline::default();
    p.retire(&Retired {
        pc: 0x1000,
        inst: Inst::Br { op: BrOp::Br, ra: Reg::ZERO, disp: 3 },
        ea: None,
        taken: true,
    });
    retire(&mut p, 0x1010, Inst::mov(Reg::new(1), Reg::new(2)));
    retire(&mut p, 0x1014, Inst::lda(Reg::new(3), 0, Reg::SP));
    let t = p.stats();
    assert_eq!(t.cycles, 9);
    assert_eq!(t.dual_issued, 1);
}

#[test]
fn taken_branch_to_misaligned_target_costs_ten_cycles() {
    // Identical, but the target lands mid-quadword (0x100C): the pair
    // straddles quadwords, cannot dual-issue, and the second instruction
    // slips to cycle 10. The 1-cycle delta against the aligned case is the
    // branch-target alignment penalty OM's scheduler removes with UNOPs.
    let mut p = Pipeline::default();
    p.retire(&Retired {
        pc: 0x1000,
        inst: Inst::Br { op: BrOp::Br, ra: Reg::ZERO, disp: 2 },
        ea: None,
        taken: true,
    });
    retire(&mut p, 0x100C, Inst::mov(Reg::new(1), Reg::new(2)));
    retire(&mut p, 0x1010, Inst::lda(Reg::new(3), 0, Reg::SP));
    let t = p.stats();
    assert_eq!(t.cycles, 10);
    assert_eq!(t.dual_issued, 0);
}

#[test]
fn multiply_latency_stalls_dependent_use_to_cycle_twenty_nine() {
    // mulq @ 0x1000 issues at 8 (compulsory I-miss) with a 21-cycle result
    // latency → r1 ready at 29; the dependent addq issues exactly then.
    let mut p = Pipeline::default();
    retire(
        &mut p,
        0x1000,
        Inst::Opr {
            op: OprOp::Mulq,
            ra: Reg::new(1),
            rb: Operand::Reg(Reg::new(2)),
            rc: Reg::new(1),
        },
    );
    retire(&mut p, 0x1004, addq(Reg::new(1), Reg::new(2)));
    let t = p.stats();
    assert_eq!(t.cycles, 29);
}

#[test]
fn icache_line_reuse_is_free_after_the_compulsory_miss() {
    // Nine single-issue IntOps: eight fill the 32-byte line at 0x1000, the
    // ninth opens the next line. One compulsory miss per line; every other
    // fetch is free.
    //
    // pc 0x1000: miss, issue 8.         pc 0x1010: hit, issue 12.
    // pc 0x1004: hit,  issue 9.         pc 0x1014: hit, issue 13.
    // pc 0x1008: hit,  issue 10.        pc 0x1018: hit, issue 14.
    // pc 0x100C: hit,  issue 11.        pc 0x101C: hit, issue 15.
    // pc 0x1020: miss → issue = 15 + 8 = 23, then +1 for in-order single
    //            issue does not apply (issue != cycle), so cycle = 23.
    let mut p = Pipeline::default();
    for k in 0..9u64 {
        retire(&mut p, 0x1000 + 4 * k, Inst::mov(Reg::new(1), Reg::new(2)));
    }
    let t = p.stats();
    assert_eq!(t.cycles, 23);
    assert_eq!(t.icache_misses, 2);
    assert_eq!(t.dual_issued, 0);
}
