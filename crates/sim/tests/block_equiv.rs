//! Block-engine equivalence battery: the block-cached fast path must be
//! **byte-identical** to the reference per-instruction interpreter — same
//! checksums, same retired-instruction counts, same output, same
//! `TimingStats` (cycles, dual issues, cache misses, nops, loads), same
//! profile JSON — across the full 19-workload × (mode × level) grid plus
//! the profile-guided relink, and on the nine hand-traced exact-cycle cases
//! from `timing_model.rs`.
//!
//! The grid is split by OM level into separate `#[test]` functions so the
//! harness runs them in parallel.

use om_alpha::{encode_all, BrOp, Inst, Operand, OprOp, PalOp, Reg};
use om_core::{optimize_and_link_with, OmLevel, OmOptions};
use om_linker::{Image, LayoutInfo, Segment};
use om_sim::{
    run_image, run_timed_profiled_fast, ExecError, Machine, Observer, Pipeline, ProfileObserver,
    Retired, Tee,
};
use om_workloads::{build::build, spec, CompileMode};
use std::collections::HashMap;

/// Simulator instruction budget per run (quick-spec workloads are small).
const SIM_STEPS: u64 = 200_000_000;

/// Runs one image on both engines and asserts byte-identical results,
/// timing, and profile JSON. Returns the reference profile for reuse.
fn assert_engines_agree(image: &Image, what: &str) -> om_core::profile::Profile {
    // Reference: one interpreter run feeding timing + profile via a tee.
    let mut pipe = Pipeline::default();
    let mut prof = ProfileObserver::new(image);
    let mut machine = Machine::load(image).expect("load");
    let r_ref = machine
        .run(SIM_STEPS, &mut Tee { a: &mut pipe, b: &mut prof })
        .unwrap_or_else(|e| panic!("{what}: reference run: {e}"));
    let t_ref = pipe.stats();
    let p_ref = prof.finish();

    // Block engine: one dispatch loop feeding the fused timing + the
    // block-granularity profiler.
    let (r_fast, t_fast, p_fast) = run_timed_profiled_fast(image, SIM_STEPS)
        .unwrap_or_else(|e| panic!("{what}: block run: {e}"));

    assert_eq!(r_ref, r_fast, "{what}: functional result diverged");
    assert_eq!(t_ref, t_fast, "{what}: timing stats diverged");
    assert_eq!(p_ref.to_json(), p_fast.to_json(), "{what}: profile JSON diverged");
    p_ref
}

fn sweep_level(level: OmLevel) {
    let options = OmOptions::default();
    for s in spec::all() {
        let quick = spec::quick(&s);
        for mode in CompileMode::ALL {
            let b = build(&quick, mode).expect("build");
            let out = optimize_and_link_with(&b.objects, &b.libs, level, &options)
                .unwrap_or_else(|e| panic!("{} [{}] {}: {e}", s.name, mode.name(), level.name()));
            let what = format!("{} [{}] {}", s.name, mode.name(), level.name());
            assert_engines_agree(&out.image, &what);
        }
    }
}

#[test]
fn engines_agree_on_every_workload_at_level_none() {
    sweep_level(OmLevel::None);
}

#[test]
fn engines_agree_on_every_workload_at_level_simple() {
    sweep_level(OmLevel::Simple);
}

#[test]
fn engines_agree_on_every_workload_at_level_full() {
    sweep_level(OmLevel::Full);
}

#[test]
fn engines_agree_on_every_workload_at_level_fullsched_and_pgo() {
    // FullSched plus the ninth variant: a profile-guided relink driven by a
    // profile the two engines must also agree on.
    let options = OmOptions::default();
    for s in spec::all() {
        let quick = spec::quick(&s);
        for mode in CompileMode::ALL {
            let b = build(&quick, mode).expect("build");
            let sched =
                optimize_and_link_with(&b.objects, &b.libs, OmLevel::FullSched, &options)
                    .unwrap_or_else(|e| panic!("{} [{}] sched: {e}", s.name, mode.name()));
            let what = format!("{} [{}] sched", s.name, mode.name());
            let profile = assert_engines_agree(&sched.image, &what);

            let popts = OmOptions { profile: Some(profile), ..options.clone() };
            let pgo = optimize_and_link_with(&b.objects, &b.libs, OmLevel::FullSched, &popts)
                .unwrap_or_else(|e| panic!("{} [{}] pgo: {e}", s.name, mode.name()));
            let what = format!("{} [{}] pgo", s.name, mode.name());
            assert_engines_agree(&pgo.image, &what);
        }
    }
}

/// `StepLimit` must fire at the exact instruction boundary even though the
/// block engine checks the budget once per block: for every limit the two
/// engines return the same `Ok`/`Err`, and at the full retirement count the
/// run completes on both.
#[test]
fn step_limit_boundary_matches_reference_on_a_real_workload() {
    let s = spec::all().into_iter().next().expect("at least one spec");
    let quick = spec::quick(&s);
    let b = build(&quick, CompileMode::Each).expect("build");
    let out =
        optimize_and_link_with(&b.objects, &b.libs, OmLevel::Full, &OmOptions::default())
            .expect("link");
    let full = run_image(&out.image, SIM_STEPS).expect("full run").insts;

    // Limits landing inside blocks, on block seams, and at the exact end.
    let mut limits: Vec<u64> = (1..64).collect();
    limits.extend([full / 2, full - 2, full - 1, full, full + 1]);
    for limit in limits {
        let r_ref = run_image(&out.image, limit);
        let r_fast = om_sim::run_fast(&out.image, limit);
        assert_eq!(r_ref, r_fast, "limit {limit}");
        if limit < full {
            assert!(
                matches!(r_fast, Err(ExecError::StepLimit { .. })),
                "limit {limit}: expected StepLimit"
            );
        } else {
            assert!(r_fast.is_ok(), "limit {limit}: expected completion");
        }
    }
}

/// Sampled simulation on a real workload: functional results stay exact and
/// the extrapolated cycle estimate lands within the documented error bound.
#[test]
fn sampled_timing_error_is_bounded_on_a_real_workload() {
    // compress: long enough (~46 intervals at 10k) for interval clustering
    // to be representative; the tiniest workloads have too few intervals.
    let s = spec::all().into_iter().find(|s| s.name == "compress").expect("compress spec");
    let quick = spec::quick(&s);
    let b = build(&quick, CompileMode::Each).expect("build");
    let out = optimize_and_link_with(&b.objects, &b.libs, OmLevel::FullSched, &OmOptions::default())
        .expect("link");
    let (r_full, t_full) = om_sim::run_timed_fast(&out.image, SIM_STEPS).expect("full run");
    let (r_samp, rep) = om_sim::run_sampled(&out.image, SIM_STEPS, 10_000).expect("sampled run");

    // Sampling never touches functional execution.
    assert_eq!(r_full, r_samp, "sampled run changed the functional result");
    assert_eq!(rep.total_insts, t_full.insts);
    // Real savings: only a subset of intervals carries timing.
    assert!(
        rep.clusters < rep.intervals || rep.intervals <= 2,
        "no intervals were deduplicated ({} clusters / {} intervals)",
        rep.clusters,
        rep.intervals
    );
    let err = (rep.estimated_cycles as f64 - t_full.cycles as f64).abs() / t_full.cycles as f64;
    assert!(
        err < 0.05,
        "sampling error {:.4} ({} estimated vs {} exact) exceeds the 5% bound",
        err,
        rep.estimated_cycles,
        t_full.cycles
    );
}

// ---------------------------------------------------------------------------
// The nine hand-traced exact-cycle cases from `timing_model.rs`, rerun as
// real images through the block engine.
//
// Each case lays the traced sequence out at its original addresses (text
// base 0x1000, matching pcs) and appends a HALT. The pre-HALT cycle total is
// pinned to the hand-traced number by feeding the same retirement stream to
// the reference `Pipeline`; the executed total (including the HALT) must
// then agree between the reference interpreter and the block engine.
// ---------------------------------------------------------------------------

fn addq(ra: Reg, rc: Reg) -> Inst {
    Inst::Opr { op: OprOp::Addq, ra, rb: Operand::Reg(ra), rc }
}

/// Builds an image whose text is `insts` (at base 0x1000) plus a HALT.
fn case_image(insts: &[Inst]) -> Image {
    let mut all = insts.to_vec();
    all.push(Inst::Pal { op: PalOp::Halt });
    Image {
        segments: vec![Segment { base: 0x1000, bytes: encode_all(&all) }],
        entry: 0x1000,
        symbols: HashMap::new(),
        layout: LayoutInfo::default(),
    }
}

/// Asserts the hand-traced pre-HALT cycle count (`traced_cycles`, fed to the
/// reference `Pipeline` as a synthetic stream exactly like `timing_model.rs`
/// does), then runs the image on both engines and asserts byte-identical
/// timing stats.
fn check_case(name: &str, image: &Image, stream: &[Retired], traced_cycles: u64) {
    let mut p = Pipeline::default();
    for r in stream {
        p.retire(r);
    }
    assert_eq!(p.stats().cycles, traced_cycles, "{name}: hand-traced total changed");

    let mut pipe = Pipeline::default();
    let mut machine = Machine::load(image).expect("load");
    let r_ref = machine.run(1_000_000, &mut pipe).unwrap_or_else(|e| panic!("{name}: {e}"));
    let t_ref = pipe.stats();
    let (r_fast, t_fast) =
        om_sim::run_timed_fast(image, 1_000_000).unwrap_or_else(|e| panic!("{name}: {e}"));
    assert_eq!(r_ref, r_fast, "{name}: functional result diverged");
    assert_eq!(t_ref, t_fast, "{name}: timing stats diverged");
}

fn retired(pc: u64, inst: Inst) -> Retired {
    Retired { pc, inst, ea: None, taken: false }
}

#[test]
fn hand_traced_cases_match_on_the_block_engine() {
    // 1. Aligned IntOp+Mem pair: 8 cycles.
    let seq = [Inst::mov(Reg::new(1), Reg::new(2)), Inst::lda(Reg::new(3), 0, Reg::SP)];
    check_case(
        "aligned_pair",
        &case_image(&seq),
        &[retired(0x1000, seq[0]), retired(0x1004, seq[1])],
        8,
    );

    // 2. Misaligned pair (shifted by one slot): 9 cycles.
    let seq = [Inst::nop(), Inst::mov(Reg::new(1), Reg::new(2)), Inst::lda(Reg::new(3), 0, Reg::SP)];
    check_case(
        "misaligned_pair",
        &case_image(&seq),
        &[retired(0x1004, seq[1]), retired(0x1008, seq[2])],
        9,
    );

    // 3. Same-pipe pair never dual-issues: 9 cycles.
    let seq = [Inst::mov(Reg::new(1), Reg::new(2)), Inst::mov(Reg::new(3), Reg::new(4))];
    check_case(
        "same_pipe",
        &case_image(&seq),
        &[retired(0x1000, seq[0]), retired(0x1004, seq[1])],
        9,
    );

    // 4. Dependent load-use: 19 cycles (I-miss 8 + load 3 + D-miss 8).
    let seq = [Inst::ldq(Reg::new(1), 0, Reg::SP), addq(Reg::new(1), Reg::new(2))];
    check_case(
        "dependent_load_use",
        &case_image(&seq),
        &[
            Retired { pc: 0x1000, inst: seq[0], ea: Some(0x2000), taken: false },
            retired(0x1004, seq[1]),
        ],
        19,
    );

    // 5. Independent use pairs with the load: 8 cycles.
    let seq = [Inst::ldq(Reg::new(1), 0, Reg::SP), addq(Reg::new(3), Reg::new(2))];
    check_case(
        "independent_load_pair",
        &case_image(&seq),
        &[
            Retired { pc: 0x1000, inst: seq[0], ea: Some(0x2000), taken: false },
            retired(0x1004, seq[1]),
        ],
        8,
    );

    // 6. Taken branch to an aligned target: 9 cycles.
    let br = Inst::Br { op: BrOp::Br, ra: Reg::ZERO, disp: 3 };
    let seq = [
        br,
        Inst::nop(),
        Inst::nop(),
        Inst::nop(),
        Inst::mov(Reg::new(1), Reg::new(2)),
        Inst::lda(Reg::new(3), 0, Reg::SP),
    ];
    check_case(
        "taken_branch_aligned_target",
        &case_image(&seq),
        &[
            Retired { pc: 0x1000, inst: br, ea: None, taken: true },
            retired(0x1010, seq[4]),
            retired(0x1014, seq[5]),
        ],
        9,
    );

    // 7. Taken branch to a misaligned target: 10 cycles.
    let br = Inst::Br { op: BrOp::Br, ra: Reg::ZERO, disp: 2 };
    let seq = [
        br,
        Inst::nop(),
        Inst::nop(),
        Inst::mov(Reg::new(1), Reg::new(2)),
        Inst::lda(Reg::new(3), 0, Reg::SP),
    ];
    check_case(
        "taken_branch_misaligned_target",
        &case_image(&seq),
        &[
            Retired { pc: 0x1000, inst: br, ea: None, taken: true },
            retired(0x100C, seq[3]),
            retired(0x1010, seq[4]),
        ],
        10,
    );

    // 8. Multiply latency stalls the dependent use to cycle 29.
    let mul = Inst::Opr {
        op: OprOp::Mulq,
        ra: Reg::new(1),
        rb: Operand::Reg(Reg::new(2)),
        rc: Reg::new(1),
    };
    let seq = [mul, addq(Reg::new(1), Reg::new(2))];
    check_case(
        "multiply_latency",
        &case_image(&seq),
        &[retired(0x1000, seq[0]), retired(0x1004, seq[1])],
        29,
    );

    // 9. I-cache line reuse is free after the compulsory miss: 23 cycles.
    let seq: Vec<Inst> = (0..9).map(|_| Inst::mov(Reg::new(1), Reg::new(2))).collect();
    let stream: Vec<Retired> =
        (0..9u64).map(|k| retired(0x1000 + 4 * k, seq[k as usize])).collect();
    check_case("icache_line_reuse", &case_image(&seq), &stream, 23);
}
