//! Pins the sampled-simulation contract on a scale workload: `asim
//! --sample` (the [`run_sampled`] engine) may *estimate* cycles, but its
//! functional results — checksum, retired-instruction count, program
//! output — must be bit-exact against the full run. That exactness is what
//! lets the scale figure use sampling as a sound oracle at sizes where a
//! fully-timed run is impractical.

use om_core::{optimize_and_link_with, OmLevel, OmOptions};
use om_sim::{run_sampled, run_timed_fast};
use om_workloads::build::CompileMode;
use om_workloads::scale::{build_scale, interp_reference_scale, ScaleSpec};

const STEPS: u64 = 200_000_000;

/// Debug-affordable scale shape — the same generator `--scale 1000` uses,
/// at a size tier-1 tests can run (release proofs live in `reproduce scale`).
fn spec() -> ScaleSpec {
    ScaleSpec {
        name: "scale_sampletest".to_string(),
        modules: 10,
        procs_per_module: 8,
        globals_per_module: 4,
        iters: 2,
    }
}

#[test]
fn sampled_functional_results_are_exact_on_a_scale_workload() {
    let spec = spec();
    let reference = interp_reference_scale(&spec, STEPS).expect("interpreter reference");
    let b = build_scale(&spec, CompileMode::Each).expect("scale build");
    let opts = OmOptions { verify: true, ..OmOptions::default() };
    let out = optimize_and_link_with(&b.objects, &b.libs, OmLevel::FullSched, &opts)
        .expect("scale link");

    let (full, _) = run_timed_fast(&out.image, STEPS).expect("full run");
    assert_eq!(full.result, reference, "full run vs interpreter");

    // Sweep intervals, including ones that do not divide the run length —
    // partial final intervals are where an unsound sampler would drift.
    for interval in [64, 1000, 4096, 100_000] {
        let (sampled, report) =
            run_sampled(&out.image, STEPS, interval).expect("sampled run");
        assert_eq!(
            sampled.result, full.result,
            "interval {interval}: sampled checksum must equal the full run's"
        );
        assert_eq!(
            sampled.insts, full.insts,
            "interval {interval}: retired-instruction count must be exact"
        );
        assert_eq!(
            sampled.output, full.output,
            "interval {interval}: program output must be byte-identical"
        );
        assert_eq!(report.interval, interval);
        assert!(report.intervals >= 1, "interval {interval}: nothing was sampled");
        assert_eq!(
            report.total_insts, full.insts,
            "interval {interval}: the report must account for every instruction"
        );
        assert!(
            report.sampled_insts <= report.total_insts,
            "interval {interval}: sampled more instructions than were retired"
        );
        assert!(
            report.estimated_cycles > 0,
            "interval {interval}: estimate must be populated"
        );
    }
}

#[test]
fn sampled_exactness_holds_at_every_om_level() {
    // The sampler sits downstream of OM, so exactness must be independent
    // of which transformations produced the image.
    let spec = spec();
    let b = build_scale(&spec, CompileMode::Each).expect("scale build");
    let opts = OmOptions::default();
    for level in OmLevel::ALL {
        let out = optimize_and_link_with(&b.objects, &b.libs, level, &opts)
            .unwrap_or_else(|e| panic!("{}: {e}", level.name()));
        let (full, _) = run_timed_fast(&out.image, STEPS)
            .unwrap_or_else(|e| panic!("{}: full: {e}", level.name()));
        let (sampled, _) = run_sampled(&out.image, STEPS, 10_000)
            .unwrap_or_else(|e| panic!("{}: sampled: {e}", level.name()));
        assert_eq!(sampled.result, full.result, "{}", level.name());
        assert_eq!(sampled.insts, full.insts, "{}", level.name());
        assert_eq!(sampled.output, full.output, "{}", level.name());
    }
}
