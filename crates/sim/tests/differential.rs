//! Differential testing: every program must produce the same result in the
//! reference interpreter and on the simulator after the full
//! compile→link→execute pipeline, at both -O0 and -O2 (with scheduling).

use om_codegen::{compile_source, crt0, CompileOpts};
use om_linker::Linker;
use om_minic::interp::run_sources;
use om_sim::run_image;

const STEPS: u64 = 5_000_000;

fn run_compiled(sources: &[(&str, &str)], opts: &CompileOpts) -> i64 {
    let mut linker = Linker::new().object(crt0::module().unwrap());
    for (name, src) in sources {
        linker = linker.object(
            compile_source(name, src, opts)
                .unwrap_or_else(|e| panic!("compiling {name}: {e}")),
        );
    }
    let (image, _) = linker.link().unwrap_or_else(|e| panic!("link: {e}"));
    run_image(&image, STEPS)
        .unwrap_or_else(|e| panic!("run: {e}"))
        .result
}

/// The divide millicode, in mini-C, matching the interpreter's conventions
/// (shift-subtract long division; /0 yields 0, %0 yields the dividend).
pub const DIV_SRC: &str = "
    int __udiv_step(int n) { return n; } // placeholder to keep module multi-proc
    int __divq(int a, int b) {
        if (b == 0) { return 0; }
        if (a == 0x8000000000000000) {
            // Split MIN (which cannot be negated) into halves.
            int q2 = __divq(a >> 1, b);
            int r2 = (a >> 1) - q2 * b;
            return q2 * 2 + __divq(r2 * 2, b);
        }
        if (b == 0x8000000000000000) { return 0; }
        int neg = 0;
        if (a < 0) { a = 0 - a; neg = 1 - neg; }
        if (b < 0) { b = 0 - b; neg = 1 - neg; }
        int q = 0;
        if (b > 0x4000000000000000) {
            if (a >= b) { q = 1; }
            if (neg) { return 0 - q; }
            return q;
        }
        int r = 0;
        int i = 62;
        for (i = 62; i >= 0; i = i - 1) {
            r = (r << 1) | ((a >> i) & 1);
            if (r >= b) { r = r - b; q = q + (1 << i); }
        }
        if (neg) { return 0 - q; }
        return q;
    }
    int __remq(int a, int b) {
        if (b == 0) { return a; }
        return a - __divq(a, b) * b;
    }";

fn check(sources: &[(&str, &str)]) {
    let mut with_div: Vec<(&str, &str)> = sources.to_vec();
    with_div.push(("divmod", DIV_SRC));
    let expected = run_sources(&with_div, 50_000_000).expect("interp");
    for (label, opts) in [("-O0", CompileOpts::o0()), ("-O2", CompileOpts::o2())] {
        let got = run_compiled(&with_div, &opts);
        assert_eq!(got, expected, "mismatch at {label}");
    }
}

fn check1(src: &str) {
    check(&[("t", src)]);
}

#[test]
fn arithmetic_basics() {
    check1("int main() { return (3 + 4) * 5 - 6; }");
    check1("int main() { int x = -7; return x * x - x; }");
    check1("int main() { return 1 << 40; }");
    check1("int main() { return (0 - 64) >> 3; }");
    check1("int main() { return 12345 & 6789 | 1024 ^ 513; }");
}

#[test]
fn wide_constants() {
    check1("int main() { return 100000; }"); // needs LDAH
    check1("int main() { return -100000; }");
    check1("int main() { return 0x7FFFFFFF; }");
    check1("int main() { return 0x123456789AB; }"); // needs constant pool
    check1("int main() { int x = 0x7FFFFFFFFFFFFFFF; return x + 1; }"); // wrap
}

#[test]
fn division_millicode() {
    check1("int main(){ return 17/5 + 17%5 + (-17)/5 + (-17)%5 + 17/(-5) + 17%(-5); }");
    check1("int main(){ int z = 0; return 7/z + 7%z; }");
    check1("int main(){ int s = 0; int i = 0; for (i = 1; i < 50; i = i + 1) { s = s + 1000/i + 1000%i; } return s; }");
}

#[test]
fn comparisons_and_logic() {
    check1("int main() { return (3 < 4) + (4 <= 4) + (5 > 4) + (4 >= 5) + (3 == 3) + (3 != 3); }");
    check1("int main() { int a = 5; return a > 0 && a < 10 || a == 99; }");
    check1("int calls; int bump(int v) { calls = calls + 1; return v; } int main() { int r = 0 && bump(1); r = r + (1 || bump(1)); return calls * 100 + r; }");
}

#[test]
fn control_flow() {
    check1("int main() { int n = 10; int s = 0; while (n > 0) { s = s + n; n = n - 1; } return s; }");
    check1(
        "int main() { int s = 0; int i = 0; int j = 0;
           for (i = 0; i < 10; i = i + 1) {
             for (j = 0; j < 10; j = j + 1) { if ((i + j) % 3 == 0) { s = s + i * j; } }
           }
           return s; }",
    );
    check1("int collatz(int n) { int c = 0; while (n != 1) { if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; } c = c + 1; } return c; } int main() { return collatz(27); }");
}

#[test]
fn globals_arrays_commons() {
    check1("int g; int main() { g = 41; g = g + 1; return g; }");
    check1("int init = 77; int main() { return init; }");
    check1("int a[32]; int main() { int i = 0; for (i = 0; i < 32; i = i + 1) { a[i] = i * i; } int s = 0; for (i = 0; i < 32; i = i + 1) { s = s + a[i]; } return s; }");
    check1("int t[4] = { 10, -20, 30, -40 }; int main() { return t[0] + t[1] + t[2] + t[3]; }");
    check1("int a[8]; int main() { a[3] = 7; return a[3] + a[2]; }"); // constant index
}

#[test]
fn floats() {
    check1("float h; int main() { h = 2.5; return int(h * 4.0); }");
    check1("int main() { float x = 1.0; int i = 0; for (i = 0; i < 10; i = i + 1) { x = x * 1.5; } return int(x); }");
    check1("int main() { float a = 3.25; float b = 1.25; return int((a + b) * (a - b) / b); }");
    check1("int main() { return int(float(7) / 2.0 * 100.0); }");
    check1("int main() { float x = -2.5; if (x < 0.0) { return 1; } return 0; }");
    check1("int main() { float a = 1.5; float b = 1.5; return (a == b) * 10 + (a != b) + (a <= b) * 100 + (a > b); }");
    check1("float acc; float scale(float v, float k) { return v * k; } int main() { acc = 10.0; acc = scale(acc, 0.5) + scale(acc, 2.0); return int(acc); }");
}

#[test]
fn calls_and_recursion() {
    check1("int fib(int n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); } int main() { return fib(15); }");
    check1("static int helper(int x) { return x * 3; } int main() { return helper(helper(2)); }");
    check1(
        "int a(int x) { return x + 1; } int b(int x) { return a(x) * 2; } int c(int x) { return b(x) + a(x); } int main() { return c(10); }",
    );
}

#[test]
fn many_arguments_spill_to_stack() {
    check1(
        "int sum8(int a, int b, int c, int d, int e, int f, int g, int h) {
           return a + 2*b + 3*c + 4*d + 5*e + 6*f + 7*g + 8*h;
         }
         int main() { return sum8(1, 2, 3, 4, 5, 6, 7, 8); }",
    );
    check1(
        "float mix(int a, float b, int c, float d, int e, float f, int g, float h) {
           return float(a) + b * 2.0 + float(c) * 3.0 + d + float(e) - f + float(g) * h;
         }
         int main() { return int(mix(1, 2.5, 3, 4.5, 5, 6.5, 7, 8.5)); }",
    );
}

#[test]
fn register_pressure_spills() {
    let mut body = String::from("int main() { int x = 3;\n");
    for i in 0..30 {
        body.push_str(&format!("int v{i} = x + {i};\n"));
    }
    body.push_str("int s = 0;\n");
    for i in 0..30 {
        body.push_str(&format!("s = s + v{i} * v{i};\n"));
    }
    body.push_str("return s; }");
    check1(&body);
}

#[test]
fn procedure_variables() {
    check1(
        "int add1(int x) { return x + 1; }
         int dbl(int x) { return x * 2; }
         fnptr op;
         int apply(int v) { return op(v); }
         int main() {
           op = &add1;
           int a = apply(10);
           op = &dbl;
           return a + apply(10);
         }",
    );
    check1(
        "int five(int x) { return 5 + x; }
         fnptr h = &five;
         int main() { return h(1) + (h == &five) * 100; }",
    );
}

#[test]
fn cross_module_programs() {
    check(&[
        (
            "main",
            "extern int poly(int); extern int table_get(int); extern int table_put(int, int);
             int main() {
               int i = 0;
               for (i = 0; i < 16; i = i + 1) { table_put(i, poly(i)); }
               int s = 0;
               for (i = 0; i < 16; i = i + 1) { s = s + table_get(i); }
               return s;
             }",
        ),
        (
            "poly",
            "static int sq(int x) { return x * x; }
             int poly(int x) { return sq(x) * 3 - x * 2 + 7; }",
        ),
        (
            "table",
            "static int data[16];
             int table_put(int i, int v) { data[i] = v; return v; }
             int table_get(int i) { return data[i]; }",
        ),
    ]);
}

#[test]
fn statics_shadow_across_modules() {
    check(&[
        (
            "a",
            "extern int helper(int);
             static int tweak(int x) { return x + 1; }
             int main() { return helper(tweak(1)); }",
        ),
        (
            "b",
            "static int tweak(int x) { return x * 10; }
             int helper(int x) { return tweak(x); }",
        ),
    ]);
}

#[test]
fn compile_all_matches_compile_each() {
    let sources = [
        (
            "m1",
            "extern int twist(int);
             int acc;
             static int mask(int x) { return x & 0xFF; }
             int main() { int i = 0; for (i = 0; i < 20; i = i + 1) { acc = acc + twist(mask(acc + i)); } return acc; }",
        ),
        (
            "m2",
            "static int mask(int x) { return x ^ 0x55; }
             int twist(int x) { return mask(x) * 3 + x / 7; }",
        ),
        ("divmod", DIV_SRC),
    ];
    let expected = run_sources(&sources, 50_000_000).unwrap();

    // compile-each
    let each = run_compiled(&sources, &CompileOpts::o2());
    assert_eq!(each, expected);

    // compile-all: user modules merged, divmod treated as a library.
    let all_obj =
        om_codegen::compile_all_sources("prog", &sources[..2], &CompileOpts::o2()).unwrap();
    let div_obj = compile_source("divmod", DIV_SRC, &CompileOpts::o2()).unwrap();
    let (image, _) = Linker::new()
        .object(crt0::module().unwrap())
        .object(all_obj)
        .object(div_obj)
        .link()
        .unwrap();
    assert_eq!(run_image(&image, STEPS).unwrap().result, expected);
}

#[test]
fn write_int_output() {
    let src = "extern int __write_int(int);
               int main() { __write_int(7); __write_int(-3); return 0; }";
    let obj = compile_source("t", src, &CompileOpts::o2()).unwrap();
    let (image, _) = Linker::new()
        .object(crt0::module().unwrap())
        .object(obj)
        .link()
        .unwrap();
    let r = run_image(&image, STEPS).unwrap();
    assert_eq!(r.output, vec![7, -3]);
}
