//! Instruction-level semantics tests: hand-assembled fragments executed on
//! the machine, checking exact architectural results (the cases the
//! differential suite may not pin down individually).

use om_alpha::{encode_all, BrOp, FOprOp, Inst, MemOp, Operand, OprOp, PalOp, Reg};
use om_linker::{Image, LayoutInfo, Segment};
use om_sim::{Machine, NoTiming};
use std::collections::HashMap;

const TEXT: u64 = 0x1_2000_0000;
const DATA: u64 = 0x1_4000_0000;

/// Runs a fragment; `v0` at halt is the result. A data segment of 256 bytes
/// is mapped at `DATA`.
fn run_frag(insts: &[Inst]) -> i64 {
    run_frag_with_data(insts, vec![0; 256])
}

fn run_frag_with_data(insts: &[Inst], data: Vec<u8>) -> i64 {
    let mut all = insts.to_vec();
    all.push(Inst::Pal { op: PalOp::Halt });
    let image = Image {
        segments: vec![
            Segment { base: TEXT, bytes: encode_all(&all) },
            Segment { base: DATA, bytes: data },
        ],
        entry: TEXT,
        symbols: HashMap::new(),
        layout: LayoutInfo::default(),
    };
    let mut m = Machine::load(&image).unwrap();
    m.run(10_000, &mut NoTiming).unwrap().result
}

fn opr(op: OprOp, ra: Reg, rb: Operand, rc: Reg) -> Inst {
    Inst::Opr { op, ra, rb, rc }
}

const R1: Reg = Reg::T0;
const V0: Reg = Reg::V0;

#[test]
fn lda_ldah_build_addresses() {
    // v0 = (4096 << 16) - 4 computed by LDAH + LDA.
    let r = run_frag(&[
        Inst::ldah(V0, 4096, Reg::ZERO),
        Inst::lda(V0, -4, V0),
    ]);
    assert_eq!(r, (4096i64 << 16) - 4);
}

#[test]
fn ldah_sign_extends_its_displacement() {
    let r = run_frag(&[Inst::ldah(V0, -1, Reg::ZERO)]);
    assert_eq!(r, -(1i64 << 16));
}

#[test]
fn loads_and_stores_roundtrip_memory() {
    let r = run_frag(&[
        Inst::lda(R1, 0x1400, Reg::ZERO),
        opr(OprOp::Sll, R1, Operand::Lit(20), R1), // 0x1400 << 20 == DATA
        Inst::lda(V0, -17, Reg::ZERO),
        Inst::stq(V0, 8, R1),
        Inst::ldq(V0, 8, R1),
    ]);
    assert_eq!(r, -17);
}

#[test]
fn ldl_sign_extends_and_stl_truncates() {
    // Store 0xFFFF_FFFF via STL, read back with LDL: sign-extended -1.
    let r = run_frag(&[
        Inst::lda(R1, 0x1400, Reg::ZERO),
        opr(OprOp::Sll, R1, Operand::Lit(20), R1),
        Inst::lda(V0, -1, Reg::ZERO),
        Inst::Mem { op: MemOp::Stl, ra: V0, rb: R1, disp: 16 },
        Inst::mov_lit(0, V0),
        Inst::Mem { op: MemOp::Ldl, ra: V0, rb: R1, disp: 16 },
    ]);
    assert_eq!(r, -1);
}

#[test]
fn s8addq_scales() {
    let r = run_frag(&[
        Inst::mov_lit(5, R1),
        opr(OprOp::S8Addq, R1, Operand::Lit(3), V0), // 5*8 + 3
    ]);
    assert_eq!(r, 43);
}

#[test]
fn conditional_moves() {
    let r = run_frag(&[
        Inst::mov_lit(0, R1),
        Inst::mov_lit(7, V0),
        opr(OprOp::Cmoveq, R1, Operand::Lit(42), V0), // r1==0 → v0=42
    ]);
    assert_eq!(r, 42);
    let r = run_frag(&[
        Inst::mov_lit(1, R1),
        Inst::mov_lit(7, V0),
        opr(OprOp::Cmoveq, R1, Operand::Lit(42), V0), // r1!=0 → keep 7
    ]);
    assert_eq!(r, 7);
}

#[test]
fn unsigned_compares() {
    // -1 as unsigned is huge: CMPULT(-1, 1) == 0, CMPULT(1, -1) == 1.
    let r = run_frag(&[
        Inst::lda(R1, -1, Reg::ZERO),
        opr(OprOp::Cmpult, R1, Operand::Lit(1), V0),
    ]);
    assert_eq!(r, 0);
}

#[test]
fn shift_counts_use_low_six_bits() {
    let r = run_frag(&[
        Inst::mov_lit(1, R1),
        Inst::lda(Reg::T8, 65, Reg::ZERO), // 65 & 63 == 1
        opr(OprOp::Sll, R1, Operand::Reg(Reg::T8), V0),
    ]);
    assert_eq!(r, 2);
}

#[test]
fn branches_skip_and_loop() {
    // beq taken over a poison instruction.
    let r = run_frag(&[
        Inst::mov_lit(0, R1),
        Inst::Br { op: BrOp::Beq, ra: R1, disp: 1 },
        Inst::mov_lit(99, V0), // skipped
        opr(OprOp::Addq, V0, Operand::Lit(1), V0),
    ]);
    assert_eq!(r, 1);

    // A real loop: v0 = sum 1..=5 via backward bne.
    let r = run_frag(&[
        Inst::mov_lit(5, R1),
        Inst::mov_lit(0, V0),
        opr(OprOp::Addq, V0, Operand::Reg(R1), V0),
        opr(OprOp::Subq, R1, Operand::Lit(1), R1),
        Inst::Br { op: BrOp::Bne, ra: R1, disp: -3 },
    ]);
    assert_eq!(r, 15);
}

#[test]
fn bsr_records_return_address_and_ret_uses_it() {
    // bsr to a +2 target; callee adds 1 and returns.
    let r = run_frag(&[
        Inst::mov_lit(10, V0),
        Inst::Br { op: BrOp::Bsr, ra: Reg::RA, disp: 1 },
        Inst::Pal { op: PalOp::Halt }, // fallthrough after return... never reached
        // callee:
        opr(OprOp::Addq, V0, Operand::Lit(1), V0),
        Inst::ret(),
    ]);
    // After ret, control returns to the halt; v0 == 11.
    assert_eq!(r, 11);
}

#[test]
fn float_arithmetic_and_conversion() {
    // v0 = int((3.0 + 1.5) * 2.0) computed via memory-staged constants.
    let three = 3.0f64.to_bits().to_le_bytes();
    let onep5 = 1.5f64.to_bits().to_le_bytes();
    let mut data = vec![0u8; 64];
    data[0..8].copy_from_slice(&three);
    data[8..16].copy_from_slice(&onep5);
    let f1 = Reg::new(1);
    let f2 = Reg::new(2);
    let r = run_frag_with_data(
        &[
            Inst::lda(R1, 0x1400, Reg::ZERO),
            opr(OprOp::Sll, R1, Operand::Lit(20), R1),
            Inst::Mem { op: MemOp::Ldt, ra: f1, rb: R1, disp: 0 },
            Inst::Mem { op: MemOp::Ldt, ra: f2, rb: R1, disp: 8 },
            Inst::FOpr { op: FOprOp::Addt, fa: f1, fb: f2, fc: f1 },
            Inst::FOpr { op: FOprOp::Addt, fa: f1, fb: f1, fc: f1 }, // *2
            Inst::FOpr { op: FOprOp::Cvttq, fa: Reg::ZERO, fb: f1, fc: f2 },
            Inst::Mem { op: MemOp::Stt, ra: f2, rb: R1, disp: 16 },
            Inst::ldq(V0, 16, R1),
        ],
        data,
    );
    assert_eq!(r, 9);
}

#[test]
fn fp_compare_writes_two_or_zero() {
    let one = 1.0f64.to_bits().to_le_bytes();
    let two = 2.0f64.to_bits().to_le_bytes();
    let mut data = vec![0u8; 64];
    data[0..8].copy_from_slice(&one);
    data[8..16].copy_from_slice(&two);
    let f1 = Reg::new(1);
    let f2 = Reg::new(2);
    let r = run_frag_with_data(
        &[
            Inst::lda(R1, 0x1400, Reg::ZERO),
            opr(OprOp::Sll, R1, Operand::Lit(20), R1),
            Inst::Mem { op: MemOp::Ldt, ra: f1, rb: R1, disp: 0 },
            Inst::Mem { op: MemOp::Ldt, ra: f2, rb: R1, disp: 8 },
            Inst::FOpr { op: FOprOp::Cmptlt, fa: f1, fb: f2, fc: f1 }, // 1 < 2 → 2.0
            Inst::FOpr { op: FOprOp::Cvttq, fa: Reg::ZERO, fb: f1, fc: f1 },
            Inst::Mem { op: MemOp::Stt, ra: f1, rb: R1, disp: 16 },
            Inst::ldq(V0, 16, R1),
        ],
        data,
    );
    assert_eq!(r, 2);
}

#[test]
fn misaligned_access_faults() {
    let image = Image {
        segments: vec![
            Segment {
                base: TEXT,
                bytes: encode_all(&[
                    Inst::lda(R1, 0x1400, Reg::ZERO),
                    opr(OprOp::Sll, R1, Operand::Lit(20), R1),
                    Inst::ldq(V0, 3, R1),
                    Inst::Pal { op: PalOp::Halt },
                ]),
            },
            Segment { base: DATA, bytes: vec![0; 64] },
        ],
        entry: TEXT,
        symbols: HashMap::new(),
        layout: LayoutInfo::default(),
    };
    let mut m = Machine::load(&image).unwrap();
    let e = m.run(100, &mut NoTiming).unwrap_err();
    assert!(e.to_string().contains("misaligned"), "{e}");
}

#[test]
fn jump_to_data_is_a_bad_pc() {
    let image = Image {
        segments: vec![
            Segment {
                base: TEXT,
                bytes: encode_all(&[
                    Inst::lda(R1, 0x1400, Reg::ZERO),
                    opr(OprOp::Sll, R1, Operand::Lit(20), R1),
                    Inst::jsr(Reg::RA, R1),
                ]),
            },
            Segment { base: DATA, bytes: vec![0; 64] },
        ],
        entry: TEXT,
        symbols: HashMap::new(),
        layout: LayoutInfo::default(),
    };
    let mut m = Machine::load(&image).unwrap();
    let e = m.run(100, &mut NoTiming).unwrap_err();
    assert!(e.to_string().contains("jump outside text") || e.to_string().contains("undecodable"), "{e}");
}

#[test]
fn step_limit_reports() {
    let image = Image {
        segments: vec![Segment {
            base: TEXT,
            bytes: encode_all(&[Inst::Br { op: BrOp::Br, ra: Reg::ZERO, disp: -1 }]),
        }],
        entry: TEXT,
        symbols: HashMap::new(),
        layout: LayoutInfo::default(),
    };
    let mut m = Machine::load(&image).unwrap();
    let e = m.run(1000, &mut NoTiming).unwrap_err();
    assert!(e.to_string().contains("exceeded"), "{e}");
}
