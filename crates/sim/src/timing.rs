//! 21064-class timing model: in-order dual issue with quadword fetch
//! alignment, result latencies, and direct-mapped I/D caches.
//!
//! This stands in for the paper's DECstation 3000 Model 400. The absolute
//! cycle counts are not meant to match 1994 hardware; the *relative* effects
//! OM exploits are modeled faithfully:
//!
//! * an instruction removed (or turned into a no-op that pairs into a free
//!   issue slot) saves issue bandwidth;
//! * a removed address load also removes a 3-cycle load-use latency and a
//!   potential D-cache miss on the GAT;
//! * two instructions dual-issue only from the same aligned quadword, which
//!   is why OM-full quadword-aligns backward-branch targets.

use crate::exec::{Observer, Retired};
use om_alpha::timing::{can_dual_issue, latency};
use om_alpha::{Effects, Inst, MemOp};

/// Direct-mapped cache model.
#[derive(Debug, Clone)]
pub struct Cache {
    /// Line tag per set (`u64::MAX` = invalid).
    tags: Vec<u64>,
    line_shift: u32,
    set_mask: u64,
    /// Miss penalty in cycles.
    pub penalty: u64,
    pub hits: u64,
    pub misses: u64,
}

impl Cache {
    /// `size` and `line` in bytes (powers of two).
    pub fn new(size: u64, line: u64, penalty: u64) -> Cache {
        let sets = size / line;
        Cache {
            tags: vec![u64::MAX; sets as usize],
            line_shift: line.trailing_zeros(),
            set_mask: sets - 1,
            penalty,
            hits: 0,
            misses: 0,
        }
    }

    /// Line-address shift (log2 of the line size).
    pub(crate) fn line_shift(&self) -> u32 {
        self.line_shift
    }

    /// Read-only probe: whether `addr` currently hits. No counter updates,
    /// no allocation — the block engine's fused fast path uses this to
    /// decide whether a whole block's accesses can be committed at once.
    pub(crate) fn peek(&self, addr: u64) -> bool {
        self.peek_line(addr >> self.line_shift)
    }

    /// Read-only probe by line number (`addr >> line_shift`).
    pub(crate) fn peek_line(&self, line: u64) -> bool {
        self.tags[(line & self.set_mask) as usize] == line
    }

    /// Accesses `addr`; returns the added stall cycles (0 on hit).
    pub fn access(&mut self, addr: u64, allocate: bool) -> u64 {
        let line = addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        if self.tags[set] == line {
            self.hits += 1;
            0
        } else {
            self.misses += 1;
            if allocate {
                self.tags[set] = line;
            }
            self.penalty
        }
    }
}

/// Timing statistics of one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimingStats {
    pub cycles: u64,
    pub insts: u64,
    /// Instructions that issued in the same cycle as their predecessor.
    pub dual_issued: u64,
    pub icache_misses: u64,
    pub dcache_misses: u64,
    /// Retired no-ops (any spelling).
    pub nops: u64,
    /// Retired memory loads (excluding LDA/LDAH).
    pub loads: u64,
}

/// The cycle-accounting observer.
pub struct Pipeline {
    pub icache: Cache,
    pub dcache: Cache,
    /// Cycle at which each integer register's value is available.
    int_ready: [u64; 32],
    fp_ready: [u64; 32],
    cycle: u64,
    /// Last issued instruction (for pairing), with its pc.
    last: Option<(u64, Inst, u64)>, // (pc, inst, issue_cycle)
    stats: TimingStats,
    /// Extra cycles for a taken branch (fetch bubble).
    branch_bubble: u64,
}

/// DECstation 3000/400-ish parameters: 8KB I-cache, 8KB D-cache, 32-byte
/// lines, backing-cache miss penalty, one-cycle taken-branch bubble.
impl Default for Pipeline {
    fn default() -> Self {
        Pipeline::new(Cache::new(8 << 10, 32, 8), Cache::new(8 << 10, 32, 8), 1)
    }
}

impl Pipeline {
    /// Builds a pipeline with explicit cache models.
    pub fn new(icache: Cache, dcache: Cache, branch_bubble: u64) -> Pipeline {
        Pipeline {
            icache,
            dcache,
            int_ready: [0; 32],
            fp_ready: [0; 32],
            cycle: 0,
            last: None,
            stats: TimingStats::default(),
            branch_bubble,
        }
    }

    /// Final statistics.
    pub fn stats(&self) -> TimingStats {
        let mut s = self.stats;
        s.cycles = self.cycle;
        s.icache_misses = self.icache.misses;
        s.dcache_misses = self.dcache.misses;
        s
    }

    fn operands_ready(&self, e: &Effects) -> u64 {
        let mut t = 0;
        for r in 0..31 {
            if e.int_uses & (1 << r) != 0 {
                t = t.max(self.int_ready[r]);
            }
            if e.fp_uses & (1 << r) != 0 {
                t = t.max(self.fp_ready[r]);
            }
        }
        t
    }
}

impl Observer for Pipeline {
    fn retire(&mut self, r: &Retired) {
        self.stats.insts += 1;
        if r.inst.is_nop() {
            self.stats.nops += 1;
        }
        if matches!(r.inst, Inst::Mem { op, .. } if op.is_load() && !matches!(op, MemOp::Lda | MemOp::Ldah))
        {
            self.stats.loads += 1;
        }

        // Instruction fetch: one I-cache access per line actually touched.
        let ifetch_stall = self.icache.access(r.pc, true);

        let e = Effects::of(&r.inst);
        let ready = self.operands_ready(&e);

        // Earliest issue: operands ready, fetch done.
        let mut issue = self.cycle.max(ready) + ifetch_stall;

        // Dual-issue: same aligned quadword as the previous instruction,
        // compatible pipes, and the previous instruction issued at the cycle
        // we would otherwise advance past.
        let mut paired = false;
        if let Some((lpc, linst, lcycle)) = self.last {
            if r.pc == lpc + 4
                && lpc % 8 == 0
                && can_dual_issue(&linst, &r.inst)
                && issue <= lcycle
                && ifetch_stall == 0
            {
                issue = lcycle;
                paired = true;
                self.stats.dual_issued += 1;
            }
        }
        if !paired && issue == self.cycle && self.last.is_some() {
            // In-order single issue: next cycle.
            issue = self.cycle + 1;
        }

        // Memory access.
        let mut lat = latency(&r.inst) as u64;
        if let Some(ea) = r.ea {
            let is_store = e.mem_write;
            let stall = self.dcache.access(ea, !is_store);
            if !is_store {
                lat += stall;
            }
        }

        // Write back result availability.
        for reg in 0..31u32 {
            if e.int_defs & (1 << reg) != 0 {
                self.int_ready[reg as usize] = issue + lat;
            }
            if e.fp_defs & (1 << reg) != 0 {
                self.fp_ready[reg as usize] = issue + lat;
            }
        }

        self.cycle = issue.max(self.cycle);
        if r.taken {
            self.cycle = issue + self.branch_bubble;
            self.last = None; // new fetch stream
        } else {
            self.last = Some((r.pc, r.inst, issue));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_alpha::Reg;

    fn retire_seq(p: &mut Pipeline, insts: &[(u64, Inst)]) {
        for &(pc, inst) in insts {
            p.retire(&Retired { pc, inst, ea: None, taken: false });
        }
    }

    #[test]
    fn aligned_pair_dual_issues() {
        let mut p = Pipeline::default();
        retire_seq(
            &mut p,
            &[
                (0x1000, Inst::mov(Reg::new(1), Reg::new(2))), // IntOp at 8-aligned pc
                (0x1004, Inst::lda(Reg::new(3), 0, Reg::SP)),  // Mem, pairs
            ],
        );
        assert_eq!(p.stats().dual_issued, 1);
    }

    #[test]
    fn misaligned_pair_does_not_dual_issue() {
        let mut p = Pipeline::default();
        retire_seq(
            &mut p,
            &[
                (0x1004, Inst::mov(Reg::new(1), Reg::new(2))),
                (0x1008, Inst::lda(Reg::new(3), 0, Reg::SP)),
            ],
        );
        assert_eq!(p.stats().dual_issued, 0);
    }

    #[test]
    fn load_use_stall_costs_cycles() {
        // load r1 ; add r2 = r1+r1 vs load r1 ; add r2 = r3+r3
        let dep = {
            let mut p = Pipeline::default();
            p.retire(&Retired {
                pc: 0x1000,
                inst: Inst::ldq(Reg::new(1), 0, Reg::SP),
                ea: Some(0x2000),
                taken: false,
            });
            p.retire(&Retired {
                pc: 0x1004,
                inst: Inst::Opr {
                    op: om_alpha::OprOp::Addq,
                    ra: Reg::new(1),
                    rb: om_alpha::Operand::Reg(Reg::new(1)),
                    rc: Reg::new(2),
                },
                ea: None,
                taken: false,
            });
            p.stats().cycles
        };
        let indep = {
            let mut p = Pipeline::default();
            p.retire(&Retired {
                pc: 0x1000,
                inst: Inst::ldq(Reg::new(1), 0, Reg::SP),
                ea: Some(0x2000),
                taken: false,
            });
            p.retire(&Retired {
                pc: 0x1004,
                inst: Inst::Opr {
                    op: om_alpha::OprOp::Addq,
                    ra: Reg::new(3),
                    rb: om_alpha::Operand::Reg(Reg::new(3)),
                    rc: Reg::new(2),
                },
                ea: None,
                taken: false,
            });
            p.stats().cycles
        };
        assert!(dep > indep, "dependent use must stall ({dep} vs {indep})");
    }

    #[test]
    fn repeated_cache_line_hits() {
        let mut c = Cache::new(8 << 10, 32, 10);
        assert_eq!(c.access(0x1000, true), 10);
        assert_eq!(c.access(0x1008, true), 0); // same line
        assert_eq!(c.access(0x1000 + (8 << 10), true), 10); // conflict
        assert_eq!(c.access(0x1000, true), 10); // evicted
        assert_eq!(c.misses, 3);
    }

    #[test]
    fn taken_branch_breaks_pairing_and_adds_bubble() {
        let mut p = Pipeline::default();
        p.retire(&Retired {
            pc: 0x1000,
            inst: Inst::Br { op: om_alpha::BrOp::Br, ra: Reg::ZERO, disp: 10 },
            ea: None,
            taken: true,
        });
        let c1 = p.stats().cycles;
        p.retire(&Retired { pc: 0x1030, inst: Inst::nop(), ea: None, taken: false });
        assert!(p.stats().cycles >= c1);
        assert_eq!(p.stats().dual_issued, 0);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use om_alpha::{Inst, Reg};

    #[test]
    fn icache_miss_stalls_fetch() {
        let mut cold = Pipeline::default();
        // Two instructions on different cache lines: two compulsory misses.
        cold.retire(&Retired { pc: 0x1000, inst: Inst::nop(), ea: None, taken: false });
        cold.retire(&Retired { pc: 0x1040, inst: Inst::nop(), ea: None, taken: false });
        let cold_cycles = cold.stats().cycles;

        let mut warm = Pipeline::default();
        // Same line twice: one miss.
        warm.retire(&Retired { pc: 0x1000, inst: Inst::nop(), ea: None, taken: false });
        warm.retire(&Retired { pc: 0x1004, inst: Inst::nop(), ea: None, taken: false });
        assert!(cold.stats().icache_misses > warm.stats().icache_misses);
        assert!(cold_cycles > warm.stats().cycles);
    }

    #[test]
    fn dcache_miss_extends_load_latency() {
        let use_of = |ea: u64, times: usize| {
            let mut p = Pipeline::default();
            for t in 0..times {
                p.retire(&Retired {
                    pc: 0x1000 + 16 * t as u64, // separate pairs, same I-line
                    inst: Inst::ldq(Reg::new(1), 0, Reg::SP),
                    ea: Some(ea),
                    taken: false,
                });
                p.retire(&Retired {
                    pc: 0x1004 + 16 * t as u64,
                    inst: Inst::Opr {
                        op: om_alpha::OprOp::Addq,
                        ra: Reg::new(1),
                        rb: om_alpha::Operand::Reg(Reg::new(1)),
                        rc: Reg::new(2),
                    },
                    ea: None,
                    taken: false,
                });
            }
            p.stats()
        };
        let twice = use_of(0x9000, 2);
        // The second load hits: fewer cycles per iteration than the first.
        assert_eq!(twice.dcache_misses, 1);
    }

    #[test]
    fn nop_statistics_are_counted() {
        let mut p = Pipeline::default();
        p.retire(&Retired { pc: 0x1000, inst: Inst::nop(), ea: None, taken: false });
        p.retire(&Retired { pc: 0x1004, inst: Inst::unop(), ea: None, taken: false });
        p.retire(&Retired { pc: 0x1008, inst: Inst::fnop(), ea: None, taken: false });
        p.retire(&Retired {
            pc: 0x100C,
            inst: Inst::mov(Reg::new(1), Reg::new(2)),
            ea: None,
            taken: false,
        });
        assert_eq!(p.stats().nops, 3);
        assert_eq!(p.stats().insts, 4);
    }

    #[test]
    fn stores_do_not_stall_like_loads() {
        let run = |is_store: bool| {
            let mut p = Pipeline::default();
            let inst = if is_store {
                Inst::stq(Reg::new(1), 0, Reg::SP)
            } else {
                Inst::ldq(Reg::new(1), 0, Reg::SP)
            };
            p.retire(&Retired { pc: 0x1000, inst, ea: Some(0x9000), taken: false });
            // Consumer of r1.
            p.retire(&Retired {
                pc: 0x1004,
                inst: Inst::Opr {
                    op: om_alpha::OprOp::Addq,
                    ra: Reg::new(1),
                    rb: om_alpha::Operand::Lit(1),
                    rc: Reg::new(2),
                },
                ea: None,
                taken: false,
            });
            p.stats().cycles
        };
        assert!(run(false) > run(true), "a missing load stalls its consumer; a store does not");
    }
}
