//! Basic-block cached execution with fused block timing — the simulator's
//! fast path.
//!
//! The reference interpreter ([`crate::Machine::run`]) pays a fetch, a
//! decode-dispatch, and a virtual `Observer::retire` per instruction, and
//! the timing observer re-derives register effects and re-evaluates the
//! pairing rule every retire. This module removes all of that from steady
//! state: on first entry to a pc, the text is partitioned into a [`Block`]
//! (instructions up to and including the next control transfer) carrying
//!
//! * a compact micro-op trace — pre-derived [`Effects`] masks, latencies,
//!   D-cache access kinds, nop/load flags — for architectural execution, and
//! * a precomputed *static schedule* — dual-issue pairing, quadword
//!   alignment, latencies by static dependence distance, I-cache line runs —
//!   fused into a handful of offsets.
//!
//! Per dispatch the engine executes the whole block architecturally
//! (recording effective addresses), then settles timing in one of two ways:
//!
//! * **fused fast path**: if no cross-block pairing is possible at entry,
//!   every live-in register is quiescent, every fetched I-cache line hits,
//!   and every load hits the D-cache (stores may miss: they neither
//!   allocate nor add latency), the static schedule is provably the real
//!   schedule shifted by the entry cycle, so the block commits with a few
//!   counter additions;
//! * **per-uop slow path**: otherwise the exact issue recurrence of
//!   [`crate::Pipeline`] runs over the precomputed micro-ops (still several
//!   times cheaper than the observer: no effect derivation, no 32-register
//!   scans, no virtual dispatch).
//!
//! Only the dynamic residue — taken-branch bubbles, I-cache line
//! transitions, cross-block load-use stalls — is ever computed at run time,
//! and the result is **byte-identical** to the reference model: the
//! equivalence battery (`tests/block_equiv.rs`) and the omfuzz differential
//! oracle pin cycle counts, checksums, and profile JSON against the
//! interpreter.
//!
//! Profiling and coverage ride the same dispatch loop at block granularity:
//! a block resolves once to per-procedure count segments
//! ([`BlockProfiler`]) or to a block-id bitmap expanded to pcs at report
//! time (coverage), so neither pays a per-instruction range lookup.
//!
//! [`run_sampled`] adds opt-in SimPoint-style sampled simulation: interval
//! basic-block vectors, greedy-leader clustering (deterministic, no RNG),
//! and representative-interval timing extrapolated by cycles-per-
//! instruction. Its error is *measured* (see `EXPERIMENTS.md`), not
//! assumed.

use crate::exec::{ExecError, Machine, RunResult};
use crate::profile::{ProcMap, ProfCounts};
use crate::timing::{Cache, TimingStats};
use om_alpha::timing::{can_dual_issue, latency};
use om_alpha::{Effects, Inst, MemOp, PalOp, Reg};
use om_core::profile::Profile;
use om_linker::Image;
use std::collections::{HashMap, HashSet};

/// Hard cap on block length. Any contiguous region no larger than the
/// I-cache maps to distinct sets, so a block never conflicts with itself;
/// 256 instructions (1KB) is far below that bound and keeps first-touch
/// decode cost flat.
const MAX_BLOCK: usize = 256;

/// One predecoded instruction: everything the timing recurrence needs,
/// derived once at block-build time.
#[derive(Clone, Copy)]
struct Uop {
    inst: Inst,
    eff: Effects,
    /// Base result latency in cycles.
    lat: u64,
    /// `Some(is_store)` when the instruction performs a D-cache access
    /// (matches exactly when the interpreter reports an effective address).
    mem: Option<bool>,
    is_nop: bool,
    /// Counts toward [`TimingStats::loads`] (load opcodes except LDA/LDAH).
    is_load: bool,
    /// Opens a new I-cache line within the block (always true for uop 0).
    line_first: bool,
    /// Static dual-issue legality with the in-block predecessor: contiguous
    /// pcs, predecessor on a quadword boundary, compatible pipes.
    pair_static: bool,
}

/// The fused static schedule of a block: the timing recurrence evaluated
/// once at entry cycle 0 with quiescent registers, no stalls, and no entry
/// pairing. Under the fast-path preconditions the real schedule is exactly
/// this one shifted by the entry cycle.
struct Sched {
    /// Registers read before written in the block.
    live_int: u32,
    live_fp: u32,
    /// Distinct I-cache lines fetched, in order, with access counts.
    lines: Vec<(u64, u32)>,
    dual: u64,
    nops: u64,
    loads: u64,
    /// Issue-cycle offset of the final instruction.
    term_issue: u64,
    /// Cycle offset after the block falls through.
    exit_ft: u64,
    /// Cycle offset after a taken terminator (`term_issue` + bubble).
    exit_taken: u64,
    /// Final result-availability offsets: `(is_fp, reg, offset)`.
    defs: Vec<(bool, u8, u64)>,
}

/// A decoded basic block: micro-op trace plus fused static timing.
struct Block {
    start: u64,
    uops: Vec<Uop>,
    sched: Sched,
}

impl Block {
    fn len(&self) -> usize {
        self.uops.len()
    }

    fn pc_of(&self, i: usize) -> u64 {
        self.start + 4 * i as u64
    }
}

/// Evaluates the issue recurrence statically (entry cycle 0, all registers
/// ready, perfect caches, `last = None`).
fn schedule(start: u64, uops: &[Uop], line_shift: u32, bubble: u64) -> Sched {
    let mut int_ready = [0u64; 32];
    let mut fp_ready = [0u64; 32];
    let mut written_int: u32 = 0;
    let mut written_fp: u32 = 0;
    let mut live_int: u32 = 0;
    let mut live_fp: u32 = 0;
    let mut lines: Vec<(u64, u32)> = Vec::new();
    let mut cycle = 0u64;
    let mut last_issue: Option<u64> = None;
    let mut dual = 0u64;
    let mut nops = 0u64;
    let mut loads = 0u64;
    let mut term_issue = 0u64;

    for (i, u) in uops.iter().enumerate() {
        let pc = start + 4 * i as u64;
        let line = pc >> line_shift;
        match lines.last_mut() {
            Some(l) if l.0 == line => l.1 += 1,
            _ => lines.push((line, 1)),
        }
        if u.is_nop {
            nops += 1;
        }
        if u.is_load {
            loads += 1;
        }
        live_int |= u.eff.int_uses & !written_int;
        live_fp |= u.eff.fp_uses & !written_fp;

        let mut ready = 0u64;
        let mut m = u.eff.int_uses;
        while m != 0 {
            ready = ready.max(int_ready[m.trailing_zeros() as usize]);
            m &= m - 1;
        }
        let mut m = u.eff.fp_uses;
        while m != 0 {
            ready = ready.max(fp_ready[m.trailing_zeros() as usize]);
            m &= m - 1;
        }
        let mut issue = cycle.max(ready);
        if let Some(lc) = last_issue {
            if u.pair_static && issue <= lc {
                issue = lc;
                dual += 1;
            } else if issue == cycle {
                issue = cycle + 1;
            }
        }
        let avail = issue + u.lat;
        let mut m = u.eff.int_defs;
        while m != 0 {
            int_ready[m.trailing_zeros() as usize] = avail;
            m &= m - 1;
        }
        written_int |= u.eff.int_defs;
        let mut m = u.eff.fp_defs;
        while m != 0 {
            fp_ready[m.trailing_zeros() as usize] = avail;
            m &= m - 1;
        }
        written_fp |= u.eff.fp_defs;
        cycle = issue.max(cycle);
        last_issue = Some(issue);
        term_issue = issue;
    }

    let mut defs = Vec::new();
    let mut m = written_int;
    while m != 0 {
        let r = m.trailing_zeros();
        defs.push((false, r as u8, int_ready[r as usize]));
        m &= m - 1;
    }
    let mut m = written_fp;
    while m != 0 {
        let r = m.trailing_zeros();
        defs.push((true, r as u8, fp_ready[r as usize]));
        m &= m - 1;
    }

    Sched {
        live_int,
        live_fp,
        lines,
        dual,
        nops,
        loads,
        term_issue,
        exit_ft: cycle,
        exit_taken: term_issue + bubble,
        defs,
    }
}

/// Lazily built pc→block index over an image's text.
struct BlockCache {
    /// Text word index → block id (`u32::MAX` = not yet built).
    map: Vec<u32>,
    blocks: Vec<Block>,
    line_shift: u32,
    bubble: u64,
    /// Total micro-ops across all resident blocks (occupancy reporting).
    uops_total: u64,
    /// Wall time spent decoding blocks, accumulated only while a trace is
    /// installed (report-only; split out of dispatch time by `run_blocks`).
    decode_ns: u64,
}

impl BlockCache {
    fn new(m: &Machine, line_shift: u32, bubble: u64) -> BlockCache {
        BlockCache {
            map: vec![u32::MAX; m.text.len()],
            blocks: Vec::new(),
            line_shift,
            bubble,
            uops_total: 0,
            decode_ns: 0,
        }
    }

    /// Resolves `pc` to a block id, building the block on first entry.
    /// Mirrors `Machine::fetch`'s error cases exactly.
    fn lookup(&mut self, m: &Machine, pc: u64) -> Result<u32, ExecError> {
        if pc < m.text_base || !pc.is_multiple_of(4) {
            return Err(ExecError::BadPc { pc });
        }
        let idx = ((pc - m.text_base) / 4) as usize;
        match self.map.get(idx) {
            Some(&id) if id != u32::MAX => Ok(id),
            Some(_) => self.build(m, pc, idx),
            None => Err(ExecError::BadPc { pc }),
        }
    }

    fn build(&mut self, m: &Machine, pc: u64, idx: usize) -> Result<u32, ExecError> {
        let t0 = om_obs::enabled().then(std::time::Instant::now);
        let r = self.build_inner(m, pc, idx);
        if let Some(t0) = t0 {
            self.decode_ns += t0.elapsed().as_nanos() as u64;
        }
        r
    }

    fn build_inner(&mut self, m: &Machine, pc: u64, idx: usize) -> Result<u32, ExecError> {
        let mut uops: Vec<Uop> = Vec::new();
        for k in idx..m.text.len() {
            if uops.len() == MAX_BLOCK {
                break;
            }
            let inst = match &m.text[k] {
                Ok(inst) => *inst,
                // Undecodable padding: end the block before it, so the next
                // dispatch faults exactly like the reference fetch.
                Err(_) => break,
            };
            let upc = pc + 4 * uops.len() as u64;
            let mem = match inst {
                Inst::Mem { op, ra, .. } => match op {
                    MemOp::Ldl | MemOp::Ldq | MemOp::Ldt => Some(false),
                    MemOp::LdqU => (!ra.is_zero()).then_some(false),
                    MemOp::Stl | MemOp::Stq | MemOp::Stt => Some(true),
                    MemOp::Lda | MemOp::Ldah => None,
                },
                _ => None,
            };
            let is_load = matches!(inst, Inst::Mem { op, .. }
                if op.is_load() && !matches!(op, MemOp::Lda | MemOp::Ldah));
            let pair_static = match uops.last() {
                Some(prev) => (upc - 4) % 8 == 0 && can_dual_issue(&prev.inst, &inst),
                None => false,
            };
            let line_first =
                uops.is_empty() || (upc >> self.line_shift) != ((upc - 4) >> self.line_shift);
            uops.push(Uop {
                inst,
                eff: Effects::of(&inst),
                lat: latency(&inst) as u64,
                mem,
                is_nop: inst.is_nop(),
                is_load,
                line_first,
                pair_static,
            });
            if matches!(inst, Inst::Br { .. } | Inst::Jmp { .. } | Inst::Pal { op: PalOp::Halt })
            {
                break;
            }
        }
        if uops.is_empty() {
            return match &m.text[idx] {
                Err(word) => Err(ExecError::BadInstruction { pc, word: *word }),
                Ok(_) => unreachable!("non-empty block for a decodable word"),
            };
        }
        let sched = schedule(pc, &uops, self.line_shift, self.bubble);
        let id = u32::try_from(self.blocks.len()).expect("block count fits u32");
        self.uops_total += uops.len() as u64;
        self.blocks.push(Block { start: pc, uops, sched });
        self.map[idx] = id;
        Ok(id)
    }
}

/// Per-block sink driven by the dispatch loop: timing, profiling, coverage,
/// and the sampling passes all hang off this one hook.
trait BlockHook {
    /// `done` instructions of `b` retired (a prefix unless the block
    /// completed); `taken` reports whether a completed terminator
    /// transferred control. `eas` holds the recorded effective addresses of
    /// the executed prefix, in order.
    fn block(&mut self, b: &Block, id: u32, done: usize, eas: &[u64], taken: bool);
}

/// The block-granularity twin of [`crate::Pipeline`]: same caches, same
/// recurrence, but advanced a block at a time.
struct BlockTiming {
    icache: Cache,
    dcache: Cache,
    int_ready: [u64; 32],
    fp_ready: [u64; 32],
    cycle: u64,
    /// Last issued instruction (for cross-block pairing), with its pc.
    last: Option<(u64, Inst, u64)>,
    insts: u64,
    dual: u64,
    nops: u64,
    loads: u64,
    bubble: u64,
}

impl Default for BlockTiming {
    /// Must match [`crate::Pipeline::default`] parameter-for-parameter.
    fn default() -> Self {
        BlockTiming {
            icache: Cache::new(8 << 10, 32, 8),
            dcache: Cache::new(8 << 10, 32, 8),
            int_ready: [0; 32],
            fp_ready: [0; 32],
            cycle: 0,
            last: None,
            insts: 0,
            dual: 0,
            nops: 0,
            loads: 0,
            bubble: 1,
        }
    }
}

impl BlockTiming {
    fn stats(&self) -> TimingStats {
        TimingStats {
            cycles: self.cycle,
            insts: self.insts,
            dual_issued: self.dual,
            icache_misses: self.icache.misses,
            dcache_misses: self.dcache.misses,
            nops: self.nops,
            loads: self.loads,
        }
    }

    fn dispatch(&mut self, b: &Block, done: usize, eas: &[u64], taken: bool) {
        if done == b.len() && self.try_fused(b, eas, taken) {
            return;
        }
        self.slow(b, done, eas, taken);
    }

    /// Commits a whole block from its static schedule if the dynamic state
    /// provably cannot perturb it. Mutates nothing on failure.
    fn try_fused(&mut self, b: &Block, eas: &[u64], taken: bool) -> bool {
        let s = &b.sched;
        // Entry pairing: a cross-boundary dual issue needs the per-uop path.
        let base = match self.last {
            None => self.cycle,
            Some((lpc, linst, _)) => {
                if b.start == lpc.wrapping_add(4)
                    && lpc % 8 == 0
                    && can_dual_issue(&linst, &b.uops[0].inst)
                {
                    return false;
                }
                // With quiescent live-ins and a fetch hit the first issue
                // would land on `cycle`, so in-order single issue bumps the
                // whole schedule one cycle.
                self.cycle + 1
            }
        };
        // Every live-in register must be ready at or before entry.
        let mut m = s.live_int;
        while m != 0 {
            if self.int_ready[m.trailing_zeros() as usize] > self.cycle {
                return false;
            }
            m &= m - 1;
        }
        let mut m = s.live_fp;
        while m != 0 {
            if self.fp_ready[m.trailing_zeros() as usize] > self.cycle {
                return false;
            }
            m &= m - 1;
        }
        // Every fetched line must hit (a miss both stalls and allocates).
        for &(line, _) in &s.lines {
            if !self.icache.peek_line(line) {
                return false;
            }
        }
        // Loads must hit; stores may miss (no allocation, no added latency),
        // so the probe sequence over frozen tags equals the real sequence.
        let mut d_hits = 0u64;
        let mut d_misses = 0u64;
        let mut ea_i = 0;
        for u in &b.uops {
            let Some(is_store) = u.mem else { continue };
            if self.dcache.peek(eas[ea_i]) {
                d_hits += 1;
            } else if is_store {
                d_misses += 1;
            } else {
                return false;
            }
            ea_i += 1;
        }

        // All preconditions hold: commit the fused schedule.
        self.icache.hits += b.len() as u64;
        self.dcache.hits += d_hits;
        self.dcache.misses += d_misses;
        self.insts += b.len() as u64;
        self.dual += s.dual;
        self.nops += s.nops;
        self.loads += s.loads;
        for &(fp, r, off) in &s.defs {
            if fp {
                self.fp_ready[r as usize] = base + off;
            } else {
                self.int_ready[r as usize] = base + off;
            }
        }
        if taken {
            self.cycle = base + s.exit_taken;
            self.last = None;
        } else {
            self.cycle = base + s.exit_ft;
            let t = b.len() - 1;
            self.last = Some((b.pc_of(t), b.uops[t].inst, base + s.term_issue));
        }
        true
    }

    /// The exact per-instruction recurrence of [`crate::Pipeline::retire`]
    /// over the precomputed micro-ops.
    fn slow(&mut self, b: &Block, done: usize, eas: &[u64], taken: bool) {
        let mut ea_i = 0;
        for i in 0..done {
            let u = &b.uops[i];
            let pc = b.pc_of(i);
            self.insts += 1;
            if u.is_nop {
                self.nops += 1;
            }
            if u.is_load {
                self.loads += 1;
            }
            let ifetch_stall = if u.line_first {
                self.icache.access(pc, true)
            } else {
                // Same line as the previous uop, which just allocated it.
                self.icache.hits += 1;
                0
            };

            let mut ready = 0u64;
            let mut m = u.eff.int_uses;
            while m != 0 {
                ready = ready.max(self.int_ready[m.trailing_zeros() as usize]);
                m &= m - 1;
            }
            let mut m = u.eff.fp_uses;
            while m != 0 {
                ready = ready.max(self.fp_ready[m.trailing_zeros() as usize]);
                m &= m - 1;
            }

            let mut issue = self.cycle.max(ready) + ifetch_stall;
            let mut paired = false;
            if let Some((lpc, linst, lcycle)) = self.last {
                let statically = if i == 0 {
                    pc == lpc.wrapping_add(4) && lpc % 8 == 0 && can_dual_issue(&linst, &u.inst)
                } else {
                    u.pair_static
                };
                if statically && issue <= lcycle && ifetch_stall == 0 {
                    issue = lcycle;
                    paired = true;
                    self.dual += 1;
                }
            }
            if !paired && issue == self.cycle && self.last.is_some() {
                issue = self.cycle + 1;
            }

            let mut lat = u.lat;
            if let Some(is_store) = u.mem {
                let stall = self.dcache.access(eas[ea_i], !is_store);
                ea_i += 1;
                if !is_store {
                    lat += stall;
                }
            }

            let avail = issue + lat;
            let mut m = u.eff.int_defs;
            while m != 0 {
                self.int_ready[m.trailing_zeros() as usize] = avail;
                m &= m - 1;
            }
            let mut m = u.eff.fp_defs;
            while m != 0 {
                self.fp_ready[m.trailing_zeros() as usize] = avail;
                m &= m - 1;
            }

            self.cycle = issue.max(self.cycle);
            if taken && i + 1 == done && done == b.len() {
                self.cycle = issue + self.bubble;
                self.last = None;
            } else {
                self.last = Some((pc, u.inst, issue));
            }
        }
    }
}

impl BlockHook for BlockTiming {
    fn block(&mut self, b: &Block, _id: u32, done: usize, eas: &[u64], taken: bool) {
        self.dispatch(b, done, eas, taken);
    }
}

/// Per-block profile metadata: the block's instructions split into
/// `(procedure range, count)` segments, resolved once.
struct BlockMeta {
    segs: Vec<(u32, u32)>,
}

fn build_meta(map: &ProcMap, b: &Block) -> BlockMeta {
    let mut segs: Vec<(u32, u32)> = Vec::new();
    let mut cur = 0usize;
    for i in 0..b.len() {
        let j = map.locate_from(cur, b.pc_of(i));
        cur = j;
        match segs.last_mut() {
            Some(s) if s.0 == j as u32 => s.1 += 1,
            _ => segs.push((j as u32, 1)),
        }
    }
    BlockMeta { segs }
}

/// Block-granularity profiling: identical attribution rules to
/// [`crate::ProfileObserver`] (shared [`ProcMap`]/[`ProfCounts`]), but a
/// dispatched block touches one counter per covered procedure range instead
/// of one range lookup per instruction.
struct BlockProfiler {
    map: ProcMap,
    counts: ProfCounts,
    meta: Vec<Option<BlockMeta>>,
    /// The terminator of the last dispatched block when it was a taken
    /// transfer: `(pc, inst, range index)`.
    prev_taken: Option<(u64, Inst, usize)>,
}

impl BlockProfiler {
    fn new(image: &Image) -> BlockProfiler {
        let map = ProcMap::new(image);
        let counts = ProfCounts::new(&map);
        BlockProfiler { map, counts, meta: Vec::new(), prev_taken: None }
    }

    fn finish(self) -> Profile {
        self.counts.finish(&self.map)
    }
}

impl BlockHook for BlockProfiler {
    fn block(&mut self, b: &Block, id: u32, done: usize, _eas: &[u64], taken: bool) {
        if done == 0 {
            // Nothing retired (first instruction faulted): the reference
            // observer saw nothing either.
            return;
        }
        let id = id as usize;
        if self.meta.len() <= id {
            self.meta.resize_with(id + 1, || None);
        }
        if self.meta[id].is_none() {
            self.meta[id] = Some(build_meta(&self.map, b));
        }
        let meta = self.meta[id].as_ref().expect("meta just built");

        if let Some(prev) = self.prev_taken.take() {
            // The previous block's terminator transferred control here:
            // this block's start is the target.
            let first = meta.segs[0].0 as usize;
            self.counts.arrive(&self.map, prev, b.start, first);
        }

        let mut left = done as u32;
        for &(ri, c) in &meta.segs {
            if left == 0 {
                break;
            }
            let take = c.min(left);
            self.counts.add_insts(ri as usize, take as u64);
            left -= take;
        }

        if taken {
            let t = done - 1;
            let term_idx = meta.segs.last().expect("non-empty segs").0 as usize;
            self.prev_taken = Some((b.pc_of(t), b.uops[t].inst, term_idx));
        }
    }
}

/// Execution coverage at block granularity: the longest executed prefix per
/// block, expanded to a pc set at report time.
struct BlockCoverage {
    prefix: Vec<u32>,
}

impl BlockHook for BlockCoverage {
    fn block(&mut self, b: &Block, id: u32, done: usize, _eas: &[u64], _taken: bool) {
        let _ = b;
        let id = id as usize;
        if self.prefix.len() <= id {
            self.prefix.resize(id + 1, 0);
        }
        self.prefix[id] = self.prefix[id].max(done as u32);
    }
}

impl BlockCoverage {
    fn into_set(self, cache: &BlockCache) -> HashSet<u64> {
        let mut set = HashSet::new();
        for (id, &n) in self.prefix.iter().enumerate() {
            let b = &cache.blocks[id];
            for i in 0..n as usize {
                set.insert(b.pc_of(i));
            }
        }
        set
    }
}

/// Per-run dispatch tallies for observability (always cheap to keep; only
/// published to the installed trace, if any).
#[derive(Default)]
struct RunTally {
    dispatches: u64,
    insts: u64,
}

/// The dispatch loop: whole-block architectural execution with the
/// instruction budget checked once per block (an in-block remainder caps
/// the final partial block, so `StepLimit` still fires at the exact
/// instruction boundary the reference interpreter uses).
///
/// When a trace is installed this run becomes a `sim.run` span carrying
/// block-cache occupancy, with deterministic dispatch/decode counters and a
/// wall-clock decode vs dispatch time split.
fn run_blocks(
    m: &mut Machine,
    cache: &mut BlockCache,
    limit: u64,
    hooks: &mut [&mut dyn BlockHook],
) -> Result<RunResult, ExecError> {
    let mut tally = RunTally::default();
    if !om_obs::enabled() {
        return run_block_loop(m, cache, limit, hooks, &mut tally);
    }
    let mut span = om_obs::span("sim.run");
    let t0 = std::time::Instant::now();
    let blocks0 = cache.blocks.len() as u64;
    let uops0 = cache.uops_total;
    let decode0 = cache.decode_ns;
    let r = run_block_loop(m, cache, limit, hooks, &mut tally);
    let total_ns = t0.elapsed().as_nanos() as u64;
    let decode_ns = cache.decode_ns - decode0;
    // Deterministic facts of the execution (identical for identical images
    // and limits), safe to merge and gate.
    om_obs::count("sim.block_dispatches", tally.dispatches);
    om_obs::count("sim.insts_retired", tally.insts);
    om_obs::count("sim.blocks_decoded", cache.blocks.len() as u64 - blocks0);
    om_obs::count("sim.uops_decoded", cache.uops_total - uops0);
    // Wall-clock split: first-touch decode vs steady-state dispatch.
    om_obs::timer_ns("sim.decode", decode_ns);
    om_obs::timer_ns("sim.dispatch", total_ns.saturating_sub(decode_ns));
    // Block-cache occupancy at run end.
    span.arg("blocks_resident", cache.blocks.len() as u64);
    span.arg("uops_resident", cache.uops_total);
    span.arg("dispatches", tally.dispatches);
    r
}

fn run_block_loop(
    m: &mut Machine,
    cache: &mut BlockCache,
    limit: u64,
    hooks: &mut [&mut dyn BlockHook],
    tally: &mut RunTally,
) -> Result<RunResult, ExecError> {
    let mut insts: u64 = 0;
    let mut eas: Vec<u64> = Vec::with_capacity(MAX_BLOCK);
    loop {
        if insts >= limit {
            return Err(ExecError::StepLimit { limit });
        }
        let pc = m.pc;
        let id = cache.lookup(m, pc)?;
        let b = &cache.blocks[id as usize];
        let want = (b.len() as u64).min(limit - insts) as usize;

        eas.clear();
        let mut done = 0usize;
        let mut taken = false;
        let mut halted = false;
        let mut fault: Option<ExecError> = None;
        for i in 0..want {
            match m.exec_one(b.pc_of(i), b.uops[i].inst) {
                Ok(s) => {
                    done = i + 1;
                    if let Some(ea) = s.ea {
                        eas.push(ea);
                    }
                    if s.halted {
                        halted = true;
                        break;
                    }
                    taken = s.taken;
                    m.pc = s.next;
                }
                Err(e) => {
                    fault = Some(e);
                    break;
                }
            }
        }
        insts += done as u64;
        tally.dispatches += 1;
        tally.insts += done as u64;
        let term_taken = taken && done == b.len();

        for h in hooks.iter_mut() {
            h.block(b, id, done, &eas, term_taken);
        }

        if halted {
            return Ok(RunResult {
                result: m.geti(Reg::V0) as i64,
                insts,
                output: std::mem::take(&mut m.output),
            });
        }
        if let Some(e) = fault {
            return Err(e);
        }
    }
}

fn engine(m: &Machine) -> (BlockCache, BlockTiming) {
    let t = BlockTiming::default();
    let cache = BlockCache::new(m, t.icache.line_shift(), t.bubble);
    (cache, t)
}

/// Runs `image` functionally on the block engine.
///
/// # Errors
///
/// See [`crate::Machine::run`]; the error cases are identical.
pub fn run_fast(image: &Image, limit: u64) -> Result<RunResult, ExecError> {
    let mut m = Machine::load(image)?;
    let (mut cache, _) = engine(&m);
    run_blocks(&mut m, &mut cache, limit, &mut [])
}

/// Runs `image` on the block engine with the default 21064-class timing
/// model. Produces byte-identical results and [`TimingStats`] to
/// [`crate::run_timed`].
///
/// # Errors
///
/// See [`crate::Machine::run`].
pub fn run_timed_fast(image: &Image, limit: u64) -> Result<(RunResult, TimingStats), ExecError> {
    let mut m = Machine::load(image)?;
    let (mut cache, mut timing) = engine(&m);
    let r = run_blocks(&mut m, &mut cache, limit, &mut [&mut timing])?;
    Ok((r, timing.stats()))
}

/// Runs `image` on the block engine collecting an execution [`Profile`]
/// byte-identical to [`crate::run_profiled`]'s.
///
/// # Errors
///
/// See [`crate::Machine::run`].
pub fn run_profiled_fast(image: &Image, limit: u64) -> Result<(RunResult, Profile), ExecError> {
    let mut m = Machine::load(image)?;
    let (mut cache, _) = engine(&m);
    let mut prof = BlockProfiler::new(image);
    let r = run_blocks(&mut m, &mut cache, limit, &mut [&mut prof])?;
    Ok((r, prof.finish()))
}

/// Runs `image` on the block engine collecting timing and a profile in one
/// pass (the `asim --timing --profile` combination).
///
/// # Errors
///
/// See [`crate::Machine::run`].
pub fn run_timed_profiled_fast(
    image: &Image,
    limit: u64,
) -> Result<(RunResult, TimingStats, Profile), ExecError> {
    let mut m = Machine::load(image)?;
    let (mut cache, mut timing) = engine(&m);
    let mut prof = BlockProfiler::new(image);
    let r = run_blocks(&mut m, &mut cache, limit, &mut [&mut timing, &mut prof])?;
    Ok((r, timing.stats(), prof.finish()))
}

/// Runs `image` on the block engine collecting the set of executed pcs
/// (the mutation harness's coverage oracle).
///
/// # Errors
///
/// See [`crate::Machine::run`].
pub fn run_covered_fast(
    image: &Image,
    limit: u64,
) -> Result<(RunResult, HashSet<u64>), ExecError> {
    let mut m = Machine::load(image)?;
    let (mut cache, _) = engine(&m);
    let mut cov = BlockCoverage { prefix: Vec::new() };
    let r = run_blocks(&mut m, &mut cache, limit, &mut [&mut cov])?;
    Ok((r, cov.into_set(&cache)))
}

// ---------------------------------------------------------------------------
// Sampled simulation (SimPoint-style, opt-in via `asim --sample N`).
// ---------------------------------------------------------------------------

/// Greedy-leader clustering threshold on the normalized Manhattan distance
/// between interval basic-block vectors (range 0..=2).
const SAMPLE_THETA: f64 = 0.25;

/// Result of a sampled-timing run: the estimate plus everything needed to
/// report how it was obtained.
#[derive(Debug, Clone)]
pub struct SampleReport {
    /// Interval length in instructions.
    pub interval: u64,
    /// Number of intervals the run split into.
    pub intervals: usize,
    /// Number of behavior clusters (= representative intervals timed).
    pub clusters: usize,
    /// Instructions inside the timed representative intervals.
    pub sampled_insts: u64,
    /// Total instructions retired.
    pub total_insts: u64,
    /// Extrapolated cycle count (CPI-weighted over clusters).
    pub estimated_cycles: u64,
}

/// Pass 1: per-interval basic-block vectors (block id → instructions
/// retired in that block during the interval).
struct BbvPass {
    interval: u64,
    in_interval: u64,
    cur: HashMap<u32, u64>,
    vectors: Vec<Vec<(u32, u64)>>,
    sizes: Vec<u64>,
}

impl BbvPass {
    fn new(interval: u64) -> BbvPass {
        BbvPass {
            interval,
            in_interval: 0,
            cur: HashMap::new(),
            vectors: Vec::new(),
            sizes: Vec::new(),
        }
    }

    fn flush(&mut self) {
        if self.in_interval == 0 {
            return;
        }
        let mut v: Vec<(u32, u64)> = self.cur.drain().collect();
        v.sort_unstable();
        self.vectors.push(v);
        self.sizes.push(self.in_interval);
        self.in_interval = 0;
    }
}

impl BlockHook for BbvPass {
    fn block(&mut self, _b: &Block, id: u32, done: usize, _eas: &[u64], _taken: bool) {
        *self.cur.entry(id).or_insert(0) += done as u64;
        self.in_interval += done as u64;
        if self.in_interval >= self.interval {
            self.flush();
        }
    }
}

/// Normalized Manhattan distance between two sparse BBVs.
fn bbv_distance(a: &[(u32, u64)], asz: u64, b: &[(u32, u64)], bsz: u64) -> f64 {
    let (mut i, mut j, mut d) = (0usize, 0usize, 0f64);
    while i < a.len() || j < b.len() {
        let ka = a.get(i).map(|&(k, _)| k);
        let kb = b.get(j).map(|&(k, _)| k);
        match (ka, kb) {
            (Some(x), Some(y)) if x == y => {
                d += (a[i].1 as f64 / asz as f64 - b[j].1 as f64 / bsz as f64).abs();
                i += 1;
                j += 1;
            }
            (Some(x), Some(y)) if x < y => {
                let _ = y;
                d += a[i].1 as f64 / asz as f64;
                i += 1;
            }
            (Some(_), Some(_)) => {
                d += b[j].1 as f64 / bsz as f64;
                j += 1;
            }
            (Some(_), None) => {
                d += a[i].1 as f64 / asz as f64;
                i += 1;
            }
            (None, Some(_)) => {
                d += b[j].1 as f64 / bsz as f64;
                j += 1;
            }
            (None, None) => unreachable!("loop condition"),
        }
    }
    d
}

/// Deterministic greedy-leader clustering: each interval joins the first
/// existing cluster whose leader is within [`SAMPLE_THETA`], else opens a
/// new cluster with itself as leader. No RNG, no iteration-order
/// dependence — same input, same clusters, every run.
fn cluster_intervals(vectors: &[Vec<(u32, u64)>], sizes: &[u64]) -> (Vec<usize>, Vec<usize>) {
    let mut leaders: Vec<usize> = Vec::new();
    let mut assign = vec![0usize; vectors.len()];
    for i in 0..vectors.len() {
        let found = leaders.iter().position(|&l| {
            bbv_distance(&vectors[i], sizes[i], &vectors[l], sizes[l]) <= SAMPLE_THETA
        });
        match found {
            Some(c) => assign[i] = c,
            None => {
                assign[i] = leaders.len();
                leaders.push(i);
            }
        }
    }
    (leaders, assign)
}

/// Pass 2: timing switched on only inside representative intervals; cache
/// and pipeline state persist (stale) across skipped gaps, which is part of
/// the measured — not assumed — error model.
struct SamplePass {
    interval: u64,
    reps: HashSet<usize>,
    cur: usize,
    in_interval: u64,
    timing: BlockTiming,
    active: bool,
    start_cycle: u64,
    /// Interval index → cycles spent inside it.
    deltas: HashMap<usize, u64>,
}

impl SamplePass {
    fn new(interval: u64, reps: HashSet<usize>) -> SamplePass {
        let active = reps.contains(&0);
        SamplePass {
            interval,
            reps,
            cur: 0,
            in_interval: 0,
            timing: BlockTiming::default(),
            active,
            start_cycle: 0,
            deltas: HashMap::new(),
        }
    }

    fn close(&mut self) {
        if self.in_interval == 0 {
            return;
        }
        if self.active {
            self.deltas.insert(self.cur, self.timing.cycle - self.start_cycle);
        }
        self.cur += 1;
        self.in_interval = 0;
        self.active = self.reps.contains(&self.cur);
        if self.active {
            self.start_cycle = self.timing.cycle;
        }
    }
}

impl BlockHook for SamplePass {
    fn block(&mut self, b: &Block, _id: u32, done: usize, eas: &[u64], taken: bool) {
        if self.active {
            self.timing.dispatch(b, done, eas, taken);
        }
        self.in_interval += done as u64;
        if self.in_interval >= self.interval {
            self.close();
        }
    }
}

/// Sampled-timing run: SimPoint-style interval BBVs (pass 1), deterministic
/// greedy-leader clustering, then representative-interval timing (pass 2)
/// extrapolated by per-cluster cycles-per-instruction. Opt-in only — full
/// runs remain the default everywhere figures are produced.
///
/// # Errors
///
/// See [`crate::Machine::run`]; the functional run must complete (reach
/// HALT) for an extrapolation to exist.
pub fn run_sampled(
    image: &Image,
    limit: u64,
    interval: u64,
) -> Result<(RunResult, SampleReport), ExecError> {
    let interval = interval.max(1);

    // Pass 1: functional run collecting interval basic-block vectors.
    let mut m = Machine::load(image)?;
    let (mut cache, _) = engine(&m);
    let mut bbv = BbvPass::new(interval);
    run_blocks(&mut m, &mut cache, limit, &mut [&mut bbv])?;
    bbv.flush();
    let (leaders, assign) = cluster_intervals(&bbv.vectors, &bbv.sizes);

    // Pass 2: same execution, timing only the representative intervals.
    // The block cache is reused; dispatch order is identical by determinism.
    let mut m = Machine::load(image)?;
    let mut pass = SamplePass::new(interval, leaders.iter().copied().collect());
    let result = run_blocks(&mut m, &mut cache, limit, &mut [&mut pass])?;
    pass.close();

    // CPI-weighted extrapolation: each cluster contributes its leader's
    // cycles-per-instruction times the cluster's total instruction mass.
    let mut estimated = 0f64;
    for (c, &leader) in leaders.iter().enumerate() {
        let cycles = *pass.deltas.get(&leader).expect("leader interval was timed") as f64;
        let cpi = cycles / bbv.sizes[leader] as f64;
        let mass: u64 = assign
            .iter()
            .zip(&bbv.sizes)
            .filter(|&(&a, _)| a == c)
            .map(|(_, &s)| s)
            .sum();
        estimated += cpi * mass as f64;
    }
    let total_insts: u64 = bbv.sizes.iter().sum();
    let sampled_insts: u64 = leaders.iter().map(|&l| bbv.sizes[l]).sum();
    let report = SampleReport {
        interval,
        intervals: bbv.sizes.len(),
        clusters: leaders.len(),
        sampled_insts,
        total_insts,
        estimated_cycles: estimated.round() as u64,
    };
    Ok((result, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_codegen::{compile_source, crt0, CompileOpts};
    use om_linker::Linker;

    fn image(src: &str) -> Image {
        let obj = compile_source("m", src, &CompileOpts::o2()).expect("compile");
        let (image, _) =
            Linker::new().object(crt0::module().expect("crt0")).object(obj).link().expect("link");
        image
    }

    const LOOP: &str = "int main() { int s = 0; int i = 0;
        for (i = 1; i <= 100; i = i + 1) { s = s + i; }
        return s; }";

    #[test]
    fn block_engine_matches_reference_functionally() {
        let img = image(LOOP);
        let a = crate::run_image(&img, 1_000_000).expect("reference");
        let b = run_fast(&img, 1_000_000).expect("block engine");
        assert_eq!(a, b);
    }

    #[test]
    fn block_engine_timing_matches_reference() {
        let img = image(LOOP);
        let (ra, ta) = crate::run_timed(&img, 1_000_000).expect("reference");
        let (rb, tb) = run_timed_fast(&img, 1_000_000).expect("block engine");
        assert_eq!(ra, rb);
        assert_eq!(ta, tb);
    }

    #[test]
    fn block_engine_profile_matches_reference() {
        let img = image(LOOP);
        let (_, pa) = crate::run_profiled(&img, 1_000_000).expect("reference");
        let (_, pb) = run_profiled_fast(&img, 1_000_000).expect("block engine");
        assert_eq!(pa.to_json(), pb.to_json());
    }

    #[test]
    fn step_limit_fires_at_exact_boundary() {
        let img = image(LOOP);
        let full = crate::run_image(&img, 1_000_000).expect("reference").insts;
        for limit in [1, 2, 3, full - 1] {
            let a = crate::run_image(&img, limit);
            let b = run_fast(&img, limit);
            assert_eq!(a, b, "limit {limit}");
            assert!(matches!(b, Err(ExecError::StepLimit { .. })));
        }
        // Limit exactly at the retirement count: the run completes.
        assert!(run_fast(&img, full).is_ok());
    }

    #[test]
    fn coverage_matches_per_instruction_reference() {
        let img = image(LOOP);
        struct Pcs(HashSet<u64>);
        impl crate::Observer for Pcs {
            fn retire(&mut self, r: &crate::Retired) {
                self.0.insert(r.pc);
            }
        }
        let mut obs = Pcs(HashSet::new());
        Machine::load(&img).unwrap().run(1_000_000, &mut obs).expect("reference");
        let (_, cov) = run_covered_fast(&img, 1_000_000).expect("block engine");
        assert_eq!(obs.0, cov);
    }

    #[test]
    fn tracing_observes_without_perturbing_the_run() {
        let img = image(LOOP);
        let (r_plain, t_plain) = run_timed_fast(&img, 1_000_000).expect("plain");
        let trace = om_obs::Trace::new();
        let (r_traced, t_traced) = {
            let _g = trace.install();
            run_timed_fast(&img, 1_000_000).expect("traced")
        };
        assert_eq!(r_plain, r_traced);
        assert_eq!(t_plain, t_traced);
        let counters = trace.counters();
        assert_eq!(counters.get("sim.insts_retired"), Some(&r_plain.insts));
        assert!(counters["sim.blocks_decoded"] > 0);
        assert!(counters["sim.uops_decoded"] >= counters["sim.blocks_decoded"]);
        assert!(counters["sim.block_dispatches"] >= counters["sim.blocks_decoded"]);
        let sink = trace.sink();
        let run_span = sink.spans.iter().find(|s| s.name == "sim.run").expect("sim.run span");
        assert!(run_span.args.iter().any(|(k, v)| k == "blocks_resident" && *v > 0));
        assert!(sink.timers_ns.contains_key("sim.decode"));
        assert!(sink.timers_ns.contains_key("sim.dispatch"));
    }

    #[test]
    fn sampled_run_reports_consistent_totals() {
        let img = image(LOOP);
        let (r, full) = run_timed_fast(&img, 1_000_000).expect("full");
        let (rs, rep) = run_sampled(&img, 1_000_000, 64).expect("sampled");
        assert_eq!(r, rs);
        assert_eq!(rep.total_insts, full.insts);
        assert!(rep.clusters >= 1 && rep.clusters <= rep.intervals);
        assert!(rep.sampled_insts <= rep.total_insts);
        assert!(rep.estimated_cycles > 0);
        // The estimate must be in the right ballpark even on a tiny run.
        let err = (rep.estimated_cycles as f64 - full.cycles as f64).abs() / full.cycles as f64;
        assert!(err < 0.5, "sampling error {err} vs full {}", full.cycles);
    }
}
