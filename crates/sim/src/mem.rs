//! Simulated flat memory built from image segments plus a stack.

use om_linker::Image;
use std::fmt;

/// Base of the simulated stack segment.
pub const STACK_BASE: u64 = 0x1_6000_0000;
/// Stack size in bytes.
pub const STACK_SIZE: u64 = 1 << 20;
/// Initial SP (top of stack, 16-aligned).
pub const STACK_TOP: u64 = STACK_BASE + STACK_SIZE;

/// Memory access fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    Unmapped { addr: u64 },
    Misaligned { addr: u64, align: u64 },
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::Unmapped { addr } => write!(f, "access to unmapped address {addr:#x}"),
            Fault::Misaligned { addr, align } => {
                write!(f, "misaligned {align}-byte access at {addr:#x}")
            }
        }
    }
}

struct Region {
    base: u64,
    bytes: Vec<u8>,
}

/// Simulated memory.
pub struct Mem {
    regions: Vec<Region>,
}

impl Mem {
    /// Builds memory from an image's segments plus a fresh stack.
    pub fn from_image(image: &Image) -> Mem {
        let mut regions: Vec<Region> = image
            .segments
            .iter()
            .map(|s| Region { base: s.base, bytes: s.bytes.clone() })
            .collect();
        regions.push(Region { base: STACK_BASE, bytes: vec![0; STACK_SIZE as usize] });
        regions.sort_by_key(|r| r.base);
        Mem { regions }
    }

    fn region(&self, addr: u64) -> Result<(usize, usize), Fault> {
        let idx = self
            .regions
            .partition_point(|r| r.base <= addr)
            .checked_sub(1)
            .ok_or(Fault::Unmapped { addr })?;
        let r = &self.regions[idx];
        let off = (addr - r.base) as usize;
        if off < r.bytes.len() {
            Ok((idx, off))
        } else {
            Err(Fault::Unmapped { addr })
        }
    }

    fn check_align(addr: u64, align: u64) -> Result<(), Fault> {
        if !addr.is_multiple_of(align) {
            Err(Fault::Misaligned { addr, align })
        } else {
            Ok(())
        }
    }

    /// Reads `N` bytes.
    ///
    /// # Errors
    ///
    /// Faults on unmapped or misaligned access.
    pub fn read<const N: usize>(&self, addr: u64) -> Result<[u8; N], Fault> {
        Self::check_align(addr, N as u64)?;
        let (idx, off) = self.region(addr)?;
        let r = &self.regions[idx];
        if off + N > r.bytes.len() {
            return Err(Fault::Unmapped { addr });
        }
        Ok(r.bytes[off..off + N].try_into().unwrap())
    }

    /// Writes `N` bytes.
    ///
    /// # Errors
    ///
    /// Faults on unmapped or misaligned access.
    pub fn write<const N: usize>(&mut self, addr: u64, v: [u8; N]) -> Result<(), Fault> {
        Self::check_align(addr, N as u64)?;
        let (idx, off) = self.region(addr)?;
        let r = &mut self.regions[idx];
        if off + N > r.bytes.len() {
            return Err(Fault::Unmapped { addr });
        }
        r.bytes[off..off + N].copy_from_slice(&v);
        Ok(())
    }

    /// Reads a 64-bit little-endian value.
    pub fn read_u64(&self, addr: u64) -> Result<u64, Fault> {
        Ok(u64::from_le_bytes(self.read(addr)?))
    }

    /// Reads a 32-bit little-endian value.
    pub fn read_u32(&self, addr: u64) -> Result<u32, Fault> {
        Ok(u32::from_le_bytes(self.read(addr)?))
    }

    /// Writes a 64-bit value.
    pub fn write_u64(&mut self, addr: u64, v: u64) -> Result<(), Fault> {
        self.write(addr, v.to_le_bytes())
    }

    /// Writes a 32-bit value.
    pub fn write_u32(&mut self, addr: u64, v: u32) -> Result<(), Fault> {
        self.write(addr, v.to_le_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_linker::{Image, LayoutInfo, Segment};
    use std::collections::HashMap;

    fn mem() -> Mem {
        Mem::from_image(&Image {
            segments: vec![Segment { base: 0x1000, bytes: vec![0; 64] }],
            entry: 0x1000,
            symbols: HashMap::new(),
            layout: LayoutInfo::default(),
        })
    }

    #[test]
    fn read_write_roundtrip() {
        let mut m = mem();
        m.write_u64(0x1008, 0xDEAD_BEEF_0123_4567).unwrap();
        assert_eq!(m.read_u64(0x1008).unwrap(), 0xDEAD_BEEF_0123_4567);
        m.write_u32(0x1010, 0xCAFE_BABE).unwrap();
        assert_eq!(m.read_u32(0x1010).unwrap(), 0xCAFE_BABE);
    }

    #[test]
    fn unmapped_faults() {
        let m = mem();
        assert!(matches!(m.read_u64(0x4000), Err(Fault::Unmapped { .. })));
        assert!(matches!(m.read_u64(0x0), Err(Fault::Unmapped { .. })));
        // Straddling the end of a region faults.
        assert!(matches!(m.read_u64(0x1000 + 64), Err(Fault::Unmapped { .. })));
    }

    #[test]
    fn misaligned_faults() {
        let m = mem();
        assert!(matches!(m.read_u64(0x1001), Err(Fault::Misaligned { .. })));
        assert!(matches!(m.read_u32(0x1002), Err(Fault::Misaligned { .. })));
    }

    #[test]
    fn stack_is_mapped() {
        let mut m = mem();
        m.write_u64(STACK_TOP - 16, 7).unwrap();
        assert_eq!(m.read_u64(STACK_TOP - 16).unwrap(), 7);
    }
}
