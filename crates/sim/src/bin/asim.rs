//! `asim` — run an executable image on the simulated Alpha.
//!
//! ```text
//! asim [--limit N] [--timing] [--profile OUT.json] [--sample N [--sample-check]]
//!      [--reference] [--disasm [SYMBOL]] [--trace-json TRACE.json]
//!      [--trace-summary] IMAGE.exe
//! ```
//!
//! `--trace-json` / `--trace-summary` record the run on the block engine as
//! a chrome://tracing file (or a stdout table): a `sim.run` span with
//! block-cache occupancy, deterministic dispatch/decode counters, and the
//! wall-clock decode vs dispatch split.
//!
//! Prints the program's result (and its `__write_int` output); `--timing`
//! adds the 21064-model cycle statistics; `--profile` additionally collects
//! an execution profile (per-procedure counts, call edges, backward-branch
//! targets) and writes it as JSON for `om --profile-use`; `--disasm` dumps
//! the text segment (or one procedure) instead of running.
//!
//! Runs use the block-cache engine by default; `--reference` falls back to
//! the per-instruction interpreter (the differential oracle). `--sample N`
//! opts into SimPoint-style sampled timing over intervals of N instructions:
//! functional execution stays exact, but cycle-accurate timing runs only in
//! each cluster's representative interval and the total is extrapolated.
//! `--sample-check` additionally runs full timing and reports the measured
//! extrapolation error.

use om_linker::Image;
use om_sim::{
    run_fast, run_profiled_fast, run_sampled, run_timed_fast, run_timed_profiled_fast, Machine,
    NoTiming, Pipeline, ProfileObserver, RunResult, Tee, TimingStats,
};
use om_core::profile::Profile;
use std::process::exit;

/// Maps a program result to a process exit code without collisions: zero
/// stays zero, and any nonzero result (including multiples of 128, whose
/// low 7 bits vanish) exits nonzero.
fn exit_code(result: i64) -> i32 {
    if result == 0 {
        0
    } else {
        ((result & 0x7F) as i32).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::exit_code;

    #[test]
    fn nonzero_results_never_exit_zero() {
        assert_eq!(exit_code(0), 0);
        assert_eq!(exit_code(1), 1);
        assert_eq!(exit_code(113), 113);
        // Multiples of 128 lose their low 7 bits; they must still be nonzero.
        assert_eq!(exit_code(128), 1);
        assert_eq!(exit_code(256), 1);
        assert_eq!(exit_code(-128), 1);
        assert_eq!(exit_code(1 << 32), 1);
    }
}

fn main() {
    let mut limit: u64 = 1_000_000_000;
    let mut timing = false;
    let mut reference = false;
    let mut sample: Option<u64> = None;
    let mut sample_check = false;
    let mut profile_path: Option<String> = None;
    let mut disasm: Option<Option<String>> = None;
    let mut trace_json: Option<String> = None;
    let mut trace_summary = false;
    let mut path: Option<String> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--limit" => {
                i += 1;
                limit = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("asim: --limit needs a number");
                        exit(2);
                    });
            }
            "--timing" => timing = true,
            "--reference" => reference = true,
            "--sample" => {
                i += 1;
                sample = Some(args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("asim: --sample needs an interval size in instructions");
                    exit(2);
                }));
            }
            "--sample-check" => sample_check = true,
            "--profile" => {
                i += 1;
                match args.get(i) {
                    Some(p) if !p.is_empty() && !p.starts_with('-') => {
                        profile_path = Some(p.clone());
                    }
                    _ => {
                        eprintln!("asim: --profile needs an output path");
                        exit(2);
                    }
                }
            }
            "--trace-json" => {
                i += 1;
                match args.get(i) {
                    Some(p) if !p.is_empty() && !p.starts_with('-') => {
                        trace_json = Some(p.clone());
                    }
                    _ => {
                        eprintln!("asim: --trace-json needs an output path");
                        exit(2);
                    }
                }
            }
            "--trace-summary" => trace_summary = true,
            "--disasm" => {
                let next = args.get(i + 1);
                if let Some(sym) = next.filter(|s| !s.starts_with('-') && !s.ends_with(".exe")) {
                    disasm = Some(Some(sym.clone()));
                    i += 1;
                } else {
                    disasm = Some(None);
                }
            }
            f if !f.starts_with('-') => path = Some(f.to_string()),
            other => {
                eprintln!("asim: unknown option {other}");
                exit(2);
            }
        }
        i += 1;
    }
    // `--disasm` takes an optional symbol, so an image path that does not
    // end in `.exe` can be mistaken for one. If no path remained, the
    // "symbol" was really the image path.
    if path.is_none() {
        if let Some(Some(sym)) = disasm.take() {
            path = Some(sym);
            disasm = Some(None);
        }
    }
    let Some(path) = path else {
        eprintln!(
            "usage: asim [--limit N] [--timing] [--profile OUT.json] \
             [--sample N [--sample-check]] [--reference] [--disasm [SYMBOL]] IMAGE.exe"
        );
        exit(2);
    };

    let bytes = std::fs::read(&path).unwrap_or_else(|e| {
        eprintln!("asim: cannot read {path}: {e}");
        exit(1);
    });
    let image = Image::from_bytes(&bytes).unwrap_or_else(|e| {
        eprintln!("asim: {path}: {e}");
        exit(1);
    });

    if let Some(which) = disasm {
        let text = &image.segments[0];
        match which {
            None => print!("{}", om_alpha::disasm::section(text.base, &text.bytes)),
            Some(sym) => {
                let Some(&addr) = image.symbols.get(&sym) else {
                    eprintln!("asim: no symbol `{sym}`");
                    exit(1);
                };
                if !text.contains(addr) {
                    eprintln!("asim: `{sym}` ({addr:#x}) is not in the text segment");
                    exit(1);
                }
                // Dump until the next symbol (or 64 instructions).
                let mut end = addr + 256;
                for &a in image.symbols.values() {
                    if a > addr && a < end {
                        end = a;
                    }
                }
                let off = (addr - text.base) as usize;
                let len = ((end - addr) as usize).min(text.bytes.len() - off);
                print!("{}", om_alpha::disasm::section(addr, &text.bytes[off..off + len]));
            }
        }
        return;
    }

    let trace = (trace_json.is_some() || trace_summary).then(om_obs::Trace::new);
    let _guard = trace.as_ref().map(om_obs::Trace::install);
    let dump_trace = |t: &Option<om_obs::Trace>| {
        let Some(t) = t else { return };
        if let Some(out) = &trace_json {
            if let Err(e) = std::fs::write(out, t.chrome_json("asim")) {
                eprintln!("asim: cannot write {out}: {e}");
                exit(1);
            }
            eprintln!("asim: wrote trace {out}");
        }
        if trace_summary {
            print!("{}", t.summary());
        }
    };

    // Sampled timing is its own mode: exact functional execution with
    // interval-clustered, extrapolated cycle accounting.
    if let Some(interval) = sample {
        let (r, rep) = run_sampled(&image, limit, interval).unwrap_or_else(|e| {
            eprintln!("asim: {e}");
            exit(1);
        });
        dump_trace(&trace);
        for v in &r.output {
            println!("{v}");
        }
        eprintln!(
            "asim: result {} | sampled timing: {} of {} intervals (interval {} insts), \
             {} of {} insts timed",
            r.result, rep.clusters, rep.intervals, rep.interval, rep.sampled_insts, rep.total_insts
        );
        eprintln!("asim: estimated {} cycles", rep.estimated_cycles);
        if sample_check {
            let (_, t) = run_timed_fast(&image, limit).unwrap_or_else(|e| {
                eprintln!("asim: {e}");
                exit(1);
            });
            let err = (rep.estimated_cycles as f64 - t.cycles as f64).abs()
                / t.cycles.max(1) as f64
                * 100.0;
            eprintln!("asim: exact {} cycles, sampling error {err:.3}%", t.cycles);
        }
        exit(exit_code(r.result));
    }

    // Default: the block-cache engine, with the per-instruction reference
    // interpreter behind `--reference`. Either way one run feeds every
    // requested observer, so the flags compose without re-executing.
    let run: Result<(RunResult, Option<TimingStats>, Option<Profile>), om_sim::ExecError> =
        if reference {
            let mut pipe = Pipeline::default();
            let mut prof = profile_path.as_ref().map(|_| ProfileObserver::new(&image));
            (|| {
                let mut machine = Machine::load(&image)?;
                let r = match (timing, prof.as_mut()) {
                    (false, None) => machine.run(limit, &mut NoTiming),
                    (true, None) => machine.run(limit, &mut pipe),
                    (false, Some(p)) => machine.run(limit, p),
                    (true, Some(p)) => machine.run(limit, &mut Tee { a: &mut pipe, b: p }),
                }?;
                Ok((
                    r,
                    timing.then(|| pipe.stats()),
                    prof.take().map(ProfileObserver::finish),
                ))
            })()
        } else {
            match (timing, profile_path.is_some()) {
                (false, false) => run_fast(&image, limit).map(|r| (r, None, None)),
                (true, false) => run_timed_fast(&image, limit).map(|(r, t)| (r, Some(t), None)),
                (false, true) => {
                    run_profiled_fast(&image, limit).map(|(r, p)| (r, None, Some(p)))
                }
                (true, true) => run_timed_profiled_fast(&image, limit)
                    .map(|(r, t, p)| (r, Some(t), Some(p))),
            }
        };
    let (r, stats, profile) = match run {
        Ok(v) => v,
        Err(e) => {
            eprintln!("asim: {e}");
            exit(1);
        }
    };
    dump_trace(&trace);

    if let (Some(out), Some(profile)) = (&profile_path, &profile) {
        if let Err(e) = std::fs::write(out, profile.to_json()) {
            eprintln!("asim: cannot write {out}: {e}");
            exit(1);
        }
        eprintln!(
            "asim: wrote profile {out} ({} procs, {} insts)",
            profile.procs.len(),
            profile.total_insts
        );
    }

    for v in &r.output {
        println!("{v}");
    }
    if let Some(t) = stats {
        eprintln!(
            "asim: result {} | {} insts, {} cycles ({:.2} IPC), {} dual-issued, {} nops",
            r.result,
            t.insts,
            t.cycles,
            t.insts as f64 / t.cycles.max(1) as f64,
            t.dual_issued,
            t.nops
        );
        eprintln!(
            "asim: icache {} misses | dcache {} misses",
            t.icache_misses, t.dcache_misses
        );
    } else {
        eprintln!("asim: result {} ({} instructions)", r.result, r.insts);
    }
    exit(exit_code(r.result));
}
