//! Execution profiling: a cheap [`Observer`] that attributes retired
//! instructions, call edges, and backward-branch-target executions to the
//! procedures of a linked image, and converts the counts into an
//! [`om_core::Profile`] for profile-guided relinking.
//!
//! Attribution works from the image's symbol map: every text symbol opens a
//! procedure range (local procedures are already qualified `"name.module"`
//! by the linker, so range names equal profile keys). Transfer targets are
//! not part of [`Retired`] — the observer instead remembers the previously
//! retired instruction, and when it was a taken transfer, the *current* pc
//! is the target: a call edge if the transfer was a BSR/JSR, a
//! backward-branch-target execution if it was an intra-procedure branch that
//! jumped backwards.
//!
//! Backward-branch targets are identified *statically* at construction by
//! scanning each procedure's code (every `Br`-format instruction except BSR
//! whose target lies at or before it, within the same procedure), so the
//! emitted profile knows the full target list — including targets that
//! never ran — and can number them by rank in code order, the key the
//! profile format uses across relinks.
//!
//! The range map and counter store are split out ([`ProcMap`],
//! [`ProfCounts`]) so the block engine's block-granularity profiler
//! (`om_sim::block`) shares the exact attribution rules and produces
//! byte-identical profiles.

use crate::exec::{Observer, Retired};
use om_alpha::{decode, BrOp, Inst, JmpOp};
use om_core::profile::{CallEdge, ProcProfile, Profile};
use om_linker::Image;
use std::collections::HashMap;

/// Procedure ranges of a linked image, sorted by start address, plus each
/// range's statically discovered backward-branch targets (sorted by
/// address, so rank lookup is a binary search instead of a `HashMap` probe).
pub(crate) struct ProcMap {
    pub(crate) starts: Vec<u64>,
    pub(crate) ends: Vec<u64>,
    pub(crate) names: Vec<String>,
    /// Per procedure: backward-branch targets in code order (index = rank).
    pub(crate) targets: Vec<Vec<u64>>,
}

impl ProcMap {
    /// Extracts procedure ranges from the symbol map and statically scans
    /// each for backward-branch targets.
    pub(crate) fn new(image: &Image) -> ProcMap {
        let text = &image.segments[0];
        let text_end = text.base + text.bytes.len() as u64;
        let mut syms: Vec<(u64, String)> = image
            .symbols
            .iter()
            .filter(|&(_, &addr)| addr >= text.base && addr < text_end)
            .map(|(name, &addr)| (addr, name.clone()))
            .collect();
        // Deterministic ranges: sort by (address, name), one range per
        // address (aliased symbols collapse to the first name).
        syms.sort();
        syms.dedup_by_key(|(addr, _)| *addr);
        if syms.first().map(|&(a, _)| a) != Some(text.base) {
            // Code below the first symbol (or a symbol-less image) still
            // needs an owner.
            syms.insert(0, (text.base, "__text".to_string()));
        }

        let starts: Vec<u64> = syms.iter().map(|&(a, _)| a).collect();
        let names: Vec<String> = syms.into_iter().map(|(_, n)| n).collect();
        let n = starts.len();
        let ends: Vec<u64> =
            (0..n).map(|i| starts.get(i + 1).copied().unwrap_or(text_end)).collect();

        let targets = (0..n)
            .map(|i| scan_backward_targets(text.base, &text.bytes, starts[i], ends[i]))
            .collect();

        ProcMap { starts, ends, names, targets }
    }

    pub(crate) fn len(&self) -> usize {
        self.starts.len()
    }

    /// Locates the range covering `pc`, preferring the cached index `cur`
    /// (the current fetch stream) before binary-searching.
    pub(crate) fn locate_from(&self, cur: usize, pc: u64) -> usize {
        if pc >= self.starts[cur] && pc < self.ends[cur] {
            return cur;
        }
        self.starts.partition_point(|&s| s <= pc).saturating_sub(1)
    }

    /// Rank of `pc` among range `idx`'s backward-branch targets.
    pub(crate) fn rank(&self, idx: usize, pc: u64) -> Option<usize> {
        self.targets[idx].binary_search(&pc).ok()
    }
}

/// The raw profile counters, attribution rules included — shared verbatim
/// by the per-instruction observer and the block-granularity profiler.
pub(crate) struct ProfCounts {
    /// Per procedure: execution count per backward-target rank.
    back_counts: Vec<Vec<u64>>,
    insts: Vec<u64>,
    calls: Vec<u64>,
    /// `(caller range, callee range) → count`.
    edges: HashMap<(usize, usize), u64>,
    total: u64,
}

impl ProfCounts {
    pub(crate) fn new(map: &ProcMap) -> ProfCounts {
        ProfCounts {
            back_counts: map.targets.iter().map(|t| vec![0u64; t.len()]).collect(),
            insts: vec![0; map.len()],
            calls: vec![0; map.len()],
            edges: HashMap::new(),
            total: 0,
        }
    }

    pub(crate) fn add_insts(&mut self, idx: usize, n: u64) {
        self.insts[idx] = self.insts[idx].saturating_add(n);
        self.total = self.total.saturating_add(n);
    }

    /// Attributes the arrival of a taken transfer `prev = (pc, inst, range)`
    /// at target `pc` whose range is `idx`: a call edge for BSR/JSR, a
    /// backward-target execution for an intra-procedure backward branch.
    pub(crate) fn arrive(
        &mut self,
        map: &ProcMap,
        prev: (u64, Inst, usize),
        pc: u64,
        idx: usize,
    ) {
        let (ppc, pinst, pidx) = prev;
        let is_call = matches!(pinst, Inst::Br { op: BrOp::Bsr, .. })
            || matches!(pinst, Inst::Jmp { op: JmpOp::Jsr, .. });
        if is_call {
            self.calls[idx] = self.calls[idx].saturating_add(1);
            *self.edges.entry((pidx, idx)).or_insert(0) += 1;
        } else if matches!(pinst, Inst::Br { .. }) && pidx == idx && pc <= ppc {
            if let Some(rank) = map.rank(idx, pc) {
                self.back_counts[idx][rank] = self.back_counts[idx][rank].saturating_add(1);
            }
        }
    }

    /// Converts the accumulated counts into a normalized [`Profile`].
    pub(crate) fn finish(self, map: &ProcMap) -> Profile {
        let procs = map
            .names
            .iter()
            .enumerate()
            .map(|(i, name)| ProcProfile {
                name: name.clone(),
                calls: self.calls[i],
                insts: self.insts[i],
                back_targets: self.back_counts[i].clone(),
            })
            .collect();
        let edges = self
            .edges
            .iter()
            .map(|(&(from, to), &count)| CallEdge {
                caller: map.names[from].clone(),
                callee: map.names[to].clone(),
                count,
            })
            .collect();
        let mut profile = Profile { total_insts: self.total, procs, edges };
        profile.normalize();
        profile
    }
}

/// The profiling observer. Construct with [`ProfileObserver::new`], pass to
/// [`crate::Machine::run`], then call [`ProfileObserver::finish`].
pub struct ProfileObserver {
    map: ProcMap,
    counts: ProfCounts,
    /// Cached range index of the current fetch stream.
    cur: usize,
    /// The last retired instruction when it was a taken transfer:
    /// `(pc, inst, range index)`.
    prev_taken: Option<(u64, Inst, usize)>,
}

impl ProfileObserver {
    /// Builds the observer for `image`: extracts procedure ranges from the
    /// symbol map and statically scans each for backward-branch targets.
    pub fn new(image: &Image) -> ProfileObserver {
        let map = ProcMap::new(image);
        let counts = ProfCounts::new(&map);
        ProfileObserver { map, counts, cur: 0, prev_taken: None }
    }

    /// Converts the accumulated counts into a normalized [`Profile`].
    pub fn finish(self) -> Profile {
        self.counts.finish(&self.map)
    }
}

/// Statically finds the backward-branch targets of the code in
/// `[start, end)`: targets of non-BSR `Br`-format instructions that lie at
/// or before the branch, within the same range. Returned sorted (code
/// order), deduplicated — index = rank.
fn scan_backward_targets(text_base: u64, bytes: &[u8], start: u64, end: u64) -> Vec<u64> {
    let mut targets = Vec::new();
    let lo = (start - text_base) as usize;
    let hi = (end - text_base) as usize;
    for (k, w) in bytes[lo..hi].chunks_exact(4).enumerate() {
        let pc = start + 4 * k as u64;
        let word = u32::from_le_bytes(w.try_into().expect("4-byte chunk"));
        if let Ok(Inst::Br { op, disp, .. }) = decode(word) {
            if op != BrOp::Bsr {
                let target = pc.wrapping_add(4).wrapping_add((disp as i64 * 4) as u64);
                if target <= pc && target >= start {
                    targets.push(target);
                }
            }
        }
    }
    targets.sort_unstable();
    targets.dedup();
    targets
}

impl Observer for ProfileObserver {
    fn retire(&mut self, r: &Retired) {
        let idx = self.map.locate_from(self.cur, r.pc);
        self.cur = idx;
        self.counts.add_insts(idx, 1);

        if let Some(prev) = self.prev_taken.take() {
            // The previous instruction transferred control here: r.pc is the
            // target the Retired record itself cannot carry.
            self.counts.arrive(&self.map, prev, r.pc, idx);
        }
        if r.taken {
            self.prev_taken = Some((r.pc, r.inst, idx));
        }
    }
}

/// Fans one retirement stream out to two observers (e.g. timing + profile
/// in a single simulated run, as `asim --timing --profile` does).
pub struct Tee<'a> {
    pub a: &'a mut dyn Observer,
    pub b: &'a mut dyn Observer,
}

impl Observer for Tee<'_> {
    fn retire(&mut self, r: &Retired) {
        self.a.retire(r);
        self.b.retire(r);
    }
}
