//! Functional execution of linked images.
//!
//! The executor is strict: unmapped or misaligned accesses, undecodable
//! instruction words, and runaway loops are all hard errors, so any OM
//! transformation that corrupts code is caught immediately rather than
//! producing a wrong number.

use crate::mem::{Fault, Mem, STACK_TOP};
use om_alpha::{decode, BrOp, FOprOp, Inst, MemOp, Operand, OprOp, PalOp, Reg};
use om_linker::Image;
use std::fmt;

/// Execution errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    Fault(Fault),
    BadInstruction { pc: u64, word: u32 },
    BadPc { pc: u64 },
    StepLimit { limit: u64 },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Fault(fault) => write!(f, "{fault}"),
            ExecError::BadInstruction { pc, word } => {
                write!(f, "undecodable word {word:#010x} at pc {pc:#x}")
            }
            ExecError::BadPc { pc } => write!(f, "jump outside text: {pc:#x}"),
            ExecError::StepLimit { limit } => write!(f, "exceeded {limit} instructions"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<Fault> for ExecError {
    fn from(f: Fault) -> Self {
        ExecError::Fault(f)
    }
}

/// One retired instruction, as reported to a timing observer.
#[derive(Debug, Clone, Copy)]
pub struct Retired {
    pub pc: u64,
    pub inst: Inst,
    /// Effective address for loads/stores.
    pub ea: Option<u64>,
    /// True when a branch/jump actually transferred control.
    pub taken: bool,
}

/// Observer invoked for every retired instruction (the timing model).
pub trait Observer {
    fn retire(&mut self, r: &Retired);
}

/// A no-op observer for purely functional runs.
pub struct NoTiming;

impl Observer for NoTiming {
    fn retire(&mut self, _: &Retired) {}
}

/// Machine state.
pub struct Machine {
    pub mem: Mem,
    /// Integer registers; index 31 is forced to zero on read.
    pub ir: [u64; 32],
    /// FP registers (bit patterns of f64).
    pub fr: [u64; 32],
    pub pc: u64,
    pub(crate) text_base: u64,
    /// Pre-decoded text; `Err` holds undecodable words (inter-module
    /// padding), fatal only if fetched.
    pub(crate) text: Vec<Result<Inst, u32>>,
    /// Debug output from `WriteInt`.
    pub output: Vec<i64>,
}

/// Architectural outcome of one executed instruction (shared between the
/// reference interpreter loop and the block engine).
pub(crate) struct Step {
    /// Effective address for loads/stores.
    pub(crate) ea: Option<u64>,
    /// True when a branch/jump actually transferred control.
    pub(crate) taken: bool,
    /// Next pc (unused when `halted`).
    pub(crate) next: u64,
    /// True when the instruction was HALT.
    pub(crate) halted: bool,
}

/// Result of a completed run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// `v0` at HALT: the program's checksum.
    pub result: i64,
    /// Instructions retired.
    pub insts: u64,
    /// Values printed via `__write_int`.
    pub output: Vec<i64>,
}

/// How a run diverged from a reference checksum — the runtime oracle's
/// verdict on a (possibly corrupted) image, classified so the mutation
/// harness can attribute kills.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Divergence {
    /// Ran to HALT and reproduced the reference checksum.
    Agree,
    /// Ran to HALT with a different checksum.
    Checksum { got: i64, want: i64 },
    /// Faulted: memory fault, undecodable word, or a jump outside text.
    Crash(String),
    /// Exceeded the instruction budget (runaway or non-terminating).
    Hang { limit: u64 },
}

impl Divergence {
    /// Classifies a run against the reference checksum `want`.
    pub fn classify(run: &Result<RunResult, ExecError>, want: i64) -> Divergence {
        match run {
            Ok(r) if r.result == want => Divergence::Agree,
            Ok(r) => Divergence::Checksum { got: r.result, want },
            Err(ExecError::StepLimit { limit }) => Divergence::Hang { limit: *limit },
            Err(e) => Divergence::Crash(e.to_string()),
        }
    }

    /// True unless the run agreed with the reference.
    pub fn diverged(&self) -> bool {
        !matches!(self, Divergence::Agree)
    }
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Divergence::Agree => write!(f, "agree"),
            Divergence::Checksum { got, want } => write!(f, "checksum {got} != {want}"),
            Divergence::Crash(e) => write!(f, "crash: {e}"),
            Divergence::Hang { limit } => write!(f, "hang: no HALT within {limit} insts"),
        }
    }
}

impl Machine {
    /// Loads an image, pre-decoding its text segment. Undecodable words
    /// (inter-module alignment padding) become lazy faults that trigger only
    /// if control ever reaches them.
    ///
    /// # Errors
    ///
    /// Infallible today; the `Result` reserves load-time validation.
    pub fn load(image: &Image) -> Result<Machine, ExecError> {
        let text_seg = &image.segments[0];
        let mut text = Vec::with_capacity(text_seg.bytes.len() / 4);
        for w in text_seg.bytes.chunks_exact(4) {
            let word = u32::from_le_bytes(w.try_into().unwrap());
            text.push(decode(word).map_err(|_| word));
        }
        let mut m = Machine {
            mem: Mem::from_image(image),
            ir: [0; 32],
            fr: [0; 32],
            pc: image.entry,
            text_base: text_seg.base,
            text,
            output: Vec::new(),
        };
        // Boot protocol: PV holds the entry address (so the entry GPDISP
        // works), SP is the stack top, RA points nowhere harmless.
        m.ir[Reg::PV.number() as usize] = image.entry;
        m.ir[Reg::SP.number() as usize] = STACK_TOP - 64;
        Ok(m)
    }

    pub(crate) fn geti(&self, r: Reg) -> u64 {
        if r.is_zero() {
            0
        } else {
            self.ir[r.number() as usize]
        }
    }

    fn seti(&mut self, r: Reg, v: u64) {
        if !r.is_zero() {
            self.ir[r.number() as usize] = v;
        }
    }

    fn getf(&self, r: Reg) -> f64 {
        if r.is_zero() {
            0.0
        } else {
            f64::from_bits(self.fr[r.number() as usize])
        }
    }

    fn setf(&mut self, r: Reg, v: f64) {
        if !r.is_zero() {
            self.fr[r.number() as usize] = v.to_bits();
        }
    }

    fn fetch(&self, pc: u64) -> Result<Inst, ExecError> {
        if pc < self.text_base || !pc.is_multiple_of(4) {
            return Err(ExecError::BadPc { pc });
        }
        let idx = ((pc - self.text_base) / 4) as usize;
        match self.text.get(idx) {
            Some(Ok(inst)) => Ok(*inst),
            Some(Err(word)) => Err(ExecError::BadInstruction { pc, word: *word }),
            None => Err(ExecError::BadPc { pc }),
        }
    }

    /// Runs until HALT or `limit` instructions, reporting each retired
    /// instruction to `obs`.
    ///
    /// # Errors
    ///
    /// Any [`ExecError`]; well-linked programs only ever hit `StepLimit`.
    pub fn run(&mut self, limit: u64, obs: &mut dyn Observer) -> Result<RunResult, ExecError> {
        let mut insts: u64 = 0;
        loop {
            if insts >= limit {
                return Err(ExecError::StepLimit { limit });
            }
            let pc = self.pc;
            let inst = self.fetch(pc)?;
            insts += 1;
            let s = self.exec_one(pc, inst)?;
            if s.halted {
                obs.retire(&Retired { pc, inst, ea: None, taken: false });
                return Ok(RunResult {
                    result: self.geti(Reg::V0) as i64,
                    insts,
                    output: std::mem::take(&mut self.output),
                });
            }
            obs.retire(&Retired { pc, inst, ea: s.ea, taken: s.taken });
            self.pc = s.next;
        }
    }

    /// Executes one instruction architecturally (registers, memory, output)
    /// without touching `self.pc` or any observer — the single source of
    /// instruction semantics for both `run` and the block engine.
    #[inline]
    pub(crate) fn exec_one(&mut self, pc: u64, inst: Inst) -> Result<Step, ExecError> {
        let mut ea: Option<u64> = None;
        let mut taken = false;
        let mut next = pc.wrapping_add(4);

        match inst {
                Inst::Mem { op, ra, rb, disp } => {
                    let base = self.geti(rb);
                    let addr = base.wrapping_add(disp as i64 as u64);
                    match op {
                        MemOp::Lda => self.seti(ra, addr),
                        MemOp::Ldah => {
                            self.seti(ra, base.wrapping_add(((disp as i64) << 16) as u64))
                        }
                        MemOp::Ldl => {
                            ea = Some(addr);
                            let v = self.mem.read_u32(addr)? as i32 as i64 as u64;
                            self.seti(ra, v);
                        }
                        MemOp::Ldq => {
                            ea = Some(addr);
                            let v = self.mem.read_u64(addr)?;
                            self.seti(ra, v);
                        }
                        MemOp::LdqU => {
                            // Used only as UNOP (ra = r31); implement the
                            // aligned-quadword semantics anyway.
                            if !ra.is_zero() {
                                ea = Some(addr & !7);
                                let v = self.mem.read_u64(addr & !7)?;
                                self.seti(ra, v);
                            }
                        }
                        MemOp::Stl => {
                            ea = Some(addr);
                            self.mem.write_u32(addr, self.geti(ra) as u32)?;
                        }
                        MemOp::Stq => {
                            ea = Some(addr);
                            self.mem.write_u64(addr, self.geti(ra))?;
                        }
                        MemOp::Ldt => {
                            ea = Some(addr);
                            let v = self.mem.read_u64(addr)?;
                            if !ra.is_zero() {
                                self.fr[ra.number() as usize] = v;
                            }
                        }
                        MemOp::Stt => {
                            ea = Some(addr);
                            let v = if ra.is_zero() { 0 } else { self.fr[ra.number() as usize] };
                            self.mem.write_u64(addr, v)?;
                        }
                    }
                }
                Inst::Br { op, ra, disp } => {
                    let target = pc.wrapping_add(4).wrapping_add((disp as i64 * 4) as u64);
                    let cond = match op {
                        BrOp::Br | BrOp::Bsr => true,
                        BrOp::Beq => self.geti(ra) == 0,
                        BrOp::Bne => self.geti(ra) != 0,
                        BrOp::Blt => (self.geti(ra) as i64) < 0,
                        BrOp::Ble => (self.geti(ra) as i64) <= 0,
                        BrOp::Bgt => (self.geti(ra) as i64) > 0,
                        BrOp::Bge => (self.geti(ra) as i64) >= 0,
                        BrOp::Blbc => self.geti(ra) & 1 == 0,
                        BrOp::Blbs => self.geti(ra) & 1 == 1,
                        BrOp::Fbeq => self.getf(ra) == 0.0,
                        BrOp::Fbne => self.getf(ra) != 0.0,
                        BrOp::Fblt => self.getf(ra) < 0.0,
                        BrOp::Fbge => self.getf(ra) >= 0.0,
                    };
                    if op.is_unconditional() {
                        self.seti(ra, pc.wrapping_add(4));
                    }
                    if cond {
                        next = target;
                        taken = true;
                    }
                }
                Inst::Jmp { op, ra, rb, .. } => {
                    let target = self.geti(rb) & !3;
                    self.seti(ra, pc.wrapping_add(4));
                    let _ = op; // JMP/JSR/RET differ only in prediction hints
                    next = target;
                    taken = true;
                }
                Inst::Opr { op, ra, rb, rc } => {
                    let a = self.geti(ra) as i64;
                    let b = match rb {
                        Operand::Reg(r) => self.geti(r) as i64,
                        Operand::Lit(l) => l as i64,
                    };
                    let v: i64 = match op {
                        OprOp::Addq => a.wrapping_add(b),
                        OprOp::Subq => a.wrapping_sub(b),
                        OprOp::Addl => (a as i32).wrapping_add(b as i32) as i64,
                        OprOp::Subl => (a as i32).wrapping_sub(b as i32) as i64,
                        OprOp::Mulq => a.wrapping_mul(b),
                        OprOp::Mull => (a as i32).wrapping_mul(b as i32) as i64,
                        OprOp::S4Addq => (a << 2).wrapping_add(b),
                        OprOp::S8Addq => (a << 3).wrapping_add(b),
                        OprOp::And => a & b,
                        OprOp::Bic => a & !b,
                        OprOp::Bis => a | b,
                        OprOp::Ornot => a | !b,
                        OprOp::Xor => a ^ b,
                        OprOp::Eqv => a ^ !b,
                        OprOp::Sll => a.wrapping_shl((b & 63) as u32),
                        OprOp::Srl => ((a as u64).wrapping_shr((b & 63) as u32)) as i64,
                        OprOp::Sra => a.wrapping_shr((b & 63) as u32),
                        OprOp::Cmpeq => (a == b) as i64,
                        OprOp::Cmplt => (a < b) as i64,
                        OprOp::Cmple => (a <= b) as i64,
                        OprOp::Cmpult => ((a as u64) < b as u64) as i64,
                        OprOp::Cmpule => ((a as u64) <= b as u64) as i64,
                        OprOp::Cmoveq | OprOp::Cmovne | OprOp::Cmovlt | OprOp::Cmovge => {
                            let take = match op {
                                OprOp::Cmoveq => a == 0,
                                OprOp::Cmovne => a != 0,
                                OprOp::Cmovlt => a < 0,
                                OprOp::Cmovge => a >= 0,
                                _ => unreachable!(),
                            };
                            if take {
                                b
                            } else {
                                self.geti(rc) as i64
                            }
                        }
                    };
                    self.seti(rc, v as u64);
                }
                Inst::FOpr { op, fa, fb, fc } => {
                    let a = self.getf(fa);
                    let b = self.getf(fb);
                    match op {
                        FOprOp::Addt => self.setf(fc, a + b),
                        FOprOp::Subt => self.setf(fc, a - b),
                        FOprOp::Mult => self.setf(fc, a * b),
                        FOprOp::Divt => self.setf(fc, a / b),
                        // Comparisons write 2.0 for true, +0.0 for false.
                        FOprOp::Cmpteq => self.setf(fc, if a == b { 2.0 } else { 0.0 }),
                        FOprOp::Cmptlt => self.setf(fc, if a < b { 2.0 } else { 0.0 }),
                        FOprOp::Cmptle => self.setf(fc, if a <= b { 2.0 } else { 0.0 }),
                        FOprOp::Cvtqt => {
                            // Source is the integer bit pattern in fb.
                            let bits = if fb.is_zero() { 0 } else { self.fr[fb.number() as usize] };
                            self.setf(fc, bits as i64 as f64);
                        }
                        FOprOp::Cvttq => {
                            // Truncate toward zero, saturating (matches the
                            // reference interpreter's `as i64`).
                            let v = b as i64;
                            if !fc.is_zero() {
                                self.fr[fc.number() as usize] = v as u64;
                            }
                        }
                        FOprOp::Cpys => {
                            let v = f64::from_bits(
                                (a.to_bits() & 0x8000_0000_0000_0000)
                                    | (b.to_bits() & 0x7FFF_FFFF_FFFF_FFFF),
                            );
                            self.setf(fc, v);
                        }
                        FOprOp::Cpysn => {
                            let v = f64::from_bits(
                                ((!a.to_bits()) & 0x8000_0000_0000_0000)
                                    | (b.to_bits() & 0x7FFF_FFFF_FFFF_FFFF),
                            );
                            self.setf(fc, v);
                        }
                    }
                }
                Inst::Pal { op } => match op {
                    PalOp::Halt => {
                        return Ok(Step { ea: None, taken: false, next: pc, halted: true });
                    }
                    PalOp::WriteInt => {
                        let v = self.geti(Reg::A0) as i64;
                        self.output.push(v);
                    }
                },
            }

        Ok(Step { ea, taken, next, halted: false })
    }
}

/// Convenience: load and run an image functionally.
///
/// # Errors
///
/// See [`Machine::run`].
pub fn run_image(image: &Image, limit: u64) -> Result<RunResult, ExecError> {
    Machine::load(image)?.run(limit, &mut NoTiming)
}

/// Sorted address→symbol range index: one sort at construction, then every
/// lookup is a binary search. Aliased addresses collapse deterministically
/// to the lexicographically first name (the linear `HashMap` scan this
/// replaces picked an arbitrary alias).
pub struct SymbolIndex {
    addrs: Vec<u64>,
    names: Vec<String>,
}

impl SymbolIndex {
    /// Builds the index from an image's symbol map.
    pub fn new(image: &Image) -> SymbolIndex {
        let mut syms: Vec<(u64, &String)> =
            image.symbols.iter().map(|(name, &addr)| (addr, name)).collect();
        syms.sort();
        syms.dedup_by_key(|&mut (addr, _)| addr);
        SymbolIndex {
            addrs: syms.iter().map(|&(addr, _)| addr).collect(),
            names: syms.into_iter().map(|(_, name)| name.clone()).collect(),
        }
    }

    /// Returns the covering symbol and the offset of `pc` into it.
    pub fn locate(&self, pc: u64) -> Option<(&str, u64)> {
        let i = self.addrs.partition_point(|&a| a <= pc).checked_sub(1)?;
        Some((&self.names[i], pc - self.addrs[i]))
    }
}

/// Finds the symbol whose address covers `pc` (for diagnostics).
pub fn symbolize(image: &Image, pc: u64) -> Option<String> {
    SymbolIndex::new(image).locate(pc).map(|(name, off)| format!("{name}+{off:#x}"))
}
