//! Alpha-subset simulator: the reproduction's stand-in for the paper's
//! DECstation 3000 Model 400.
//!
//! Functional execution is exact and strict (faults on anything ill-formed);
//! timing is a 21064-class model — dual issue with quadword alignment,
//! 3-cycle loads, direct-mapped I/D caches — which is what gives OM's
//! transformations their dynamic effect.
//!
//! # Example
//!
//! ```
//! use om_codegen::{compile_source, crt0, CompileOpts};
//! use om_linker::Linker;
//! use om_sim::run_timed;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let obj = compile_source(
//!     "m",
//!     "int main() { int s = 0; int i = 0;
//!        for (i = 1; i <= 10; i = i + 1) { s = s + i; }
//!        return s; }",
//!     &CompileOpts::o2(),
//! )?;
//! let (image, _) = Linker::new().object(crt0::module()?).object(obj).link()?;
//! let (result, timing) = run_timed(&image, 1_000_000)?;
//! assert_eq!(result.result, 55);
//! assert!(timing.cycles > 0);
//! # Ok(())
//! # }
//! ```

pub mod block;
pub mod exec;
pub mod mem;
pub mod profile;
pub mod timing;

pub use block::{
    run_covered_fast, run_fast, run_profiled_fast, run_sampled, run_timed_fast,
    run_timed_profiled_fast, SampleReport,
};
pub use exec::{
    run_image, symbolize, Divergence, ExecError, Machine, NoTiming, Observer, Retired, RunResult,
    SymbolIndex,
};
pub use mem::{Fault, Mem, STACK_BASE, STACK_SIZE, STACK_TOP};
pub use profile::{ProfileObserver, Tee};
pub use timing::{Cache, Pipeline, TimingStats};

use om_core::profile::Profile;
use om_linker::Image;

/// Runs `image` with the default 21064-class timing model.
///
/// # Errors
///
/// Returns [`ExecError`] on faults or when `limit` instructions retire
/// without reaching HALT.
pub fn run_timed(image: &Image, limit: u64) -> Result<(RunResult, TimingStats), ExecError> {
    let mut pipe = Pipeline::default();
    let mut machine = Machine::load(image)?;
    let result = machine.run(limit, &mut pipe)?;
    Ok((result, pipe.stats()))
}

/// Runs `image` functionally while collecting an execution [`Profile`]
/// (per-procedure instruction and call counts, call edges, backward-branch
/// target executions) for profile-guided relinking.
///
/// # Errors
///
/// Returns [`ExecError`] on faults or when `limit` instructions retire
/// without reaching HALT.
pub fn run_profiled(image: &Image, limit: u64) -> Result<(RunResult, Profile), ExecError> {
    let mut obs = ProfileObserver::new(image);
    let mut machine = Machine::load(image)?;
    let result = machine.run(limit, &mut obs)?;
    Ok((result, obs.finish()))
}
