//! Property tests: every constructible instruction survives an
//! encode→decode round trip, and decoding arbitrary words never panics.
//!
//! Implemented as seeded exhaustive/randomized loops over `om_prng` (the
//! workspace builds offline, so no proptest); the case count is high enough
//! to cover every opcode many times per run, and failures print the seed
//! state via the instruction itself.

use om_alpha::inst::{BrOp, FOprOp, Inst, JmpOp, MemOp, Operand, OprOp, PalOp};
use om_alpha::reg::Reg;
use om_alpha::{decode, encode};
use om_prng::StdRng;

const MEM_OPS: [MemOp; 9] = [
    MemOp::Lda,
    MemOp::Ldah,
    MemOp::Ldl,
    MemOp::Ldq,
    MemOp::LdqU,
    MemOp::Stl,
    MemOp::Stq,
    MemOp::Ldt,
    MemOp::Stt,
];

const BR_OPS: [BrOp; 14] = [
    BrOp::Br,
    BrOp::Bsr,
    BrOp::Beq,
    BrOp::Bne,
    BrOp::Blt,
    BrOp::Ble,
    BrOp::Bgt,
    BrOp::Bge,
    BrOp::Blbc,
    BrOp::Blbs,
    BrOp::Fbeq,
    BrOp::Fbne,
    BrOp::Fblt,
    BrOp::Fbge,
];

const OPR_OPS: [OprOp; 26] = [
    OprOp::Addq,
    OprOp::Subq,
    OprOp::Addl,
    OprOp::Subl,
    OprOp::Mulq,
    OprOp::Mull,
    OprOp::S4Addq,
    OprOp::S8Addq,
    OprOp::And,
    OprOp::Bic,
    OprOp::Bis,
    OprOp::Ornot,
    OprOp::Xor,
    OprOp::Eqv,
    OprOp::Sll,
    OprOp::Srl,
    OprOp::Sra,
    OprOp::Cmpeq,
    OprOp::Cmplt,
    OprOp::Cmple,
    OprOp::Cmpult,
    OprOp::Cmpule,
    OprOp::Cmoveq,
    OprOp::Cmovne,
    OprOp::Cmovlt,
    OprOp::Cmovge,
];

const FOPR_OPS: [FOprOp; 11] = [
    FOprOp::Addt,
    FOprOp::Subt,
    FOprOp::Mult,
    FOprOp::Divt,
    FOprOp::Cmpteq,
    FOprOp::Cmptlt,
    FOprOp::Cmptle,
    FOprOp::Cvtqt,
    FOprOp::Cvttq,
    FOprOp::Cpys,
    FOprOp::Cpysn,
];

fn any_reg(rng: &mut StdRng) -> Reg {
    Reg::new(rng.gen_range(0u8..32))
}

fn any_inst(rng: &mut StdRng) -> Inst {
    match rng.gen_range(0..6u32) {
        0 => Inst::Mem {
            op: MEM_OPS[rng.gen_range(0..MEM_OPS.len())],
            ra: any_reg(rng),
            rb: any_reg(rng),
            disp: rng.gen_range(i16::MIN as i32..i16::MAX as i32 + 1) as i16,
        },
        1 => Inst::Br {
            op: BR_OPS[rng.gen_range(0..BR_OPS.len())],
            ra: any_reg(rng),
            disp: rng.gen_range(-(1i32 << 20)..(1i32 << 20)),
        },
        2 => Inst::Jmp {
            op: [JmpOp::Jmp, JmpOp::Jsr, JmpOp::Ret][rng.gen_range(0..3usize)],
            ra: any_reg(rng),
            rb: any_reg(rng),
            hint: rng.gen_range(0u16..1 << 14),
        },
        3 => Inst::Opr {
            op: OPR_OPS[rng.gen_range(0..OPR_OPS.len())],
            ra: any_reg(rng),
            rb: if rng.gen_bool(0.5) {
                Operand::Reg(any_reg(rng))
            } else {
                Operand::Lit(rng.gen_range(0u16..256) as u8)
            },
            rc: any_reg(rng),
        },
        4 => Inst::FOpr {
            op: FOPR_OPS[rng.gen_range(0..FOPR_OPS.len())],
            fa: any_reg(rng),
            fb: any_reg(rng),
            fc: any_reg(rng),
        },
        _ => Inst::Pal { op: [PalOp::Halt, PalOp::WriteInt][rng.gen_range(0..2usize)] },
    }
}

#[test]
fn encode_decode_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0x0A11_CE5);
    for _ in 0..20_000 {
        let inst = any_inst(&mut rng);
        let word = encode(inst);
        assert_eq!(decode(word), Ok(inst), "word {word:#010x}");
    }
}

#[test]
fn decode_never_panics() {
    let mut rng = StdRng::seed_from_u64(0xDEC0DE);
    for _ in 0..200_000 {
        let _ = decode(rng.next_u64() as u32);
    }
    // Plus the boundary words random sampling is unlikely to hit.
    for word in [0u32, 1, u32::MAX, u32::MAX - 1, 1 << 31, (1 << 26) - 1] {
        let _ = decode(word);
    }
}

#[test]
fn decoded_words_reencode_identically() {
    let mut rng = StdRng::seed_from_u64(0x5EED);
    for _ in 0..200_000 {
        let word = rng.next_u64() as u32;
        if let Ok(inst) = decode(word) {
            // Decode is not injective on the hint/SBZ bits we mask off, but
            // re-encoding a decoded instruction must be stable.
            let word2 = encode(inst);
            assert_eq!(decode(word2), Ok(inst), "word {word:#010x}");
        }
    }
}
