//! Property tests: every constructible instruction survives an
//! encode→decode round trip, and decoding arbitrary words never panics.
//!
//! Implemented as seeded exhaustive/randomized loops over `om_prng` (the
//! workspace builds offline, so no proptest); the case count is high enough
//! to cover every opcode many times per run, and failures print the seed
//! state via the instruction itself.

use om_alpha::inst::{BrOp, FOprOp, Inst, JmpOp, MemOp, Operand, OprOp, PalOp};
use om_alpha::reg::Reg;
use om_alpha::{decode, encode};
use om_prng::StdRng;

const MEM_OPS: [MemOp; 9] = [
    MemOp::Lda,
    MemOp::Ldah,
    MemOp::Ldl,
    MemOp::Ldq,
    MemOp::LdqU,
    MemOp::Stl,
    MemOp::Stq,
    MemOp::Ldt,
    MemOp::Stt,
];

const BR_OPS: [BrOp; 14] = [
    BrOp::Br,
    BrOp::Bsr,
    BrOp::Beq,
    BrOp::Bne,
    BrOp::Blt,
    BrOp::Ble,
    BrOp::Bgt,
    BrOp::Bge,
    BrOp::Blbc,
    BrOp::Blbs,
    BrOp::Fbeq,
    BrOp::Fbne,
    BrOp::Fblt,
    BrOp::Fbge,
];

const OPR_OPS: [OprOp; 26] = [
    OprOp::Addq,
    OprOp::Subq,
    OprOp::Addl,
    OprOp::Subl,
    OprOp::Mulq,
    OprOp::Mull,
    OprOp::S4Addq,
    OprOp::S8Addq,
    OprOp::And,
    OprOp::Bic,
    OprOp::Bis,
    OprOp::Ornot,
    OprOp::Xor,
    OprOp::Eqv,
    OprOp::Sll,
    OprOp::Srl,
    OprOp::Sra,
    OprOp::Cmpeq,
    OprOp::Cmplt,
    OprOp::Cmple,
    OprOp::Cmpult,
    OprOp::Cmpule,
    OprOp::Cmoveq,
    OprOp::Cmovne,
    OprOp::Cmovlt,
    OprOp::Cmovge,
];

const FOPR_OPS: [FOprOp; 11] = [
    FOprOp::Addt,
    FOprOp::Subt,
    FOprOp::Mult,
    FOprOp::Divt,
    FOprOp::Cmpteq,
    FOprOp::Cmptlt,
    FOprOp::Cmptle,
    FOprOp::Cvtqt,
    FOprOp::Cvttq,
    FOprOp::Cpys,
    FOprOp::Cpysn,
];

fn any_reg(rng: &mut StdRng) -> Reg {
    Reg::new(rng.gen_range(0u8..32))
}

fn any_inst(rng: &mut StdRng) -> Inst {
    match rng.gen_range(0..6u32) {
        0 => Inst::Mem {
            op: MEM_OPS[rng.gen_range(0..MEM_OPS.len())],
            ra: any_reg(rng),
            rb: any_reg(rng),
            disp: rng.gen_range(i16::MIN as i32..i16::MAX as i32 + 1) as i16,
        },
        1 => Inst::Br {
            op: BR_OPS[rng.gen_range(0..BR_OPS.len())],
            ra: any_reg(rng),
            disp: rng.gen_range(-(1i32 << 20)..(1i32 << 20)),
        },
        2 => Inst::Jmp {
            op: [JmpOp::Jmp, JmpOp::Jsr, JmpOp::Ret][rng.gen_range(0..3usize)],
            ra: any_reg(rng),
            rb: any_reg(rng),
            hint: rng.gen_range(0u16..1 << 14),
        },
        3 => Inst::Opr {
            op: OPR_OPS[rng.gen_range(0..OPR_OPS.len())],
            ra: any_reg(rng),
            rb: if rng.gen_bool(0.5) {
                Operand::Reg(any_reg(rng))
            } else {
                Operand::Lit(rng.gen_range(0u16..256) as u8)
            },
            rc: any_reg(rng),
        },
        4 => Inst::FOpr {
            op: FOPR_OPS[rng.gen_range(0..FOPR_OPS.len())],
            fa: any_reg(rng),
            fb: any_reg(rng),
            fc: any_reg(rng),
        },
        _ => Inst::Pal { op: [PalOp::Halt, PalOp::WriteInt][rng.gen_range(0..2usize)] },
    }
}

/// Signed-boundary displacements for the 16-bit memory format.
const MEM_DISPS: [i16; 8] = [i16::MIN, i16::MIN + 1, -2, -1, 0, 1, i16::MAX - 1, i16::MAX];

/// Signed-boundary word displacements for the 21-bit branch format.
const BR_DISPS: [i32; 8] = [
    -(1 << 20),
    -(1 << 20) + 1,
    -2,
    -1,
    0,
    1,
    (1 << 20) - 2,
    (1 << 20) - 1,
];

/// Boundary-biased operand sampling: half the time an extreme value, half
/// the time uniform — so every case mixes corner operands with ordinary
/// ones instead of waiting for uniform sampling to land on a boundary.
fn edge_inst(rng: &mut StdRng) -> Inst {
    let mem_disp = |rng: &mut StdRng| {
        if rng.gen_bool(0.5) {
            MEM_DISPS[rng.gen_range(0..MEM_DISPS.len())]
        } else {
            rng.gen_range(i16::MIN as i32..i16::MAX as i32 + 1) as i16
        }
    };
    let br_disp = |rng: &mut StdRng| {
        if rng.gen_bool(0.5) {
            BR_DISPS[rng.gen_range(0..BR_DISPS.len())]
        } else {
            rng.gen_range(-(1i32 << 20)..(1i32 << 20))
        }
    };
    let lit = |rng: &mut StdRng| {
        if rng.gen_bool(0.5) {
            [0u8, 1, 254, 255][rng.gen_range(0..4usize)]
        } else {
            rng.gen_range(0u16..256) as u8
        }
    };
    let hint = |rng: &mut StdRng| {
        if rng.gen_bool(0.5) {
            [0u16, 1, (1 << 14) - 2, (1 << 14) - 1][rng.gen_range(0..4usize)]
        } else {
            rng.gen_range(0u16..1 << 14)
        }
    };
    match rng.gen_range(0..5u32) {
        0 => Inst::Mem {
            op: MEM_OPS[rng.gen_range(0..MEM_OPS.len())],
            ra: any_reg(rng),
            rb: any_reg(rng),
            disp: mem_disp(rng),
        },
        1 => Inst::Br {
            op: BR_OPS[rng.gen_range(0..BR_OPS.len())],
            ra: any_reg(rng),
            disp: br_disp(rng),
        },
        2 => Inst::Jmp {
            op: [JmpOp::Jmp, JmpOp::Jsr, JmpOp::Ret][rng.gen_range(0..3usize)],
            ra: any_reg(rng),
            rb: any_reg(rng),
            hint: hint(rng),
        },
        3 => Inst::Opr {
            op: OPR_OPS[rng.gen_range(0..OPR_OPS.len())],
            ra: any_reg(rng),
            rb: if rng.gen_bool(0.5) {
                Operand::Reg(any_reg(rng))
            } else {
                Operand::Lit(lit(rng))
            },
            rc: any_reg(rng),
        },
        _ => Inst::FOpr {
            op: FOPR_OPS[rng.gen_range(0..FOPR_OPS.len())],
            fa: any_reg(rng),
            fb: any_reg(rng),
            fc: any_reg(rng),
        },
    }
}

#[test]
fn encode_decode_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0x0A11_CE5);
    for _ in 0..20_000 {
        let inst = any_inst(&mut rng);
        let word = encode(inst);
        assert_eq!(decode(word), Ok(inst), "word {word:#010x}");
    }
}

#[test]
fn boundary_displacements_roundtrip_exhaustively() {
    // Every op × every boundary displacement, deterministically — the
    // corners mutation harnesses flip bits around must be pinned exactly,
    // not left to uniform sampling.
    for &op in &MEM_OPS {
        for &disp in &MEM_DISPS {
            for ra in [0u8, 15, 31] {
                let inst = Inst::Mem { op, ra: Reg::new(ra), rb: Reg::new(31 - ra), disp };
                let word = encode(inst);
                assert_eq!(decode(word), Ok(inst), "word {word:#010x}");
            }
        }
    }
    for &op in &BR_OPS {
        for &disp in &BR_DISPS {
            let inst = Inst::Br { op, ra: Reg::new(26), disp };
            let word = encode(inst);
            assert_eq!(decode(word), Ok(inst), "word {word:#010x}");
        }
    }
}

#[test]
fn every_register_number_roundtrips_in_every_field() {
    // Each of the 32 register numbers through each encodable field slot,
    // including R31/F31 (whose reads are architecturally zero but whose
    // *encoding* must still be preserved bit-exactly).
    for r in 0u8..32 {
        let reg = Reg::new(r);
        let other = Reg::new((r + 7) % 32);
        let cases = [
            Inst::Mem { op: MemOp::Ldq, ra: reg, rb: other, disp: -8 },
            Inst::Mem { op: MemOp::Stq, ra: other, rb: reg, disp: 8 },
            Inst::Br { op: BrOp::Bne, ra: reg, disp: -1 },
            Inst::Jmp { op: JmpOp::Jsr, ra: reg, rb: other, hint: 0x1FFF },
            Inst::Jmp { op: JmpOp::Jmp, ra: other, rb: reg, hint: 0 },
            Inst::Opr { op: OprOp::Addq, ra: reg, rb: Operand::Reg(other), rc: other },
            Inst::Opr { op: OprOp::Xor, ra: other, rb: Operand::Reg(reg), rc: other },
            Inst::Opr { op: OprOp::Subq, ra: other, rb: Operand::Lit(255), rc: reg },
            Inst::FOpr { op: FOprOp::Addt, fa: reg, fb: other, fc: other },
            Inst::FOpr { op: FOprOp::Mult, fa: other, fb: reg, fc: other },
            Inst::FOpr { op: FOprOp::Cpys, fa: other, fb: other, fc: reg },
        ];
        for inst in cases {
            let word = encode(inst);
            assert_eq!(decode(word), Ok(inst), "r{r}: word {word:#010x}");
        }
    }
}

#[test]
fn boundary_biased_sweep_roundtrips() {
    let mut rng = StdRng::seed_from_u64(0xB0_0B5_EED);
    for case in 0..50_000 {
        let inst = edge_inst(&mut rng);
        let word = encode(inst);
        assert_eq!(decode(word), Ok(inst), "case {case}: word {word:#010x}");
    }
}

#[test]
fn decode_never_panics() {
    let mut rng = StdRng::seed_from_u64(0xDEC0DE);
    for _ in 0..200_000 {
        let _ = decode(rng.next_u64() as u32);
    }
    // Plus the boundary words random sampling is unlikely to hit.
    for word in [0u32, 1, u32::MAX, u32::MAX - 1, 1 << 31, (1 << 26) - 1] {
        let _ = decode(word);
    }
}

#[test]
fn decoded_words_reencode_identically() {
    let mut rng = StdRng::seed_from_u64(0x5EED);
    for _ in 0..200_000 {
        let word = rng.next_u64() as u32;
        if let Ok(inst) = decode(word) {
            // Decode is not injective on the hint/SBZ bits we mask off, but
            // re-encoding a decoded instruction must be stable.
            let word2 = encode(inst);
            assert_eq!(decode(word2), Ok(inst), "word {word:#010x}");
        }
    }
}
