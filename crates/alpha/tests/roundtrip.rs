//! Property tests: every constructible instruction survives an
//! encode→decode round trip, and decoding arbitrary words never panics.

use om_alpha::inst::{BrOp, FOprOp, Inst, JmpOp, MemOp, Operand, OprOp, PalOp};
use om_alpha::reg::Reg;
use om_alpha::{decode, encode};
use proptest::prelude::*;

fn any_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::new)
}

fn any_mem_op() -> impl Strategy<Value = MemOp> {
    prop_oneof![
        Just(MemOp::Lda),
        Just(MemOp::Ldah),
        Just(MemOp::Ldl),
        Just(MemOp::Ldq),
        Just(MemOp::LdqU),
        Just(MemOp::Stl),
        Just(MemOp::Stq),
        Just(MemOp::Ldt),
        Just(MemOp::Stt),
    ]
}

fn any_br_op() -> impl Strategy<Value = BrOp> {
    prop_oneof![
        Just(BrOp::Br),
        Just(BrOp::Bsr),
        Just(BrOp::Beq),
        Just(BrOp::Bne),
        Just(BrOp::Blt),
        Just(BrOp::Ble),
        Just(BrOp::Bgt),
        Just(BrOp::Bge),
        Just(BrOp::Blbc),
        Just(BrOp::Blbs),
        Just(BrOp::Fbeq),
        Just(BrOp::Fbne),
        Just(BrOp::Fblt),
        Just(BrOp::Fbge),
    ]
}

fn any_opr_op() -> impl Strategy<Value = OprOp> {
    prop_oneof![
        Just(OprOp::Addq),
        Just(OprOp::Subq),
        Just(OprOp::Addl),
        Just(OprOp::Subl),
        Just(OprOp::Mulq),
        Just(OprOp::Mull),
        Just(OprOp::S4Addq),
        Just(OprOp::S8Addq),
        Just(OprOp::And),
        Just(OprOp::Bic),
        Just(OprOp::Bis),
        Just(OprOp::Ornot),
        Just(OprOp::Xor),
        Just(OprOp::Eqv),
        Just(OprOp::Sll),
        Just(OprOp::Srl),
        Just(OprOp::Sra),
        Just(OprOp::Cmpeq),
        Just(OprOp::Cmplt),
        Just(OprOp::Cmple),
        Just(OprOp::Cmpult),
        Just(OprOp::Cmpule),
        Just(OprOp::Cmoveq),
        Just(OprOp::Cmovne),
        Just(OprOp::Cmovlt),
        Just(OprOp::Cmovge),
    ]
}

fn any_fopr_op() -> impl Strategy<Value = FOprOp> {
    prop_oneof![
        Just(FOprOp::Addt),
        Just(FOprOp::Subt),
        Just(FOprOp::Mult),
        Just(FOprOp::Divt),
        Just(FOprOp::Cmpteq),
        Just(FOprOp::Cmptlt),
        Just(FOprOp::Cmptle),
        Just(FOprOp::Cvtqt),
        Just(FOprOp::Cvttq),
        Just(FOprOp::Cpys),
        Just(FOprOp::Cpysn),
    ]
}

fn any_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        (any_mem_op(), any_reg(), any_reg(), any::<i16>())
            .prop_map(|(op, ra, rb, disp)| Inst::Mem { op, ra, rb, disp }),
        (any_br_op(), any_reg(), -(1i32 << 20)..(1i32 << 20))
            .prop_map(|(op, ra, disp)| Inst::Br { op, ra, disp }),
        (
            prop_oneof![Just(JmpOp::Jmp), Just(JmpOp::Jsr), Just(JmpOp::Ret)],
            any_reg(),
            any_reg(),
            0u16..(1 << 14)
        )
            .prop_map(|(op, ra, rb, hint)| Inst::Jmp { op, ra, rb, hint }),
        (
            any_opr_op(),
            any_reg(),
            prop_oneof![any_reg().prop_map(Operand::Reg), any::<u8>().prop_map(Operand::Lit)],
            any_reg()
        )
            .prop_map(|(op, ra, rb, rc)| Inst::Opr { op, ra, rb, rc }),
        (any_fopr_op(), any_reg(), any_reg(), any_reg())
            .prop_map(|(op, fa, fb, fc)| Inst::FOpr { op, fa, fb, fc }),
        prop_oneof![Just(PalOp::Halt), Just(PalOp::WriteInt)].prop_map(|op| Inst::Pal { op }),
    ]
}

proptest! {
    #[test]
    fn encode_decode_roundtrip(inst in any_inst()) {
        let word = encode(inst);
        prop_assert_eq!(decode(word), Ok(inst));
    }

    #[test]
    fn decode_never_panics(word in any::<u32>()) {
        let _ = decode(word);
    }

    #[test]
    fn decoded_words_reencode_identically(word in any::<u32>()) {
        if let Ok(inst) = decode(word) {
            // Decode is not injective on the hint/SBZ bits we mask off, but
            // re-encoding a decoded instruction must be stable.
            let word2 = encode(inst);
            prop_assert_eq!(decode(word2), Ok(inst));
        }
    }
}
