//! The instruction model shared by the compiler, linker, OM, and simulator.
//!
//! [`Inst`] is a decoded, format-level view of the Alpha subset this
//! reproduction uses. It is deliberately *not* symbolic: displacements are the
//! literal bit-field values that appear in the machine word. Symbolic operands
//! (references to GAT slots, procedures, data symbols) live in the relocation
//! records of `om-objfile` and in OM's symbolic program form; an `Inst` plus
//! the relocations that point at it fully describe an instruction the way the
//! paper's loader format does.

use crate::reg::Reg;
use std::fmt;

/// Memory-format opcodes (16-bit signed byte displacement off a base register).
///
/// `Lda`/`Ldah` are the "load address" operations the paper converts address
/// loads into; `LdqU` with `r31` as target is the canonical `UNOP`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemOp {
    /// `lda ra, disp(rb)` — `ra := rb + disp`.
    Lda,
    /// `ldah ra, disp(rb)` — `ra := rb + (disp << 16)`.
    Ldah,
    /// `ldl ra, disp(rb)` — load sign-extended 32-bit.
    Ldl,
    /// `ldq ra, disp(rb)` — load 64-bit. Address loads from the GAT are LDQs.
    Ldq,
    /// `ldq_u ra, disp(rb)` — unaligned load; `ldq_u r31, 0(r31)` is `UNOP`.
    LdqU,
    /// `stl ra, disp(rb)` — store low 32 bits.
    Stl,
    /// `stq ra, disp(rb)` — store 64-bit.
    Stq,
    /// `ldt fa, disp(rb)` — load IEEE double into an FP register.
    Ldt,
    /// `stt fa, disp(rb)` — store IEEE double from an FP register.
    Stt,
}

impl MemOp {
    /// True for operations that read memory.
    pub fn is_load(self) -> bool {
        matches!(
            self,
            MemOp::Ldl | MemOp::Ldq | MemOp::LdqU | MemOp::Ldt
        )
    }

    /// True for operations that write memory.
    pub fn is_store(self) -> bool {
        matches!(self, MemOp::Stl | MemOp::Stq | MemOp::Stt)
    }

    /// True for the pure address computations (`LDA`, `LDAH`), which do not
    /// touch memory at all.
    pub fn is_load_address(self) -> bool {
        matches!(self, MemOp::Lda | MemOp::Ldah)
    }

    /// True when the `ra` field names a floating-point register.
    pub fn ra_is_fp(self) -> bool {
        matches!(self, MemOp::Ldt | MemOp::Stt)
    }

    /// Access size in bytes for loads/stores, 0 for LDA/LDAH.
    pub fn access_bytes(self) -> u64 {
        match self {
            MemOp::Lda | MemOp::Ldah => 0,
            MemOp::Ldl | MemOp::Stl => 4,
            MemOp::Ldq | MemOp::LdqU | MemOp::Stq | MemOp::Ldt | MemOp::Stt => 8,
        }
    }

    fn mnemonic(self) -> &'static str {
        match self {
            MemOp::Lda => "lda",
            MemOp::Ldah => "ldah",
            MemOp::Ldl => "ldl",
            MemOp::Ldq => "ldq",
            MemOp::LdqU => "ldq_u",
            MemOp::Stl => "stl",
            MemOp::Stq => "stq",
            MemOp::Ldt => "ldt",
            MemOp::Stt => "stt",
        }
    }
}

/// Branch-format opcodes (21-bit signed *word* displacement, PC-relative).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BrOp {
    /// Unconditional branch; writes the return address to `ra`.
    Br,
    /// Branch to subroutine; like `Br` but predicted as a call.
    Bsr,
    /// Integer conditional branches on `ra`.
    Beq,
    Bne,
    Blt,
    Ble,
    Bgt,
    Bge,
    /// Branch on low bit clear/set.
    Blbc,
    Blbs,
    /// Floating conditional branches on `fa`.
    Fbeq,
    Fbne,
    Fblt,
    Fbge,
}

impl BrOp {
    /// True for `Br`/`Bsr`, which transfer control unconditionally.
    pub fn is_unconditional(self) -> bool {
        matches!(self, BrOp::Br | BrOp::Bsr)
    }

    /// True when the tested register is floating-point.
    pub fn ra_is_fp(self) -> bool {
        matches!(self, BrOp::Fbeq | BrOp::Fbne | BrOp::Fblt | BrOp::Fbge)
    }

    fn mnemonic(self) -> &'static str {
        match self {
            BrOp::Br => "br",
            BrOp::Bsr => "bsr",
            BrOp::Beq => "beq",
            BrOp::Bne => "bne",
            BrOp::Blt => "blt",
            BrOp::Ble => "ble",
            BrOp::Bgt => "bgt",
            BrOp::Bge => "bge",
            BrOp::Blbc => "blbc",
            BrOp::Blbs => "blbs",
            BrOp::Fbeq => "fbeq",
            BrOp::Fbne => "fbne",
            BrOp::Fblt => "fblt",
            BrOp::Fbge => "fbge",
        }
    }
}

/// Memory-format jumps (opcode 0x1A): indirect transfers through `rb`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JmpOp {
    /// `jmp ra, (rb)` — indirect jump.
    Jmp,
    /// `jsr ra, (rb)` — indirect call; this is the general call the paper's
    /// OM-simple rewrites into `Bsr` when the destination is near enough.
    Jsr,
    /// `ret ra, (rb)` — return (conventionally `ret zero, (ra)`).
    Ret,
}

impl JmpOp {
    fn mnemonic(self) -> &'static str {
        match self {
            JmpOp::Jmp => "jmp",
            JmpOp::Jsr => "jsr",
            JmpOp::Ret => "ret",
        }
    }
}

/// Integer operate-format opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OprOp {
    Addq,
    Subq,
    Addl,
    Subl,
    Mulq,
    Mull,
    S4Addq,
    S8Addq,
    And,
    Bic,
    Bis,
    Ornot,
    Xor,
    Eqv,
    Sll,
    Srl,
    Sra,
    Cmpeq,
    Cmplt,
    Cmple,
    Cmpult,
    Cmpule,
    Cmoveq,
    Cmovne,
    Cmovlt,
    Cmovge,
}

impl OprOp {
    fn mnemonic(self) -> &'static str {
        match self {
            OprOp::Addq => "addq",
            OprOp::Subq => "subq",
            OprOp::Addl => "addl",
            OprOp::Subl => "subl",
            OprOp::Mulq => "mulq",
            OprOp::Mull => "mull",
            OprOp::S4Addq => "s4addq",
            OprOp::S8Addq => "s8addq",
            OprOp::And => "and",
            OprOp::Bic => "bic",
            OprOp::Bis => "bis",
            OprOp::Ornot => "ornot",
            OprOp::Xor => "xor",
            OprOp::Eqv => "eqv",
            OprOp::Sll => "sll",
            OprOp::Srl => "srl",
            OprOp::Sra => "sra",
            OprOp::Cmpeq => "cmpeq",
            OprOp::Cmplt => "cmplt",
            OprOp::Cmple => "cmple",
            OprOp::Cmpult => "cmpult",
            OprOp::Cmpule => "cmpule",
            OprOp::Cmoveq => "cmoveq",
            OprOp::Cmovne => "cmovne",
            OprOp::Cmovlt => "cmovlt",
            OprOp::Cmovge => "cmovge",
        }
    }

    /// True for the conditional moves, whose destination is also an input.
    pub fn is_cmov(self) -> bool {
        matches!(
            self,
            OprOp::Cmoveq | OprOp::Cmovne | OprOp::Cmovlt | OprOp::Cmovge
        )
    }

    /// True for multiplies, which have a long latency on the 21064.
    pub fn is_mul(self) -> bool {
        matches!(self, OprOp::Mulq | OprOp::Mull)
    }
}

/// IEEE floating-point operate opcodes (T-floating, i.e. `f64`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FOprOp {
    Addt,
    Subt,
    Mult,
    Divt,
    /// Comparisons write 2.0 (true) or 0.0 (false) into `fc`.
    Cmpteq,
    Cmptlt,
    Cmptle,
    /// Convert quadword integer (bit pattern in an FP register) to T-floating.
    Cvtqt,
    /// Convert T-floating to quadword integer (truncating).
    Cvttq,
    /// Copy sign: `cpys fa, fb, fc`; `cpys f31,f31,f31` is the FP no-op,
    /// `cpys fb, fb, fc` the FP move, `cpysn fb, fb, fc` negation.
    Cpys,
    Cpysn,
}

impl FOprOp {
    fn mnemonic(self) -> &'static str {
        match self {
            FOprOp::Addt => "addt",
            FOprOp::Subt => "subt",
            FOprOp::Mult => "mult",
            FOprOp::Divt => "divt",
            FOprOp::Cmpteq => "cmpteq",
            FOprOp::Cmptlt => "cmptlt",
            FOprOp::Cmptle => "cmptle",
            FOprOp::Cvtqt => "cvtqt",
            FOprOp::Cvttq => "cvttq",
            FOprOp::Cpys => "cpys",
            FOprOp::Cpysn => "cpysn",
        }
    }
}

/// Second operand of an integer operate instruction: a register or an 8-bit
/// zero-extended literal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    Reg(Reg),
    /// Literal in `0..256`.
    Lit(u8),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Lit(v) => write!(f, "{v}"),
        }
    }
}

/// PALcode calls. Real Alpha/OSF uses these for syscalls; the simulator uses
/// `Halt` to stop and `WriteInt` as a minimal output channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PalOp {
    /// Stop execution; `r0` holds the program's result checksum.
    Halt,
    /// Debug output of `a0` (no effect on architectural state).
    WriteInt,
}

/// A decoded Alpha instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Inst {
    /// Memory format. For `Ldt`/`Stt`, `ra` names an FP register.
    Mem {
        op: MemOp,
        ra: Reg,
        rb: Reg,
        disp: i16,
    },
    /// Branch format; `disp` is a signed 21-bit word displacement relative to
    /// the *updated* PC (the instruction after the branch). For FP branches,
    /// `ra` names an FP register.
    Br { op: BrOp, ra: Reg, disp: i32 },
    /// Memory-format jump through `rb`; `hint` is the 14-bit branch-prediction
    /// hint field (ignored by the semantics).
    Jmp {
        op: JmpOp,
        ra: Reg,
        rb: Reg,
        hint: u16,
    },
    /// Integer operate: `rc := ra op rb`.
    Opr {
        op: OprOp,
        ra: Reg,
        rb: Operand,
        rc: Reg,
    },
    /// Floating operate: `fc := fa op fb` (all FP registers).
    FOpr {
        op: FOprOp,
        fa: Reg,
        fb: Reg,
        fc: Reg,
    },
    /// PALcode call.
    Pal { op: PalOp },
}

impl Inst {
    /// The canonical integer no-op, `bis r31, r31, r31`.
    ///
    /// This is what OM-simple writes over nullified instructions: it never
    /// moves code, so a removed instruction must become a no-op in place
    /// (which, as the paper notes, also removes data dependences and any
    /// chance of a cache miss the original load had).
    pub fn nop() -> Inst {
        Inst::Opr {
            op: OprOp::Bis,
            ra: Reg::ZERO,
            rb: Operand::Reg(Reg::ZERO),
            rc: Reg::ZERO,
        }
    }

    /// The "universal no-op" `ldq_u r31, 0(r31)`, which can issue in either
    /// pipe; the rescheduler uses it for quadword alignment padding.
    pub fn unop() -> Inst {
        Inst::Mem {
            op: MemOp::LdqU,
            ra: Reg::ZERO,
            rb: Reg::ZERO,
            disp: 0,
        }
    }

    /// The floating-point no-op, `cpys f31, f31, f31`.
    pub fn fnop() -> Inst {
        Inst::FOpr {
            op: FOprOp::Cpys,
            fa: Reg::ZERO,
            fb: Reg::ZERO,
            fc: Reg::ZERO,
        }
    }

    /// `lda ra, disp(rb)`.
    pub fn lda(ra: Reg, disp: i16, rb: Reg) -> Inst {
        Inst::Mem { op: MemOp::Lda, ra, rb, disp }
    }

    /// `ldah ra, disp(rb)`.
    pub fn ldah(ra: Reg, disp: i16, rb: Reg) -> Inst {
        Inst::Mem { op: MemOp::Ldah, ra, rb, disp }
    }

    /// `ldq ra, disp(rb)`.
    pub fn ldq(ra: Reg, disp: i16, rb: Reg) -> Inst {
        Inst::Mem { op: MemOp::Ldq, ra, rb, disp }
    }

    /// `stq ra, disp(rb)`.
    pub fn stq(ra: Reg, disp: i16, rb: Reg) -> Inst {
        Inst::Mem { op: MemOp::Stq, ra, rb, disp }
    }

    /// Register move, `bis zero, rb, rc`.
    pub fn mov(rb: Reg, rc: Reg) -> Inst {
        Inst::Opr {
            op: OprOp::Bis,
            ra: Reg::ZERO,
            rb: Operand::Reg(rb),
            rc,
        }
    }

    /// Load a small unsigned constant, `bis zero, lit, rc`.
    pub fn mov_lit(lit: u8, rc: Reg) -> Inst {
        Inst::Opr {
            op: OprOp::Bis,
            ra: Reg::ZERO,
            rb: Operand::Lit(lit),
            rc,
        }
    }

    /// `jsr ra, (rb)` with a zero hint.
    pub fn jsr(ra: Reg, rb: Reg) -> Inst {
        Inst::Jmp { op: JmpOp::Jsr, ra, rb, hint: 0 }
    }

    /// `ret zero, (ra)`.
    pub fn ret() -> Inst {
        Inst::Jmp {
            op: JmpOp::Ret,
            ra: Reg::ZERO,
            rb: Reg::RA,
            hint: 0,
        }
    }

    /// True for any of the three no-op spellings.
    pub fn is_nop(&self) -> bool {
        *self == Inst::nop() || *self == Inst::unop() || *self == Inst::fnop()
    }

    /// True for instructions that end a basic block: branches, jumps, and
    /// `Halt`.
    pub fn is_control(&self) -> bool {
        matches!(self, Inst::Br { .. } | Inst::Jmp { .. })
            || matches!(self, Inst::Pal { op: PalOp::Halt })
    }

    /// True for loads that read memory (candidate "address loads" when their
    /// relocation says they index the GAT).
    pub fn is_memory_load(&self) -> bool {
        matches!(self, Inst::Mem { op, .. } if op.is_load())
    }

    /// True for stores.
    pub fn is_store(&self) -> bool {
        matches!(self, Inst::Mem { op, .. } if op.is_store())
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use crate::reg::fp_name;
        match *self {
            Inst::Mem { op, ra, rb, disp } => {
                if op.ra_is_fp() {
                    write!(f, "{} {}, {}({})", op.mnemonic(), fp_name(ra), disp, rb)
                } else {
                    write!(f, "{} {}, {}({})", op.mnemonic(), ra, disp, rb)
                }
            }
            Inst::Br { op, ra, disp } => {
                if op.ra_is_fp() {
                    write!(f, "{} {}, {:+}", op.mnemonic(), fp_name(ra), disp)
                } else {
                    write!(f, "{} {}, {:+}", op.mnemonic(), ra, disp)
                }
            }
            Inst::Jmp { op, ra, rb, .. } => {
                write!(f, "{} {}, ({})", op.mnemonic(), ra, rb)
            }
            Inst::Opr { op, ra, rb, rc } => {
                write!(f, "{} {}, {}, {}", op.mnemonic(), ra, rb, rc)
            }
            Inst::FOpr { op, fa, fb, fc } => {
                write!(
                    f,
                    "{} {}, {}, {}",
                    op.mnemonic(),
                    fp_name(fa),
                    fp_name(fb),
                    fp_name(fc)
                )
            }
            Inst::Pal { op } => match op {
                PalOp::Halt => write!(f, "call_pal halt"),
                PalOp::WriteInt => write!(f, "call_pal write_int"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nop_spellings_are_recognized() {
        assert!(Inst::nop().is_nop());
        assert!(Inst::unop().is_nop());
        assert!(Inst::fnop().is_nop());
        assert!(!Inst::mov(Reg::A0, Reg::V0).is_nop());
    }

    #[test]
    fn control_instructions_are_flagged() {
        assert!(Inst::ret().is_control());
        assert!(Inst::jsr(Reg::RA, Reg::PV).is_control());
        assert!(Inst::Br { op: BrOp::Beq, ra: Reg::V0, disp: -4 }.is_control());
        assert!(Inst::Pal { op: PalOp::Halt }.is_control());
        assert!(!Inst::nop().is_control());
    }

    #[test]
    fn display_formats_conventionally() {
        assert_eq!(Inst::ldq(Reg::PV, 144, Reg::GP).to_string(), "ldq pv, 144(gp)");
        assert_eq!(Inst::ret().to_string(), "ret zero, (ra)");
        assert_eq!(Inst::nop().to_string(), "bis zero, zero, zero");
        let fadd = Inst::FOpr {
            op: FOprOp::Addt,
            fa: Reg::new(1),
            fb: Reg::new(2),
            fc: Reg::new(3),
        };
        assert_eq!(fadd.to_string(), "addt f1, f2, f3");
    }

    #[test]
    fn memory_classification() {
        assert!(MemOp::Ldq.is_load());
        assert!(!MemOp::Ldq.is_store());
        assert!(MemOp::Stt.is_store());
        assert!(MemOp::Lda.is_load_address());
        assert_eq!(MemOp::Ldl.access_bytes(), 4);
        assert_eq!(MemOp::Ldah.access_bytes(), 0);
    }
}
