//! A small disassembler for dumping code the way the paper's figures do.
//!
//! Output lines look like:
//!
//! ```text
//! 120001000:  23de ffe0   lda sp, -32(sp)
//! 120001004:  a77d 0090   ldq pv, 144(gp)
//! ```
//!
//! Branch targets are resolved to absolute addresses so before/after dumps of
//! OM transformations are readable.

use crate::decode::decode;
use crate::inst::Inst;
use std::fmt::Write as _;

/// Disassembles one instruction at `addr`, resolving branch displacements.
pub fn line(addr: u64, word: u32) -> String {
    let mut out = format!("{addr:>9x}:  {:04x} {:04x}   ", word >> 16, word & 0xFFFF);
    match decode(word) {
        Ok(Inst::Br { op, ra, disp }) => {
            let target = addr.wrapping_add(4).wrapping_add((disp as i64 * 4) as u64);
            // Re-render with the resolved target.
            let i = Inst::Br { op, ra, disp };
            let text = i.to_string();
            let mnemonic_and_reg = text.rsplit_once(',').map(|(head, _)| head).unwrap_or(&text);
            let _ = write!(out, "{mnemonic_and_reg}, {target:#x}");
        }
        Ok(inst) => {
            let _ = write!(out, "{inst}");
        }
        Err(_) => {
            let _ = write!(out, ".word {word:#010x}");
        }
    }
    out
}

/// Disassembles a whole text section starting at `base`.
pub fn section(base: u64, bytes: &[u8]) -> String {
    let mut out = String::new();
    for (i, chunk) in bytes.chunks_exact(4).enumerate() {
        let word = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        out.push_str(&line(base + 4 * i as u64, word));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::{encode, encode_all};
    use crate::inst::BrOp;
    use crate::reg::Reg;

    #[test]
    fn line_formats_address_and_words() {
        let text = line(0x1_2000_1000, encode(Inst::nop()));
        assert!(text.starts_with("120001000:"), "{text}");
        assert!(text.contains("bis zero, zero, zero"), "{text}");
    }

    #[test]
    fn branch_targets_are_resolved() {
        let br = Inst::Br { op: BrOp::Bsr, ra: Reg::RA, disp: 2 };
        let text = line(0x1000, encode(br));
        // target = 0x1000 + 4 + 2*4 = 0x100c
        assert!(text.contains("0x100c"), "{text}");
    }

    #[test]
    fn garbage_becomes_word_directive() {
        let text = line(0, 0x5000_0000);
        assert!(text.contains(".word"), "{text}");
    }

    #[test]
    fn section_emits_one_line_per_instruction() {
        let bytes = encode_all(&[Inst::nop(), Inst::ret()]);
        let text = section(0x2000, &bytes);
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("ret zero, (ra)"));
    }
}
