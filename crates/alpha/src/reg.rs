//! Integer and floating-point register names for the Alpha AXP.
//!
//! The Alpha has 32 integer registers (`r0`–`r31`) and 32 floating-point
//! registers (`f0`–`f31`); `r31` and `f31` always read as zero and writes to
//! them are discarded. The Alpha/OSF calling convention dedicates several
//! integer registers, and this reproduction leans on exactly the ones the
//! paper's transformations care about:
//!
//! * [`Reg::PV`] (`r27`) — procedure value: holds the address of the callee at
//!   a call, and of the procedure itself on entry (used to derive GP),
//! * [`Reg::GP`] (`r29`) — global pointer: base register for the global
//!   address table (GAT),
//! * [`Reg::RA`] (`r26`) — return address (used to re-derive GP after a call),
//! * [`Reg::SP`] (`r30`) — stack pointer.

use std::fmt;

/// An Alpha register number in `0..32`.
///
/// The same type is used for integer and floating-point registers; which file
/// a register number names is determined by the instruction that mentions it
/// (e.g. `LDT f3, 8(r30)` reads integer `r30` and writes floating `f3`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Integer function result register (`v0`).
    pub const V0: Reg = Reg(0);
    /// First temporary register (`t0`). `t0`–`t7` are `r1`–`r8`.
    pub const T0: Reg = Reg(1);
    /// Callee-saved registers `s0`–`s5` are `r9`–`r14`.
    pub const S0: Reg = Reg(9);
    /// Frame pointer / `s6`.
    pub const FP: Reg = Reg(15);
    /// First argument register (`a0`). `a0`–`a5` are `r16`–`r21`.
    pub const A0: Reg = Reg(16);
    /// Second argument register.
    pub const A1: Reg = Reg(17);
    /// Third argument register.
    pub const A2: Reg = Reg(18);
    /// Fourth argument register.
    pub const A3: Reg = Reg(19);
    /// Fifth argument register.
    pub const A4: Reg = Reg(20);
    /// Sixth argument register.
    pub const A5: Reg = Reg(21);
    /// Scratch registers `t8`-`t11` are `r22`-`r25`.
    pub const T8: Reg = Reg(22);
    /// Return-address register (`ra`, `r26`).
    pub const RA: Reg = Reg(26);
    /// Procedure value (`pv`/`t12`, `r27`).
    pub const PV: Reg = Reg(27);
    /// Assembler temporary (`at`, `r28`).
    pub const AT: Reg = Reg(28);
    /// Global pointer (`gp`, `r29`).
    pub const GP: Reg = Reg(29);
    /// Stack pointer (`sp`, `r30`).
    pub const SP: Reg = Reg(30);
    /// Hardwired zero (`r31`/`f31`).
    pub const ZERO: Reg = Reg(31);

    /// Creates a register from its number.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    pub fn new(n: u8) -> Reg {
        assert!(n < 32, "register number {n} out of range");
        Reg(n)
    }

    /// The register's number in `0..32`.
    pub fn number(self) -> u8 {
        self.0
    }

    /// True for `r31`/`f31`, which always read as zero.
    pub fn is_zero(self) -> bool {
        self.0 == 31
    }

    /// Iterates over all 32 register numbers.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..32).map(Reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Reg::RA => write!(f, "ra"),
            Reg::PV => write!(f, "pv"),
            Reg::AT => write!(f, "at"),
            Reg::GP => write!(f, "gp"),
            Reg::SP => write!(f, "sp"),
            Reg::ZERO => write!(f, "zero"),
            Reg(n) => write!(f, "r{n}"),
        }
    }
}

/// Formats a register number as a floating-point register (`f7`).
///
/// [`Reg`] carries no int/float distinction; call this from contexts (the
/// disassembler, debug dumps) that know the operand is floating-point.
pub fn fp_name(r: Reg) -> String {
    format!("f{}", r.number())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_registers_have_conventional_numbers() {
        assert_eq!(Reg::V0.number(), 0);
        assert_eq!(Reg::A0.number(), 16);
        assert_eq!(Reg::RA.number(), 26);
        assert_eq!(Reg::PV.number(), 27);
        assert_eq!(Reg::GP.number(), 29);
        assert_eq!(Reg::SP.number(), 30);
        assert_eq!(Reg::ZERO.number(), 31);
    }

    #[test]
    fn zero_register_is_flagged() {
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::GP.is_zero());
    }

    #[test]
    fn display_uses_conventional_names() {
        assert_eq!(Reg::GP.to_string(), "gp");
        assert_eq!(Reg::new(5).to_string(), "r5");
        assert_eq!(fp_name(Reg::new(7)), "f7");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_register_panics() {
        let _ = Reg::new(32);
    }

    #[test]
    fn all_yields_32() {
        assert_eq!(Reg::all().count(), 32);
    }
}
