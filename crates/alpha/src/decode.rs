//! Instruction decoding from 32-bit machine words.
//!
//! Decoding is total over words produced by [`crate::encode::encode`] (the
//! round-trip property is tested exhaustively and by property tests) and
//! returns [`DecodeError`] for anything outside the implemented subset, which
//! is how OM detects data mixed into a text section (it never happens with
//! our compiler, but the check keeps the translator honest, mirroring OM's
//! conservative treatment of input object code).

use crate::inst::{BrOp, FOprOp, Inst, JmpOp, MemOp, Operand, OprOp, PalOp};
use crate::reg::Reg;
use std::fmt;

/// Error returned when a word does not decode to an instruction in the subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The undecodable machine word.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot decode word {:#010x} as an alpha instruction", self.word)
    }
}

impl std::error::Error for DecodeError {}

fn reg(field: u32) -> Reg {
    Reg::new((field & 31) as u8)
}

fn mem_op(opcode: u32) -> Option<MemOp> {
    Some(match opcode {
        0x08 => MemOp::Lda,
        0x09 => MemOp::Ldah,
        0x0B => MemOp::LdqU,
        0x23 => MemOp::Ldt,
        0x27 => MemOp::Stt,
        0x28 => MemOp::Ldl,
        0x29 => MemOp::Ldq,
        0x2C => MemOp::Stl,
        0x2D => MemOp::Stq,
        _ => return None,
    })
}

fn br_op(opcode: u32) -> Option<BrOp> {
    Some(match opcode {
        0x30 => BrOp::Br,
        0x31 => BrOp::Fbeq,
        0x32 => BrOp::Fblt,
        0x34 => BrOp::Bsr,
        0x35 => BrOp::Fbne,
        0x36 => BrOp::Fbge,
        0x38 => BrOp::Blbc,
        0x39 => BrOp::Beq,
        0x3A => BrOp::Blt,
        0x3B => BrOp::Ble,
        0x3C => BrOp::Blbs,
        0x3D => BrOp::Bne,
        0x3E => BrOp::Bge,
        0x3F => BrOp::Bgt,
        _ => return None,
    })
}

fn opr_op(opcode: u32, func: u32) -> Option<OprOp> {
    Some(match (opcode, func) {
        (0x10, 0x00) => OprOp::Addl,
        (0x10, 0x09) => OprOp::Subl,
        (0x10, 0x1D) => OprOp::Cmpult,
        (0x10, 0x20) => OprOp::Addq,
        (0x10, 0x22) => OprOp::S4Addq,
        (0x10, 0x29) => OprOp::Subq,
        (0x10, 0x2D) => OprOp::Cmpeq,
        (0x10, 0x32) => OprOp::S8Addq,
        (0x10, 0x3D) => OprOp::Cmpule,
        (0x10, 0x4D) => OprOp::Cmplt,
        (0x10, 0x6D) => OprOp::Cmple,
        (0x11, 0x00) => OprOp::And,
        (0x11, 0x08) => OprOp::Bic,
        (0x11, 0x20) => OprOp::Bis,
        (0x11, 0x24) => OprOp::Cmoveq,
        (0x11, 0x26) => OprOp::Cmovne,
        (0x11, 0x28) => OprOp::Ornot,
        (0x11, 0x40) => OprOp::Xor,
        (0x11, 0x44) => OprOp::Cmovlt,
        (0x11, 0x46) => OprOp::Cmovge,
        (0x11, 0x48) => OprOp::Eqv,
        (0x12, 0x34) => OprOp::Srl,
        (0x12, 0x39) => OprOp::Sll,
        (0x12, 0x3C) => OprOp::Sra,
        (0x13, 0x00) => OprOp::Mull,
        (0x13, 0x20) => OprOp::Mulq,
        _ => return None,
    })
}

fn fopr_op(opcode: u32, func: u32) -> Option<FOprOp> {
    Some(match (opcode, func) {
        (0x16, 0x0A0) => FOprOp::Addt,
        (0x16, 0x0A1) => FOprOp::Subt,
        (0x16, 0x0A2) => FOprOp::Mult,
        (0x16, 0x0A3) => FOprOp::Divt,
        (0x16, 0x0A5) => FOprOp::Cmpteq,
        (0x16, 0x0A6) => FOprOp::Cmptlt,
        (0x16, 0x0A7) => FOprOp::Cmptle,
        (0x16, 0x0AF) => FOprOp::Cvttq,
        (0x16, 0x0BE) => FOprOp::Cvtqt,
        (0x17, 0x020) => FOprOp::Cpys,
        (0x17, 0x021) => FOprOp::Cpysn,
        _ => return None,
    })
}

/// Decodes one 32-bit machine word.
///
/// # Errors
///
/// Returns [`DecodeError`] if the word is not in the implemented subset.
pub fn decode(word: u32) -> Result<Inst, DecodeError> {
    let opcode = word >> 26;
    let err = DecodeError { word };

    if opcode == 0 {
        let func = word & 0x03FF_FFFF;
        return match func {
            0x555 => Ok(Inst::Pal { op: PalOp::Halt }),
            0x556 => Ok(Inst::Pal { op: PalOp::WriteInt }),
            _ => Err(err),
        };
    }

    if let Some(op) = mem_op(opcode) {
        return Ok(Inst::Mem {
            op,
            ra: reg(word >> 21),
            rb: reg(word >> 16),
            disp: (word & 0xFFFF) as u16 as i16,
        });
    }

    if let Some(op) = br_op(opcode) {
        // Sign-extend the 21-bit word displacement.
        let disp = ((word & 0x001F_FFFF) as i32) << 11 >> 11;
        return Ok(Inst::Br { op, ra: reg(word >> 21), disp });
    }

    if opcode == 0x1A {
        let op = match (word >> 14) & 3 {
            0 => JmpOp::Jmp,
            1 => JmpOp::Jsr,
            2 => JmpOp::Ret,
            _ => return Err(err),
        };
        return Ok(Inst::Jmp {
            op,
            ra: reg(word >> 21),
            rb: reg(word >> 16),
            hint: (word & 0x3FFF) as u16,
        });
    }

    if matches!(opcode, 0x10..=0x13) {
        let func = (word >> 5) & 0x7F;
        let op = opr_op(opcode, func).ok_or(err)?;
        let rb = if word & (1 << 12) != 0 {
            Operand::Lit(((word >> 13) & 0xFF) as u8)
        } else {
            // Bits [15:13] must be zero in register form.
            if (word >> 13) & 0x7 != 0 {
                return Err(err);
            }
            Operand::Reg(reg(word >> 16))
        };
        return Ok(Inst::Opr { op, ra: reg(word >> 21), rb, rc: reg(word) });
    }

    if matches!(opcode, 0x16 | 0x17) {
        let func = (word >> 5) & 0x7FF;
        let op = fopr_op(opcode, func).ok_or(err)?;
        return Ok(Inst::FOpr {
            op,
            fa: reg(word >> 21),
            fb: reg(word >> 16),
            fc: reg(word),
        });
    }

    Err(err)
}

/// Decodes a little-endian byte slice into instructions.
///
/// # Errors
///
/// Returns [`DecodeError`] on the first undecodable word. The slice length
/// must be a multiple of 4 (checked by the caller; trailing bytes are an
/// object-format error, not a decode error).
///
/// # Panics
///
/// Panics if `bytes.len()` is not a multiple of 4.
pub fn decode_all(bytes: &[u8]) -> Result<Vec<Inst>, DecodeError> {
    assert!(bytes.len().is_multiple_of(4), "text section length not a multiple of 4");
    bytes
        .chunks_exact(4)
        .map(|c| decode(u32::from_le_bytes([c[0], c[1], c[2], c[3]])))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;

    fn roundtrip(inst: Inst) {
        let word = encode(inst);
        assert_eq!(decode(word), Ok(inst), "word {word:#010x}");
    }

    #[test]
    fn roundtrip_representative_instructions() {
        use crate::reg::Reg;
        let r1 = Reg::new(1);
        let r2 = Reg::new(2);
        let r3 = Reg::new(3);
        for inst in [
            Inst::nop(),
            Inst::unop(),
            Inst::fnop(),
            Inst::lda(Reg::SP, -32, Reg::SP),
            Inst::ldah(Reg::GP, 8192, Reg::PV),
            Inst::ldq(Reg::PV, 144, Reg::GP),
            Inst::stq(Reg::RA, 0, Reg::SP),
            Inst::jsr(Reg::RA, Reg::PV),
            Inst::ret(),
            Inst::Br { op: BrOp::Bsr, ra: Reg::RA, disp: 12345 },
            Inst::Br { op: BrOp::Bne, ra: r1, disp: -7 },
            Inst::Br { op: BrOp::Fblt, ra: r2, disp: 0 },
            Inst::Opr { op: OprOp::Addq, ra: r1, rb: Operand::Reg(r2), rc: r3 },
            Inst::Opr { op: OprOp::Subq, ra: r1, rb: Operand::Lit(255), rc: r3 },
            Inst::Opr { op: OprOp::Sll, ra: r1, rb: Operand::Lit(3), rc: r1 },
            Inst::Opr { op: OprOp::Cmovne, ra: r1, rb: Operand::Reg(r2), rc: r3 },
            Inst::FOpr { op: FOprOp::Divt, fa: r1, fb: r2, fc: r3 },
            Inst::FOpr { op: FOprOp::Cvtqt, fa: Reg::ZERO, fb: r2, fc: r3 },
            Inst::Mem { op: MemOp::Ldt, ra: r1, rb: Reg::SP, disp: 16 },
            Inst::Pal { op: PalOp::Halt },
            Inst::Pal { op: PalOp::WriteInt },
        ] {
            roundtrip(inst);
        }
    }

    #[test]
    fn garbage_word_is_rejected() {
        assert!(decode(0x0000_0001).is_err()); // PAL with unknown function
        assert!(decode(0x5000_0000).is_err()); // opcode 0x14 unassigned in subset
        assert!(decode(0x7C00_0000).is_err()); // opcode 0x1F unassigned in subset
    }

    #[test]
    fn reserved_bits_in_register_operate_are_rejected() {
        // Register-form operate with nonzero SBZ bits [15:13].
        let word = encode(Inst::mov(Reg::new(2), Reg::new(3))) | (0b101 << 13);
        assert!(decode(word).is_err());
    }

    #[test]
    fn decode_all_roundtrips_sequences() {
        let insts = vec![Inst::nop(), Inst::ret(), Inst::unop()];
        let bytes = crate::encode::encode_all(&insts);
        assert_eq!(decode_all(&bytes).unwrap(), insts);
    }

    #[test]
    fn branch_sign_extension() {
        let w = encode(Inst::Br { op: BrOp::Br, ra: Reg::ZERO, disp: -(1 << 20) });
        match decode(w).unwrap() {
            Inst::Br { disp, .. } => assert_eq!(disp, -(1 << 20)),
            other => panic!("decoded {other:?}"),
        }
    }
}
