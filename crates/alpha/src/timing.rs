//! Latency and dual-issue classification for a 21064-class (EV4) pipeline.
//!
//! The paper's dynamic measurements were taken on a DECstation 3000 Model 400,
//! a dual-issue Alpha 21064. Two properties of that machine drive the paper's
//! results and are modeled here and in `om-sim`:
//!
//! * **load latency** — removing an address load saves its issue slot *and*
//!   the latency its consumers waited out (or lets the slot hide some other
//!   latency, which is why nullified no-ops are often free);
//! * **dual issue with alignment** — the 21064 can issue two instructions per
//!   cycle only when they sit in the same aligned quadword and fall into
//!   compatible pipes, which is why OM-full quadword-aligns the targets of
//!   backward branches.

use crate::inst::{Inst, MemOp};

/// Issue-pipe classification used by the pairing rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IssueClass {
    /// Integer operate instructions (E-box).
    IntOp,
    /// Loads, stores, and load-address operations (A-box).
    Mem,
    /// Floating-point operates (F-box).
    FpOp,
    /// Branches, jumps, and PAL calls (B-box).
    Branch,
}

/// Returns the issue class of an instruction.
pub fn issue_class(inst: &Inst) -> IssueClass {
    match inst {
        Inst::Mem { .. } => IssueClass::Mem,
        Inst::Opr { .. } => IssueClass::IntOp,
        Inst::FOpr { .. } => IssueClass::FpOp,
        Inst::Br { .. } | Inst::Jmp { .. } | Inst::Pal { .. } => IssueClass::Branch,
    }
}

/// Result latency in cycles: the number of cycles after issue before a
/// dependent instruction can issue. 1 means back-to-back issue is fine.
pub fn latency(inst: &Inst) -> u32 {
    match inst {
        Inst::Mem { op, .. } => match op {
            // LDA/LDAH execute in the integer pipeline: single cycle.
            MemOp::Lda | MemOp::Ldah => 1,
            // D-cache hit latency on the 21064.
            _ if op.is_load() => 3,
            _ => 1,
        },
        Inst::Opr { op, .. } => {
            if op.is_mul() {
                // 21064 integer multiply is not pipelined and very slow.
                21
            } else {
                1
            }
        }
        Inst::FOpr { op, .. } => match op {
            crate::inst::FOprOp::Divt => 31,
            _ => 6,
        },
        Inst::Br { .. } | Inst::Jmp { .. } | Inst::Pal { .. } => 1,
    }
}

/// Dual-issue pairing rule: may `first` and `second` (in program order, with
/// `first` at an 8-byte-aligned address) issue in the same cycle?
///
/// The model follows the EV4's practical constraints: the two instructions
/// must use different pipes, at most one may access memory, at most one may be
/// a branch, and the branch must be the second of the pair.
pub fn can_dual_issue(first: &Inst, second: &Inst) -> bool {
    use IssueClass::*;
    match (issue_class(first), issue_class(second)) {
        (a, b) if a == b => false,
        (Branch, _) => false,
        (IntOp, Mem) | (Mem, IntOp) => true,
        (IntOp, FpOp) | (FpOp, IntOp) => true,
        (FpOp, Mem) | (Mem, FpOp) => true,
        (_, Branch) => true,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{BrOp, Operand, OprOp};
    use crate::reg::Reg;

    #[test]
    fn loads_have_multicycle_latency() {
        assert_eq!(latency(&Inst::ldq(Reg::new(1), 0, Reg::GP)), 3);
        assert_eq!(latency(&Inst::lda(Reg::new(1), 0, Reg::GP)), 1);
    }

    #[test]
    fn multiply_is_slow() {
        let mul = Inst::Opr {
            op: OprOp::Mulq,
            ra: Reg::new(1),
            rb: Operand::Reg(Reg::new(2)),
            rc: Reg::new(3),
        };
        assert!(latency(&mul) > 10);
    }

    #[test]
    fn int_and_mem_pair() {
        let add = Inst::mov(Reg::new(1), Reg::new(2));
        let load = Inst::ldq(Reg::new(3), 0, Reg::GP);
        assert!(can_dual_issue(&add, &load));
        assert!(can_dual_issue(&load, &add));
    }

    #[test]
    fn same_class_does_not_pair() {
        let l1 = Inst::ldq(Reg::new(1), 0, Reg::GP);
        let l2 = Inst::ldq(Reg::new(2), 8, Reg::GP);
        assert!(!can_dual_issue(&l1, &l2));
        let a1 = Inst::mov(Reg::new(1), Reg::new(2));
        let a2 = Inst::mov(Reg::new(3), Reg::new(4));
        assert!(!can_dual_issue(&a1, &a2));
    }

    #[test]
    fn branch_must_be_second() {
        let br = Inst::Br { op: BrOp::Br, ra: Reg::ZERO, disp: 0 };
        let add = Inst::mov(Reg::new(1), Reg::new(2));
        assert!(can_dual_issue(&add, &br));
        assert!(!can_dual_issue(&br, &add));
    }

    #[test]
    fn issue_classes() {
        assert_eq!(issue_class(&Inst::nop()), IssueClass::IntOp);
        assert_eq!(issue_class(&Inst::unop()), IssueClass::Mem);
        assert_eq!(issue_class(&Inst::fnop()), IssueClass::FpOp);
        assert_eq!(issue_class(&Inst::ret()), IssueClass::Branch);
    }
}
