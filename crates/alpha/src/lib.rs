//! Alpha AXP instruction-set subset for the OM link-time-optimization
//! reproduction (Srivastava & Wall, PLDI 1994).
//!
//! This crate is the bottom of the stack: a format-level instruction model
//! ([`Inst`]), binary [`encode()`](encode())/[`decode()`](decode()), a disassembler, register
//! define/use summaries ([`Effects`]) for dependence testing, and 21064-class
//! latency/dual-issue tables used by both the compile-time scheduler and the
//! `om-sim` timing model.
//!
//! # Example
//!
//! ```
//! use om_alpha::{Inst, Reg, encode::encode, decode::decode};
//!
//! // The address load of a typical AXP call sequence: ldq pv, 144(gp)
//! let address_load = Inst::ldq(Reg::PV, 144, Reg::GP);
//! let word = encode(address_load);
//! assert_eq!(decode(word), Ok(address_load));
//! assert_eq!(address_load.to_string(), "ldq pv, 144(gp)");
//! ```

pub mod decode;
pub mod disasm;
pub mod effects;
pub mod encode;
pub mod inst;
pub mod reg;
pub mod timing;

pub use decode::{decode, decode_all, DecodeError};
pub use effects::Effects;
pub use encode::{encode, encode_all};
pub use inst::{BrOp, FOprOp, Inst, JmpOp, MemOp, Operand, OprOp, PalOp};
pub use reg::Reg;
