//! Register define/use sets, used by the compile-time scheduler, OM's
//! transformations, and the rescheduler to reason about dependences.
//!
//! Sets are 32-bit masks over register numbers, kept separately for the
//! integer and floating-point files. `r31`/`f31` never appear in any set
//! (reads of the zero register carry no dependence and writes are discarded).

use crate::inst::{Inst, JmpOp, MemOp, Operand, PalOp};
use crate::reg::Reg;

/// Define/use summary of a single instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Effects {
    /// Integer registers read.
    pub int_uses: u32,
    /// Integer registers written.
    pub int_defs: u32,
    /// Floating-point registers read.
    pub fp_uses: u32,
    /// Floating-point registers written.
    pub fp_defs: u32,
    /// True if the instruction reads memory.
    pub mem_read: bool,
    /// True if the instruction writes memory.
    pub mem_write: bool,
    /// True for control transfers (branches, jumps, halt).
    pub control: bool,
}

fn bit(r: Reg) -> u32 {
    if r.is_zero() {
        0
    } else {
        1 << r.number()
    }
}

impl Effects {
    /// Computes the define/use summary of `inst`.
    pub fn of(inst: &Inst) -> Effects {
        let mut e = Effects::default();
        match *inst {
            Inst::Mem { op, ra, rb, .. } => {
                e.int_uses |= bit(rb);
                match op {
                    MemOp::Lda | MemOp::Ldah => e.int_defs |= bit(ra),
                    MemOp::Ldl | MemOp::Ldq | MemOp::LdqU => {
                        e.int_defs |= bit(ra);
                        e.mem_read = true;
                    }
                    MemOp::Ldt => {
                        e.fp_defs |= bit(ra);
                        e.mem_read = true;
                    }
                    MemOp::Stl | MemOp::Stq => {
                        e.int_uses |= bit(ra);
                        e.mem_write = true;
                    }
                    MemOp::Stt => {
                        e.fp_uses |= bit(ra);
                        e.mem_write = true;
                    }
                }
            }
            Inst::Br { op, ra, .. } => {
                e.control = true;
                if op.is_unconditional() {
                    // BR/BSR write the return address.
                    e.int_defs |= bit(ra);
                } else if op.ra_is_fp() {
                    e.fp_uses |= bit(ra);
                } else {
                    e.int_uses |= bit(ra);
                }
            }
            Inst::Jmp { op, ra, rb, .. } => {
                e.control = true;
                e.int_uses |= bit(rb);
                if !matches!(op, JmpOp::Ret) || !ra.is_zero() {
                    e.int_defs |= bit(ra);
                }
            }
            Inst::Opr { op, ra, rb, rc } => {
                e.int_uses |= bit(ra);
                if let Operand::Reg(r) = rb {
                    e.int_uses |= bit(r);
                }
                if op.is_cmov() {
                    // A conditional move also reads its destination.
                    e.int_uses |= bit(rc);
                }
                e.int_defs |= bit(rc);
            }
            Inst::FOpr { op, fa, fb, fc } => {
                e.fp_uses |= bit(fa) | bit(fb);
                let _ = op;
                e.fp_defs |= bit(fc);
            }
            Inst::Pal { op } => match op {
                PalOp::Halt => {
                    e.control = true;
                    e.int_uses |= bit(Reg::V0);
                }
                PalOp::WriteInt => {
                    e.int_uses |= bit(Reg::A0);
                }
            },
        }
        e
    }

    /// True if `self` must stay ordered after `earlier` (RAW, WAR, WAW on a
    /// register file, any memory conflict, or either being a control
    /// transfer). This is the dependence test both schedulers use.
    pub fn depends_on(&self, earlier: &Effects) -> bool {
        if self.control || earlier.control {
            return true;
        }
        // Register hazards.
        if self.int_uses & earlier.int_defs != 0
            || self.int_defs & earlier.int_uses != 0
            || self.int_defs & earlier.int_defs != 0
            || self.fp_uses & earlier.fp_defs != 0
            || self.fp_defs & earlier.fp_uses != 0
            || self.fp_defs & earlier.fp_defs != 0
        {
            return true;
        }
        // Memory hazards: without alias analysis (the paper notes OM lacks
        // the compiler's alias information), loads may not cross stores and
        // stores may not cross each other.
        if (self.mem_read && earlier.mem_write)
            || (self.mem_write && earlier.mem_read)
            || (self.mem_write && earlier.mem_write)
        {
            return true;
        }
        false
    }

    /// True if the instruction reads integer register `r`.
    pub fn reads_int(&self, r: Reg) -> bool {
        self.int_uses & bit(r) != 0
    }

    /// True if the instruction writes integer register `r`.
    pub fn writes_int(&self, r: Reg) -> bool {
        self.int_defs & bit(r) != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{BrOp, OprOp};

    #[test]
    fn load_reads_base_and_memory() {
        let e = Effects::of(&Inst::ldq(Reg::PV, 144, Reg::GP));
        assert!(e.reads_int(Reg::GP));
        assert!(e.writes_int(Reg::PV));
        assert!(e.mem_read && !e.mem_write);
    }

    #[test]
    fn store_reads_value_and_writes_memory() {
        let e = Effects::of(&Inst::stq(Reg::RA, 0, Reg::SP));
        assert!(e.reads_int(Reg::RA) && e.reads_int(Reg::SP));
        assert_eq!(e.int_defs, 0);
        assert!(e.mem_write);
    }

    #[test]
    fn zero_register_carries_no_dependence() {
        let e = Effects::of(&Inst::nop());
        assert_eq!(e.int_uses, 0);
        assert_eq!(e.int_defs, 0);
        let e = Effects::of(&Inst::unop());
        assert_eq!((e.int_uses, e.int_defs), (0, 0));
    }

    #[test]
    fn raw_dependence_detected() {
        let def = Effects::of(&Inst::ldq(Reg::new(1), 0, Reg::GP));
        let use_ = Effects::of(&Inst::Opr {
            op: OprOp::Addq,
            ra: Reg::new(1),
            rb: Operand::Lit(1),
            rc: Reg::new(2),
        });
        assert!(use_.depends_on(&def));
        assert!(!def.depends_on(&Effects::of(&Inst::nop())));
    }

    #[test]
    fn stores_do_not_reorder() {
        let s1 = Effects::of(&Inst::stq(Reg::new(1), 0, Reg::SP));
        let s2 = Effects::of(&Inst::stq(Reg::new(2), 8, Reg::SP));
        assert!(s2.depends_on(&s1));
    }

    #[test]
    fn independent_loads_may_reorder() {
        let l1 = Effects::of(&Inst::ldq(Reg::new(1), 0, Reg::GP));
        let l2 = Effects::of(&Inst::ldq(Reg::new(2), 8, Reg::GP));
        assert!(!l2.depends_on(&l1));
    }

    #[test]
    fn control_serializes() {
        let br = Effects::of(&Inst::Br { op: BrOp::Br, ra: Reg::ZERO, disp: 0 });
        let add = Effects::of(&Inst::mov(Reg::new(1), Reg::new(2)));
        assert!(add.depends_on(&br));
        assert!(br.depends_on(&add));
    }

    #[test]
    fn bsr_defines_return_address() {
        let e = Effects::of(&Inst::Br { op: BrOp::Bsr, ra: Reg::RA, disp: 5 });
        assert!(e.writes_int(Reg::RA));
        assert!(e.control);
    }

    #[test]
    fn cmov_reads_destination() {
        let e = Effects::of(&Inst::Opr {
            op: OprOp::Cmovne,
            ra: Reg::new(1),
            rb: Operand::Reg(Reg::new(2)),
            rc: Reg::new(3),
        });
        assert!(e.reads_int(Reg::new(3)));
        assert!(e.writes_int(Reg::new(3)));
    }
}
