//! Instruction encoding to 32-bit machine words.
//!
//! Opcode and function-code assignments follow the Alpha Architecture
//! Reference Manual (Sites, ed., 1992) for every instruction in the subset, so
//! dumps of our object code line up with real Alpha disassembly. PALcode
//! function codes for the simulator's pseudo-OS live outside the architected
//! range and are documented on [`Inst::Pal`](crate::inst::Inst).

use crate::inst::{BrOp, FOprOp, Inst, JmpOp, MemOp, Operand, OprOp, PalOp};

/// Returns the 6-bit major opcode for a memory-format operation.
pub fn mem_opcode(op: MemOp) -> u32 {
    match op {
        MemOp::Lda => 0x08,
        MemOp::Ldah => 0x09,
        MemOp::LdqU => 0x0B,
        MemOp::Ldt => 0x23,
        MemOp::Stt => 0x27,
        MemOp::Ldl => 0x28,
        MemOp::Ldq => 0x29,
        MemOp::Stl => 0x2C,
        MemOp::Stq => 0x2D,
    }
}

/// Returns the 6-bit major opcode for a branch-format operation.
pub fn br_opcode(op: BrOp) -> u32 {
    match op {
        BrOp::Br => 0x30,
        BrOp::Fbeq => 0x31,
        BrOp::Fblt => 0x32,
        BrOp::Bsr => 0x34,
        BrOp::Fbne => 0x35,
        BrOp::Fbge => 0x36,
        BrOp::Blbc => 0x38,
        BrOp::Beq => 0x39,
        BrOp::Blt => 0x3A,
        BrOp::Ble => 0x3B,
        BrOp::Blbs => 0x3C,
        BrOp::Bne => 0x3D,
        BrOp::Bge => 0x3E,
        BrOp::Bgt => 0x3F,
    }
}

/// Returns `(major opcode, 7-bit function code)` for an integer operate.
pub fn opr_codes(op: OprOp) -> (u32, u32) {
    match op {
        OprOp::Addl => (0x10, 0x00),
        OprOp::Subl => (0x10, 0x09),
        OprOp::Cmpult => (0x10, 0x1D),
        OprOp::Addq => (0x10, 0x20),
        OprOp::S4Addq => (0x10, 0x22),
        OprOp::Subq => (0x10, 0x29),
        OprOp::Cmpeq => (0x10, 0x2D),
        OprOp::S8Addq => (0x10, 0x32),
        OprOp::Cmpule => (0x10, 0x3D),
        OprOp::Cmplt => (0x10, 0x4D),
        OprOp::Cmple => (0x10, 0x6D),
        OprOp::And => (0x11, 0x00),
        OprOp::Bic => (0x11, 0x08),
        OprOp::Bis => (0x11, 0x20),
        OprOp::Cmoveq => (0x11, 0x24),
        OprOp::Cmovne => (0x11, 0x26),
        OprOp::Ornot => (0x11, 0x28),
        OprOp::Xor => (0x11, 0x40),
        OprOp::Cmovlt => (0x11, 0x44),
        OprOp::Cmovge => (0x11, 0x46),
        OprOp::Eqv => (0x11, 0x48),
        OprOp::Srl => (0x12, 0x34),
        OprOp::Sll => (0x12, 0x39),
        OprOp::Sra => (0x12, 0x3C),
        OprOp::Mull => (0x13, 0x00),
        OprOp::Mulq => (0x13, 0x20),
    }
}

/// Returns `(major opcode, 11-bit function code)` for a floating operate.
pub fn fopr_codes(op: FOprOp) -> (u32, u32) {
    match op {
        FOprOp::Addt => (0x16, 0x0A0),
        FOprOp::Subt => (0x16, 0x0A1),
        FOprOp::Mult => (0x16, 0x0A2),
        FOprOp::Divt => (0x16, 0x0A3),
        FOprOp::Cmpteq => (0x16, 0x0A5),
        FOprOp::Cmptlt => (0x16, 0x0A6),
        FOprOp::Cmptle => (0x16, 0x0A7),
        FOprOp::Cvttq => (0x16, 0x0AF),
        FOprOp::Cvtqt => (0x16, 0x0BE),
        FOprOp::Cpys => (0x17, 0x020),
        FOprOp::Cpysn => (0x17, 0x021),
    }
}

/// Returns the 26-bit PALcode function for a PAL operation.
///
/// These are simulator-defined (outside the architected privileged range).
pub fn pal_code(op: PalOp) -> u32 {
    match op {
        PalOp::Halt => 0x555,
        PalOp::WriteInt => 0x556,
    }
}

/// Jump-format function code in bits `[15:14]`.
pub fn jmp_code(op: JmpOp) -> u32 {
    match op {
        JmpOp::Jmp => 0,
        JmpOp::Jsr => 1,
        JmpOp::Ret => 2,
    }
}

/// Encodes an instruction into its 32-bit machine word.
///
/// # Panics
///
/// Panics if a branch displacement does not fit in its signed 21-bit field;
/// the layout passes are responsible for keeping displacements in range
/// (and the linker/OM check reachability before choosing `Bsr`).
pub fn encode(inst: Inst) -> u32 {
    match inst {
        Inst::Mem { op, ra, rb, disp } => {
            mem_opcode(op) << 26
                | u32::from(ra.number()) << 21
                | u32::from(rb.number()) << 16
                | u32::from(disp as u16)
        }
        Inst::Br { op, ra, disp } => {
            assert!(
                (-(1 << 20)..(1 << 20)).contains(&disp),
                "branch displacement {disp} out of 21-bit range"
            );
            br_opcode(op) << 26
                | u32::from(ra.number()) << 21
                | (disp as u32 & 0x001F_FFFF)
        }
        Inst::Jmp { op, ra, rb, hint } => {
            0x1A << 26
                | u32::from(ra.number()) << 21
                | u32::from(rb.number()) << 16
                | jmp_code(op) << 14
                | u32::from(hint & 0x3FFF)
        }
        Inst::Opr { op, ra, rb, rc } => {
            let (opc, func) = opr_codes(op);
            let mid = match rb {
                Operand::Reg(r) => u32::from(r.number()) << 16,
                Operand::Lit(l) => u32::from(l) << 13 | 1 << 12,
            };
            opc << 26
                | u32::from(ra.number()) << 21
                | mid
                | func << 5
                | u32::from(rc.number())
        }
        Inst::FOpr { op, fa, fb, fc } => {
            let (opc, func) = fopr_codes(op);
            opc << 26
                | u32::from(fa.number()) << 21
                | u32::from(fb.number()) << 16
                | func << 5
                | u32::from(fc.number())
        }
        Inst::Pal { op } => pal_code(op) & 0x03FF_FFFF,
    }
}

/// Encodes a sequence of instructions into little-endian bytes, the in-memory
/// representation used by `.text` sections.
pub fn encode_all(insts: &[Inst]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(insts.len() * 4);
    for &i in insts {
        bytes.extend_from_slice(&encode(i).to_le_bytes());
    }
    bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::Reg;

    #[test]
    fn nop_encodes_to_canonical_word() {
        // bis r31, r31, r31 == 0x47FF041F, the well-known Alpha NOP.
        assert_eq!(encode(Inst::nop()), 0x47FF_041F);
    }

    #[test]
    fn unop_encodes_to_canonical_word() {
        // ldq_u r31, 0(r31) == 0x2FFF0000.
        assert_eq!(encode(Inst::unop()), 0x2FFF_0000);
    }

    #[test]
    fn negative_displacement_wraps_into_field() {
        let w = encode(Inst::lda(Reg::SP, -32, Reg::SP));
        assert_eq!(w & 0xFFFF, 0xFFE0);
        assert_eq!(w >> 26, 0x08);
    }

    #[test]
    fn branch_displacement_sign_bits() {
        let w = encode(Inst::Br { op: BrOp::Br, ra: Reg::ZERO, disp: -1 });
        assert_eq!(w & 0x001F_FFFF, 0x001F_FFFF);
    }

    #[test]
    #[should_panic(expected = "21-bit range")]
    fn branch_overflow_panics() {
        let _ = encode(Inst::Br { op: BrOp::Br, ra: Reg::ZERO, disp: 1 << 20 });
    }

    #[test]
    fn literal_operand_sets_bit_12() {
        let w = encode(Inst::mov_lit(42, Reg::V0));
        assert_eq!(w & (1 << 12), 1 << 12);
        assert_eq!((w >> 13) & 0xFF, 42);
    }

    #[test]
    fn encode_all_is_little_endian() {
        let bytes = encode_all(&[Inst::nop()]);
        assert_eq!(bytes, vec![0x1F, 0x04, 0xFF, 0x47]);
    }
}
