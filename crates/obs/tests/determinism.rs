//! The counter determinism contract: merging per-thread sinks at any thread
//! width yields byte-identical counter JSON, with wall-clock data excluded.

use om_obs::{count, span, timer_ns, Sink, Trace};

/// A deterministic workload: each worker records counters derived only from
/// its input slice (never from time or scheduling), plus spans and timers
/// that intentionally carry run-varying wall-clock noise.
fn work(items: &[u64]) {
    for &v in items {
        let mut s = span("work.item");
        s.arg("value", v);
        count("work.items", 1);
        count("work.sum", v);
        if v % 3 == 0 {
            count("work.multiples_of_three", 1);
        }
        timer_ns("work.wall", v % 7 + 1);
    }
}

/// Runs the workload split across `jobs` threads and returns the merged
/// canonical counter JSON.
fn run_at_width(items: &[u64], jobs: usize) -> String {
    let trace = Trace::new();
    std::thread::scope(|scope| {
        for chunk in items.chunks(items.len().div_ceil(jobs).max(1)) {
            let trace = trace.clone();
            scope.spawn(move || {
                // Each worker records into its own detached sink, merged at
                // the end — the same shape scripts/ci.sh's --jobs pipeline
                // uses, and the worst case for ordering effects.
                let local = Trace::new();
                {
                    let _g = local.install();
                    work(chunk);
                }
                trace.absorb(&local.sink());
            });
        }
    });
    trace.sink().counters_json()
}

#[test]
fn merged_counters_are_byte_identical_at_any_jobs_width() {
    let items: Vec<u64> = (0..257u64).map(|i| i.wrapping_mul(2654435761) >> 7).collect();
    let reference = run_at_width(&items, 1);
    assert!(reference.contains("\"work.items\":257"), "{reference}");
    for jobs in [2, 3, 4, 7, 16, 257, 1000] {
        let got = run_at_width(&items, jobs);
        assert_eq!(got, reference, "jobs={jobs} diverged");
    }
}

#[test]
fn wall_clock_data_never_reaches_counter_json() {
    let trace = Trace::new();
    {
        let _g = trace.install();
        work(&[1, 2, 3]);
    }
    let json = trace.sink().counters_json();
    assert!(!json.contains("work.wall"), "timer leaked into counters: {json}");
    assert!(!json.contains("ns"), "{json}");
    // But both live in the full sink for reports.
    let sink = trace.sink();
    assert!(sink.timers_ns.contains_key("work.wall"));
    assert_eq!(sink.spans.len(), 3);
}

#[test]
fn absorb_matches_manual_merge() {
    let a = Trace::new();
    {
        let _g = a.install();
        work(&[10, 11]);
    }
    let b = Trace::new();
    {
        let _g = b.install();
        work(&[12]);
    }
    let combined = Trace::new();
    combined.absorb(&a.sink());
    combined.absorb(&b.sink());

    let mut manual = Sink::default();
    manual.merge(&b.sink());
    manual.merge(&a.sink());
    assert_eq!(combined.sink().counters_json(), manual.counters_json());
}
