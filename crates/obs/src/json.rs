//! A minimal JSON reader and the chrome-trace structural validator.
//!
//! The workspace is fully offline (no serde); this is the small, strict
//! parser the `omtrace check` CI step and the trace tests use to prove an
//! emitted `--trace-json` file is well-formed and that its spans nest
//! properly. It parses the full JSON grammar except `\uXXXX` surrogate
//! pairs (accepted, decoded as the raw code unit when lone).

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Object field access (None on non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses one JSON document (rejecting trailing garbage).
///
/// # Errors
///
/// Returns a position-tagged message for any syntax violation.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut at = 0usize;
    let v = value(bytes, &mut at)?;
    skip_ws(bytes, &mut at);
    if at != bytes.len() {
        return Err(format!("trailing garbage at byte {at}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], at: &mut usize) {
    while *at < b.len() && matches!(b[*at], b' ' | b'\t' | b'\n' | b'\r') {
        *at += 1;
    }
}

fn expect(b: &[u8], at: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, at);
    if b.get(*at) == Some(&c) {
        *at += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {at}", c as char))
    }
}

fn value(b: &[u8], at: &mut usize) -> Result<JsonValue, String> {
    skip_ws(b, at);
    match b.get(*at) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *at += 1;
            let mut m = BTreeMap::new();
            skip_ws(b, at);
            if b.get(*at) == Some(&b'}') {
                *at += 1;
                return Ok(JsonValue::Obj(m));
            }
            loop {
                skip_ws(b, at);
                let k = string(b, at)?;
                expect(b, at, b':')?;
                let v = value(b, at)?;
                m.insert(k, v);
                skip_ws(b, at);
                match b.get(*at) {
                    Some(b',') => *at += 1,
                    Some(b'}') => {
                        *at += 1;
                        return Ok(JsonValue::Obj(m));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {at}")),
                }
            }
        }
        Some(b'[') => {
            *at += 1;
            let mut v = Vec::new();
            skip_ws(b, at);
            if b.get(*at) == Some(&b']') {
                *at += 1;
                return Ok(JsonValue::Arr(v));
            }
            loop {
                v.push(value(b, at)?);
                skip_ws(b, at);
                match b.get(*at) {
                    Some(b',') => *at += 1,
                    Some(b']') => {
                        *at += 1;
                        return Ok(JsonValue::Arr(v));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {at}")),
                }
            }
        }
        Some(b'"') => string(b, at).map(JsonValue::Str),
        Some(b't') => lit(b, at, "true").map(|()| JsonValue::Bool(true)),
        Some(b'f') => lit(b, at, "false").map(|()| JsonValue::Bool(false)),
        Some(b'n') => lit(b, at, "null").map(|()| JsonValue::Null),
        Some(_) => number(b, at),
    }
}

fn lit(b: &[u8], at: &mut usize, word: &str) -> Result<(), String> {
    if b[*at..].starts_with(word.as_bytes()) {
        *at += word.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {at}"))
    }
}

fn number(b: &[u8], at: &mut usize) -> Result<JsonValue, String> {
    let start = *at;
    if b.get(*at) == Some(&b'-') {
        *at += 1;
    }
    while *at < b.len() && matches!(b[*at], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *at += 1;
    }
    let s = std::str::from_utf8(&b[start..*at]).map_err(|_| "non-utf8 number")?;
    s.parse::<f64>()
        .map(JsonValue::Num)
        .map_err(|_| format!("bad number `{s}` at byte {start}"))
}

fn string(b: &[u8], at: &mut usize) -> Result<String, String> {
    if b.get(*at) != Some(&b'"') {
        return Err(format!("expected string at byte {at}"));
    }
    *at += 1;
    let mut out = String::new();
    loop {
        match b.get(*at) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *at += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *at += 1;
                match b.get(*at) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*at + 1..*at + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let cp = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                        out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        *at += 4;
                    }
                    _ => return Err(format!("bad escape at byte {at}")),
                }
                *at += 1;
            }
            Some(&c) => {
                // Multi-byte UTF-8 passes through unchanged.
                let len = match c {
                    0x00..=0x1f => return Err(format!("raw control byte at {at}")),
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let chunk = b.get(*at..*at + len).ok_or("truncated utf8")?;
                out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                *at += len;
            }
        }
    }
}

/// One span event pulled out of a chrome trace for validation.
#[derive(Debug, Clone)]
struct CheckSpan {
    name: String,
    tid: u64,
    start: f64,
    end: f64,
    depth: u64,
}

/// Validates a `--trace-json` document: parses, checks every `traceEvents`
/// entry is a well-formed complete/metadata event, and proves the complete
/// spans nest properly per thread (no partial overlap). Returns the span
/// names found.
///
/// # Errors
///
/// Returns a description of the first structural violation.
pub fn validate_chrome_trace(text: &str) -> Result<Vec<String>, String> {
    let doc = parse(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_arr)
        .ok_or("missing traceEvents array")?;
    doc.get("counters")
        .and_then(|c| match c {
            JsonValue::Obj(_) => Some(()),
            _ => None,
        })
        .ok_or("missing counters object")?;

    let mut spans: Vec<CheckSpan> = Vec::new();
    for (i, e) in events.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(JsonValue::as_str)
            .ok_or(format!("event {i}: missing ph"))?;
        match ph {
            "M" => continue, // metadata
            "X" => {}
            other => return Err(format!("event {i}: unsupported ph `{other}`")),
        }
        let name = e
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or(format!("event {i}: missing name"))?;
        if name.is_empty() {
            return Err(format!("event {i}: empty name"));
        }
        let num = |key: &str| {
            e.get(key)
                .and_then(JsonValue::as_f64)
                .ok_or(format!("event {i}: missing {key}"))
        };
        let (ts, dur, tid) = (num("ts")?, num("dur")?, num("tid")?);
        if ts < 0.0 || dur < 0.0 {
            return Err(format!("event {i}: negative ts/dur"));
        }
        let depth = e
            .get("args")
            .and_then(|a| a.get("depth"))
            .and_then(JsonValue::as_f64)
            .ok_or(format!("event {i}: missing args.depth"))? as u64;
        spans.push(CheckSpan { name: name.to_string(), tid: tid as u64, start: ts, end: ts + dur, depth });
    }

    // Nesting check, per tid: sort by (start, deeper-last, longer-first) and
    // sweep with a stack. A span must be disjoint from, or fully contained
    // in, the enclosing one.
    let mut by_tid: BTreeMap<u64, Vec<&CheckSpan>> = BTreeMap::new();
    for s in &spans {
        by_tid.entry(s.tid).or_default().push(s);
    }
    for (tid, mut list) in by_tid {
        list.sort_by(|a, b| {
            a.start
                .partial_cmp(&b.start)
                .unwrap()
                .then(a.depth.cmp(&b.depth))
                .then(b.end.partial_cmp(&a.end).unwrap())
        });
        let mut stack: Vec<&CheckSpan> = Vec::new();
        for s in list {
            while let Some(top) = stack.last() {
                if s.start >= top.end {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(top) = stack.last() {
                if s.end > top.end {
                    return Err(format!(
                        "tid {tid}: span `{}` [{}, {}] partially overlaps `{}` [{}, {}]",
                        s.name, s.start, s.end, top.name, top.start, top.end
                    ));
                }
                if s.depth != top.depth + 1 {
                    return Err(format!(
                        "tid {tid}: span `{}` depth {} inside `{}` depth {}",
                        s.name, s.depth, top.name, top.depth
                    ));
                }
            } else if s.depth != 0 {
                return Err(format!(
                    "tid {tid}: top-level span `{}` claims depth {}",
                    s.name, s.depth
                ));
            }
            stack.push(s);
        }
    }

    Ok(spans.into_iter().map(|s| s.name).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Trace;

    #[test]
    fn parses_scalars_and_structures() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("-1.5e2").unwrap(), JsonValue::Num(-150.0));
        assert_eq!(parse(r#""a\nb\u0041""#).unwrap(), JsonValue::Str("a\nbA".into()));
        let v = parse(r#"{"a":[1,2,{"b":"c"}],"d":{}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert!(v.get("d").is_some());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\"}", "tru", "1 2", "\"\\x\"", "{\"a\":1,}"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn validates_a_real_trace() {
        let t = Trace::new();
        {
            let _g = t.install();
            let _a = crate::span("pipeline");
            std::thread::sleep(std::time::Duration::from_millis(1));
            {
                let _b = crate::span("pass.convert");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            {
                let _c = crate::span("pass.nullify");
            }
            crate::count("pass.convert.addr_loads_converted", 3);
        }
        let text = t.chrome_json("om");
        let names = validate_chrome_trace(&text).unwrap();
        assert!(names.contains(&"pipeline".to_string()));
        assert!(names.contains(&"pass.convert".to_string()));
        let doc = parse(&text).unwrap();
        assert_eq!(
            doc.get("counters")
                .and_then(|c| c.get("pass.convert.addr_loads_converted"))
                .and_then(JsonValue::as_f64),
            Some(3.0)
        );
    }

    #[test]
    fn flags_partial_overlap() {
        let text = r#"{"traceEvents":[
            {"name":"a","ph":"X","ts":0.0,"dur":10.0,"tid":0,"args":{"depth":0}},
            {"name":"b","ph":"X","ts":5.0,"dur":10.0,"tid":0,"args":{"depth":1}}
        ],"counters":{}}"#;
        let err = validate_chrome_trace(text).unwrap_err();
        assert!(err.contains("partially overlaps"), "{err}");
    }

    #[test]
    fn flags_depth_lies() {
        let text = r#"{"traceEvents":[
            {"name":"a","ph":"X","ts":0.0,"dur":10.0,"tid":0,"args":{"depth":0}},
            {"name":"b","ph":"X","ts":2.0,"dur":2.0,"tid":0,"args":{"depth":2}}
        ],"counters":{}}"#;
        assert!(validate_chrome_trace(text).is_err());
    }
}
