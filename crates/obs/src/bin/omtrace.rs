//! `omtrace` — validates `--trace-json` output files.
//!
//! ```text
//! omtrace check TRACE.json [--require SPAN]... [--require-counter NAME]...
//! ```
//!
//! `check` parses the file, proves every span event is well-formed and that
//! spans nest properly per thread, and (optionally) that named spans and
//! counters are present. CI runs this against a real `om --trace-json` run
//! so a malformed or flat trace fails the build, not a human squinting at
//! chrome://tracing.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => check(&args[1..]),
        _ => {
            eprintln!(
                "usage: omtrace check TRACE.json [--require SPAN]... [--require-counter NAME]..."
            );
            ExitCode::from(2)
        }
    }
}

fn check(args: &[String]) -> ExitCode {
    let mut path = None;
    let mut require_spans = Vec::new();
    let mut require_counters = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--require" => match it.next() {
                Some(name) => require_spans.push(name.clone()),
                None => return usage("--require needs a span name"),
            },
            "--require-counter" => match it.next() {
                Some(name) => require_counters.push(name.clone()),
                None => return usage("--require-counter needs a counter name"),
            },
            _ if path.is_none() => path = Some(a.clone()),
            other => return usage(&format!("unexpected argument `{other}`")),
        }
    }
    let Some(path) = path else { return usage("missing TRACE.json path") };

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("omtrace: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let names = match om_obs::validate_chrome_trace(&text) {
        Ok(names) => names,
        Err(e) => {
            eprintln!("omtrace: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    for want in &require_spans {
        if !names.iter().any(|n| n == want) {
            eprintln!("omtrace: {path}: required span `{want}` not found");
            return ExitCode::FAILURE;
        }
    }
    if !require_counters.is_empty() {
        let doc = om_obs::parse_json(&text).expect("validated above");
        let counters = doc.get("counters").expect("validated above");
        for want in &require_counters {
            if counters.get(want).is_none() {
                eprintln!("omtrace: {path}: required counter `{want}` not found");
                return ExitCode::FAILURE;
            }
        }
    }
    println!("omtrace: {path}: ok ({} spans)", names.len());
    ExitCode::SUCCESS
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("omtrace: {msg}");
    ExitCode::from(2)
}
