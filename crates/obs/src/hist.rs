//! Fixed-bucket log2 histograms — the one quantile implementation the
//! workspace uses for request latencies.
//!
//! Bucket `b` holds values whose bit length is `b` (bucket 0 holds only the
//! value 0, bucket 1 holds 1, bucket 2 holds 2–3, bucket 3 holds 4–7, …).
//! 64 buckets cover the whole `u64` range, so recording never saturates or
//! clamps a value into a neighbor. Merging is bucket-wise addition —
//! order-independent, so per-thread histograms merged at any `--jobs` width
//! produce byte-identical state.
//!
//! Quantiles are nearest-rank over the bucket cumulative counts: the
//! reported value is the selected bucket's inclusive upper bound, clamped
//! into the exactly-tracked `[min, max]` observed range. All integer math —
//! two histograms with equal state report equal quantiles on every
//! platform.

/// Number of buckets: one per possible `u64` bit length (0..=63 after
/// clamping; bit length 64 shares the top bucket).
pub const HIST_BUCKETS: usize = 64;

/// A mergeable fixed-bucket log2 histogram of `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; HIST_BUCKETS],
    total: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram { counts: [0; HIST_BUCKETS], total: 0, min: u64::MAX, max: 0 }
    }

    /// The bucket index a value lands in (its bit length, top-clamped).
    pub fn bucket_of(v: u64) -> usize {
        ((64 - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }

    /// Inclusive upper bound of `bucket` (the quantile representative).
    fn bucket_upper(bucket: usize) -> u64 {
        if bucket == 0 {
            0
        } else if bucket >= 63 {
            u64::MAX
        } else {
            (1u64 << bucket) - 1
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket_of(v)] += 1;
        self.total += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Folds `other` into `self` (bucket-wise; order-independent).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The nearest-rank `q`-quantile (`q` in `[0, 1]`), as the selected
    /// bucket's upper bound clamped into the observed `[min, max]`. Returns
    /// 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        // Nearest-rank, matching the sorted-vector convention previously
        // used by the fleet harness: index round(q * (n-1)) in a sorted
        // sample list, i.e. 1-based rank index+1.
        let rank = (q.clamp(0.0, 1.0) * (self.total - 1) as f64).round() as u64 + 1;
        let mut cum = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Self::bucket_upper(b).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median shorthand.
    pub fn p50(&self) -> u64 {
        self.quantile(0.5)
    }

    /// 99th-percentile shorthand.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// The raw bucket counts.
    pub fn counts(&self) -> &[u64; HIST_BUCKETS] {
        &self.counts
    }

    /// `(bucket, count)` pairs for the non-empty buckets — the wire and
    /// JSON representation (histograms are sparse in practice).
    pub fn nonzero(&self) -> Vec<(usize, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c != 0)
            .map(|(b, &c)| (b, c))
            .collect()
    }

    /// Rebuilds a histogram from its sparse representation.
    ///
    /// # Errors
    ///
    /// Rejects out-of-range bucket indices, duplicate buckets, overflowing
    /// totals, and `min > max` on a non-empty histogram — the wire decoder
    /// relies on this to turn malformed frames into typed errors.
    pub fn from_sparse(min: u64, max: u64, pairs: &[(usize, u64)]) -> Result<Histogram, String> {
        let mut h = Histogram::new();
        for &(b, c) in pairs {
            if b >= HIST_BUCKETS {
                return Err(format!("histogram bucket {b} out of range"));
            }
            if h.counts[b] != 0 {
                return Err(format!("duplicate histogram bucket {b}"));
            }
            h.counts[b] = c;
            h.total = h.total.checked_add(c).ok_or("histogram total overflows")?;
        }
        if h.total > 0 {
            if min > max {
                return Err(format!("histogram min {min} > max {max}"));
            }
            h.min = min;
            h.max = max;
        }
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_range() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(1023), 10);
        assert_eq!(Histogram::bucket_of(1024), 11);
        assert_eq!(Histogram::bucket_of(u64::MAX), 63);
    }

    #[test]
    fn quantiles_clamp_into_observed_range() {
        let mut h = Histogram::new();
        for _ in 0..100 {
            h.record(100);
        }
        // All samples identical: every quantile is exact.
        assert_eq!(h.p50(), 100);
        assert_eq!(h.p99(), 100);
        assert_eq!(h.quantile(0.0), 100);
        assert_eq!((h.min(), h.max()), (100, 100));
    }

    #[test]
    fn quantiles_walk_buckets() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 1000, 1001, 1002, 60000, 61000, 62000, 100_000] {
            h.record(v);
        }
        // Rank(0.5) = round(0.5*9)+1 = 6 → cumulative hits the 1024-bucket
        // (values 1000..1002 live in bucket 10, upper bound 1023).
        assert_eq!(h.p50(), 1023);
        // p99 → rank 10 → last bucket, clamped to max.
        assert_eq!(h.p99(), 100_000);
        assert_eq!(h.quantile(1.0), 100_000);
        assert_eq!(h.quantile(0.0), 1);
    }

    #[test]
    fn merge_is_order_independent() {
        let samples: Vec<u64> = (0..1000u64).map(|i| i * i % 7919).collect();
        let mut whole = Histogram::new();
        for &s in &samples {
            whole.record(s);
        }
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut c = Histogram::new();
        for (i, &s) in samples.iter().enumerate() {
            [&mut a, &mut b, &mut c][i % 3].record(s);
        }
        let mut merged = Histogram::new();
        merged.merge(&c);
        merged.merge(&a);
        merged.merge(&b);
        assert_eq!(merged, whole);
        assert_eq!(merged.p50(), whole.p50());
    }

    #[test]
    fn sparse_round_trip_and_rejection() {
        let mut h = Histogram::new();
        for v in [5u64, 9, 9, 4000] {
            h.record(v);
        }
        let back = Histogram::from_sparse(h.min(), h.max(), &h.nonzero()).unwrap();
        assert_eq!(back, h);

        assert!(Histogram::from_sparse(0, 0, &[(64, 1)]).is_err());
        assert!(Histogram::from_sparse(0, 0, &[(3, 1), (3, 1)]).is_err());
        assert!(Histogram::from_sparse(9, 5, &[(3, 1)]).is_err());
        assert!(Histogram::from_sparse(0, 1, &[(1, u64::MAX), (2, 1)]).is_err());
        // Empty histograms ignore min/max entirely.
        assert_eq!(Histogram::from_sparse(7, 3, &[]).unwrap(), Histogram::new());
    }

    #[test]
    fn empty_histogram_is_calm() {
        let h = Histogram::new();
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.count(), 0);
        assert_eq!((h.min(), h.max()), (0, 0));
    }
}
