//! Spans, counters, and timers against a thread-installed [`Trace`].
//!
//! A [`Trace`] is a cheaply-clonable handle to a shared sink. Threads that
//! want their work recorded install the handle ([`Trace::install`]) for a
//! scope; every [`span`]/[`count`]/[`timer_ns`] call in that scope records
//! into the trace, tagged with a per-install thread id. With no trace
//! installed every instrumentation site is one thread-local load and a
//! branch — the pipeline's hot paths pay nothing in the common case.
//!
//! Determinism contract: **counters** may only record input-determined
//! facts, and counter merging is addition, so the merged counter state (and
//! [`Sink::counters_json`]) is byte-identical at any thread count. Spans
//! and timers carry wall-clock time and are report-only.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One completed span: a named, timed region on one install of a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span name (dotted lowercase by convention: `pass.convert`,
    /// `link.layout`, `omd.link`).
    pub name: String,
    /// The install's thread id within its trace (dense from 0).
    pub tid: u32,
    /// Start offset from the trace epoch, nanoseconds.
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
    /// Nesting depth at record time (0 = top level). Spans on one tid are
    /// properly nested by construction (RAII guards).
    pub depth: u32,
    /// Deterministic key/value annotations (per-pass counter deltas).
    pub args: Vec<(String, u64)>,
}

/// The recorded contents of a trace: spans plus merged counters and timers.
/// A `Sink` is plain data — extract one per thread and [`Sink::merge`] them,
/// or let a shared [`Trace`] merge on the fly.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Sink {
    /// Completed spans, in completion order per thread (wall-clock;
    /// report-only).
    pub spans: Vec<SpanEvent>,
    /// Deterministic named sums.
    pub counters: BTreeMap<String, u64>,
    /// Wall-clock nanosecond totals (report-only).
    pub timers_ns: BTreeMap<String, u64>,
}

impl Sink {
    /// Folds `other` into `self`: counters and timers add, spans append.
    /// Counter merging is commutative — any merge order yields the same
    /// counter state.
    pub fn merge(&mut self, other: &Sink) {
        self.spans.extend(other.spans.iter().cloned());
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.timers_ns {
            *self.timers_ns.entry(k.clone()).or_insert(0) += v;
        }
    }

    /// The deterministic counter state as canonical JSON: sorted keys, no
    /// spans, no timers — byte-identical for identical inputs at any
    /// thread width.
    pub fn counters_json(&self) -> String {
        let mut out = String::from("{\"schema\":\"om-obs-counters/v1\",\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{v}", escape(k));
        }
        out.push_str("}}");
        out
    }
}

struct Shared {
    epoch: Instant,
    next_tid: AtomicU32,
    sink: Mutex<Sink>,
}

/// A handle to one trace. Clones share the same sink; install on any number
/// of threads concurrently.
#[derive(Clone)]
pub struct Trace {
    shared: Arc<Shared>,
}

impl Default for Trace {
    fn default() -> Trace {
        Trace::new()
    }
}

impl Trace {
    /// A fresh, empty trace whose epoch is now.
    pub fn new() -> Trace {
        Trace {
            shared: Arc::new(Shared {
                epoch: Instant::now(),
                next_tid: AtomicU32::new(0),
                sink: Mutex::new(Sink::default()),
            }),
        }
    }

    /// Installs this trace on the current thread until the guard drops.
    /// Nested installs stack: the innermost wins, and dropping restores the
    /// previous one. Each install gets a fresh dense tid.
    pub fn install(&self) -> InstallGuard {
        let tid = self.shared.next_tid.fetch_add(1, Ordering::Relaxed);
        let prev = CURRENT.with(|c| {
            c.borrow_mut().replace(Ctx { trace: self.clone(), tid, depth: 0 })
        });
        InstallGuard { prev }
    }

    /// A snapshot of everything recorded so far.
    pub fn sink(&self) -> Sink {
        self.shared.sink.lock().unwrap().clone()
    }

    /// Extracts the recorded contents, leaving the trace empty.
    pub fn take_sink(&self) -> Sink {
        std::mem::take(&mut *self.shared.sink.lock().unwrap())
    }

    /// Folds a detached [`Sink`] (e.g. from another trace's worker thread)
    /// into this trace.
    pub fn absorb(&self, sink: &Sink) {
        self.shared.sink.lock().unwrap().merge(sink);
    }

    /// Convenience: the current deterministic counter map.
    pub fn counters(&self) -> BTreeMap<String, u64> {
        self.shared.sink.lock().unwrap().counters.clone()
    }

    fn now_ns(&self) -> u64 {
        self.shared.epoch.elapsed().as_nanos() as u64
    }

    /// Renders the chrome://tracing "trace event format" JSON object:
    /// `traceEvents` holds every span as a complete (`"ph":"X"`) event with
    /// microsecond timestamps; the deterministic counters and the timers
    /// ride along as top-level objects chrome ignores.
    pub fn chrome_json(&self, process_name: &str) -> String {
        let sink = self.sink();
        let mut out = String::from("{\"traceEvents\":[");
        let _ = write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape(process_name)
        );
        for e in &sink.spans {
            let _ = write!(
                out,
                ",\n{{\"name\":\"{}\",\"cat\":\"om\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":1,\"tid\":{},\"args\":{{\"depth\":{}",
                escape(&e.name),
                us(e.start_ns),
                us(e.dur_ns),
                e.tid,
                e.depth,
            );
            for (k, v) in &e.args {
                let _ = write!(out, ",\"{}\":{v}", escape(k));
            }
            out.push_str("}}");
        }
        out.push_str("],\n\"counters\":{");
        for (i, (k, v)) in sink.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{v}", escape(k));
        }
        out.push_str("},\n\"timersNs\":{");
        for (i, (k, v)) in sink.timers_ns.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{v}", escape(k));
        }
        out.push_str("},\n\"displayTimeUnit\":\"ms\"}\n");
        out
    }

    /// A human-readable summary: per-name span totals, then counters, then
    /// timers. Span wall times vary run to run; the counter section is the
    /// deterministic part.
    pub fn summary(&self) -> String {
        let sink = self.sink();
        let mut by_name: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
        for e in &sink.spans {
            let slot = by_name.entry(&e.name).or_insert((0, 0));
            slot.0 += 1;
            slot.1 += e.dur_ns;
        }
        let mut out = String::new();
        out.push_str("spans (name, count, total ms):\n");
        for (name, (count, total)) in &by_name {
            let _ = writeln!(out, "  {name:<28} {count:>6}  {:>10.3}", *total as f64 / 1e6);
        }
        out.push_str("counters (deterministic):\n");
        for (k, v) in &sink.counters {
            let _ = writeln!(out, "  {k:<44} {v:>12}");
        }
        if !sink.timers_ns.is_empty() {
            out.push_str("timers (wall, ms):\n");
            for (k, v) in &sink.timers_ns {
                let _ = writeln!(out, "  {k:<44} {:>12.3}", *v as f64 / 1e6);
            }
        }
        out
    }
}

/// Formats nanoseconds as decimal microseconds with nanosecond precision
/// (chrome's `ts`/`dur` unit), using integer math only.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

struct Ctx {
    trace: Trace,
    tid: u32,
    depth: u32,
}

thread_local! {
    static CURRENT: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// Restores the previously-installed trace (if any) when dropped.
pub struct InstallGuard {
    prev: Option<Ctx>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            *c.borrow_mut() = self.prev.take();
        });
    }
}

/// True when a trace is installed on this thread — use to gate argument
/// formatting that would otherwise allocate for nothing.
pub fn enabled() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

/// An in-flight span; records a [`SpanEvent`] when dropped. A no-op (and no
/// allocation) when no trace was installed at creation.
pub struct Span {
    active: Option<ActiveSpan>,
}

struct ActiveSpan {
    trace: Trace,
    tid: u32,
    depth: u32,
    name: String,
    start_ns: u64,
    args: Vec<(String, u64)>,
}

impl Span {
    /// Attaches a deterministic key/value annotation.
    pub fn arg(&mut self, key: &str, value: u64) {
        if let Some(a) = &mut self.active {
            a.args.push((key.to_string(), value));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(a) = self.active.take() else { return };
        let dur_ns = a.trace.now_ns().saturating_sub(a.start_ns);
        {
            let mut sink = a.trace.shared.sink.lock().unwrap();
            sink.spans.push(SpanEvent {
                name: a.name,
                tid: a.tid,
                start_ns: a.start_ns,
                dur_ns,
                depth: a.depth,
                args: a.args,
            });
        }
        CURRENT.with(|c| {
            if let Some(ctx) = c.borrow_mut().as_mut() {
                ctx.depth = ctx.depth.saturating_sub(1);
            }
        });
    }
}

/// Opens a span named `name` on the current thread's trace. Returns an
/// inert guard when no trace is installed.
pub fn span(name: &str) -> Span {
    CURRENT.with(|c| {
        let mut ctx = c.borrow_mut();
        let Some(ctx) = ctx.as_mut() else { return Span { active: None } };
        let depth = ctx.depth;
        ctx.depth += 1;
        Span {
            active: Some(ActiveSpan {
                trace: ctx.trace.clone(),
                tid: ctx.tid,
                depth,
                name: name.to_string(),
                start_ns: ctx.trace.now_ns(),
                args: Vec::new(),
            }),
        }
    })
}

/// Adds `delta` to the named deterministic counter. No-op without an
/// installed trace.
pub fn count(name: &str, delta: u64) {
    CURRENT.with(|c| {
        if let Some(ctx) = c.borrow().as_ref() {
            let mut sink = ctx.trace.shared.sink.lock().unwrap();
            *sink.counters.entry(name.to_string()).or_insert(0) += delta;
        }
    });
}

/// Adds `ns` to the named wall-clock timer. No-op without an installed
/// trace.
pub fn timer_ns(name: &str, ns: u64) {
    CURRENT.with(|c| {
        if let Some(ctx) = c.borrow().as_ref() {
            let mut sink = ctx.trace.shared.sink.lock().unwrap();
            *sink.timers_ns.entry(name.to_string()).or_insert(0) += ns;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sites_are_inert() {
        assert!(!enabled());
        let mut s = span("nothing");
        s.arg("k", 1);
        drop(s);
        count("c", 5);
        timer_ns("t", 5);
        // Nothing to observe: no trace exists. (The assertions above are
        // that none of this panics or records anywhere.)
    }

    #[test]
    fn spans_nest_and_record_depth() {
        let t = Trace::new();
        {
            let _g = t.install();
            let _a = span("outer");
            {
                let _b = span("inner");
            }
            count("x", 2);
            count("x", 3);
        }
        assert!(!enabled(), "install guard restored the empty state");
        let sink = t.sink();
        assert_eq!(sink.spans.len(), 2);
        // Completion order: inner first.
        assert_eq!(sink.spans[0].name, "inner");
        assert_eq!(sink.spans[0].depth, 1);
        assert_eq!(sink.spans[1].name, "outer");
        assert_eq!(sink.spans[1].depth, 0);
        assert!(sink.spans[1].start_ns <= sink.spans[0].start_ns);
        assert_eq!(sink.counters.get("x"), Some(&5));
    }

    #[test]
    fn installs_stack() {
        let outer = Trace::new();
        let inner = Trace::new();
        let _g1 = outer.install();
        {
            let _g2 = inner.install();
            count("who", 1);
        }
        count("who", 10);
        assert_eq!(inner.counters().get("who"), Some(&1));
        assert_eq!(outer.counters().get("who"), Some(&10));
    }

    #[test]
    fn counters_json_is_sorted_and_excludes_timers() {
        let t = Trace::new();
        {
            let _g = t.install();
            count("b.two", 2);
            count("a.one", 1);
            timer_ns("wall", 999);
        }
        assert_eq!(
            t.sink().counters_json(),
            "{\"schema\":\"om-obs-counters/v1\",\"counters\":{\"a.one\":1,\"b.two\":2}}"
        );
    }

    #[test]
    fn sink_merge_is_commutative_on_counters() {
        let mk = |pairs: &[(&str, u64)]| {
            let mut s = Sink::default();
            for &(k, v) in pairs {
                *s.counters.entry(k.to_string()).or_insert(0) += v;
            }
            s
        };
        let a = mk(&[("x", 1), ("y", 2)]);
        let b = mk(&[("y", 5), ("z", 1)]);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.counters_json(), ba.counters_json());
    }

    #[test]
    fn threads_share_one_trace() {
        let t = Trace::new();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let t = t.clone();
                std::thread::spawn(move || {
                    let _g = t.install();
                    let _s = span("work");
                    count("done", 1);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let sink = t.sink();
        assert_eq!(sink.counters.get("done"), Some(&4));
        assert_eq!(sink.spans.len(), 4);
        let mut tids: Vec<u32> = sink.spans.iter().map(|s| s.tid).collect();
        tids.sort_unstable();
        assert_eq!(tids, vec![0, 1, 2, 3]);
    }
}
