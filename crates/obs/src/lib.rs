//! `om-obs` — structured tracing and metrics for the OM reproduction.
//!
//! The paper sells OM with per-optimization accounting: instructions removed
//! per transformation, link-time cost per phase. This crate is the substrate
//! that accounting flows through, shared by every layer of the workspace —
//! the `om_core` pipeline passes, the linker's layout/image phases, the
//! block-cache simulator, and the `omd` link server.
//!
//! Three primitives, no dependencies:
//!
//! * **Spans** ([`span`]) — RAII-timed named regions recorded against the
//!   thread's installed [`Trace`]. Exported as chrome://tracing "complete"
//!   events ([`Trace::chrome_json`]) or a human-readable table
//!   ([`Trace::summary`]). Spans carry wall-clock time and are therefore
//!   report-only: never diffed, never gated.
//! * **Counters** ([`count`]) — named `u64` sums. Counters are
//!   *deterministic by contract*: a counter may only record facts that are
//!   identical for identical inputs (instructions deleted, blocks decoded,
//!   cache misses under coalescing), never wall time. Their JSON export
//!   ([`Sink::counters_json`]) is byte-identical at any thread width once
//!   per-thread sinks are merged, which is what lets `scripts/bench.sh`
//!   gate per-pass counters like any other figure row.
//! * **Timers** ([`timer_ns`]) — named nanosecond totals for regions too
//!   hot or too fragmented to span individually (the simulator's decode vs
//!   dispatch split). Wall-clock, report-only, excluded from
//!   [`Sink::counters_json`].
//!
//! Everything is zero-cost when no trace is installed: each instrumentation
//! site is one thread-local load and a branch.
//!
//! [`Histogram`] is the shared fixed-bucket log2 latency histogram — the
//! single quantile implementation behind `omfleet`'s p50/p99 columns and
//! `omd stats`' per-endpoint latency lines.

pub mod hist;
pub mod json;
pub mod trace;

pub use hist::{Histogram, HIST_BUCKETS};
pub use json::{parse as parse_json, validate_chrome_trace, JsonValue};
pub use trace::{
    count, enabled, span, timer_ns, InstallGuard, Sink, Span, SpanEvent, Trace,
};
