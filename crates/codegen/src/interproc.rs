//! Compile-all mode: monolithic compilation with interprocedural
//! optimization.
//!
//! The paper's "compile-all" builds compile every user source file as one
//! unit at the compiler's maximum optimization level, which performs
//! inlining and lets the intra-unit call optimization apply across what used
//! to be module boundaries — but can do nothing for calls into pre-compiled
//! libraries. This module reproduces that: [`merge_units`] fuses user ASTs
//! into one unit (renaming `static` symbols to keep per-file scoping), and
//! [`inline_small_functions`] substitutes calls to single-expression
//! functions.

use om_minic::ast::*;
use std::collections::{HashMap, HashSet};

/// Merges `units` into a single compilation unit named `name`.
///
/// `static` functions and globals are renamed `sym$unit` so that identically
/// named statics in different files keep their own identities, exactly as a
/// monolithic compiler must do internally.
pub fn merge_units(name: &str, units: &[Unit]) -> Unit {
    let mut merged = Unit { name: name.to_string(), ..Unit::default() };
    let mut defined_fns: HashSet<String> = HashSet::new();
    let mut defined_globals: HashSet<String> = HashSet::new();

    for unit in units {
        // Build this unit's static rename map.
        let mut rename: HashMap<String, String> = HashMap::new();
        for f in &unit.functions {
            if f.is_static {
                rename.insert(f.name.clone(), format!("{}${}", f.name, unit.name));
            }
        }
        for g in &unit.globals {
            if g.is_static {
                rename.insert(g.name.clone(), format!("{}${}", g.name, unit.name));
            }
        }

        for g in &unit.globals {
            let mut g = g.clone();
            g.name = rename.get(&g.name).cloned().unwrap_or(g.name);
            if let GlobalInit::FnAddr(f) = &mut g.init {
                if let Some(r) = rename.get(f) {
                    *f = r.clone();
                }
            }
            defined_globals.insert(g.name.clone());
            merged.globals.push(g);
        }
        for f in &unit.functions {
            let mut f = f.clone();
            f.name = rename.get(&f.name).cloned().unwrap_or(f.name);
            rename_body(&mut f.body, &rename);
            defined_fns.insert(f.name.clone());
            merged.functions.push(f);
        }
        for e in &unit.extern_fns {
            merged.extern_fns.push(e.clone());
        }
        for e in &unit.extern_globals {
            merged.extern_globals.push(e.clone());
        }
    }

    // Drop extern declarations now satisfied inside the merged unit.
    merged.extern_fns.retain(|e| !defined_fns.contains(&e.name));
    merged
        .extern_globals
        .retain(|e| !defined_globals.contains(&e.name));
    merged.extern_fns.dedup_by(|a, b| a.name == b.name);
    merged.extern_globals.dedup_by(|a, b| a.name == b.name);
    merged
}

fn rename_body(body: &mut [Stmt], map: &HashMap<String, String>) {
    for s in body {
        rename_stmt(s, map);
    }
}

fn rename_stmt(s: &mut Stmt, map: &HashMap<String, String>) {
    match s {
        Stmt::Local { init, .. } => rename_expr(init, map),
        Stmt::Assign { lhs, rhs } => {
            match lhs {
                LValue::Var(n) => {
                    if let Some(r) = map.get(n) {
                        *n = r.clone();
                    }
                }
                LValue::Index { name, index } => {
                    if let Some(r) = map.get(name) {
                        *name = r.clone();
                    }
                    rename_expr(index, map);
                }
            }
            rename_expr(rhs, map);
        }
        Stmt::If { cond, then_body, else_body } => {
            rename_expr(cond, map);
            rename_body(then_body, map);
            rename_body(else_body, map);
        }
        Stmt::While { cond, body } => {
            rename_expr(cond, map);
            rename_body(body, map);
        }
        Stmt::For { init, cond, step, body } => {
            if let Some(i) = init {
                rename_stmt(i, map);
            }
            rename_expr(cond, map);
            if let Some(st) = step {
                rename_stmt(st, map);
            }
            rename_body(body, map);
        }
        Stmt::Return(Some(e)) => rename_expr(e, map),
        Stmt::Return(None) => {}
        Stmt::Expr(e) => rename_expr(e, map),
    }
}

fn rename_expr(e: &mut Expr, map: &HashMap<String, String>) {
    match e {
        Expr::Var(n) | Expr::AddrOf(n) => {
            if let Some(r) = map.get(n) {
                *n = r.clone();
            }
        }
        Expr::Index { name, index } => {
            if let Some(r) = map.get(name) {
                *name = r.clone();
            }
            rename_expr(index, map);
        }
        Expr::Unary { expr, .. } | Expr::Cast { expr, .. } => rename_expr(expr, map),
        Expr::Binary { lhs, rhs, .. } => {
            rename_expr(lhs, map);
            rename_expr(rhs, map);
        }
        Expr::Call { name, args } => {
            // Local variables shadow functions, but renaming only targets
            // statics, which cannot be shadowed by our generators; renaming a
            // call to a renamed static is exactly what we want.
            if let Some(r) = map.get(name) {
                *name = r.clone();
            }
            for a in args {
                rename_expr(a, map);
            }
        }
        _ => {}
    }
}

/// A function is inlinable when its body is a single `return <expr>;` whose
/// expression mentions each parameter at most once (no duplication of
/// argument side effects) and contains no calls (keeps growth bounded).
fn inline_candidate(f: &Function) -> Option<(&[Param], &Expr)> {
    let [Stmt::Return(Some(e))] = f.body.as_slice() else {
        return None;
    };
    let mut counts: HashMap<&str, usize> = HashMap::new();
    let mut has_call = false;
    count_vars(e, &mut counts, &mut has_call);
    if has_call {
        return None;
    }
    if f.params.iter().all(|p| counts.get(p.name.as_str()).copied().unwrap_or(0) <= 1) {
        Some((&f.params, e))
    } else {
        None
    }
}

fn count_vars<'a>(e: &'a Expr, counts: &mut HashMap<&'a str, usize>, has_call: &mut bool) {
    match e {
        Expr::Var(n) => *counts.entry(n).or_insert(0) += 1,
        Expr::Index { index, .. } => count_vars(index, counts, has_call),
        Expr::Unary { expr, .. } | Expr::Cast { expr, .. } => count_vars(expr, counts, has_call),
        Expr::Binary { lhs, rhs, .. } => {
            count_vars(lhs, counts, has_call);
            count_vars(rhs, counts, has_call);
        }
        Expr::Call { args, .. } => {
            *has_call = true;
            for a in args {
                count_vars(a, counts, has_call);
            }
        }
        _ => {}
    }
}

/// Substitutes parameters by argument expressions in a copy of `body`.
fn substitute(e: &Expr, env: &HashMap<&str, &Expr>) -> Expr {
    match e {
        Expr::Var(n) => env.get(n.as_str()).map(|&a| a.clone()).unwrap_or_else(|| e.clone()),
        Expr::Index { name, index } => Expr::Index {
            name: name.clone(),
            index: Box::new(substitute(index, env)),
        },
        Expr::Unary { op, expr } => Expr::Unary { op: *op, expr: Box::new(substitute(expr, env)) },
        Expr::Cast { ty, expr } => Expr::Cast { ty: *ty, expr: Box::new(substitute(expr, env)) },
        Expr::Binary { op, lhs, rhs } => Expr::Binary {
            op: *op,
            lhs: Box::new(substitute(lhs, env)),
            rhs: Box::new(substitute(rhs, env)),
        },
        other => other.clone(),
    }
}

/// Inlines calls to single-expression functions throughout the unit.
/// Repeats until no call is replaced (bounded by `rounds`). Returns the
/// number of calls inlined.
pub fn inline_small_functions(unit: &mut Unit, rounds: usize) -> usize {
    let mut total = 0;
    for _ in 0..rounds {
        // Snapshot candidates (name → (params, body expr)).
        let candidates: HashMap<String, (Vec<Param>, Expr)> = unit
            .functions
            .iter()
            .filter_map(|f| {
                inline_candidate(f).map(|(p, e)| (f.name.clone(), (p.to_vec(), e.clone())))
            })
            .collect();
        if candidates.is_empty() {
            return total;
        }
        // Globals of fnptr type shadow function names at call sites; skip
        // candidates whose name collides with a global.
        let globals: HashSet<&str> = unit.globals.iter().map(|g| g.name.as_str()).collect();

        let mut inlined = 0;
        for f in &mut unit.functions {
            // No self-inlining (candidates contain no calls, so a candidate
            // cannot be recursive anyway).
            for s in &mut f.body {
                inline_stmt(s, &candidates, &globals, &mut inlined);
            }
        }
        total += inlined;
        if inlined == 0 {
            break;
        }
    }
    total
}

fn inline_stmt(
    s: &mut Stmt,
    c: &HashMap<String, (Vec<Param>, Expr)>,
    globals: &HashSet<&str>,
    n: &mut usize,
) {
    match s {
        Stmt::Local { init, .. } => inline_expr(init, c, globals, n),
        Stmt::Assign { lhs, rhs } => {
            if let LValue::Index { index, .. } = lhs {
                inline_expr(index, c, globals, n);
            }
            inline_expr(rhs, c, globals, n);
        }
        Stmt::If { cond, then_body, else_body } => {
            inline_expr(cond, c, globals, n);
            for t in then_body {
                inline_stmt(t, c, globals, n);
            }
            for t in else_body {
                inline_stmt(t, c, globals, n);
            }
        }
        Stmt::While { cond, body } => {
            inline_expr(cond, c, globals, n);
            for t in body {
                inline_stmt(t, c, globals, n);
            }
        }
        Stmt::For { init, cond, step, body } => {
            if let Some(i) = init {
                inline_stmt(i, c, globals, n);
            }
            inline_expr(cond, c, globals, n);
            if let Some(st) = step {
                inline_stmt(st, c, globals, n);
            }
            for t in body {
                inline_stmt(t, c, globals, n);
            }
        }
        Stmt::Return(Some(e)) => inline_expr(e, c, globals, n),
        Stmt::Return(None) => {}
        Stmt::Expr(e) => inline_expr(e, c, globals, n),
    }
}

fn inline_expr(
    e: &mut Expr,
    c: &HashMap<String, (Vec<Param>, Expr)>,
    globals: &HashSet<&str>,
    n: &mut usize,
) {
    // Recurse first so nested calls inline bottom-up.
    match e {
        Expr::Index { index, .. } => inline_expr(index, c, globals, n),
        Expr::Unary { expr, .. } | Expr::Cast { expr, .. } => inline_expr(expr, c, globals, n),
        Expr::Binary { lhs, rhs, .. } => {
            inline_expr(lhs, c, globals, n);
            inline_expr(rhs, c, globals, n);
        }
        Expr::Call { args, .. } => {
            for a in args {
                inline_expr(a, c, globals, n);
            }
        }
        _ => {}
    }
    if let Expr::Call { name, args } = e {
        if globals.contains(name.as_str()) {
            return; // indirect call through a fnptr global
        }
        if let Some((params, body)) = c.get(name) {
            if params.len() == args.len() {
                // Wrap arguments in casts to the parameter types so the
                // inlined expression keeps call-boundary conversions.
                let cast_args: Vec<Expr> = params
                    .iter()
                    .zip(args.iter())
                    .map(|(p, a)| Expr::Cast { ty: p.ty, expr: Box::new(a.clone()) })
                    .collect();
                let env: HashMap<&str, &Expr> = params
                    .iter()
                    .map(|p| p.name.as_str())
                    .zip(cast_args.iter())
                    .collect();
                *e = substitute(body, &env);
                *n += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_minic::interp::run_sources;
    use om_minic::{lower_unit, parse_unit};

    #[test]
    fn statics_are_renamed_and_scoped() {
        let a = parse_unit(
            "a",
            "extern int helper(int); static int tweak(int x) { return x + 1; } int main() { return helper(tweak(1)); }",
        )
        .unwrap();
        let b = parse_unit(
            "b",
            "static int tweak(int x) { return x * 10; } int helper(int x) { return tweak(x); }",
        )
        .unwrap();
        let merged = merge_units("all", &[a.clone(), b.clone()]);
        assert!(merged.functions.iter().any(|f| f.name == "tweak$a"));
        assert!(merged.functions.iter().any(|f| f.name == "tweak$b"));

        // Behavior must match separate compilation.
        let separate = run_sources(
            &[
                ("a", "extern int helper(int); static int tweak(int x) { return x + 1; } int main() { return helper(tweak(1)); }"),
                ("b", "static int tweak(int x) { return x * 10; } int helper(int x) { return tweak(x); }"),
            ],
            100_000,
        )
        .unwrap();
        let ir = lower_unit(&merged).unwrap();
        let mut p = om_minic::interp::Program::new(std::slice::from_ref(&ir));
        assert_eq!(p.run_main(100_000).unwrap(), separate);
    }

    #[test]
    fn small_functions_inline() {
        let mut u = parse_unit(
            "m",
            "int dbl(int x) { return x * 2; }\n\
             int main() { return dbl(10) + dbl(11); }",
        )
        .unwrap();
        let n = inline_small_functions(&mut u, 4);
        assert_eq!(n, 2);
        // main no longer calls dbl.
        let ir = lower_unit(&u).unwrap();
        let main = ir.functions.iter().find(|f| f.name == "main").unwrap();
        assert!(!main
            .body
            .iter()
            .any(|i| matches!(i, om_minic::ir::Ir::Call { name, .. } if name == "dbl")));
        let mut p = om_minic::interp::Program::new(std::slice::from_ref(&ir));
        assert_eq!(p.run_main(100_000).unwrap(), 42);
    }

    #[test]
    fn repeated_parameter_bodies_do_not_inline() {
        let mut u = parse_unit(
            "m",
            "int sq(int x) { return x * x; }\n\
             int main() { return sq(5); }",
        )
        .unwrap();
        assert_eq!(inline_small_functions(&mut u, 4), 0);
    }

    #[test]
    fn inlining_preserves_conversions() {
        let src = "float half(int x) { return x / 2; }\n\
                   int main() { return int(half(9) * 10.0); }";
        let baseline = run_sources(&[("m", src)], 100_000).unwrap();
        let mut u = parse_unit("m", src).unwrap();
        inline_small_functions(&mut u, 4);
        let ir = lower_unit(&u).unwrap();
        let mut p = om_minic::interp::Program::new(std::slice::from_ref(&ir));
        assert_eq!(p.run_main(100_000).unwrap(), baseline);
    }

    #[test]
    fn chained_inlines_converge() {
        let mut u = parse_unit(
            "m",
            "int a(int x) { return x + 1; }\n\
             int b(int x) { return a(x) + 2; }\n\
             int main() { return b(10); }",
        )
        .unwrap();
        // Round 1: a() inlines everywhere (b becomes x+1+2 and main b(10)).
        // Round 2: b is now call-free and single-return → inlines into main.
        let n = inline_small_functions(&mut u, 4);
        assert!(n >= 2, "inlined {n}");
        let ir = lower_unit(&u).unwrap();
        let main = ir.functions.iter().find(|f| f.name == "main").unwrap();
        assert!(!main.body.iter().any(|i| matches!(i, om_minic::ir::Ir::Call { .. })));
    }
}
