//! Liveness analysis and linear-scan register allocation over the IR.
//!
//! Virtual registers get either a physical register or a frame slot. Values
//! live across a call are restricted to callee-saved registers (or spilled),
//! so the emitted code needs no caller-save traffic around call sites — the
//! shape DEC's `-O2` produced and the shape OM expects to see.

use om_alpha::Reg;
use om_minic::ir::{Class, Ir, IrFunction, Label, VReg};
use std::collections::{HashMap, HashSet};

/// Where a virtual register lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Loc {
    /// A physical register (integer or FP depending on the vreg's class).
    Reg(Reg),
    /// Frame spill slot `n` (8 bytes each).
    Slot(u32),
}

/// Integer caller-saved allocatable registers.
pub const INT_CALLER: [u8; 11] = [1, 2, 3, 4, 5, 6, 7, 8, 22, 23, 24];
/// Integer callee-saved allocatable registers (`s0`–`s5` and `r15`).
pub const INT_CALLEE: [u8; 7] = [9, 10, 11, 12, 13, 14, 15];
/// FP caller-saved allocatable registers.
pub const FP_CALLER: [u8; 13] = [1, 10, 11, 12, 13, 14, 15, 22, 23, 24, 25, 26, 27];
/// FP callee-saved allocatable registers.
pub const FP_CALLEE: [u8; 8] = [2, 3, 4, 5, 6, 7, 8, 9];

/// The allocation result for one function.
#[derive(Debug, Clone)]
pub struct Allocation {
    int_loc: HashMap<u32, Loc>,
    fp_loc: HashMap<u32, Loc>,
    /// Callee-saved integer registers the function must save/restore.
    pub saved_int: Vec<Reg>,
    /// Callee-saved FP registers the function must save/restore.
    pub saved_fp: Vec<Reg>,
    /// Number of 8-byte spill slots.
    pub n_slots: u32,
    /// True if the function contains any call.
    pub has_call: bool,
}

impl Allocation {
    /// The location of a virtual register.
    ///
    /// # Panics
    ///
    /// Panics for vregs not in the allocated function.
    pub fn loc(&self, v: VReg) -> Loc {
        match v.class {
            Class::Int => self.int_loc[&v.id],
            Class::Fp => self.fp_loc[&v.id],
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Key {
    class: Class,
    id: u32,
}

fn key(v: VReg) -> Key {
    Key { class: v.class, id: v.id }
}

struct BlockInfo {
    start: usize,
    end: usize, // exclusive
    succs: Vec<usize>,
}

fn build_blocks(body: &[Ir]) -> (Vec<BlockInfo>, HashMap<Label, usize>) {
    // Block leaders: position 0, labels, instruction after a terminator.
    let mut leaders: HashSet<usize> = HashSet::new();
    leaders.insert(0);
    for (i, inst) in body.iter().enumerate() {
        match inst {
            Ir::Label(_) => {
                leaders.insert(i);
            }
            t if t.is_terminator() => {
                leaders.insert(i + 1);
            }
            _ => {}
        }
    }
    let mut starts: Vec<usize> = leaders.into_iter().filter(|&i| i < body.len()).collect();
    starts.sort_unstable();

    let mut label_block: HashMap<Label, usize> = HashMap::new();
    let mut blocks: Vec<BlockInfo> = Vec::with_capacity(starts.len());
    for (bi, &s) in starts.iter().enumerate() {
        let e = starts.get(bi + 1).copied().unwrap_or(body.len());
        if let Ir::Label(l) = body[s] {
            label_block.insert(l, bi);
        }
        blocks.push(BlockInfo { start: s, end: e, succs: Vec::new() });
    }
    for bi in 0..blocks.len() {
        let last = blocks[bi].end - 1;
        let mut succs = Vec::new();
        match &body[last] {
            Ir::Jump(l) => succs.push(label_block[l]),
            Ir::Branch { target, .. } => {
                succs.push(label_block[target]);
                if bi + 1 < blocks.len() {
                    succs.push(bi + 1);
                }
            }
            Ir::Ret(_) => {}
            _ => {
                if bi + 1 < blocks.len() {
                    succs.push(bi + 1);
                }
            }
        }
        blocks[bi].succs = succs;
    }
    (blocks, label_block)
}

/// Allocates registers for `f`.
pub fn allocate(f: &IrFunction) -> Allocation {
    let body = &f.body;
    let (blocks, _) = build_blocks(body);

    // Per-block upward-exposed uses (gen) and defs (kill).
    let n = blocks.len();
    let mut gen: Vec<HashSet<Key>> = vec![HashSet::new(); n];
    let mut kill: Vec<HashSet<Key>> = vec![HashSet::new(); n];
    for (bi, b) in blocks.iter().enumerate() {
        for inst in &body[b.start..b.end] {
            for u in inst.uses() {
                if let Some(r) = u.reg() {
                    if !kill[bi].contains(&key(r)) {
                        gen[bi].insert(key(r));
                    }
                }
            }
            if let Some(d) = inst.dst() {
                kill[bi].insert(key(d));
            }
        }
    }

    // Iterate live-out to fixpoint.
    let mut live_out: Vec<HashSet<Key>> = vec![HashSet::new(); n];
    let mut changed = true;
    while changed {
        changed = false;
        for bi in (0..n).rev() {
            let mut out: HashSet<Key> = HashSet::new();
            for &s in &blocks[bi].succs {
                // live-in(s) = gen(s) ∪ (live-out(s) − kill(s))
                out.extend(gen[s].iter().copied());
                out.extend(live_out[s].difference(&kill[s]).copied());
            }
            if out.len() != live_out[bi].len() || !out.is_subset(&live_out[bi]) {
                live_out[bi] = out;
                changed = true;
            }
        }
    }

    // Intervals in doubled coordinates so calls can be ordered between a
    // value's last pre-call use and its post-call definition: instruction
    // `i` reads operands at `2i` and writes its result at `2i + 1`; a call
    // at `i` clobbers caller-saved state at `2i + 1`. Parameters are defined
    // at entry (`-1`).
    let mut start: HashMap<Key, i64> = HashMap::new();
    let mut end: HashMap<Key, i64> = HashMap::new();
    let extend = |k: Key, p: i64, start: &mut HashMap<Key, i64>, end: &mut HashMap<Key, i64>| {
        start.entry(k).and_modify(|s| *s = (*s).min(p)).or_insert(p);
        end.entry(k).and_modify(|e| *e = (*e).max(p)).or_insert(p);
    };
    for (bi, b) in blocks.iter().enumerate() {
        let mut live = live_out[bi].clone();
        for i in (b.start..b.end).rev() {
            // Everything live after instruction i spans its write point.
            for &k in &live {
                extend(k, 2 * i as i64 + 1, &mut start, &mut end);
            }
            if let Some(d) = body[i].dst() {
                live.remove(&key(d));
                extend(key(d), 2 * i as i64 + 1, &mut start, &mut end);
            }
            for u in body[i].uses() {
                if let Some(r) = u.reg() {
                    live.insert(key(r));
                    extend(key(r), 2 * i as i64, &mut start, &mut end);
                }
            }
            // Everything live into instruction i spans its read point.
            for &k in &live {
                extend(k, 2 * i as i64, &mut start, &mut end);
            }
        }
    }
    // Parameters are defined at entry, before any instruction.
    for &p in &f.params {
        extend(key(p), -1, &mut start, &mut end);
    }

    // Call clobber points.
    let call_pos: Vec<i64> = body
        .iter()
        .enumerate()
        .filter(|(_, i)| matches!(i, Ir::Call { .. } | Ir::CallInd { .. }))
        .map(|(p, _)| 2 * p as i64 + 1)
        .collect();
    let has_call = !call_pos.is_empty();

    let crosses_call = |k: Key| -> bool {
        let (s, e) = (start[&k], end[&k]);
        call_pos.iter().any(|&p| s < p && p < e)
    };

    // Linear scan, separately per class.
    let mut alloc = Allocation {
        int_loc: HashMap::new(),
        fp_loc: HashMap::new(),
        saved_int: Vec::new(),
        saved_fp: Vec::new(),
        n_slots: 0,
        has_call,
    };

    for class in [Class::Int, Class::Fp] {
        let (caller, callee): (&[u8], &[u8]) = match class {
            Class::Int => (&INT_CALLER, &INT_CALLEE),
            Class::Fp => (&FP_CALLER, &FP_CALLEE),
        };
        let mut intervals: Vec<(Key, i64, i64)> = start
            .keys()
            .filter(|k| k.class == class)
            .map(|&k| (k, start[&k], end[&k]))
            .collect();
        // Tie-break equal starts by vreg id: `start` is a HashMap, and a
        // start-only sort would leak its iteration order into the final
        // register assignment (and from there into cycle counts).
        intervals.sort_by_key(|&(k, s, _)| (s, k.id));

        // active: (end, key, reg)
        let mut active: Vec<(i64, Key, u8)> = Vec::new();
        let mut free_caller: Vec<u8> = caller.iter().rev().copied().collect();
        let mut free_callee: Vec<u8> = callee.iter().rev().copied().collect();
        let mut used_callee: HashSet<u8> = HashSet::new();

        for (k, s, e) in intervals {
            // Expire.
            active.retain(|&(ae, _, r)| {
                if ae < s {
                    if caller.contains(&r) {
                        free_caller.push(r);
                    } else {
                        free_callee.push(r);
                    }
                    false
                } else {
                    true
                }
            });

            let need_callee = crosses_call(k);
            let reg = if need_callee {
                free_callee.pop()
            } else {
                free_caller.pop().or_else(|| free_callee.pop())
            };

            let loc = match reg {
                Some(r) => {
                    if callee.contains(&r) {
                        used_callee.insert(r);
                    }
                    active.push((e, k, r));
                    Loc::Reg(Reg::new(r))
                }
                None => {
                    let slot = alloc.n_slots;
                    alloc.n_slots += 1;
                    Loc::Slot(slot)
                }
            };
            match class {
                Class::Int => {
                    alloc.int_loc.insert(k.id, loc);
                }
                Class::Fp => {
                    alloc.fp_loc.insert(k.id, loc);
                }
            }
        }

        let mut used: Vec<Reg> = used_callee.into_iter().map(Reg::new).collect();
        used.sort_by_key(|r| r.number());
        match class {
            Class::Int => alloc.saved_int = used,
            Class::Fp => alloc.saved_fp = used,
        }
    }

    // Vregs never mentioned (dead params of unused ids) need a location too.
    for id in 0..f.n_int {
        alloc.int_loc.entry(id).or_insert(Loc::Reg(Reg::new(INT_CALLER[0])));
    }
    for id in 0..f.n_fp {
        alloc.fp_loc.entry(id).or_insert(Loc::Reg(Reg::new(FP_CALLER[0])));
    }

    alloc
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_minic::{lower_unit, parse_unit};

    fn alloc_of(src: &str, fname: &str) -> (IrFunction, Allocation) {
        let unit = lower_unit(&parse_unit("t", src).unwrap()).unwrap();
        let f = unit
            .functions
            .into_iter()
            .find(|f| f.name == fname)
            .expect("function");
        let a = allocate(&f);
        (f, a)
    }

    #[test]
    fn simple_function_uses_caller_saved_only() {
        let (f, a) = alloc_of("int f(int x, int y) { return x * y + x; }", "f");
        assert!(!a.has_call);
        assert!(a.saved_int.is_empty());
        assert_eq!(a.n_slots, 0);
        for &p in &f.params {
            assert!(matches!(a.loc(p), Loc::Reg(_)));
        }
    }

    #[test]
    fn values_across_calls_get_callee_saved() {
        let (f, a) = alloc_of(
            "int g(int x) { return x; }\n\
             int f(int x) { int a = x + 1; int b = g(a); return a + b; }",
            "f",
        );
        assert!(a.has_call);
        // `a` lives across the call to g: must be callee-saved, so the
        // function saves at least one s-register.
        assert!(!a.saved_int.is_empty());
        let _ = f;
    }

    #[test]
    fn distinct_live_vregs_get_distinct_registers() {
        let src = "int f(int a, int b, int c, int d) { return (a+b) * (c+d) + a*b + c*d + a*d; }";
        let (f, a) = alloc_of(src, "f");
        // All four params are live simultaneously; their registers must differ.
        let mut regs: Vec<Reg> = f
            .params
            .iter()
            .map(|&p| match a.loc(p) {
                Loc::Reg(r) => r,
                Loc::Slot(_) => panic!("unexpected spill"),
            })
            .collect();
        regs.sort_by_key(|r| r.number());
        regs.dedup();
        assert_eq!(regs.len(), 4);
    }

    #[test]
    fn loop_variables_stay_live_across_the_loop() {
        let src = "int f(int n) {\n\
                     int s = 0; int i = 0;\n\
                     for (i = 0; i < n; i = i + 1) { s = s + i; }\n\
                     return s;\n\
                   }";
        let (f, a) = alloc_of(src, "f");
        // s and i and n are all registers, all distinct.
        let locs: HashSet<_> = (0..f.n_int)
            .map(|id| a.loc(VReg { id, class: Class::Int }))
            .collect();
        assert!(locs.len() >= 3);
    }

    #[test]
    fn heavy_pressure_spills() {
        // 25 simultaneously-live integer values exceed the 18 allocatable
        // integer registers.
        let mut src = String::from("int f(int x) {\n");
        for i in 0..25 {
            src.push_str(&format!("int v{i} = x + {i};\n"));
        }
        src.push_str("return ");
        for i in 0..25 {
            if i > 0 {
                src.push('+');
            }
            src.push_str(&format!("v{i}*v{i}"));
        }
        src.push_str(";\n}");
        let (_, a) = alloc_of(&src, "f");
        assert!(a.n_slots > 0, "expected spills under pressure");
    }

    #[test]
    fn fp_and_int_pools_are_independent() {
        let (f, a) = alloc_of(
            "float f(float x, int n) { return x * float(n); }",
            "f",
        );
        let fp_param = f.params[0];
        let int_param = f.params[1];
        assert!(matches!(a.loc(fp_param), Loc::Reg(_)));
        assert!(matches!(a.loc(int_param), Loc::Reg(_)));
    }
}
