//! `-O2`-style local IR optimizations: constant folding, copy propagation,
//! algebraic simplification, and dead-code elimination.
//!
//! These run per extended straight-line region (state resets at labels and
//! after terminators), which matches the paper's setup: the input to OM was
//! produced by compilers doing "intraprocedural global optimization".

use om_minic::interp::{div_convention, rem_convention};
use om_minic::ir::*;
use std::collections::HashMap;

/// Optimizes one function in place; returns the number of instructions
/// removed.
pub fn optimize(f: &mut IrFunction) -> usize {
    let before = f.body.len();
    fold_and_propagate(f);
    eliminate_dead(f);
    before - f.body.len()
}

/// Known value of a vreg within a region.
#[derive(Clone, Copy, PartialEq)]
enum Known {
    ConstI(i64),
    ConstF(f64),
    Copy(VReg),
}

fn resolve(env: &HashMap<VReg, Known>, v: Val) -> Val {
    match v {
        Val::R(r) => match env.get(&r) {
            Some(Known::ConstI(c)) => Val::I(*c),
            Some(Known::ConstF(c)) => Val::F(*c),
            Some(Known::Copy(s)) => Val::R(*s),
            None => v,
        },
        other => other,
    }
}

fn fold_ibin(op: IBin, a: i64, b: i64) -> i64 {
    match op {
        IBin::Add => a.wrapping_add(b),
        IBin::Sub => a.wrapping_sub(b),
        IBin::Mul => a.wrapping_mul(b),
        IBin::And => a & b,
        IBin::Or => a | b,
        IBin::Xor => a ^ b,
        IBin::Shl => a.wrapping_shl((b & 63) as u32),
        IBin::Shr => a.wrapping_shr((b & 63) as u32),
    }
}

fn fold_cmp_i(op: Cmp, a: i64, b: i64) -> i64 {
    (match op {
        Cmp::Eq => a == b,
        Cmp::Ne => a != b,
        Cmp::Lt => a < b,
        Cmp::Le => a <= b,
        Cmp::Gt => a > b,
        Cmp::Ge => a >= b,
    }) as i64
}

fn fold_and_propagate(f: &mut IrFunction) {
    let mut env: HashMap<VReg, Known> = HashMap::new();
    // A def invalidates any copies of the defined register.
    let kill = |env: &mut HashMap<VReg, Known>, d: VReg| {
        env.remove(&d);
        env.retain(|_, k| !matches!(k, Known::Copy(s) if *s == d));
    };

    let body = std::mem::take(&mut f.body);
    let mut out: Vec<Ir> = Vec::with_capacity(body.len());

    for mut inst in body {
        // Region boundaries: labels are join points; calls do not reset
        // register knowledge (they cannot write vregs other than their dst).
        if matches!(inst, Ir::Label(_)) {
            env.clear();
            out.push(inst);
            continue;
        }

        // Rewrite operands through the environment.
        match &mut inst {
            Ir::BinI { a, b, .. } | Ir::CmpI { a, b, .. } | Ir::BinF { a, b, .. } | Ir::CmpF { a, b, .. } => {
                *a = resolve(&env, *a);
                *b = resolve(&env, *b);
            }
            Ir::MovI { src, .. }
            | Ir::MovF { src, .. }
            | Ir::CvtIF { src, .. }
            | Ir::CvtFI { src, .. }
            | Ir::StGlobal { src, .. } => *src = resolve(&env, *src),
            Ir::LdElem { index, .. } => *index = resolve(&env, *index),
            Ir::StElem { index, src, .. } => {
                *index = resolve(&env, *index);
                *src = resolve(&env, *src);
            }
            Ir::Call { args, .. } => {
                for a in args {
                    *a = resolve(&env, *a);
                }
            }
            Ir::CallInd { target, args, .. } => {
                if let Val::R(t) = resolve(&env, Val::R(*target)) {
                    *target = t;
                }
                for a in args {
                    *a = resolve(&env, *a);
                }
            }
            Ir::Branch { cond, .. } => {
                if let Val::R(c) = resolve(&env, Val::R(*cond)) {
                    *cond = c;
                }
            }
            Ir::Ret(Some(v)) => *v = resolve(&env, *v),
            _ => {}
        }

        // Fold and simplify.
        let replacement = match &inst {
            Ir::BinI { op, dst, a: Val::I(a), b: Val::I(b) } => {
                Some(Ir::MovI { dst: *dst, src: Val::I(fold_ibin(*op, *a, *b)) })
            }
            Ir::BinI { op, dst, a, b } => match (op, a, b) {
                (IBin::Add | IBin::Sub | IBin::Or | IBin::Xor | IBin::Shl | IBin::Shr, a, Val::I(0)) => {
                    Some(Ir::MovI { dst: *dst, src: *a })
                }
                (IBin::Add | IBin::Or | IBin::Xor, Val::I(0), b) => {
                    Some(Ir::MovI { dst: *dst, src: *b })
                }
                (IBin::Mul, a, Val::I(1)) => Some(Ir::MovI { dst: *dst, src: *a }),
                (IBin::Mul, Val::I(1), b) => Some(Ir::MovI { dst: *dst, src: *b }),
                (IBin::Mul | IBin::And, _, Val::I(0)) => {
                    Some(Ir::MovI { dst: *dst, src: Val::I(0) })
                }
                (IBin::Mul | IBin::And, Val::I(0), _) => {
                    Some(Ir::MovI { dst: *dst, src: Val::I(0) })
                }
                _ => None,
            },
            Ir::CmpI { op, dst, a: Val::I(a), b: Val::I(b) } => {
                Some(Ir::MovI { dst: *dst, src: Val::I(fold_cmp_i(*op, *a, *b)) })
            }
            Ir::CvtIF { dst, src: Val::I(c) } => {
                Some(Ir::MovF { dst: *dst, src: Val::F(*c as f64) })
            }
            Ir::CvtFI { dst, src: Val::F(c) } => {
                Some(Ir::MovI { dst: *dst, src: Val::I(*c as i64) })
            }
            // Division by constants still calls the millicode (matching what
            // the DEC compiler did for general operands), but fully-constant
            // divisions fold.
            Ir::Call { dst: Some(dst), name, args }
                if (name == "__divq" || name == "__remq")
                    && matches!(args.as_slice(), [Val::I(_), Val::I(_)]) =>
            {
                let (Val::I(a), Val::I(b)) = (args[0], args[1]) else { unreachable!() };
                let v = if name == "__divq" {
                    div_convention(a, b)
                } else {
                    rem_convention(a, b)
                };
                Some(Ir::MovI { dst: *dst, src: Val::I(v) })
            }
            _ => None,
        };
        let inst = replacement.unwrap_or(inst);

        // Update the environment.
        match &inst {
            Ir::MovI { dst, src } => {
                kill(&mut env, *dst);
                match src {
                    Val::I(c) => {
                        env.insert(*dst, Known::ConstI(*c));
                    }
                    Val::R(s) if s != dst => {
                        env.insert(*dst, Known::Copy(*s));
                    }
                    _ => {}
                }
            }
            Ir::MovF { dst, src } => {
                kill(&mut env, *dst);
                match src {
                    Val::F(c) => {
                        env.insert(*dst, Known::ConstF(*c));
                    }
                    Val::R(s) if s != dst => {
                        env.insert(*dst, Known::Copy(*s));
                    }
                    _ => {}
                }
            }
            other => {
                if let Some(d) = other.dst() {
                    kill(&mut env, d);
                }
            }
        }

        let terminator = inst.is_terminator();
        out.push(inst);
        if terminator {
            env.clear();
        }
    }
    f.body = out;
}

/// Removes instructions whose results are never used anywhere in the
/// function and which have no side effects. Iterates to a fixpoint.
fn eliminate_dead(f: &mut IrFunction) {
    loop {
        let mut used: HashMap<VReg, usize> = HashMap::new();
        for inst in &f.body {
            for u in inst.uses() {
                if let Val::R(r) = u {
                    *used.entry(r).or_insert(0) += 1;
                }
            }
        }
        let before = f.body.len();
        f.body.retain(|inst| {
            let pure = matches!(
                inst,
                Ir::BinI { .. }
                    | Ir::BinF { .. }
                    | Ir::CmpI { .. }
                    | Ir::CmpF { .. }
                    | Ir::MovI { .. }
                    | Ir::MovF { .. }
                    | Ir::CvtIF { .. }
                    | Ir::CvtFI { .. }
                    | Ir::LdGlobal { .. }
                    | Ir::LdFnAddr { .. }
            );
            if !pure {
                return true;
            }
            match inst.dst() {
                Some(d) => used.get(&d).copied().unwrap_or(0) > 0,
                None => true,
            }
        });
        if f.body.len() == before {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_minic::{lower_unit, parse_unit};

    fn opt_fn(src: &str) -> IrFunction {
        let unit = lower_unit(&parse_unit("t", src).unwrap()).unwrap();
        let mut f = unit.functions.into_iter().next().unwrap();
        optimize(&mut f);
        f
    }

    #[test]
    fn constants_fold_through() {
        let f = opt_fn("int f() { int a = 2 * 8; int b = a + 1; return b; }");
        // Everything folds to `return 17`.
        assert!(matches!(f.body.last(), Some(Ir::Ret(Some(Val::I(17))))));
        assert!(!f.body.iter().any(|i| matches!(i, Ir::BinI { .. })));
    }

    #[test]
    fn algebraic_identities() {
        let f = opt_fn("int f(int x) { return (x + 0) * 1; }");
        assert!(!f.body.iter().any(|i| matches!(i, Ir::BinI { .. })));
    }

    #[test]
    fn copies_propagate() {
        let f = opt_fn("int f(int x) { int y = x; int z = y; return z + z; }");
        // The adds should reference x (param v0) directly.
        let Some(Ir::BinI { a, b, .. }) = f.body.iter().find(|i| matches!(i, Ir::BinI { .. }))
        else {
            panic!("expected one add");
        };
        assert_eq!(a, b);
    }

    #[test]
    fn constant_division_folds() {
        let f = opt_fn("int f() { return 17 / 5 + 17 % 5; }");
        assert!(!f.body.iter().any(|i| matches!(i, Ir::Call { .. })));
        assert!(matches!(f.body.last(), Some(Ir::Ret(Some(Val::I(5))))));
    }

    #[test]
    fn dead_loads_removed_but_calls_kept() {
        let f = opt_fn(
            "int g; int side(int x) { g = x; return x; }\n",
        );
        let _ = f;
        let f = opt_fn(
            "int g; int f(int x) { int dead = g; int live = side(x); return x; } int side(int x) { g = x; return x; }",
        );
        assert!(
            !f.body.iter().any(|i| matches!(i, Ir::LdGlobal { .. })),
            "dead global load should vanish"
        );
        assert!(
            f.body.iter().any(|i| matches!(i, Ir::Call { .. })),
            "call with side effects must stay"
        );
    }

    #[test]
    fn knowledge_resets_at_labels() {
        // After the loop label, `i` is not constant even though it started 0.
        let f = opt_fn(
            "int f(int n) { int i = 0; while (i < n) { i = i + 1; } return i; }",
        );
        assert!(f.body.iter().any(|i| matches!(i, Ir::BinI { op: IBin::Add, .. })));
        assert!(f.body.iter().any(|i| matches!(i, Ir::CmpI { .. })));
    }

    #[test]
    fn branch_conditions_propagate_copies() {
        let f = opt_fn("int f(int x) { int c = x; if (c) { return 1; } return 2; }");
        // The branch should test the parameter directly; the copy is dead.
        assert!(!f.body.iter().any(|i| matches!(i, Ir::MovI { .. })));
    }
}
