//! Conservative Alpha/OSF code generation for mini-C (the compilers OM
//! improves upon).
//!
//! The backend compiles each unit exactly the way the paper's §2 describes
//! 64-bit compilers must: global addresses come from the GAT via GP-relative
//! address loads with LITERAL/LITUSE relocations, procedures establish GP
//! from PV with a GPDISP pair and re-establish it from RA after every call,
//! and calls go through PV with JSR. `-O2` adds local optimization and
//! latency-driven scheduling (which may sink the prologue GP pair, as DEC's
//! scheduler did); compile-all mode merges all user sources and inlines small
//! functions, reproducing compile-time interprocedural optimization.
//!
//! # Example
//!
//! ```
//! use om_codegen::{compile_source, CompileOpts};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let module = compile_source(
//!     "m",
//!     "int counter; int main() { counter = counter + 1; return counter; }",
//!     &CompileOpts::o2(),
//! )?;
//! assert!(module.find_symbol("main").is_some());
//! assert!(!module.lita.is_empty()); // the GAT has slots for `counter`
//! # Ok(())
//! # }
//! ```

pub mod code;
pub mod crt0;
pub mod emit;
pub mod interproc;
pub mod opt;
pub mod regalloc;
pub mod sched;

use om_minic::ir::IrUnit;
use om_objfile::Module;
use std::fmt;

/// Optimization level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptLevel {
    /// No IR optimization, no scheduling.
    O0,
    /// Local optimization + pipeline scheduling (the paper's compile-each).
    O2,
}

/// Compilation options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompileOpts {
    pub opt: OptLevel,
    /// Run the compile-time list scheduler (on at `-O2`).
    pub schedule: bool,
}

impl CompileOpts {
    /// Unoptimized compilation (test aid).
    pub fn o0() -> CompileOpts {
        CompileOpts { opt: OptLevel::O0, schedule: false }
    }

    /// The paper's baseline: `-O2` with pipeline scheduling.
    pub fn o2() -> CompileOpts {
        CompileOpts { opt: OptLevel::O2, schedule: true }
    }
}

impl Default for CompileOpts {
    fn default() -> Self {
        CompileOpts::o2()
    }
}

/// Compilation failure: frontend error or malformed output module.
#[derive(Debug)]
pub enum CodegenError {
    Compile(om_minic::CompileError),
    Object(om_objfile::ObjError),
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodegenError::Compile(e) => write!(f, "{e}"),
            CodegenError::Object(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CodegenError {}

impl From<om_minic::CompileError> for CodegenError {
    fn from(e: om_minic::CompileError) -> Self {
        CodegenError::Compile(e)
    }
}

impl From<om_objfile::ObjError> for CodegenError {
    fn from(e: om_objfile::ObjError) -> Self {
        CodegenError::Object(e)
    }
}

/// Compiles a lowered unit to an object module.
///
/// # Errors
///
/// Returns [`CodegenError::Object`] if the emitted module fails validation.
pub fn compile_ir_unit(unit: &IrUnit, opts: &CompileOpts) -> Result<Module, CodegenError> {
    let mut unit = unit.clone();
    if opts.opt == OptLevel::O2 {
        for f in &mut unit.functions {
            opt::optimize(f);
        }
    }
    let mut consts = emit::ConstPool::default();
    let mut funcs = emit::select_functions(&unit, &mut consts);
    if opts.schedule {
        for f in &mut funcs {
            sched::schedule_func(f);
        }
    }
    Ok(emit::emit_unit(&unit, &funcs, &consts)?)
}

/// Parses, checks, lowers, and compiles one source file.
///
/// # Errors
///
/// Returns frontend errors or emission failures.
pub fn compile_source(
    name: &str,
    src: &str,
    opts: &CompileOpts,
) -> Result<Module, CodegenError> {
    let unit = om_minic::parse_unit(name, src)?;
    let ir = om_minic::lower_unit(&unit)?;
    compile_ir_unit(&ir, opts)
}

/// Compiles several sources monolithically (the paper's compile-all): merge,
/// inline, then compile as one unit named `name`.
///
/// # Errors
///
/// Returns frontend errors (including cross-file conflicts surfaced by the
/// merged check) or emission failures.
pub fn compile_all_sources(
    name: &str,
    sources: &[(&str, &str)],
    opts: &CompileOpts,
) -> Result<Module, CodegenError> {
    let units: Vec<om_minic::ast::Unit> = sources
        .iter()
        .map(|(n, s)| om_minic::parse_unit(n, s))
        .collect::<Result<_, _>>()?;
    let mut merged = interproc::merge_units(name, &units);
    if opts.opt == OptLevel::O2 {
        interproc::inline_small_functions(&mut merged, 4);
    }
    let ir = om_minic::lower_unit(&merged)?;
    compile_ir_unit(&ir, opts)
}
