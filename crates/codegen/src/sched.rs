//! Compile-time pipeline scheduling (per basic block, latency-driven).
//!
//! This reproduces the DEC `-O2` behavior the paper calls out: list
//! scheduling that is free to move the prologue's GP-setting pair away from
//! the procedure entry when other instructions look more urgent. That motion
//! is precisely what prevents OM-simple from redirecting BSRs past the
//! prologue ("unfortunately, compile-time scheduling often moved them"), and
//! what OM-full undoes by restoring the pair to its logical place.
//!
//! The scheduler never reorders across a dependence ([`Effects::depends_on`]:
//! register hazards, memory conflicts, control), so scheduled code is
//! behaviorally identical — property-tested at the pipeline level.

use crate::code::{CBlock, CFunc, CInst};
use om_alpha::timing::{can_dual_issue, latency};
use om_alpha::Effects;

/// Schedules every block of `f` in place.
pub fn schedule_func(f: &mut CFunc) {
    for b in &mut f.blocks {
        schedule_block(b);
    }
}

/// List-schedules one block.
pub fn schedule_block(b: &mut CBlock) {
    let n = b.insts.len();
    if n < 2 {
        return;
    }
    let effects: Vec<Effects> = b.insts.iter().map(|i| Effects::of(&i.inst)).collect();

    // Dependence edges: succs[i] lists j > i that must follow i.
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut npreds: Vec<usize> = vec![0; n];
    for j in 0..n {
        for i in 0..j {
            if effects[j].depends_on(&effects[i]) {
                succs[i].push(j);
                npreds[j] += 1;
            }
        }
    }

    // Critical-path priority and fan-out.
    let mut prio: Vec<u32> = vec![0; n];
    for i in (0..n).rev() {
        let tail = succs[i].iter().map(|&j| prio[j]).max().unwrap_or(0);
        prio[i] = latency(&b.insts[i].inst) + tail;
    }
    let fanout: Vec<usize> = succs.iter().map(Vec::len).collect();

    // Greedy pick: highest critical path, then fan-out, then source order;
    // prefer an instruction that dual-issues with the previous pick on ties.
    let mut ready: Vec<usize> = (0..n).filter(|&i| npreds[i] == 0).collect();
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut remaining_preds = npreds;
    while let Some(&first) = ready.first() {
        let mut best = first;
        for &c in &ready {
            let key = |i: usize| {
                let pairs = order
                    .last()
                    .map(|&p| can_dual_issue(&b.insts[p].inst, &b.insts[i].inst))
                    .unwrap_or(false);
                (prio[i], fanout[i], pairs as u32, std::cmp::Reverse(i))
            };
            if key(c) > key(best) {
                best = c;
            }
        }
        ready.retain(|&i| i != best);
        order.push(best);
        for &j in &succs[best] {
            remaining_preds[j] -= 1;
            if remaining_preds[j] == 0 {
                ready.push(j);
            }
        }
    }

    debug_assert_eq!(order.len(), n);
    let old = std::mem::take(&mut b.insts);
    let mut slots: Vec<Option<CInst>> = old.into_iter().map(Some).collect();
    b.insts = order
        .into_iter()
        .map(|i| slots[i].take().expect("instruction scheduled twice"))
        .collect();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::{CodeBuffer, Mark};
    use om_alpha::{Inst, Reg};
    use om_objfile::Visibility;

    fn block_of(insts: Vec<(Inst, Mark)>) -> CBlock {
        let mut c = CodeBuffer::new();
        for (i, m) in insts {
            c.push(i, m);
        }
        let f = c.finish("t".into(), Visibility::Exported);
        f.blocks.into_iter().next().unwrap()
    }

    #[test]
    fn dependences_are_preserved() {
        // load r1 ; add r2 = r1 + r1 — the add may never precede the load.
        let mut b = block_of(vec![
            (Inst::ldq(Reg::new(1), 0, Reg::GP), Mark::None),
            (
                Inst::Opr {
                    op: om_alpha::OprOp::Addq,
                    ra: Reg::new(1),
                    rb: om_alpha::Operand::Reg(Reg::new(1)),
                    rc: Reg::new(2),
                },
                Mark::None,
            ),
        ]);
        schedule_block(&mut b);
        assert!(matches!(b.insts[0].inst, Inst::Mem { .. }));
    }

    #[test]
    fn independent_long_latency_work_hoists() {
        // mov ; load — the load (latency 3) should be scheduled first.
        let mut b = block_of(vec![
            (Inst::mov(Reg::new(3), Reg::new(4)), Mark::None),
            (Inst::ldq(Reg::new(1), 0, Reg::GP), Mark::None),
        ]);
        schedule_block(&mut b);
        assert!(matches!(b.insts[0].inst, Inst::Mem { op, .. } if op.is_load()));
    }

    #[test]
    fn stores_keep_their_order() {
        let mut b = block_of(vec![
            (Inst::stq(Reg::new(1), 0, Reg::SP), Mark::None),
            (Inst::stq(Reg::new(2), 8, Reg::SP), Mark::None),
        ]);
        schedule_block(&mut b);
        match (&b.insts[0].inst, &b.insts[1].inst) {
            (Inst::Mem { disp: 0, .. }, Inst::Mem { disp: 8, .. }) => {}
            other => panic!("stores reordered: {other:?}"),
        }
    }

    #[test]
    fn gp_pair_can_sink_below_frame_setup() {
        // A frame-setup chain with more dependents than the GP pair: the
        // scheduler prefers it, sinking the GPDISP pair off the entry — the
        // phenomenon the paper reports.
        let lo = 97;
        let mut c = CodeBuffer::new();
        c.push(
            Inst::ldah(Reg::GP, 0, Reg::PV),
            Mark::GpdispHi { lo, anchor: crate::code::Anchor::Entry },
        );
        c.push_with_id(lo, Inst::lda(Reg::GP, 0, Reg::GP), Mark::GpdispLo { hi: 0 });
        c.inst(Inst::lda(Reg::SP, -32, Reg::SP));
        c.inst(Inst::stq(Reg::RA, 16, Reg::SP));
        c.inst(Inst::stq(Reg::new(9), 24, Reg::SP));
        let f = c.finish("t".into(), Visibility::Exported);
        let mut b = f.blocks.into_iter().next().unwrap();
        schedule_block(&mut b);
        // The sp-adjust has fan-out 2 (both stores) vs the ldah's 1, at equal
        // critical path length, so it is picked first.
        assert!(
            matches!(b.insts[0].inst, Inst::Mem { ra, .. } if ra == Reg::SP),
            "expected frame setup first, got {}",
            b.insts[0].inst
        );
        // The pair's relative order survives.
        let hi_pos = b.insts.iter().position(|i| matches!(i.mark, Mark::GpdispHi { .. })).unwrap();
        let lo_pos = b.insts.iter().position(|i| matches!(i.mark, Mark::GpdispLo { .. })).unwrap();
        assert!(hi_pos < lo_pos);
    }

    #[test]
    fn single_instruction_blocks_untouched() {
        let mut b = block_of(vec![(Inst::ret(), Mark::None)]);
        schedule_block(&mut b);
        assert_eq!(b.insts.len(), 1);
    }
}
