//! `mcc` — the mini-C compiler driver.
//!
//! ```text
//! mcc [-O0|-O2] [--all] [-o OUT.o | --ar LIB.a] FILE.mc...
//! ```
//!
//! Compiles each source to an object file (`FILE.o` next to the source, or
//! `-o` for a single input), or all sources monolithically with `--all`
//! (the paper's interprocedural compile-all), or into an archive with
//! `--ar`.

use om_codegen::{compile_all_sources, compile_source, CompileOpts};
use om_objfile::{binary, Archive};
use std::path::{Path, PathBuf};
use std::process::exit;

fn usage() -> ! {
    eprintln!("usage: mcc [-O0|-O2] [--all] [-o OUT.o | --ar LIB.a] FILE.mc...");
    exit(2);
}

fn main() {
    let mut opts = CompileOpts::o2();
    let mut inputs: Vec<PathBuf> = Vec::new();
    let mut output: Option<PathBuf> = None;
    let mut archive: Option<PathBuf> = None;
    let mut all = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-O0" => opts = CompileOpts::o0(),
            "-O2" => opts = CompileOpts::o2(),
            "--no-schedule" => opts.schedule = false,
            "--all" => all = true,
            "-o" => {
                i += 1;
                output = Some(PathBuf::from(args.get(i).unwrap_or_else(|| usage())));
            }
            "--ar" => {
                i += 1;
                archive = Some(PathBuf::from(args.get(i).unwrap_or_else(|| usage())));
            }
            f if !f.starts_with('-') => inputs.push(PathBuf::from(f)),
            _ => usage(),
        }
        i += 1;
    }
    if inputs.is_empty() {
        usage();
    }

    let stem = |p: &Path| {
        p.file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "module".to_string())
    };
    let read = |p: &Path| {
        std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("mcc: cannot read {}: {e}", p.display());
            exit(1);
        })
    };

    if all {
        let sources: Vec<(String, String)> =
            inputs.iter().map(|p| (stem(p), read(p))).collect();
        let refs: Vec<(&str, &str)> = sources
            .iter()
            .map(|(n, s)| (n.as_str(), s.as_str()))
            .collect();
        let name = output
            .as_ref()
            .map(|p| stem(p))
            .unwrap_or_else(|| "all".to_string());
        let module = compile_all_sources(&name, &refs, &opts).unwrap_or_else(|e| {
            eprintln!("mcc: {e}");
            exit(1);
        });
        let out = output.unwrap_or_else(|| PathBuf::from(format!("{name}.o")));
        std::fs::write(&out, binary::write_module(&module)).unwrap();
        eprintln!("mcc: wrote {}", out.display());
        return;
    }

    let mut modules = Vec::new();
    for p in &inputs {
        let module = compile_source(&stem(p), &read(p), &opts).unwrap_or_else(|e| {
            eprintln!("mcc: {}: {e}", p.display());
            exit(1);
        });
        modules.push((p.clone(), module));
    }

    if let Some(arpath) = archive {
        let name = stem(&arpath);
        let mut ar = Archive::new(name);
        for (_, m) in modules {
            ar.add(m).unwrap_or_else(|e| {
                eprintln!("mcc: {e}");
                exit(1);
            });
        }
        std::fs::write(&arpath, binary::write_archive(&ar)).unwrap();
        eprintln!("mcc: wrote {}", arpath.display());
        return;
    }

    if let Some(out) = output {
        if modules.len() != 1 {
            eprintln!("mcc: -o requires exactly one input (use --ar or --all)");
            exit(2);
        }
        std::fs::write(&out, binary::write_module(&modules[0].1)).unwrap();
        eprintln!("mcc: wrote {}", out.display());
        return;
    }

    for (p, m) in modules {
        let out = p.with_extension("o");
        std::fs::write(&out, binary::write_module(&m)).unwrap();
        eprintln!("mcc: wrote {}", out.display());
    }
}
