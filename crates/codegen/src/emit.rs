//! Instruction selection and function emission.
//!
//! This is where the paper's §2 code-generation model is implemented
//! faithfully: every reference to a global object or procedure goes through
//! an address load from the GAT (`ldq rx, lit(gp)` with a LITERAL relocation
//! and LITUSE links on the uses); every non-local procedure is entered with
//! PV holding its address and re-derives GP with a GPDISP pair; every call
//! site is `ldq pv / jsr / ldah gp / lda gp`. The only calls compiled better
//! are those to `static` procedures whose address is never taken — the one
//! case the paper notes a compiler may optimize at compile time.

use crate::code::{Anchor, CLabel, CodeBuffer, Mark};
use crate::regalloc::{allocate, Allocation, Loc};
use om_alpha::{BrOp, FOprOp, Inst, MemOp, Operand, OprOp, Reg};
use om_minic::ast::{Global, GlobalInit, Type};
use om_minic::ir::{Class, Cmp, FBin, IBin, Ir, IrFunction, IrUnit, Val, VReg};
use om_objfile::{ModuleBuilder, RelocKind, SecId, Symbol, Visibility};
use std::collections::{HashMap, HashSet};

/// Integer scratch registers (never allocated): AT and r25.
const SCRATCH1: Reg = Reg::AT;
fn scratch2() -> Reg {
    Reg::new(25)
}
/// FP scratch registers (never allocated).
fn fscratch1() -> Reg {
    Reg::new(28)
}
fn fscratch2() -> Reg {
    Reg::new(29)
}

/// Objects of at most this many bytes are placed in the small sections
/// (`.sdata`/`.sbss`) near the GAT, mirroring the `-G 8` convention.
pub const SMALL_DATA_MAX: u64 = 8;

/// Per-module pool of interned large constants (float literals and integers
/// too wide for LDAH/LDA), emitted as local `.sdata` symbols and accessed
/// through the GAT like any other global.
#[derive(Debug, Default)]
pub struct ConstPool {
    entries: HashMap<u64, String>,
    order: Vec<(String, u64)>,
}

impl ConstPool {
    /// Interns the 8-byte little-endian image `bits`, returning its symbol.
    pub fn intern(&mut self, bits: u64) -> String {
        if let Some(name) = self.entries.get(&bits) {
            return name.clone();
        }
        let name = format!("$LC{}", self.order.len());
        self.entries.insert(bits, name.clone());
        self.order.push((name.clone(), bits));
        name
    }

    /// Emits all interned constants into the module's `.sdata`.
    pub fn emit(&self, b: &mut ModuleBuilder) {
        for (name, bits) in &self.order {
            let off = b.append_data(SecId::Sdata, &bits.to_le_bytes());
            b.add_symbol(Symbol::data(name.clone(), SecId::Sdata, off, 8).local());
        }
    }
}

/// Whether `v` fits a signed 16-bit immediate.
fn fits_i16(v: i64) -> bool {
    i16::try_from(v).is_ok()
}

/// Splits `v` into `(hi, lo)` such that `(hi << 16) + lo == v` with both
/// halves signed 16-bit, if possible.
pub fn split_hi_lo(v: i64) -> Option<(i16, i16)> {
    let lo = v as i16;
    let rest = v.wrapping_sub(lo as i64);
    if rest & 0xFFFF != 0 {
        return None;
    }
    let hi = i16::try_from(rest >> 16).ok()?;
    // Verify exact reconstruction (wrapping ruled out).
    if ((hi as i64) << 16).wrapping_add(lo as i64) == v {
        Some((hi, lo))
    } else {
        None
    }
}

/// Function-level emission context.
struct FnEmitter<'a> {
    f: &'a IrFunction,
    alloc: Allocation,
    /// Compiled without a GPDISP prologue, entered by BSR (static,
    /// address never taken).
    local_mode: bool,
    /// Names of all local-mode functions in the unit.
    local_fns: &'a HashSet<String>,
    unit: &'a IrUnit,
    consts: &'a mut ConstPool,
    code: CodeBuffer,
    labels: HashMap<om_minic::ir::Label, CLabel>,
    // Frame layout (byte offsets from post-prologue SP).
    frame_size: i64,
    #[allow(dead_code)]
    out_bytes: i64,
    cvt_off: i64,
    spill_off: i64,
    save_off: i64,
}

/// Result class of calling `name` from this unit (int unless a known
/// signature says float).
fn callee_ret_class(unit: &IrUnit, name: &str) -> Class {
    match unit.info.fns.get(name) {
        Some(sig) if sig.ret == Type::Float => Class::Fp,
        _ => Class::Int,
    }
}

impl<'a> FnEmitter<'a> {
    fn new(
        f: &'a IrFunction,
        unit: &'a IrUnit,
        local_fns: &'a HashSet<String>,
        consts: &'a mut ConstPool,
    ) -> FnEmitter<'a> {
        let alloc = allocate(f);
        let local_mode = local_fns.contains(&f.name);

        // Outgoing argument area: max stack args over all calls.
        let max_stack_args = f
            .body
            .iter()
            .filter_map(|i| match i {
                Ir::Call { args, .. } | Ir::CallInd { args, .. } => {
                    Some(args.len().saturating_sub(6))
                }
                _ => None,
            })
            .max()
            .unwrap_or(0) as i64;
        let needs_cvt = f
            .body
            .iter()
            .any(|i| matches!(i, Ir::CvtIF { .. } | Ir::CvtFI { .. } | Ir::CmpF { .. }));

        let out_bytes = 8 * max_stack_args;
        let cvt_off = out_bytes;
        let spill_off = cvt_off + if needs_cvt { 8 } else { 0 };
        let save_off = spill_off + 8 * alloc.n_slots as i64;
        let n_saves = alloc.has_call as i64
            + alloc.saved_int.len() as i64
            + alloc.saved_fp.len() as i64;
        let frame_size = (save_off + 8 * n_saves + 15) / 16 * 16;

        FnEmitter {
            f,
            alloc,
            local_mode,
            local_fns,
            unit,
            consts,
            code: CodeBuffer::new(),
            labels: HashMap::new(),
            frame_size,
            out_bytes,
            cvt_off,
            spill_off,
            save_off,
        }
    }

    fn clabel(&mut self, l: om_minic::ir::Label) -> CLabel {
        if let Some(&c) = self.labels.get(&l) {
            return c;
        }
        let c = self.code.fresh_label();
        self.labels.insert(l, c);
        c
    }

    fn slot_disp(&self, slot: u32) -> i16 {
        (self.spill_off + 8 * slot as i64) as i16
    }

    /// Loads an immediate into `r`. Wide constants come from the module's
    /// literal constant pool, through the GAT like everything else.
    fn load_imm(&mut self, v: i64, r: Reg) {
        if v == 0 {
            self.code.inst(Inst::mov(Reg::ZERO, r));
        } else if fits_i16(v) {
            self.code.inst(Inst::lda(r, v as i16, Reg::ZERO));
        } else if let Some((hi, lo)) = split_hi_lo(v) {
            self.code.inst(Inst::ldah(r, hi, Reg::ZERO));
            if lo != 0 {
                self.code.inst(Inst::lda(r, lo, r));
            }
        } else {
            let sym = self.consts.intern(v as u64);
            let load = self.code.push(
                Inst::ldq(r, 0, Reg::GP),
                Mark::Literal { sym, addend: 0 },
            );
            self.code.push(Inst::ldq(r, 0, r), Mark::LituseBase { load });
        }
    }

    /// Materializes an integer operand into a register; `which` selects the
    /// scratch register used for slot reloads and immediates.
    fn use_int(&mut self, v: Val, which: u8) -> Reg {
        let scratch = if which == 0 { SCRATCH1 } else { scratch2() };
        match v {
            Val::I(0) => Reg::ZERO,
            Val::I(c) => {
                self.load_imm(c, scratch);
                scratch
            }
            Val::F(_) => panic!("float operand in int context"),
            Val::R(r) => {
                debug_assert_eq!(r.class, Class::Int);
                match self.alloc.loc(r) {
                    Loc::Reg(p) => p,
                    Loc::Slot(s) => {
                        let d = self.slot_disp(s);
                        self.code.inst(Inst::ldq(scratch, d, Reg::SP));
                        scratch
                    }
                }
            }
        }
    }

    /// Materializes an FP operand.
    fn use_fp(&mut self, v: Val, which: u8) -> Reg {
        let fscratch = if which == 0 { fscratch1() } else { fscratch2() };
        match v {
            Val::F(c) if c == 0.0 && c.is_sign_positive() => Reg::ZERO,
            Val::F(c) => {
                let sym = self.consts.intern(c.to_bits());
                let addr = if which == 0 { SCRATCH1 } else { scratch2() };
                let load = self.code.push(
                    Inst::ldq(addr, 0, Reg::GP),
                    Mark::Literal { sym, addend: 0 },
                );
                self.code.push(
                    Inst::Mem { op: MemOp::Ldt, ra: fscratch, rb: addr, disp: 0 },
                    Mark::LituseBase { load },
                );
                fscratch
            }
            Val::I(_) => panic!("int operand in fp context"),
            Val::R(r) => {
                debug_assert_eq!(r.class, Class::Fp);
                match self.alloc.loc(r) {
                    Loc::Reg(p) => p,
                    Loc::Slot(s) => {
                        let d = self.slot_disp(s);
                        self.code.inst(Inst::Mem {
                            op: MemOp::Ldt,
                            ra: fscratch,
                            rb: Reg::SP,
                            disp: d,
                        });
                        fscratch
                    }
                }
            }
        }
    }

    /// The register to compute an integer result into, plus whether it must
    /// be stored to a slot afterwards.
    fn def_int(&self, dst: VReg) -> (Reg, Option<u32>) {
        match self.alloc.loc(dst) {
            Loc::Reg(p) => (p, None),
            Loc::Slot(s) => (SCRATCH1, Some(s)),
        }
    }

    fn def_fp(&self, dst: VReg) -> (Reg, Option<u32>) {
        match self.alloc.loc(dst) {
            Loc::Reg(p) => (p, None),
            Loc::Slot(s) => (fscratch1(), Some(s)),
        }
    }

    fn finish_def_int(&mut self, written: Reg, slot: Option<u32>) {
        if let Some(s) = slot {
            let d = self.slot_disp(s);
            self.code.inst(Inst::stq(written, d, Reg::SP));
        }
    }

    fn finish_def_fp(&mut self, written: Reg, slot: Option<u32>) {
        if let Some(s) = slot {
            let d = self.slot_disp(s);
            self.code.inst(Inst::Mem { op: MemOp::Stt, ra: written, rb: Reg::SP, disp: d });
        }
    }

    /// Emits the conservative GAT address load for `sym`, returning
    /// `(register, instruction id)`.
    fn address_load(&mut self, sym: &str, into: Reg) -> (Reg, u32) {
        let id = self.code.push(
            Inst::ldq(into, 0, Reg::GP),
            Mark::Literal { sym: sym.to_string(), addend: 0 },
        );
        (into, id)
    }

    fn prologue(&mut self) {
        if !self.local_mode {
            // ldah gp, hi(pv); lda gp, lo(gp) — the paper's Figure 1 entry.
            let lo_id = self.code.fresh_id();
            self.code.push(
                Inst::ldah(Reg::GP, 0, Reg::PV),
                Mark::GpdispHi { lo: lo_id, anchor: Anchor::Entry },
            );
            self.code
                .push_with_id(lo_id, Inst::lda(Reg::GP, 0, Reg::GP), Mark::GpdispLo { hi: 0 });
        }
        if self.frame_size > 0 {
            self.code
                .inst(Inst::lda(Reg::SP, -self.frame_size as i16, Reg::SP));
        }
        let mut off = self.save_off;
        if self.alloc.has_call {
            self.code.inst(Inst::stq(Reg::RA, off as i16, Reg::SP));
            off += 8;
        }
        for &s in &self.alloc.saved_int.clone() {
            self.code.inst(Inst::stq(s, off as i16, Reg::SP));
            off += 8;
        }
        for &s in &self.alloc.saved_fp.clone() {
            self.code
                .inst(Inst::Mem { op: MemOp::Stt, ra: s, rb: Reg::SP, disp: off as i16 });
            off += 8;
        }

        // Move incoming arguments to their assigned homes.
        for (i, &p) in self.f.params.iter().enumerate() {
            if i < 6 {
                let arg = Reg::new(16 + i as u8);
                match (p.class, self.alloc.loc(p)) {
                    (Class::Int, Loc::Reg(r)) => {
                        if r != arg {
                            self.code.inst(Inst::mov(arg, r));
                        }
                    }
                    (Class::Int, Loc::Slot(s)) => {
                        let d = self.slot_disp(s);
                        self.code.inst(Inst::stq(arg, d, Reg::SP));
                    }
                    (Class::Fp, Loc::Reg(r)) => {
                        if r != arg {
                            self.code.inst(Inst::FOpr {
                                op: FOprOp::Cpys,
                                fa: arg,
                                fb: arg,
                                fc: r,
                            });
                        }
                    }
                    (Class::Fp, Loc::Slot(s)) => {
                        let d = self.slot_disp(s);
                        self.code.inst(Inst::Mem {
                            op: MemOp::Stt,
                            ra: arg,
                            rb: Reg::SP,
                            disp: d,
                        });
                    }
                }
            } else {
                // Stack argument: caller stored it at its own SP; after our
                // prologue it sits at frame_size + 8*(i-6).
                let d = (self.frame_size + 8 * (i as i64 - 6)) as i16;
                match (p.class, self.alloc.loc(p)) {
                    (Class::Int, Loc::Reg(r)) => {
                        self.code.inst(Inst::ldq(r, d, Reg::SP));
                    }
                    (Class::Int, Loc::Slot(s)) => {
                        let sd = self.slot_disp(s);
                        self.code.inst(Inst::ldq(SCRATCH1, d, Reg::SP));
                        self.code.inst(Inst::stq(SCRATCH1, sd, Reg::SP));
                    }
                    (Class::Fp, Loc::Reg(r)) => {
                        self.code
                            .inst(Inst::Mem { op: MemOp::Ldt, ra: r, rb: Reg::SP, disp: d });
                    }
                    (Class::Fp, Loc::Slot(s)) => {
                        let sd = self.slot_disp(s);
                        self.code.inst(Inst::Mem {
                            op: MemOp::Ldt,
                            ra: fscratch1(),
                            rb: Reg::SP,
                            disp: d,
                        });
                        self.code.inst(Inst::Mem {
                            op: MemOp::Stt,
                            ra: fscratch1(),
                            rb: Reg::SP,
                            disp: sd,
                        });
                    }
                }
            }
        }
    }

    fn epilogue(&mut self) {
        let mut off = self.save_off;
        if self.alloc.has_call {
            self.code.inst(Inst::ldq(Reg::RA, off as i16, Reg::SP));
            off += 8;
        }
        for &s in &self.alloc.saved_int.clone() {
            self.code.inst(Inst::ldq(s, off as i16, Reg::SP));
            off += 8;
        }
        for &s in &self.alloc.saved_fp.clone() {
            self.code
                .inst(Inst::Mem { op: MemOp::Ldt, ra: s, rb: Reg::SP, disp: off as i16 });
            off += 8;
        }
        if self.frame_size > 0 {
            self.code
                .inst(Inst::lda(Reg::SP, self.frame_size as i16, Reg::SP));
        }
        self.code.inst(Inst::ret());
    }

    /// After-call GP re-derivation from RA (the paper's Figure 1 return).
    fn gp_reset(&mut self, jsr_id: u32) {
        let lo_id = self.code.fresh_id();
        self.code.push(
            Inst::ldah(Reg::GP, 0, Reg::RA),
            Mark::GpdispHi { lo: lo_id, anchor: Anchor::AfterCall(jsr_id) },
        );
        self.code
            .push_with_id(lo_id, Inst::lda(Reg::GP, 0, Reg::GP), Mark::GpdispLo { hi: 0 });
    }

    /// Stages call arguments into a0–a5/f16–f21 and the outgoing stack area.
    fn stage_args(&mut self, args: &[Val]) {
        for (i, &a) in args.iter().enumerate() {
            let is_fp = matches!(a, Val::F(_))
                || matches!(a, Val::R(r) if r.class == Class::Fp);
            if i < 6 {
                let dst = Reg::new(16 + i as u8);
                if is_fp {
                    let src = self.use_fp(a, 0);
                    if src != dst {
                        self.code
                            .inst(Inst::FOpr { op: FOprOp::Cpys, fa: src, fb: src, fc: dst });
                    }
                } else {
                    match a {
                        Val::I(c) => self.load_imm(c, dst),
                        _ => {
                            let src = self.use_int(a, 0);
                            if src != dst {
                                self.code.inst(Inst::mov(src, dst));
                            }
                        }
                    }
                }
            } else {
                let d = (8 * (i as i64 - 6)) as i16;
                if is_fp {
                    let src = self.use_fp(a, 0);
                    self.code
                        .inst(Inst::Mem { op: MemOp::Stt, ra: src, rb: Reg::SP, disp: d });
                } else {
                    let src = self.use_int(a, 0);
                    self.code.inst(Inst::stq(src, d, Reg::SP));
                }
            }
        }
    }

    /// Copies the call result from v0/f0 into `dst`.
    fn take_result(&mut self, dst: Option<VReg>, ret_class: Class) {
        let Some(d) = dst else { return };
        match (d.class, ret_class) {
            (Class::Int, Class::Int) => match self.alloc.loc(d) {
                Loc::Reg(r) => {
                    if r != Reg::V0 {
                        self.code.inst(Inst::mov(Reg::V0, r));
                    }
                }
                Loc::Slot(s) => {
                    let disp = self.slot_disp(s);
                    self.code.inst(Inst::stq(Reg::V0, disp, Reg::SP));
                }
            },
            (Class::Fp, Class::Fp) => match self.alloc.loc(d) {
                Loc::Reg(r) => {
                    if r.number() != 0 {
                        self.code.inst(Inst::FOpr {
                            op: FOprOp::Cpys,
                            fa: Reg::V0,
                            fb: Reg::V0,
                            fc: r,
                        });
                    }
                }
                Loc::Slot(s) => {
                    let disp = self.slot_disp(s);
                    self.code.inst(Inst::Mem {
                        op: MemOp::Stt,
                        ra: Reg::V0,
                        rb: Reg::SP,
                        disp,
                    });
                }
            },
            _ => panic!("call result class mismatch for {d}"),
        }
    }

    fn emit_binop_int(&mut self, op: IBin, dst: VReg, a: Val, b: Val) {
        let alpha_op = match op {
            IBin::Add => OprOp::Addq,
            IBin::Sub => OprOp::Subq,
            IBin::Mul => OprOp::Mulq,
            IBin::And => OprOp::And,
            IBin::Or => OprOp::Bis,
            IBin::Xor => OprOp::Xor,
            IBin::Shl => OprOp::Sll,
            IBin::Shr => OprOp::Sra,
        };
        let commutative = matches!(op, IBin::Add | IBin::Mul | IBin::And | IBin::Or | IBin::Xor);
        // Prefer the literal form when the right operand is a small constant.
        let (a, b) = match (a, b) {
            (Val::I(c), rb) if commutative && !matches!(rb, Val::I(_)) => (rb, Val::I(c)),
            other => other,
        };
        let ra = self.use_int(a, 0);
        let rb = match b {
            Val::I(c) if (0..256).contains(&c) => Operand::Lit(c as u8),
            _ => Operand::Reg(self.use_int(b, 1)),
        };
        let (rd, slot) = self.def_int(dst);
        self.code.inst(Inst::Opr { op: alpha_op, ra, rb, rc: rd });
        self.finish_def_int(rd, slot);
    }

    fn emit_cmp_int(&mut self, op: Cmp, dst: VReg, a: Val, b: Val) {
        // Alpha has CMPEQ/CMPLT/CMPLE; derive the rest by swapping or
        // inverting.
        let (op, a, b) = match op {
            Cmp::Gt => (Cmp::Lt, b, a),
            Cmp::Ge => (Cmp::Le, b, a),
            other => (other, a, b),
        };
        let (alpha_op, invert) = match op {
            Cmp::Eq => (OprOp::Cmpeq, false),
            Cmp::Ne => (OprOp::Cmpeq, true),
            Cmp::Lt => (OprOp::Cmplt, false),
            Cmp::Le => (OprOp::Cmple, false),
            Cmp::Gt | Cmp::Ge => unreachable!(),
        };
        let ra = self.use_int(a, 0);
        let rb = match b {
            Val::I(c) if (0..256).contains(&c) => Operand::Lit(c as u8),
            _ => Operand::Reg(self.use_int(b, 1)),
        };
        let (rd, slot) = self.def_int(dst);
        self.code.inst(Inst::Opr { op: alpha_op, ra, rb, rc: rd });
        if invert {
            self.code.inst(Inst::Opr {
                op: OprOp::Xor,
                ra: rd,
                rb: Operand::Lit(1),
                rc: rd,
            });
        }
        self.finish_def_int(rd, slot);
    }

    fn emit_cmp_fp(&mut self, op: Cmp, dst: VReg, a: Val, b: Val) {
        // CMPTxx writes a nonzero T-float for true; branch on it to build the
        // 0/1 integer result (the era's standard sequence).
        let (op, a, b) = match op {
            Cmp::Gt => (Cmp::Lt, b, a),
            Cmp::Ge => (Cmp::Le, b, a),
            other => (other, a, b),
        };
        let (alpha_op, invert) = match op {
            Cmp::Eq => (FOprOp::Cmpteq, false),
            Cmp::Ne => (FOprOp::Cmpteq, true),
            Cmp::Lt => (FOprOp::Cmptlt, false),
            Cmp::Le => (FOprOp::Cmptle, false),
            Cmp::Gt | Cmp::Ge => unreachable!(),
        };
        let fa = self.use_fp(a, 0);
        let fb = self.use_fp(b, 1);
        let fr = fscratch1();
        self.code.inst(Inst::FOpr { op: alpha_op, fa, fb, fc: fr });
        let (rd, slot) = self.def_int(dst);
        let l_true = self.code.fresh_label();
        let l_end = self.code.fresh_label();
        self.code.branch(BrOp::Fbne, fr, l_true);
        self.code
            .inst(Inst::mov_lit(invert as u8, rd));
        self.code.branch(BrOp::Br, Reg::ZERO, l_end);
        self.code.bind(l_true);
        self.code.inst(Inst::mov_lit(!invert as u8, rd));
        self.code.bind(l_end);
        self.finish_def_int(rd, slot);
    }

    fn emit_inst(&mut self, inst: &Ir) {
        match inst {
            Ir::Label(l) => {
                let c = self.clabel(*l);
                self.code.bind(c);
            }
            Ir::Jump(l) => {
                let c = self.clabel(*l);
                self.code.branch(BrOp::Br, Reg::ZERO, c);
            }
            Ir::Branch { cond, when_zero, target } => {
                let r = self.use_int(Val::R(*cond), 0);
                let c = self.clabel(*target);
                let op = if *when_zero { BrOp::Beq } else { BrOp::Bne };
                self.code.branch(op, r, c);
            }
            Ir::BinI { op, dst, a, b } => self.emit_binop_int(*op, *dst, *a, *b),
            Ir::BinF { op, dst, a, b } => {
                let alpha_op = match op {
                    FBin::Add => FOprOp::Addt,
                    FBin::Sub => FOprOp::Subt,
                    FBin::Mul => FOprOp::Mult,
                    FBin::Div => FOprOp::Divt,
                };
                let fa = self.use_fp(*a, 0);
                let fb = self.use_fp(*b, 1);
                let (fd, slot) = self.def_fp(*dst);
                self.code.inst(Inst::FOpr { op: alpha_op, fa, fb, fc: fd });
                self.finish_def_fp(fd, slot);
            }
            Ir::CmpI { op, dst, a, b } => self.emit_cmp_int(*op, *dst, *a, *b),
            Ir::CmpF { op, dst, a, b } => self.emit_cmp_fp(*op, *dst, *a, *b),
            Ir::MovI { dst, src } => match (*src, self.alloc.loc(*dst)) {
                (Val::I(c), Loc::Reg(r)) => self.load_imm(c, r),
                (src, Loc::Reg(r)) => {
                    let s = self.use_int(src, 0);
                    if s != r {
                        self.code.inst(Inst::mov(s, r));
                    }
                }
                (src, Loc::Slot(slot)) => {
                    let s = self.use_int(src, 0);
                    let d = self.slot_disp(slot);
                    self.code.inst(Inst::stq(s, d, Reg::SP));
                }
            },
            Ir::MovF { dst, src } => {
                let s = self.use_fp(*src, 0);
                match self.alloc.loc(*dst) {
                    Loc::Reg(r) => {
                        if s != r {
                            self.code
                                .inst(Inst::FOpr { op: FOprOp::Cpys, fa: s, fb: s, fc: r });
                        }
                    }
                    Loc::Slot(slot) => {
                        let d = self.slot_disp(slot);
                        self.code
                            .inst(Inst::Mem { op: MemOp::Stt, ra: s, rb: Reg::SP, disp: d });
                    }
                }
            }
            Ir::CvtIF { dst, src } => {
                // Integer to float goes through memory on the 21064.
                let s = self.use_int(*src, 0);
                let d = self.cvt_off as i16;
                self.code.inst(Inst::stq(s, d, Reg::SP));
                self.code.inst(Inst::Mem {
                    op: MemOp::Ldt,
                    ra: fscratch2(),
                    rb: Reg::SP,
                    disp: d,
                });
                let (fd, slot) = self.def_fp(*dst);
                self.code.inst(Inst::FOpr {
                    op: FOprOp::Cvtqt,
                    fa: Reg::ZERO,
                    fb: fscratch2(),
                    fc: fd,
                });
                self.finish_def_fp(fd, slot);
            }
            Ir::CvtFI { dst, src } => {
                let s = self.use_fp(*src, 0);
                self.code.inst(Inst::FOpr {
                    op: FOprOp::Cvttq,
                    fa: Reg::ZERO,
                    fb: s,
                    fc: fscratch2(),
                });
                let d = self.cvt_off as i16;
                self.code.inst(Inst::Mem {
                    op: MemOp::Stt,
                    ra: fscratch2(),
                    rb: Reg::SP,
                    disp: d,
                });
                let (rd, slot) = self.def_int(*dst);
                self.code.inst(Inst::ldq(rd, d, Reg::SP));
                self.finish_def_int(rd, slot);
            }
            Ir::LdGlobal { dst, sym } => {
                let (base, load) = self.address_load(sym, SCRATCH1);
                match dst.class {
                    Class::Int => {
                        let (rd, slot) = self.def_int(*dst);
                        self.code
                            .push(Inst::ldq(rd, 0, base), Mark::LituseBase { load });
                        self.finish_def_int(rd, slot);
                    }
                    Class::Fp => {
                        let (fd, slot) = self.def_fp(*dst);
                        self.code.push(
                            Inst::Mem { op: MemOp::Ldt, ra: fd, rb: base, disp: 0 },
                            Mark::LituseBase { load },
                        );
                        self.finish_def_fp(fd, slot);
                    }
                }
            }
            Ir::StGlobal { sym, src } => {
                let is_fp = matches!(src, Val::F(_))
                    || matches!(src, Val::R(r) if r.class == Class::Fp);
                if is_fp {
                    let s = self.use_fp(*src, 1);
                    let (base, load) = self.address_load(sym, SCRATCH1);
                    self.code.push(
                        Inst::Mem { op: MemOp::Stt, ra: s, rb: base, disp: 0 },
                        Mark::LituseBase { load },
                    );
                } else {
                    let s = self.use_int(*src, 1);
                    let (base, load) = self.address_load(sym, SCRATCH1);
                    self.code
                        .push(Inst::stq(s, 0, base), Mark::LituseBase { load });
                }
            }
            Ir::LdElem { dst, sym, index } => {
                let (base, load) = self.address_load(sym, SCRATCH1);
                let (addr, use_mark, disp) = match index {
                    // Constant index folds into the use's displacement: the
                    // use stays rewritable (LITUSE_BASE).
                    Val::I(c) if fits_i16(8 * c) => (base, Mark::LituseBase { load }, (8 * c) as i16),
                    _ => {
                        let ri = self.use_int(*index, 1);
                        self.code.push(
                            Inst::Opr {
                                op: OprOp::S8Addq,
                                ra: ri,
                                rb: Operand::Reg(base),
                                rc: SCRATCH1,
                            },
                            Mark::LituseAddr { load },
                        );
                        (SCRATCH1, Mark::None, 0)
                    }
                };
                match dst.class {
                    Class::Int => {
                        let (rd, slot) = self.def_int(*dst);
                        self.code.push(Inst::ldq(rd, disp, addr), use_mark);
                        self.finish_def_int(rd, slot);
                    }
                    Class::Fp => {
                        let (fd, slot) = self.def_fp(*dst);
                        self.code.push(
                            Inst::Mem { op: MemOp::Ldt, ra: fd, rb: addr, disp },
                            use_mark,
                        );
                        self.finish_def_fp(fd, slot);
                    }
                }
            }
            Ir::StElem { sym, index, src } => {
                // Order matters for scratch discipline: compute the element
                // address into SCRATCH1 first (index reloads may pass through
                // scratch2), then materialize the value (scratch2/fscratch2
                // are free again), then store.
                let is_fp = matches!(src, Val::F(_))
                    || matches!(src, Val::R(r) if r.class == Class::Fp);
                let (base, load) = self.address_load(sym, SCRATCH1);
                let (addr, use_mark, disp) = match index {
                    Val::I(c) if fits_i16(8 * c) => (base, Mark::LituseBase { load }, (8 * c) as i16),
                    _ => {
                        let ri = self.use_int(*index, 1);
                        self.code.push(
                            Inst::Opr {
                                op: OprOp::S8Addq,
                                ra: ri,
                                rb: Operand::Reg(base),
                                rc: SCRATCH1,
                            },
                            Mark::LituseAddr { load },
                        );
                        (SCRATCH1, Mark::None, 0)
                    }
                };
                if is_fp {
                    let s = self.use_fp(*src, 1);
                    self.code.push(
                        Inst::Mem { op: MemOp::Stt, ra: s, rb: addr, disp },
                        use_mark,
                    );
                } else {
                    let s = self.use_int(*src, 1);
                    self.code.push(Inst::stq(s, disp, addr), use_mark);
                }
            }
            Ir::LdFnAddr { dst, sym } => {
                // The loaded address escapes into general dataflow: mark the
                // load itself as escaping so OM never nullifies it.
                let (rd, slot) = self.def_int(*dst);
                self.code.push(
                    Inst::ldq(rd, 0, Reg::GP),
                    Mark::EscapingLiteral { sym: sym.clone(), addend: 0 },
                );
                self.finish_def_int(rd, slot);
            }
            Ir::Call { dst, name, args } => {
                self.stage_args(args);
                let ret_class = callee_ret_class(self.unit, name);
                if self.local_fns.contains(name) {
                    // Optimized intra-unit call to an unexported procedure:
                    // BSR, no PV load, no GP reset (same GAT by construction).
                    self.code.push(
                        Inst::Br { op: BrOp::Bsr, ra: Reg::RA, disp: 0 },
                        Mark::BrSym { sym: name.clone() },
                    );
                } else {
                    let (_, load) = self.address_load(name, Reg::PV);
                    let jsr = self.code.push(
                        Inst::jsr(Reg::RA, Reg::PV),
                        Mark::LituseJsr { load },
                    );
                    self.gp_reset(jsr);
                }
                self.take_result(*dst, ret_class);
            }
            Ir::CallInd { dst, target, args } => {
                self.stage_args(args);
                let t = self.use_int(Val::R(*target), 0);
                if t != Reg::PV {
                    self.code.inst(Inst::mov(t, Reg::PV));
                }
                let jsr = self.code.inst(Inst::jsr(Reg::RA, Reg::PV));
                self.gp_reset(jsr);
                self.take_result(*dst, Class::Int);
            }
            Ir::Ret(val) => {
                match (self.f.ret, val) {
                    (Class::Int, Some(v)) => match *v {
                        Val::I(c) => self.load_imm(c, Reg::V0),
                        v => {
                            let s = self.use_int(v, 0);
                            if s != Reg::V0 {
                                self.code.inst(Inst::mov(s, Reg::V0));
                            }
                        }
                    },
                    (Class::Fp, Some(v)) => {
                        let s = self.use_fp(*v, 0);
                        if s.number() != 0 {
                            self.code
                                .inst(Inst::FOpr { op: FOprOp::Cpys, fa: s, fb: s, fc: Reg::V0 });
                        }
                    }
                    (_, None) => {}
                }
                self.epilogue();
            }
        }
    }

    fn run(mut self) -> crate::code::CFunc {
        self.prologue();
        let body: Vec<Ir> = self.f.body.clone();
        for inst in &body {
            self.emit_inst(inst);
        }
        let vis = if self.f.is_static {
            Visibility::Local
        } else {
            Visibility::Exported
        };
        self.code.finish(self.f.name.clone(), vis)
    }
}

/// Computes the set of functions compiled in "local mode": `static` and
/// address never taken, so every call site is intra-unit and direct. These
/// are compiled without a GPDISP prologue and called with BSR — the
/// compile-time optimization the paper credits compilers with.
pub fn local_mode_fns(unit: &IrUnit) -> HashSet<String> {
    let mut addr_taken: HashSet<&str> = HashSet::new();
    for f in &unit.functions {
        for i in &f.body {
            if let Ir::LdFnAddr { sym, .. } = i {
                addr_taken.insert(sym);
            }
        }
    }
    for g in &unit.globals {
        if let GlobalInit::FnAddr(f) = &g.init {
            addr_taken.insert(f);
        }
    }
    unit.functions
        .iter()
        .filter(|f| f.is_static && !addr_taken.contains(f.name.as_str()))
        .map(|f| f.name.clone())
        .collect()
}

/// Lays a global out into the module: initialized data goes to
/// `.sdata`/`.data`, static zero data to `.sbss`/`.bss`, and non-static zero
/// data becomes a common symbol for the linker to place (which is what lets
/// OM-simple sort commons by size next to the GAT).
pub fn emit_global(b: &mut ModuleBuilder, g: &Global) {
    let size = g.size_bytes();
    let small = size <= SMALL_DATA_MAX;
    let vis = if g.is_static { Visibility::Local } else { Visibility::Exported };
    let mk = |sym: Symbol| if g.is_static { sym.local() } else { sym };

    match &g.init {
        GlobalInit::Zero => {
            if g.is_static {
                let sec = if small { SecId::Sbss } else { SecId::Bss };
                let off = b.reserve(sec, size, 8);
                b.add_symbol(Symbol::data(g.name.clone(), sec, off, size).local());
            } else {
                b.add_symbol(Symbol::common(g.name.clone(), size, 8));
            }
        }
        GlobalInit::Int(v) => {
            let sec = if small { SecId::Sdata } else { SecId::Data };
            let off = b.append_data(sec, &v.to_le_bytes());
            b.add_symbol(mk(Symbol::data(g.name.clone(), sec, off, size)));
        }
        GlobalInit::Float(v) => {
            let sec = if small { SecId::Sdata } else { SecId::Data };
            let off = b.append_data(sec, &v.to_bits().to_le_bytes());
            b.add_symbol(mk(Symbol::data(g.name.clone(), sec, off, size)));
        }
        GlobalInit::FnAddr(f) => {
            let sec = if small { SecId::Sdata } else { SecId::Data };
            let off = b.append_data(sec, &[0u8; 8]);
            let target = b.external(f);
            b.reloc_at(sec, off, RelocKind::RefQuad { sym: target, addend: 0 });
            b.add_symbol(mk(Symbol::data(g.name.clone(), sec, off, size)));
        }
        GlobalInit::List(vs) => {
            let sec = if small { SecId::Sdata } else { SecId::Data };
            let mut bytes = Vec::with_capacity(size as usize);
            let n = g.array_len.unwrap_or(1) as usize;
            for i in 0..n {
                let v = vs.get(i).copied().unwrap_or(0);
                bytes.extend_from_slice(&v.to_le_bytes());
            }
            let off = b.append_data(sec, &bytes);
            b.add_symbol(mk(Symbol::data(g.name.clone(), sec, off, size)));
        }
        GlobalInit::FloatList(vs) => {
            let sec = if small { SecId::Sdata } else { SecId::Data };
            let mut bytes = Vec::with_capacity(size as usize);
            let n = g.array_len.unwrap_or(1) as usize;
            for i in 0..n {
                let v = vs.get(i).copied().unwrap_or(0.0);
                bytes.extend_from_slice(&v.to_bits().to_le_bytes());
            }
            let off = b.append_data(sec, &bytes);
            b.add_symbol(mk(Symbol::data(g.name.clone(), sec, off, size)));
        }
    }
    let _ = vis;
}

/// Emits all of `unit` (functions already optionally optimized/scheduled
/// upstream) into an object module, appending the interned constant pool.
///
/// # Errors
///
/// Returns [`om_objfile::ObjError`] if the produced module fails validation
/// (a codegen bug, surfaced rather than hidden).
pub fn emit_unit(
    unit: &IrUnit,
    funcs: &[crate::code::CFunc],
    consts: &ConstPool,
) -> Result<om_objfile::Module, om_objfile::ObjError> {
    let mut b = ModuleBuilder::new(unit.name.clone());
    for f in funcs {
        f.fixup_into(&mut b, 0);
    }
    for g in &unit.globals {
        emit_global(&mut b, g);
    }
    consts.emit(&mut b);
    b.finish()
}

/// Lowers every function of `unit` to symbolic code (no scheduling).
pub fn select_functions(unit: &IrUnit, consts: &mut ConstPool) -> Vec<crate::code::CFunc> {
    let local = local_mode_fns(unit);
    unit.functions
        .iter()
        .map(|f| FnEmitter::new(f, unit, &local, consts).run())
        .collect()
}
