//! The startup module every program links against.
//!
//! `__start` is ordinary conservative object code — it derives its GP from PV
//! (the simulator boots with `PV = entry`), loads `main`'s address from the
//! GAT, and calls it; `main`'s return value lands in `v0`, which the HALT
//! PALcall reports as the program result. Because crt0 is a normal module,
//! OM optimizes the startup call to `main` exactly like any user call.
//!
//! `__write_int` wraps the simulator's debug-output PALcall so mini-C code
//! can declare `extern int __write_int(int);`.

use crate::code::{Anchor, CodeBuffer, Mark};
use om_alpha::{Inst, PalOp, Reg};
use om_objfile::{Module, ModuleBuilder, ObjError, Visibility};

/// Builds the crt0 module.
///
/// # Errors
///
/// Never fails in practice; the signature propagates builder validation.
pub fn module() -> Result<Module, ObjError> {
    let mut b = ModuleBuilder::new("crt0");

    // __start
    let mut c = CodeBuffer::new();
    let lo = c.fresh_id();
    c.push(
        Inst::ldah(Reg::GP, 0, Reg::PV),
        Mark::GpdispHi { lo, anchor: Anchor::Entry },
    );
    c.push_with_id(lo, Inst::lda(Reg::GP, 0, Reg::GP), Mark::GpdispLo { hi: 0 });
    let load = c.push(
        Inst::ldq(Reg::PV, 0, Reg::GP),
        Mark::Literal { sym: "main".into(), addend: 0 },
    );
    c.push(Inst::jsr(Reg::RA, Reg::PV), Mark::LituseJsr { load });
    // main's result is already in v0; stop the machine.
    c.push(Inst::Pal { op: PalOp::Halt }, Mark::None);
    c.finish("__start".into(), Visibility::Exported)
        .fixup_into(&mut b, 0);

    // __write_int(a0): debug output, returns its argument.
    let mut c = CodeBuffer::new();
    let lo = c.fresh_id();
    c.push(
        Inst::ldah(Reg::GP, 0, Reg::PV),
        Mark::GpdispHi { lo, anchor: Anchor::Entry },
    );
    c.push_with_id(lo, Inst::lda(Reg::GP, 0, Reg::GP), Mark::GpdispLo { hi: 0 });
    c.push(Inst::Pal { op: PalOp::WriteInt }, Mark::None);
    c.inst(Inst::mov(Reg::A0, Reg::V0));
    c.inst(Inst::ret());
    c.finish("__write_int".into(), Visibility::Exported)
        .fixup_into(&mut b, 0);

    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crt0_is_valid_and_exports_start() {
        let m = module().unwrap();
        assert!(m.find_symbol("__start").is_some());
        assert!(m.find_symbol("__write_int").is_some());
        assert!(m.find_symbol("main").is_some(), "main as external ref");
        assert_eq!(m.lita.len(), 1);
    }

    #[test]
    fn start_code_decodes() {
        let m = module().unwrap();
        let insts = om_alpha::decode_all(&m.text).unwrap();
        assert!(insts.iter().any(|i| matches!(i, Inst::Pal { op: PalOp::Halt })));
    }
}
