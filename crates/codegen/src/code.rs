//! Symbolic function code: instructions annotated with the information that
//! becomes relocations, kept in basic blocks so the compile-time scheduler
//! can permute instructions without breaking branch displacements or
//! relocation offsets — everything positional is resolved only at fixup time,
//! when the function is appended to an object module.

use om_alpha::{BrOp, Inst, Reg};
use om_objfile::{ModuleBuilder, RelocKind, SymId, Visibility};
use std::collections::HashMap;

/// Intra-function label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CLabel(pub u32);

/// What the runtime value anchoring a GPDISP pair is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Anchor {
    /// The PV register holds the procedure's entry address.
    Entry,
    /// The RA register holds the return point of the call whose `jsr` carries
    /// the given instruction id.
    AfterCall(u32),
}

/// Symbolic annotation attached to one instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Mark {
    None,
    /// Address load from the GAT slot of `sym + addend`.
    Literal { sym: String, addend: i64 },
    /// Address load whose value escapes into general dataflow: fixup emits
    /// both a `Literal` and a self-referential `LituseAddr` relocation, so
    /// OM knows the use set is not rewritable.
    EscapingLiteral { sym: String, addend: i64 },
    /// Memory use (base register) of the address loaded by instruction `load`.
    LituseBase { load: u32 },
    /// Indirect call through the address loaded by instruction `load`.
    LituseJsr { load: u32 },
    /// Escaping use of the address loaded by instruction `load`.
    LituseAddr { load: u32 },
    /// First half of a GP-establishing pair.
    GpdispHi { lo: u32, anchor: Anchor },
    /// Second half; `hi` names its partner.
    GpdispLo { hi: u32 },
    /// Branch (BSR/BR) to a global symbol.
    BrSym { sym: String },
    /// Branch to an intra-function label.
    BrLabel { label: CLabel },
}

/// One instruction with its annotation and a function-unique id.
///
/// Ids survive scheduling; offsets are assigned at fixup.
#[derive(Debug, Clone, PartialEq)]
pub struct CInst {
    pub id: u32,
    pub inst: Inst,
    pub mark: Mark,
}

/// A basic block: an optional label at its head and straight-line code.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CBlock {
    pub label: Option<CLabel>,
    pub insts: Vec<CInst>,
}

/// A function's code before layout.
#[derive(Debug, Clone, PartialEq)]
pub struct CFunc {
    pub name: String,
    pub vis: Visibility,
    pub blocks: Vec<CBlock>,
}

impl CFunc {
    /// Total instruction count.
    pub fn len(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// True if the function has no instructions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over all instructions in layout order.
    pub fn insts(&self) -> impl Iterator<Item = &CInst> {
        self.blocks.iter().flat_map(|b| b.insts.iter())
    }

    /// Appends the function to `builder`: assigns offsets, fills local branch
    /// displacements, interns GAT slots, converts marks to relocations, and
    /// defines the procedure symbol.
    ///
    /// # Panics
    ///
    /// Panics on dangling labels or mark references — compiler bugs, not
    /// input errors.
    pub fn fixup_into(&self, builder: &mut ModuleBuilder, gp_group: u32) -> SymId {
        let start = builder.here();

        // First pass: assign offsets by id and label positions.
        let mut offset_of_id: HashMap<u32, u64> = HashMap::new();
        let mut offset_of_label: HashMap<CLabel, u64> = HashMap::new();
        let mut off = start;
        for b in &self.blocks {
            if let Some(l) = b.label {
                assert!(
                    offset_of_label.insert(l, off).is_none(),
                    "duplicate label {l:?} in {}",
                    self.name
                );
            }
            for i in &b.insts {
                assert!(
                    offset_of_id.insert(i.id, off).is_none(),
                    "duplicate inst id {} in {}",
                    i.id,
                    self.name
                );
                off += 4;
            }
        }

        // Second pass: emit instructions and relocations.
        for b in &self.blocks {
            for ci in &b.insts {
                let here = builder.here();
                match &ci.mark {
                    Mark::None => {
                        builder.emit(ci.inst);
                    }
                    Mark::Literal { sym, addend } => {
                        let id = builder.external(sym);
                        let slot = builder.lita_slot(id, *addend);
                        builder.emit_reloc(ci.inst, RelocKind::Literal { lita: slot });
                    }
                    Mark::EscapingLiteral { sym, addend } => {
                        let id = builder.external(sym);
                        let slot = builder.lita_slot(id, *addend);
                        let off = builder.emit_reloc(ci.inst, RelocKind::Literal { lita: slot });
                        builder.reloc_at(
                            om_objfile::SecId::Text,
                            off,
                            RelocKind::LituseAddr { load_offset: off },
                        );
                    }
                    Mark::LituseBase { load } => {
                        let lo = offset_of_id[load];
                        builder.emit_reloc(ci.inst, RelocKind::LituseBase { load_offset: lo });
                    }
                    Mark::LituseJsr { load } => {
                        let lo = offset_of_id[load];
                        builder.emit_reloc(ci.inst, RelocKind::LituseJsr { load_offset: lo });
                    }
                    Mark::LituseAddr { load } => {
                        let lo = offset_of_id[load];
                        builder.emit_reloc(ci.inst, RelocKind::LituseAddr { load_offset: lo });
                    }
                    Mark::GpdispHi { lo, anchor } => {
                        let lo_off = offset_of_id[lo];
                        let anchor_off = match anchor {
                            Anchor::Entry => start,
                            Anchor::AfterCall(jsr) => offset_of_id[jsr] + 4,
                        };
                        builder.emit_reloc(
                            ci.inst,
                            RelocKind::Gpdisp {
                                pair_offset: lo_off as i64 - here as i64,
                                anchor: anchor_off,
                                gp_group,
                            },
                        );
                    }
                    Mark::GpdispLo { .. } => {
                        // The pair is described by the Hi half's relocation.
                        builder.emit(ci.inst);
                    }
                    Mark::BrSym { sym } => {
                        let id = builder.external(sym);
                        builder.emit_reloc(ci.inst, RelocKind::BrAddr { sym: id, addend: 0 });
                    }
                    Mark::BrLabel { label } => {
                        let target = *offset_of_label
                            .get(label)
                            .unwrap_or_else(|| panic!("dangling label {label:?} in {}", self.name));
                        let disp = (target as i64 - (here as i64 + 4)) / 4;
                        let inst = match ci.inst {
                            Inst::Br { op, ra, .. } => Inst::Br { op, ra, disp: disp as i32 },
                            other => panic!("BrLabel on non-branch {other}"),
                        };
                        builder.emit(inst);
                    }
                }
            }
        }

        builder.define_proc(&self.name, start, gp_group, self.vis)
    }
}

/// Builds [`CFunc`] bodies: allocates ids and labels, tracks the current
/// block, and splits blocks at labels and control transfers.
#[derive(Debug)]
pub struct CodeBuffer {
    next_id: u32,
    next_label: u32,
    blocks: Vec<CBlock>,
    current: CBlock,
}

impl Default for CodeBuffer {
    fn default() -> Self {
        Self::new()
    }
}

impl CodeBuffer {
    /// Creates an empty buffer.
    pub fn new() -> CodeBuffer {
        CodeBuffer {
            next_id: 0,
            next_label: 0,
            blocks: Vec::new(),
            current: CBlock::default(),
        }
    }

    /// Reserves a fresh label.
    pub fn fresh_label(&mut self) -> CLabel {
        self.next_label += 1;
        CLabel(self.next_label - 1)
    }

    /// Reserves an id without emitting (to reference a future instruction).
    pub fn fresh_id(&mut self) -> u32 {
        self.next_id += 1;
        self.next_id - 1
    }

    /// Emits an instruction with a pre-reserved id.
    pub fn push_with_id(&mut self, id: u32, inst: Inst, mark: Mark) -> u32 {
        let ends_block = matches!(
            inst,
            Inst::Br { .. } | Inst::Jmp { .. } | Inst::Pal { op: om_alpha::PalOp::Halt }
        );
        self.current.insts.push(CInst { id, inst, mark });
        if ends_block {
            self.seal();
        }
        id
    }

    /// Emits an instruction, returning its id. Control transfers end the
    /// current block.
    pub fn push(&mut self, inst: Inst, mark: Mark) -> u32 {
        let id = self.fresh_id();
        self.push_with_id(id, inst, mark)
    }

    /// Emits an unannotated instruction.
    pub fn inst(&mut self, inst: Inst) -> u32 {
        self.push(inst, Mark::None)
    }

    /// Emits a conditional or unconditional branch to a local label.
    pub fn branch(&mut self, op: BrOp, ra: Reg, label: CLabel) -> u32 {
        self.push(Inst::Br { op, ra, disp: 0 }, Mark::BrLabel { label })
    }

    /// Starts a new block at `label`.
    pub fn bind(&mut self, label: CLabel) {
        self.seal();
        self.current.label = Some(label);
    }

    fn seal(&mut self) {
        if self.current.label.is_some() || !self.current.insts.is_empty() {
            self.blocks.push(std::mem::take(&mut self.current));
        }
    }

    /// Finishes the function.
    pub fn finish(mut self, name: String, vis: Visibility) -> CFunc {
        self.seal();
        CFunc { name, vis, blocks: self.blocks }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_alpha::decode_all;

    #[test]
    fn blocks_split_at_branches_and_labels() {
        let mut c = CodeBuffer::new();
        let l = c.fresh_label();
        c.inst(Inst::nop());
        c.branch(BrOp::Br, Reg::ZERO, l);
        c.inst(Inst::nop());
        c.bind(l);
        c.inst(Inst::ret());
        let f = c.finish("f".into(), Visibility::Exported);
        assert_eq!(f.blocks.len(), 3);
        assert_eq!(f.len(), 4);
    }

    #[test]
    fn fixup_resolves_forward_and_backward_branches() {
        let mut c = CodeBuffer::new();
        let top = c.fresh_label();
        c.bind(top);
        c.inst(Inst::nop());
        c.branch(BrOp::Bne, Reg::V0, top); // backward: target -3 words from next pc
        c.inst(Inst::ret());
        let f = c.finish("loopy".into(), Visibility::Exported);

        let mut b = ModuleBuilder::new("m");
        f.fixup_into(&mut b, 0);
        let m = b.finish().unwrap();
        let insts = decode_all(&m.text).unwrap();
        match insts[1] {
            Inst::Br { disp, .. } => assert_eq!(disp, -2),
            other => panic!("{other}"),
        }
    }

    #[test]
    fn fixup_emits_literal_and_lituse_relocs() {
        let mut c = CodeBuffer::new();
        let load = c.push(
            Inst::ldq(Reg::PV, 0, Reg::GP),
            Mark::Literal { sym: "callee".into(), addend: 0 },
        );
        c.push(Inst::jsr(Reg::RA, Reg::PV), Mark::LituseJsr { load });
        c.inst(Inst::ret());
        let f = c.finish("caller".into(), Visibility::Exported);

        let mut b = ModuleBuilder::new("m");
        f.fixup_into(&mut b, 0);
        let m = b.finish().unwrap();
        assert_eq!(m.lita.len(), 1);
        assert_eq!(m.relocs.len(), 2);
        assert!(matches!(m.relocs[0].kind, RelocKind::Literal { lita: 0 }));
        assert!(matches!(m.relocs[1].kind, RelocKind::LituseJsr { load_offset: 0 }));
    }

    #[test]
    fn gpdisp_pair_offsets_follow_instructions() {
        let mut c = CodeBuffer::new();
        let lo_id = c.fresh_id();
        c.push(
            Inst::ldah(Reg::GP, 0, Reg::PV),
            Mark::GpdispHi { lo: lo_id, anchor: Anchor::Entry },
        );
        // An intervening instruction (as a scheduler might create).
        c.inst(Inst::nop());
        c.push_with_id(lo_id, Inst::lda(Reg::GP, 0, Reg::GP), Mark::GpdispLo { hi: 0 });
        c.inst(Inst::ret());
        let f = c.finish("p".into(), Visibility::Exported);

        let mut b = ModuleBuilder::new("m");
        f.fixup_into(&mut b, 0);
        let m = b.finish().unwrap();
        match m.relocs[0].kind {
            RelocKind::Gpdisp { pair_offset, anchor, .. } => {
                assert_eq!(pair_offset, 8);
                assert_eq!(anchor, 0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn second_function_offsets_are_relative_to_module() {
        let mut b = ModuleBuilder::new("m");
        let mut c1 = CodeBuffer::new();
        c1.inst(Inst::ret());
        c1.finish("a".into(), Visibility::Exported).fixup_into(&mut b, 0);

        let mut c2 = CodeBuffer::new();
        let load = c2.push(
            Inst::ldq(Reg::V0, 0, Reg::GP),
            Mark::Literal { sym: "g".into(), addend: 0 },
        );
        c2.push(Inst::ldq(Reg::V0, 0, Reg::V0), Mark::LituseBase { load });
        c2.inst(Inst::ret());
        c2.finish("b".into(), Visibility::Exported).fixup_into(&mut b, 0);

        let m = b.finish().unwrap();
        // `b` starts at offset 4; its literal load is at 4, the use at 8.
        assert!(matches!(
            m.relocs[1].kind,
            RelocKind::LituseBase { load_offset: 4 }
        ));
        let procs = m.procedures();
        assert_eq!(procs.len(), 2);
    }
}
