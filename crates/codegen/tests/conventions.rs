//! The compiled code must exhibit the paper's §2 conventions *exactly*:
//! Figure 1's calling sequence and Figure 2's global-variable access are
//! checked structurally against the emitted object code and its relocations.

use om_alpha::{decode_all, BrOp, Inst, JmpOp, MemOp, Reg};
use om_codegen::{compile_source, CompileOpts};
use om_objfile::{Module, RelocKind, SymbolDef};

fn compile(src: &str) -> Module {
    compile_source("m", src, &CompileOpts::o2()).unwrap()
}

fn proc_insts(m: &Module, name: &str) -> Vec<Inst> {
    let id = m.find_symbol(name).unwrap();
    let SymbolDef::Proc { offset, size, .. } = m.symbol(id).def else { panic!() };
    decode_all(&m.text[offset as usize..(offset + size) as usize]).unwrap()
}

#[test]
fn figure1_entry_gp_establishment() {
    // "The routine on the left sets its GP on entry ... it computes the GP
    // from the value of the PV register."
    let m = compile("int g; int f(int x) { g = g + x; return g; }");
    let insts = proc_insts(&m, "f");
    let ldah = insts
        .iter()
        .find(|i| matches!(i, Inst::Mem { op: MemOp::Ldah, ra, rb, .. } if *ra == Reg::GP && *rb == Reg::PV))
        .expect("ldah gp, hi(pv) somewhere in the prologue region");
    let _ = ldah;
    // And it carries a GPDISP relocation anchored at the entry.
    let id = m.find_symbol("f").unwrap();
    let SymbolDef::Proc { offset, .. } = m.symbol(id).def else { panic!() };
    assert!(
        m.text_relocs().any(|r| matches!(
            r.kind,
            RelocKind::Gpdisp { anchor, .. } if anchor == offset
        )),
        "entry GPDISP must anchor at the procedure entry"
    );
}

#[test]
fn figure1_call_sequence_and_after_call_reset() {
    // Call site: ldq pv, lit(gp); jsr ra, (pv); then ldah gp, hi(ra) + lda.
    let m = compile(
        "extern int callee(int);
         int f(int x) { return callee(x) + 1; }",
    );
    let insts = proc_insts(&m, "f");
    let jsr_at = insts
        .iter()
        .position(|i| matches!(i, Inst::Jmp { op: JmpOp::Jsr, rb, .. } if *rb == Reg::PV))
        .expect("jsr through PV");
    // PV loaded from the GAT somewhere before the JSR.
    assert!(
        insts[..jsr_at]
            .iter()
            .any(|i| matches!(i, Inst::Mem { op: MemOp::Ldq, ra, rb, .. } if *ra == Reg::PV && *rb == Reg::GP)),
        "pv must come from a GAT load"
    );
    // The GP reset pair follows, reading RA ("after the return it uses the
    // return address register RA").
    assert!(
        insts[jsr_at + 1..]
            .iter()
            .any(|i| matches!(i, Inst::Mem { op: MemOp::Ldah, ra, rb, .. } if *ra == Reg::GP && *rb == Reg::RA)),
        "after-call GP reset from RA"
    );
    // Relocation structure: LITERAL on the load, LITUSE_JSR on the jsr,
    // GPDISP anchored at the return point.
    let id = m.find_symbol("f").unwrap();
    let SymbolDef::Proc { offset, .. } = m.symbol(id).def else { panic!() };
    let jsr_off = offset + 4 * jsr_at as u64;
    assert!(m
        .text_relocs()
        .any(|r| r.offset == jsr_off && matches!(r.kind, RelocKind::LituseJsr { .. })));
    assert!(m.text_relocs().any(|r| matches!(
        r.kind,
        RelocKind::Gpdisp { anchor, .. } if anchor == jsr_off + 4
    )));
}

#[test]
fn figure2_global_access_goes_through_the_gat() {
    // "Obtaining the address of a variable is done by an address load from
    // the GAT ... a fetch consists of the address load followed by a load."
    let m = compile("int v; int f() { return v; }");
    let insts = proc_insts(&m, "f");
    // An LDQ off GP (the address load) followed (somewhere) by an LDQ off
    // the loaded register.
    let addr_load = insts
        .iter()
        .position(|i| matches!(i, Inst::Mem { op: MemOp::Ldq, rb, .. } if *rb == Reg::GP))
        .expect("address load via GP");
    let Inst::Mem { ra: addr_reg, .. } = insts[addr_load] else { unreachable!() };
    assert!(
        insts[addr_load + 1..]
            .iter()
            .any(|i| matches!(i, Inst::Mem { op: MemOp::Ldq, rb, .. } if *rb == addr_reg)),
        "value load through the loaded address"
    );
    // The module's GAT has a slot naming `v`, and the load carries LITERAL.
    assert!(m.lita.iter().any(|e| m.symbol(e.sym).name == "v"));
    assert!(m.text_relocs().any(|r| matches!(r.kind, RelocKind::Literal { .. })));
    assert!(m.text_relocs().any(|r| matches!(r.kind, RelocKind::LituseBase { .. })));
}

#[test]
fn static_calls_use_bsr_without_bookkeeping() {
    // "It is possible to optimize a call to an unexported routine in the
    // same module at compile-time."
    let m = compile(
        "static int helper(int x) { return x * 2; }
         int f(int x) { return helper(x); }",
    );
    let insts = proc_insts(&m, "f");
    assert!(
        insts.iter().any(|i| matches!(i, Inst::Br { op: BrOp::Bsr, .. })),
        "intra-module static call compiles to BSR"
    );
    assert!(
        !insts
            .iter()
            .any(|i| matches!(i, Inst::Mem { op: MemOp::Ldq, ra, .. } if *ra == Reg::PV)),
        "no PV load for the optimized call"
    );
    // And the local-mode callee has no GPDISP prologue.
    let h = proc_insts(&m, "helper");
    assert!(
        !h.iter()
            .any(|i| matches!(i, Inst::Mem { op: MemOp::Ldah, ra, .. } if *ra == Reg::GP)),
        "local-mode callee needs no GP establishment"
    );
}

#[test]
fn address_taken_statics_stay_conservative() {
    let m = compile(
        "static int cb(int x) { return x + 1; }
         fnptr h;
         int f(int x) { h = &cb; return cb(x); }",
    );
    // cb's address is taken, so it is NOT local-mode: calls go through PV.
    let insts = proc_insts(&m, "f");
    assert!(
        insts
            .iter()
            .any(|i| matches!(i, Inst::Jmp { op: JmpOp::Jsr, .. })),
        "call to address-taken static must stay a JSR"
    );
    let cb = proc_insts(&m, "cb");
    assert!(
        cb.iter()
            .any(|i| matches!(i, Inst::Mem { op: MemOp::Ldah, ra, rb, .. } if *ra == Reg::GP && *rb == Reg::PV)),
        "address-taken static keeps its GPDISP prologue"
    );
    // Its GAT-loaded address is marked escaping (self LITUSE_ADDR).
    assert!(m.text_relocs().any(|r| matches!(
        r.kind,
        RelocKind::LituseAddr { load_offset } if load_offset == r.offset
    )));
}

#[test]
fn frame_discipline_saves_and_restores() {
    let m = compile(
        "extern int sink(int);
         int f(int x) { int a = sink(x); return a + sink(a); }",
    );
    let insts = proc_insts(&m, "f");
    // Frame allocated and released by equal-and-opposite LDA sp adjustments.
    let down: i64 = insts
        .iter()
        .filter_map(|i| match i {
            Inst::Mem { op: MemOp::Lda, ra, rb, disp }
                if *ra == Reg::SP && *rb == Reg::SP && *disp < 0 =>
            {
                Some(*disp as i64)
            }
            _ => None,
        })
        .sum();
    let up: i64 = insts
        .iter()
        .filter_map(|i| match i {
            Inst::Mem { op: MemOp::Lda, ra, rb, disp }
                if *ra == Reg::SP && *rb == Reg::SP && *disp > 0 =>
            {
                Some(*disp as i64)
            }
            _ => None,
        })
        .sum();
    assert!(down < 0 && up == -down, "sp adjusts balance: {down} vs {up}");
    // RA saved and restored (the function calls).
    assert!(insts
        .iter()
        .any(|i| matches!(i, Inst::Mem { op: MemOp::Stq, ra, rb, .. } if *ra == Reg::RA && *rb == Reg::SP)));
    assert!(insts
        .iter()
        .any(|i| matches!(i, Inst::Mem { op: MemOp::Ldq, ra, rb, .. } if *ra == Reg::RA && *rb == Reg::SP)));
}
