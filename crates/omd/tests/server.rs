//! End-to-end tests of the link server: caching, byte-identity with the
//! one-shot pipeline, malformed-input isolation, poison-safety under
//! injected faults, and the socket front end.

use om_codegen::{compile_source, crt0, CompileOpts};
use om_core::{
    optimize_and_link_with, FaultKind, FaultPlan, OmError, OmLevel, OmOptions,
};
use om_objfile::{Module, Reloc, RelocKind, SymId, Symbol};
use om_omd::{serve, Client, LinkServer};
use std::sync::Arc;

const MAIN_SRC: &str = "extern int helper(int);
     int total;
     int main() { int i = 0;
        for (i = 0; i < 6; i = i + 1) { total = total + helper(i); }
        return total; }";

const HELPER_SRC: &str = "int helper(int x) { return x * 3 + 1; }";
const HELPER_EDITED: &str = "int helper(int x) { return x * 3 + 2; }";

/// crt0 + main + helper: three modules, so per-module accounting is
/// observable (M = 3).
fn program(helper_src: &str) -> Vec<Module> {
    let opts = CompileOpts::o2();
    vec![
        crt0::module().unwrap(),
        compile_source("main", MAIN_SRC, &opts).unwrap(),
        compile_source("helper", helper_src, &opts).unwrap(),
    ]
}

/// A structurally broken module: a patch-field relocation hanging off the
/// end of the text section. `Module::validate` rejects it, so the link
/// must fail with a typed error.
fn broken_module() -> Module {
    let mut m = Module::new("broken");
    m.text = vec![0u8; 16];
    m.symbols.push(Symbol::proc("__broken", 0, 16, 0));
    m.relocs.push(Reloc::text(14, RelocKind::Gprel16 { sym: SymId(0), addend: 0, gp_group: 0 }));
    m
}

#[test]
fn repeat_requests_are_cached_and_byte_identical() {
    let server = LinkServer::new(vec![]);
    let objects = program(HELPER_SRC);
    let options = OmOptions::default();

    let first = server.link(&objects, OmLevel::FullSched, &options).unwrap();
    assert!(!first.cached, "first request must compute");
    let second = server.link(&objects, OmLevel::FullSched, &options).unwrap();
    assert!(second.cached, "identical request must be served from cache");
    assert_eq!(
        first.output.image.to_bytes(),
        second.output.image.to_bytes(),
        "cached reply must be byte-identical"
    );

    // And identical to a one-shot, cache-free pipeline run.
    let oneshot = optimize_and_link_with(&objects, &[], OmLevel::FullSched, &options).unwrap();
    assert_eq!(oneshot.image.to_bytes(), first.output.image.to_bytes());

    // Different level → different key → fresh link.
    let simple = server.link(&objects, OmLevel::Simple, &options).unwrap();
    assert!(!simple.cached);
}

#[test]
fn single_module_edit_misses_only_that_module() {
    let server = LinkServer::new(vec![]);
    let options = OmOptions::default();

    let before = program(HELPER_SRC);
    server.link(&before, OmLevel::Full, &options).unwrap();
    let base = server.caches().modules.stats();
    assert_eq!(base.misses, 3, "cold link translates all three modules");
    assert_eq!(base.hits, 0);

    // Edit exactly one module; the other two must be translation-cache hits.
    let after = program(HELPER_EDITED);
    let relinked = server.link(&after, OmLevel::Full, &options).unwrap();
    assert!(!relinked.cached, "edited input is a new link key");
    let now = server.caches().modules.stats();
    assert_eq!(now.misses - base.misses, 1, "only the edited module re-translates");
    assert_eq!(now.hits - base.hits, 2, "unchanged modules are cache hits");

    // The relink is still semantically right: helper now adds 2 per call.
    let run = om_sim::run_image(&relinked.output.image, 1_000_000).unwrap();
    assert_eq!(run.result, (0..6).map(|i| i * 3 + 2).sum::<i64>());
}

#[test]
fn malformed_module_is_a_typed_error_and_the_server_survives() {
    let server = LinkServer::new(vec![]);
    let options = OmOptions::default();

    let mut objects = program(HELPER_SRC);
    objects.push(broken_module());
    let err = server.link(&objects, OmLevel::Full, &options).unwrap_err();
    assert!(matches!(err, OmError::Link(_)), "got {err}");
    assert_eq!(server.caches().links.stats().aborts, 1, "failed link releases its slot");
    assert_eq!(server.caches().links.len(), 0, "no entry may be left behind");

    // The server keeps serving: the same objects without the broken module
    // link fine, and a retry of the broken request fails again (recomputed,
    // not wedged).
    let ok = server.link(&objects[..3], OmLevel::Full, &options).unwrap();
    assert!(!ok.cached);
    let again = server.link(&objects, OmLevel::Full, &options).unwrap_err();
    assert!(matches!(again, OmError::Link(_)));
    assert_eq!(server.caches().links.stats().aborts, 2);
}

#[test]
fn faulted_request_poisons_nobody_and_recovery_is_clean() {
    let server = Arc::new(LinkServer::new(vec![]));
    let objects = program(HELPER_SRC);

    // CountSkew under verify=true makes the pipeline itself fail (the
    // verifier catches the skewed deletion counter), mid-request, after the
    // cache slot is reserved. Every fresh FaultPlan with the same (kind,
    // site) fingerprints identically, so all these requests share one key.
    let faulted = || OmOptions {
        verify: true,
        fault: Some(FaultPlan::new(FaultKind::CountSkew, 0)),
        ..OmOptions::default()
    };

    // Many threads race the same doomed request: each must observe the
    // verification error — none may hang on a wedged in-flight slot.
    let workers: Vec<_> = (0..6)
        .map(|_| {
            let server = Arc::clone(&server);
            let objects = objects.clone();
            std::thread::spawn(move || {
                server.link(&objects, OmLevel::Full, &faulted()).unwrap_err()
            })
        })
        .collect();
    for w in workers {
        let err = w.join().expect("worker must not panic");
        assert!(matches!(err, OmError::Verify { .. }), "got {err}");
    }
    assert_eq!(server.caches().links.len(), 0, "failed computes must leave no entry");
    let aborts = server.caches().links.stats().aborts;
    assert!(aborts >= 1, "every failure released its reservation ({aborts} aborts)");

    // The same objects without the fault are a different key and link fine;
    // a later faulted retry still recomputes (and fails) rather than
    // hanging on stale state.
    let clean = server.link(&objects, OmLevel::Full, &OmOptions::default()).unwrap();
    assert!(!clean.cached);
    let retry = server.link(&objects, OmLevel::Full, &faulted()).unwrap_err();
    assert!(matches!(retry, OmError::Verify { .. }));
}

#[test]
fn socket_round_trip_serves_cached_links_and_shuts_down() {
    let path = std::env::temp_dir().join(format!("omd-test-{}.sock", std::process::id()));
    let handle = serve(&path, Arc::new(LinkServer::new(vec![]))).unwrap();
    let objects = program(HELPER_SRC);

    let mut client = Client::connect(&path).unwrap();
    let pong = client.ping().unwrap();
    assert_eq!(pong.version, env!("CARGO_PKG_VERSION"));
    assert_eq!(pong.requests, 1, "the first request is this ping itself");

    let (cached1, image1) = client.link(&objects, OmLevel::FullSched, false).unwrap().unwrap();
    assert!(!cached1);
    let (cached2, image2) = client.link(&objects, OmLevel::FullSched, false).unwrap().unwrap();
    assert!(cached2, "second identical request over the wire is a cache hit");
    assert_eq!(image1.to_bytes(), image2.to_bytes());

    // Byte-identical to the in-process one-shot pipeline.
    let oneshot =
        optimize_and_link_with(&objects, &[], OmLevel::FullSched, &OmOptions::default()).unwrap();
    assert_eq!(oneshot.image.to_bytes(), image1.to_bytes());

    // A bad request over the wire is an error reply, not a dead server.
    let mut bad = objects.clone();
    bad.push(broken_module());
    let err = client.link(&bad, OmLevel::Full, false).unwrap().unwrap_err();
    assert!(!err.is_empty());
    let pong = client.ping().unwrap();
    assert_eq!(pong.requests, 5, "first ping + 3 links + this ping");

    // An undecodable frame is an error reply too — and lands in the
    // `error` latency bucket rather than a named endpoint.
    {
        use om_omd::wire::{decode_reply, read_frame, write_frame, Reply};
        let mut raw = std::os::unix::net::UnixStream::connect(&path).unwrap();
        write_frame(&mut raw, &[0xEE, 1, 2, 3]).unwrap();
        let reply = decode_reply(&read_frame(&mut raw).unwrap()).unwrap();
        assert!(matches!(reply, Reply::Error(_)), "got {reply:?}");
    }

    let stats = client.stats().unwrap();
    assert!(
        stats.caches.contains("links:"),
        "stats line should mention the link cache: {}",
        stats.caches
    );
    assert_eq!(stats.version, env!("CARGO_PKG_VERSION"));
    assert_eq!(stats.requests, 7, "…plus the raw error frame and this stats request");
    assert!(stats.bytes_in > 0 && stats.bytes_out > 0);
    let count = |name: &str| {
        stats
            .endpoints
            .iter()
            .find(|ep| ep.name == name)
            .map_or(0, |ep| ep.latency_us.count())
    };
    assert_eq!(count("ping"), 2);
    assert_eq!(count("link"), 3, "two good links plus the rejected one");
    assert_eq!(count("error"), 1, "the undecodable frame");
    // This stats request itself is mid-flight while the snapshot is taken;
    // a second request observes it completed.
    let again = client.stats().unwrap();
    assert_eq!(
        again.endpoints.iter().find(|ep| ep.name == "stats").map(|ep| ep.latency_us.count()),
        Some(1)
    );
    assert!(again.uptime_ms >= stats.uptime_ms);

    client.shutdown().unwrap();
    handle.wait();
    assert!(
        Client::connect(&path).is_err(),
        "socket file must be gone after shutdown"
    );
}
