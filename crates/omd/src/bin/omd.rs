//! `omd` — the OM link server, on the command line.
//!
//! ```text
//! omd serve <socket> [--trace-json OUT.json]   # serve (foreground) with the stdlib
//! omd link <socket> [--level L] [--verify] -o <out> <obj>...
//! omd ping <socket>
//! omd stats <socket>
//! omd shutdown <socket>
//! ```
//!
//! `serve` links every request against the pre-compiled workload stdlib —
//! compiled once at startup, cached for the life of the server. `link`
//! sends serialized object modules (as written by
//! [`om_objfile::binary::write_module`]) and writes the linked image bytes
//! to `-o`.
//!
//! `ping` reports the server's version, uptime, and cumulative request
//! count; `stats` adds the cache counters, wire byte totals, and a
//! per-endpoint request-latency table (p50/p99 from the server's log2
//! histograms). `serve --trace-json` records every request as an
//! `omd.<endpoint>` span — link requests carry the whole pipeline's spans
//! nested inside — and writes the chrome://tracing file at shutdown.

use om_core::OmLevel;
use om_objfile::binary;
use om_omd::{serve_traced, Client, LinkServer};
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str = "usage:
  omd serve <socket> [--trace-json OUT.json]
  omd link <socket> [--level none|simple|full|full-sched] [--verify] -o <out> <obj>...
  omd ping <socket>
  omd stats <socket>
  omd shutdown <socket>";

fn fail(msg: &str) -> ExitCode {
    eprintln!("omd: {msg}");
    ExitCode::FAILURE
}

fn parse_level(s: &str) -> Option<OmLevel> {
    match s {
        "none" => Some(OmLevel::None),
        "simple" => Some(OmLevel::Simple),
        "full" => Some(OmLevel::Full),
        "full-sched" | "fullsched" => Some(OmLevel::FullSched),
        _ => None,
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => return fail(USAGE),
    };
    match cmd {
        "serve" => cmd_serve(rest),
        "link" => cmd_link(rest),
        "ping" | "stats" | "shutdown" => cmd_simple(cmd, rest),
        _ => fail(USAGE),
    }
}

fn cmd_serve(rest: &[String]) -> ExitCode {
    let mut socket = None;
    let mut trace_json = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--trace-json" => match it.next() {
                Some(p) if !p.is_empty() && !p.starts_with('-') => trace_json = Some(p.clone()),
                _ => return fail("--trace-json needs an output path"),
            },
            _ if socket.is_none() => socket = Some(arg.clone()),
            other => return fail(&format!("unknown serve option {other}")),
        }
    }
    let Some(socket) = socket else { return fail(USAGE) };
    let libs = match om_workloads::stdlib_libs() {
        Ok(libs) => libs.to_vec(),
        Err(e) => return fail(&format!("stdlib: {e}")),
    };
    let server = Arc::new(LinkServer::new(libs));
    let trace = trace_json.as_ref().map(|_| om_obs::Trace::new());
    match serve_traced(&socket, server, trace.clone()) {
        Ok(handle) => {
            eprintln!("omd: serving on {socket}");
            handle.wait();
            if let (Some(out), Some(t)) = (&trace_json, &trace) {
                if let Err(e) = std::fs::write(out, t.chrome_json("omd")) {
                    return fail(&format!("cannot write {out}: {e}"));
                }
                eprintln!("omd: wrote trace {out}");
            }
            eprintln!("omd: shut down");
            ExitCode::SUCCESS
        }
        Err(e) => fail(&format!("bind {socket}: {e}")),
    }
}

fn cmd_simple(cmd: &str, rest: &[String]) -> ExitCode {
    let [socket] = rest else { return fail(USAGE) };
    let mut client = match Client::connect(socket) {
        Ok(c) => c,
        Err(e) => return fail(&format!("connect {socket}: {e}")),
    };
    let outcome = match cmd {
        "ping" => client.ping().map(|p| {
            if p.version.is_empty() {
                "pong (pre-version server)".to_string()
            } else {
                format!(
                    "pong: omd {} up {} ms, {} requests served",
                    p.version, p.uptime_ms, p.requests
                )
            }
        }),
        "stats" => client.stats().map(|s| {
            let mut out = format!(
                "omd {} up {} ms | {} requests | wire {} B in, {} B out\n{}",
                s.version, s.uptime_ms, s.requests, s.bytes_in, s.bytes_out, s.caches
            );
            for ep in &s.endpoints {
                let h = &ep.latency_us;
                out.push_str(&format!(
                    "\n{:>9}: {} requests, p50 {} us, p99 {} us (min {}, max {})",
                    ep.name,
                    h.count(),
                    h.p50(),
                    h.p99(),
                    h.min(),
                    h.max()
                ));
            }
            out
        }),
        _ => client.shutdown().map(|()| "shutting down".to_string()),
    };
    match outcome {
        Ok(line) => {
            println!("{line}");
            ExitCode::SUCCESS
        }
        Err(e) => fail(&format!("{cmd}: {e}")),
    }
}

fn cmd_link(rest: &[String]) -> ExitCode {
    let mut socket = None;
    let mut level = OmLevel::Full;
    let mut verify = false;
    let mut out_path = None;
    let mut objects = Vec::new();
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--level" => match it.next().map(|s| parse_level(s)) {
                Some(Some(l)) => level = l,
                _ => return fail("bad or missing --level value"),
            },
            "--verify" => verify = true,
            "-o" => match it.next() {
                Some(p) => out_path = Some(p.clone()),
                None => return fail("missing -o value"),
            },
            _ if socket.is_none() => socket = Some(arg.clone()),
            _ => objects.push(arg.clone()),
        }
    }
    let (Some(socket), Some(out_path)) = (socket, out_path) else { return fail(USAGE) };
    if objects.is_empty() {
        return fail("no object files given");
    }

    let mut modules = Vec::new();
    for path in &objects {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) => return fail(&format!("read {path}: {e}")),
        };
        match binary::read_module(&bytes) {
            Ok(m) => modules.push(m),
            Err(e) => return fail(&format!("{path}: {e}")),
        }
    }

    let mut client = match Client::connect(&socket) {
        Ok(c) => c,
        Err(e) => return fail(&format!("connect {socket}: {e}")),
    };
    match client.link(&modules, level, verify) {
        Ok(Ok((cached, image))) => {
            if let Err(e) = std::fs::write(&out_path, image.to_bytes()) {
                return fail(&format!("write {out_path}: {e}"));
            }
            eprintln!("omd: linked {} ({})", out_path, if cached { "cached" } else { "fresh" });
            ExitCode::SUCCESS
        }
        Ok(Err(msg)) => fail(&format!("link failed: {msg}")),
        Err(e) => fail(&format!("link: {e}")),
    }
}
