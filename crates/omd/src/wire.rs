//! The socket protocol: length-framed binary messages.
//!
//! Every message is a `u32` little-endian payload length followed by that
//! many payload bytes. The first payload byte is a tag; the rest is
//! tag-specific. Module and image bodies reuse the existing serializers
//! ([`om_objfile::binary::write_module`] and
//! [`om_linker::Image::to_bytes`]) — the wire never invents a second
//! encoding for either.

use om_core::OmLevel;
use std::io::{self, Read, Write};

/// Upper bound on a single frame, as a denial-of-nonsense guard: a corrupt
/// or hostile length prefix fails fast instead of allocating gigabytes.
pub const MAX_FRAME: u32 = 64 << 20;

const REQ_PING: u8 = 0;
const REQ_LINK: u8 = 1;
const REQ_STATS: u8 = 2;
const REQ_SHUTDOWN: u8 = 3;

const REP_PONG: u8 = 0;
const REP_LINKED: u8 = 1;
const REP_STATS: u8 = 2;
const REP_SHUTDOWN: u8 = 3;
const REP_ERROR: u8 = 4;

/// A client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Link serialized modules (each produced by
    /// [`om_objfile::binary::write_module`]) at `level`, optionally with
    /// structural verification.
    Link { level: OmLevel, verify: bool, objects: Vec<Vec<u8>> },
    /// Ask for the server's cache statistics line.
    Stats,
    /// Stop accepting connections and exit the serve loop.
    Shutdown,
}

/// A server reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// `Ping` acknowledged.
    Pong,
    /// A finished link: whether the whole link came from cache, and the
    /// image serialized by [`om_linker::Image::to_bytes`].
    Linked { cached: bool, image: Vec<u8> },
    /// The server's cache statistics line.
    Stats(String),
    /// `Shutdown` acknowledged; the server exits after this reply.
    ShuttingDown,
    /// The request failed; the message is the error's `Display` form.
    Error(String),
}

/// Writes one length-framed payload.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME as usize {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-framed payload, rejecting oversized lengths before
/// allocating.
pub fn read_frame(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(bytes);
}

fn take_u32(bytes: &[u8], at: &mut usize) -> Result<u32, String> {
    let end = at.checked_add(4).filter(|&e| e <= bytes.len()).ok_or("truncated u32")?;
    let v = u32::from_le_bytes(bytes[*at..end].try_into().unwrap());
    *at = end;
    Ok(v)
}

fn take_bytes(bytes: &[u8], at: &mut usize) -> Result<Vec<u8>, String> {
    let len = take_u32(bytes, at)? as usize;
    let end = at.checked_add(len).filter(|&e| e <= bytes.len()).ok_or("truncated body")?;
    let v = bytes[*at..end].to_vec();
    *at = end;
    Ok(v)
}

/// Serializes a request payload (frame it with [`write_frame`]).
pub fn encode_request(req: &Request) -> Vec<u8> {
    match req {
        Request::Ping => vec![REQ_PING],
        Request::Stats => vec![REQ_STATS],
        Request::Shutdown => vec![REQ_SHUTDOWN],
        Request::Link { level, verify, objects } => {
            let mut out = vec![REQ_LINK, level.index() as u8, u8::from(*verify)];
            out.extend_from_slice(&(objects.len() as u32).to_le_bytes());
            for obj in objects {
                put_bytes(&mut out, obj);
            }
            out
        }
    }
}

/// Parses a request payload. Malformed input is an error string, never a
/// panic — the serve loop turns it into a [`Reply::Error`].
pub fn decode_request(bytes: &[u8]) -> Result<Request, String> {
    match bytes.first() {
        None => Err("empty request".to_string()),
        Some(&REQ_PING) => Ok(Request::Ping),
        Some(&REQ_STATS) => Ok(Request::Stats),
        Some(&REQ_SHUTDOWN) => Ok(Request::Shutdown),
        Some(&REQ_LINK) => {
            let mut at = 1;
            let level_index =
                *bytes.get(at).ok_or("truncated link request: missing level")? as usize;
            let level = *OmLevel::ALL
                .get(level_index)
                .ok_or_else(|| format!("unknown level index {level_index}"))?;
            at += 1;
            let verify = match bytes.get(at) {
                Some(0) => false,
                Some(1) => true,
                Some(v) => return Err(format!("bad verify flag {v}")),
                None => return Err("truncated link request: missing verify flag".to_string()),
            };
            at += 1;
            let count = take_u32(bytes, &mut at)?;
            let mut objects = Vec::new();
            for _ in 0..count {
                objects.push(take_bytes(bytes, &mut at)?);
            }
            Ok(Request::Link { level, verify, objects })
        }
        Some(tag) => Err(format!("unknown request tag {tag}")),
    }
}

/// Serializes a reply payload (frame it with [`write_frame`]).
pub fn encode_reply(rep: &Reply) -> Vec<u8> {
    match rep {
        Reply::Pong => vec![REP_PONG],
        Reply::ShuttingDown => vec![REP_SHUTDOWN],
        Reply::Stats(s) => {
            let mut out = vec![REP_STATS];
            out.extend_from_slice(s.as_bytes());
            out
        }
        Reply::Error(msg) => {
            let mut out = vec![REP_ERROR];
            out.extend_from_slice(msg.as_bytes());
            out
        }
        Reply::Linked { cached, image } => {
            let mut out = vec![REP_LINKED, u8::from(*cached)];
            put_bytes(&mut out, image);
            out
        }
    }
}

/// Parses a reply payload.
pub fn decode_reply(bytes: &[u8]) -> Result<Reply, String> {
    match bytes.first() {
        None => Err("empty reply".to_string()),
        Some(&REP_PONG) => Ok(Reply::Pong),
        Some(&REP_SHUTDOWN) => Ok(Reply::ShuttingDown),
        Some(&REP_STATS) => String::from_utf8(bytes[1..].to_vec())
            .map(Reply::Stats)
            .map_err(|e| format!("stats reply not utf8: {e}")),
        Some(&REP_ERROR) => String::from_utf8(bytes[1..].to_vec())
            .map(Reply::Error)
            .map_err(|e| format!("error reply not utf8: {e}")),
        Some(&REP_LINKED) => {
            let cached = match bytes.get(1) {
                Some(0) => false,
                Some(1) => true,
                Some(v) => return Err(format!("bad cached flag {v}")),
                None => return Err("truncated linked reply".to_string()),
            };
            let mut at = 2;
            let image = take_bytes(bytes, &mut at)?;
            Ok(Reply::Linked { cached, image })
        }
        Some(tag) => Err(format!("unknown reply tag {tag}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Ping,
            Request::Stats,
            Request::Shutdown,
            Request::Link {
                level: OmLevel::FullSched,
                verify: true,
                objects: vec![vec![1, 2, 3], vec![], vec![0xFF; 9]],
            },
        ];
        for req in &reqs {
            assert_eq!(&decode_request(&encode_request(req)).unwrap(), req);
        }
    }

    #[test]
    fn replies_round_trip() {
        let reps = [
            Reply::Pong,
            Reply::ShuttingDown,
            Reply::Stats("modules: 3 entries".to_string()),
            Reply::Error("no such symbol".to_string()),
            Reply::Linked { cached: true, image: vec![7; 32] },
        ];
        for rep in &reps {
            assert_eq!(&decode_reply(&encode_reply(rep)).unwrap(), rep);
        }
    }

    #[test]
    fn malformed_payloads_are_errors_not_panics() {
        let cases: &[&[u8]] = &[
            &[],
            &[9],
            &[REQ_LINK],
            &[REQ_LINK, 99, 0],
            &[REQ_LINK, 0, 7],
            &[REQ_LINK, 0, 1, 5, 0, 0, 0, 1, 0, 0, 0], // count=5, one short body
            &[REQ_LINK, 0, 1, 1, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0x7F], // huge body len
        ];
        for c in cases {
            assert!(decode_request(c).is_err(), "{c:?} should fail to decode");
        }
        assert!(decode_reply(&[]).is_err());
        assert!(decode_reply(&[REP_LINKED, 2]).is_err());
        assert!(decode_reply(&[0xEE]).is_err());
    }

    #[test]
    fn frames_round_trip_and_bound_length() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        let got = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(got, b"hello");

        let mut bogus = ((MAX_FRAME + 1).to_le_bytes()).to_vec();
        bogus.extend_from_slice(&[0; 16]);
        assert!(read_frame(&mut bogus.as_slice()).is_err());
    }
}
