//! The socket protocol: length-framed binary messages.
//!
//! Every message is a `u32` little-endian payload length followed by that
//! many payload bytes. The first payload byte is a tag; the rest is
//! tag-specific. Module and image bodies reuse the existing serializers
//! ([`om_objfile::binary::write_module`] and
//! [`om_linker::Image::to_bytes`]) — the wire never invents a second
//! encoding for either.

use om_core::OmLevel;
use om_obs::Histogram;
use std::io::{self, Read, Write};

/// Upper bound on a single frame, as a denial-of-nonsense guard: a corrupt
/// or hostile length prefix fails fast instead of allocating gigabytes.
pub const MAX_FRAME: u32 = 64 << 20;

const REQ_PING: u8 = 0;
const REQ_LINK: u8 = 1;
const REQ_STATS: u8 = 2;
const REQ_SHUTDOWN: u8 = 3;

const REP_PONG: u8 = 0;
const REP_LINKED: u8 = 1;
const REP_STATS: u8 = 2;
const REP_SHUTDOWN: u8 = 3;
const REP_ERROR: u8 = 4;

/// A client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Link serialized modules (each produced by
    /// [`om_objfile::binary::write_module`]) at `level`, optionally with
    /// structural verification.
    Link { level: OmLevel, verify: bool, objects: Vec<Vec<u8>> },
    /// Ask for the server's cache statistics line.
    Stats,
    /// Stop accepting connections and exit the serve loop.
    Shutdown,
}

/// A `Pong` reply's payload: who is serving, for how long, and how many
/// requests it has handled so far (this ping included).
///
/// The original protocol's pong carried no payload at all. The decoder
/// keeps accepting that empty form and fills in these legacy defaults
/// (empty version, zero uptime and count), so a new client can ping an old
/// server and tell the difference.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Pong {
    /// The server's `CARGO_PKG_VERSION` (empty from a pre-version server).
    pub version: String,
    /// Milliseconds since the server started.
    pub uptime_ms: u64,
    /// Cumulative requests served over the socket.
    pub requests: u64,
}

/// One endpoint's request-latency histogram (microseconds), shipped sparse
/// over the wire ([`Histogram::nonzero`] on encode, [`Histogram::from_sparse`]
/// on decode — malformed bucket data is a typed decode error).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EndpointStats {
    /// Endpoint name: `ping`, `link`, `stats`, `shutdown`, or `error`.
    pub name: String,
    /// Request latencies in microseconds.
    pub latency_us: Histogram,
}

/// The full `Stats` reply: the legacy cache line plus the server's request
/// metrics and per-endpoint latency histograms.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// The human-readable cache statistics line (the whole pre-metrics
    /// stats reply).
    pub caches: String,
    /// The server's `CARGO_PKG_VERSION`.
    pub version: String,
    /// Milliseconds since the server started.
    pub uptime_ms: u64,
    /// Cumulative requests served over the socket.
    pub requests: u64,
    /// Total request bytes read off the wire (frames included).
    pub bytes_in: u64,
    /// Total reply bytes written to the wire (frames included).
    pub bytes_out: u64,
    /// Per-endpoint latency histograms, sorted by endpoint name.
    pub endpoints: Vec<EndpointStats>,
}

/// A server reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// `Ping` acknowledged, with the server's identity and uptime.
    Pong(Pong),
    /// A finished link: whether the whole link came from cache, and the
    /// image serialized by [`om_linker::Image::to_bytes`].
    Linked { cached: bool, image: Vec<u8> },
    /// The server's statistics: cache line, wire counters, and latency
    /// histograms.
    Stats(ServerStats),
    /// `Shutdown` acknowledged; the server exits after this reply.
    ShuttingDown,
    /// The request failed; the message is the error's `Display` form.
    Error(String),
}

/// Writes one length-framed payload.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME as usize {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-framed payload, rejecting oversized lengths before
/// allocating.
pub fn read_frame(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(bytes);
}

fn take_u32(bytes: &[u8], at: &mut usize) -> Result<u32, String> {
    let end = at.checked_add(4).filter(|&e| e <= bytes.len()).ok_or("truncated u32")?;
    let v = u32::from_le_bytes(bytes[*at..end].try_into().unwrap());
    *at = end;
    Ok(v)
}

fn take_bytes(bytes: &[u8], at: &mut usize) -> Result<Vec<u8>, String> {
    let len = take_u32(bytes, at)? as usize;
    let end = at.checked_add(len).filter(|&e| e <= bytes.len()).ok_or("truncated body")?;
    let v = bytes[*at..end].to_vec();
    *at = end;
    Ok(v)
}

fn take_u64(bytes: &[u8], at: &mut usize) -> Result<u64, String> {
    let end = at.checked_add(8).filter(|&e| e <= bytes.len()).ok_or("truncated u64")?;
    let v = u64::from_le_bytes(bytes[*at..end].try_into().unwrap());
    *at = end;
    Ok(v)
}

fn take_string(bytes: &[u8], at: &mut usize, what: &str) -> Result<String, String> {
    String::from_utf8(take_bytes(bytes, at)?).map_err(|e| format!("{what} not utf8: {e}"))
}

fn put_hist(out: &mut Vec<u8>, h: &Histogram) {
    out.extend_from_slice(&h.min().to_le_bytes());
    out.extend_from_slice(&h.max().to_le_bytes());
    let pairs = h.nonzero();
    out.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
    for (bucket, count) in pairs {
        out.push(bucket as u8);
        out.extend_from_slice(&count.to_le_bytes());
    }
}

fn take_hist(bytes: &[u8], at: &mut usize) -> Result<Histogram, String> {
    let min = take_u64(bytes, at)?;
    let max = take_u64(bytes, at)?;
    let n = take_u32(bytes, at)?;
    let mut pairs = Vec::new();
    for _ in 0..n {
        let bucket = *bytes.get(*at).ok_or("truncated histogram bucket")? as usize;
        *at += 1;
        pairs.push((bucket, take_u64(bytes, at)?));
    }
    Histogram::from_sparse(min, max, &pairs)
}

/// Serializes a request payload (frame it with [`write_frame`]).
pub fn encode_request(req: &Request) -> Vec<u8> {
    match req {
        Request::Ping => vec![REQ_PING],
        Request::Stats => vec![REQ_STATS],
        Request::Shutdown => vec![REQ_SHUTDOWN],
        Request::Link { level, verify, objects } => {
            let mut out = vec![REQ_LINK, level.index() as u8, u8::from(*verify)];
            out.extend_from_slice(&(objects.len() as u32).to_le_bytes());
            for obj in objects {
                put_bytes(&mut out, obj);
            }
            out
        }
    }
}

/// Parses a request payload. Malformed input is an error string, never a
/// panic — the serve loop turns it into a [`Reply::Error`].
pub fn decode_request(bytes: &[u8]) -> Result<Request, String> {
    match bytes.first() {
        None => Err("empty request".to_string()),
        Some(&REQ_PING) => Ok(Request::Ping),
        Some(&REQ_STATS) => Ok(Request::Stats),
        Some(&REQ_SHUTDOWN) => Ok(Request::Shutdown),
        Some(&REQ_LINK) => {
            let mut at = 1;
            let level_index =
                *bytes.get(at).ok_or("truncated link request: missing level")? as usize;
            let level = *OmLevel::ALL
                .get(level_index)
                .ok_or_else(|| format!("unknown level index {level_index}"))?;
            at += 1;
            let verify = match bytes.get(at) {
                Some(0) => false,
                Some(1) => true,
                Some(v) => return Err(format!("bad verify flag {v}")),
                None => return Err("truncated link request: missing verify flag".to_string()),
            };
            at += 1;
            let count = take_u32(bytes, &mut at)?;
            let mut objects = Vec::new();
            for _ in 0..count {
                objects.push(take_bytes(bytes, &mut at)?);
            }
            Ok(Request::Link { level, verify, objects })
        }
        Some(tag) => Err(format!("unknown request tag {tag}")),
    }
}

/// Serializes a reply payload (frame it with [`write_frame`]).
pub fn encode_reply(rep: &Reply) -> Vec<u8> {
    match rep {
        Reply::Pong(p) => {
            let mut out = vec![REP_PONG];
            put_bytes(&mut out, p.version.as_bytes());
            out.extend_from_slice(&p.uptime_ms.to_le_bytes());
            out.extend_from_slice(&p.requests.to_le_bytes());
            out
        }
        Reply::ShuttingDown => vec![REP_SHUTDOWN],
        Reply::Stats(s) => {
            let mut out = vec![REP_STATS];
            put_bytes(&mut out, s.caches.as_bytes());
            put_bytes(&mut out, s.version.as_bytes());
            out.extend_from_slice(&s.uptime_ms.to_le_bytes());
            out.extend_from_slice(&s.requests.to_le_bytes());
            out.extend_from_slice(&s.bytes_in.to_le_bytes());
            out.extend_from_slice(&s.bytes_out.to_le_bytes());
            out.extend_from_slice(&(s.endpoints.len() as u32).to_le_bytes());
            for ep in &s.endpoints {
                put_bytes(&mut out, ep.name.as_bytes());
                put_hist(&mut out, &ep.latency_us);
            }
            out
        }
        Reply::Error(msg) => {
            let mut out = vec![REP_ERROR];
            out.extend_from_slice(msg.as_bytes());
            out
        }
        Reply::Linked { cached, image } => {
            let mut out = vec![REP_LINKED, u8::from(*cached)];
            put_bytes(&mut out, image);
            out
        }
    }
}

/// Parses a reply payload.
pub fn decode_reply(bytes: &[u8]) -> Result<Reply, String> {
    match bytes.first() {
        None => Err("empty reply".to_string()),
        // A bare tag is the original protocol's pong; the payload-bearing
        // form must parse exactly (no trailing bytes).
        Some(&REP_PONG) if bytes.len() == 1 => Ok(Reply::Pong(Pong::default())),
        Some(&REP_PONG) => {
            let mut at = 1;
            let version = take_string(bytes, &mut at, "pong version")?;
            let uptime_ms = take_u64(bytes, &mut at)?;
            let requests = take_u64(bytes, &mut at)?;
            if at != bytes.len() {
                return Err(format!("{} trailing bytes after pong", bytes.len() - at));
            }
            Ok(Reply::Pong(Pong { version, uptime_ms, requests }))
        }
        Some(&REP_SHUTDOWN) => Ok(Reply::ShuttingDown),
        Some(&REP_STATS) => {
            let mut at = 1;
            let caches = take_string(bytes, &mut at, "stats cache line")?;
            let version = take_string(bytes, &mut at, "stats version")?;
            let uptime_ms = take_u64(bytes, &mut at)?;
            let requests = take_u64(bytes, &mut at)?;
            let bytes_in = take_u64(bytes, &mut at)?;
            let bytes_out = take_u64(bytes, &mut at)?;
            let n = take_u32(bytes, &mut at)?;
            let mut endpoints = Vec::new();
            for _ in 0..n {
                let name = take_string(bytes, &mut at, "endpoint name")?;
                let latency_us = take_hist(bytes, &mut at)?;
                endpoints.push(EndpointStats { name, latency_us });
            }
            if at != bytes.len() {
                return Err(format!("{} trailing bytes after stats", bytes.len() - at));
            }
            Ok(Reply::Stats(ServerStats {
                caches,
                version,
                uptime_ms,
                requests,
                bytes_in,
                bytes_out,
                endpoints,
            }))
        }
        Some(&REP_ERROR) => String::from_utf8(bytes[1..].to_vec())
            .map(Reply::Error)
            .map_err(|e| format!("error reply not utf8: {e}")),
        Some(&REP_LINKED) => {
            let cached = match bytes.get(1) {
                Some(0) => false,
                Some(1) => true,
                Some(v) => return Err(format!("bad cached flag {v}")),
                None => return Err("truncated linked reply".to_string()),
            };
            let mut at = 2;
            let image = take_bytes(bytes, &mut at)?;
            Ok(Reply::Linked { cached, image })
        }
        Some(tag) => Err(format!("unknown reply tag {tag}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Ping,
            Request::Stats,
            Request::Shutdown,
            Request::Link {
                level: OmLevel::FullSched,
                verify: true,
                objects: vec![vec![1, 2, 3], vec![], vec![0xFF; 9]],
            },
        ];
        for req in &reqs {
            assert_eq!(&decode_request(&encode_request(req)).unwrap(), req);
        }
    }

    fn sample_stats() -> ServerStats {
        let mut ping = Histogram::new();
        for v in [12u64, 15, 9, 200] {
            ping.record(v);
        }
        let mut link = Histogram::new();
        for v in [40_000u64, 52_000, 700] {
            link.record(v);
        }
        ServerStats {
            caches: "modules: 3 entries, 2 hits".to_string(),
            version: "0.1.0".to_string(),
            uptime_ms: 77_000,
            requests: 7,
            bytes_in: 123_456,
            bytes_out: 654_321,
            endpoints: vec![
                EndpointStats { name: "link".to_string(), latency_us: link },
                EndpointStats { name: "ping".to_string(), latency_us: ping },
            ],
        }
    }

    #[test]
    fn replies_round_trip() {
        let reps = [
            Reply::Pong(Pong {
                version: "0.1.0".to_string(),
                uptime_ms: 12_345,
                requests: 99,
            }),
            Reply::ShuttingDown,
            Reply::Stats(sample_stats()),
            Reply::Stats(ServerStats::default()),
            Reply::Error("no such symbol".to_string()),
            Reply::Linked { cached: true, image: vec![7; 32] },
        ];
        for rep in &reps {
            assert_eq!(&decode_reply(&encode_reply(rep)).unwrap(), rep);
        }
    }

    #[test]
    fn legacy_empty_pong_still_decodes() {
        // The original protocol's pong was the bare tag with no payload; a
        // new client must keep accepting it, with legacy defaults.
        assert_eq!(decode_reply(&[REP_PONG]).unwrap(), Reply::Pong(Pong::default()));
    }

    #[test]
    fn malformed_pong_payloads_are_errors() {
        // Truncated version length.
        assert!(decode_reply(&[REP_PONG, 5, 0]).is_err());
        // Version body longer than the payload.
        assert!(decode_reply(&[REP_PONG, 9, 0, 0, 0, b'x']).is_err());
        // Version present but the u64s truncated.
        let mut short = vec![REP_PONG];
        put_bytes(&mut short, b"0.1.0");
        short.extend_from_slice(&[0; 4]);
        assert!(decode_reply(&short).is_err());
        // Trailing garbage after a well-formed pong.
        let mut long = encode_reply(&Reply::Pong(Pong::default()));
        long.push(0xAA);
        assert!(decode_reply(&long).is_err());
        // Non-utf8 version bytes.
        let mut bad = vec![REP_PONG];
        put_bytes(&mut bad, &[0xFF, 0xFE]);
        bad.extend_from_slice(&[0; 16]);
        assert!(decode_reply(&bad).is_err());
    }

    #[test]
    fn malformed_stats_payloads_are_errors() {
        let good = encode_reply(&Reply::Stats(sample_stats()));

        // Every strict prefix of a well-formed stats reply is truncated
        // somewhere — none may decode (or panic).
        for cut in 1..good.len() {
            assert!(decode_reply(&good[..cut]).is_err(), "prefix of {cut} bytes decoded");
        }
        // Trailing garbage after a well-formed reply.
        let mut long = good.clone();
        long.push(0);
        assert!(decode_reply(&long).is_err());

        // Histogram-level rejection, via from_sparse: out-of-range bucket,
        // duplicate bucket, min > max, and a count sum that overflows.
        let hist_reply = |min: u64, max: u64, pairs: &[(u8, u64)]| {
            let mut out = vec![REP_STATS];
            put_bytes(&mut out, b"caches");
            put_bytes(&mut out, b"0.1.0");
            out.extend_from_slice(&[0; 32]); // uptime, requests, bytes in/out
            out.extend_from_slice(&1u32.to_le_bytes());
            put_bytes(&mut out, b"ping");
            out.extend_from_slice(&min.to_le_bytes());
            out.extend_from_slice(&max.to_le_bytes());
            out.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
            for &(b, c) in pairs {
                out.push(b);
                out.extend_from_slice(&c.to_le_bytes());
            }
            out
        };
        assert!(decode_reply(&hist_reply(0, 0, &[(64, 1)])).is_err(), "bucket out of range");
        assert!(decode_reply(&hist_reply(0, 9, &[(3, 1), (3, 1)])).is_err(), "duplicate bucket");
        assert!(decode_reply(&hist_reply(9, 5, &[(3, 1)])).is_err(), "min > max");
        assert!(
            decode_reply(&hist_reply(0, 9, &[(1, u64::MAX), (2, 1)])).is_err(),
            "count overflow"
        );
        // The valid shape these were mutated from does decode.
        assert!(decode_reply(&hist_reply(4, 4, &[(3, 1)])).is_ok());
    }

    #[test]
    fn malformed_payloads_are_errors_not_panics() {
        let cases: &[&[u8]] = &[
            &[],
            &[9],
            &[REQ_LINK],
            &[REQ_LINK, 99, 0],
            &[REQ_LINK, 0, 7],
            &[REQ_LINK, 0, 1, 5, 0, 0, 0, 1, 0, 0, 0], // count=5, one short body
            &[REQ_LINK, 0, 1, 1, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0x7F], // huge body len
        ];
        for c in cases {
            assert!(decode_request(c).is_err(), "{c:?} should fail to decode");
        }
        assert!(decode_reply(&[]).is_err());
        assert!(decode_reply(&[REP_LINKED, 2]).is_err());
        assert!(decode_reply(&[0xEE]).is_err());
    }

    #[test]
    fn frames_round_trip_and_bound_length() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        let got = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(got, b"hello");

        let mut bogus = ((MAX_FRAME + 1).to_le_bytes()).to_vec();
        bogus.extend_from_slice(&[0; 16]);
        assert!(read_frame(&mut bogus.as_slice()).is_err());
    }
}
