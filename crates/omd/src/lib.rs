//! `omd`: a link-server daemon around the OM pipeline.
//!
//! A build system that relinks after every edit pays the full pipeline cost
//! each time, even though only one module changed. `omd` keeps the expensive
//! per-module translation work (and whole finished links) in a shared
//! content-addressed cache, so a relink after a single-module edit only
//! re-translates that module and re-runs the cheap global passes.
//!
//! Two front ends share one [`LinkServer`]:
//!
//! * **In-process**: construct a [`LinkServer`] and call
//!   [`LinkServer::link`] from any number of threads. Requests for the same
//!   `(module hashes, lib hashes, level, options)` key coalesce; distinct
//!   requests share per-module translation artifacts.
//! * **Unix socket**: [`socket::serve`] accepts length-framed requests (see
//!   [`wire`]) and serves them concurrently, one thread per connection. The
//!   `omd` binary wraps this in `serve` / `link` / `stats` / `ping` /
//!   `shutdown` subcommands.
//!
//! Caching is keyed purely by content ([`om_core::module_hash`] over the
//! serialized module bytes plus an options fingerprint), so a cached link is
//! byte-identical to a one-shot `optimize_and_link_with` run — the CI-fleet
//! benchmark in `om-bench` asserts exactly that across all workloads.

pub mod server;
pub mod socket;
pub mod wire;

pub use server::{LinkReply, LinkServer, ServerMetrics};
pub use socket::{serve, serve_traced, Client, ServerHandle};
pub use wire::{EndpointStats, Pong, Reply, Request, ServerStats};
