//! The in-process link server: a shared [`OmCaches`] plus the library set
//! every request links against, with panic isolation per request.

use om_core::{
    archive_hash, optimize_and_link_keyed, ContentHash, OmCaches, OmError, OmLevel, OmOptions,
    OmOutput,
};
use om_objfile::{Archive, Module};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// A successful link response.
#[derive(Debug, Clone)]
pub struct LinkReply {
    /// The finished link, shared with the cache (and with every other
    /// request that produced the same key).
    pub output: Arc<OmOutput>,
    /// True when the whole link was served from the link cache (including
    /// coalescing onto another request's in-flight computation).
    pub cached: bool,
}

/// A link server: the fixed library set, its precomputed content hashes,
/// and the shared caches. Cheap to share behind an [`Arc`]; every method
/// takes `&self` and is safe to call from many threads at once.
pub struct LinkServer {
    libs: Vec<Archive>,
    lib_hashes: Vec<ContentHash>,
    caches: OmCaches,
}

impl LinkServer {
    /// A server linking against `libs`, with default cache capacities.
    /// Hashes each archive once, up front — requests never re-hash the
    /// library set.
    pub fn new(libs: Vec<Archive>) -> LinkServer {
        LinkServer::with_caches(libs, OmCaches::default())
    }

    /// A server with caller-tuned cache capacities (tests use tiny caches
    /// to exercise eviction).
    pub fn with_caches(libs: Vec<Archive>, caches: OmCaches) -> LinkServer {
        let lib_hashes = libs.iter().map(archive_hash).collect();
        LinkServer { libs, lib_hashes, caches }
    }

    /// The shared caches, for stats reporting.
    pub fn caches(&self) -> &OmCaches {
        &self.caches
    }

    /// The library set this server links against.
    pub fn libs(&self) -> &[Archive] {
        &self.libs
    }

    /// Links `objects` against the server's libraries, served from the
    /// shared cache when possible.
    ///
    /// A request that fails — a malformed module, a verification failure,
    /// even a panic somewhere in the pipeline — releases its cache
    /// reservation instead of wedging it: concurrent requests for the same
    /// key all see the error, and a later retry recomputes from scratch.
    /// Panics are converted to [`OmError::Internal`] so one bad request
    /// cannot take down the server.
    pub fn link(
        &self,
        objects: &[Module],
        level: OmLevel,
        options: &OmOptions,
    ) -> Result<LinkReply, OmError> {
        let run = catch_unwind(AssertUnwindSafe(|| {
            optimize_and_link_keyed(
                objects,
                &self.libs,
                &self.lib_hashes,
                level,
                options,
                &self.caches,
            )
        }));
        match run {
            Ok(Ok((output, cached))) => Ok(LinkReply { output, cached }),
            Ok(Err(e)) => Err(e),
            Err(panic) => Err(OmError::Internal {
                context: "omd link request".to_string(),
                what: panic_message(&panic),
            }),
        }
    }

    /// A one-line, human-readable stats summary (also the `stats` wire
    /// reply): hit/miss/eviction/abort counters for both caches.
    pub fn stats_line(&self) -> String {
        let m = self.caches.modules.stats();
        let l = self.caches.links.stats();
        format!(
            "modules: {} entries, {} hits, {} misses, {} evictions, {} aborts; \
             links: {} entries, {} hits, {} misses, {} evictions, {} aborts",
            self.caches.modules.len(),
            m.hits,
            m.misses,
            m.evictions,
            m.aborts,
            self.caches.links.len(),
            l.hits,
            l.misses,
            l.evictions,
            l.aborts,
        )
    }
}

fn panic_message(panic: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
