//! The in-process link server: a shared [`OmCaches`] plus the library set
//! every request links against, with panic isolation per request.

use crate::wire::{EndpointStats, Pong, ServerStats};
use om_core::{
    archive_hash, optimize_and_link_keyed, ContentHash, OmCaches, OmError, OmLevel, OmOptions,
    OmOutput,
};
use om_obs::Histogram;
use om_objfile::{Archive, Module};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Request-level metrics for a serving `omd`: wire byte counters, the
/// cumulative request count, and one latency [`Histogram`] per endpoint.
/// All methods take `&self`; the socket front end records from many
/// connection threads at once, and histogram merging is order-independent,
/// so the totals are the same at any concurrency.
pub struct ServerMetrics {
    started: Instant,
    requests: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    latencies: Mutex<BTreeMap<&'static str, Histogram>>,
}

impl Default for ServerMetrics {
    fn default() -> ServerMetrics {
        ServerMetrics::new()
    }
}

impl ServerMetrics {
    /// Fresh metrics; uptime counts from this call.
    pub fn new() -> ServerMetrics {
        ServerMetrics {
            started: Instant::now(),
            requests: AtomicU64::new(0),
            bytes_in: AtomicU64::new(0),
            bytes_out: AtomicU64::new(0),
            latencies: Mutex::new(BTreeMap::new()),
        }
    }

    /// Counts one incoming request, returning the new cumulative total (so
    /// a pong reports a count that includes the ping it answers).
    pub fn note_request(&self) -> u64 {
        self.requests.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Adds to the wire byte counters (request and reply, frames included).
    pub fn note_bytes(&self, inbound: u64, outbound: u64) {
        self.bytes_in.fetch_add(inbound, Ordering::Relaxed);
        self.bytes_out.fetch_add(outbound, Ordering::Relaxed);
    }

    /// Records one finished request's latency under its endpoint.
    pub fn note_latency(&self, endpoint: &'static str, micros: u64) {
        self.latencies.lock().unwrap().entry(endpoint).or_default().record(micros);
    }

    /// Cumulative requests served.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// The `Pong` payload: version, uptime, request count.
    pub fn pong(&self) -> Pong {
        Pong {
            version: env!("CARGO_PKG_VERSION").to_string(),
            uptime_ms: self.started.elapsed().as_millis() as u64,
            requests: self.requests(),
        }
    }

    /// A point-in-time snapshot of every endpoint histogram plus the
    /// counters, with `caches` passed through from the cache layer.
    pub fn snapshot(&self, caches: String) -> ServerStats {
        let endpoints = self
            .latencies
            .lock()
            .unwrap()
            .iter()
            .map(|(&name, h)| EndpointStats { name: name.to_string(), latency_us: h.clone() })
            .collect();
        ServerStats {
            caches,
            version: env!("CARGO_PKG_VERSION").to_string(),
            uptime_ms: self.started.elapsed().as_millis() as u64,
            requests: self.requests(),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            endpoints,
        }
    }
}

/// A successful link response.
#[derive(Debug, Clone)]
pub struct LinkReply {
    /// The finished link, shared with the cache (and with every other
    /// request that produced the same key).
    pub output: Arc<OmOutput>,
    /// True when the whole link was served from the link cache (including
    /// coalescing onto another request's in-flight computation).
    pub cached: bool,
}

/// A link server: the fixed library set, its precomputed content hashes,
/// and the shared caches. Cheap to share behind an [`Arc`]; every method
/// takes `&self` and is safe to call from many threads at once.
pub struct LinkServer {
    libs: Vec<Archive>,
    lib_hashes: Vec<ContentHash>,
    caches: OmCaches,
    metrics: ServerMetrics,
}

impl LinkServer {
    /// A server linking against `libs`, with default cache capacities.
    /// Hashes each archive once, up front — requests never re-hash the
    /// library set.
    pub fn new(libs: Vec<Archive>) -> LinkServer {
        LinkServer::with_caches(libs, OmCaches::default())
    }

    /// A server with caller-tuned cache capacities (tests use tiny caches
    /// to exercise eviction).
    pub fn with_caches(libs: Vec<Archive>, caches: OmCaches) -> LinkServer {
        let lib_hashes = libs.iter().map(archive_hash).collect();
        LinkServer { libs, lib_hashes, caches, metrics: ServerMetrics::new() }
    }

    /// The shared caches, for stats reporting.
    pub fn caches(&self) -> &OmCaches {
        &self.caches
    }

    /// The server's request metrics (recorded by the socket front end).
    pub fn metrics(&self) -> &ServerMetrics {
        &self.metrics
    }

    /// The full stats snapshot the `stats` wire reply carries.
    pub fn server_stats(&self) -> ServerStats {
        self.metrics.snapshot(self.stats_line())
    }

    /// The library set this server links against.
    pub fn libs(&self) -> &[Archive] {
        &self.libs
    }

    /// Links `objects` against the server's libraries, served from the
    /// shared cache when possible.
    ///
    /// A request that fails — a malformed module, a verification failure,
    /// even a panic somewhere in the pipeline — releases its cache
    /// reservation instead of wedging it: concurrent requests for the same
    /// key all see the error, and a later retry recomputes from scratch.
    /// Panics are converted to [`OmError::Internal`] so one bad request
    /// cannot take down the server.
    pub fn link(
        &self,
        objects: &[Module],
        level: OmLevel,
        options: &OmOptions,
    ) -> Result<LinkReply, OmError> {
        let run = catch_unwind(AssertUnwindSafe(|| {
            optimize_and_link_keyed(
                objects,
                &self.libs,
                &self.lib_hashes,
                level,
                options,
                &self.caches,
            )
        }));
        match run {
            Ok(Ok((output, cached))) => Ok(LinkReply { output, cached }),
            Ok(Err(e)) => Err(e),
            Err(panic) => Err(OmError::Internal {
                context: "omd link request".to_string(),
                what: panic_message(&panic),
            }),
        }
    }

    /// A one-line, human-readable stats summary (also the `stats` wire
    /// reply): hit/miss/eviction/abort counters for both caches.
    pub fn stats_line(&self) -> String {
        let m = self.caches.modules.stats();
        let l = self.caches.links.stats();
        format!(
            "modules: {} entries, {} hits, {} misses, {} evictions, {} aborts; \
             links: {} entries, {} hits, {} misses, {} evictions, {} aborts",
            self.caches.modules.len(),
            m.hits,
            m.misses,
            m.evictions,
            m.aborts,
            self.caches.links.len(),
            l.hits,
            l.misses,
            l.evictions,
            l.aborts,
        )
    }
}

fn panic_message(panic: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
