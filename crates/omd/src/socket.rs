//! The unix-socket front end: an accept loop serving [`wire`] frames, one
//! thread per connection, plus a small [`Client`] for the other side.
//!
//! [`wire`]: crate::wire

use crate::server::LinkServer;
use crate::wire::{
    decode_reply, decode_request, encode_reply, encode_request, read_frame, write_frame, Pong,
    Reply, Request, ServerStats,
};
use om_core::{OmLevel, OmOptions};
use om_linker::Image;
use om_objfile::{binary, Module};
use std::io;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Instant;

/// A running socket server. Dropping the handle leaves the server running
/// (detached); call [`ServerHandle::shutdown`] to stop it, or send a
/// `Shutdown` request from any client.
pub struct ServerHandle {
    path: PathBuf,
    stop: Arc<AtomicBool>,
    accept_loop: thread::JoinHandle<()>,
}

impl ServerHandle {
    /// The socket path the server is listening on.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Blocks until the accept loop exits (i.e. until some client sends a
    /// `Shutdown` request). The `omd serve` subcommand uses this to stay in
    /// the foreground.
    pub fn wait(self) {
        let _ = self.accept_loop.join();
        let _ = std::fs::remove_file(&self.path);
    }

    /// Stops the accept loop and waits for it to exit. In-flight
    /// connections finish on their own threads.
    pub fn shutdown(self) {
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop only observes the flag on its next wakeup; a
        // throwaway connection provides one.
        let _ = UnixStream::connect(&self.path);
        let _ = self.accept_loop.join();
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Binds `path` and serves `server` over it until shut down. An existing
/// socket file at `path` is replaced (a stale file from a dead server would
/// otherwise make the address unusable).
pub fn serve(path: impl AsRef<Path>, server: Arc<LinkServer>) -> io::Result<ServerHandle> {
    serve_traced(path, server, None)
}

/// [`serve`], with an optional [`om_obs::Trace`] installed on every
/// connection thread: each served request becomes an `omd.<endpoint>` span
/// (with the whole link pipeline's spans nested inside it for link
/// requests). `omd serve --trace-json` writes the collected trace when the
/// server shuts down.
pub fn serve_traced(
    path: impl AsRef<Path>,
    server: Arc<LinkServer>,
    trace: Option<om_obs::Trace>,
) -> io::Result<ServerHandle> {
    let path = path.as_ref().to_path_buf();
    let _ = std::fs::remove_file(&path);
    let listener = UnixListener::bind(&path)?;
    let stop = Arc::new(AtomicBool::new(false));

    let loop_stop = Arc::clone(&stop);
    let loop_path = path.clone();
    let accept_loop = thread::spawn(move || {
        for conn in listener.incoming() {
            if loop_stop.load(Ordering::SeqCst) {
                break;
            }
            let stream = match conn {
                Ok(s) => s,
                Err(_) => continue,
            };
            let server = Arc::clone(&server);
            let stop = Arc::clone(&loop_stop);
            let path = loop_path.clone();
            let trace = trace.clone();
            thread::spawn(move || {
                let _guard = trace.as_ref().map(om_obs::Trace::install);
                serve_connection(stream, &server, &stop, &path);
            });
        }
    });

    Ok(ServerHandle { path, stop, accept_loop })
}

/// Serves one connection until EOF or a shutdown request. Every failure
/// mode — unreadable frame, undecodable request, malformed module, link
/// error, pipeline panic — is a `Reply::Error` (or a dropped connection),
/// never a dead server.
fn serve_connection(mut stream: UnixStream, server: &LinkServer, stop: &AtomicBool, path: &Path) {
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(p) => p,
            Err(_) => return, // EOF or a framing error: drop the connection
        };
        let t0 = Instant::now();
        server.metrics().note_request();
        let decoded = decode_request(&payload);
        // An undecodable payload has no endpoint of its own; it lands in
        // the `error` bucket so corrupt-client storms show up in stats.
        let endpoint = match &decoded {
            Err(_) => "error",
            Ok(Request::Ping) => "ping",
            Ok(Request::Stats) => "stats",
            Ok(Request::Shutdown) => "shutdown",
            Ok(Request::Link { .. }) => "link",
        };
        let mut span = om_obs::span(match endpoint {
            "error" => "omd.error",
            "ping" => "omd.ping",
            "stats" => "omd.stats",
            "shutdown" => "omd.shutdown",
            _ => "omd.link",
        });
        let shutting_down = matches!(decoded, Ok(Request::Shutdown));
        let reply = match decoded {
            Err(e) => Reply::Error(format!("bad request: {e}")),
            Ok(Request::Ping) => Reply::Pong(server.metrics().pong()),
            Ok(Request::Stats) => Reply::Stats(server.server_stats()),
            Ok(Request::Shutdown) => {
                stop.store(true, Ordering::SeqCst);
                Reply::ShuttingDown
            }
            Ok(Request::Link { level, verify, objects }) => {
                handle_link(server, level, verify, &objects)
            }
        };
        let reply_bytes = encode_reply(&reply);
        // Frame overheads (the 4-byte length prefixes) count as wire bytes.
        server.metrics().note_bytes(payload.len() as u64 + 4, reply_bytes.len() as u64 + 4);
        span.arg("bytes_in", payload.len() as u64 + 4);
        span.arg("bytes_out", reply_bytes.len() as u64 + 4);
        drop(span);
        server.metrics().note_latency(endpoint, t0.elapsed().as_micros() as u64);
        let sent = write_frame(&mut stream, &reply_bytes);
        if shutting_down {
            // Wake the accept loop so it observes the stop flag.
            let _ = UnixStream::connect(path);
            return;
        }
        if sent.is_err() {
            return;
        }
    }
}

fn handle_link(server: &LinkServer, level: OmLevel, verify: bool, objects: &[Vec<u8>]) -> Reply {
    let mut modules = Vec::with_capacity(objects.len());
    for (i, bytes) in objects.iter().enumerate() {
        match binary::read_module(bytes) {
            Ok(m) => modules.push(m),
            Err(e) => return Reply::Error(format!("object {i}: {e}")),
        }
    }
    let options = OmOptions { verify, ..OmOptions::default() };
    match server.link(&modules, level, &options) {
        Ok(reply) => Reply::Linked { cached: reply.cached, image: reply.output.image.to_bytes() },
        Err(e) => Reply::Error(e.to_string()),
    }
}

/// A blocking client for one socket connection. Each method sends a single
/// request and waits for its reply.
pub struct Client {
    stream: UnixStream,
}

impl Client {
    /// Connects to a serving `omd` at `path`.
    pub fn connect(path: impl AsRef<Path>) -> io::Result<Client> {
        Ok(Client { stream: UnixStream::connect(path)? })
    }

    fn round_trip(&mut self, req: &Request) -> io::Result<Reply> {
        write_frame(&mut self.stream, &encode_request(req))?;
        let payload = read_frame(&mut self.stream)?;
        decode_reply(&payload).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    fn unexpected(reply: Reply) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, format!("unexpected reply: {reply:?}"))
    }

    /// Liveness probe. The reply carries the server's version, uptime, and
    /// cumulative request count (all-default from a pre-version server).
    pub fn ping(&mut self) -> io::Result<Pong> {
        match self.round_trip(&Request::Ping)? {
            Reply::Pong(p) => Ok(p),
            other => Err(Self::unexpected(other)),
        }
    }

    /// The server's statistics: cache line, wire byte counters, and
    /// per-endpoint latency histograms.
    pub fn stats(&mut self) -> io::Result<ServerStats> {
        match self.round_trip(&Request::Stats)? {
            Reply::Stats(s) => Ok(s),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Asks the server to stop accepting connections and exit.
    pub fn shutdown(&mut self) -> io::Result<()> {
        match self.round_trip(&Request::Shutdown)? {
            Reply::ShuttingDown => Ok(()),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Links `objects` at `level` on the server. The outer `Err` is a
    /// transport failure; the inner `Err` is a link failure reported by the
    /// server (its error `Display` string). On success, returns whether the
    /// link came entirely from cache, and the linked image.
    pub fn link(
        &mut self,
        objects: &[Module],
        level: OmLevel,
        verify: bool,
    ) -> io::Result<Result<(bool, Image), String>> {
        let req = Request::Link {
            level,
            verify,
            objects: objects.iter().map(binary::write_module).collect(),
        };
        match self.round_trip(&req)? {
            Reply::Linked { cached, image } => match Image::from_bytes(&image) {
                Ok(image) => Ok(Ok((cached, image))),
                Err(e) => Err(io::Error::new(io::ErrorKind::InvalidData, e)),
            },
            Reply::Error(msg) => Ok(Err(msg)),
            other => Err(Self::unexpected(other)),
        }
    }
}
