//! Criterion benches over the build pipeline — the measured counterpart of
//! the paper's Figure 7 (processing time of the standard link vs OM's
//! levels) plus compile and simulation throughput context.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use om_core::{optimize_and_link, OmLevel};
use om_linker::Linker;
use om_workloads::build::{build, CompileMode};
use om_workloads::spec;

/// Figure 7 pipeline timings on a representative benchmark.
fn fig7_build_times(c: &mut Criterion) {
    let s = spec::quick(&spec::by_name("espresso").unwrap());
    let built = build(&s, CompileMode::Each).unwrap();

    let mut g = c.benchmark_group("fig7_build_times");
    g.sample_size(10);

    g.bench_function("standard_link", |b| {
        b.iter_batched(
            || (built.objects.clone(), built.libs.clone()),
            |(objs, libs)| {
                let mut linker = Linker::new();
                for o in objs {
                    linker = linker.object(o);
                }
                for l in libs {
                    linker = linker.library(l);
                }
                linker.link().unwrap()
            },
            BatchSize::SmallInput,
        )
    });

    for level in [OmLevel::None, OmLevel::Simple, OmLevel::Full, OmLevel::FullSched] {
        g.bench_function(level.name().replace([' ', '/'], "_"), |b| {
            b.iter_batched(
                || (built.objects.clone(), built.libs.clone()),
                |(objs, libs)| optimize_and_link(objs, &libs, level).unwrap(),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

/// The paper's "interproc build" row: recompiling everything from source.
fn fig7_interproc_build(c: &mut Criterion) {
    let s = spec::quick(&spec::by_name("espresso").unwrap());
    let mut g = c.benchmark_group("fig7_interproc_build");
    g.sample_size(10);
    g.bench_function("compile_all_from_source", |b| {
        b.iter(|| build(&s, CompileMode::All).unwrap())
    });
    g.bench_function("compile_each_from_source", |b| {
        b.iter(|| build(&s, CompileMode::Each).unwrap())
    });
    g.finish();
}

/// Simulation throughput (context for Figure 6's measurement cost).
fn simulator_throughput(c: &mut Criterion) {
    let s = spec::quick(&spec::by_name("compress").unwrap());
    let built = build(&s, CompileMode::Each).unwrap();
    let out = optimize_and_link(built.objects.clone(), &built.libs, OmLevel::Full).unwrap();

    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    g.bench_function("timed_run", |b| {
        b.iter(|| om_sim::run_timed(&out.image, 1_000_000_000).unwrap())
    });
    g.finish();
}

criterion_group!(benches, fig7_build_times, fig7_interproc_build, simulator_throughput);
criterion_main!(benches);
