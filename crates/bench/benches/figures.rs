//! Micro-benchmarks over the build pipeline — the measured counterpart of
//! the paper's Figure 7 (processing time of the standard link vs OM's
//! levels) plus compile and simulation throughput context.
//!
//! A std-only harness (`harness = false`; the workspace builds offline, so
//! no criterion): each case is warmed up once, then timed over enough
//! iterations to smooth scheduler noise, reporting mean wall time per
//! iteration.
//!
//! ```text
//! cargo bench -p om-bench
//! ```

use om_core::{optimize_and_link, OmLevel};
use om_linker::{link_modules, LayoutOpts};
use om_workloads::build::{build, CompileMode};
use om_workloads::spec;
use std::time::Instant;

const SAMPLES: u32 = 10;

fn bench(name: &str, mut f: impl FnMut()) {
    f(); // warm-up (also faults in lazily-built state)
    let t0 = Instant::now();
    for _ in 0..SAMPLES {
        f();
    }
    let per = t0.elapsed().as_secs_f64() / f64::from(SAMPLES);
    println!("{name:40} {:>12.3} ms/iter ({SAMPLES} samples)", per * 1e3);
}

fn main() {
    let s = spec::quick(&spec::by_name("espresso").unwrap());
    let built = build(&s, CompileMode::Each).unwrap();

    // Figure 7 pipeline timings on a representative benchmark.
    bench("fig7_build_times/standard_link", || {
        link_modules(&built.objects, &built.libs, &LayoutOpts::default()).unwrap();
    });
    for level in OmLevel::ALL {
        let name = format!(
            "fig7_build_times/{}",
            level.name().replace([' ', '/'], "_")
        );
        bench(&name, || {
            optimize_and_link(&built.objects, &built.libs, level).unwrap();
        });
    }

    // The paper's "interproc build" row: recompiling everything from source.
    bench("fig7_interproc_build/compile_all_from_source", || {
        build(&s, CompileMode::All).unwrap();
    });
    bench("fig7_interproc_build/compile_each_from_source", || {
        build(&s, CompileMode::Each).unwrap();
    });

    // Simulation throughput (context for Figure 6's measurement cost).
    let cs = spec::quick(&spec::by_name("compress").unwrap());
    let cbuilt = build(&cs, CompileMode::Each).unwrap();
    let out = optimize_and_link(&cbuilt.objects, &cbuilt.libs, OmLevel::Full).unwrap();
    bench("simulator/timed_run", || {
        om_sim::run_timed(&out.image, 1_000_000_000).unwrap();
    });
}
