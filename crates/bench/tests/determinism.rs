//! The parallel harness must be invisible in the output: any `--jobs` width
//! produces byte-identical rendered figures, and the memoized pipeline must
//! not change simulated checksums.

use om_bench::figures::{self, Selection};
use om_bench::{parallel_map, render, Prepared};
use om_workloads::build::CompileMode;
use om_workloads::{spec, BenchSpec};

const BENCHES: [&str; 3] = ["compress", "li", "ora"];

fn quick_specs() -> Vec<BenchSpec> {
    BENCHES
        .iter()
        .map(|n| spec::quick(&spec::by_name(n).unwrap()))
        .collect()
}

/// Renders every deterministic figure (fig7 is wall-clock timing and is
/// excluded) from one full harness pass at the given width.
fn run_at(jobs: usize) -> (String, Vec<i64>) {
    let specs = quick_specs();
    let sel = Selection { fig7: false, ..Selection::all() };
    let prepared: Vec<Prepared> = parallel_map(jobs, &specs, Prepared::new);
    let rows = parallel_map(jobs, &prepared, |p| figures::measure(p, sel));

    let mut out = String::new();
    macro_rules! rows_of {
        ($field:ident) => {
            rows.iter()
                .filter_map(|r| r.$field.map(|x| (r.name.clone(), x)))
                .collect::<Vec<_>>()
        };
    }
    out.push_str(&render::fig3(&rows_of!(fig3)));
    out.push_str(&render::fig4(&rows_of!(fig4)));
    out.push_str(&render::fig5(&rows_of!(fig5)));
    out.push_str(&render::fig6(&rows_of!(fig6)));
    out.push_str(&render::gat(&rows_of!(gat)));

    let checksums = prepared
        .iter()
        .flat_map(|p| {
            CompileMode::ALL.iter().map(|&m| p.run_standard(m).0).collect::<Vec<_>>()
        })
        .collect();
    (out, checksums)
}

/// Repeated in-process builds and links must produce identical object code
/// and images. This pins the regalloc interval sort and any other place
/// where hash-map iteration order could leak into emitted code (stats can
/// stay stable while register choice and therefore cycle counts wobble).
#[test]
fn every_pipeline_stage_is_deterministic_in_process() {
    use om_core::{optimize_and_link, OmLevel};
    use om_linker::{link_modules, LayoutOpts};
    use om_workloads::build::build;

    let s = spec::quick(&spec::by_name("li").unwrap());
    let b1 = build(&s, CompileMode::All).unwrap();
    let b2 = build(&s, CompileMode::All).unwrap();
    assert_eq!(b1.objects.len(), b2.objects.len());
    for (i, (a, b)) in b1.objects.iter().zip(&b2.objects).enumerate() {
        assert_eq!(a, b, "object {i} differs between two builds");
    }

    let (i1, _) = link_modules(&b1.objects, &b1.libs, &LayoutOpts::default()).unwrap();
    let (i2, _) = link_modules(&b1.objects, &b1.libs, &LayoutOpts::default()).unwrap();
    assert_eq!(i1.segments.len(), i2.segments.len());
    for (si, (sa, sb)) in i1.segments.iter().zip(&i2.segments).enumerate() {
        assert_eq!(sa.bytes, sb.bytes, "standard-link segment {si} differs");
    }

    for level in OmLevel::ALL {
        let a = optimize_and_link(&b1.objects, &b1.libs, level).unwrap();
        let b = optimize_and_link(&b1.objects, &b1.libs, level).unwrap();
        for (si, (sa, sb)) in a.image.segments.iter().zip(&b.image.segments).enumerate() {
            assert_eq!(sa.bytes, sb.bytes, "OM {} segment {si} differs", level.name());
        }
    }
}

#[test]
fn parallel_output_is_byte_identical_to_sequential() {
    let (seq, seq_sums) = run_at(1);
    let (par, par_sums) = run_at(4);
    assert!(!seq.is_empty());
    assert_eq!(seq, par, "rendered figures must not depend on --jobs");
    assert_eq!(seq_sums, par_sums, "checksums must not depend on --jobs");
}
