//! Proof that `Prepared` memoization works: overlapping figures share one
//! pipeline run per `(mode, level)`, and the cached results are identical
//! to fresh uncached runs.
//!
//! `om_core::pipeline_runs` is a process-global counter, so everything that
//! counts runs lives in this one test function (integration tests get their
//! own process, and a single `#[test]` can't race with itself).

use om_bench::figures::{self, Prepared};
use om_core::{optimize_and_link, pipeline_runs, OmLevel};
use om_workloads::build::{build, CompileMode};
use om_workloads::spec;

#[test]
fn overlapping_figures_share_pipeline_runs_and_match_fresh_results() {
    let s = spec::quick(&spec::by_name("compress").unwrap());
    let p = Prepared::new(&s);
    assert_eq!(pipeline_runs(), 0, "building must not run the OM pipeline");

    // fig3 needs (2 modes) x {Simple, Full}; fig4 adds {None}; fig5 and the
    // GAT table re-use fig3/fig4's runs entirely.
    let _ = figures::fig3(&p);
    assert_eq!(pipeline_runs(), 4);
    let _ = figures::fig4(&p);
    assert_eq!(pipeline_runs(), 6);
    let _ = figures::fig5(&p);
    let _ = figures::gat(&p);
    assert_eq!(
        pipeline_runs(),
        6,
        "fig5/gat must be served entirely from the memoized grid"
    );

    // Touch the whole 2x4 grid, then again: the second sweep is free.
    for &mode in &CompileMode::ALL {
        for &level in &OmLevel::ALL {
            let _ = p.om_stats(mode, level);
        }
    }
    let full_grid = pipeline_runs();
    assert_eq!(full_grid, (CompileMode::ALL.len() * OmLevel::ALL.len()) as u64);
    for &mode in &CompileMode::ALL {
        for &level in &OmLevel::ALL {
            let _ = p.om_stats(mode, level);
        }
    }
    assert_eq!(pipeline_runs(), full_grid, "every cell must be cached");

    // The memoized stats equal a fresh, uncached pipeline run for every
    // (mode, level) cell.
    for &mode in &CompileMode::ALL {
        let built = build(&s, mode).unwrap();
        for &level in &OmLevel::ALL {
            let fresh = optimize_and_link(&built.objects, &built.libs, level).unwrap();
            assert_eq!(
                p.om_stats(mode, level),
                fresh.stats,
                "{} {}",
                mode.name(),
                level.name()
            );
        }
    }
}
