//! Qualitative shape invariants from the paper's §5, asserted over a sample
//! of quick-mode benchmarks. These are the claims the reproduction must keep
//! true under any future change:
//!
//! * OM-full removes strictly more than OM-simple (Figures 3, 5);
//! * OM-simple converts but barely touches PV loads; OM-full leaves PV loads
//!   only at procedure-variable calls (Figure 4);
//! * GP resets vanish in single-GAT programs (Figure 4, bottom);
//! * the GAT shrinks by a large factor under OM-full only (§5.1);
//! * compile-all's statistics stay close to compile-each's (§5.1: "OM's
//!   ability to improve the code is not dependent on whether the code was
//!   originally compiled with interprocedural optimization").

use om_bench::figures::Prepared;
use om_core::OmLevel;
use om_workloads::build::CompileMode;
use om_workloads::spec;

fn sample() -> Vec<Prepared> {
    ["compress", "li", "spice", "hydro2d"]
        .iter()
        .map(|n| Prepared::new(&spec::quick(&spec::by_name(n).unwrap())))
        .collect()
}

#[test]
fn full_dominates_simple_statically() {
    for p in sample() {
        for mode in [CompileMode::Each, CompileMode::All] {
            let s = p.om_stats(mode, OmLevel::Simple);
            let f = p.om_stats(mode, OmLevel::Full);
            assert!(
                f.inst_fraction_removed() > s.inst_fraction_removed(),
                "{} {}: {f:?} vs {s:?}",
                p.spec.name,
                mode.name()
            );
            let (scv, snu) = s.addr_load_fractions();
            let (fcv, fnu) = f.addr_load_fractions();
            assert!(fcv + fnu >= scv + snu, "{}", p.spec.name);
            assert!(fnu > snu, "{}: GAT reduction must add nullifications", p.spec.name);
            // "OM-full manages to eliminate nearly all of the address loads."
            assert!(fcv + fnu > 0.75, "{}: {fcv} {fnu}", p.spec.name);
        }
    }
}

#[test]
fn pv_loads_follow_the_papers_asymmetry() {
    for p in sample() {
        let none = p.om_stats(CompileMode::Each, OmLevel::None);
        let s = p.om_stats(CompileMode::Each, OmLevel::Simple);
        let f = p.om_stats(CompileMode::Each, OmLevel::Full);
        // No OM: nearly every call keeps its bookkeeping.
        assert!(none.pv_fraction_after() > 0.75, "{}: {none:?}", p.spec.name);
        // Simple: some improvement, far from full.
        assert!(s.calls_pv_after <= none.calls_pv_after, "{}", p.spec.name);
        assert!(s.calls_pv_after > f.calls_pv_after, "{}", p.spec.name);
        // Full: only procedure-variable calls remain.
        assert_eq!(
            f.calls_pv_after, f.calls_indirect,
            "{}: PV loads after full == indirect calls",
            p.spec.name
        );
        // GP resets: gone at both levels in a single-GAT program.
        assert_eq!(s.calls_gp_reset_after, 0, "{}", p.spec.name);
        assert_eq!(f.calls_gp_reset_after, 0, "{}", p.spec.name);
    }
}

#[test]
fn gat_reduction_is_full_only_and_large() {
    for p in sample() {
        let s = p.om_stats(CompileMode::Each, OmLevel::Simple);
        let f = p.om_stats(CompileMode::Each, OmLevel::Full);
        assert_eq!(s.gat_slots_after, s.gat_slots_before, "{}", p.spec.name);
        assert!(
            f.gat_ratio() < 0.35,
            "{}: GAT must shrink by a large factor, got {:.2}",
            p.spec.name,
            f.gat_ratio()
        );
    }
}

#[test]
fn compile_all_stays_close_to_compile_each() {
    for p in sample() {
        let each = p.om_stats(CompileMode::Each, OmLevel::Full);
        let all = p.om_stats(CompileMode::All, OmLevel::Full);
        let (e, a) = (each.inst_fraction_removed(), all.inst_fraction_removed());
        assert!(
            (e - a).abs() < 0.05,
            "{}: each {e:.3} vs all {a:.3} should be near-equal",
            p.spec.name
        );
        // Inlining must have removed some calls in compile-all.
        assert!(all.calls_total < each.calls_total, "{}", p.spec.name);
    }
}

#[test]
fn dynamic_improvements_are_ordered() {
    // One benchmark end-to-end (quick mode): base >= simple >= ... full wins.
    let p = Prepared::new(&spec::quick(&spec::by_name("espresso").unwrap()));
    let (_, base) = p.run_standard(CompileMode::Each);
    let (_, simple) = p.run_om(CompileMode::Each, OmLevel::Simple);
    let (_, full) = p.run_om(CompileMode::Each, OmLevel::Full);
    assert!(simple.cycles <= base.cycles, "simple never hurts: {simple:?} vs {base:?}");
    assert!(full.cycles < base.cycles, "full strictly wins");
    assert!(full.insts < base.insts, "full retires fewer instructions");
}
