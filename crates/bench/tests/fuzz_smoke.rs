//! Tier-1 differential-fuzz smoke: a bounded, fixed-seed slice of the
//! `omfuzz` campaign runs on every `cargo test`. Each seed checks the mini-C
//! interpreter's checksum against all 8 `(compile mode × OM level)` variants
//! plus a profile-guided relink per mode, each with the linked-image
//! verifier enabled, so a regression in codegen, the linker, an OM
//! transformation, profiling, or the simulator fails here — not just in
//! the standalone `omfuzz` binary.

use om_bench::fuzz::{check, generate, FuzzConfig, Outcome};

#[test]
fn fixed_seed_slice_is_clean() {
    let cfg = FuzzConfig::default();
    for seed in 0..10 {
        let prog = generate(seed, &cfg);
        match check(&prog) {
            Outcome::Pass => {}
            Outcome::Skip(why) => panic!("seed {seed} skipped: {why}"),
            Outcome::Fail { reference, mismatches } => {
                let mut msg = format!("seed {seed} (reference {reference:?}):\n");
                for m in &mismatches {
                    msg.push_str(&format!("  {}: {}\n", m.variant, m.detail));
                }
                panic!("{msg}");
            }
        }
    }
}
