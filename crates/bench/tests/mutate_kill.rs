//! Tier-1 mutation-kill smoke: a bounded, fixed slice of the `omkill`
//! corpus runs on every `cargo test`, pinning that (a) the harness stays
//! deterministic at any worker count and (b) no mutant in the slice escapes
//! every oracle. The committed `MUTANTS_baseline.json` is additionally
//! checked against the acceptance floor (>= 60 mutants, >= 10 classes,
//! zero escapes), so a stale or hand-edited baseline fails here rather
//! than silently weakening the CI gate.

use om_bench::mutate::{parse_baseline, render_json, run_campaign, scorecard};

/// One corpus seed, one site per class: every mutant class is exercised
/// (seed 3 has a live site-0 candidate for all of them — asserted below).
fn slice() -> om_bench::mutate::Scorecard {
    scorecard(run_campaign(&[3], 1, usize::MAX, 2).expect("clean build of corpus seed 3"))
}

#[test]
fn bounded_slice_kills_every_mutant() {
    let card = slice();
    assert!(card.mutants >= 10, "slice produced only {} mutants", card.mutants);
    assert_eq!(
        card.escaped,
        0,
        "escapes in the tier-1 slice: {:?}",
        card.rows.iter().filter(|r| !r.killed()).map(|r| (r.class, r.site)).collect::<Vec<_>>()
    );
    // Both injection layers are present in the slice.
    assert!(card.classes.iter().any(|c| c.class.starts_with("img-")));
    assert!(card.classes.iter().any(|c| c.class.starts_with("fault-")));
    // The attribution story holds: at least one class is verify-blind
    // (runtime oracles only) and at least one is runtime-blind (verify
    // only) — the nets genuinely overlap rather than duplicating.
    assert!(
        card.classes.iter().any(|c| c.verify == 0 && c.checksum == c.total),
        "no verify-blind class in the slice"
    );
    assert!(
        card.classes.iter().any(|c| c.verify == c.total && c.checksum == 0),
        "no runtime-blind class in the slice"
    );
}

#[test]
fn scorecard_is_deterministic_across_worker_counts() {
    let serial = scorecard(run_campaign(&[3], 1, usize::MAX, 1).unwrap());
    let parallel = slice();
    assert_eq!(render_json(&serial), render_json(&parallel));
}

#[test]
fn committed_baseline_meets_the_acceptance_floor() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../MUTANTS_baseline.json");
    let text = std::fs::read_to_string(path).expect("committed MUTANTS_baseline.json");
    let base = parse_baseline(&text).expect("baseline parses");
    assert!(base.mutants >= 60, "baseline has only {} mutants", base.mutants);
    assert!(base.classes.len() >= 10, "baseline has only {} classes", base.classes.len());
    assert_eq!(base.killed, base.mutants, "baseline records escapes");
    for (class, total, escaped) in &base.classes {
        assert!(*total > 0, "class {class} is empty");
        assert_eq!(*escaped, 0, "class {class} has baseline escapes");
    }
}
