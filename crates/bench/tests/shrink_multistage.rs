//! Shrinker behavior on multi-stage failures: a kill that depends on an
//! *interaction* between two modules, buried in a program with unrelated
//! modules. The shrinker must strip the unrelated code, keep the
//! interacting pair, and — the property that matters for triage — the
//! minimized repro must still reproduce the kill.

use om_bench::fuzz::{generate, render, shrink_with, write_repro, FuzzConfig, FuzzProgram, Outcome};

/// A seed whose generated program has at least three modules, several
/// procedures, and statements to strip (asserted below, so a generator
/// change that invalidates the choice fails loudly instead of hollowing
/// out the test).
const SEED: u64 = 8;

fn multi_module_program() -> FuzzProgram {
    let prog = generate(
        SEED,
        &FuzzConfig { max_modules: 4, max_procs_per_module: 4, max_stmts: 8 },
    );
    assert!(
        prog.modules.len() >= 3,
        "seed {SEED} must generate >= 3 modules for this test, got {}",
        prog.modules.len()
    );
    prog
}

/// The "kill": fails exactly when the first and last of the original
/// modules are both still present — a cross-module interaction (think
/// caller in one module, miscompiled callee in another). Everything in
/// between is noise an ideal shrinker removes.
fn cross_module_kill(p: &FuzzProgram, first: usize, last: usize) -> bool {
    let has = |idx: usize| p.modules.iter().any(|m| m.index == idx);
    has(first) && has(last)
}

#[test]
fn shrinking_strips_unrelated_modules_and_keeps_the_kill() {
    let prog = multi_module_program();
    let first = prog.modules.first().unwrap().index;
    let last = prog.modules.last().unwrap().index;

    let mut oracle_calls = 0usize;
    let small = shrink_with(prog, 300, |p| {
        oracle_calls += 1;
        cross_module_kill(p, first, last)
    });

    // The minimized repro still reproduces the kill…
    assert!(cross_module_kill(&small, first, last), "shrinking lost the failure");
    // …the unrelated middle modules are gone…
    assert_eq!(
        small.modules.len(),
        2,
        "unrelated modules survived shrinking: {:?}",
        small.modules.iter().map(|m| m.index).collect::<Vec<_>>()
    );
    assert!(oracle_calls > 0, "shrinker never consulted the oracle");
    // …and the survivors are stripped to (at most) one procedure with no
    // statements each: the modules only matter by *presence*, so every
    // statement is noise the stmt stage must drop.
    for m in &small.modules {
        assert!(m.procs.len() <= 1, "module {} kept {} procs", m.index, m.procs.len());
        for p in &m.procs {
            assert!(p.stmts.is_empty(), "proc {} kept {} stmts", p.name, p.stmts.len());
        }
    }
}

#[test]
fn shrinking_a_dependent_pair_never_splits_it() {
    // Sharper variant: the kill needs *both* ends; dropping either makes
    // the oracle pass. A shrinker that tests module drops one at a time
    // (rather than wholesale) must refuse to drop either end.
    let prog = multi_module_program();
    let first = prog.modules.first().unwrap().index;
    let last = prog.modules.last().unwrap().index;
    let small = shrink_with(prog, 300, |p| cross_module_kill(p, first, last));
    let kept: Vec<usize> = small.modules.iter().map(|m| m.index).collect();
    assert!(kept.contains(&first) && kept.contains(&last), "kept {kept:?}");
}

#[test]
fn minimized_repro_renders_and_reruns_the_kill() {
    // End-to-end: the minimized program must render to sources (the repro
    // artifact is mini-C text, not the FuzzProgram struct), and re-checking
    // the *rendered-then-shrunk* program against the same oracle still
    // fails — i.e. what we write to disk is what reproduces.
    let prog = multi_module_program();
    let first = prog.modules.first().unwrap().index;
    let last = prog.modules.last().unwrap().index;
    let small = shrink_with(prog, 300, |p| cross_module_kill(p, first, last));

    let sources = render(&small);
    assert!(!sources.is_empty());
    // Rendered module names match the surviving indices (fz_main for the
    // main module, fz_NN otherwise) — the repro names tie back to the
    // original program, not to post-shrink renumbering.
    for m in &small.modules {
        let expect_main = "fz_main".to_string();
        let expect_idx = format!("fz_{:02}", m.index);
        assert!(
            sources.iter().any(|(n, _)| *n == expect_main || *n == expect_idx),
            "no rendered source for surviving module {}",
            m.index
        );
    }

    let report = write_repro(
        &small,
        &Outcome::Fail { reference: Some(0), mismatches: Vec::new() },
    );
    for (_, src) in &sources {
        assert!(
            report.contains(src.trim()),
            "repro file does not embed a surviving module's source"
        );
    }

    // The written repro is self-identifying: seed line plus every module.
    assert!(report.contains(&format!("seed {SEED}")));
}

#[test]
fn budget_zero_returns_input_unchanged() {
    // A shrink budget of zero may not even ask the oracle — the original
    // failing program must come back intact (no "shrunk but unverified"
    // states).
    let prog = multi_module_program();
    let n_modules = prog.modules.len();
    let n_procs: usize = prog.modules.iter().map(|m| m.procs.len()).sum();
    let small = shrink_with(prog, 0, |_| panic!("oracle consulted with zero budget"));
    assert_eq!(small.modules.len(), n_modules);
    assert_eq!(small.modules.iter().map(|m| m.procs.len()).sum::<usize>(), n_procs);
}
