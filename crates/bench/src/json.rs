//! Machine-readable output for `reproduce --json PATH` (hand-rolled; the
//! registry is offline, so no serde).
//!
//! The layout is deliberately line-oriented: every figure row is one line
//! containing `"fig"` and `"bench"` keys, so `scripts/bench.sh` can diff
//! runs with `grep`/`diff` alone. Timings (`fig7` rows, `wall_seconds`,
//! `phase_seconds`) are wall-clock and therefore excluded from such diffs;
//! every other row is bit-deterministic.

use crate::figures::BenchRows;
use std::fmt::Write as _;

fn f(v: f64) -> String {
    // Shortest representation that round-trips; always valid JSON for the
    // finite values the figures produce.
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

/// One figure row as a single JSON-object line.
fn push_row(out: &mut String, fig: &str, bench: &str, fields: &[(impl AsRef<str>, String)]) {
    let _ = write!(out, "    {{\"fig\":\"{fig}\",\"bench\":\"{bench}\"");
    for (k, v) in fields {
        let _ = write!(out, ",\"{}\":{v}", k.as_ref());
    }
    out.push_str("}");
}

fn rows_for(out: &mut String, r: &BenchRows) -> usize {
    let mut n = 0;
    let mut sep = |out: &mut String| {
        if n > 0 {
            out.push_str(",\n");
        }
        n += 1;
    };
    if let Some(x) = r.fig3 {
        sep(out);
        push_row(
            out,
            "fig3",
            &r.name,
            &[
                ("each_simple_cv", f(x.each_simple.0)),
                ("each_simple_nu", f(x.each_simple.1)),
                ("each_full_cv", f(x.each_full.0)),
                ("each_full_nu", f(x.each_full.1)),
                ("all_simple_cv", f(x.all_simple.0)),
                ("all_simple_nu", f(x.all_simple.1)),
                ("all_full_cv", f(x.all_full.0)),
                ("all_full_nu", f(x.all_full.1)),
            ],
        );
    }
    if let Some(x) = r.fig4 {
        sep(out);
        let mut fields = Vec::new();
        for (mi, m) in ["each", "all"].iter().enumerate() {
            for (li, l) in ["noom", "simple", "full"].iter().enumerate() {
                fields.push((format!("pv_{m}_{l}"), f(x.pv[mi][li])));
                fields.push((format!("gp_{m}_{l}"), f(x.gp_reset[mi][li])));
            }
        }
        push_row(out, "fig4", &r.name, &fields);
    }
    if let Some(x) = r.fig5 {
        sep(out);
        push_row(
            out,
            "fig5",
            &r.name,
            &[
                ("each_simple", f(x.each_simple)),
                ("each_full", f(x.each_full)),
                ("all_simple", f(x.all_simple)),
                ("all_full", f(x.all_full)),
            ],
        );
    }
    if let Some(x) = r.fig6 {
        sep(out);
        let mut fields = Vec::new();
        for (mi, m) in ["each", "all"].iter().enumerate() {
            for (li, l) in ["simple", "full", "sched"].iter().enumerate() {
                fields.push((format!("imp_{m}_{l}"), f(x.improvement[mi][li])));
            }
            fields.push((format!("base_cycles_{m}"), x.base_cycles[mi].to_string()));
        }
        push_row(out, "fig6", &r.name, &fields);
    }
    if let Some(x) = r.fig7 {
        sep(out);
        push_row(
            out,
            "fig7",
            &r.name,
            &[
                ("standard_link", f(x.standard_link)),
                ("interproc_build", f(x.interproc_build)),
                ("om_none", f(x.om_none)),
                ("om_simple", f(x.om_simple)),
                ("om_full", f(x.om_full)),
                ("om_full_sched", f(x.om_full_sched)),
            ],
        );
    }
    if let Some(x) = r.gat {
        sep(out);
        push_row(
            out,
            "gat",
            &r.name,
            &[
                ("each_before", x.each_before.to_string()),
                ("each_after", x.each_after.to_string()),
                ("all_before", x.all_before.to_string()),
                ("all_after", x.all_after.to_string()),
            ],
        );
    }
    if let Some(x) = r.pgo {
        sep(out);
        let mut fields = Vec::new();
        for (mi, m) in ["each", "all"].iter().enumerate() {
            fields.push((format!("sched_cycles_{m}"), x.sched_cycles[mi].to_string()));
            fields.push((format!("pgo_cycles_{m}"), x.pgo_cycles[mi].to_string()));
            fields.push((format!("imp_{m}"), f(x.improvement[mi])));
            fields.push((format!("procs_moved_{m}"), x.procs_moved[mi].to_string()));
            fields.push((format!("hot_{m}"), x.targets[mi].0.to_string()));
            fields.push((format!("cold_{m}"), x.targets[mi].1.to_string()));
        }
        push_row(out, "pgo", &r.name, &fields);
    }
    if let Some(x) = r.passes {
        sep(out);
        // Deterministic (no wall time): diffed against the baseline like
        // fig3–fig5. Only nonzero deltas are emitted, so the key set itself
        // is part of the gated content.
        let mut fields = vec![("full_rounds".to_string(), x.full_rounds.to_string())];
        for (pi, pass) in crate::figures::PASS_NAMES.iter().enumerate() {
            for (fi, (field, _)) in om_core::obs::DELTA_FIELDS.iter().enumerate() {
                let d = x.deltas[pi][fi];
                if d != 0 {
                    fields.push((format!("{pass}_{field}"), d.to_string()));
                }
            }
        }
        fields.push(("reconciled".to_string(), x.reconciled.to_string()));
        push_row(out, "passes", &r.name, &fields);
    }
    if let Some(x) = r.fleet {
        sep(out);
        // Latency and throughput are wall-clock; bench.sh excludes the
        // whole fleet row from baseline diffs (like fig7 and simsec).
        push_row(
            out,
            "fleet",
            &r.name,
            &[
                ("requests", x.requests.to_string()),
                ("threads", x.threads.to_string()),
                ("modules", x.modules.to_string()),
                ("module_hits", x.module_hits.to_string()),
                ("module_misses", x.module_misses.to_string()),
                ("link_hits", x.link_hits.to_string()),
                ("link_misses", x.link_misses.to_string()),
                ("hit_rate", f(x.hit_rate)),
                ("p50_us", x.p50_us.to_string()),
                ("p99_us", x.p99_us.to_string()),
                ("rps", f(x.rps)),
                ("byte_identical", x.byte_identical.to_string()),
            ],
        );
    }
    if let Some(x) = r.scale {
        sep(out);
        // Deterministic scale-point fields: GAT geometry, checksums,
        // scenario-pack outcomes, cache-invalidation counts. Drift-gated
        // against the baseline like fig3–fig5.
        push_row(
            out,
            "scale",
            &r.name,
            &[
                ("n", x.n.to_string()),
                ("procs", x.procs.to_string()),
                ("objects_each", x.objects_each.to_string()),
                ("objects_all", x.objects_all.to_string()),
                ("gat_entries_input", x.gat_entries_input.to_string()),
                ("gat_slots", x.gat_slots.to_string()),
                ("gp_groups_each", x.gp_groups_each.to_string()),
                ("gp_groups_all", x.gp_groups_all.to_string()),
                ("gat_slots_after_full", x.gat_slots_after_full.to_string()),
                ("gp_resets_after_full", x.gp_resets_after_full.to_string()),
                ("checksum", x.checksum.to_string()),
                ("insts", x.insts.to_string()),
                ("verified_variants", x.verified_variants.to_string()),
                ("shared_gp_resets_kept", x.shared_gp_resets_kept.to_string()),
                ("shared_identical", x.shared_identical.to_string()),
                ("archive_members_live", x.archive_members_live.to_string()),
                ("archive_members_total", x.archive_members_total.to_string()),
                ("archive_chain_depth", x.archive_chain_depth.to_string()),
                ("archive_checksum", x.archive_checksum.to_string()),
                ("edit_module_misses", x.edit_module_misses.to_string()),
                ("edit_hit_rate", f(x.edit_hit_rate)),
                ("sampled_exact", x.sampled_exact.to_string()),
            ],
        );
    }
    if let Some(x) = r.scaletime {
        sep(out);
        // Wall-clock scaling curve (fig7 extended): report-only, excluded
        // from baseline diffs like fig7, simsec, and fleet.
        push_row(
            out,
            "scaletime",
            &r.name,
            &[
                ("standard_link", f(x.standard_link)),
                ("om_full_sched", f(x.om_full_sched)),
                ("relink_cold", f(x.relink_cold)),
                ("relink_edit", f(x.relink_edit)),
            ],
        );
    }
    if r.sim_seconds > 0.0 {
        sep(out);
        // Wall-clock, like fig7: report-only, excluded from baseline diffs.
        push_row(
            out,
            "simsec",
            &r.name,
            &[
                ("seconds", f(r.sim_seconds)),
                ("engine", format!("\"{}\"", crate::figures::SIM_ENGINE)),
            ],
        );
    }
    n
}

/// Renders the whole report. `wall_seconds` is the harness's elapsed time;
/// `phase_seconds` comes from [`crate::figures::phase::totals`].
pub fn report(
    rows: &[BenchRows],
    quick: bool,
    jobs: usize,
    wall_seconds: f64,
    phase_seconds: (f64, f64, f64),
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"om-reproduce/v1\",");
    let _ = writeln!(out, "  \"engine\": \"{}\",", crate::figures::SIM_ENGINE);
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"jobs\": {jobs},");
    let _ = writeln!(out, "  \"benchmarks\": {},", rows.len());
    let _ = writeln!(out, "  \"wall_seconds\": {},", f(wall_seconds));
    let (b, o, s) = phase_seconds;
    let _ = writeln!(
        out,
        "  \"phase_seconds\": {{\"build\": {}, \"om\": {}, \"sim\": {}}},",
        f(b),
        f(o),
        f(s)
    );
    out.push_str("  \"rows\": [\n");
    let mut first = true;
    for r in rows {
        let mut chunk = String::new();
        if rows_for(&mut chunk, r) > 0 {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&chunk);
        }
    }
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::{Fig5Row, GatRow, PassesRow, PgoRow, PASS_NAMES};

    #[test]
    fn rows_are_single_grepable_lines() {
        let rows = vec![BenchRows {
            name: "compress".into(),
            fig3: None,
            fig4: None,
            fig5: Some(Fig5Row {
                each_simple: 0.0625,
                each_full: 0.125,
                all_simple: 0.05,
                all_full: 0.1,
            }),
            fig6: None,
            fig7: None,
            gat: Some(GatRow { each_before: 40, each_after: 5, all_before: 38, all_after: 4 }),
            pgo: Some(PgoRow {
                sched_cycles: [1000, 2000],
                pgo_cycles: [950, 1900],
                improvement: [5.26, 5.26],
                procs_moved: [2, 3],
                targets: [(4, 1), (5, 0)],
            }),
            fleet: Some(crate::fleet::FleetRow {
                requests: 12,
                threads: 4,
                modules: 5,
                module_hits: 16,
                module_misses: 4,
                link_hits: 8,
                link_misses: 4,
                hit_rate: 0.9333333333333333,
                p50_us: 120,
                p99_us: 900,
                rps: 250.0,
                byte_identical: true,
            }),
            passes: Some({
                let mut p = PassesRow {
                    deltas: [[0; om_core::obs::DELTA_FIELDS.len()]; PASS_NAMES.len()],
                    full_rounds: 2,
                    reconciled: true,
                };
                // nullify reclassifies: insts_nullified −4, insts_deleted +4.
                let nullify = PASS_NAMES.iter().position(|x| *x == "nullify").unwrap();
                p.deltas[nullify][0] = -4;
                p.deltas[nullify][1] = 4;
                p
            }),
            scale: Some(crate::scale::ScaleRow {
                n: 16,
                procs: 1600,
                objects_each: 17,
                objects_all: 2,
                gat_entries_input: 9000,
                gat_slots: 8600,
                gp_groups_each: 2,
                gp_groups_all: 2,
                gat_slots_after_full: 700,
                gp_resets_after_full: 3,
                checksum: -42,
                insts: 123456,
                verified_variants: 8,
                shared_gp_resets_kept: 5,
                shared_identical: true,
                archive_members_live: 16,
                archive_members_total: 24,
                archive_chain_depth: 16,
                archive_checksum: 77,
                edit_module_misses: 1,
                edit_hit_rate: 0.9375,
                sampled_exact: true,
            }),
            scaletime: Some(crate::scale::ScaleTimeRow {
                standard_link: 0.01,
                om_full_sched: 0.05,
                relink_cold: 0.04,
                relink_edit: 0.002,
            }),
            sim_seconds: 0.375,
        }];
        let s = report(&rows, true, 4, 1.5, (0.5, 0.25, 0.75));
        let bench_lines: Vec<&str> = s.lines().filter(|l| l.contains("\"bench\"")).collect();
        assert_eq!(bench_lines.len(), 8, "{s}");
        assert!(bench_lines[0].contains("\"fig\":\"fig5\""), "{s}");
        assert!(bench_lines[1].contains("\"each_before\":40"), "{s}");
        assert!(bench_lines[2].contains("\"fig\":\"pgo\""), "{s}");
        assert!(bench_lines[2].contains("\"pgo_cycles_each\":950"), "{s}");
        assert!(bench_lines[3].contains("\"fig\":\"passes\""), "{s}");
        assert!(bench_lines[3].contains("\"nullify_insts_nullified\":-4"), "{s}");
        assert!(bench_lines[3].contains("\"nullify_insts_deleted\":4"), "{s}");
        assert!(bench_lines[3].contains("\"full_rounds\":2"), "{s}");
        assert!(bench_lines[3].contains("\"reconciled\":true"), "{s}");
        assert!(bench_lines[4].contains("\"fig\":\"fleet\""), "{s}");
        assert!(bench_lines[4].contains("\"byte_identical\":true"), "{s}");
        assert!(bench_lines[5].contains("\"fig\":\"scale\""), "{s}");
        assert!(bench_lines[5].contains("\"verified_variants\":8"), "{s}");
        assert!(bench_lines[5].contains("\"edit_module_misses\":1"), "{s}");
        assert!(bench_lines[5].contains("\"sampled_exact\":true"), "{s}");
        assert!(bench_lines[6].contains("\"fig\":\"scaletime\""), "{s}");
        assert!(bench_lines[6].contains("\"relink_edit\":0.002"), "{s}");
        assert!(bench_lines[7].contains("\"fig\":\"simsec\""), "{s}");
        assert!(bench_lines[7].contains("\"engine\":\"block\""), "{s}");
        assert!(s.contains("\"engine\": \"block\""), "{s}");
        assert!(s.contains("\"phase_seconds\""), "{s}");
        // Valid-enough JSON: balanced braces/brackets on the skeleton.
        assert_eq!(s.matches('{').count(), s.matches('}').count(), "{s}");
        assert_eq!(s.matches('[').count(), s.matches(']').count(), "{s}");
    }
}
