//! Reproduction of every figure and table in the paper's evaluation (§5).
//!
//! Each `figN` function measures one benchmark in the same configurations the
//! paper plots and returns the rows its figure reports. The `reproduce`
//! binary renders them as text tables; `EXPERIMENTS.md` records a captured
//! run against the paper's numbers.

use om_core::{optimize_and_link, OmLevel, OmStats};
use om_linker::Linker;
use om_sim::{run_timed, TimingStats};
use om_workloads::build::{build, BuiltBenchmark, CompileMode};
use om_workloads::gen::BenchSpec;
use std::time::Instant;

/// Simulator instruction budget per run.
pub const SIM_LIMIT: u64 = 2_000_000_000;

/// A fully-built benchmark in both compile modes (compiled once, measured
/// many times).
pub struct Prepared {
    pub spec: BenchSpec,
    pub each: BuiltBenchmark,
    pub all: BuiltBenchmark,
}

impl Prepared {
    /// Builds both variants of a benchmark.
    ///
    /// # Panics
    ///
    /// Panics if the generated program fails to compile (a toolchain bug).
    pub fn new(spec: &BenchSpec) -> Prepared {
        Prepared {
            spec: *spec,
            each: build(spec, CompileMode::Each).expect("compile-each build"),
            all: build(spec, CompileMode::All).expect("compile-all build"),
        }
    }

    fn built(&self, mode: CompileMode) -> &BuiltBenchmark {
        match mode {
            CompileMode::Each => &self.each,
            CompileMode::All => &self.all,
        }
    }

    /// Runs OM at `level` on `mode`'s objects, returning its statistics.
    ///
    /// # Panics
    ///
    /// Panics on link failure.
    pub fn om_stats(&self, mode: CompileMode, level: OmLevel) -> OmStats {
        let b = self.built(mode);
        optimize_and_link(b.objects.clone(), &b.libs, level)
            .unwrap_or_else(|e| panic!("{} {}: {e}", self.spec.name, level.name()))
            .stats
    }

    /// Simulates `mode` under the standard link and returns `(result, timing)`.
    ///
    /// # Panics
    ///
    /// Panics on link or execution failure.
    pub fn run_standard(&self, mode: CompileMode) -> (i64, TimingStats) {
        let b = self.built(mode);
        let mut linker = Linker::new();
        for o in b.objects.clone() {
            linker = linker.object(o);
        }
        for l in b.libs.clone() {
            linker = linker.library(l.clone());
        }
        let (image, _) = linker.link().unwrap_or_else(|e| panic!("{}: {e}", self.spec.name));
        let (r, t) = run_timed(&image, SIM_LIMIT).unwrap_or_else(|e| panic!("{}: {e}", self.spec.name));
        (r.result, t)
    }

    /// Simulates `mode` after OM at `level`.
    ///
    /// # Panics
    ///
    /// Panics on link or execution failure.
    pub fn run_om(&self, mode: CompileMode, level: OmLevel) -> (i64, TimingStats) {
        let b = self.built(mode);
        let out = optimize_and_link(b.objects.clone(), &b.libs, level)
            .unwrap_or_else(|e| panic!("{} {}: {e}", self.spec.name, level.name()));
        let (r, t) = run_timed(&out.image, SIM_LIMIT)
            .unwrap_or_else(|e| panic!("{} {}: {e}", self.spec.name, level.name()));
        (r.result, t)
    }
}

/// Figure 3: static fraction of address loads removed, split converted /
/// nullified, for (compile-each, compile-all) × (OM-simple, OM-full).
#[derive(Debug, Clone, Copy)]
pub struct Fig3Row {
    /// `(converted, nullified)` fractions in `[0, 1]`.
    pub each_simple: (f64, f64),
    pub each_full: (f64, f64),
    pub all_simple: (f64, f64),
    pub all_full: (f64, f64),
}

/// Measures Figure 3 for one prepared benchmark.
pub fn fig3(p: &Prepared) -> Fig3Row {
    Fig3Row {
        each_simple: p.om_stats(CompileMode::Each, OmLevel::Simple).addr_load_fractions(),
        each_full: p.om_stats(CompileMode::Each, OmLevel::Full).addr_load_fractions(),
        all_simple: p.om_stats(CompileMode::All, OmLevel::Simple).addr_load_fractions(),
        all_full: p.om_stats(CompileMode::All, OmLevel::Full).addr_load_fractions(),
    }
}

/// Figure 4: fraction of calls still requiring PV loads (top) and GP-reset
/// code (bottom) for no-OM / OM-simple / OM-full × compile-each/compile-all.
#[derive(Debug, Clone, Copy)]
pub struct Fig4Row {
    /// Indexed `[mode][level]` with mode 0=each 1=all, level 0=no OM,
    /// 1=simple, 2=full.
    pub pv: [[f64; 3]; 2],
    pub gp_reset: [[f64; 3]; 2],
}

/// Measures Figure 4 for one prepared benchmark.
pub fn fig4(p: &Prepared) -> Fig4Row {
    let mut pv = [[0.0; 3]; 2];
    let mut gp = [[0.0; 3]; 2];
    for (mi, mode) in [CompileMode::Each, CompileMode::All].into_iter().enumerate() {
        for (li, level) in [OmLevel::None, OmLevel::Simple, OmLevel::Full].into_iter().enumerate() {
            let s = p.om_stats(mode, level);
            pv[mi][li] = s.pv_fraction_after();
            gp[mi][li] = s.gp_reset_fraction_after();
        }
    }
    Fig4Row { pv, gp_reset: gp }
}

/// Figure 5: static fraction of instructions nullified (simple) or deleted
/// (full), per compile mode.
#[derive(Debug, Clone, Copy)]
pub struct Fig5Row {
    pub each_simple: f64,
    pub each_full: f64,
    pub all_simple: f64,
    pub all_full: f64,
}

/// Measures Figure 5 for one prepared benchmark.
pub fn fig5(p: &Prepared) -> Fig5Row {
    Fig5Row {
        each_simple: p.om_stats(CompileMode::Each, OmLevel::Simple).inst_fraction_removed(),
        each_full: p.om_stats(CompileMode::Each, OmLevel::Full).inst_fraction_removed(),
        all_simple: p.om_stats(CompileMode::All, OmLevel::Simple).inst_fraction_removed(),
        all_full: p.om_stats(CompileMode::All, OmLevel::Full).inst_fraction_removed(),
    }
}

/// Figure 6: dynamic percentage improvement over the same compile mode with
/// no link-time optimization, plus the §5.2 rescheduling variant.
#[derive(Debug, Clone, Copy)]
pub struct Fig6Row {
    /// Percent improvements, indexed `[mode][level]` with level 0=simple,
    /// 1=full, 2=full w/sched.
    pub improvement: [[f64; 3]; 2],
    /// Baseline cycle counts per mode (for context).
    pub base_cycles: [u64; 2],
}

/// Measures Figure 6 for one prepared benchmark (the expensive one: eight
/// simulator runs).
///
/// # Panics
///
/// Panics if any variant's checksum disagrees with the baseline — the
/// harness doubles as a correctness check.
pub fn fig6(p: &Prepared) -> Fig6Row {
    let mut improvement = [[0.0; 3]; 2];
    let mut base_cycles = [0u64; 2];
    for (mi, mode) in [CompileMode::Each, CompileMode::All].into_iter().enumerate() {
        let (expect, base) = p.run_standard(mode);
        base_cycles[mi] = base.cycles;
        for (li, level) in [OmLevel::Simple, OmLevel::Full, OmLevel::FullSched]
            .into_iter()
            .enumerate()
        {
            let (r, t) = p.run_om(mode, level);
            assert_eq!(r, expect, "{} {} {}", p.spec.name, mode.name(), level.name());
            improvement[mi][li] = (base.cycles as f64 / t.cycles as f64 - 1.0) * 100.0;
        }
    }
    Fig6Row { improvement, base_cycles }
}

/// Figure 7: build-time comparison in seconds — standard link, the
/// interprocedural build (compile-all from source), and OM at each level.
#[derive(Debug, Clone, Copy)]
pub struct Fig7Row {
    pub standard_link: f64,
    pub interproc_build: f64,
    pub om_none: f64,
    pub om_simple: f64,
    pub om_full: f64,
    pub om_full_sched: f64,
}

/// Measures Figure 7 for one benchmark spec (compiles inside the timed
/// regions exactly as the paper's table does).
pub fn fig7(p: &Prepared) -> Fig7Row {
    let time = |f: &mut dyn FnMut()| {
        let t0 = Instant::now();
        f();
        t0.elapsed().as_secs_f64()
    };

    let standard_link = time(&mut || {
        let b = &p.each;
        let mut linker = Linker::new();
        for o in b.objects.clone() {
            linker = linker.object(o);
        }
        for l in b.libs.clone() {
            linker = linker.library(l);
        }
        let _ = linker.link().expect("standard link");
    });

    // The paper's "interproc build": full recompilation of all sources with
    // interprocedural optimization, then a standard link.
    let interproc_build = time(&mut || {
        let b = build(&p.spec, CompileMode::All).expect("compile-all");
        let mut linker = Linker::new();
        for o in b.objects {
            linker = linker.object(o);
        }
        for l in b.libs {
            linker = linker.library(l);
        }
        let _ = linker.link().expect("link");
    });

    let om = |level: OmLevel| {
        let b = &p.each;
        let objects = b.objects.clone();
        let libs = b.libs.clone();
        let t0 = Instant::now();
        let _ = optimize_and_link(objects, &libs, level).expect("om link");
        t0.elapsed().as_secs_f64()
    };

    Fig7Row {
        standard_link,
        interproc_build,
        om_none: om(OmLevel::None),
        om_simple: om(OmLevel::Simple),
        om_full: om(OmLevel::Full),
        om_full_sched: om(OmLevel::FullSched),
    }
}

/// §5.1 GAT reduction: merged GAT slots before and after OM-full, per
/// compile mode.
#[derive(Debug, Clone, Copy)]
pub struct GatRow {
    pub each_before: usize,
    pub each_after: usize,
    pub all_before: usize,
    pub all_after: usize,
}

/// Measures the GAT-reduction row for one prepared benchmark.
pub fn gat(p: &Prepared) -> GatRow {
    let e = p.om_stats(CompileMode::Each, OmLevel::Full);
    let a = p.om_stats(CompileMode::All, OmLevel::Full);
    GatRow {
        each_before: e.gat_slots_before,
        each_after: e.gat_slots_after,
        all_before: a.gat_slots_before,
        all_after: a.gat_slots_after,
    }
}
