//! Reproduction of every figure and table in the paper's evaluation (§5).
//!
//! Each `figN` function measures one benchmark in the same configurations the
//! paper plots and returns the rows its figure reports. The `reproduce`
//! binary renders them as text tables; `EXPERIMENTS.md` records a captured
//! run against the paper's numbers.
//!
//! [`Prepared`] memoizes the expensive middle of the harness: each
//! `(CompileMode, OmLevel)` OM pipeline result is computed exactly once per
//! benchmark (behind a [`OnceLock`] grid), so fig3/fig4/fig5/fig6 and the
//! GAT table share one `optimize_and_link` run per configuration instead of
//! each re-running it. The standard-link image is cached the same way. All
//! caches are interior and thread-safe: the harness measures many benchmarks
//! concurrently with shared references. Figure 7 is the deliberate
//! exception — it times fresh pipeline runs, so it bypasses every cache.

use om_core::{
    optimize_and_link, optimize_and_link_cached, OmLevel, OmOptions, OmOutput, OmStats, Profile,
};
use om_linker::{link_modules, Image, LayoutOpts};
use om_sim::{run_profiled_fast, run_timed_fast, TimingStats};
use om_workloads::build::{build, BuiltBenchmark, CompileMode};
use om_workloads::gen::BenchSpec;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Simulator instruction budget per run.
pub const SIM_LIMIT: u64 = 2_000_000_000;

/// Which simulator engine the harness measures with. Recorded in the BENCH
/// JSON so a captured run says how its `simsec` rows were produced.
pub const SIM_ENGINE: &str = "block";

/// Cumulative per-phase wall time, summed across worker threads (so with
/// `--jobs N` the totals can exceed elapsed time — they are CPU-style
/// accounting, which is exactly what a speedup comparison wants).
pub mod phase {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Duration;

    static BUILD: AtomicU64 = AtomicU64::new(0);
    static OM: AtomicU64 = AtomicU64::new(0);
    static SIM: AtomicU64 = AtomicU64::new(0);

    pub(crate) fn add_build(d: Duration) {
        BUILD.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }
    pub(crate) fn add_om(d: Duration) {
        OM.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }
    pub(crate) fn add_sim(d: Duration) {
        SIM.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// `(build, om, sim)` totals in seconds since process start.
    pub fn totals() -> (f64, f64, f64) {
        let s = |c: &AtomicU64| c.load(Ordering::Relaxed) as f64 * 1e-9;
        (s(&BUILD), s(&OM), s(&SIM))
    }
}

/// A fully-built benchmark in both compile modes (compiled once, measured
/// many times), with memoized per-configuration pipeline results.
pub struct Prepared {
    pub spec: BenchSpec,
    pub each: BuiltBenchmark,
    pub all: BuiltBenchmark,
    /// OM results, indexed `[mode.index()][level.index()]`, computed on
    /// first use through the process-wide relink cache
    /// ([`om_core::cache::shared`]) — the promotion of this struct's
    /// original private `OnceLock` grid to a store `omd` shares.
    om: [[OnceLock<Arc<OmOutput>>; OmLevel::ALL.len()]; CompileMode::ALL.len()],
    /// Standard-link images per mode, computed on first use.
    std_image: [OnceLock<Image>; CompileMode::ALL.len()],
    /// Execution profiles per mode (one functional run of the cached
    /// OM-full-scheduled image), computed on first use.
    profile: [OnceLock<Profile>; CompileMode::ALL.len()],
    /// Profile-guided relinks per mode (built with verification on),
    /// computed on first use.
    pgo: [OnceLock<Arc<OmOutput>>; CompileMode::ALL.len()],
    /// Cumulative simulator wall time spent on this benchmark, in
    /// nanoseconds (the per-benchmark slice of [`phase::totals`]'s sim
    /// column). Report-only.
    sim_nanos: AtomicU64,
}

impl Prepared {
    /// Builds both variants of a benchmark.
    ///
    /// # Panics
    ///
    /// Panics if the generated program fails to compile (a toolchain bug).
    pub fn new(spec: &BenchSpec) -> Prepared {
        let t0 = Instant::now();
        let each = build(spec, CompileMode::Each).expect("compile-each build");
        let all = build(spec, CompileMode::All).expect("compile-all build");
        phase::add_build(t0.elapsed());
        Prepared {
            spec: *spec,
            each,
            all,
            om: Default::default(),
            std_image: Default::default(),
            profile: Default::default(),
            pgo: Default::default(),
            sim_nanos: AtomicU64::new(0),
        }
    }

    fn add_sim(&self, t0: Instant) {
        let d = t0.elapsed();
        phase::add_sim(d);
        self.sim_nanos.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Simulator seconds spent on this benchmark so far.
    pub fn sim_seconds(&self) -> f64 {
        self.sim_nanos.load(Ordering::Relaxed) as f64 * 1e-9
    }

    fn built(&self, mode: CompileMode) -> &BuiltBenchmark {
        match mode {
            CompileMode::Each => &self.each,
            CompileMode::All => &self.all,
        }
    }

    /// The OM pipeline result for `(mode, level)`, running it on first use
    /// and returning the cached output thereafter.
    ///
    /// # Panics
    ///
    /// Panics on link failure.
    pub fn om(&self, mode: CompileMode, level: OmLevel) -> &OmOutput {
        self.om[mode.index()][level.index()].get_or_init(|| {
            let b = self.built(mode);
            let t0 = Instant::now();
            let (out, _) = optimize_and_link_cached(
                &b.objects,
                &b.libs,
                level,
                &OmOptions::default(),
                om_core::cache::shared(),
            )
            .unwrap_or_else(|e| panic!("{} {}: {e}", self.spec.name, level.name()));
            phase::add_om(t0.elapsed());
            out
        })
    }

    /// Runs OM at `level` on `mode`'s objects, returning its statistics.
    ///
    /// # Panics
    ///
    /// Panics on link failure.
    pub fn om_stats(&self, mode: CompileMode, level: OmLevel) -> OmStats {
        self.om(mode, level).stats
    }

    /// The standard (non-optimizing) link of `mode`, cached after the first
    /// call.
    ///
    /// # Panics
    ///
    /// Panics on link failure.
    pub fn std_image(&self, mode: CompileMode) -> &Image {
        self.std_image[mode.index()].get_or_init(|| {
            let b = self.built(mode);
            link_modules(&b.objects, &b.libs, &LayoutOpts::default())
                .unwrap_or_else(|e| panic!("{}: {e}", self.spec.name))
                .0
        })
    }

    /// Simulates `mode` under the standard link and returns `(result, timing)`.
    ///
    /// # Panics
    ///
    /// Panics on link or execution failure.
    pub fn run_standard(&self, mode: CompileMode) -> (i64, TimingStats) {
        let image = self.std_image(mode);
        let t0 = Instant::now();
        let (r, t) =
            run_timed_fast(image, SIM_LIMIT).unwrap_or_else(|e| panic!("{}: {e}", self.spec.name));
        self.add_sim(t0);
        (r.result, t)
    }

    /// Simulates `mode` after OM at `level`.
    ///
    /// # Panics
    ///
    /// Panics on link or execution failure.
    pub fn run_om(&self, mode: CompileMode, level: OmLevel) -> (i64, TimingStats) {
        let out = self.om(mode, level);
        let t0 = Instant::now();
        let (r, t) = run_timed_fast(&out.image, SIM_LIMIT)
            .unwrap_or_else(|e| panic!("{} {}: {e}", self.spec.name, level.name()));
        self.add_sim(t0);
        (r.result, t)
    }

    /// The execution profile of `mode`'s OM-full-scheduled image (one extra
    /// functional simulator run), cached after the first call.
    ///
    /// # Panics
    ///
    /// Panics on link or execution failure.
    pub fn profile(&self, mode: CompileMode) -> &Profile {
        self.profile[mode.index()].get_or_init(|| {
            let image = &self.om(mode, OmLevel::FullSched).image;
            let t0 = Instant::now();
            let (_, prof) = run_profiled_fast(image, SIM_LIMIT)
                .unwrap_or_else(|e| panic!("{} profile: {e}", self.spec.name));
            self.add_sim(t0);
            prof
        })
    }

    /// The profile-guided relink of `mode` — OM-full-scheduled rebuilt with
    /// [`Prepared::profile`] and verification enabled — cached after the
    /// first call.
    ///
    /// # Panics
    ///
    /// Panics on link or verification failure.
    pub fn om_pgo(&self, mode: CompileMode) -> &OmOutput {
        self.pgo[mode.index()].get_or_init(|| {
            let options = OmOptions {
                profile: Some(self.profile(mode).clone()),
                verify: true,
                ..OmOptions::default()
            };
            let b = self.built(mode);
            let t0 = Instant::now();
            let (out, _) = optimize_and_link_cached(
                &b.objects,
                &b.libs,
                OmLevel::FullSched,
                &options,
                om_core::cache::shared(),
            )
            .unwrap_or_else(|e| panic!("{} pgo: {e}", self.spec.name));
            phase::add_om(t0.elapsed());
            out
        })
    }

    /// Simulates `mode` after the profile-guided relink.
    ///
    /// # Panics
    ///
    /// Panics on link or execution failure.
    pub fn run_pgo(&self, mode: CompileMode) -> (i64, TimingStats) {
        let out = self.om_pgo(mode);
        let t0 = Instant::now();
        let (r, t) = run_timed_fast(&out.image, SIM_LIMIT)
            .unwrap_or_else(|e| panic!("{} pgo: {e}", self.spec.name));
        self.add_sim(t0);
        (r.result, t)
    }
}

/// Figure 3: static fraction of address loads removed, split converted /
/// nullified, for (compile-each, compile-all) × (OM-simple, OM-full).
#[derive(Debug, Clone, Copy)]
pub struct Fig3Row {
    /// `(converted, nullified)` fractions in `[0, 1]`.
    pub each_simple: (f64, f64),
    pub each_full: (f64, f64),
    pub all_simple: (f64, f64),
    pub all_full: (f64, f64),
}

/// Measures Figure 3 for one prepared benchmark.
pub fn fig3(p: &Prepared) -> Fig3Row {
    // Modes × the transforming static levels, from the shared tables.
    let mut v = [[(0.0, 0.0); 2]; 2];
    for mode in CompileMode::ALL {
        for (li, level) in OmLevel::ALL[1..3].iter().enumerate() {
            v[mode.index()][li] = p.om_stats(mode, *level).addr_load_fractions();
        }
    }
    Fig3Row {
        each_simple: v[0][0],
        each_full: v[0][1],
        all_simple: v[1][0],
        all_full: v[1][1],
    }
}

/// Figure 4: fraction of calls still requiring PV loads (top) and GP-reset
/// code (bottom) for no-OM / OM-simple / OM-full × compile-each/compile-all.
#[derive(Debug, Clone, Copy)]
pub struct Fig4Row {
    /// Indexed `[mode][level]` with mode 0=each 1=all, level 0=no OM,
    /// 1=simple, 2=full.
    pub pv: [[f64; 3]; 2],
    pub gp_reset: [[f64; 3]; 2],
}

/// Measures Figure 4 for one prepared benchmark.
pub fn fig4(p: &Prepared) -> Fig4Row {
    let mut pv = [[0.0; 3]; 2];
    let mut gp = [[0.0; 3]; 2];
    for mode in CompileMode::ALL {
        for (li, level) in OmLevel::ALL[..3].iter().enumerate() {
            let s = p.om_stats(mode, *level);
            pv[mode.index()][li] = s.pv_fraction_after();
            gp[mode.index()][li] = s.gp_reset_fraction_after();
        }
    }
    Fig4Row { pv, gp_reset: gp }
}

/// Figure 5: static fraction of instructions nullified (simple) or deleted
/// (full), per compile mode.
#[derive(Debug, Clone, Copy)]
pub struct Fig5Row {
    pub each_simple: f64,
    pub each_full: f64,
    pub all_simple: f64,
    pub all_full: f64,
}

/// Measures Figure 5 for one prepared benchmark.
pub fn fig5(p: &Prepared) -> Fig5Row {
    let mut v = [[0.0; 2]; 2];
    for mode in CompileMode::ALL {
        for (li, level) in OmLevel::ALL[1..3].iter().enumerate() {
            v[mode.index()][li] = p.om_stats(mode, *level).inst_fraction_removed();
        }
    }
    Fig5Row {
        each_simple: v[0][0],
        each_full: v[0][1],
        all_simple: v[1][0],
        all_full: v[1][1],
    }
}

/// Figure 6: dynamic percentage improvement over the same compile mode with
/// no link-time optimization, plus the §5.2 rescheduling variant.
#[derive(Debug, Clone, Copy)]
pub struct Fig6Row {
    /// Percent improvements, indexed `[mode][level]` with level 0=simple,
    /// 1=full, 2=full w/sched.
    pub improvement: [[f64; 3]; 2],
    /// Baseline cycle counts per mode (for context).
    pub base_cycles: [u64; 2],
}

/// Measures Figure 6 for one prepared benchmark (the expensive one: eight
/// simulator runs).
///
/// # Panics
///
/// Panics if any variant's checksum disagrees with the baseline — the
/// harness doubles as a correctness check.
pub fn fig6(p: &Prepared) -> Fig6Row {
    let mut improvement = [[0.0; 3]; 2];
    let mut base_cycles = [0u64; 2];
    for mode in CompileMode::ALL {
        let mi = mode.index();
        let (expect, base) = p.run_standard(mode);
        base_cycles[mi] = base.cycles;
        for (li, level) in OmLevel::ALL[1..].iter().enumerate() {
            let (r, t) = p.run_om(mode, *level);
            assert_eq!(r, expect, "{} {} {}", p.spec.name, mode.name(), level.name());
            improvement[mi][li] = (base.cycles as f64 / t.cycles as f64 - 1.0) * 100.0;
        }
    }
    Fig6Row { improvement, base_cycles }
}

/// Figure 7: build-time comparison in seconds — standard link, the
/// interprocedural build (compile-all from source), and OM at each level.
#[derive(Debug, Clone, Copy)]
pub struct Fig7Row {
    pub standard_link: f64,
    pub interproc_build: f64,
    pub om_none: f64,
    pub om_simple: f64,
    pub om_full: f64,
    pub om_full_sched: f64,
}

/// Measures Figure 7 for one benchmark spec. Every timed region runs the
/// real pipeline fresh, exactly as the paper's table does — the memoized
/// results in [`Prepared`] are deliberately not consulted.
pub fn fig7(p: &Prepared) -> Fig7Row {
    let standard_link = {
        let b = &p.each;
        let t0 = Instant::now();
        let _ = link_modules(&b.objects, &b.libs, &LayoutOpts::default())
            .expect("standard link");
        t0.elapsed().as_secs_f64()
    };

    // The paper's "interproc build": full recompilation of all sources with
    // interprocedural optimization, then a standard link.
    let interproc_build = {
        let t0 = Instant::now();
        let b = build(&p.spec, CompileMode::All).expect("compile-all");
        let _ = link_modules(&b.objects, &b.libs, &LayoutOpts::default()).expect("link");
        t0.elapsed().as_secs_f64()
    };

    let om = |level: OmLevel| {
        let b = &p.each;
        let t0 = Instant::now();
        let _ = optimize_and_link(&b.objects, &b.libs, level).expect("om link");
        t0.elapsed().as_secs_f64()
    };

    // The four levels in OmLevel::ALL order.
    let [om_none, om_simple, om_full, om_full_sched] = OmLevel::ALL.map(om);
    Fig7Row {
        standard_link,
        interproc_build,
        om_none,
        om_simple,
        om_full,
        om_full_sched,
    }
}

/// Profile-guided layout (this reproduction's §13 extension): cycle counts
/// of the profile-guided relink against plain OM-full-scheduled, per
/// compile mode.
#[derive(Debug, Clone, Copy)]
pub struct PgoRow {
    /// OM-full w/sched cycles (blind backward-target alignment), per mode.
    pub sched_cycles: [u64; 2],
    /// Profile-guided relink cycles, per mode.
    pub pgo_cycles: [u64; 2],
    /// Percent improvement of PGO over OM-full w/sched, per mode.
    pub improvement: [f64; 2],
    /// Procedures moved by hot-first reordering, per mode.
    pub procs_moved: [usize; 2],
    /// `(hot, cold)` backward-branch targets under the profile, per mode.
    pub targets: [(usize, usize); 2],
}

/// Measures the PGO comparison for one prepared benchmark: profiles the
/// OM-full-scheduled image, relinks with the profile (verification on), and
/// simulates both.
///
/// # Panics
///
/// Panics if the profile-guided image computes a different checksum than the
/// scheduled one — PGO must never change program meaning.
pub fn pgo(p: &Prepared) -> PgoRow {
    let mut sched_cycles = [0u64; 2];
    let mut pgo_cycles = [0u64; 2];
    let mut improvement = [0.0; 2];
    let mut procs_moved = [0usize; 2];
    let mut targets = [(0usize, 0usize); 2];
    for mode in CompileMode::ALL {
        let mi = mode.index();
        let (expect, sched) = p.run_om(mode, OmLevel::FullSched);
        let (r, t) = p.run_pgo(mode);
        assert_eq!(r, expect, "{} {} pgo checksum", p.spec.name, mode.name());
        sched_cycles[mi] = sched.cycles;
        pgo_cycles[mi] = t.cycles;
        improvement[mi] = (sched.cycles as f64 / t.cycles as f64 - 1.0) * 100.0;
        let s = p.om_pgo(mode).stats;
        procs_moved[mi] = s.pgo_procs_moved;
        targets[mi] = (s.pgo_targets_hot, s.pgo_targets_cold);
    }
    PgoRow { sched_cycles, pgo_cycles, improvement, procs_moved, targets }
}

/// The transformation passes [`passes`] meters, in pipeline order. Only
/// passes that run under a [`om_core::obs::PassMeter`] appear; translation
/// and resolution mutate no [`OmStats`] field in
/// [`om_core::obs::DELTA_FIELDS`].
pub const PASS_NAMES: [&str; 5] = ["calls", "convert", "nullify", "resched", "pgo"];

/// Per-pass deterministic counter deltas for one benchmark: a net signed
/// delta for every `(pass, stats field)` pair, from one traced
/// OM-full-scheduled run of the compile-each build. Wall time is
/// deliberately absent — every field here is input-determined, so the row
/// is gated against the BENCH baseline (unlike `fig7`/`simsec`/`fleet`).
#[derive(Debug, Clone, Copy)]
pub struct PassesRow {
    /// `deltas[pass][field]`, pass order [`PASS_NAMES`], field order
    /// [`om_core::obs::DELTA_FIELDS`]. Signed: `delete_nops` reclassifies
    /// nullified instructions as deletions, so `nullify` carries a negative
    /// `insts_nullified` delta.
    pub deltas: [[i64; om_core::obs::DELTA_FIELDS.len()]; PASS_NAMES.len()],
    /// Rounds of the OM-full fixpoint loop.
    pub full_rounds: u64,
    /// True iff the per-pass deltas reconcile exactly with the run's final
    /// [`OmStats`] ([`om_core::obs::reconcile`]).
    pub reconciled: bool,
}

/// Measures the per-pass counter table for one prepared benchmark: one
/// dedicated, uncached OM-full-scheduled run of the compile-each objects
/// under a thread-local [`om_obs::Trace`] (a cached result would replay no
/// passes and meter nothing).
///
/// # Panics
///
/// Panics on link failure.
pub fn passes(p: &Prepared) -> PassesRow {
    let b = &p.each;
    let trace = om_obs::Trace::new();
    let out = {
        let _g = trace.install();
        optimize_and_link(&b.objects, &b.libs, OmLevel::FullSched)
            .unwrap_or_else(|e| panic!("{} passes: {e}", p.spec.name))
    };
    let counters = trace.counters();
    let mut deltas = [[0i64; om_core::obs::DELTA_FIELDS.len()]; PASS_NAMES.len()];
    for (pi, pass) in PASS_NAMES.iter().enumerate() {
        for (fi, (field, _)) in om_core::obs::DELTA_FIELDS.iter().enumerate() {
            let pos = counters.get(&format!("pass.{pass}.{field}")).copied().unwrap_or(0);
            let neg = counters.get(&format!("pass.{pass}.{field}.neg")).copied().unwrap_or(0);
            deltas[pi][fi] = pos as i64 - neg as i64;
        }
    }
    PassesRow {
        deltas,
        full_rounds: counters.get("pipeline.full_rounds").copied().unwrap_or(0),
        reconciled: om_core::obs::reconcile(&counters, &out.stats).is_ok(),
    }
}

/// §5.1 GAT reduction: merged GAT slots before and after OM-full, per
/// compile mode.
#[derive(Debug, Clone, Copy)]
pub struct GatRow {
    pub each_before: usize,
    pub each_after: usize,
    pub all_before: usize,
    pub all_after: usize,
}

/// Measures the GAT-reduction row for one prepared benchmark.
pub fn gat(p: &Prepared) -> GatRow {
    let e = p.om_stats(CompileMode::Each, OmLevel::Full);
    let a = p.om_stats(CompileMode::All, OmLevel::Full);
    GatRow {
        each_before: e.gat_slots_before,
        each_after: e.gat_slots_after,
        all_before: a.gat_slots_before,
        all_after: a.gat_slots_after,
    }
}

/// Which artifacts a harness invocation should measure.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Selection {
    pub fig3: bool,
    pub fig4: bool,
    pub fig5: bool,
    pub fig6: bool,
    pub fig7: bool,
    pub gat: bool,
    pub pgo: bool,
    /// The CI-fleet relink storm ([`crate::fleet`]). Like `fig7`, measured
    /// sequentially by the harness (the storm is internally parallel).
    pub fleet: bool,
    /// The per-pass counter table ([`passes`]): deterministic, measured in
    /// the parallel pass like fig3–fig5.
    pub passes: bool,
    /// The scale-out figure ([`crate::scale`]). Not per-benchmark: the
    /// harness runs it sequentially over its own scale points and appends
    /// dedicated `scale{N}` rows.
    pub scale: bool,
}

impl Selection {
    /// Everything the `all` command reproduces.
    pub fn all() -> Selection {
        Selection {
            fig3: true,
            fig4: true,
            fig5: true,
            fig6: true,
            fig7: true,
            gat: true,
            pgo: true,
            fleet: true,
            passes: true,
            scale: true,
        }
    }
}

/// Every selected figure's rows for one benchmark — the unit of parallel
/// measurement in the harness.
#[derive(Debug, Clone)]
pub struct BenchRows {
    pub name: String,
    pub fig3: Option<Fig3Row>,
    pub fig4: Option<Fig4Row>,
    pub fig5: Option<Fig5Row>,
    pub fig6: Option<Fig6Row>,
    pub fig7: Option<Fig7Row>,
    pub gat: Option<GatRow>,
    pub pgo: Option<PgoRow>,
    /// The CI-fleet relink storm, filled in by the harness after the
    /// parallel measurement pass (like `fig7`).
    pub fleet: Option<crate::fleet::FleetRow>,
    pub passes: Option<PassesRow>,
    /// The scale figure's deterministic row — only on the dedicated
    /// `scale{N}` entries ([`crate::scale::bench_rows`]); always `None` on
    /// the 19 paper benchmarks.
    pub scale: Option<crate::scale::ScaleRow>,
    /// The scale figure's wall-clock row (report-only, like fig7).
    pub scaletime: Option<crate::scale::ScaleTimeRow>,
    /// Simulator seconds this benchmark spent across all its runs
    /// (report-only; excluded from baseline diffs like fig7).
    pub sim_seconds: f64,
}

/// Measures all selected figures for one benchmark. Thanks to the memoized
/// pipeline, overlapping figures (3/4/5/6/gat) share OM runs.
pub fn measure(p: &Prepared, sel: Selection) -> BenchRows {
    let mut rows = BenchRows {
        name: p.spec.name.to_string(),
        fig3: sel.fig3.then(|| fig3(p)),
        fig4: sel.fig4.then(|| fig4(p)),
        fig5: sel.fig5.then(|| fig5(p)),
        fig6: sel.fig6.then(|| {
            eprintln!("  fig6: {}", p.spec.name);
            fig6(p)
        }),
        fig7: sel.fig7.then(|| fig7(p)),
        gat: sel.gat.then(|| gat(p)),
        pgo: sel.pgo.then(|| {
            eprintln!("  pgo: {}", p.spec.name);
            pgo(p)
        }),
        fleet: None,
        passes: sel.passes.then(|| passes(p)),
        scale: None,
        scaletime: None,
        sim_seconds: 0.0,
    };
    // Sampled after every figure above has run, so it covers the whole
    // benchmark's simulator time.
    rows.sim_seconds = p.sim_seconds();
    rows
}
