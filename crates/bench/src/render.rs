//! Text rendering of the reproduced figures, in the layout of the paper's
//! plots (per-benchmark rows plus the unweighted arithmetic mean the paper's
//! figure keys show).

use crate::figures::{Fig3Row, Fig4Row, Fig5Row, Fig6Row, Fig7Row, GatRow, PgoRow};

fn pct(v: f64) -> String {
    format!("{:5.1}", v * 100.0)
}

/// Renders Figure 3.
pub fn fig3(rows: &[(String, Fig3Row)]) -> String {
    let mut out = String::new();
    out.push_str("Figure 3: static fraction of address loads removed (%)\n");
    out.push_str("  (cv = converted to load-address, nu = nullified/deleted)\n\n");
    out.push_str(&format!(
        "{:10} | {:^11} | {:^11} | {:^11} | {:^11}\n",
        "", "each/simple", "each/full", "all/simple", "all/full"
    ));
    out.push_str(&format!(
        "{:10} | {:>5} {:>5} | {:>5} {:>5} | {:>5} {:>5} | {:>5} {:>5}\n",
        "benchmark", "cv", "nu", "cv", "nu", "cv", "nu", "cv", "nu"
    ));
    out.push_str(&"-".repeat(66));
    out.push('\n');
    let mut sums = [0.0f64; 8];
    for (name, r) in rows {
        let v = [
            r.each_simple.0,
            r.each_simple.1,
            r.each_full.0,
            r.each_full.1,
            r.all_simple.0,
            r.all_simple.1,
            r.all_full.0,
            r.all_full.1,
        ];
        for (s, x) in sums.iter_mut().zip(v) {
            *s += x;
        }
        out.push_str(&format!(
            "{:10} | {} {} | {} {} | {} {} | {} {}\n",
            name,
            pct(v[0]),
            pct(v[1]),
            pct(v[2]),
            pct(v[3]),
            pct(v[4]),
            pct(v[5]),
            pct(v[6]),
            pct(v[7])
        ));
    }
    let n = rows.len() as f64;
    out.push_str(&"-".repeat(66));
    out.push('\n');
    out.push_str(&format!(
        "{:10} | {} {} | {} {} | {} {} | {} {}\n",
        "MEAN",
        pct(sums[0] / n),
        pct(sums[1] / n),
        pct(sums[2] / n),
        pct(sums[3] / n),
        pct(sums[4] / n),
        pct(sums[5] / n),
        pct(sums[6] / n),
        pct(sums[7] / n)
    ));
    out
}

/// Renders Figure 4.
pub fn fig4(rows: &[(String, Fig4Row)]) -> String {
    let mut out = String::new();
    out.push_str("Figure 4: fraction of calls still requiring PV loads (top)\n");
    out.push_str("          and GP-reset code (bottom), %\n\n");
    for (title, pick) in [
        ("PV loads", 0usize),
        ("GP resets", 1usize),
    ] {
        out.push_str(&format!(
            "{title}:\n{:10} | {:^17} | {:^17}\n",
            "", "compile-each", "compile-all"
        ));
        out.push_str(&format!(
            "{:10} | {:>5} {:>5} {:>5} | {:>5} {:>5} {:>5}\n",
            "benchmark", "noOM", "simp", "full", "noOM", "simp", "full"
        ));
        out.push_str(&"-".repeat(50));
        out.push('\n');
        let mut sums = [0.0f64; 6];
        for (name, r) in rows {
            let m = if pick == 0 { r.pv } else { r.gp_reset };
            let v = [m[0][0], m[0][1], m[0][2], m[1][0], m[1][1], m[1][2]];
            for (s, x) in sums.iter_mut().zip(v) {
                *s += x;
            }
            out.push_str(&format!(
                "{:10} | {} {} {} | {} {} {}\n",
                name,
                pct(v[0]),
                pct(v[1]),
                pct(v[2]),
                pct(v[3]),
                pct(v[4]),
                pct(v[5])
            ));
        }
        let n = rows.len() as f64;
        out.push_str(&"-".repeat(50));
        out.push('\n');
        out.push_str(&format!(
            "{:10} | {} {} {} | {} {} {}\n\n",
            "MEAN",
            pct(sums[0] / n),
            pct(sums[1] / n),
            pct(sums[2] / n),
            pct(sums[3] / n),
            pct(sums[4] / n),
            pct(sums[5] / n)
        ));
    }
    out
}

/// Renders Figure 5.
pub fn fig5(rows: &[(String, Fig5Row)]) -> String {
    let mut out = String::new();
    out.push_str("Figure 5: static fraction of instructions nullified/deleted (%)\n\n");
    out.push_str(&format!(
        "{:10} | {:>11} {:>9} | {:>10} {:>8}\n",
        "benchmark", "each/simple", "each/full", "all/simple", "all/full"
    ));
    out.push_str(&"-".repeat(57));
    out.push('\n');
    let mut sums = [0.0f64; 4];
    for (name, r) in rows {
        let v = [r.each_simple, r.each_full, r.all_simple, r.all_full];
        for (s, x) in sums.iter_mut().zip(v) {
            *s += x;
        }
        out.push_str(&format!(
            "{:10} | {:>11} {:>9} | {:>10} {:>8}\n",
            name,
            pct(v[0]),
            pct(v[1]),
            pct(v[2]),
            pct(v[3])
        ));
    }
    let n = rows.len() as f64;
    out.push_str(&"-".repeat(57));
    out.push('\n');
    out.push_str(&format!(
        "{:10} | {:>11} {:>9} | {:>10} {:>8}\n",
        "MEAN",
        pct(sums[0] / n),
        pct(sums[1] / n),
        pct(sums[2] / n),
        pct(sums[3] / n)
    ));
    out
}

/// Renders Figure 6, including medians (the paper quotes both).
pub fn fig6(rows: &[(String, Fig6Row)]) -> String {
    let mut out = String::new();
    out.push_str("Figure 6: dynamic improvement over no link-time optimization (%)\n\n");
    out.push_str(&format!(
        "{:10} | {:^20} | {:^20}\n",
        "", "compile-each", "compile-all"
    ));
    out.push_str(&format!(
        "{:10} | {:>6} {:>6} {:>6} | {:>6} {:>6} {:>6}\n",
        "benchmark", "simp", "full", "sched", "simp", "full", "sched"
    ));
    out.push_str(&"-".repeat(58));
    out.push('\n');
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 6];
    for (name, r) in rows {
        let v = [
            r.improvement[0][0],
            r.improvement[0][1],
            r.improvement[0][2],
            r.improvement[1][0],
            r.improvement[1][1],
            r.improvement[1][2],
        ];
        for (c, x) in cols.iter_mut().zip(v) {
            c.push(x);
        }
        out.push_str(&format!(
            "{:10} | {:>6.2} {:>6.2} {:>6.2} | {:>6.2} {:>6.2} {:>6.2}\n",
            name, v[0], v[1], v[2], v[3], v[4], v[5]
        ));
    }
    out.push_str(&"-".repeat(58));
    out.push('\n');
    let mean = |c: &Vec<f64>| c.iter().sum::<f64>() / c.len() as f64;
    let median = |c: &Vec<f64>| {
        let mut s = c.clone();
        s.sort_by(f64::total_cmp);
        s[s.len() / 2]
    };
    out.push_str(&format!(
        "{:10} | {:>6.2} {:>6.2} {:>6.2} | {:>6.2} {:>6.2} {:>6.2}\n",
        "MEAN",
        mean(&cols[0]),
        mean(&cols[1]),
        mean(&cols[2]),
        mean(&cols[3]),
        mean(&cols[4]),
        mean(&cols[5])
    ));
    out.push_str(&format!(
        "{:10} | {:>6.2} {:>6.2} {:>6.2} | {:>6.2} {:>6.2} {:>6.2}\n",
        "MEDIAN",
        median(&cols[0]),
        median(&cols[1]),
        median(&cols[2]),
        median(&cols[3]),
        median(&cols[4]),
        median(&cols[5])
    ));
    out
}

/// Renders Figure 7.
pub fn fig7(rows: &[(String, Fig7Row)]) -> String {
    let mut out = String::new();
    out.push_str("Figure 7: build times in seconds\n\n");
    out.push_str(&format!(
        "{:10} | {:>8} {:>9} | {:>7} {:>7} {:>7} {:>8}\n",
        "benchmark", "std-link", "interproc", "OM-none", "OM-simp", "OM-full", "OM-sched"
    ));
    out.push_str(&"-".repeat(66));
    out.push('\n');
    for (name, r) in rows {
        out.push_str(&format!(
            "{:10} | {:>8.3} {:>9.3} | {:>7.3} {:>7.3} {:>7.3} {:>8.3}\n",
            name,
            r.standard_link,
            r.interproc_build,
            r.om_none,
            r.om_simple,
            r.om_full,
            r.om_full_sched
        ));
    }
    out
}

/// Renders the §5.1 GAT-reduction table.
pub fn gat(rows: &[(String, GatRow)]) -> String {
    let mut out = String::new();
    out.push_str("GAT reduction under OM-full (merged slots)\n\n");
    out.push_str(&format!(
        "{:10} | {:>7} {:>7} {:>6} | {:>7} {:>7} {:>6}\n",
        "benchmark", "each:in", "out", "ratio", "all:in", "out", "ratio"
    ));
    out.push_str(&"-".repeat(60));
    out.push('\n');
    for (name, r) in rows {
        out.push_str(&format!(
            "{:10} | {:>7} {:>7} {:>5.1}% | {:>7} {:>7} {:>5.1}%\n",
            name,
            r.each_before,
            r.each_after,
            100.0 * r.each_after as f64 / r.each_before.max(1) as f64,
            r.all_before,
            r.all_after,
            100.0 * r.all_after as f64 / r.all_before.max(1) as f64
        ));
    }
    out
}

/// Renders the profile-guided-layout comparison table.
pub fn pgo(rows: &[(String, PgoRow)]) -> String {
    let mut out = String::new();
    out.push_str("Profile-guided layout vs OM-full w/sched (cycles; + = PGO faster)\n\n");
    out.push_str(&format!(
        "{:10} | {:^28} | {:^28}\n",
        "", "compile-each", "compile-all"
    ));
    out.push_str(&format!(
        "{:10} | {:>10} {:>10} {:>6} | {:>10} {:>10} {:>6}\n",
        "benchmark", "sched", "pgo", "imp%", "sched", "pgo", "imp%"
    ));
    out.push_str(&"-".repeat(73));
    out.push('\n');
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 2];
    let mut wins = [0usize; 2];
    let mut ties = [0usize; 2];
    for (name, r) in rows {
        for mi in 0..2 {
            cols[mi].push(r.improvement[mi]);
            if r.pgo_cycles[mi] < r.sched_cycles[mi] {
                wins[mi] += 1;
            } else if r.pgo_cycles[mi] == r.sched_cycles[mi] {
                ties[mi] += 1;
            }
        }
        out.push_str(&format!(
            "{:10} | {:>10} {:>10} {:>6.2} | {:>10} {:>10} {:>6.2}\n",
            name,
            r.sched_cycles[0],
            r.pgo_cycles[0],
            r.improvement[0],
            r.sched_cycles[1],
            r.pgo_cycles[1],
            r.improvement[1]
        ));
    }
    out.push_str(&"-".repeat(73));
    out.push('\n');
    let mean = |c: &Vec<f64>| c.iter().sum::<f64>() / c.len() as f64;
    let median = |c: &Vec<f64>| {
        let mut s = c.clone();
        s.sort_by(f64::total_cmp);
        s[s.len() / 2]
    };
    out.push_str(&format!(
        "{:10} | {:>10} {:>10} {:>6.2} | {:>10} {:>10} {:>6.2}\n",
        "MEAN", "", "", mean(&cols[0]), "", "", mean(&cols[1])
    ));
    out.push_str(&format!(
        "{:10} | {:>10} {:>10} {:>6.2} | {:>10} {:>10} {:>6.2}\n",
        "MEDIAN", "", "", median(&cols[0]), "", "", median(&cols[1])
    ));
    let n = rows.len();
    out.push_str(&format!(
        "PGO no worse: each {}/{n} ({} faster, {} tied), all {}/{n} ({} faster, {} tied)\n",
        wins[0] + ties[0],
        wins[0],
        ties[0],
        wins[1] + ties[1],
        wins[1],
        ties[1]
    ));
    out
}

/// Renders the per-pass counter table (net deltas from one traced
/// OM-full-scheduled run per benchmark).
pub fn passes(rows: &[(String, crate::figures::PassesRow)]) -> String {
    use crate::figures::PASS_NAMES;
    use om_core::obs::DELTA_FIELDS;
    let col = |pass: &str, field: &str| {
        let pi = PASS_NAMES.iter().position(|p| *p == pass).unwrap();
        let fi = DELTA_FIELDS.iter().position(|(f, _)| *f == field).unwrap();
        (pi, fi)
    };
    let cols = [
        ("jsr>bsr", col("calls", "calls_jsr_to_bsr")),
        ("conv", col("convert", "addr_loads_converted")),
        ("null", col("convert", "addr_loads_nullified")),
        ("del", col("nullify", "insts_deleted")),
        ("unop", col("resched", "unops_inserted")),
    ];
    let mut out = String::new();
    out.push_str("Per-pass counter deltas (OM-full w/sched, compile-each; net, deterministic)\n\n");
    out.push_str(&format!("{:10} |", "benchmark"));
    for (h, _) in &cols {
        out.push_str(&format!(" {h:>7}"));
    }
    out.push_str(&format!(" | {:>6} {:>5}\n", "rounds", "recon"));
    out.push_str(&"-".repeat(12 + cols.len() * 8 + 16));
    out.push('\n');
    for (name, r) in rows {
        out.push_str(&format!("{name:10} |"));
        for &(_, (pi, fi)) in &cols {
            out.push_str(&format!(" {:>7}", r.deltas[pi][fi]));
        }
        out.push_str(&format!(
            " | {:>6} {:>5}\n",
            r.full_rounds,
            if r.reconciled { "ok" } else { "FAIL" }
        ));
    }
    out
}

/// Renders the CI-fleet relink table.
pub fn fleet(rows: &[(String, crate::fleet::FleetRow)]) -> String {
    let mut out = String::new();
    out.push_str("CI fleet: cached relinks after single-module edits (omd link server)\n\n");
    out.push_str(&format!(
        "{:10} | {:>4} {:>3} {:>4} | {:>6} {:>6} | {:>6} {:>8} {:>8} {:>8} | {:>5}\n",
        "benchmark", "req", "thr", "mods", "l.hit", "l.miss", "hit%", "p50us", "p99us", "req/s",
        "ident"
    ));
    out.push_str(&"-".repeat(86));
    out.push('\n');
    let mut rates = Vec::new();
    for (name, r) in rows {
        rates.push(r.hit_rate);
        out.push_str(&format!(
            "{:10} | {:>4} {:>3} {:>4} | {:>6} {:>6} | {:>6} {:>8} {:>8} {:>8.1} | {:>5}\n",
            name,
            r.requests,
            r.threads,
            r.modules,
            r.link_hits,
            r.link_misses,
            pct(r.hit_rate),
            r.p50_us,
            r.p99_us,
            r.rps,
            if r.byte_identical { "yes" } else { "NO" }
        ));
    }
    out.push_str(&"-".repeat(86));
    out.push('\n');
    if !rates.is_empty() {
        let mean = rates.iter().sum::<f64>() / rates.len() as f64;
        out.push_str(&format!(
            "{:10} | {:>4} {:>3} {:>4} | {:>6} {:>6} | {:>6}\n",
            "MEAN", "", "", "", "", "", pct(mean)
        ));
    }
    out
}

/// Renders the scaling-curve tables: deterministic geometry/oracle fields,
/// then the wall-clock link times when present.
pub fn scale(rows: &[(String, (crate::scale::ScaleRow, Option<crate::scale::ScaleTimeRow>))]) -> String {
    let mut out = String::new();
    out.push_str("Scaling curves: oracle-gated scale points (all variants verified)\n\n");
    out.push_str(&format!(
        "{:10} | {:>6} {:>7} | {:>8} {:>8} {:>5} {:>5} | {:>4} {:>6} | {:>5} {:>6} | {:>5}\n",
        "point", "mods", "procs", "gat.in", "slots", "gp.e", "gp.a", "vars", "hit%", "arch", "smpl",
        "ident"
    ));
    out.push_str(&"-".repeat(96));
    out.push('\n');
    for (name, (r, _)) in rows {
        out.push_str(&format!(
            "{:10} | {:>6} {:>7} | {:>8} {:>8} {:>5} {:>5} | {:>4} {:>6} | {:>2}/{:>2} {:>6} | {:>5}\n",
            name,
            r.n,
            r.procs,
            r.gat_entries_input,
            r.gat_slots,
            r.gp_groups_each,
            r.gp_groups_all,
            r.verified_variants,
            pct(r.edit_hit_rate),
            r.archive_members_live,
            r.archive_members_total,
            if r.sampled_exact { "exact" } else { "DRIFT" },
            if r.shared_identical { "yes" } else { "NO" }
        ));
    }
    let timed: Vec<(&String, &crate::scale::ScaleTimeRow)> =
        rows.iter().filter_map(|(n, (_, t))| t.as_ref().map(|t| (n, t))).collect();
    if !timed.is_empty() {
        out.push_str("\nLink-time scaling (seconds; wall-clock, report-only)\n\n");
        out.push_str(&format!(
            "{:10} | {:>9} {:>9} | {:>11} {:>11}\n",
            "point", "std-link", "OM-sched", "relink-cold", "relink-edit"
        ));
        out.push_str(&"-".repeat(58));
        out.push('\n');
        for (name, t) in timed {
            out.push_str(&format!(
                "{:10} | {:>9.3} {:>9.3} | {:>11.3} {:>11.3}\n",
                name, t.standard_link, t.om_full_sched, t.relink_cold, t.relink_edit
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_render_and_average() {
        let rows = vec![
            (
                "a".to_string(),
                Fig5Row { each_simple: 0.06, each_full: 0.11, all_simple: 0.05, all_full: 0.10 },
            ),
            (
                "b".to_string(),
                Fig5Row { each_simple: 0.08, each_full: 0.13, all_simple: 0.07, all_full: 0.12 },
            ),
        ];
        let t = fig5(&rows);
        assert!(t.contains("MEAN"));
        assert!(t.contains("7.0"), "{t}"); // mean of 6% and 8%
    }

    #[test]
    fn pgo_table_counts_wins() {
        let rows = vec![
            (
                "a".to_string(),
                PgoRow {
                    sched_cycles: [1000, 2000],
                    pgo_cycles: [900, 2000],
                    improvement: [11.11, 0.0],
                    procs_moved: [3, 0],
                    targets: [(2, 1), (4, 0)],
                },
            ),
            (
                "b".to_string(),
                PgoRow {
                    sched_cycles: [500, 600],
                    pgo_cycles: [510, 580],
                    improvement: [-1.96, 3.45],
                    procs_moved: [1, 2],
                    targets: [(1, 1), (1, 2)],
                },
            ),
        ];
        let t = pgo(&rows);
        assert!(t.contains("each 1/2 (1 faster, 0 tied)"), "{t}");
        assert!(t.contains("all 2/2 (1 faster, 1 tied)"), "{t}");
        assert!(t.contains("MEDIAN"), "{t}");
    }

    #[test]
    fn fig6_median_is_robust() {
        let mk = |v: f64| Fig6Row { improvement: [[v; 3]; 2], base_cycles: [1, 1] };
        let rows = vec![
            ("a".into(), mk(1.0)),
            ("b".into(), mk(2.0)),
            ("c".into(), mk(50.0)),
        ];
        let t = fig6(&rows);
        assert!(t.contains("MEDIAN"));
        assert!(t.lines().last().unwrap().contains("2.00"), "{t}");
    }
}
