//! `omkill` — mutation testing of the repo's safety nets.
//!
//! The harness builds a deterministic corpus of *mutants* — faulty versions
//! of otherwise-correct linked programs — and measures which oracle kills
//! each one:
//!
//! * **verify** — `om_core::verify` (structural invariants, statistics
//!   accounting, and the linked-image relocation re-check), plus the
//!   pipeline's own hard errors;
//! * **checksum** — simulating the mutant image (on the block-cache engine,
//!   the same one the benchmark harness uses) and comparing against the
//!   *clean* build's simulated checksum (the golden-diff net);
//! * **interp** — comparing against the mini-C interpreter's reference,
//!   which never touches the object-code pipeline (the differential net).
//!
//! Mutants come in two layers. **Image mutants** corrupt a correctly linked
//! image post-hoc (classes prefixed `img-`): the artifacts of the clean link
//! ([`om_core::Emitted`]) are kept so the verifier can re-check the corrupt
//! image against the unchanged modules and layout. **Pass-fault mutants**
//! (classes prefixed `fault-`) re-run the pipeline with a
//! [`FaultPlan`] armed, making the optimizer itself emit wrong code
//! mid-pass — all downstream bookkeeping is consistent with the lie, which
//! is exactly what makes this layer harder to catch.
//!
//! Everything is deterministic: programs come from fixed `omfuzz` seeds,
//! candidate sites are enumerated in module/offset order, and the scorecard
//! is byte-identical at any `--jobs` width. A committed baseline
//! (`MUTANTS_baseline.json`) records the expected kill matrix; `scripts/ci.sh`
//! fails if a previously-killed class escapes or the kill rate drops.

use crate::fuzz::{self, FuzzConfig, INTERP_STEPS};
use om_alpha::{decode, encode, Inst, MemOp, Reg};
use om_core::{
    optimize_and_link_artifacts, Emitted, FaultKind, FaultPlan, OmLevel, OmOptions, OmOutput,
    Profile,
};
use om_objfile::{Archive, Module, RelocKind, SecId};
use om_sim::{run_covered_fast, run_fast, run_profiled_fast, Divergence, RunResult};
use std::collections::HashSet;
use om_workloads::stdlib::STDLIB_SOURCES;
use om_workloads::stdlib_libs;
use std::fmt::Write as _;

/// The corpus programs: `omfuzz` seeds curated (empirically, over seeds
/// 0..30) so that every class has live candidate sites somewhere in the
/// corpus *and* every candidate site is hot — a fault planted in cold code
/// is an equivalent mutant no oracle can kill, and belongs out of the
/// corpus, not in the escape column.
pub const DEFAULT_SEEDS: &[u64] = &[3, 24, 25, 29];

/// Candidate sites tried per (program, class).
pub const SITES_PER_CLASS: usize = 2;

/// Post-hoc corruption classes applied to a clean linked image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImageClass {
    /// +1 word on the displacement of a branch carrying a `BrAddr` reloc
    /// (a cross-procedure BSR): the patched bits no longer agree with the
    /// relocation.
    BranchExt,
    /// +1 word on an *executed* local branch (no relocation): structurally
    /// invisible, caught only by execution.
    BranchLocal,
    /// Swap the contents of two adjacent GAT slots holding different
    /// addresses.
    GatSwap,
    /// Truncate a GAT slot's 64-bit address to its low 16 bits.
    GatTrunc,
    /// +8 on the `lda` half of a GPDISP pair: GP is established 8 bytes off.
    GpdispSkew,
    /// Replace a no-op (alignment UNOP or nullification residue) with
    /// `lda sp, 8(sp)`: decodable, relocation-free, but skews the stack.
    NopClobber,
    /// Write a nonzero word into inter-module alignment padding: never
    /// executed, so only the verifier's padding sweep can object.
    PadDirty,
    /// Move the image entry point 4 bytes forward, skipping `__start`'s
    /// first instruction. Still in `.text` and aligned, so structurally
    /// clean.
    EntrySkip,
    /// +16 on a `RefQuad` data quad (a stored procedure address): indirect
    /// calls through it land mid-procedure.
    DataQuad,
}

impl ImageClass {
    pub const ALL: [ImageClass; 9] = [
        ImageClass::BranchExt,
        ImageClass::BranchLocal,
        ImageClass::GatSwap,
        ImageClass::GatTrunc,
        ImageClass::GpdispSkew,
        ImageClass::NopClobber,
        ImageClass::PadDirty,
        ImageClass::EntrySkip,
        ImageClass::DataQuad,
    ];

    /// Stable scorecard name.
    pub fn name(self) -> &'static str {
        match self {
            ImageClass::BranchExt => "img-branch-ext",
            ImageClass::BranchLocal => "img-branch-local",
            ImageClass::GatSwap => "img-gat-swap",
            ImageClass::GatTrunc => "img-gat-trunc",
            ImageClass::GpdispSkew => "img-gpdisp-skew",
            ImageClass::NopClobber => "img-nop-clobber",
            ImageClass::PadDirty => "img-pad-dirty",
            ImageClass::EntrySkip => "img-entry-skip",
            ImageClass::DataQuad => "img-data-quad",
        }
    }
}

/// One mutant class: an image corruption or an armed pass fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutantClass {
    Image(ImageClass),
    Fault(FaultKind),
}

impl MutantClass {
    /// Every class, image layer first, in stable scorecard order.
    pub fn all() -> Vec<MutantClass> {
        let mut v: Vec<MutantClass> = ImageClass::ALL.iter().map(|&c| MutantClass::Image(c)).collect();
        v.extend(FaultKind::ALL.iter().map(|&k| MutantClass::Fault(k)));
        v
    }

    pub fn name(self) -> &'static str {
        match self {
            MutantClass::Image(c) => c.name(),
            MutantClass::Fault(k) => k.name(),
        }
    }
}

/// One planned mutant: a class applied at its `site`-th candidate in the
/// program generated by `seed`.
#[derive(Debug, Clone, Copy)]
pub struct MutantSpec {
    pub seed: u64,
    pub class: MutantClass,
    pub site: usize,
}

/// The deterministic corpus, round-robin across classes (site-major), so a
/// `--mutants N` budget cap still touches every class before deepening any.
pub fn corpus(seeds: &[u64], sites: usize) -> Vec<MutantSpec> {
    let mut v = Vec::new();
    for site in 0..sites {
        for class in MutantClass::all() {
            for &seed in seeds {
                v.push(MutantSpec { seed, class, site });
            }
        }
    }
    v
}

/// A corpus program built cleanly once; every mutant of it reuses these
/// artifacts.
pub struct CleanBuild {
    pub seed: u64,
    pub objects: Vec<Module>,
    pub libs: std::sync::Arc<[Archive]>,
    /// The mini-C interpreter's checksum (never touches the pipeline).
    pub reference: i64,
    pub output: OmOutput,
    pub emitted: Emitted,
    /// The clean image's simulated run (checksum equals `reference`).
    pub clean: RunResult,
    /// Execution profile of the clean image, for the PGO-layer fault class.
    pub profile: Profile,
    /// Text addresses the clean run actually executed. Image classes whose
    /// corruption is structurally invisible (`img-branch-local`,
    /// `img-nop-clobber`) restrict their candidates to executed words, so
    /// a mutant is never planted in provably-cold code.
    pub executed: HashSet<u64>,
}

impl CleanBuild {
    /// Mutant simulation budget: generous headroom over the clean run, so
    /// a runaway mutant is classified as a hang instead of spinning.
    pub fn sim_budget(&self) -> u64 {
        self.clean.insts * 4 + 1_000_000
    }
}

/// Builds the clean pipeline artifacts for one corpus seed.
///
/// # Errors
///
/// Any failure here means the seed is unusable as a corpus program (the
/// clean build must link, verify, and reproduce the interpreter's checksum).
pub fn build_clean(seed: u64) -> Result<CleanBuild, String> {
    let prog = fuzz::generate(seed, &FuzzConfig::default());
    let sources = fuzz::render(&prog);
    let mut all: Vec<(String, String)> = sources.clone();
    for (n, s) in STDLIB_SOURCES {
        all.push((n.to_string(), s.to_string()));
    }
    let refs: Vec<(&str, &str)> = all.iter().map(|(n, s)| (n.as_str(), s.as_str())).collect();
    let reference = om_minic::interp::run_sources(&refs, INTERP_STEPS)
        .map_err(|e| format!("seed {seed}: interpreter: {e}"))?;

    let copts = om_codegen::CompileOpts::o2();
    let mut objects =
        vec![om_codegen::crt0::module().map_err(|e| format!("seed {seed}: crt0: {e}"))?];
    for (n, s) in &sources {
        objects.push(
            om_codegen::compile_source(n, s, &copts)
                .map_err(|e| format!("seed {seed}: compile {n}: {e}"))?,
        );
    }
    let libs = stdlib_libs().map_err(|e| format!("seed {seed}: stdlib: {e}"))?;

    let opts = OmOptions { verify: true, ..OmOptions::default() };
    let (output, emitted) =
        optimize_and_link_artifacts(&objects, &libs, OmLevel::FullSched, &opts)
            .map_err(|e| format!("seed {seed}: clean link: {e}"))?;
    let clean = run_fast(&output.image, fuzz::SIM_STEPS)
        .map_err(|e| format!("seed {seed}: clean run: {e}"))?;
    if clean.result != reference {
        return Err(format!(
            "seed {seed}: clean image checksum {} != interpreter {reference} — not a usable corpus program",
            clean.result
        ));
    }
    let (_, profile) = run_profiled_fast(&output.image, fuzz::SIM_STEPS)
        .map_err(|e| format!("seed {seed}: profiling run: {e}"))?;
    let (_, executed) = run_covered_fast(&output.image, fuzz::SIM_STEPS)
        .map_err(|e| format!("seed {seed}: coverage run: {e}"))?;
    Ok(CleanBuild { seed, objects, libs, reference, output, emitted, clean, profile, executed })
}

/// One executed mutant and the oracles that killed it.
#[derive(Debug, Clone)]
pub struct MutantRecord {
    pub class: &'static str,
    pub seed: u64,
    pub site: usize,
    /// Killed by `om_core::verify` (or a hard pipeline error).
    pub verify: bool,
    /// Killed by diffing the simulated run against the clean image's run.
    pub checksum: bool,
    /// Killed by diffing against the mini-C interpreter's reference.
    pub interp: bool,
    pub detail: String,
}

impl MutantRecord {
    pub fn killed(&self) -> bool {
        self.verify || self.checksum || self.interp
    }
}

// ---------------------------------------------------------------------------
// Image mutators
// ---------------------------------------------------------------------------

fn read_word(image: &om_linker::Image, addr: u64) -> Option<u32> {
    let s = image.segments.iter().find(|s| s.contains(addr))?;
    let off = (addr - s.base) as usize;
    Some(u32::from_le_bytes(s.bytes[off..off + 4].try_into().ok()?))
}

fn write_word(image: &mut om_linker::Image, addr: u64, word: u32) {
    let s = image.segments.iter_mut().find(|s| s.contains(addr)).expect("mutating unmapped word");
    let off = (addr - s.base) as usize;
    s.bytes[off..off + 4].copy_from_slice(&word.to_le_bytes());
}

fn read_quad(image: &om_linker::Image, addr: u64) -> Option<u64> {
    let s = image.segments.iter().find(|s| s.contains(addr))?;
    let off = (addr - s.base) as usize;
    Some(u64::from_le_bytes(s.bytes[off..off + 8].try_into().ok()?))
}

fn write_quad(image: &mut om_linker::Image, addr: u64, quad: u64) {
    let s = image.segments.iter_mut().find(|s| s.contains(addr)).expect("mutating unmapped quad");
    let off = (addr - s.base) as usize;
    s.bytes[off..off + 8].copy_from_slice(&quad.to_le_bytes());
}

/// Applies image class `class` at its `site`-th candidate. `None` when the
/// program has fewer candidates than `site` (the spec is skipped, keeping
/// site numbering deterministic).
pub fn mutate_image(
    build: &CleanBuild,
    class: ImageClass,
    site: usize,
) -> Option<(om_linker::Image, String)> {
    let em = &build.emitted;
    let layout = &em.layout;
    let mut image = build.output.image.clone();
    match class {
        ImageClass::BranchExt => {
            let mut n = 0;
            for (mi, m) in em.modules.iter().enumerate() {
                for rel in &m.relocs {
                    if rel.sec == SecId::Text && matches!(rel.kind, RelocKind::BrAddr { .. }) {
                        if n == site {
                            let addr = layout.bases[mi].text + rel.offset;
                            let w = read_word(&image, addr)?;
                            write_word(&mut image, addr, (w & 0xFFE0_0000) | (w.wrapping_add(1) & 0x1F_FFFF));
                            return Some((image, format!("branch at {addr:#x}: disp +1 word")));
                        }
                        n += 1;
                    }
                }
            }
            None
        }
        ImageClass::BranchLocal => {
            let mut n = 0;
            for (mi, m) in em.modules.iter().enumerate() {
                let reloc_offs: HashSet<u64> = m
                    .relocs
                    .iter()
                    .filter(|r| r.sec == SecId::Text)
                    .map(|r| r.offset)
                    .collect();
                for off in (0..m.text.len() as u64).step_by(4) {
                    if reloc_offs.contains(&off) {
                        continue;
                    }
                    let addr = layout.bases[mi].text + off;
                    if !build.executed.contains(&addr) {
                        continue;
                    }
                    let w = read_word(&image, addr)?;
                    if matches!(decode(w), Ok(Inst::Br { .. })) {
                        if n == site {
                            write_word(&mut image, addr, (w & 0xFFE0_0000) | (w.wrapping_add(1) & 0x1F_FFFF));
                            return Some((image, format!("local branch at {addr:#x}: disp +1 word")));
                        }
                        n += 1;
                    }
                }
            }
            None
        }
        ImageClass::GatSwap => {
            let mut n = 0;
            for w in layout.slots.windows(2) {
                let (a, b) = (w[0].0, w[1].0);
                let (qa, qb) = (read_quad(&image, a)?, read_quad(&image, b)?);
                if qa != qb {
                    if n == site {
                        write_quad(&mut image, a, qb);
                        write_quad(&mut image, b, qa);
                        return Some((image, format!("GAT slots {a:#x}/{b:#x} swapped")));
                    }
                    n += 1;
                }
            }
            None
        }
        ImageClass::GatTrunc => {
            let mut n = 0;
            for &(addr, _, _) in &layout.slots {
                let q = read_quad(&image, addr)?;
                if q > 0xFFFF {
                    if n == site {
                        write_quad(&mut image, addr, q & 0xFFFF);
                        return Some((image, format!("GAT slot {addr:#x} truncated to 16 bits")));
                    }
                    n += 1;
                }
            }
            None
        }
        ImageClass::GpdispSkew => {
            let mut n = 0;
            for (mi, m) in em.modules.iter().enumerate() {
                for rel in &m.relocs {
                    if rel.sec == SecId::Text {
                        if let RelocKind::Gpdisp { pair_offset, .. } = rel.kind {
                            if n == site {
                                let lo = rel.offset as i64 + pair_offset;
                                let addr = layout.bases[mi].text + lo as u64;
                                let w = read_word(&image, addr)?;
                                let d = (w & 0xFFFF) as u16 as i16;
                                let skewed = d.wrapping_add(8) as u16 as u32;
                                write_word(&mut image, addr, (w & 0xFFFF_0000) | skewed);
                                return Some((image, format!("GPDISP lda at {addr:#x}: disp +8")));
                            }
                            n += 1;
                        }
                    }
                }
            }
            None
        }
        ImageClass::NopClobber => {
            // Restricted to *executed* no-ops so the clobber is on a live
            // path, not in a cold library member.
            let mut n = 0;
            for (mi, m) in em.modules.iter().enumerate() {
                for off in (0..m.text.len() as u64).step_by(4) {
                    let addr = layout.bases[mi].text + off;
                    if !build.executed.contains(&addr) {
                        continue;
                    }
                    let w = read_word(&image, addr)?;
                    if decode(w).is_ok_and(|i| i.is_nop()) {
                        if n == site {
                            let skew = encode(Inst::Mem { op: MemOp::Lda, ra: Reg::SP, rb: Reg::SP, disp: 8 });
                            write_word(&mut image, addr, skew);
                            return Some((image, format!("no-op at {addr:#x} -> lda sp, 8(sp)")));
                        }
                        n += 1;
                    }
                }
            }
            None
        }
        ImageClass::PadDirty => {
            let t = layout.info.text;
            let mut covered = vec![false; (t.size / 4) as usize];
            for (mi, m) in em.modules.iter().enumerate() {
                let start = (layout.bases[mi].text - t.base) / 4;
                for w in start..start + (m.text.len() as u64 / 4) {
                    if let Some(c) = covered.get_mut(w as usize) {
                        *c = true;
                    }
                }
            }
            let mut n = 0;
            for (k, c) in covered.iter().enumerate() {
                if !c {
                    if n == site {
                        let addr = t.base + 4 * k as u64;
                        write_word(&mut image, addr, 0x0000_0013);
                        return Some((image, format!("padding word at {addr:#x} dirtied")));
                    }
                    n += 1;
                }
            }
            None
        }
        ImageClass::EntrySkip => {
            if site > 0 {
                return None;
            }
            image.entry += 4;
            let what = format!("entry moved to {:#x} (+4)", image.entry);
            Some((image, what))
        }
        ImageClass::DataQuad => {
            let mut n = 0;
            for (mi, m) in em.modules.iter().enumerate() {
                for rel in &m.relocs {
                    if let (sec @ (SecId::Data | SecId::Sdata), RelocKind::RefQuad { .. }) =
                        (rel.sec, &rel.kind)
                    {
                        if n == site {
                            let base = if sec == SecId::Data {
                                layout.bases[mi].data
                            } else {
                                layout.bases[mi].sdata
                            };
                            let addr = base + rel.offset;
                            let q = read_quad(&image, addr)?;
                            write_quad(&mut image, addr, q.wrapping_add(16));
                            return Some((image, format!("data quad at {addr:#x}: +16")));
                        }
                        n += 1;
                    }
                }
            }
            None
        }
    }
}

// ---------------------------------------------------------------------------
// Mutant execution
// ---------------------------------------------------------------------------

/// Runs one mutant spec against every oracle. `None` when the spec has no
/// candidate site in this program (or, for pass faults, the plan never
/// fired), so the mutant is inert and excluded from the scorecard.
pub fn run_mutant(build: &CleanBuild, spec: &MutantSpec) -> Option<MutantRecord> {
    match spec.class {
        MutantClass::Image(class) => {
            let (image, what) = mutate_image(build, class, spec.site)?;
            if image == build.output.image && image.entry == build.output.image.entry {
                return None; // the patch was a no-op; inert
            }
            let report = om_core::verify::verify_linked(
                &build.emitted.modules,
                &build.emitted.symtab,
                &build.emitted.layout,
                &image,
            );
            let verify = !report.is_ok();
            let run = run_fast(&image, build.sim_budget());
            let vs_clean = Divergence::classify(&run, build.clean.result);
            let vs_interp = Divergence::classify(&run, build.reference);
            let mut detail = what;
            if verify {
                let first = report.violations.first().cloned().unwrap_or_default();
                let _ = write!(detail, "; verify: {first}");
            }
            if vs_clean.diverged() {
                let _ = write!(detail, "; run: {vs_clean}");
            }
            Some(MutantRecord {
                class: class.name(),
                seed: spec.seed,
                site: spec.site,
                verify,
                checksum: vs_clean.diverged(),
                interp: vs_interp.diverged(),
                detail,
            })
        }
        MutantClass::Fault(kind) => run_fault_mutant(build, kind, spec.site),
    }
}

fn fault_options(build: &CleanBuild, kind: FaultKind, plan: FaultPlan, verify: bool) -> OmOptions {
    OmOptions {
        verify,
        fault: Some(plan),
        // The PGO-layer fault only exists under profile-guided layout; the
        // other kinds run the plain scheduled pipeline.
        profile: (kind == FaultKind::EntryPad).then(|| build.profile.clone()),
        ..OmOptions::default()
    }
}

fn run_fault_mutant(build: &CleanBuild, kind: FaultKind, site: usize) -> Option<MutantRecord> {
    // Run 1, verification off: would the miscompiled image ship, and do the
    // runtime oracles catch it?
    let plan = FaultPlan::new(kind, site);
    let opts = fault_options(build, kind, plan.clone(), false);
    let linked = optimize_and_link_artifacts(&build.objects, &build.libs, OmLevel::FullSched, &opts);
    if !plan.fired() {
        return None; // site beyond the program's candidate count; inert
    }
    let (mut verify, mut checksum, mut interp) = (false, false, false);
    let mut detail = format!("{} at site {site}", kind.name());
    match &linked {
        Ok((out, _)) => {
            let run = run_fast(&out.image, build.sim_budget());
            let vs_clean = Divergence::classify(&run, build.clean.result);
            let vs_interp = Divergence::classify(&run, build.reference);
            checksum = vs_clean.diverged();
            interp = vs_interp.diverged();
            if vs_clean.diverged() {
                let _ = write!(detail, "; run: {vs_clean}");
            }
        }
        Err(e) => {
            // The pipeline refused to link even without the verifier: its
            // own strictness is part of the structural net.
            verify = true;
            let _ = write!(detail, "; pipeline: {e}");
        }
    }

    // Run 2, verification on: does the structural net catch it before the
    // image ever exists?
    if !verify {
        let plan2 = FaultPlan::new(kind, site);
        let vopts = fault_options(build, kind, plan2, true);
        match optimize_and_link_artifacts(&build.objects, &build.libs, OmLevel::FullSched, &vopts) {
            Ok(_) => {}
            Err(e) => {
                verify = true;
                let msg = e.to_string();
                let _ = write!(detail, "; verify: {}", msg.lines().next().unwrap_or(""));
            }
        }
    }
    Some(MutantRecord { class: kind.name(), seed: build.seed, site, verify, checksum, interp, detail })
}

// ---------------------------------------------------------------------------
// Campaign driver
// ---------------------------------------------------------------------------

/// Builds the corpus programs and runs every spec (bounded by `max_mutants`
/// *executed* mutants; inert specs do not count) on `jobs` workers.
///
/// # Errors
///
/// Fails if any corpus seed cannot be built cleanly.
pub fn run_campaign(
    seeds: &[u64],
    sites: usize,
    max_mutants: usize,
    jobs: usize,
) -> Result<Vec<MutantRecord>, String> {
    let builds: Vec<CleanBuild> = crate::par::parallel_map(jobs, seeds, |&s| build_clean(s))
        .into_iter()
        .collect::<Result<_, _>>()?;
    let build_of = |seed: u64| builds.iter().find(|b| b.seed == seed).expect("corpus seed");
    let specs = corpus(seeds, sites);
    let results = crate::par::parallel_map(jobs, &specs, |spec| run_mutant(build_of(spec.seed), spec));
    Ok(results.into_iter().flatten().take(max_mutants).collect())
}

// ---------------------------------------------------------------------------
// Scorecard
// ---------------------------------------------------------------------------

/// Per-class kill tally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassScore {
    pub class: String,
    pub total: usize,
    pub verify: usize,
    pub checksum: usize,
    pub interp: usize,
    pub escaped: usize,
}

/// The whole campaign's result.
#[derive(Debug, Clone)]
pub struct Scorecard {
    pub mutants: usize,
    pub killed: usize,
    pub escaped: usize,
    pub classes: Vec<ClassScore>,
    pub rows: Vec<MutantRecord>,
}

/// Tallies records into a scorecard (classes sorted by name).
pub fn scorecard(rows: Vec<MutantRecord>) -> Scorecard {
    let mut classes: Vec<ClassScore> = Vec::new();
    for r in &rows {
        let c = match classes.iter_mut().find(|c| c.class == r.class) {
            Some(c) => c,
            None => {
                classes.push(ClassScore {
                    class: r.class.to_string(),
                    total: 0,
                    verify: 0,
                    checksum: 0,
                    interp: 0,
                    escaped: 0,
                });
                classes.last_mut().expect("just pushed")
            }
        };
        c.total += 1;
        c.verify += usize::from(r.verify);
        c.checksum += usize::from(r.checksum);
        c.interp += usize::from(r.interp);
        c.escaped += usize::from(!r.killed());
    }
    classes.sort_by(|a, b| a.class.cmp(&b.class));
    let killed = rows.iter().filter(|r| r.killed()).count();
    Scorecard { mutants: rows.len(), killed, escaped: rows.len() - killed, classes, rows }
}

fn jstr(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders the scorecard as line-oriented JSON (same idiom as
/// [`crate::json`]: one object per line, grep/diff-able, no serde).
pub fn render_json(card: &Scorecard) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"omkill/v1\",");
    let _ = writeln!(out, "  \"mutants\": {},", card.mutants);
    let _ = writeln!(out, "  \"killed\": {},", card.killed);
    let _ = writeln!(out, "  \"escaped\": {},", card.escaped);
    out.push_str("  \"classes\": [\n");
    for (i, c) in card.classes.iter().enumerate() {
        let sep = if i + 1 < card.classes.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"kind\":\"class\",\"class\":{},\"total\":{},\"verify\":{},\"checksum\":{},\"interp\":{},\"escaped\":{}}}{sep}",
            jstr(&c.class), c.total, c.verify, c.checksum, c.interp, c.escaped
        );
    }
    out.push_str("  ],\n  \"rows\": [\n");
    for (i, r) in card.rows.iter().enumerate() {
        let sep = if i + 1 < card.rows.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"kind\":\"mutant\",\"class\":{},\"seed\":{},\"site\":{},\"verify\":{},\"checksum\":{},\"interp\":{},\"detail\":{}}}{sep}",
            jstr(r.class), r.seed, r.site, r.verify, r.checksum, r.interp, jstr(&r.detail)
        );
    }
    out.push_str("  ]\n}\n");
    out
}

// ---------------------------------------------------------------------------
// Baseline comparison (the CI gate)
// ---------------------------------------------------------------------------

/// The committed expectations a new run is gated against.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    pub mutants: usize,
    pub killed: usize,
    /// `(class, total, escaped)` per class line.
    pub classes: Vec<(String, usize, usize)>,
}

fn field_usize(line: &str, key: &str) -> Option<usize> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let rest = line[at..].trim_start();
    let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let at = line.find(&pat)? + pat.len();
    let end = line[at..].find('"')?;
    Some(&line[at..at + end])
}

/// Parses a baseline produced by [`render_json`] (line-oriented; tolerant of
/// the surrounding skeleton).
///
/// # Errors
///
/// Returns a message when the summary counters or class lines are missing.
pub fn parse_baseline(text: &str) -> Result<Baseline, String> {
    let mut base = Baseline::default();
    let mut have_mutants = false;
    for line in text.lines() {
        let t = line.trim();
        if t.starts_with("\"mutants\":") {
            base.mutants = field_usize(t, "mutants").ok_or("bad \"mutants\" line")?;
            have_mutants = true;
        } else if t.starts_with("\"killed\":") {
            base.killed = field_usize(t, "killed").ok_or("bad \"killed\" line")?;
        } else if t.contains("\"kind\":\"class\"") {
            let class = field_str(t, "class").ok_or("class line without a name")?.to_string();
            let total = field_usize(t, "total").ok_or("class line without a total")?;
            let escaped = field_usize(t, "escaped").ok_or("class line without escapes")?;
            base.classes.push((class, total, escaped));
        }
    }
    if !have_mutants || base.classes.is_empty() {
        return Err("not an omkill scorecard (no mutant count or class lines)".into());
    }
    Ok(base)
}

/// Compares a fresh scorecard against the committed baseline. Returns the
/// list of regressions (empty = gate passes):
///
/// * a class that had zero escapes in the baseline now escapes (or vanished
///   from the run entirely);
/// * the overall kill rate dropped below the baseline's.
pub fn check_against(card: &Scorecard, base: &Baseline) -> Vec<String> {
    let mut bad = Vec::new();
    for (class, _, base_escaped) in &base.classes {
        if *base_escaped > 0 {
            continue; // was never fully killed; no gate on it
        }
        match card.classes.iter().find(|c| &c.class == class) {
            None => bad.push(format!("class {class} missing from this run (baseline had it fully killed)")),
            Some(c) if c.escaped > 0 => bad.push(format!(
                "class {class}: {} of {} mutants escaped (baseline: 0 escapes)",
                c.escaped, c.total
            )),
            Some(_) => {}
        }
    }
    // killed/mutants >= base.killed/base.mutants, compared exactly.
    if card.mutants > 0
        && base.mutants > 0
        && card.killed * base.mutants < base.killed * card.mutants
    {
        bad.push(format!(
            "kill rate dropped: {}/{} vs baseline {}/{}",
            card.killed, card.mutants, base.killed, base.mutants
        ));
    }
    bad
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(class: &'static str, verify: bool, checksum: bool) -> MutantRecord {
        MutantRecord {
            class,
            seed: 1,
            site: 0,
            verify,
            checksum,
            interp: checksum,
            detail: String::new(),
        }
    }

    #[test]
    fn corpus_is_round_robin_by_class() {
        let specs = corpus(&[1, 2], 2);
        let n_classes = MutantClass::all().len();
        assert_eq!(specs.len(), 2 * n_classes * 2);
        // The first 2*n_classes specs cover every class at site 0.
        let first: std::collections::HashSet<&str> =
            specs[..2 * n_classes].iter().map(|s| s.class.name()).collect();
        assert_eq!(first.len(), n_classes);
        assert!(specs[..2 * n_classes].iter().all(|s| s.site == 0));
    }

    #[test]
    fn scorecard_tallies_and_sorts() {
        let card = scorecard(vec![
            record("img-b", true, false),
            record("img-a", false, true),
            record("img-b", false, false), // escape
        ]);
        assert_eq!(card.mutants, 3);
        assert_eq!(card.killed, 2);
        assert_eq!(card.escaped, 1);
        assert_eq!(card.classes.len(), 2);
        assert_eq!(card.classes[0].class, "img-a");
        assert_eq!(card.classes[1].escaped, 1);
    }

    #[test]
    fn baseline_roundtrips_through_json() {
        let card = scorecard(vec![record("img-a", false, true), record("img-b", true, false)]);
        let text = render_json(&card);
        let base = parse_baseline(&text).unwrap();
        assert_eq!(base.mutants, 2);
        assert_eq!(base.killed, 2);
        assert_eq!(
            base.classes,
            vec![("img-a".to_string(), 1, 0), ("img-b".to_string(), 1, 0)]
        );
    }

    #[test]
    fn gate_catches_new_escape_and_rate_drop() {
        let good = scorecard(vec![record("img-a", false, true), record("img-b", true, false)]);
        let base = parse_baseline(&render_json(&good)).unwrap();
        assert!(check_against(&good, &base).is_empty());

        let escaped = scorecard(vec![record("img-a", false, false), record("img-b", true, false)]);
        let bad = check_against(&escaped, &base);
        assert_eq!(bad.len(), 2, "{bad:?}"); // class escape + rate drop
        assert!(bad[0].contains("img-a"));

        let missing = scorecard(vec![record("img-b", true, false)]);
        let bad = check_against(&missing, &base);
        assert!(bad.iter().any(|m| m.contains("missing")), "{bad:?}");
    }

    #[test]
    fn detail_strings_are_json_escaped() {
        let mut r = record("img-a", true, false);
        r.detail = "say \"hi\"\\\nnewline".into();
        let text = render_json(&scorecard(vec![r]));
        assert!(text.contains("say \\\"hi\\\"\\\\\\nnewline"), "{text}");
        let parsed = parse_baseline(&text).unwrap();
        assert_eq!(parsed.classes.len(), 1);
    }
}
