//! A minimal scoped worker pool (std-only — the registry is offline, so no
//! rayon). Work is handed out by an atomic cursor and results are reordered
//! to input order, so the output of a parallel run is byte-identical to the
//! sequential one regardless of scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The machine's available parallelism (the `--jobs` default).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Applies `f` to every item on up to `jobs` worker threads and returns the
/// results in input order. `jobs <= 1` runs inline with no threads at all,
/// so `--jobs 1` is exactly the sequential harness.
///
/// # Panics
///
/// A panic in `f` propagates to the caller once the pool joins (no result
/// is silently dropped).
pub fn parallel_map<T, U, F>(jobs: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let jobs = jobs.min(items.len());
    if jobs <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let done: Mutex<Vec<(usize, U)>> = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let v = f(item);
                done.lock().unwrap().push((i, v));
            });
        }
    });
    let mut v = done.into_inner().unwrap();
    v.sort_unstable_by_key(|&(i, _)| i);
    v.into_iter().map(|(_, u)| u).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order_at_any_width() {
        let items: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for jobs in [1, 2, 3, 8, 200] {
            assert_eq!(parallel_map(jobs, &items, |x| x * x), expect, "jobs={jobs}");
        }
        assert!(parallel_map(4, &Vec::<u64>::new(), |x| *x).is_empty());
    }

    #[test]
    fn worker_panics_propagate() {
        let r = std::panic::catch_unwind(|| {
            parallel_map(4, &[1, 2, 3, 4, 5, 6], |x| {
                assert_ne!(*x, 5, "boom");
                *x
            })
        });
        assert!(r.is_err());
    }
}
