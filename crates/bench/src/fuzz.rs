//! Differential fuzzing of the whole OM pipeline.
//!
//! Each seed generates a random mini-C program as a *shrinkable structure*
//! (modules → procedures → statements), renders it to sources, and checks
//! that all `(compile mode × OM level)` build variants — each linked with
//! [`OmOptions::verify`] — reproduce the mini-C interpreter's checksum
//! bit-for-bit. Each mode additionally checks a ninth, profile-guided
//! variant: the scheduled image is profiled, relinked with the profile
//! (verification still on), and re-diffed. The interpreter never touches
//! the object-code pipeline, so any disagreement pins a bug in codegen, the
//! linker, an OM transformation, profile collection, or the simulator.
//!
//! Every simulated variant additionally runs through *both* simulator
//! engines — the per-instruction reference interpreter with the full timing
//! model and the block-cache engine with fused timing — and diffs their
//! results, retired-instruction counts, program output, cycle-exact timing
//! statistics, and (on the profile-guided variant) profile JSON. An engine
//! divergence is a shrinkable failure like any other mismatch.
//!
//! On failure [`shrink`] greedily drops trailing modules, then unreferenced
//! procedures, then individual statements, re-running the oracle at each
//! step, and [`write_repro`] saves a minimized reproduction file.
//!
//! [`OmOptions::verify`]: om_core::pipeline::OmOptions

use om_core::{optimize_and_link_with, OmLevel, OmOptions};
use om_prng::StdRng;
use om_sim::{run_profiled, run_profiled_fast, run_timed, run_timed_fast, RunResult};
use om_workloads::stdlib::STDLIB_SOURCES;
use om_workloads::{stdlib_libs, CompileMode};
use std::fmt::Write as _;

/// Interpreter step budget per check (generated programs are tiny).
pub const INTERP_STEPS: u64 = 40_000_000;
/// Simulator instruction budget per variant.
pub const SIM_STEPS: u64 = 60_000_000;

/// Library routines the generator may call: `(name, arity)` (all int).
const LIB_FNS: &[(&str, usize)] = &[
    ("mix64", 1),
    ("hash2", 2),
    ("abs_i", 1),
    ("min_i", 2),
    ("max_i", 2),
    ("gcd_i", 2),
    ("isqrt", 1),
    ("ipow", 2),
    ("cksum_add", 1),
];

/// One generated statement plus the user procedures it calls (so the
/// shrinker knows which procedures are still referenced).
#[derive(Debug, Clone)]
pub struct FuzzStmt {
    pub text: String,
    pub calls: Vec<String>,
}

/// A generated procedure. The last procedure of each module is its exported
/// entry, called from `main`; entries are never dropped while their module
/// survives.
#[derive(Debug, Clone)]
pub struct FuzzProc {
    pub name: String,
    pub is_static: bool,
    pub is_float: bool,
    pub stmts: Vec<FuzzStmt>,
}

/// A generated module: globals plus procedures.
#[derive(Debug, Clone)]
pub struct FuzzModule {
    /// Module index in the original program (stable across shrinking, so
    /// names never change).
    pub index: usize,
    pub scalars: usize,
    /// Array length exponents: array `a` has `1 << arrays[a]` elements.
    pub arrays: Vec<u32>,
    pub procs: Vec<FuzzProc>,
}

/// A whole generated program in shrinkable form.
#[derive(Debug, Clone)]
pub struct FuzzProgram {
    pub seed: u64,
    pub modules: Vec<FuzzModule>,
    pub iters: u64,
    /// Dispatch through a procedure variable in `main` (exercises
    /// address-taken procedures, RefQuad data relocs, and indirect calls).
    pub use_fnptr: bool,
}

/// Size knobs for generation.
#[derive(Debug, Clone, Copy)]
pub struct FuzzConfig {
    pub max_modules: usize,
    pub max_procs_per_module: usize,
    pub max_stmts: usize,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig { max_modules: 4, max_procs_per_module: 4, max_stmts: 8 }
    }
}

struct ProcInfo {
    name: String,
    module: usize,
    is_static: bool,
    is_float: bool,
}

/// Generates the program for `seed`.
pub fn generate(seed: u64, cfg: &FuzzConfig) -> FuzzProgram {
    // Salted so fuzz streams are distinct from the workload generator's.
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF0_22_5A17);
    let n_modules = rng.gen_range(1..cfg.max_modules + 1);
    let mut roster: Vec<ProcInfo> = Vec::new();
    let mut modules = Vec::new();
    for mi in 0..n_modules {
        let n_procs = rng.gen_range(2..cfg.max_procs_per_module + 1);
        let scalars = rng.gen_range(1..4);
        let arrays: Vec<u32> = (0..rng.gen_range(1..3)).map(|_| rng.gen_range(3..7)).collect();
        let mut procs = Vec::new();
        for pj in 0..n_procs {
            let entry = pj + 1 == n_procs;
            let is_float = !entry && rng.gen_bool(0.2);
            let is_static = !entry && !is_float && rng.gen_bool(0.3);
            let name = format!("fz{mi}_p{pj}");
            let n_stmts = rng.gen_range(1..cfg.max_stmts + 1);
            let mut stmts = Vec::new();
            for s in 0..n_stmts {
                stmts.push(gen_stmt(&mut rng, mi, s, is_float, scalars, &arrays, &roster));
            }
            roster.push(ProcInfo {
                name: name.clone(),
                module: mi,
                is_static,
                is_float,
            });
            procs.push(FuzzProc { name, is_static, is_float, stmts });
        }
        modules.push(FuzzModule { index: mi, scalars, arrays, procs });
    }
    FuzzProgram {
        seed,
        modules,
        iters: rng.gen_range(2..7),
        use_fnptr: rng.gen_bool(0.5),
    }
}

fn int_term(rng: &mut StdRng) -> String {
    let k = rng.gen_range(1..100);
    match rng.gen_range(0..6) {
        0 => format!("(a + {k})"),
        1 => format!("(b ^ {k})"),
        2 => format!("(acc >> {})", rng.gen_range(1..8)),
        3 => "(acc & 0xFFFF)".to_string(),
        4 => format!("(a * {k})"),
        _ => "(b + acc)".to_string(),
    }
}

fn gen_stmt(
    rng: &mut StdRng,
    m: usize,
    s: usize,
    is_float: bool,
    scalars: usize,
    arrays: &[u32],
    roster: &[ProcInfo],
) -> FuzzStmt {
    if is_float && rng.gen_bool(0.4) {
        let c = rng.gen_range(1..64) as f64 / 16.0;
        return FuzzStmt {
            text: format!("  facc = facc * 0.5 + float(acc & 255) * {c:.4};\n"),
            calls: Vec::new(),
        };
    }
    let choice = rng.gen_range(0..12);
    match choice {
        0 => {
            let g = rng.gen_range(0..scalars);
            let t = int_term(rng);
            FuzzStmt {
                text: format!("  fz{m}_g{g} = fz{m}_g{g} + {t};\n  acc = acc ^ fz{m}_g{g};\n"),
                calls: Vec::new(),
            }
        }
        1 | 2 => {
            let a = rng.gen_range(0..arrays.len());
            let mask = (1u64 << arrays[a]) - 1;
            let idx = int_term(rng);
            let t = int_term(rng);
            FuzzStmt {
                text: format!("  fz{m}_arr{a}[{idx} & {mask}] = acc + {t};\n  acc = acc + fz{m}_arr{a}[(acc >> 1) & {mask}];\n"),
                calls: Vec::new(),
            }
        }
        3 => {
            let (name, arity) = LIB_FNS[rng.gen_range(0..LIB_FNS.len())];
            let args: Vec<String> = (0..arity).map(|_| int_term(rng)).collect();
            FuzzStmt {
                text: format!("  acc = acc + {name}({});\n", args.join(", ")),
                calls: Vec::new(), // library names resolve via the archive
            }
        }
        4 => {
            let k = rng.gen_range(3..17);
            let t = int_term(rng);
            let op = if rng.gen_bool(0.5) { "/" } else { "%" };
            FuzzStmt {
                text: format!("  acc = acc + ({t} {op} {k});\n"),
                calls: Vec::new(),
            }
        }
        5 => {
            let k = rng.gen_range(0..4096);
            let t1 = int_term(rng);
            let t2 = int_term(rng);
            FuzzStmt {
                text: format!(
                    "  if ((acc & 4095) > {k}) {{ acc = acc + {t1}; }} else {{ acc = acc ^ {t2}; }}\n"
                ),
                calls: Vec::new(),
            }
        }
        6 => {
            let a = rng.gen_range(0..arrays.len());
            let mask = (1u64 << arrays[a]) - 1;
            let n = rng.gen_range(2..5);
            FuzzStmt {
                text: format!(
                    "  int lt{s} = 0;\n  for (lt{s} = 0; lt{s} < {n}; lt{s} = lt{s} + 1) {{ acc = acc + fz{m}_arr{a}[(lt{s} + acc) & {mask}] * (lt{s} + 3); }}\n"
                ),
                calls: Vec::new(),
            }
        }
        7 | 8 => {
            // Call an earlier user procedure (same module, or an exported
            // one from an earlier module).
            let candidates: Vec<&ProcInfo> = roster
                .iter()
                .filter(|p| p.module == m || (!p.is_static && p.module < m))
                .collect();
            if candidates.is_empty() {
                let k = rng.gen_range(3..50);
                return FuzzStmt {
                    text: format!("  acc = acc * {k} + (a ^ b);\n"),
                    calls: Vec::new(),
                };
            }
            let p = candidates[rng.gen_range(0..candidates.len())];
            let x = int_term(rng);
            let y = int_term(rng);
            let text = if p.is_float {
                format!("  acc = acc ^ int({}(float({x}) * 0.125, {y}));\n", p.name)
            } else {
                format!("  acc = acc ^ {}({x}, {y});\n", p.name)
            };
            FuzzStmt { text, calls: vec![p.name.clone()] }
        }
        _ => {
            let k1 = rng.gen_range(3..50);
            let sh = rng.gen_range(1..12);
            FuzzStmt {
                text: format!("  acc = (acc * {k1} + a) ^ (b >> {sh}) ^ (acc << 1);\n"),
                calls: Vec::new(),
            }
        }
    }
}

/// Renders the program to `(module name, source)` pairs, `main` last.
pub fn render(prog: &FuzzProgram) -> Vec<(String, String)> {
    // Signature map over every surviving procedure.
    let sig = |p: &FuzzProc| -> String {
        if p.is_float {
            format!("extern float {}(float, int);", p.name)
        } else {
            format!("extern int {}(int, int);", p.name)
        }
    };
    let mut homes: std::collections::HashMap<&str, (usize, String)> = Default::default();
    for md in &prog.modules {
        for p in &md.procs {
            homes.insert(&p.name, (md.index, sig(p)));
        }
    }

    let mut out = Vec::new();
    for md in &prog.modules {
        let mut externs = std::collections::BTreeSet::new();
        let mut body = String::new();
        for g in 0..md.scalars {
            let _ = writeln!(body, "int fz{}_g{g} = {};", md.index, (g * 11 + md.index) % 50);
        }
        for (a, pow) in md.arrays.iter().enumerate() {
            let _ = writeln!(body, "int fz{}_arr{a}[{}];", md.index, 1u64 << pow);
        }
        body.push('\n');
        for p in &md.procs {
            let header = match (p.is_float, p.is_static) {
                (false, false) => format!("int {}(int a, int b) {{\n", p.name),
                (false, true) => format!("static int {}(int a, int b) {{\n", p.name),
                (true, false) => format!("float {}(float fa, int b) {{\n", p.name),
                (true, true) => format!("static float {}(float fa, int b) {{\n", p.name),
            };
            body.push_str(&header);
            if p.is_float {
                body.push_str("  float facc = fa + float(b) * 0.25;\n  int acc = b + 1;\n  int a = b * 7;\n");
            } else {
                body.push_str("  int acc = a * 3 + b;\n");
            }
            for st in &p.stmts {
                body.push_str(&st.text);
                for callee in &st.calls {
                    let (home, decl) = &homes[callee.as_str()];
                    if *home != md.index {
                        externs.insert(decl.clone());
                    }
                }
            }
            if p.is_float {
                body.push_str("  return facc + float(acc & 65535) * 0.001;\n}\n\n");
            } else {
                body.push_str("  return acc;\n}\n\n");
            }
            // Library calls need extern declarations in this module.
            for st in &p.stmts {
                for (name, arity) in LIB_FNS {
                    if st.text.contains(&format!("{name}(")) {
                        let params = vec!["int"; *arity].join(", ");
                        externs.insert(format!("extern int {name}({params});"));
                    }
                }
            }
        }
        let mut head = String::new();
        for d in &externs {
            let _ = writeln!(head, "{d}");
        }
        out.push((format!("fz_{:02}", md.index), format!("{head}\n{body}")));
    }

    // `main`: drive every module's entry procedure, optionally through a
    // procedure variable, and checksum the accumulator each iteration.
    let mut decls = std::collections::BTreeSet::new();
    decls.insert("extern int cksum_reset();".to_string());
    decls.insert("extern int cksum_add(int);".to_string());
    decls.insert("extern int cksum_get();".to_string());
    let mut main = String::new();
    let entries: Vec<&FuzzProc> =
        prog.modules.iter().map(|m| m.procs.last().expect("entry proc")).collect();
    for e in &entries {
        decls.insert(sig(e));
    }
    let mut fnptr_head = String::new();
    if prog.use_fnptr {
        let t = entries[0].name.clone();
        let _ = writeln!(fnptr_head, "fnptr fzhp = &{t};");
    }
    main.push_str("int main() {\n  cksum_reset();\n  int t = 1;\n  int i = 0;\n");
    let _ = writeln!(main, "  for (i = 0; i < {}; i = i + 1) {{", prog.iters);
    for (k, e) in entries.iter().enumerate() {
        let _ = writeln!(main, "    t = t + {}(i + {k}, t & 0xFFFF);", e.name);
    }
    if prog.use_fnptr {
        let a = entries[entries.len() / 2].name.clone();
        let b = entries[0].name.clone();
        let _ = writeln!(
            main,
            "    if ((i & 1) == 0) {{ fzhp = &{a}; }} else {{ fzhp = &{b}; }}"
        );
        main.push_str("    t = t ^ fzhp(i, t & 255);\n");
    }
    main.push_str("    cksum_add(t);\n  }\n  return cksum_get() ^ (t & 0xFFFF);\n}\n");
    let mut head = String::new();
    for d in &decls {
        let _ = writeln!(head, "{d}");
    }
    out.push(("fz_main".to_string(), format!("{head}\n{fnptr_head}\n{main}")));
    out
}

/// One variant's disagreement with the reference.
#[derive(Debug, Clone)]
pub struct Mismatch {
    pub variant: String,
    pub detail: String,
}

/// Outcome of checking one program against all 9 variants.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// All variants linked, verified, and reproduced the reference checksum.
    Pass,
    /// The reference interpreter could not produce an oracle (e.g. step
    /// limit); nothing was compared.
    Skip(String),
    /// At least one variant disagreed (checksum, verifier, link, or crash).
    Fail { reference: Option<i64>, mismatches: Vec<Mismatch> },
}

impl Outcome {
    pub fn is_fail(&self) -> bool {
        matches!(self, Outcome::Fail { .. })
    }
}

/// Simulates `image` on both engines and diffs everything observable.
/// Returns the agreed run result, or `None` after recording a mismatch.
fn sim_both(
    image: &om_linker::Image,
    variant: &str,
    mismatches: &mut Vec<Mismatch>,
) -> Option<RunResult> {
    let reference = run_timed(image, SIM_STEPS);
    let fast = run_timed_fast(image, SIM_STEPS);
    match (reference, fast) {
        (Ok((rr, rt)), Ok((fr, ft))) => {
            if rr != fr || rt != ft {
                mismatches.push(Mismatch {
                    variant: format!("{variant} (engines)"),
                    detail: format!(
                        "block engine diverges from reference: \
                         result {} vs {}, insts {} vs {}, cycles {} vs {}, \
                         output match {}, timing match {}",
                        rr.result,
                        fr.result,
                        rr.insts,
                        fr.insts,
                        rt.cycles,
                        ft.cycles,
                        rr.output == fr.output,
                        rt == ft,
                    ),
                });
                return None;
            }
            Some(rr)
        }
        (Err(re), Err(fe)) => {
            let (re, fe) = (re.to_string(), fe.to_string());
            if re != fe {
                mismatches.push(Mismatch {
                    variant: format!("{variant} (engines)"),
                    detail: format!("fault divergence: reference '{re}' vs block '{fe}'"),
                });
            } else {
                mismatches.push(Mismatch {
                    variant: variant.to_string(),
                    detail: format!("simulator: {re}"),
                });
            }
            None
        }
        (Ok(_), Err(e)) => {
            mismatches.push(Mismatch {
                variant: format!("{variant} (engines)"),
                detail: format!("block engine faulted where reference succeeded: {e}"),
            });
            None
        }
        (Err(e), Ok(_)) => {
            mismatches.push(Mismatch {
                variant: format!("{variant} (engines)"),
                detail: format!("reference faulted where block engine succeeded: {e}"),
            });
            None
        }
    }
}

/// Runs the full differential oracle on `prog`.
pub fn check(prog: &FuzzProgram) -> Outcome {
    let sources = render(prog);
    // Reference: the mini-C interpreter over user sources + stdlib.
    let mut all: Vec<(String, String)> = sources.clone();
    for (n, s) in STDLIB_SOURCES {
        all.push((n.to_string(), s.to_string()));
    }
    let refs: Vec<(&str, &str)> = all.iter().map(|(n, s)| (n.as_str(), s.as_str())).collect();
    let reference = match om_minic::interp::run_sources(&refs, INTERP_STEPS) {
        Ok(v) => v,
        Err(e) if e.contains("step limit") => return Outcome::Skip(e),
        Err(e) => {
            // The interpreter rejects the program outright: a generator (or
            // front-end) bug, reported as a failure of every variant.
            return Outcome::Fail {
                reference: None,
                mismatches: vec![Mismatch { variant: "interp".into(), detail: e }],
            };
        }
    };

    let libs = match stdlib_libs() {
        Ok(l) => l,
        Err(e) => {
            return Outcome::Fail {
                reference: Some(reference),
                mismatches: vec![Mismatch { variant: "stdlib".into(), detail: e.to_string() }],
            }
        }
    };
    let opts = OmOptions { verify: true, ..OmOptions::default() };
    let copts = om_codegen::CompileOpts::o2();
    let mut mismatches = Vec::new();
    for mode in CompileMode::ALL {
        let mut objects = vec![match om_codegen::crt0::module() {
            Ok(m) => m,
            Err(e) => {
                mismatches.push(Mismatch { variant: "crt0".into(), detail: e.to_string() });
                continue;
            }
        }];
        let compiled: Result<(), om_codegen::CodegenError> = (|| {
            match mode {
                CompileMode::Each => {
                    for (n, s) in &sources {
                        objects.push(om_codegen::compile_source(n, s, &copts)?);
                    }
                }
                CompileMode::All => {
                    let refs: Vec<(&str, &str)> =
                        sources.iter().map(|(n, s)| (n.as_str(), s.as_str())).collect();
                    objects.push(om_codegen::compile_all_sources("fz_all", &refs, &copts)?);
                }
            }
            Ok(())
        })();
        if let Err(e) = compiled {
            mismatches.push(Mismatch {
                variant: format!("{}", mode.name()),
                detail: format!("compile error: {e}"),
            });
            continue;
        }
        let mut sched_image = None;
        for level in OmLevel::ALL {
            let variant = format!("{} × {}", mode.name(), level.name());
            match optimize_and_link_with(&objects, &libs, level, &opts) {
                Ok(out) => {
                    if let Some(r) = sim_both(&out.image, &variant, &mut mismatches) {
                        if r.result != reference {
                            mismatches.push(Mismatch {
                                variant,
                                detail: format!(
                                    "checksum {} != reference {reference}",
                                    r.result
                                ),
                            });
                        } else if level == OmLevel::FullSched {
                            sched_image = Some(out.image);
                        }
                    }
                }
                Err(e) => mismatches.push(Mismatch {
                    variant,
                    detail: format!("link/verify: {e}"),
                }),
            }
        }
        // Ninth variant: profile the correct scheduled image, relink with
        // the profile, and re-diff the checksum.
        if let Some(image) = sched_image {
            let variant = format!("{} × pgo", mode.name());
            // Both engines collect the profile; their JSON must agree
            // byte-for-byte before the reference one drives the relink.
            let profiled = match (run_profiled(&image, SIM_STEPS), run_profiled_fast(&image, SIM_STEPS)) {
                (Ok((_, rp)), Ok((_, fp))) => {
                    if rp.to_json() != fp.to_json() {
                        mismatches.push(Mismatch {
                            variant: format!("{variant} (engines)"),
                            detail: "block engine profile JSON diverges from reference".into(),
                        });
                        None
                    } else {
                        Some(rp)
                    }
                }
                (Err(e), _) | (_, Err(e)) => {
                    mismatches.push(Mismatch {
                        variant: variant.clone(),
                        detail: format!("profiling run: {e}"),
                    });
                    None
                }
            };
            if let Some(profile) = profiled {
                let popts = OmOptions { profile: Some(profile), ..opts.clone() };
                match optimize_and_link_with(&objects, &libs, OmLevel::FullSched, &popts) {
                    Ok(out) => {
                        if let Some(r) = sim_both(&out.image, &variant, &mut mismatches) {
                            if r.result != reference {
                                mismatches.push(Mismatch {
                                    variant,
                                    detail: format!(
                                        "checksum {} != reference {reference}",
                                        r.result
                                    ),
                                });
                            }
                        }
                    }
                    Err(e) => mismatches.push(Mismatch {
                        variant,
                        detail: format!("link/verify: {e}"),
                    }),
                }
            }
        }
    }
    if mismatches.is_empty() {
        Outcome::Pass
    } else {
        Outcome::Fail { reference: Some(reference), mismatches }
    }
}

/// True if `name` is called from any surviving statement or is an fnptr
/// target or module entry.
fn referenced(prog: &FuzzProgram, name: &str) -> bool {
    for md in &prog.modules {
        if md.procs.last().is_some_and(|p| p.name == name) {
            return true; // module entry, called from main
        }
        for p in &md.procs {
            for st in &p.stmts {
                if st.calls.iter().any(|c| c == name) {
                    return true;
                }
            }
        }
    }
    false
}

/// Greedily shrinks a failing program: drop trailing modules, then
/// unreferenced non-entry procedures, then statements — keeping every
/// change under which [`check`] still fails. `budget` bounds oracle runs.
pub fn shrink(prog: FuzzProgram, budget: usize) -> FuzzProgram {
    shrink_with(prog, budget, |p| check(p).is_fail())
}

/// [`shrink`] with an explicit failure oracle (unit-testable without
/// running the full pipeline).
pub fn shrink_with(
    mut prog: FuzzProgram,
    budget: usize,
    mut fails: impl FnMut(&FuzzProgram) -> bool,
) -> FuzzProgram {
    let mut runs = 0;
    let mut try_keep = |cand: &FuzzProgram, runs: &mut usize| -> bool {
        if *runs >= budget {
            return false;
        }
        *runs += 1;
        fails(cand)
    };

    let mut progress = true;
    while progress && runs < budget {
        progress = false;
        // 1. Whole modules, last first. A module may go only if no other
        // module's statements call into it (otherwise the candidate fails
        // with an unrelated undefined-symbol error, masking the real bug).
        'modules: loop {
            for mi in (0..prog.modules.len()).rev() {
                if prog.modules.len() == 1 || runs >= budget {
                    break 'modules;
                }
                let externally_called = prog.modules[mi].procs.iter().any(|p| {
                    prog.modules
                        .iter()
                        .enumerate()
                        .filter(|(mj, _)| *mj != mi)
                        .flat_map(|(_, m)| &m.procs)
                        .flat_map(|pr| &pr.stmts)
                        .any(|s| s.calls.iter().any(|c| *c == p.name))
                });
                if externally_called {
                    continue;
                }
                let mut cand = prog.clone();
                cand.modules.remove(mi);
                if try_keep(&cand, &mut runs) {
                    prog = cand;
                    progress = true;
                    continue 'modules;
                }
            }
            break;
        }
        // 2. Unreferenced non-entry procedures, last first.
        'procs: loop {
            for mi in 0..prog.modules.len() {
                let n = prog.modules[mi].procs.len();
                for pj in (0..n.saturating_sub(1)).rev() {
                    let name = prog.modules[mi].procs[pj].name.clone();
                    let mut cand = prog.clone();
                    cand.modules[mi].procs.remove(pj);
                    if !referenced(&cand, &name) && try_keep(&cand, &mut runs) {
                        prog = cand;
                        progress = true;
                        continue 'procs;
                    }
                    if runs >= budget {
                        break 'procs;
                    }
                }
            }
            break;
        }
        // 3. Individual statements, last first.
        'stmts: loop {
            for mi in 0..prog.modules.len() {
                for pj in 0..prog.modules[mi].procs.len() {
                    let n = prog.modules[mi].procs[pj].stmts.len();
                    for si in (0..n).rev() {
                        let mut cand = prog.clone();
                        cand.modules[mi].procs[pj].stmts.remove(si);
                        if try_keep(&cand, &mut runs) {
                            prog = cand;
                            progress = true;
                            continue 'stmts;
                        }
                        if runs >= budget {
                            break 'stmts;
                        }
                    }
                }
            }
            break;
        }
    }
    prog
}

/// Renders a repro file: header comments describing the failure, then every
/// module source.
pub fn write_repro(prog: &FuzzProgram, outcome: &Outcome) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "// omfuzz repro: seed {}", prog.seed);
    if let Outcome::Fail { reference, mismatches } = outcome {
        match reference {
            Some(v) => {
                let _ = writeln!(out, "// reference checksum: {v}");
            }
            None => {
                let _ = writeln!(out, "// reference checksum: unavailable");
            }
        }
        for m in mismatches {
            let _ = writeln!(out, "// {}: {}", m.variant, m.detail.replace('\n', "\n// "));
        }
    }
    for (name, src) in render(prog) {
        let _ = writeln!(out, "\n// ==== module {name} ====");
        out.push_str(&src);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = FuzzConfig::default();
        let a = render(&generate(42, &cfg));
        let b = render(&generate(42, &cfg));
        assert_eq!(a, b);
        assert_ne!(a, render(&generate(43, &cfg)));
    }

    #[test]
    fn every_program_has_entries() {
        let cfg = FuzzConfig::default();
        for seed in 0..20 {
            let prog = generate(seed, &cfg);
            assert!(!prog.modules.is_empty(), "seed {seed}");
            for md in &prog.modules {
                let entry = md.procs.last().expect("entry proc");
                assert!(!entry.is_static && !entry.is_float, "seed {seed}: entry must be plain int");
            }
        }
    }

    #[test]
    fn shrinker_minimizes_against_synthetic_oracle() {
        // "Fails" whenever any surviving statement calls mix64: the shrinker
        // should strip everything else down to one module with that one call.
        let cfg = FuzzConfig { max_modules: 4, max_procs_per_module: 4, max_stmts: 8 };
        let mut found = false;
        for seed in 0..50 {
            let prog = generate(seed, &cfg);
            let trigger = |p: &FuzzProgram| {
                p.modules
                    .iter()
                    .flat_map(|m| &m.procs)
                    .flat_map(|pr| &pr.stmts)
                    .any(|s| s.text.contains("mix64("))
            };
            if prog.modules.len() < 2 || !trigger(&prog) {
                continue;
            }
            found = true;
            let small = shrink_with(prog, 10_000, |p| trigger(p));
            assert!(trigger(&small), "seed {seed}: shrink lost the failure");
            assert_eq!(small.modules.len(), 1, "seed {seed}: trailing modules kept");
            let stmts: usize =
                small.modules.iter().flat_map(|m| &m.procs).map(|p| p.stmts.len()).sum();
            assert!(stmts <= 2, "seed {seed}: {stmts} statements survived");
            break;
        }
        assert!(found, "no multi-module seed with a mix64 call in 0..50");
    }

    #[test]
    fn repro_header_lists_mismatches() {
        let prog = generate(7, &FuzzConfig::default());
        let outcome = Outcome::Fail {
            reference: Some(123),
            mismatches: vec![Mismatch {
                variant: "compile-each × OM-full".into(),
                detail: "checksum 9 != reference 123".into(),
            }],
        };
        let text = write_repro(&prog, &outcome);
        assert!(text.contains("// reference checksum: 123"));
        assert!(text.contains("checksum 9 != reference 123"));
        assert!(text.contains("int main()"));
    }
}
