//! `omfuzz` — differential fuzzing of the OM pipeline.
//!
//! ```text
//! omfuzz [--seeds N] [--start S] [--jobs N] [--out DIR]
//!        [--modules N] [--procs N] [--stmts N] [--adversarial]
//! ```
//!
//! Each seed generates a random mini-C program, runs the mini-C interpreter
//! as the reference, then builds and simulates all 8 `(compile mode × OM
//! level)` variants plus a profile-guided relink per mode (9 in all), each
//! with the linked-image verifier enabled, comparing checksums. Seeds are
//! checked in parallel on the shared `om_bench::par` pool (`--jobs`,
//! defaulting to the machine's parallelism); output and repro files are
//! identical at any width because results are reported in seed order.
//! Failures are shrunk (modules → procedures → statements) and a minimized
//! repro file is written to `--out` (default `target/omfuzz`). Exits 1 if
//! any seed failed.
//!
//! `--adversarial` runs the deterministic scenario corpus
//! ([`om_bench::adversarial`]) instead of random seeds: hand-shaped inputs
//! sitting on the pipeline's limits, each gated on its own oracle (full
//! differential check for source cases, typed-`Range`-error for object
//! cases). Exits 1 if any case fails or panics.

use om_bench::fuzz::{check, generate, shrink, write_repro, FuzzConfig, Outcome};
use om_bench::par::{default_jobs, parallel_map};
use std::process::exit;

fn main() {
    let mut seeds: u64 = 100;
    let mut start: u64 = 0;
    let mut jobs: usize = default_jobs();
    let mut out_dir = String::from("target/omfuzz");
    let mut cfg = FuzzConfig::default();

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--adversarial" => run_adversarial(),
            "--seeds" => {
                i += 1;
                seeds = parse_num(args.get(i), "--seeds");
            }
            "--start" => {
                i += 1;
                start = parse_num(args.get(i), "--start");
            }
            "--jobs" => {
                i += 1;
                jobs = (parse_num(args.get(i), "--jobs") as usize).max(1);
            }
            "--modules" => {
                i += 1;
                cfg.max_modules = parse_num(args.get(i), "--modules") as usize;
            }
            "--procs" => {
                i += 1;
                cfg.max_procs_per_module = parse_num(args.get(i), "--procs") as usize;
            }
            "--stmts" => {
                i += 1;
                cfg.max_stmts = parse_num(args.get(i), "--stmts") as usize;
            }
            "--out" => {
                i += 1;
                out_dir = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("omfuzz: --out needs a directory");
                    exit(2);
                });
            }
            other => {
                eprintln!("omfuzz: unknown option {other}");
                eprintln!(
                    "usage: omfuzz [--seeds N] [--start S] [--jobs N] [--out DIR] \
                     [--modules N] [--procs N] [--stmts N] [--adversarial]"
                );
                exit(2);
            }
        }
        i += 1;
    }

    let all_seeds: Vec<u64> = (start..start + seeds).collect();
    let mut passed = 0u64;
    let mut skipped = 0u64;
    let mut failures: Vec<u64> = Vec::new();

    // Check seeds in parallel, in chunks so progress still prints; shrink
    // failures serially afterwards (shrinking re-runs the pipeline many
    // times and is itself the bottleneck — one failure at a time keeps the
    // repro output readable).
    for chunk in all_seeds.chunks(jobs.max(1) * 4) {
        let outcomes = parallel_map(jobs, chunk, |&seed| check(&generate(seed, &cfg)));
        for (&seed, outcome) in chunk.iter().zip(outcomes) {
            match outcome {
                Outcome::Pass => passed += 1,
                Outcome::Skip(why) => {
                    skipped += 1;
                    eprintln!("omfuzz: seed {seed}: skipped ({why})");
                }
                outcome @ Outcome::Fail { .. } => {
                    eprintln!("omfuzz: seed {seed}: FAILED, shrinking…");
                    let small = shrink(generate(seed, &cfg), 300);
                    let final_outcome = check(&small);
                    let report = match &final_outcome {
                        Outcome::Fail { .. } => write_repro(&small, &final_outcome),
                        // Shrinking should preserve failure, but never lose
                        // the original if it somehow does not.
                        _ => write_repro(&small, &outcome),
                    };
                    if let Err(e) = std::fs::create_dir_all(&out_dir) {
                        eprintln!("omfuzz: cannot create {out_dir}: {e}");
                    } else {
                        let path = format!("{out_dir}/repro_{seed}.mc");
                        match std::fs::write(&path, report) {
                            Ok(()) => eprintln!("omfuzz: seed {seed}: repro written to {path}"),
                            Err(e) => eprintln!("omfuzz: cannot write {path}: {e}"),
                        }
                    }
                    if let Outcome::Fail { mismatches, .. } = &outcome {
                        for m in mismatches {
                            eprintln!("omfuzz:   {}: {}", m.variant, m.detail);
                        }
                    }
                    failures.push(seed);
                }
            }
        }
        let done = chunk.last().copied().unwrap_or(start) - start + 1;
        if done < seeds {
            eprintln!(
                "omfuzz: {done}/{seeds} seeds ({passed} passed, {skipped} skipped, {} failed)",
                failures.len()
            );
        }
    }

    eprintln!(
        "omfuzz: done — {passed} passed, {skipped} skipped, {} failed of {seeds} seeds",
        failures.len()
    );
    if !failures.is_empty() {
        eprintln!("omfuzz: failing seeds: {failures:?}");
        exit(1);
    }
}

/// Runs the deterministic adversarial corpus and exits with its verdict.
fn run_adversarial() -> ! {
    let failures = om_bench::adversarial::run_all(|name, detail, outcome| match outcome {
        Ok(summary) => eprintln!("omfuzz: adversarial {name}: ok — {summary}"),
        Err(why) => eprintln!("omfuzz: adversarial {name} ({detail}): FAILED — {why}"),
    });
    if failures > 0 {
        eprintln!("omfuzz: adversarial corpus: {failures} case(s) failed");
        exit(1);
    }
    eprintln!("omfuzz: adversarial corpus: all cases passed");
    exit(0);
}

fn parse_num(arg: Option<&String>, flag: &str) -> u64 {
    arg.and_then(|s| s.parse().ok()).unwrap_or_else(|| {
        eprintln!("omfuzz: {flag} needs a number");
        exit(2);
    })
}
