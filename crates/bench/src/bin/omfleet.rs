//! `omfleet` — the CI-fleet relink benchmark, standalone.
//!
//! ```text
//! omfleet [--smoke] [--quick] [--scale N] [--bench NAME]... [--json PATH]
//! ```
//!
//! Default: runs the full relink storm (10 edits × 5 repeats, 8 client
//! threads) over every workload and prints the fleet table.
//!
//! `--smoke` is the bounded CI gate: a handful of quick workloads, the
//! quick storm shape, plus one socket round trip — and it *fails* (exit 1)
//! if any benchmark's per-module hit rate drops below the 80% floor, any
//! served image differs from the one-shot pipeline, or the socket relink
//! misbehaves.
//!
//! `--scale N` runs the storm over an N-module scale workload instead and
//! enforces the tighter invalidation gate: a single-module edit at scale
//! must reuse ≥ 99% of translations ([`SCALE_HIT_RATE_FLOOR`]), images must
//! stay byte-identical, and a deliberately tiny cache must evict without
//! ever serving a wrong image.

use om_bench::figures::Prepared;
use om_bench::fleet::{fleet, fleet_built, FleetConfig, HIT_RATE_FLOOR};
use om_bench::scale::{built_each, eviction_smoke, SCALE_HIT_RATE_FLOOR};
use om_bench::{json, render};
use om_core::OmLevel;
use om_omd::{serve, Client, LinkServer};
use om_workloads::spec;
use std::sync::Arc;
use std::time::Instant;

/// Workloads the smoke gate exercises (small, fast to build).
const SMOKE_BENCHES: usize = 6;

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: omfleet [--smoke] [--quick] [--scale N] [--bench NAME]... [--json PATH]");
    std::process::exit(2);
}

/// The `--scale N` gate: the relink storm over an N-module scale build,
/// held to the 99% invalidation floor, plus the eviction-bound smoke.
fn scale_fleet(n: usize, quick: bool) -> ! {
    let cfg = if quick { FleetConfig::quick() } else { FleetConfig::full() };
    eprintln!(
        "fleet --scale {n}: building {n} modules, then {} edits x {} repeats at {} threads...",
        cfg.edits, cfg.repeats, cfg.jobs
    );
    let b = built_each(n);
    let row = fleet_built(&b, &cfg);
    println!(
        "scale{n}: {} requests over {} modules: {} module misses, hit rate {:.3}%, \
         p50 {}us p99 {}us, identical {}",
        row.requests,
        row.modules,
        row.module_misses,
        row.hit_rate * 100.0,
        row.p50_us,
        row.p99_us,
        row.byte_identical
    );
    let mut failures = Vec::new();
    if row.hit_rate < SCALE_HIT_RATE_FLOOR {
        failures.push(format!(
            "hit rate {:.3}% below the {:.0}% scale floor — a one-module edit is not O(1 module)",
            row.hit_rate * 100.0,
            SCALE_HIT_RATE_FLOOR * 100.0
        ));
    }
    if row.byte_identical {
        eprintln!("fleet --scale {n}: every served image byte-identical to one-shot");
    } else {
        failures.push("served image differs from one-shot pipeline".to_string());
    }
    eviction_smoke(&b, 64);
    eprintln!("fleet --scale {n}: 64-entry cache evicted under pressure, images intact");
    if failures.is_empty() {
        eprintln!("fleet --scale {n}: OK");
        std::process::exit(0);
    }
    for f in &failures {
        eprintln!("FLEET FAILURE: scale{n}: {f}");
    }
    std::process::exit(1);
}

fn main() {
    let t_start = Instant::now();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut quick = false;
    let mut scale_n: Option<usize> = None;
    let mut filter: Vec<String> = Vec::new();
    let mut json_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--quick" => quick = true,
            "--scale" => {
                i += 1;
                scale_n = match args.get(i).and_then(|s| s.parse::<usize>().ok()) {
                    // The 99% floor needs ≥ 100 modules to be meetable at all.
                    Some(n) if n >= 100 => Some(n),
                    _ => usage("--scale needs a module count >= 100"),
                };
            }
            "--bench" => {
                i += 1;
                match args.get(i) {
                    Some(name) if !name.is_empty() && !name.starts_with('-') => {
                        filter.push(name.clone());
                    }
                    _ => usage("--bench needs a benchmark name"),
                }
            }
            "--json" => {
                i += 1;
                match args.get(i) {
                    Some(path) if !path.is_empty() => json_path = Some(path.clone()),
                    _ => usage("--json needs an output path"),
                }
            }
            other => usage(&format!("unknown argument `{other}`")),
        }
        i += 1;
    }

    if let Some(n) = scale_n {
        scale_fleet(n, quick || smoke);
    }

    let mut specs: Vec<_> = spec::all()
        .into_iter()
        .filter(|s| filter.is_empty() || filter.iter().any(|f| f == s.name))
        .collect();
    if smoke && filter.is_empty() {
        specs.truncate(SMOKE_BENCHES);
    }
    if specs.is_empty() {
        eprintln!("no benchmarks match the filter");
        std::process::exit(2);
    }
    let quick = quick || smoke;
    let specs: Vec<_> = specs
        .into_iter()
        .map(|s| if quick { spec::quick(&s) } else { s })
        .collect();
    let cfg = if quick { FleetConfig::quick() } else { FleetConfig::full() };

    eprintln!(
        "fleet: {} benchmarks, {} edits x {} repeats at {} threads...",
        specs.len(),
        cfg.edits,
        cfg.repeats,
        cfg.jobs
    );
    let mut rows = Vec::new();
    let mut failures = Vec::new();
    let mut relinks = 0usize;
    for s in &specs {
        let p = Prepared::new(s);
        let row = fleet(&p, &cfg);
        relinks += row.requests;
        if row.hit_rate < HIT_RATE_FLOOR {
            failures.push(format!(
                "{}: hit rate {:.1}% below the {:.0}% floor",
                s.name,
                row.hit_rate * 100.0,
                HIT_RATE_FLOOR * 100.0
            ));
        }
        if !row.byte_identical {
            failures.push(format!("{}: served image differs from one-shot pipeline", s.name));
        }
        let mut r = om_bench::figures::measure(&p, Default::default());
        r.fleet = Some(row);
        rows.push(r);
    }

    if smoke {
        if let Err(e) = socket_smoke(&specs[0]) {
            failures.push(format!("socket: {e}"));
        }
    }

    print!(
        "{}",
        render::fleet(
            &rows
                .iter()
                .filter_map(|r| r.fleet.map(|x| (r.name.clone(), x)))
                .collect::<Vec<_>>()
        )
    );
    eprintln!("fleet: {relinks} measured relinks in {:.1}s", t_start.elapsed().as_secs_f64());

    if let Some(path) = json_path {
        let report = json::report(&rows, quick, cfg.jobs, t_start.elapsed().as_secs_f64(), (0.0, 0.0, 0.0));
        if let Err(e) = std::fs::write(&path, report) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FLEET FAILURE: {f}");
        }
        std::process::exit(1);
    }
    if smoke {
        eprintln!("fleet smoke: OK");
    }
}

/// One relink pair over the unix-socket front end: the second request must
/// be a cache hit and both images byte-identical.
fn socket_smoke(s: &om_workloads::gen::BenchSpec) -> Result<(), String> {
    let b = om_workloads::build::build(s, om_workloads::build::CompileMode::Each)
        .map_err(|e| e.to_string())?;
    let path = std::env::temp_dir().join(format!("omfleet-{}.sock", std::process::id()));
    let handle = serve(&path, Arc::new(LinkServer::new(b.libs.to_vec())))
        .map_err(|e| e.to_string())?;
    let run = || -> Result<(), String> {
        let mut client = Client::connect(&path).map_err(|e| e.to_string())?;
        client.ping().map_err(|e| e.to_string())?;
        let (hit1, img1) = client
            .link(&b.objects, OmLevel::FullSched, true)
            .map_err(|e| e.to_string())??;
        let (hit2, img2) = client
            .link(&b.objects, OmLevel::FullSched, true)
            .map_err(|e| e.to_string())??;
        if hit1 {
            return Err("first socket relink reported a cache hit".to_string());
        }
        if !hit2 {
            return Err("second socket relink missed the cache".to_string());
        }
        if img1.to_bytes() != img2.to_bytes() {
            return Err("socket relink images differ".to_string());
        }
        Ok(())
    };
    let result = run();
    handle.shutdown();
    result
}
