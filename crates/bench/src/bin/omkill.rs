//! `omkill` — mutation-kill campaign over the OM safety nets.
//!
//! ```text
//! omkill [--seeds a,b,c] [--sites N] [--mutants N] [--jobs N] [--out PATH]
//!        [--check BASELINE] [--update-baseline PATH]
//! ```
//!
//! Builds the deterministic mutant corpus (see `om_bench::mutate`), runs
//! every oracle against every mutant, and prints the per-class kill
//! scorecard. `--out` writes the scorecard JSON; `--update-baseline` writes
//! it as the committed expectations; `--check` compares against a committed
//! baseline and exits 1 on any regression (a previously-killed class now
//! escaping, or a kill-rate drop). Exits 1 as well if any mutant escapes
//! every oracle while `--check` is not in use.

use om_bench::mutate::{
    check_against, parse_baseline, render_json, run_campaign, scorecard, DEFAULT_SEEDS,
    SITES_PER_CLASS,
};
use om_bench::par::default_jobs;
use std::process::exit;

fn main() {
    let mut seeds: Vec<u64> = DEFAULT_SEEDS.to_vec();
    let mut sites: usize = SITES_PER_CLASS;
    let mut max_mutants: usize = usize::MAX;
    let mut jobs: usize = default_jobs();
    let mut out: Option<String> = None;
    let mut check: Option<String> = None;
    let mut update: Option<String> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seeds" => {
                i += 1;
                let raw = args.get(i).cloned().unwrap_or_default();
                seeds = raw
                    .split(',')
                    .map(|s| {
                        s.trim().parse().unwrap_or_else(|_| {
                            eprintln!("omkill: --seeds needs comma-separated numbers");
                            exit(2);
                        })
                    })
                    .collect();
            }
            "--sites" => {
                i += 1;
                sites = parse_num(args.get(i), "--sites");
            }
            "--mutants" => {
                i += 1;
                max_mutants = parse_num(args.get(i), "--mutants");
            }
            "--jobs" => {
                i += 1;
                jobs = parse_num(args.get(i), "--jobs").max(1);
            }
            "--out" => {
                i += 1;
                out = Some(required_path(args.get(i), "--out"));
            }
            "--check" => {
                i += 1;
                check = Some(required_path(args.get(i), "--check"));
            }
            "--update-baseline" => {
                i += 1;
                update = Some(required_path(args.get(i), "--update-baseline"));
            }
            other => {
                eprintln!("omkill: unknown option {other}");
                eprintln!(
                    "usage: omkill [--seeds a,b,c] [--sites N] [--mutants N] [--jobs N] \
                     [--out PATH] [--check BASELINE] [--update-baseline PATH]"
                );
                exit(2);
            }
        }
        i += 1;
    }

    eprintln!(
        "omkill: {} seeds x {sites} sites on {jobs} jobs…",
        seeds.len()
    );
    let rows = match run_campaign(&seeds, sites, max_mutants, jobs) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("omkill: corpus build failed: {e}");
            exit(2);
        }
    };
    let card = scorecard(rows);

    eprintln!(
        "omkill: {} mutants, {} killed, {} escaped",
        card.mutants, card.killed, card.escaped
    );
    eprintln!("omkill: {:<18} {:>5} {:>6} {:>8} {:>6} {:>7}", "class", "total", "verify", "checksum", "interp", "escaped");
    for c in &card.classes {
        eprintln!(
            "omkill: {:<18} {:>5} {:>6} {:>8} {:>6} {:>7}",
            c.class, c.total, c.verify, c.checksum, c.interp, c.escaped
        );
    }
    for r in card.rows.iter().filter(|r| !r.killed()) {
        eprintln!("omkill: ESCAPED {} seed {} site {}: {}", r.class, r.seed, r.site, r.detail);
    }

    let json = render_json(&card);
    for path in out.iter().chain(update.iter()) {
        match std::fs::write(path, &json) {
            Ok(()) => eprintln!("omkill: scorecard written to {path}"),
            Err(e) => {
                eprintln!("omkill: cannot write {path}: {e}");
                exit(2);
            }
        }
    }

    if let Some(path) = check {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("omkill: cannot read baseline {path}: {e}");
            exit(2);
        });
        let base = parse_baseline(&text).unwrap_or_else(|e| {
            eprintln!("omkill: bad baseline {path}: {e}");
            exit(2);
        });
        let regressions = check_against(&card, &base);
        if regressions.is_empty() {
            eprintln!("omkill: baseline check passed ({path})");
        } else {
            for r in &regressions {
                eprintln!("omkill: REGRESSION: {r}");
            }
            exit(1);
        }
    } else if card.escaped > 0 && update.is_none() {
        exit(1);
    }
}

fn parse_num(arg: Option<&String>, flag: &str) -> usize {
    arg.and_then(|s| s.parse().ok()).unwrap_or_else(|| {
        eprintln!("omkill: {flag} needs a number");
        exit(2);
    })
}

fn required_path(arg: Option<&String>, flag: &str) -> String {
    arg.cloned().unwrap_or_else(|| {
        eprintln!("omkill: {flag} needs a path");
        exit(2);
    })
}
