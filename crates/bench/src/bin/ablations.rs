//! Ablation studies over OM's design choices (the knobs DESIGN.md calls
//! out). Each row toggles exactly one mechanism and reports what it buys:
//!
//! * **common sorting** — OM-simple's layout policy of placing commons by
//!   size next to the GAT (more objects in the 16-bit GP window);
//! * **GAT-reduction fixpoint** — one reduction round vs iterating until no
//!   further address load becomes nullifiable;
//! * **quadword alignment** — padding backward-branch targets to 8-byte
//!   boundaries during rescheduling (the paper found it *hurt* `ear`).
//!
//! ```text
//! cargo run --release -p om-bench --bin ablations [--bench NAME]...
//! ```

use om_core::{optimize_and_link_with, OmLevel, OmOptions};
use om_sim::run_timed;
use om_workloads::build::{build, CompileMode};
use om_workloads::spec;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut filter: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--bench" {
            i += 1;
            match args.get(i) {
                Some(name) if !name.is_empty() && !name.starts_with('-') => {
                    filter.push(name.clone());
                }
                _ => {
                    eprintln!("error: --bench needs a benchmark name");
                    std::process::exit(2);
                }
            }
        }
        i += 1;
    }
    let specs: Vec<_> = spec::all()
        .into_iter()
        .filter(|s| filter.is_empty() || filter.iter().any(|f| f == s.name))
        .collect();

    println!(
        "{:10} | {:>9} {:>9} | {:>8} {:>8} | {:>10} {:>10}",
        "bench", "nu(sort)", "nu(!sort)", "gat(fix)", "gat(1rd)", "cyc(align)", "cyc(!algn)"
    );
    println!("{}", "-".repeat(78));

    for s in &specs {
        let built = build(s, CompileMode::Each).unwrap();
        let run = |level: OmLevel, options: OmOptions| {
            let out =
                optimize_and_link_with(&built.objects, &built.libs, level, &options).unwrap();
            let (r, t) = run_timed(&out.image, 2_000_000_000).unwrap();
            (out.stats, r.result, t.cycles)
        };

        // Ablation 1: common sorting under OM-simple.
        let (sorted, res_a, _) = run(OmLevel::Simple, OmOptions::default());
        let (unsorted, res_b, _) = run(
            OmLevel::Simple,
            OmOptions { sort_commons: false, ..OmOptions::default() },
        );
        assert_eq!(res_a, res_b, "{}: sorting must not change results", s.name);

        // Ablation 2: GAT-reduction fixpoint vs a single round.
        let (fix, res_c, _) = run(OmLevel::Full, OmOptions::default());
        let (one, res_d, _) = run(
            OmLevel::Full,
            OmOptions { max_rounds: 1, ..OmOptions::default() },
        );
        assert_eq!(res_c, res_d, "{}: rounds must not change results", s.name);

        // Ablation 3: quadword alignment under rescheduling.
        let (_, res_e, cyc_align) = run(OmLevel::FullSched, OmOptions::default());
        let (_, res_f, cyc_noalign) = run(
            OmLevel::FullSched,
            OmOptions { align_backward_targets: false, ..OmOptions::default() },
        );
        assert_eq!(res_e, res_f, "{}: alignment must not change results", s.name);

        println!(
            "{:10} | {:>9} {:>9} | {:>8} {:>8} | {:>10} {:>10}",
            s.name,
            sorted.addr_loads_nullified,
            unsorted.addr_loads_nullified,
            fix.gat_slots_after,
            one.gat_slots_after,
            cyc_align,
            cyc_noalign,
        );
    }

    println!(
        "\nnu    = address loads nullified by OM-simple (with/without sorted commons)\n\
         gat   = GAT slots after OM-full (fixpoint vs one reduction round)\n\
         cyc   = cycles after OM-full w/sched (with/without quadword alignment)"
    );
}
