//! Regenerates the paper's figures and tables.
//!
//! Usage:
//!
//! ```text
//! reproduce [fig3] [fig4] [fig5] [fig6] [fig7] [gat] [pgo] [fleet] [passes]
//!           [scale] [all] [--quick] [--bench NAME]... [--jobs N] [--json PATH]
//! ```
//!
//! Benchmarks are built and measured on a worker pool (`--jobs`, default =
//! available parallelism); results are rendered in spec order, so stdout is
//! byte-identical at any width. `--json` additionally writes machine-
//! readable per-figure rows plus harness wall-clock and per-phase timings.

use om_bench::figures::{self, phase, Prepared, Selection};
use om_bench::fleet::{self, FleetConfig};
use om_bench::par::{default_jobs, parallel_map};
use om_bench::{json, render};
use om_workloads::spec;
use std::time::Instant;

const FIGURES: [&str; 10] =
    ["fig3", "fig4", "fig5", "fig6", "fig7", "gat", "pgo", "fleet", "passes", "scale"];

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: reproduce [fig3|fig4|fig5|fig6|fig7|gat|pgo|fleet|passes|scale|all] [--quick] \
         [--bench NAME]... [--jobs N] [--json PATH]"
    );
    std::process::exit(2);
}

fn main() {
    let t_start = Instant::now();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which: Vec<&str> = Vec::new();
    let mut quick = false;
    let mut filter: Vec<String> = Vec::new();
    let mut jobs = default_jobs();
    let mut json_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--bench" => {
                i += 1;
                match args.get(i) {
                    Some(name) if !name.is_empty() && !name.starts_with('-') => {
                        filter.push(name.clone());
                    }
                    _ => usage("--bench needs a benchmark name"),
                }
            }
            "--jobs" => {
                i += 1;
                jobs = match args.get(i).and_then(|s| s.parse::<usize>().ok()) {
                    Some(n) if n >= 1 => n,
                    _ => usage("--jobs needs a thread count >= 1"),
                };
            }
            "--json" => {
                i += 1;
                match args.get(i) {
                    Some(path) if !path.is_empty() => json_path = Some(path.clone()),
                    _ => usage("--json needs an output path"),
                }
            }
            "all" => {
                for fig in FIGURES {
                    if !which.contains(&fig) {
                        which.push(fig);
                    }
                }
            }
            f => match FIGURES.iter().find(|x| **x == f) {
                Some(fig) if !which.contains(fig) => which.push(fig),
                Some(_) => {}
                None => usage(&format!("unknown argument `{f}`")),
            },
        }
        i += 1;
    }
    if which.is_empty() {
        which.extend(FIGURES);
    }

    let specs: Vec<_> = spec::all()
        .into_iter()
        .filter(|s| filter.is_empty() || filter.iter().any(|f| f == s.name))
        .map(|s| if quick { spec::quick(&s) } else { s })
        .collect();
    if specs.is_empty() {
        eprintln!("no benchmarks match the filter");
        std::process::exit(2);
    }

    let sel = Selection {
        fig3: which.contains(&"fig3"),
        fig4: which.contains(&"fig4"),
        fig5: which.contains(&"fig5"),
        fig6: which.contains(&"fig6"),
        fig7: which.contains(&"fig7"),
        gat: which.contains(&"gat"),
        pgo: which.contains(&"pgo"),
        fleet: which.contains(&"fleet"),
        passes: which.contains(&"passes"),
        scale: which.contains(&"scale"),
    };

    // The scale figure measures its own synthetic programs; skip building
    // the 19 paper benchmarks when nothing else was asked for.
    let needs_specs = sel.fig3
        || sel.fig4
        || sel.fig5
        || sel.fig6
        || sel.fig7
        || sel.gat
        || sel.pgo
        || sel.fleet
        || sel.passes;
    let specs = if needs_specs { specs } else { Vec::new() };
    if needs_specs {
        eprintln!(
            "building {} benchmarks (both compile modes, {jobs} jobs)...",
            specs.len()
        );
    }
    let prepared: Vec<Prepared> = parallel_map(jobs, &specs, Prepared::new);

    if sel.fig6 {
        eprintln!("fig6: simulating 8 variants per benchmark...");
    }
    if sel.pgo {
        eprintln!("pgo: profiling + relinking + simulating the ninth variant...");
    }
    // Figure 7 measures pipeline wall-clock, so it runs sequentially after
    // the parallel pass — concurrent workers would contend and inflate it.
    let par_sel = Selection { fig7: false, fleet: false, scale: false, ..sel };
    let mut rows = parallel_map(jobs, &prepared, |p| figures::measure(p, par_sel));
    if sel.fig7 {
        for (r, p) in rows.iter_mut().zip(&prepared) {
            r.fig7 = Some(figures::fig7(p));
        }
    }
    if sel.fleet {
        // Like fig7: sequential across benchmarks (the storm is internally
        // parallel), so latency numbers are not inflated by contention.
        let cfg = if quick { FleetConfig::quick() } else { FleetConfig::full() };
        eprintln!("fleet: relink storm ({} edits x {} repeats, {} threads)...",
            cfg.edits, cfg.repeats, cfg.jobs);
        for (r, p) in rows.iter_mut().zip(&prepared) {
            r.fleet = Some(fleet::fleet(p, &cfg));
        }
    }
    if sel.scale && filter.is_empty() {
        // Scale points are whole synthetic programs of their own, appended
        // after the 19 paper benchmarks. Sequential like fig7: the link and
        // relink times on the curve are the measurement.
        for n in om_bench::scale::points(quick) {
            eprintln!("scale: measuring scale{n} ({n} modules, all oracles)...");
            rows.push(om_bench::scale::bench_rows(n));
        }
    }

    for w in &which {
        // Collect each figure's `(name, row)` pairs in spec order.
        macro_rules! rows_of {
            ($field:ident) => {
                rows.iter()
                    .filter_map(|r| r.$field.map(|x| (r.name.clone(), x)))
                    .collect::<Vec<_>>()
            };
        }
        match *w {
            "fig3" => println!("{}", render::fig3(&rows_of!(fig3))),
            "fig4" => println!("{}", render::fig4(&rows_of!(fig4))),
            "fig5" => println!("{}", render::fig5(&rows_of!(fig5))),
            "fig6" => println!("{}", render::fig6(&rows_of!(fig6))),
            "fig7" => println!("{}", render::fig7(&rows_of!(fig7))),
            "gat" => println!("{}", render::gat(&rows_of!(gat))),
            "pgo" => println!("{}", render::pgo(&rows_of!(pgo))),
            "fleet" => println!("{}", render::fleet(&rows_of!(fleet))),
            "passes" => println!("{}", render::passes(&rows_of!(passes))),
            "scale" => {
                let pairs: Vec<_> = rows
                    .iter()
                    .filter_map(|r| r.scale.map(|s| (r.name.clone(), (s, r.scaletime))))
                    .collect();
                if !pairs.is_empty() {
                    println!("{}", render::scale(&pairs));
                }
            }
            _ => unreachable!(),
        }
    }

    if let Some(path) = json_path {
        let report = json::report(
            &rows,
            quick,
            jobs,
            t_start.elapsed().as_secs_f64(),
            phase::totals(),
        );
        if let Err(e) = std::fs::write(&path, report) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }
}
