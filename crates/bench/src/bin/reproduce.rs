//! Regenerates the paper's figures and tables.
//!
//! Usage:
//!
//! ```text
//! reproduce [fig3] [fig4] [fig5] [fig6] [fig7] [gat] [all]
//!           [--quick] [--bench NAME]...
//! ```

use om_bench::figures::{self, Prepared};
use om_bench::render;
use om_workloads::spec;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which: Vec<&str> = Vec::new();
    let mut quick = false;
    let mut filter: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--bench" => {
                i += 1;
                filter.push(args.get(i).cloned().unwrap_or_default());
            }
            "all" => which.extend(["fig3", "fig4", "fig5", "fig6", "fig7", "gat"]),
            f @ ("fig3" | "fig4" | "fig5" | "fig6" | "fig7" | "gat") => which.push(match f {
                "fig3" => "fig3",
                "fig4" => "fig4",
                "fig5" => "fig5",
                "fig6" => "fig6",
                "fig7" => "fig7",
                _ => "gat",
            }),
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!("usage: reproduce [fig3|fig4|fig5|fig6|fig7|gat|all] [--quick] [--bench NAME]");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if which.is_empty() {
        which.extend(["fig3", "fig4", "fig5", "fig6", "fig7", "gat"]);
    }
    which.dedup();

    let specs: Vec<_> = spec::all()
        .into_iter()
        .filter(|s| filter.is_empty() || filter.iter().any(|f| f == s.name))
        .map(|s| if quick { spec::quick(&s) } else { s })
        .collect();
    if specs.is_empty() {
        eprintln!("no benchmarks match the filter");
        std::process::exit(2);
    }

    eprintln!("building {} benchmarks (both compile modes)...", specs.len());
    let prepared: Vec<Prepared> = specs.iter().map(Prepared::new).collect();

    for w in which {
        match w {
            "fig3" => {
                let rows: Vec<_> = prepared
                    .iter()
                    .map(|p| (p.spec.name.to_string(), figures::fig3(p)))
                    .collect();
                println!("{}", render::fig3(&rows));
            }
            "fig4" => {
                let rows: Vec<_> = prepared
                    .iter()
                    .map(|p| (p.spec.name.to_string(), figures::fig4(p)))
                    .collect();
                println!("{}", render::fig4(&rows));
            }
            "fig5" => {
                let rows: Vec<_> = prepared
                    .iter()
                    .map(|p| (p.spec.name.to_string(), figures::fig5(p)))
                    .collect();
                println!("{}", render::fig5(&rows));
            }
            "fig6" => {
                eprintln!("fig6: simulating 8 variants per benchmark...");
                let rows: Vec<_> = prepared
                    .iter()
                    .map(|p| {
                        eprintln!("  {}", p.spec.name);
                        (p.spec.name.to_string(), figures::fig6(p))
                    })
                    .collect();
                println!("{}", render::fig6(&rows));
            }
            "fig7" => {
                let rows: Vec<_> = prepared
                    .iter()
                    .map(|p| (p.spec.name.to_string(), figures::fig7(p)))
                    .collect();
                println!("{}", render::fig7(&rows));
            }
            "gat" => {
                let rows: Vec<_> = prepared
                    .iter()
                    .map(|p| (p.spec.name.to_string(), figures::gat(p)))
                    .collect();
                println!("{}", render::gat(&rows));
            }
            _ => unreachable!(),
        }
    }
}
