//! The CI-fleet benchmark: a relink storm against the `omd` link server.
//!
//! Models a continuous-integration fleet where every commit edits one
//! module and relinks: for each benchmark we fabricate `edits` single-module
//! editions of the compile-each build, then fire `edits × repeats` relink
//! requests at a shared [`LinkServer`] from `jobs` client threads. The
//! cache makes the workload cheap — each edition translates exactly one new
//! module and reuses every other translation — and the row reports how
//! cheap: per-module cache hit rate, link-cache hits, p50/p99 request
//! latency, and throughput.
//!
//! Correctness is non-negotiable: every served image must be byte-identical
//! to a fresh one-shot [`optimize_and_link_with`] run on the same objects.
//! The row records the outcome; `omfleet --smoke` (and `scripts/ci.sh`)
//! fail if it is ever false, or if the hit rate drops below the 80% floor.

use crate::figures::Prepared;
use crate::par::parallel_map;
use om_core::{optimize_and_link_with, OmLevel, OmOptions};
use om_objfile::Module;
use om_workloads::build::BuiltBenchmark;
use om_obs::Histogram;
use om_omd::LinkServer;
use std::time::Instant;

/// The `hit_rate` floor `omfleet --smoke` (and CI) enforce.
pub const HIT_RATE_FLOOR: f64 = 0.80;

/// Shape of the relink storm.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Distinct single-module editions to fabricate.
    pub edits: usize,
    /// Requests per edition (the first computes, the rest should hit).
    pub repeats: usize,
    /// Concurrent client threads.
    pub jobs: usize,
}

impl FleetConfig {
    /// The bounded smoke configuration (12 measured relinks per benchmark).
    pub fn quick() -> FleetConfig {
        FleetConfig { edits: 4, repeats: 3, jobs: 4 }
    }

    /// The full configuration reproduced by `omfleet` (50 measured relinks
    /// per benchmark).
    pub fn full() -> FleetConfig {
        FleetConfig { edits: 10, repeats: 5, jobs: 8 }
    }
}

/// One benchmark's fleet results. The counter fields are deterministic at
/// any `jobs` width (in-flight coalescing guarantees one miss per unique
/// key); the latency and throughput fields are wall-clock and report-only.
#[derive(Debug, Clone, Copy)]
pub struct FleetRow {
    /// Measured relink requests (`edits × repeats`).
    pub requests: usize,
    /// Client threads the requests were issued from.
    pub threads: usize,
    /// Modules per link after selection (user objects + library members).
    pub modules: usize,
    /// Module-translation cache hits across the measured requests.
    pub module_hits: u64,
    /// Module-translation cache misses (exactly one per edition).
    pub module_misses: u64,
    /// Whole-link cache hits (repeat requests for an edition).
    pub link_hits: u64,
    /// Whole-link cache misses (exactly one per edition).
    pub link_misses: u64,
    /// Per-module hit rate: `1 − module_misses / (requests × modules)`.
    /// A link-cache hit touches no module at all, so it counts as all
    /// `modules` lookups avoided.
    pub hit_rate: f64,
    /// Median request latency in microseconds, from the same
    /// [`om_obs::Histogram`] a serving `omd` reports in its stats reply —
    /// one quantile implementation for fleet and daemon alike.
    pub p50_us: u64,
    /// 99th-percentile request latency, microseconds (same histogram).
    pub p99_us: u64,
    /// Requests per wall-clock second across the storm.
    pub rps: f64,
    /// True iff every edition's served image matched a fresh one-shot
    /// pipeline run byte for byte.
    pub byte_identical: bool,
}

/// Edition `e`: the compile-each objects with a marker appended to one user
/// module's `.data`. The content hash changes (it is a different module),
/// the behavior does not (nothing references the appended bytes).
fn edition(objects: &[Module], e: usize) -> Vec<Module> {
    let mut objs = objects.to_vec();
    // objects[0] is crt0; rotate edits through the user modules.
    let idx = if objs.len() > 1 { 1 + e % (objs.len() - 1) } else { 0 };
    objs[idx].data.extend_from_slice(&[(e as u8).wrapping_add(1); 8]);
    objs
}

/// Runs the relink storm for one prepared benchmark.
///
/// # Panics
///
/// Panics if any relink fails — the editions are well-formed by
/// construction, so a failure is a pipeline or cache bug.
pub fn fleet(p: &Prepared, cfg: &FleetConfig) -> FleetRow {
    fleet_built(&p.each, cfg)
}

/// [`fleet`] on an arbitrary compile-each build — the entry point
/// `omfleet --scale` uses, since scale workloads have no [`Prepared`].
///
/// # Panics
///
/// See [`fleet`].
pub fn fleet_built(b: &BuiltBenchmark, cfg: &FleetConfig) -> FleetRow {
    let server = LinkServer::new(b.libs.to_vec());
    let level = OmLevel::FullSched;
    let options = OmOptions { verify: true, ..OmOptions::default() };
    let editions: Vec<Vec<Module>> = (0..cfg.edits).map(|e| edition(&b.objects, e)).collect();

    // Warm the server with the pristine program, exactly as a fleet's
    // steady state would be: its cold misses also measure the per-link
    // module count.
    server
        .link(&b.objects, level, &options)
        .unwrap_or_else(|e| panic!("{} fleet warmup: {e}", b.name));
    let modules = server.caches().modules.stats().misses as usize;
    let mod0 = server.caches().modules.stats();
    let link0 = server.caches().links.stats();

    // The storm: every edition, `repeats` times, interleaved so concurrent
    // clients race both fresh and repeated keys.
    let schedule: Vec<usize> =
        (0..cfg.repeats).flat_map(|_| 0..cfg.edits).collect();
    let t0 = Instant::now();
    let times: Vec<u64> = parallel_map(cfg.jobs, &schedule, |&e| {
        let t = Instant::now();
        server
            .link(&editions[e], level, &options)
            .unwrap_or_else(|err| panic!("{} fleet edition {e}: {err}", b.name));
        t.elapsed().as_micros() as u64
    });
    let wall = t0.elapsed().as_secs_f64().max(1e-9);

    let mod1 = server.caches().modules.stats();
    let link1 = server.caches().links.stats();
    let requests = schedule.len();
    let module_misses = mod1.misses - mod0.misses;
    let module_hits = mod1.hits - mod0.hits;
    let hit_rate = 1.0 - module_misses as f64 / (requests * modules.max(1)) as f64;

    // Byte-identity: every edition's cached image vs a fresh, cache-free
    // pipeline run of the same objects.
    let byte_identical = editions.iter().all(|objs| {
        let served = server
            .link(objs, level, &options)
            .expect("fleet identity relink")
            .output
            .image
            .to_bytes();
        let fresh = optimize_and_link_with(objs, &b.libs, level, &options)
            .expect("fleet identity one-shot")
            .image
            .to_bytes();
        served == fresh
    });

    // Quantiles via the shared log2 histogram (the implementation `omd`
    // serves in its stats reply), not a private sorted-vector percentile.
    let mut latency = Histogram::new();
    for &t in &times {
        latency.record(t);
    }
    FleetRow {
        requests,
        threads: cfg.jobs,
        modules,
        module_hits,
        module_misses,
        link_hits: link1.hits - link0.hits,
        link_misses: link1.misses - link0.misses,
        hit_rate,
        p50_us: latency.p50(),
        p99_us: latency.p99(),
        rps: requests as f64 / wall,
        byte_identical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_workloads::spec;

    #[test]
    fn fleet_counters_are_deterministic_and_identical() {
        let s = spec::quick(&spec::all()[0]);
        let p = Prepared::new(&s);
        let cfg = FleetConfig { edits: 3, repeats: 3, jobs: 4 };
        let row = fleet(&p, &cfg);
        assert_eq!(row.requests, 9);
        assert_eq!(row.module_misses, 3, "one new translation per edition");
        assert_eq!(row.link_misses, 3, "one whole-link compute per edition");
        assert_eq!(row.link_hits, 6, "every repeat is a link-cache hit");
        assert!(row.hit_rate >= HIT_RATE_FLOOR, "hit rate {}", row.hit_rate);
        assert!(row.byte_identical);
    }
}
