//! The `"fig":"scale"` figure: oracle-gated scaling curves over the
//! `--scale N` workload axis ([`om_workloads::scale`]).
//!
//! Every scale point is pushed through all three oracles before any number
//! is recorded — `om --verify`'s structural verifier (every mode × level
//! variant links with [`OmOptions::verify`] on), the checksum diff (every
//! variant's simulated result must equal the standard link's and the mini-C
//! interpreter's), and the interpreter differential itself — plus a fourth
//! at scale: the sampled simulator's functional results must be *exact*
//! against the full run, so sampling is a sound oracle at sizes where full
//! timing runs are impractical.
//!
//! The measured fields split into two row kinds so `scripts/bench.sh` can
//! gate one and not the other:
//!
//! * [`ScaleRow`] (`"fig":"scale"`) — bit-deterministic: GAT geometry,
//!   checksums, scenario-pack outcomes, cache-invalidation counts. Diffed
//!   against `BENCH_baseline.json` like fig3–fig5.
//! * [`ScaleTimeRow`] (`"fig":"scaletime"`) — wall-clock link and relink
//!   times (fig7 extended to the scaling curve). Report-only, like fig7.

use crate::figures::{phase, SIM_LIMIT};
use om_core::{
    optimize_and_link, optimize_and_link_cached, OmCaches, OmLevel, OmOptions, OmOutput,
};
use om_linker::{link_modules, LayoutOpts};
use om_sim::{run_sampled, run_timed_fast};
use om_workloads::build::{BuiltBenchmark, CompileMode};
use om_workloads::scale::{
    archive_pack, build_scale, interp_reference_scale, preemptible_entries, scale_spec,
    total_procs,
};
use std::sync::Arc;
use std::time::Instant;

/// Interpreter step budget for a scale point's reference run.
pub const INTERP_STEPS: u64 = 4_000_000_000;

/// Sampled-simulation interval (instructions per interval).
pub const SAMPLE_INTERVAL: u64 = 100_000;

/// The per-module hit-rate floor the scale fleet storm enforces: a single-
/// module edit at 1000 modules must invalidate O(1 module), i.e. reuse
/// ≥ 99% of translations.
pub const SCALE_HIT_RATE_FLOOR: f64 = 0.99;

/// The scale points `reproduce` measures.
pub fn points(quick: bool) -> Vec<usize> {
    if quick {
        vec![16, 64]
    } else {
        vec![16, 64, 256, 1000]
    }
}

/// Deterministic fields of one scale point (drift-gated).
#[derive(Debug, Clone, Copy)]
pub struct ScaleRow {
    /// User modules.
    pub n: usize,
    /// User procedures.
    pub procs: usize,
    /// Link inputs per mode (crt0 + user objects; compile-all is
    /// partitioned, so more than one merged unit).
    pub objects_each: usize,
    pub objects_all: usize,
    /// GAT geometry of the compile-each standard link.
    pub gat_entries_input: usize,
    pub gat_slots: usize,
    /// GP groups per mode — ≥ 2 at every point (the multi-GAT split).
    pub gp_groups_each: usize,
    pub gp_groups_all: usize,
    /// GAT slots surviving OM-full's reduction (compile-each).
    pub gat_slots_after_full: usize,
    /// GP resets surviving OM-full (compile-each): nonzero while the live
    /// pool still spans several groups.
    pub gp_resets_after_full: usize,
    /// The program checksum every oracle agreed on.
    pub checksum: i64,
    /// Instructions retired by the compile-each OM-full-sched run.
    pub insts: u64,
    /// (mode × level) variants that linked with verification on and matched
    /// the checksum (8 = 2 modes × 4 levels).
    pub verified_variants: usize,
    /// Shared-library pack: GP resets the preemptible image must keep.
    pub shared_gp_resets_kept: usize,
    /// Shared-library pack: the dynamic image computed the same checksum.
    pub shared_identical: bool,
    /// Archive pack: members the resolver pulled / total members offered.
    pub archive_members_live: usize,
    pub archive_members_total: usize,
    /// Archive pack: depth of the library-to-library call chain.
    pub archive_chain_depth: usize,
    /// Archive pack checksum (verified against its interpreter run).
    pub archive_checksum: i64,
    /// Relink cache: module translations recomputed after a single-module
    /// edit (must be exactly 1).
    pub edit_module_misses: u64,
    /// Relink cache: fraction of the edited relink served from cache.
    pub edit_hit_rate: f64,
    /// Sampled simulation returned bit-exact functional results.
    pub sampled_exact: bool,
}

/// Wall-clock fields of one scale point (report-only, like fig7).
#[derive(Debug, Clone, Copy)]
pub struct ScaleTimeRow {
    /// Standard (non-optimizing) link of the compile-each objects.
    pub standard_link: f64,
    /// Fresh OM-full-sched pipeline run.
    pub om_full_sched: f64,
    /// First (cold) relink through a fresh cache.
    pub relink_cold: f64,
    /// Relink after a single-module edit (warm cache).
    pub relink_edit: f64,
}

fn run_checksum(out: &OmOutput, what: &str) -> (i64, u64) {
    let t0 = Instant::now();
    let (r, _) = run_timed_fast(&out.image, SIM_LIMIT).unwrap_or_else(|e| panic!("{what}: {e}"));
    phase::add_sim(t0.elapsed());
    (r.result, r.insts)
}

/// Measures one scale point, running every oracle along the way.
///
/// # Panics
///
/// Panics if any oracle disagrees — a scale point that cannot be verified
/// must fail the harness, never record a row.
pub fn measure_scale(n: usize) -> (ScaleRow, ScaleTimeRow) {
    let spec = scale_spec(n);
    let expected = interp_reference_scale(&spec, INTERP_STEPS)
        .unwrap_or_else(|e| panic!("scale{n} interpreter reference: {e}"));

    let t0 = Instant::now();
    let each = build_scale(&spec, CompileMode::Each).expect("scale compile-each");
    let all = build_scale(&spec, CompileMode::All).expect("scale compile-all");
    phase::add_build(t0.elapsed());

    // Standard link, timed, and the checksum diff against the interpreter.
    let t0 = Instant::now();
    let (std_image, std_stats) =
        link_modules(&each.objects, &each.libs, &LayoutOpts::default())
            .unwrap_or_else(|e| panic!("scale{n} standard link: {e}"));
    let standard_link = t0.elapsed().as_secs_f64();
    let std_result = {
        let t0 = Instant::now();
        let (r, _) = run_timed_fast(&std_image, SIM_LIMIT)
            .unwrap_or_else(|e| panic!("scale{n} standard run: {e}"));
        phase::add_sim(t0.elapsed());
        r.result
    };
    assert_eq!(std_result, expected, "scale{n}: standard link vs interpreter");
    let all_gp_groups = link_modules(&all.objects, &all.libs, &LayoutOpts::default())
        .unwrap_or_else(|e| panic!("scale{n} compile-all standard link: {e}"))
        .1
        .gp_groups;

    // Every (mode × level) variant with om --verify's machinery on, each
    // checksum-diffed against the interpreter.
    let verify_opts = OmOptions { verify: true, ..OmOptions::default() };
    let mut verified_variants = 0;
    let mut full_each: Option<Arc<OmOutput>> = None;
    let mut sched_each: Option<Arc<OmOutput>> = None;
    let mut insts = 0;
    let mut om_full_sched = 0.0;
    for (b, mode) in [(&each, CompileMode::Each), (&all, CompileMode::All)] {
        for level in OmLevel::ALL {
            let t0 = Instant::now();
            let out = om_core::optimize_and_link_with(&b.objects, &b.libs, level, &verify_opts)
                .unwrap_or_else(|e| panic!("scale{n} {} {}: {e}", mode.name(), level.name()));
            let dt = t0.elapsed().as_secs_f64();
            phase::add_om(t0.elapsed());
            assert!(out.verify.is_some(), "scale{n}: verification report missing");
            let (r, i) = run_checksum(&out, &format!("scale{n} {} {}", mode.name(), level.name()));
            assert_eq!(r, expected, "scale{n} {} {} checksum", mode.name(), level.name());
            verified_variants += 1;
            if mode == CompileMode::Each {
                match level {
                    OmLevel::Full => full_each = Some(Arc::new(out)),
                    OmLevel::FullSched => {
                        insts = i;
                        om_full_sched = dt;
                        sched_each = Some(Arc::new(out));
                    }
                    _ => {}
                }
            }
        }
    }
    let full_each = full_each.expect("OmLevel::ALL covers Full");
    let sched_each = sched_each.expect("OmLevel::ALL covers FullSched");

    // Sampled-simulation oracle: functional fields must be exact.
    let sampled_exact = {
        let t0 = Instant::now();
        let (full_run, _) = run_timed_fast(&sched_each.image, SIM_LIMIT)
            .unwrap_or_else(|e| panic!("scale{n} full run: {e}"));
        let (sampled, report) = run_sampled(&sched_each.image, SIM_LIMIT, SAMPLE_INTERVAL)
            .unwrap_or_else(|e| panic!("scale{n} sampled run: {e}"));
        phase::add_sim(t0.elapsed());
        assert!(report.intervals >= 1);
        let exact = sampled.result == full_run.result
            && sampled.insts == full_run.insts
            && sampled.output == full_run.output;
        assert!(exact, "scale{n}: sampled functional results must be exact");
        exact
    };

    // Shared-library pack: the same program as a dynamic image, every
    // sixteenth entry preemptible. Conservative conventions must survive
    // for those entries and the checksum must not move.
    let shared = {
        let opts = OmOptions {
            preemptible: preemptible_entries(&spec),
            verify: true,
            ..OmOptions::default()
        };
        let t0 = Instant::now();
        let out = om_core::optimize_and_link_with(&each.objects, &each.libs, OmLevel::Full, &opts)
            .unwrap_or_else(|e| panic!("scale{n} shared-library pack: {e}"));
        phase::add_om(t0.elapsed());
        let (r, _) = run_checksum(&out, &format!("scale{n} shared-library pack"));
        assert_eq!(r, expected, "scale{n}: dynamic image checksum");
        assert!(
            out.stats.calls_gp_reset_after >= full_each.stats.calls_gp_reset_after,
            "scale{n}: preemptible entries must not lose conservative call code"
        );
        (out.stats.calls_gp_reset_after, r == expected)
    };

    // Archive pack: deep library-to-library chains, demand-driven selection.
    let archive = {
        let members_per = (n / 16).clamp(4, 14);
        let pack = archive_pack(4, members_per, 3).expect("archive pack build");
        let expected = pack
            .expected(INTERP_STEPS)
            .unwrap_or_else(|e| panic!("scale{n} archive-pack interpreter: {e}"));
        let t0 = Instant::now();
        let out =
            om_core::optimize_and_link_with(&pack.objects, &pack.libs, OmLevel::Full, &verify_opts)
                .unwrap_or_else(|e| panic!("scale{n} archive pack: {e}"));
        phase::add_om(t0.elapsed());
        let live = out.link.modules - pack.objects.len();
        assert_eq!(live, pack.live_members, "scale{n}: archive selection must be demand-driven");
        let (r, _) = run_checksum(&out, &format!("scale{n} archive pack"));
        assert_eq!(r, expected, "scale{n}: archive-pack checksum");
        (live, pack.total_members, pack.chain_depth, r)
    };

    // Relink cache at scale: cold fill, then a single-module edit. The
    // cache is fresh and private so the counters are deterministic.
    let caches = OmCaches::new(2 * std_stats.modules + 64, 8);
    let t0 = Instant::now();
    let (cold, _) = optimize_and_link_cached(
        &each.objects,
        &each.libs,
        OmLevel::FullSched,
        &verify_opts,
        &caches,
    )
    .unwrap_or_else(|e| panic!("scale{n} cold relink: {e}"));
    let relink_cold = t0.elapsed().as_secs_f64();
    phase::add_om(t0.elapsed());
    let m0 = caches.modules.stats();
    let mut edited = each.objects.clone();
    let idx = edited.len() / 2;
    edited[idx].data.extend_from_slice(&[7; 8]);
    let t0 = Instant::now();
    let (warm, _) = optimize_and_link_cached(
        &edited,
        &each.libs,
        OmLevel::FullSched,
        &verify_opts,
        &caches,
    )
    .unwrap_or_else(|e| panic!("scale{n} edited relink: {e}"));
    let relink_edit = t0.elapsed().as_secs_f64();
    phase::add_om(t0.elapsed());
    let m1 = caches.modules.stats();
    let edit_module_misses = m1.misses - m0.misses;
    let edit_hits = m1.hits - m0.hits;
    assert_eq!(edit_module_misses, 1, "scale{n}: one edit must recompute one module");
    let edit_hit_rate = edit_hits as f64 / (edit_hits + edit_module_misses).max(1) as f64;
    assert!(
        cold.image.to_bytes() != warm.image.to_bytes(),
        "scale{n}: the edited relink must serve the edited image, not the cached one"
    );

    let row = ScaleRow {
        n,
        procs: total_procs(&spec),
        objects_each: each.objects.len(),
        objects_all: all.objects.len(),
        gat_entries_input: std_stats.gat_entries_input,
        gat_slots: std_stats.gat_slots,
        gp_groups_each: std_stats.gp_groups,
        gp_groups_all: all_gp_groups,
        gat_slots_after_full: full_each.stats.gat_slots_after,
        gp_resets_after_full: full_each.stats.calls_gp_reset_after,
        checksum: expected,
        insts,
        verified_variants,
        shared_gp_resets_kept: shared.0,
        shared_identical: shared.1,
        archive_members_live: archive.0,
        archive_members_total: archive.1,
        archive_chain_depth: archive.2,
        archive_checksum: archive.3,
        edit_module_misses,
        edit_hit_rate,
        sampled_exact,
    };
    assert!(row.gp_groups_each >= 2, "scale{n}: compile-each must split GAT groups");
    assert!(row.gp_groups_all >= 2, "scale{n}: compile-all must split GAT groups");
    let times = ScaleTimeRow { standard_link, om_full_sched, relink_cold, relink_edit };
    (row, times)
}

/// A [`crate::figures::BenchRows`] carrying only this scale point (the 19
/// paper benchmarks leave both scale fields `None`).
pub fn bench_rows(n: usize) -> crate::figures::BenchRows {
    let (row, times) = measure_scale(n);
    crate::figures::BenchRows {
        name: format!("scale{n}"),
        fig3: None,
        fig4: None,
        fig5: None,
        fig6: None,
        fig7: None,
        gat: None,
        pgo: None,
        fleet: None,
        passes: None,
        scale: Some(row),
        scaletime: Some(times),
        sim_seconds: 0.0,
    }
}

/// Helper for `omfleet --scale`: the compile-each build of a scale point.
pub fn built_each(n: usize) -> BuiltBenchmark {
    build_scale(&scale_spec(n), CompileMode::Each).expect("scale compile-each")
}

/// Sanity used by `omfleet --scale`: relinks a scale build through a
/// deliberately tiny cache and checks the eviction bound — the cache never
/// holds more than its capacity, evicts under pressure, and still serves a
/// byte-identical image.
///
/// # Panics
///
/// Panics if the bound or byte-identity is violated.
pub fn eviction_smoke(b: &BuiltBenchmark, module_cap: usize) {
    let caches = OmCaches::new(module_cap, 2);
    let opts = OmOptions { verify: true, ..OmOptions::default() };
    let (out, _) =
        optimize_and_link_cached(&b.objects, &b.libs, OmLevel::Full, &opts, &caches)
            .expect("eviction smoke relink");
    let stats = caches.modules.stats();
    assert!(
        caches.modules.len() <= module_cap,
        "module cache exceeded its bound: {} > {module_cap}",
        caches.modules.len()
    );
    assert!(stats.evictions > 0, "a scale build must overflow a {module_cap}-entry cache");
    let fresh = optimize_and_link(&b.objects, &b.libs, OmLevel::Full)
        .expect("eviction smoke one-shot");
    assert_eq!(
        out.image.to_bytes(),
        fresh.image.to_bytes(),
        "evictions must never change the served image"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_points_are_bounded() {
        assert_eq!(points(true), vec![16, 64]);
        assert!(points(false).contains(&1000));
    }
}
