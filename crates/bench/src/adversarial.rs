//! Adversarial scenario pack: a structured corpus of inputs built to sit on
//! the pipeline's limits, run by `omfuzz --adversarial` and `scripts/ci.sh`.
//!
//! Two families, two oracles:
//!
//! * **Source cases** are hand-shaped mini-C programs (huge displacement
//!   spans that overflow GP-relative reach, pathological common-symbol
//!   declaration orders, section sizes straddling the addressing window).
//!   They run the full differential oracle: every `(compile mode × OM
//!   level)` variant links with [`OmOptions::verify`] and must reproduce
//!   the mini-C interpreter's checksum bit-for-bit.
//! * **Object cases** are raw modules past (or exactly on) a hard limit —
//!   near-`i32::MAX` sections, `u64`-wrapping size sums, single-module GAT
//!   overflow. The oracle is *typed failure*: the standard linker must
//!   return [`LinkError::Range`] (or link fine on the boundary), never
//!   panic — a long-running `omd` cannot afford to abort on one bad
//!   request.
//!
//! Unlike the random stream in [`crate::fuzz`], every case here is
//! deterministic by construction, so a regression names the scenario that
//! broke rather than a seed to re-derive.
//!
//! [`OmOptions::verify`]: om_core::pipeline::OmOptions

use om_core::{optimize_and_link_with, OmLevel, OmOptions};
use om_linker::{link_modules, LayoutOpts, LinkError, GAT_GROUP_CAPACITY};
use om_objfile::{LitaEntry, Module, Reloc, RelocKind, SecId, SymId, Symbol};
use om_sim::run_timed_fast;
use om_workloads::stdlib::STDLIB_SOURCES;
use om_workloads::{pad_gat, stdlib_libs, CompileMode};
use std::fmt::Write as _;

/// Interpreter step budget per source case (the programs are tiny loops
/// over huge *data*, so execution stays short).
pub const INTERP_STEPS: u64 = 80_000_000;
/// Simulator instruction budget per variant.
pub const SIM_STEPS: u64 = 120_000_000;

/// What a case feeds the pipeline and what it expects back.
pub enum CaseKind {
    /// Mini-C sources through the full differential oracle (all compile
    /// modes × OM levels, verification on, checksum vs the interpreter).
    Source(Vec<(String, String)>),
    /// Raw modules the standard linker must reject with
    /// [`LinkError::Range`].
    RangeObjects(Vec<Module>),
    /// Raw modules sitting exactly on a limit that must still link.
    BoundaryObjects(Vec<Module>),
}

/// One corpus entry.
pub struct Case {
    pub name: &'static str,
    /// What limit the case leans on, for the report line.
    pub detail: &'static str,
    pub kind: CaseKind,
}

/// The structural skeleton the object cases corrupt: `__start` plus one
/// GAT-addressed global (mirrors the standalone program the linker's own
/// malformed-input tests use).
fn seed_module(name: &str) -> Module {
    let mut m = Module::new(name);
    m.text = vec![0; 16];
    m.data = vec![0; 16];
    m.symbols.push(Symbol::proc("__start", 0, 16, 0));
    m.symbols.push(Symbol::data(&format!("{name}_g"), SecId::Data, 0, 8));
    m.lita.push(LitaEntry { sym: SymId(1), addend: 0 });
    m.relocs.push(Reloc::text(0, RelocKind::Literal { lita: 0 }));
    m
}

/// A module like [`seed_module`] but with no `__start` and no text — a pure
/// data contributor for multi-module object cases.
fn data_module(name: &str) -> Module {
    let mut m = Module::new(name);
    m.data = vec![0; 16];
    m.symbols.push(Symbol::data(&format!("{name}_g"), SecId::Data, 0, 8));
    m
}

/// Source case 1: globals whose combined span dwarfs GP-relative reach.
/// Two 1 MiB arrays push the scalars declared around them far past a
/// 16-bit displacement, so every access pattern (short GP window, literal
/// slot, re-derived base) must agree with the interpreter.
fn huge_span_sources() -> Vec<(String, String)> {
    let module = "\
int span_lo;
int span_big0[262144];
int span_big1[262144];
int span_hi;

int adv_span_entry(int i, int t) {
  span_lo = span_lo + i * 3 + 1;
  span_big0[(i * 7) & 262143] = t ^ span_lo;
  span_big1[(t + i) & 262143] = span_big0[(i * 7) & 262143] + i;
  span_hi = span_hi ^ span_big1[(t + i) & 262143];
  return span_lo + span_hi;
}
";
    vec![
        ("adv_span".to_string(), module.to_string()),
        ("adv_span_main".to_string(), driver(&["adv_span_entry"], 6)),
    ]
}

/// Source case 2: common symbols declared in the worst order for the
/// sorter — sizes alternating 4 KiB / 8 B and equal-size runs in reverse
/// name order, mirrored across two modules. Both the sorted and unsorted
/// layouts must produce the same checksum.
fn common_order_sources() -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut entries = Vec::new();
    for (mi, tag) in ["a", "b"].iter().enumerate() {
        let mut src = String::new();
        for k in (0..12usize).rev() {
            // Reverse declaration order; big commons interleaved with
            // single-word ones so naive first-seen placement scatters the
            // small data the sorter is supposed to pack.
            if (k + mi) % 2 == 0 {
                let _ = writeln!(src, "int cm{tag}_big{k}[1024];");
                let _ = writeln!(src, "int cm{tag}_tiny{k};");
            } else {
                let _ = writeln!(src, "int cm{tag}_tiny{k};");
                let _ = writeln!(src, "int cm{tag}_big{k}[1024];");
            }
        }
        let entry = format!("adv_cm_{tag}");
        let _ = writeln!(src, "\nint {entry}(int i, int t) {{");
        for k in 0..12usize {
            let _ = writeln!(src, "  cm{tag}_big{k}[(i + {k}) & 1023] = t + {k};");
            let _ = writeln!(src, "  cm{tag}_tiny{k} = cm{tag}_tiny{k} + cm{tag}_big{k}[(i + {k}) & 1023];");
            let _ = writeln!(src, "  t = t ^ cm{tag}_tiny{k};");
        }
        src.push_str("  return t;\n}\n");
        out.push((format!("adv_cm_{tag}_mod"), src));
        entries.push(entry);
    }
    let refs: Vec<&str> = entries.iter().map(|s| s.as_str()).collect();
    out.push(("adv_cm_main".to_string(), driver(&refs, 5)));
    out
}

/// Source case 3: a block of small data sized right at the 16-bit GP
/// window, so some scalars land just inside short reach and the rest just
/// outside — the boundary the displacement re-writer has to get exact.
fn near_window_sources() -> Vec<(String, String)> {
    let mut src = String::new();
    src.push_str("int win_front;\n");
    // 8192 ints = 64 KiB: alone it exceeds the ±32 KiB short window.
    src.push_str("int win_pad[8192];\n");
    for g in 0..8 {
        let _ = writeln!(src, "int win_back{g};");
    }
    src.push_str("\nint adv_win_entry(int i, int t) {\n");
    src.push_str("  win_front = win_front + i + 1;\n");
    src.push_str("  win_pad[(t * 5 + i) & 8191] = win_front ^ t;\n");
    for g in 0..8 {
        let _ = writeln!(src, "  win_back{g} = win_back{g} + win_pad[(i + {g}) & 8191] + {g};");
        let _ = writeln!(src, "  t = t ^ win_back{g};");
    }
    src.push_str("  return t + win_front;\n}\n");
    vec![
        ("adv_win".to_string(), src),
        ("adv_win_main".to_string(), driver(&["adv_win_entry"], 6)),
    ]
}

/// A checksumming `main` that drives each entry `iters` times.
fn driver(entries: &[&str], iters: u64) -> String {
    let mut src = String::new();
    src.push_str("extern int cksum_reset();\nextern int cksum_add(int);\nextern int cksum_get();\n");
    for e in entries {
        let _ = writeln!(src, "extern int {e}(int, int);");
    }
    src.push_str("\nint main() {\n  cksum_reset();\n  int t = 1;\n  int i = 0;\n");
    let _ = writeln!(src, "  for (i = 0; i < {iters}; i = i + 1) {{");
    for (k, e) in entries.iter().enumerate() {
        let _ = writeln!(src, "    t = t + {e}(i + {k}, t & 0xFFFF);");
    }
    src.push_str("    cksum_add(t);\n  }\n  return cksum_get() ^ (t & 0xFFFF);\n}\n");
    src
}

/// The full corpus, in a stable order.
pub fn corpus() -> Vec<Case> {
    let mut cases = vec![
        Case {
            name: "huge-displacement-span",
            detail: "two 1 MiB arrays push scalars past GP-relative reach",
            kind: CaseKind::Source(huge_span_sources()),
        },
        Case {
            name: "pathological-common-order",
            detail: "alternating 4 KiB/8 B commons declared in reverse name order",
            kind: CaseKind::Source(common_order_sources()),
        },
        Case {
            name: "near-window-small-data",
            detail: "64 KiB block straddles the 16-bit GP displacement window",
            kind: CaseKind::Source(near_window_sources()),
        },
    ];

    let mut near_max = seed_module("advo_nearmax");
    near_max.bss_size = i32::MAX as u64;
    cases.push(Case {
        name: "near-i32-max-section",
        detail: "a .bss alone filling the 31-bit data span must be a typed Range error",
        kind: CaseKind::RangeObjects(vec![near_max]),
    });

    let mut wrap_a = seed_module("advo_wrap_a");
    wrap_a.bss_size = u64::MAX - 64;
    let mut wrap_b = data_module("advo_wrap_b");
    wrap_b.bss_size = 128;
    cases.push(Case {
        name: "u64-wrapping-sections",
        detail: "section sizes whose sum wraps u64 must not lay out overlapping",
        kind: CaseKind::RangeObjects(vec![wrap_a, wrap_b]),
    });

    let mut gat_over = seed_module("advo_gatover");
    pad_gat(&mut gat_over, GAT_GROUP_CAPACITY + 1, "advo");
    cases.push(Case {
        name: "single-module-gat-overflow",
        detail: "one module with more unique slots than a GP group can never split",
        kind: CaseKind::RangeObjects(vec![gat_over]),
    });

    let mut gat_edge = seed_module("advo_gatedge");
    // The seed module already owns one slot; this fills the group exactly.
    pad_gat(&mut gat_edge, GAT_GROUP_CAPACITY - 1, "adve");
    cases.push(Case {
        name: "exact-gat-capacity-boundary",
        detail: "exactly GAT_GROUP_CAPACITY unique slots still fills one legal group",
        kind: CaseKind::BoundaryObjects(vec![gat_edge]),
    });

    cases
}

/// Runs one case against its oracle. `Ok` carries a one-line summary of
/// what was checked; `Err` carries the first divergence.
pub fn run_case(case: &Case) -> Result<String, String> {
    match &case.kind {
        CaseKind::Source(sources) => run_source_case(sources),
        CaseKind::RangeObjects(objects) => {
            match link_modules(objects, &[], &LayoutOpts::default()) {
                Err(e @ LinkError::Range { .. }) => {
                    Ok(format!("typed Range error as required: {e}"))
                }
                Err(other) => Err(format!("wrong error kind: {other}")),
                Ok(_) => Err("linked cleanly where a Range error was required".to_string()),
            }
        }
        CaseKind::BoundaryObjects(objects) => {
            match link_modules(objects, &[], &LayoutOpts::default()) {
                Ok(_) => Ok("boundary input linked cleanly".to_string()),
                Err(e) => Err(format!("boundary input must link, got: {e}")),
            }
        }
    }
}

/// The differential oracle for a source case: interpreter reference, then
/// every `(compile mode × OM level)` variant with verification on.
fn run_source_case(sources: &[(String, String)]) -> Result<String, String> {
    let mut all: Vec<(String, String)> = sources.to_vec();
    for (n, s) in STDLIB_SOURCES {
        all.push((n.to_string(), s.to_string()));
    }
    let refs: Vec<(&str, &str)> = all.iter().map(|(n, s)| (n.as_str(), s.as_str())).collect();
    let reference = om_minic::interp::run_sources(&refs, INTERP_STEPS)
        .map_err(|e| format!("interpreter reference: {e}"))?;

    let libs = stdlib_libs().map_err(|e| format!("stdlib: {e}"))?;
    let opts = OmOptions { verify: true, ..OmOptions::default() };
    let copts = om_codegen::CompileOpts::o2();
    let mut variants = 0usize;
    for mode in CompileMode::ALL {
        let mut objects =
            vec![om_codegen::crt0::module().map_err(|e| format!("crt0: {e}"))?];
        match mode {
            CompileMode::Each => {
                for (n, s) in sources {
                    objects.push(
                        om_codegen::compile_source(n, s, &copts)
                            .map_err(|e| format!("compile {n}: {e}"))?,
                    );
                }
            }
            CompileMode::All => {
                let srefs: Vec<(&str, &str)> =
                    sources.iter().map(|(n, s)| (n.as_str(), s.as_str())).collect();
                objects.push(
                    om_codegen::compile_all_sources("adv_all", &srefs, &copts)
                        .map_err(|e| format!("compile-all: {e}"))?,
                );
            }
        }
        for level in OmLevel::ALL {
            let variant = format!("{} × {}", mode.name(), level.name());
            let out = optimize_and_link_with(&objects, &libs, level, &opts)
                .map_err(|e| format!("{variant}: link/verify: {e}"))?;
            if out.verify.is_none() {
                return Err(format!("{variant}: verification did not run"));
            }
            let (r, _) = run_timed_fast(&out.image, SIM_STEPS)
                .map_err(|e| format!("{variant}: simulator: {e}"))?;
            if r.result != reference {
                return Err(format!(
                    "{variant}: checksum {} != reference {reference}",
                    r.result
                ));
            }
            variants += 1;
        }
    }
    Ok(format!("{variants} verified variants match checksum {reference}"))
}

/// Runs the whole corpus, reporting each case through `report`. A panic in
/// a case counts as a failure (the oracle is "typed error, never panic").
/// Returns the failure count.
pub fn run_all(mut report: impl FnMut(&str, &str, &Result<String, String>)) -> usize {
    let mut failures = 0;
    for case in corpus() {
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_case(&case)))
            .unwrap_or_else(|p| {
                let msg = p
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "opaque panic payload".to_string());
                Err(format!("PANICKED: {msg}"))
            });
        if outcome.is_err() {
            failures += 1;
        }
        report(case.name, case.detail, &outcome);
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_stable_and_named() {
        let c = corpus();
        assert!(c.len() >= 7, "corpus shrank to {}", c.len());
        let names: Vec<&str> = c.iter().map(|k| k.name).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate case names");
    }

    #[test]
    fn object_cases_hit_their_typed_oracles() {
        // The object-level half is cheap enough for debug CI; the source
        // cases run in release via `omfuzz --adversarial`.
        for case in corpus() {
            match case.kind {
                CaseKind::Source(_) => continue,
                _ => run_case(&case).unwrap_or_else(|e| panic!("{}: {e}", case.name)),
            };
        }
    }
}
