//! Evaluation harness: regenerates every table and figure of the paper's §5
//! over the synthetic SPEC92 suite.
//!
//! Run the full reproduction with:
//!
//! ```text
//! cargo run --release -p om-bench --bin reproduce -- all
//! ```
//!
//! or individual artifacts (`fig3 fig4 fig5 fig6 fig7 gat`), optionally with
//! `--quick` (fewer loop iterations) and `--bench <name>` filters. Criterion
//! benches (`cargo bench -p om-bench`) time the build pipeline itself — the
//! paper's Figure 7 comparison — under a measurement harness.

pub mod figures;
pub mod render;

pub use figures::{fig3, fig4, fig5, fig6, fig7, gat, Prepared};
