//! Evaluation harness: regenerates every table and figure of the paper's §5
//! over the synthetic SPEC92 suite.
//!
//! Run the full reproduction with:
//!
//! ```text
//! cargo run --release -p om-bench --bin reproduce -- all
//! ```
//!
//! or individual artifacts (`fig3 fig4 fig5 fig6 fig7 gat`), optionally with
//! `--quick` (fewer loop iterations), `--bench <name>` filters, `--jobs N`
//! (worker threads; defaults to the machine's parallelism), and
//! `--json PATH` (machine-readable rows plus timings). Micro-benches
//! (`cargo bench -p om-bench`) time the build pipeline itself — the paper's
//! Figure 7 comparison — under a measurement harness.
//!
//! The harness is parallel and duplicate-work-free: benchmarks build and
//! measure on a scoped worker pool ([`par::parallel_map`]), and
//! [`figures::Prepared`] memoizes each `(mode, level)` pipeline run so
//! overlapping figures share it. Output is collected in spec order, so it is
//! byte-identical at any `--jobs` width.

pub mod adversarial;
pub mod figures;
pub mod fleet;
pub mod fuzz;
pub mod json;
pub mod mutate;
pub mod par;
pub mod render;
pub mod scale;

pub use figures::{fig3, fig4, fig5, fig6, fig7, gat, Prepared};
pub use par::{default_jobs, parallel_map};
