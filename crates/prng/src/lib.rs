//! A minimal, deterministic pseudo-random number generator.
//!
//! The workspace builds in offline environments, so it cannot pull the
//! `rand` crate from a registry. Everything that needs randomness here needs
//! *reproducible* randomness — workload generation and property tests — so a
//! small, well-known generator is sufficient and preferable: the stream is
//! part of the repo's deterministic behavior, not an implementation detail
//! of an external crate.
//!
//! The core is xoshiro256++ (Blackman & Vigna), seeded through SplitMix64
//! exactly as the reference implementation recommends. The API mirrors the
//! subset of `rand` the workspace used (`seed_from_u64`, `gen_range`,
//! `gen_bool`) so call sites read the same.

/// Deterministic generator with a 256-bit state (xoshiro256++).
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Seeds the full state from one `u64` via SplitMix64, as the xoshiro
    /// authors specify for small seeds.
    pub fn seed_from_u64(seed: u64) -> StdRng {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng { s: [next(), next(), next(), next()] }
    }

    /// The raw 64-bit output function.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform value in `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T: UniformInt>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample(self, range)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        // 53 uniform mantissa bits, the usual float-in-[0,1) construction.
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

/// Integer types `gen_range` can sample uniformly.
pub trait UniformInt: Copy {
    fn sample(rng: &mut StdRng, range: std::ops::Range<Self>) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample(rng: &mut StdRng, range: std::ops::Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range on empty range");
                // Width fits in u64 for every supported type (i128/u128 are
                // deliberately unsupported). Modulo bias is ~2^-64 per draw
                // for the small widths used here — irrelevant for workload
                // generation and tests, where determinism is what matters.
                let width = (range.end as i128 - range.start as i128) as u64;
                let off = rng.next_u64() % width;
                (range.start as i128 + off as i128) as $t
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            let v = rng.gen_range(0..6usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");

        for _ in 0..1000 {
            let v = rng.gen_range(-8i32..8);
            assert!((-8..8).contains(&v));
        }
        let v = rng.gen_range(5u64..6);
        assert_eq!(v, 5);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "{hits}");
        assert!(!StdRng::seed_from_u64(1).gen_bool(0.0));
        assert!(StdRng::seed_from_u64(1).gen_bool(1.0));
    }
}
