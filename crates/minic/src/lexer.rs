//! Lexer for mini-C.

use crate::error::CompileError;
use crate::token::{Spanned, Token};

/// Tokenizes `src`, attaching 1-based line numbers.
///
/// # Errors
///
/// Returns [`CompileError::Lex`] on unrecognized characters or malformed
/// numeric literals.
pub fn lex(src: &str) -> Result<Vec<Spanned>, CompileError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line: u32 = 1;

    let err = |line: u32, what: String| CompileError::Lex { line, what };

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                let start_line = line;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(err(start_line, "unterminated block comment".into()));
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &src[start..i];
                let tok = Token::keyword(word).unwrap_or_else(|| Token::Ident(word.to_string()));
                out.push(Spanned { tok, line });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let is_float = i < bytes.len()
                    && bytes[i] == b'.'
                    && bytes.get(i + 1).is_some_and(u8::is_ascii_digit);
                if is_float {
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    // Optional exponent.
                    if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                        let mut j = i + 1;
                        if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                            j += 1;
                        }
                        if j < bytes.len() && bytes[j].is_ascii_digit() {
                            i = j;
                            while i < bytes.len() && bytes[i].is_ascii_digit() {
                                i += 1;
                            }
                        }
                    }
                    let text = &src[start..i];
                    let v: f64 = text
                        .parse()
                        .map_err(|_| err(line, format!("bad float literal `{text}`")))?;
                    out.push(Spanned { tok: Token::FloatLit(v), line });
                } else if i < bytes.len() && bytes[i] == b'x' && &src[start..i] == "0" {
                    i += 1;
                    let hstart = i;
                    while i < bytes.len() && bytes[i].is_ascii_hexdigit() {
                        i += 1;
                    }
                    if hstart == i {
                        return Err(err(line, "empty hex literal".into()));
                    }
                    // Hex literals are bit patterns: accept the full 64-bit
                    // range, wrapping into i64 (C-style).
                    let v = u64::from_str_radix(&src[hstart..i], 16)
                        .map_err(|_| err(line, "hex literal overflows 64 bits".into()))?;
                    out.push(Spanned { tok: Token::IntLit(v as i64), line });
                } else {
                    let text = &src[start..i];
                    let v: i64 = text
                        .parse()
                        .map_err(|_| err(line, format!("int literal `{text}` overflows i64")))?;
                    out.push(Spanned { tok: Token::IntLit(v), line });
                }
            }
            _ => {
                let two = |a: u8, b: u8| i + 1 < bytes.len() && bytes[i] == a && bytes[i + 1] == b;
                let (tok, len) = if two(b'<', b'<') {
                    (Token::Shl, 2)
                } else if two(b'>', b'>') {
                    (Token::Shr, 2)
                } else if two(b'<', b'=') {
                    (Token::Le, 2)
                } else if two(b'>', b'=') {
                    (Token::Ge, 2)
                } else if two(b'=', b'=') {
                    (Token::EqEq, 2)
                } else if two(b'!', b'=') {
                    (Token::Ne, 2)
                } else if two(b'&', b'&') {
                    (Token::AndAnd, 2)
                } else if two(b'|', b'|') {
                    (Token::OrOr, 2)
                } else {
                    let t = match c {
                        '(' => Token::LParen,
                        ')' => Token::RParen,
                        '{' => Token::LBrace,
                        '}' => Token::RBrace,
                        '[' => Token::LBracket,
                        ']' => Token::RBracket,
                        ',' => Token::Comma,
                        ';' => Token::Semi,
                        '+' => Token::Plus,
                        '-' => Token::Minus,
                        '*' => Token::Star,
                        '/' => Token::Slash,
                        '%' => Token::Percent,
                        '<' => Token::Lt,
                        '>' => Token::Gt,
                        '!' => Token::Not,
                        '&' => Token::Amp,
                        '^' => Token::Caret,
                        '|' => Token::Pipe,
                        '=' => Token::Assign,
                        _ => return Err(err(line, format!("unexpected character `{c}`"))),
                    };
                    (t, 1)
                };
                out.push(Spanned { tok, line });
                i += len;
            }
        }
    }
    out.push(Spanned { tok: Token::Eof, line });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn keywords_and_identifiers() {
        assert_eq!(
            toks("int x_1 floaty"),
            vec![
                Token::KwInt,
                Token::Ident("x_1".into()),
                Token::Ident("floaty".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("42 0x2a 3.5 1.0e3 2.5e-2"),
            vec![
                Token::IntLit(42),
                Token::IntLit(42),
                Token::FloatLit(3.5),
                Token::FloatLit(1000.0),
                Token::FloatLit(0.025),
                Token::Eof
            ]
        );
    }

    #[test]
    fn integer_then_dot_is_not_float_without_digits() {
        // `1.` is lexed as int then error on stray dot.
        assert!(lex("1.").is_err());
    }

    #[test]
    fn operators_two_char() {
        assert_eq!(
            toks("<< >> <= >= == != && ||"),
            vec![
                Token::Shl,
                Token::Shr,
                Token::Le,
                Token::Ge,
                Token::EqEq,
                Token::Ne,
                Token::AndAnd,
                Token::OrOr,
                Token::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped_and_lines_counted() {
        let ts = lex("// line one\nint /* multi\nline */ x").unwrap();
        assert_eq!(ts[0].tok, Token::KwInt);
        assert_eq!(ts[0].line, 2);
        assert_eq!(ts[1].tok, Token::Ident("x".into()));
        assert_eq!(ts[1].line, 3);
    }

    #[test]
    fn unterminated_comment_errors() {
        assert!(lex("/* oops").is_err());
    }

    #[test]
    fn unknown_character_errors() {
        assert!(lex("int $x;").is_err());
    }
}
