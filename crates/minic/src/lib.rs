//! mini-C: the source language of the OM reproduction's compiler.
//!
//! A small C-shaped language — 64-bit `int`, IEEE `float`, global scalars and
//! fixed-size arrays, exported and `static` functions, and `fnptr` procedure
//! variables — rich enough to generate SPEC92-shaped workloads that exercise
//! every address-calculation pattern the paper optimizes. The crate provides
//! the lexer, parser, semantic checker, lowering to a three-address IR, and a
//! reference interpreter used as the behavioral oracle for the whole
//! pipeline.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let src = "
//!     int squares[10];
//!     int main() {
//!         int i = 0;
//!         for (i = 0; i < 10; i = i + 1) { squares[i] = i * i; }
//!         return squares[7];
//!     }";
//! let unit = om_minic::parse_unit("demo", src)?;
//! let ir = om_minic::lower_unit(&unit)?;
//! let mut program = om_minic::interp::Program::new(std::slice::from_ref(&ir));
//! assert_eq!(program.run_main(100_000)?, 49);
//! # Ok(())
//! # }
//! ```

pub mod ast;
pub mod error;
pub mod interp;
pub mod ir;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod printer;
pub mod sema;
pub mod token;

pub use error::CompileError;
pub use lower::lower_unit;
pub use parser::parse_unit;
pub use sema::{check_unit, UnitInfo};
