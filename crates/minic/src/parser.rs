//! Recursive-descent parser for mini-C.

use crate::ast::*;
use crate::error::CompileError;
use crate::lexer::lex;
use crate::token::{Spanned, Token};

/// Parses a compilation unit named `unit_name` from `src`.
///
/// # Errors
///
/// Returns [`CompileError::Lex`] or [`CompileError::Parse`] with the source
/// line of the offending token.
pub fn parse_unit(unit_name: &str, src: &str) -> Result<Unit, CompileError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut unit = Unit { name: unit_name.to_string(), ..Unit::default() };

    while p.peek() != &Token::Eof {
        if p.peek() == &Token::KwExtern {
            p.bump();
            p.parse_extern(&mut unit)?;
        } else {
            p.parse_item(&mut unit)?;
        }
    }
    Ok(unit)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos].tok
    }

    fn peek2(&self) -> &Token {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].tok
    }

    fn line(&self) -> u32 {
        self.tokens[self.pos].line
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].tok.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, what: impl Into<String>) -> Result<T, CompileError> {
        Err(CompileError::Parse { line: self.line(), what: what.into() })
    }

    fn expect(&mut self, tok: Token) -> Result<(), CompileError> {
        if self.peek() == &tok {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected `{tok}`, found `{}`", self.peek()))
        }
    }

    fn ident(&mut self) -> Result<String, CompileError> {
        match self.peek().clone() {
            Token::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found `{other}`")),
        }
    }

    fn ty(&mut self) -> Result<Type, CompileError> {
        let t = match self.peek() {
            Token::KwInt => Type::Int,
            Token::KwFloat => Type::Float,
            Token::KwFnptr => Type::Fnptr,
            other => return self.err(format!("expected type, found `{other}`")),
        };
        self.bump();
        Ok(t)
    }

    fn parse_extern(&mut self, unit: &mut Unit) -> Result<(), CompileError> {
        let ret = self.ty()?;
        let name = self.ident()?;
        if self.peek() == &Token::LParen {
            self.bump();
            let mut params = Vec::new();
            if self.peek() != &Token::RParen {
                loop {
                    params.push(self.ty()?);
                    // Parameter names are optional in extern declarations.
                    if matches!(self.peek(), Token::Ident(_)) {
                        self.bump();
                    }
                    if self.peek() == &Token::Comma {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            self.expect(Token::RParen)?;
            self.expect(Token::Semi)?;
            unit.extern_fns.push(ExternFn { name, ret: Some(ret), params });
        } else {
            let array_len = self.opt_array_len()?;
            self.expect(Token::Semi)?;
            unit.extern_globals.push(ExternGlobal { name, ty: ret, array_len });
        }
        Ok(())
    }

    fn opt_array_len(&mut self) -> Result<Option<u64>, CompileError> {
        if self.peek() != &Token::LBracket {
            return Ok(None);
        }
        self.bump();
        let n = match self.bump() {
            Token::IntLit(v) if v > 0 => v as u64,
            other => return self.err(format!("expected positive array length, found `{other}`")),
        };
        self.expect(Token::RBracket)?;
        Ok(Some(n))
    }

    fn parse_item(&mut self, unit: &mut Unit) -> Result<(), CompileError> {
        let is_static = if self.peek() == &Token::KwStatic {
            self.bump();
            true
        } else {
            false
        };
        let ty = self.ty()?;
        let name = self.ident()?;
        if self.peek() == &Token::LParen {
            unit.functions.push(self.parse_function(is_static, ty, name)?);
        } else {
            unit.globals.push(self.parse_global(is_static, ty, name)?);
        }
        Ok(())
    }

    fn parse_global(
        &mut self,
        is_static: bool,
        ty: Type,
        name: String,
    ) -> Result<Global, CompileError> {
        let array_len = self.opt_array_len()?;
        let init = if self.peek() == &Token::Assign {
            self.bump();
            self.parse_global_init(ty, array_len.is_some())?
        } else {
            GlobalInit::Zero
        };
        self.expect(Token::Semi)?;
        Ok(Global { name, is_static, ty, array_len, init })
    }

    fn signed_number(&mut self) -> Result<(Option<i64>, Option<f64>), CompileError> {
        let neg = if self.peek() == &Token::Minus {
            self.bump();
            true
        } else {
            false
        };
        match self.bump() {
            Token::IntLit(v) => Ok((Some(if neg { -v } else { v }), None)),
            Token::FloatLit(v) => Ok((None, Some(if neg { -v } else { v }))),
            other => self.err(format!("expected numeric literal, found `{other}`")),
        }
    }

    fn parse_global_init(
        &mut self,
        ty: Type,
        is_array: bool,
    ) -> Result<GlobalInit, CompileError> {
        if self.peek() == &Token::Amp {
            self.bump();
            let f = self.ident()?;
            if ty != Type::Fnptr {
                return self.err("`&function` initializer requires fnptr type");
            }
            return Ok(GlobalInit::FnAddr(f));
        }
        if self.peek() == &Token::LBrace {
            if !is_array {
                return self.err("brace initializer on scalar global");
            }
            self.bump();
            let mut ints = Vec::new();
            let mut floats = Vec::new();
            loop {
                let (i, f) = self.signed_number()?;
                match (ty, i, f) {
                    (Type::Int, Some(v), None) => ints.push(v),
                    (Type::Float, None, Some(v)) => floats.push(v),
                    (Type::Float, Some(v), None) => floats.push(v as f64),
                    _ => return self.err("initializer element type mismatch"),
                }
                if self.peek() == &Token::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
            self.expect(Token::RBrace)?;
            return Ok(if ty == Type::Int {
                GlobalInit::List(ints)
            } else {
                GlobalInit::FloatList(floats)
            });
        }
        let (i, f) = self.signed_number()?;
        match (ty, i, f) {
            (Type::Int, Some(v), None) => Ok(GlobalInit::Int(v)),
            (Type::Float, None, Some(v)) => Ok(GlobalInit::Float(v)),
            (Type::Float, Some(v), None) => Ok(GlobalInit::Float(v as f64)),
            _ => self.err("initializer type mismatch"),
        }
    }

    fn parse_function(
        &mut self,
        is_static: bool,
        ret: Type,
        name: String,
    ) -> Result<Function, CompileError> {
        self.expect(Token::LParen)?;
        let mut params = Vec::new();
        if self.peek() != &Token::RParen {
            loop {
                let ty = self.ty()?;
                let pname = self.ident()?;
                params.push(Param { ty, name: pname });
                if self.peek() == &Token::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(Token::RParen)?;
        let body = self.block()?;
        Ok(Function { name, is_static, ret: Some(ret), params, body })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        self.expect(Token::LBrace)?;
        let mut stmts = Vec::new();
        while self.peek() != &Token::RBrace {
            if self.peek() == &Token::Eof {
                return self.err("unterminated block");
            }
            stmts.push(self.stmt()?);
        }
        self.bump();
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        match self.peek().clone() {
            Token::KwInt | Token::KwFloat | Token::KwFnptr
                // `int(` is a cast expression, not a declaration.
                if self.peek2() != &Token::LParen =>
            {
                let ty = self.ty()?;
                let name = self.ident()?;
                self.expect(Token::Assign)?;
                let init = self.expr()?;
                self.expect(Token::Semi)?;
                Ok(Stmt::Local { ty, name, init })
            }
            Token::KwIf => self.if_stmt(),
            Token::KwWhile => {
                self.bump();
                self.expect(Token::LParen)?;
                let cond = self.expr()?;
                self.expect(Token::RParen)?;
                let body = self.block()?;
                Ok(Stmt::While { cond, body })
            }
            Token::KwFor => {
                self.bump();
                self.expect(Token::LParen)?;
                let init = if self.peek() == &Token::Semi {
                    None
                } else {
                    Some(Box::new(self.simple_stmt()?))
                };
                self.expect(Token::Semi)?;
                let cond = self.expr()?;
                self.expect(Token::Semi)?;
                let step = if self.peek() == &Token::RParen {
                    None
                } else {
                    Some(Box::new(self.simple_stmt()?))
                };
                self.expect(Token::RParen)?;
                let body = self.block()?;
                Ok(Stmt::For { init, cond, step, body })
            }
            Token::KwReturn => {
                self.bump();
                let val = if self.peek() == &Token::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(Token::Semi)?;
                Ok(Stmt::Return(val))
            }
            _ => {
                let s = self.simple_stmt()?;
                self.expect(Token::Semi)?;
                Ok(s)
            }
        }
    }

    fn if_stmt(&mut self) -> Result<Stmt, CompileError> {
        self.expect(Token::KwIf)?;
        self.expect(Token::LParen)?;
        let cond = self.expr()?;
        self.expect(Token::RParen)?;
        let then_body = self.block()?;
        let else_body = if self.peek() == &Token::KwElse {
            self.bump();
            if self.peek() == &Token::KwIf {
                vec![self.if_stmt()?]
            } else {
                self.block()?
            }
        } else {
            Vec::new()
        };
        Ok(Stmt::If { cond, then_body, else_body })
    }

    /// Assignment or expression statement (no trailing `;`).
    fn simple_stmt(&mut self) -> Result<Stmt, CompileError> {
        // Lookahead for `ident =` or `ident [ ... ] =`.
        if let Token::Ident(name) = self.peek().clone() {
            if self.peek2() == &Token::Assign {
                self.bump();
                self.bump();
                let rhs = self.expr()?;
                return Ok(Stmt::Assign { lhs: LValue::Var(name), rhs });
            }
            if self.peek2() == &Token::LBracket {
                // Could be `a[i] = e` or the expression `a[i]`; parse the
                // index, then decide.
                let save = self.pos;
                self.bump();
                self.bump();
                let index = self.expr()?;
                self.expect(Token::RBracket)?;
                if self.peek() == &Token::Assign {
                    self.bump();
                    let rhs = self.expr()?;
                    return Ok(Stmt::Assign {
                        lhs: LValue::Index { name, index: Box::new(index) },
                        rhs,
                    });
                }
                self.pos = save;
            }
        }
        Ok(Stmt::Expr(self.expr()?))
    }

    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.binary(0)
    }

    fn binary(&mut self, min_prec: u8) -> Result<Expr, CompileError> {
        let mut lhs = self.unary()?;
        loop {
            let (op, prec) = match self.peek() {
                Token::OrOr => (BinOp::LogOr, 1),
                Token::AndAnd => (BinOp::LogAnd, 2),
                Token::Pipe => (BinOp::BitOr, 3),
                Token::Caret => (BinOp::BitXor, 4),
                Token::Amp => (BinOp::BitAnd, 5),
                Token::EqEq => (BinOp::Eq, 6),
                Token::Ne => (BinOp::Ne, 6),
                Token::Lt => (BinOp::Lt, 7),
                Token::Le => (BinOp::Le, 7),
                Token::Gt => (BinOp::Gt, 7),
                Token::Ge => (BinOp::Ge, 7),
                Token::Shl => (BinOp::Shl, 8),
                Token::Shr => (BinOp::Shr, 8),
                Token::Plus => (BinOp::Add, 9),
                Token::Minus => (BinOp::Sub, 9),
                Token::Star => (BinOp::Mul, 10),
                Token::Slash => (BinOp::Div, 10),
                Token::Percent => (BinOp::Rem, 10),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.binary(prec + 1)?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, CompileError> {
        match self.peek() {
            Token::Minus => {
                self.bump();
                Ok(Expr::Unary { op: UnOp::Neg, expr: Box::new(self.unary()?) })
            }
            Token::Not => {
                self.bump();
                Ok(Expr::Unary { op: UnOp::Not, expr: Box::new(self.unary()?) })
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<Expr, CompileError> {
        match self.peek().clone() {
            Token::IntLit(v) => {
                self.bump();
                Ok(Expr::IntLit(v))
            }
            Token::FloatLit(v) => {
                self.bump();
                Ok(Expr::FloatLit(v))
            }
            Token::KwInt | Token::KwFloat => {
                let ty = self.ty()?;
                self.expect(Token::LParen)?;
                let e = self.expr()?;
                self.expect(Token::RParen)?;
                Ok(Expr::Cast { ty, expr: Box::new(e) })
            }
            Token::Amp => {
                self.bump();
                Ok(Expr::AddrOf(self.ident()?))
            }
            Token::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(Token::RParen)?;
                Ok(e)
            }
            Token::Ident(name) => {
                self.bump();
                match self.peek() {
                    Token::LParen => {
                        self.bump();
                        let mut args = Vec::new();
                        if self.peek() != &Token::RParen {
                            loop {
                                args.push(self.expr()?);
                                if self.peek() == &Token::Comma {
                                    self.bump();
                                } else {
                                    break;
                                }
                            }
                        }
                        self.expect(Token::RParen)?;
                        Ok(Expr::Call { name, args })
                    }
                    Token::LBracket => {
                        self.bump();
                        let index = self.expr()?;
                        self.expect(Token::RBracket)?;
                        Ok(Expr::Index { name, index: Box::new(index) })
                    }
                    _ => Ok(Expr::Var(name)),
                }
            }
            other => self.err(format!("expected expression, found `{other}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_globals_and_externs() {
        let u = parse_unit(
            "m",
            "int counter = 5;\n\
             static float ratio = 2.5;\n\
             int table[8] = { 1, 2, 3, -4, 5, 6, 7, 8 };\n\
             fnptr handler = &process;\n\
             extern int process(int);\n\
             extern float scale;\n\
             extern int data[64];",
        )
        .unwrap();
        assert_eq!(u.globals.len(), 4);
        assert_eq!(u.extern_fns.len(), 1);
        assert_eq!(u.extern_globals.len(), 2);
        assert_eq!(u.globals[2].init, GlobalInit::List(vec![1, 2, 3, -4, 5, 6, 7, 8]));
        assert!(u.globals[1].is_static);
        assert_eq!(u.extern_globals[1].array_len, Some(64));
    }

    #[test]
    fn parses_function_with_control_flow() {
        let u = parse_unit(
            "m",
            "int f(int n) {\n\
               int acc = 0;\n\
               for (n = n; n > 0; n = n - 1) {\n\
                 if (n % 2 == 0) { acc = acc + n; } else { acc = acc - 1; }\n\
               }\n\
               while (acc > 100) { acc = acc >> 1; }\n\
               return acc;\n\
             }",
        )
        .unwrap();
        assert_eq!(u.functions.len(), 1);
        let f = &u.functions[0];
        assert_eq!(f.params.len(), 1);
        assert_eq!(f.body.len(), 4);
    }

    #[test]
    fn precedence_binds_correctly() {
        let u = parse_unit("m", "int f() { return 1 + 2 * 3 == 7 && 4 < 5; }").unwrap();
        // ((1 + (2*3)) == 7) && (4 < 5)
        let Stmt::Return(Some(Expr::Binary { op: BinOp::LogAnd, lhs, .. })) = &u.functions[0].body[0]
        else {
            panic!("shape");
        };
        let Expr::Binary { op: BinOp::Eq, .. } = **lhs else { panic!("shape") };
    }

    #[test]
    fn array_assign_vs_array_read() {
        let u = parse_unit("m", "int a[4]; int f(int i) { a[i] = a[i] + 1; return a[i]; }")
            .unwrap();
        assert!(matches!(
            u.functions[0].body[0],
            Stmt::Assign { lhs: LValue::Index { .. }, .. }
        ));
    }

    #[test]
    fn casts_parse() {
        let u = parse_unit("m", "float f(int x) { return float(x) / 2.0; }").unwrap();
        let Stmt::Return(Some(Expr::Binary { lhs, .. })) = &u.functions[0].body[0] else {
            panic!()
        };
        assert!(matches!(**lhs, Expr::Cast { ty: Type::Float, .. }));
    }

    #[test]
    fn indirect_call_through_fnptr_variable() {
        let u = parse_unit("m", "fnptr h; int f() { h = &f; return h(3); }").unwrap();
        assert_eq!(u.functions[0].body.len(), 2);
    }

    #[test]
    fn else_if_chains() {
        let u = parse_unit(
            "m",
            "int f(int x) { if (x > 2) { return 2; } else if (x > 1) { return 1; } else { return 0; } }",
        )
        .unwrap();
        let Stmt::If { else_body, .. } = &u.functions[0].body[0] else { panic!() };
        assert!(matches!(else_body[0], Stmt::If { .. }));
    }

    #[test]
    fn errors_carry_lines() {
        let e = parse_unit("m", "int f() {\n  return ;;\n}").unwrap_err();
        match e {
            CompileError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("{other}"),
        }
    }

    #[test]
    fn missing_paren_is_error() {
        assert!(parse_unit("m", "int f( { }").is_err());
        assert!(parse_unit("m", "int f() { return (1; }").is_err());
    }
}
