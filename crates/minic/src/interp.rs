//! A reference interpreter for lowered programs.
//!
//! The interpreter defines the observable semantics of mini-C independently
//! of the whole compile–link–optimize–simulate pipeline. Integration tests
//! run every benchmark twice — here and in `om-sim` after each OM level — and
//! demand identical results, which is the strongest correctness oracle the
//! reproduction has: OM transformations must preserve program behavior
//! exactly.
//!
//! Semantics pinned down here (and matched by codegen + simulator):
//!
//! * integer arithmetic wraps at 64 bits; shifts use the low 6 bits of the
//!   count (Alpha semantics);
//! * integer division by zero yields 0 and remainder by zero yields the
//!   dividend (the convention implemented by the library's `__divq`/`__remq`);
//! * float→int conversion truncates (saturating at the i64 range);
//! * procedure values are opaque handles; calling a null `fnptr` is an error.

use crate::ast::{GlobalInit, Type};
use crate::ir::*;
use std::collections::HashMap;
use std::fmt;

/// Runtime errors (these abort a run; well-formed benchmarks never hit them).
#[derive(Debug, Clone, PartialEq)]
pub enum InterpError {
    /// Executed more than the step budget — runaway loop.
    StepLimit,
    UnknownFunction(String),
    NullFnptr,
    IndexOutOfBounds { sym: String, index: i64, len: u64 },
    /// Call depth exceeded.
    StackOverflow,
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::StepLimit => write!(f, "step limit exceeded"),
            InterpError::UnknownFunction(n) => write!(f, "unknown function `{n}`"),
            InterpError::NullFnptr => write!(f, "indirect call through null fnptr"),
            InterpError::IndexOutOfBounds { sym, index, len } => {
                write!(f, "index {index} out of bounds for `{sym}` (len {len})")
            }
            InterpError::StackOverflow => write!(f, "call depth exceeded"),
        }
    }
}

impl std::error::Error for InterpError {}

/// Wrapping-i64 division with the library convention for zero divisors.
pub fn div_convention(a: i64, b: i64) -> i64 {
    if b == 0 {
        0
    } else {
        a.wrapping_div(b)
    }
}

/// Wrapping-i64 remainder with the library convention for zero divisors.
pub fn rem_convention(a: i64, b: i64) -> i64 {
    if b == 0 {
        a
    } else {
        a.wrapping_rem(b)
    }
}

#[derive(Clone, Copy)]
enum Slot {
    I(i64),
    F(f64),
}

/// A function handle: (unit index, function index), encoded 1-based into an
/// i64 so that 0 is the null procedure value.
fn encode_handle(unit: usize, func: usize) -> i64 {
    ((unit as i64) << 32 | func as i64) + 1
}

fn decode_handle(v: i64) -> Option<(usize, usize)> {
    if v <= 0 {
        return None;
    }
    let v = v - 1;
    Some(((v >> 32) as usize, (v & 0xFFFF_FFFF) as usize))
}

struct GlobalCell {
    ty: Type,
    data: Vec<Slot>,
}

/// An executable interpreted program: lowered units with resolved names.
pub struct Program<'a> {
    units: &'a [IrUnit],
    /// (unit, name) → global cell index; statics are keyed by their unit,
    /// exported globals by `usize::MAX`.
    globals: Vec<GlobalCell>,
    global_index: HashMap<(usize, String), usize>,
    /// Function resolution: exported name → handle.
    exported_fns: HashMap<String, (usize, usize)>,
    /// Per-unit function table (covers statics).
    unit_fns: Vec<HashMap<String, usize>>,
    /// Remaining step budget.
    steps: u64,
}

const EXPORTED: usize = usize::MAX;
const MAX_DEPTH: usize = 256;

impl<'a> Program<'a> {
    /// Builds a program from lowered units, initializing globals.
    pub fn new(units: &'a [IrUnit]) -> Program<'a> {
        let mut p = Program {
            units,
            globals: Vec::new(),
            global_index: HashMap::new(),
            exported_fns: HashMap::new(),
            unit_fns: Vec::new(),
            steps: 0,
        };
        for (ui, unit) in units.iter().enumerate() {
            let mut table = HashMap::new();
            for (fi, f) in unit.functions.iter().enumerate() {
                table.insert(f.name.clone(), fi);
                if !f.is_static {
                    p.exported_fns.entry(f.name.clone()).or_insert((ui, fi));
                }
            }
            p.unit_fns.push(table);
        }
        // Globals after functions so fnptr initializers can resolve.
        for (ui, unit) in units.iter().enumerate() {
            for g in &unit.globals {
                let n = g.array_len.unwrap_or(1) as usize;
                let mut data = vec![
                    match g.ty {
                        Type::Float => Slot::F(0.0),
                        _ => Slot::I(0),
                    };
                    n
                ];
                match &g.init {
                    GlobalInit::Zero => {}
                    GlobalInit::Int(v) => data[0] = Slot::I(*v),
                    GlobalInit::Float(v) => data[0] = Slot::F(*v),
                    GlobalInit::FnAddr(f) => {
                        let h = p
                            .exported_fns
                            .get(f)
                            .copied()
                            .or_else(|| p.unit_fns[ui].get(f).map(|&fi| (ui, fi)))
                            .map(|(u, fi)| encode_handle(u, fi))
                            .unwrap_or(0);
                        data[0] = Slot::I(h);
                    }
                    GlobalInit::List(vs) => {
                        for (i, v) in vs.iter().enumerate().take(n) {
                            data[i] = Slot::I(*v);
                        }
                    }
                    GlobalInit::FloatList(vs) => {
                        for (i, v) in vs.iter().enumerate().take(n) {
                            data[i] = Slot::F(*v);
                        }
                    }
                }
                let idx = p.globals.len();
                p.globals.push(GlobalCell { ty: g.ty, data });
                let key = if g.is_static { ui } else { EXPORTED };
                p.global_index.insert((key, g.name.clone()), idx);
            }
        }
        p
    }

    fn find_global(&self, unit: usize, name: &str) -> usize {
        *self
            .global_index
            .get(&(unit, name.to_string()))
            .or_else(|| self.global_index.get(&(EXPORTED, name.to_string())))
            .unwrap_or_else(|| panic!("unresolved global `{name}`"))
    }

    fn resolve_fn(&self, unit: usize, name: &str) -> Result<(usize, usize), InterpError> {
        if let Some(&fi) = self.unit_fns[unit].get(name) {
            return Ok((unit, fi));
        }
        self.exported_fns
            .get(name)
            .copied()
            .ok_or_else(|| InterpError::UnknownFunction(name.to_string()))
    }

    /// Runs exported `main` with `steps` as the execution budget; returns the
    /// program's integer result.
    ///
    /// # Errors
    ///
    /// Returns an [`InterpError`] on runaway execution or ill-formed calls.
    pub fn run_main(&mut self, steps: u64) -> Result<i64, InterpError> {
        self.steps = steps;
        let (u, f) = self
            .exported_fns
            .get("main")
            .copied()
            .ok_or_else(|| InterpError::UnknownFunction("main".to_string()))?;
        match self.call(u, f, &[], 0)? {
            Slot::I(v) => Ok(v),
            Slot::F(v) => Ok(v as i64),
        }
    }

    fn call(
        &mut self,
        unit: usize,
        func: usize,
        args: &[Slot],
        depth: usize,
    ) -> Result<Slot, InterpError> {
        if depth > MAX_DEPTH {
            return Err(InterpError::StackOverflow);
        }
        let f = &self.units[unit].functions[func];
        let mut ints = vec![0i64; f.n_int as usize];
        let mut fps = vec![0f64; f.n_fp as usize];
        for (i, &p) in f.params.iter().enumerate() {
            let a = args.get(i).copied().unwrap_or(Slot::I(0));
            match (p.class, a) {
                (Class::Int, Slot::I(v)) => ints[p.id as usize] = v,
                (Class::Fp, Slot::F(v)) => fps[p.id as usize] = v,
                // Callers coerce; mismatches only arise from indirect calls.
                (Class::Int, Slot::F(v)) => ints[p.id as usize] = v as i64,
                (Class::Fp, Slot::I(v)) => fps[p.id as usize] = v as f64,
            }
        }

        // Label → instruction index map.
        let mut labels: HashMap<Label, usize> = HashMap::new();
        for (i, inst) in f.body.iter().enumerate() {
            if let Ir::Label(l) = inst {
                labels.insert(*l, i);
            }
        }

        let geti = |ints: &[i64], v: Val| -> i64 {
            match v {
                Val::R(r) => ints[r.id as usize],
                Val::I(c) => c,
                Val::F(c) => c as i64,
            }
        };
        let getf = |fps: &[f64], v: Val| -> f64 {
            match v {
                Val::R(r) => fps[r.id as usize],
                Val::F(c) => c,
                Val::I(c) => c as f64,
            }
        };

        let mut pc = 0usize;
        loop {
            if self.steps == 0 {
                return Err(InterpError::StepLimit);
            }
            self.steps -= 1;
            let inst = &f.body[pc];
            pc += 1;
            match inst {
                Ir::Label(_) => {}
                Ir::Jump(l) => pc = labels[l],
                Ir::Branch { cond, when_zero, target } => {
                    let c = ints[cond.id as usize];
                    if (c == 0) == *when_zero {
                        pc = labels[target];
                    }
                }
                Ir::BinI { op, dst, a, b } => {
                    let x = geti(&ints, *a);
                    let y = geti(&ints, *b);
                    ints[dst.id as usize] = match op {
                        IBin::Add => x.wrapping_add(y),
                        IBin::Sub => x.wrapping_sub(y),
                        IBin::Mul => x.wrapping_mul(y),
                        IBin::And => x & y,
                        IBin::Or => x | y,
                        IBin::Xor => x ^ y,
                        IBin::Shl => x.wrapping_shl((y & 63) as u32),
                        IBin::Shr => x.wrapping_shr((y & 63) as u32),
                    };
                }
                Ir::BinF { op, dst, a, b } => {
                    let x = getf(&fps, *a);
                    let y = getf(&fps, *b);
                    fps[dst.id as usize] = match op {
                        FBin::Add => x + y,
                        FBin::Sub => x - y,
                        FBin::Mul => x * y,
                        FBin::Div => x / y,
                    };
                }
                Ir::CmpI { op, dst, a, b } => {
                    let x = geti(&ints, *a);
                    let y = geti(&ints, *b);
                    ints[dst.id as usize] = cmp_i(*op, x, y);
                }
                Ir::CmpF { op, dst, a, b } => {
                    let x = getf(&fps, *a);
                    let y = getf(&fps, *b);
                    ints[dst.id as usize] = cmp_f(*op, x, y);
                }
                Ir::MovI { dst, src } => ints[dst.id as usize] = geti(&ints, *src),
                Ir::MovF { dst, src } => fps[dst.id as usize] = getf(&fps, *src),
                Ir::CvtIF { dst, src } => fps[dst.id as usize] = geti(&ints, *src) as f64,
                Ir::CvtFI { dst, src } => ints[dst.id as usize] = getf(&fps, *src) as i64,
                Ir::LdGlobal { dst, sym } => {
                    let g = &self.globals[self.find_global(unit, sym)];
                    match (dst.class, g.data[0]) {
                        (Class::Int, Slot::I(v)) => ints[dst.id as usize] = v,
                        (Class::Fp, Slot::F(v)) => fps[dst.id as usize] = v,
                        _ => unreachable!("global class mismatch"),
                    }
                }
                Ir::StGlobal { sym, src } => {
                    let gi = self.find_global(unit, sym);
                    let slot = match self.globals[gi].ty {
                        Type::Float => Slot::F(getf(&fps, *src)),
                        _ => Slot::I(geti(&ints, *src)),
                    };
                    self.globals[gi].data[0] = slot;
                }
                Ir::LdElem { dst, sym, index } => {
                    let i = geti(&ints, *index);
                    let g = &self.globals[self.find_global(unit, sym)];
                    let len = g.data.len() as u64;
                    if i < 0 || i as u64 >= len {
                        return Err(InterpError::IndexOutOfBounds {
                            sym: sym.clone(),
                            index: i,
                            len,
                        });
                    }
                    match (dst.class, g.data[i as usize]) {
                        (Class::Int, Slot::I(v)) => ints[dst.id as usize] = v,
                        (Class::Fp, Slot::F(v)) => fps[dst.id as usize] = v,
                        _ => unreachable!("element class mismatch"),
                    }
                }
                Ir::StElem { sym, index, src } => {
                    let i = geti(&ints, *index);
                    let gi = self.find_global(unit, sym);
                    let len = self.globals[gi].data.len() as u64;
                    if i < 0 || i as u64 >= len {
                        return Err(InterpError::IndexOutOfBounds {
                            sym: sym.clone(),
                            index: i,
                            len,
                        });
                    }
                    let slot = match self.globals[gi].ty {
                        Type::Float => Slot::F(getf(&fps, *src)),
                        _ => Slot::I(geti(&ints, *src)),
                    };
                    self.globals[gi].data[i as usize] = slot;
                }
                Ir::LdFnAddr { dst, sym } => {
                    let (u, fi) = self.resolve_fn(unit, sym)?;
                    ints[dst.id as usize] = encode_handle(u, fi);
                }
                Ir::Call { dst, name, args } => {
                    let arg_slots: Vec<Slot> = {
                        let callee_params = self.callee_params(unit, name);
                        args.iter()
                            .enumerate()
                            .map(|(i, &v)| match callee_params.get(i) {
                                Some(Class::Fp) => Slot::F(getf(&fps, v)),
                                _ => Slot::I(geti(&ints, v)),
                            })
                            .collect()
                    };
                    let result = match self.resolve_fn(unit, name) {
                        Ok((u, fi)) => self.call(u, fi, &arg_slots, depth + 1)?,
                        Err(e) => {
                            // Builtin fallback for the divide millicode when
                            // no library defines it (unit tests).
                            let as_i = |s: &Slot| match *s {
                                Slot::I(v) => v,
                                Slot::F(v) => v as i64,
                            };
                            match name.as_str() {
                                "__divq" => Slot::I(div_convention(
                                    as_i(&arg_slots[0]),
                                    as_i(&arg_slots[1]),
                                )),
                                "__remq" => Slot::I(rem_convention(
                                    as_i(&arg_slots[0]),
                                    as_i(&arg_slots[1]),
                                )),
                                _ => return Err(e),
                            }
                        }
                    };
                    if let Some(d) = dst {
                        match (d.class, result) {
                            (Class::Int, Slot::I(v)) => ints[d.id as usize] = v,
                            (Class::Fp, Slot::F(v)) => fps[d.id as usize] = v,
                            (Class::Int, Slot::F(v)) => ints[d.id as usize] = v as i64,
                            (Class::Fp, Slot::I(v)) => fps[d.id as usize] = v as f64,
                        }
                    }
                }
                Ir::CallInd { dst, target, args } => {
                    let h = ints[target.id as usize];
                    let (u, fi) = decode_handle(h).ok_or(InterpError::NullFnptr)?;
                    let arg_slots: Vec<Slot> =
                        args.iter().map(|&v| Slot::I(geti(&ints, v))).collect();
                    let result = self.call(u, fi, &arg_slots, depth + 1)?;
                    if let Some(d) = dst {
                        match result {
                            Slot::I(v) => ints[d.id as usize] = v,
                            Slot::F(v) => ints[d.id as usize] = v as i64,
                        }
                    }
                }
                Ir::Ret(v) => {
                    return Ok(match v {
                        None => Slot::I(0),
                        Some(v) => match f.ret {
                            Class::Int => Slot::I(geti(&ints, *v)),
                            Class::Fp => Slot::F(getf(&fps, *v)),
                        },
                    });
                }
            }
        }
    }

    /// Parameter classes of a callee (empty if unknown — builtin).
    fn callee_params(&self, unit: usize, name: &str) -> Vec<Class> {
        if let Ok((u, fi)) = self.resolve_fn(unit, name) {
            self.units[u].functions[fi]
                .params
                .iter()
                .map(|p| p.class)
                .collect()
        } else {
            Vec::new()
        }
    }
}

fn cmp_i(op: Cmp, x: i64, y: i64) -> i64 {
    let b = match op {
        Cmp::Eq => x == y,
        Cmp::Ne => x != y,
        Cmp::Lt => x < y,
        Cmp::Le => x <= y,
        Cmp::Gt => x > y,
        Cmp::Ge => x >= y,
    };
    b as i64
}

fn cmp_f(op: Cmp, x: f64, y: f64) -> i64 {
    let b = match op {
        Cmp::Eq => x == y,
        Cmp::Ne => x != y,
        Cmp::Lt => x < y,
        Cmp::Le => x <= y,
        Cmp::Gt => x > y,
        Cmp::Ge => x >= y,
    };
    b as i64
}

/// Convenience: parse, lower, and run a set of sources as one program.
///
/// # Errors
///
/// Propagates compile and runtime errors as strings (test helper).
pub fn run_sources(sources: &[(&str, &str)], steps: u64) -> Result<i64, String> {
    let units: Vec<IrUnit> = sources
        .iter()
        .map(|(name, src)| {
            crate::parser::parse_unit(name, src)
                .and_then(|u| crate::lower::lower_unit(&u))
                .map_err(|e| e.to_string())
        })
        .collect::<Result<_, _>>()?;
    Program::new(&units).run_main(steps).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> i64 {
        run_sources(&[("t", src)], 1_000_000).unwrap()
    }

    #[test]
    fn arithmetic_and_loops() {
        assert_eq!(run("int main() { int s = 0; int i = 0; for (i = 1; i <= 10; i = i + 1) { s = s + i; } return s; }"), 55);
    }

    #[test]
    fn division_convention() {
        assert_eq!(run("int main() { return 17 / 5; }"), 3);
        assert_eq!(run("int main() { return -17 / 5; }"), -3);
        assert_eq!(run("int main() { return 17 % 5; }"), 2);
        assert_eq!(run("int main() { return -17 % 5; }"), -2);
        assert_eq!(run("int main() { return 7 / 0; }"), 0);
        assert_eq!(run("int main() { return 7 % 0; }"), 7);
    }

    #[test]
    fn floats_and_conversions() {
        assert_eq!(run("int main() { float x = 3.75; return int(x * 2.0); }"), 7);
        assert_eq!(run("float half(int x) { return x / 2; } int main() { return int(half(9) * 10.0); }"), 40);
    }

    #[test]
    fn globals_and_arrays() {
        assert_eq!(
            run("int a[5]; int main() { int i = 0; for (i = 0; i < 5; i = i + 1) { a[i] = i * i; } return a[4] - a[2]; }"),
            12
        );
        assert_eq!(run("int g = 41; int main() { g = g + 1; return g; }"), 42);
        assert_eq!(run("int t[3] = { 7, 8, 9 }; int main() { return t[0] + t[2]; }"), 16);
    }

    #[test]
    fn cross_unit_calls_and_static_scoping() {
        let result = run_sources(
            &[
                ("a", "extern int helper(int); static int tweak(int x) { return x + 1; } int main() { return helper(tweak(1)); }"),
                ("b", "static int tweak(int x) { return x * 10; } int helper(int x) { return tweak(x); }"),
            ],
            100_000,
        )
        .unwrap();
        // a's tweak adds 1 (→2), b's *its own* static tweak multiplies (→20).
        assert_eq!(result, 20);
    }

    #[test]
    fn procedure_variables() {
        let src = "
            int add1(int x) { return x + 1; }
            int dbl(int x) { return x * 2; }
            fnptr op;
            int main() {
                op = &add1;
                int a = op(10);
                op = &dbl;
                return a + op(10);
            }";
        assert_eq!(run(src), 31);
    }

    #[test]
    fn fnptr_initializer() {
        let src = "
            int five(int x) { return 5 + x; }
            fnptr h = &five;
            int main() { return h(1); }";
        assert_eq!(run(src), 6);
    }

    #[test]
    fn short_circuit_semantics() {
        let src = "
            int calls;
            int bump(int x) { calls = calls + 1; return x; }
            int main() {
                int a = 0 && bump(1);
                int b = 1 || bump(1);
                return calls * 10 + a + b;
            }";
        assert_eq!(run(src), 1);
    }

    #[test]
    fn step_limit_catches_infinite_loops() {
        let e = run_sources(&[("t", "int main() { while (1) { } return 0; }")], 1000);
        assert!(e.unwrap_err().contains("step limit"));
    }

    #[test]
    fn out_of_bounds_detected() {
        let e = run_sources(&[("t", "int a[2]; int main() { return a[5]; }")], 1000);
        assert!(e.unwrap_err().contains("out of bounds"));
    }

    #[test]
    fn null_fnptr_detected() {
        let e = run_sources(&[("t", "fnptr h; int main() { return h(1); }")], 1000);
        assert!(e.unwrap_err().contains("null"));
    }

    #[test]
    fn shift_masking() {
        assert_eq!(run("int main() { return 1 << 65; }"), 2);
        assert_eq!(run("int main() { return -8 >> 1; }"), -4);
    }
}
