//! Tokens of the mini-C source language.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    // Literals and identifiers.
    IntLit(i64),
    FloatLit(f64),
    Ident(String),

    // Keywords.
    KwInt,
    KwFloat,
    KwFnptr,
    KwStatic,
    KwExtern,
    KwIf,
    KwElse,
    KwWhile,
    KwFor,
    KwReturn,

    // Punctuation.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,

    // Operators.
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Shl,
    Shr,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    Ne,
    Not,
    AndAnd,
    OrOr,
    Amp,
    Caret,
    Pipe,
    Assign,

    /// End of input.
    Eof,
}

impl Token {
    /// Keyword lookup for an identifier-shaped lexeme.
    pub fn keyword(s: &str) -> Option<Token> {
        Some(match s {
            "int" => Token::KwInt,
            "float" => Token::KwFloat,
            "fnptr" => Token::KwFnptr,
            "static" => Token::KwStatic,
            "extern" => Token::KwExtern,
            "if" => Token::KwIf,
            "else" => Token::KwElse,
            "while" => Token::KwWhile,
            "for" => Token::KwFor,
            "return" => Token::KwReturn,
            _ => return None,
        })
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::IntLit(v) => write!(f, "{v}"),
            Token::FloatLit(v) => write!(f, "{v}"),
            Token::Ident(s) => write!(f, "{s}"),
            Token::KwInt => write!(f, "int"),
            Token::KwFloat => write!(f, "float"),
            Token::KwFnptr => write!(f, "fnptr"),
            Token::KwStatic => write!(f, "static"),
            Token::KwExtern => write!(f, "extern"),
            Token::KwIf => write!(f, "if"),
            Token::KwElse => write!(f, "else"),
            Token::KwWhile => write!(f, "while"),
            Token::KwFor => write!(f, "for"),
            Token::KwReturn => write!(f, "return"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBrace => write!(f, "{{"),
            Token::RBrace => write!(f, "}}"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::Comma => write!(f, ","),
            Token::Semi => write!(f, ";"),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
            Token::Percent => write!(f, "%"),
            Token::Shl => write!(f, "<<"),
            Token::Shr => write!(f, ">>"),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::EqEq => write!(f, "=="),
            Token::Ne => write!(f, "!="),
            Token::Not => write!(f, "!"),
            Token::AndAnd => write!(f, "&&"),
            Token::OrOr => write!(f, "||"),
            Token::Amp => write!(f, "&"),
            Token::Caret => write!(f, "^"),
            Token::Pipe => write!(f, "|"),
            Token::Assign => write!(f, "="),
            Token::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token with its source line (1-based), for error reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    pub tok: Token,
    pub line: u32,
}
