//! Compilation errors for the mini-C frontend.

use std::fmt;

/// Errors from lexing, parsing, or semantic analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    Lex { line: u32, what: String },
    Parse { line: u32, what: String },
    /// Semantic error; `ctx` names the function or global involved.
    Sema { ctx: String, what: String },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Lex { line, what } => write!(f, "lex error at line {line}: {what}"),
            CompileError::Parse { line, what } => write!(f, "parse error at line {line}: {what}"),
            CompileError::Sema { ctx, what } => write!(f, "semantic error in `{ctx}`: {what}"),
        }
    }
}

impl std::error::Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = CompileError::Sema { ctx: "main".into(), what: "bad".into() };
        assert_eq!(e.to_string(), "semantic error in `main`: bad");
    }
}
