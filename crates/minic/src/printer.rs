//! Pretty-printer: renders an AST back to parseable mini-C source.
//!
//! `parse(print(parse(src)))` must equal `parse(src)` — checked over the
//! whole synthetic benchmark suite — which pins the grammar and printer to
//! each other and gives tools a way to emit source (e.g. after
//! interprocedural merging).

use crate::ast::*;
use std::fmt::Write as _;

/// Renders a unit as source text.
pub fn print_unit(u: &Unit) -> String {
    let mut out = String::new();
    for e in &u.extern_fns {
        let params = e
            .params
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(out, "extern {} {}({});", e.ret.unwrap_or(Type::Int), e.name, params);
    }
    for e in &u.extern_globals {
        match e.array_len {
            Some(n) => {
                let _ = writeln!(out, "extern {} {}[{n}];", e.ty, e.name);
            }
            None => {
                let _ = writeln!(out, "extern {} {};", e.ty, e.name);
            }
        }
    }
    for g in &u.globals {
        let stat = if g.is_static { "static " } else { "" };
        let arr = g.array_len.map(|n| format!("[{n}]")).unwrap_or_default();
        let init = match &g.init {
            GlobalInit::Zero => String::new(),
            GlobalInit::Int(v) => format!(" = {v}"),
            GlobalInit::Float(v) => format!(" = {}", float_lit(*v)),
            GlobalInit::FnAddr(f) => format!(" = &{f}"),
            GlobalInit::List(vs) => format!(
                " = {{ {} }}",
                vs.iter().map(i64::to_string).collect::<Vec<_>>().join(", ")
            ),
            GlobalInit::FloatList(vs) => format!(
                " = {{ {} }}",
                vs.iter().map(|v| float_lit(*v)).collect::<Vec<_>>().join(", ")
            ),
        };
        let _ = writeln!(out, "{stat}{} {}{arr}{init};", g.ty, g.name);
    }
    for f in &u.functions {
        let stat = if f.is_static { "static " } else { "" };
        let params = f
            .params
            .iter()
            .map(|p| format!("{} {}", p.ty, p.name))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(out, "{stat}{} {}({}) {{", f.ret.unwrap_or(Type::Int), f.name, params);
        for s in &f.body {
            print_stmt(&mut out, s, 1);
        }
        let _ = writeln!(out, "}}");
    }
    out
}

/// A float literal the lexer will read back exactly (round-trippable form).
fn float_lit(v: f64) -> String {
    if v < 0.0 || (v == 0.0 && v.is_sign_negative()) {
        // The grammar only allows a leading minus in initializers; inside
        // expressions negatives print as unary minus anyway.
        return format!("-{}", float_lit(-v));
    }
    let s = format!("{v:?}"); // Rust Debug prints shortest round-trip form
    if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
        s
    } else {
        format!("{s}.0")
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn print_stmt(out: &mut String, s: &Stmt, depth: usize) {
    indent(out, depth);
    match s {
        Stmt::Local { ty, name, init } => {
            let _ = writeln!(out, "{ty} {name} = {};", expr(init));
        }
        Stmt::Assign { lhs, rhs } => match lhs {
            LValue::Var(n) => {
                let _ = writeln!(out, "{n} = {};", expr(rhs));
            }
            LValue::Index { name, index } => {
                let _ = writeln!(out, "{name}[{}] = {};", expr(index), expr(rhs));
            }
        },
        Stmt::If { cond, then_body, else_body } => {
            let _ = writeln!(out, "if ({}) {{", expr(cond));
            for t in then_body {
                print_stmt(out, t, depth + 1);
            }
            indent(out, depth);
            if else_body.is_empty() {
                let _ = writeln!(out, "}}");
            } else {
                let _ = writeln!(out, "}} else {{");
                for t in else_body {
                    print_stmt(out, t, depth + 1);
                }
                indent(out, depth);
                let _ = writeln!(out, "}}");
            }
        }
        Stmt::While { cond, body } => {
            let _ = writeln!(out, "while ({}) {{", expr(cond));
            for t in body {
                print_stmt(out, t, depth + 1);
            }
            indent(out, depth);
            let _ = writeln!(out, "}}");
        }
        Stmt::For { init, cond, step, body } => {
            let i = init.as_ref().map(|s| simple_stmt(s)).unwrap_or_default();
            let st = step.as_ref().map(|s| simple_stmt(s)).unwrap_or_default();
            let _ = writeln!(out, "for ({i}; {}; {st}) {{", expr(cond));
            for t in body {
                print_stmt(out, t, depth + 1);
            }
            indent(out, depth);
            let _ = writeln!(out, "}}");
        }
        Stmt::Return(None) => {
            let _ = writeln!(out, "return;");
        }
        Stmt::Return(Some(e)) => {
            let _ = writeln!(out, "return {};", expr(e));
        }
        Stmt::Expr(e) => {
            let _ = writeln!(out, "{};", expr(e));
        }
    }
}

/// Renders a `for`-header clause (assignment or expression, no semicolon).
///
/// # Panics
///
/// Panics on statements the grammar does not allow there (parser never
/// produces them).
fn simple_stmt(s: &Stmt) -> String {
    match s {
        Stmt::Assign { lhs: LValue::Var(n), rhs } => format!("{n} = {}", expr(rhs)),
        Stmt::Assign { lhs: LValue::Index { name, index }, rhs } => {
            format!("{name}[{}] = {}", expr(index), expr(rhs))
        }
        Stmt::Expr(e) => expr(e),
        other => panic!("statement not allowed in for-header: {other:?}"),
    }
}

fn binop(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Rem => "%",
        BinOp::Shl => "<<",
        BinOp::Shr => ">>",
        BinOp::BitAnd => "&",
        BinOp::BitXor => "^",
        BinOp::BitOr => "|",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::LogAnd => "&&",
        BinOp::LogOr => "||",
    }
}

/// Renders an expression, fully parenthesized (correct regardless of
/// precedence, and re-parses to the identical tree).
pub fn expr(e: &Expr) -> String {
    match e {
        Expr::IntLit(v) => {
            if *v == i64::MIN {
                // Not expressible as a negated decimal literal; hex literals
                // are full-range bit patterns.
                "0x8000000000000000".to_string()
            } else if *v < 0 {
                // A bare negative literal re-parses as unary minus; print it
                // that way so the trees match.
                format!("(-{})", -v)
            } else {
                v.to_string()
            }
        }
        Expr::FloatLit(v) => {
            if *v < 0.0 {
                format!("(-{})", float_lit(-v))
            } else {
                float_lit(*v)
            }
        }
        Expr::Var(n) => n.clone(),
        Expr::Index { name, index } => format!("{name}[{}]", expr(index)),
        Expr::Unary { op: UnOp::Neg, expr: e } => format!("(-{})", expr(e)),
        Expr::Unary { op: UnOp::Not, expr: e } => format!("(!{})", expr(e)),
        Expr::Binary { op, lhs, rhs } => {
            format!("({} {} {})", expr(lhs), binop(*op), expr(rhs))
        }
        Expr::Call { name, args } => {
            let a = args.iter().map(expr).collect::<Vec<_>>().join(", ");
            format!("{name}({a})")
        }
        Expr::AddrOf(n) => format!("&{n}"),
        Expr::Cast { ty, expr: e } => format!("{ty}({})", expr(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_unit;

    fn roundtrip(src: &str) {
        let u1 = parse_unit("t", src).unwrap();
        let printed = print_unit(&u1);
        let u2 = parse_unit("t", &printed).unwrap_or_else(|e| panic!("{e}\n{printed}"));
        // Negative literals normalize to unary minus on the first reparse;
        // compare the twice-printed forms instead of raw ASTs.
        let printed2 = print_unit(&u2);
        assert_eq!(printed, printed2, "printer not a fixpoint for\n{src}");
    }

    #[test]
    fn roundtrips_core_syntax() {
        roundtrip(
            "extern int lib(int, int);
             extern float scale;
             int g = -5;
             static float r = 2.5;
             int tab[4] = { 1, -2, 3, 4 };
             fnptr h = &f;
             int f(int a, int b) {
               int acc = a * 2 + b;
               if (acc > 10) { acc = acc - lib(a, b); } else { acc = acc ^ 3; }
               while (acc > 0) { acc = acc - 7; }
               for (a = 0; a < 4; a = a + 1) { tab[a] = acc % 3; }
               h = &f;
               return h(acc) + int(scale) + tab[1];
             }",
        );
    }

    #[test]
    fn roundtrips_floats_exactly() {
        roundtrip("float x = 0.1; float f(float a) { return a * 3.141592653589793 / 1.0e3; }");
    }

    #[test]
    fn fully_parenthesized_expressions_preserve_shape() {
        let u1 = parse_unit("t", "int f(int a) { return a + 2 * 3 - 1; }").unwrap();
        let u2 = parse_unit("t", &print_unit(&u1)).unwrap();
        assert_eq!(u1.functions[0].body, u2.functions[0].body);
    }

    #[test]
    fn extreme_literals_roundtrip() {
        roundtrip("int big = 0x7FFFFFFFFFFFFFFF; int f() { return big + (-9223372036854775807); }");
        // i64::MIN prints as a hex bit pattern.
        let u = parse_unit("t", "int f() { return 0 - 0x8000000000000000; }").unwrap();
        let printed = print_unit(&u);
        assert_eq!(print_unit(&parse_unit("t", &printed).unwrap()), printed);
    }
}
