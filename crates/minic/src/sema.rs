//! Semantic analysis: name resolution and type checking.
//!
//! `check_unit` validates a parsed [`Unit`] and produces a [`UnitInfo`]
//! summary (function signatures and global shapes) that the lowering pass and
//! the interprocedural optimizer consume.

use crate::ast::*;
use crate::error::CompileError;
use std::collections::HashMap;

/// Signature of a callable.
#[derive(Debug, Clone, PartialEq)]
pub struct FnSig {
    pub ret: Type,
    pub params: Vec<Type>,
    /// Defined in this unit (vs `extern`).
    pub local_def: bool,
    pub is_static: bool,
}

/// Shape of a global object.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GlobalShape {
    pub ty: Type,
    pub array_len: Option<u64>,
    pub local_def: bool,
    pub is_static: bool,
}

/// Name-resolution summary of a unit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct UnitInfo {
    pub fns: HashMap<String, FnSig>,
    pub globals: HashMap<String, GlobalShape>,
}

impl UnitInfo {
    /// Collects declarations without checking bodies. Used by `check_unit`
    /// and by the interprocedural merger.
    pub fn collect(unit: &Unit) -> Result<UnitInfo, CompileError> {
        let mut info = UnitInfo::default();
        let dup = |name: &str| CompileError::Sema {
            ctx: name.to_string(),
            what: "duplicate definition".into(),
        };
        for f in &unit.functions {
            let sig = FnSig {
                ret: f.ret.unwrap_or(Type::Int),
                params: f.params.iter().map(|p| p.ty).collect(),
                local_def: true,
                is_static: f.is_static,
            };
            if info.fns.insert(f.name.clone(), sig).is_some() {
                return Err(dup(&f.name));
            }
        }
        for e in &unit.extern_fns {
            info.fns.entry(e.name.clone()).or_insert(FnSig {
                ret: e.ret.unwrap_or(Type::Int),
                params: e.params.clone(),
                local_def: false,
                is_static: false,
            });
        }
        for g in &unit.globals {
            let shape = GlobalShape {
                ty: g.ty,
                array_len: g.array_len,
                local_def: true,
                is_static: g.is_static,
            };
            if info.globals.insert(g.name.clone(), shape).is_some() || info.fns.contains_key(&g.name)
            {
                return Err(dup(&g.name));
            }
        }
        for e in &unit.extern_globals {
            info.globals.entry(e.name.clone()).or_insert(GlobalShape {
                ty: e.ty,
                array_len: e.array_len,
                local_def: false,
                is_static: false,
            });
        }
        Ok(info)
    }
}

/// Scoped variable environment used while checking one function.
struct Scope<'a> {
    info: &'a UnitInfo,
    /// Stack of (name, type) with block markers.
    vars: Vec<(String, Type)>,
    marks: Vec<usize>,
    fn_name: &'a str,
    ret: Type,
}

impl<'a> Scope<'a> {
    fn err<T>(&self, what: impl Into<String>) -> Result<T, CompileError> {
        Err(CompileError::Sema { ctx: self.fn_name.to_string(), what: what.into() })
    }

    fn push(&mut self) {
        self.marks.push(self.vars.len());
    }

    fn pop(&mut self) {
        let m = self.marks.pop().expect("unbalanced scope");
        self.vars.truncate(m);
    }

    fn lookup_var(&self, name: &str) -> Option<Type> {
        self.vars.iter().rev().find(|(n, _)| n == name).map(|&(_, t)| t)
    }

    /// The type of an expression; errors on unresolvable names or misuse.
    fn type_of(&self, e: &Expr) -> Result<Type, CompileError> {
        match e {
            Expr::IntLit(_) => Ok(Type::Int),
            Expr::FloatLit(_) => Ok(Type::Float),
            Expr::Var(name) => {
                if let Some(t) = self.lookup_var(name) {
                    return Ok(t);
                }
                if let Some(g) = self.info.globals.get(name) {
                    if g.array_len.is_some() {
                        return self.err(format!("array `{name}` used without index"));
                    }
                    return Ok(g.ty);
                }
                self.err(format!("unknown variable `{name}`"))
            }
            Expr::Index { name, index } => {
                let Some(g) = self.info.globals.get(name) else {
                    return self.err(format!("unknown array `{name}`"));
                };
                if g.array_len.is_none() {
                    return self.err(format!("`{name}` is not an array"));
                }
                if self.type_of(index)? != Type::Int {
                    return self.err("array index must be int");
                }
                Ok(g.ty)
            }
            Expr::Unary { op, expr } => {
                let t = self.type_of(expr)?;
                match op {
                    UnOp::Neg => {
                        if t == Type::Fnptr {
                            return self.err("cannot negate fnptr");
                        }
                        Ok(t)
                    }
                    UnOp::Not => {
                        if t != Type::Int {
                            return self.err("`!` requires int");
                        }
                        Ok(Type::Int)
                    }
                }
            }
            Expr::Binary { op, lhs, rhs } => {
                let lt = self.type_of(lhs)?;
                let rt = self.type_of(rhs)?;
                if lt == Type::Fnptr || rt == Type::Fnptr {
                    // Only equality comparison is meaningful on fnptrs.
                    if matches!(op, BinOp::Eq | BinOp::Ne) && lt == rt {
                        return Ok(Type::Int);
                    }
                    return self.err("invalid fnptr arithmetic");
                }
                if op.int_only() {
                    if lt != Type::Int || rt != Type::Int {
                        return self.err("operator requires int operands".to_string());
                    }
                    return Ok(Type::Int);
                }
                if op.is_comparison() {
                    return Ok(Type::Int);
                }
                // Arithmetic: float if either side is float.
                Ok(if lt == Type::Float || rt == Type::Float {
                    Type::Float
                } else {
                    Type::Int
                })
            }
            Expr::Call { name, args } => {
                // A variable of type fnptr shadows any function of the name.
                if let Some(t) = self.lookup_var(name) {
                    if t != Type::Fnptr {
                        return self.err(format!("`{name}` is not callable"));
                    }
                    for a in args {
                        let at = self.type_of(a)?;
                        if at == Type::Fnptr {
                            return self.err("cannot pass fnptr to indirect call");
                        }
                    }
                    // Indirect calls are int-valued by convention.
                    return Ok(Type::Int);
                }
                if let Some(g) = self.info.globals.get(name) {
                    if g.ty == Type::Fnptr && g.array_len.is_none() {
                        for a in args {
                            self.type_of(a)?;
                        }
                        return Ok(Type::Int);
                    }
                }
                let Some(sig) = self.info.fns.get(name) else {
                    return self.err(format!("call to undeclared function `{name}`"));
                };
                if sig.params.len() != args.len() {
                    return self.err(format!(
                        "`{name}` expects {} arguments, got {}",
                        sig.params.len(),
                        args.len()
                    ));
                }
                for (a, &pt) in args.iter().zip(&sig.params) {
                    let at = self.type_of(a)?;
                    let ok = at == pt
                        || (at == Type::Int && pt == Type::Float)
                        || (at == Type::Float && pt == Type::Int);
                    if !ok {
                        return self.err(format!("argument type mismatch calling `{name}`"));
                    }
                }
                Ok(sig.ret)
            }
            Expr::AddrOf(name) => {
                if self.info.fns.contains_key(name) {
                    Ok(Type::Fnptr)
                } else {
                    self.err(format!("`&{name}`: unknown function"))
                }
            }
            Expr::Cast { ty, expr } => {
                let t = self.type_of(expr)?;
                if t == Type::Fnptr || *ty == Type::Fnptr {
                    return self.err("cannot cast fnptr");
                }
                Ok(*ty)
            }
        }
    }

    fn assignable(&self, dst: Type, src: Type) -> bool {
        dst == src
            || (dst == Type::Int && src == Type::Float)
            || (dst == Type::Float && src == Type::Int)
    }

    fn check_stmts(&mut self, stmts: &[Stmt]) -> Result<(), CompileError> {
        self.push();
        for s in stmts {
            self.check_stmt(s)?;
        }
        self.pop();
        Ok(())
    }

    fn check_stmt(&mut self, s: &Stmt) -> Result<(), CompileError> {
        match s {
            Stmt::Local { ty, name, init } => {
                let it = self.type_of(init)?;
                if !self.assignable(*ty, it) {
                    return self.err(format!("cannot initialize {ty} `{name}` from {it}"));
                }
                self.vars.push((name.clone(), *ty));
                Ok(())
            }
            Stmt::Assign { lhs, rhs } => {
                let rt = self.type_of(rhs)?;
                let lt = match lhs {
                    LValue::Var(name) => {
                        if let Some(t) = self.lookup_var(name) {
                            t
                        } else if let Some(g) = self.info.globals.get(name) {
                            if g.array_len.is_some() {
                                return self.err(format!("cannot assign whole array `{name}`"));
                            }
                            g.ty
                        } else {
                            return self.err(format!("assignment to unknown `{name}`"));
                        }
                    }
                    LValue::Index { name, index } => {
                        let Some(g) = self.info.globals.get(name) else {
                            return self.err(format!("unknown array `{name}`"));
                        };
                        if g.array_len.is_none() {
                            return self.err(format!("`{name}` is not an array"));
                        }
                        if self.type_of(index)? != Type::Int {
                            return self.err("array index must be int");
                        }
                        g.ty
                    }
                };
                if !self.assignable(lt, rt) {
                    return self.err(format!("cannot assign {rt} to {lt}"));
                }
                Ok(())
            }
            Stmt::If { cond, then_body, else_body } => {
                if self.type_of(cond)? != Type::Int {
                    return self.err("condition must be int");
                }
                self.check_stmts(then_body)?;
                self.check_stmts(else_body)
            }
            Stmt::While { cond, body } => {
                if self.type_of(cond)? != Type::Int {
                    return self.err("condition must be int");
                }
                self.check_stmts(body)
            }
            Stmt::For { init, cond, step, body } => {
                self.push();
                if let Some(i) = init {
                    self.check_stmt(i)?;
                }
                if self.type_of(cond)? != Type::Int {
                    return self.err("condition must be int");
                }
                if let Some(st) = step {
                    self.check_stmt(st)?;
                }
                self.check_stmts(body)?;
                self.pop();
                Ok(())
            }
            Stmt::Return(val) => match val {
                None => Ok(()),
                Some(e) => {
                    let t = self.type_of(e)?;
                    if !self.assignable(self.ret, t) {
                        return self.err(format!("returning {t} from {} function", self.ret));
                    }
                    Ok(())
                }
            },
            Stmt::Expr(e) => {
                self.type_of(e)?;
                Ok(())
            }
        }
    }
}

/// Checks a unit and returns its declaration summary.
///
/// # Errors
///
/// Returns the first [`CompileError::Sema`] found.
pub fn check_unit(unit: &Unit) -> Result<UnitInfo, CompileError> {
    let info = UnitInfo::collect(unit)?;
    for f in &unit.functions {
        let mut scope = Scope {
            info: &info,
            vars: f.params.iter().map(|p| (p.name.clone(), p.ty)).collect(),
            marks: Vec::new(),
            fn_name: &f.name,
            ret: f.ret.unwrap_or(Type::Int),
        };
        scope.check_stmts(&f.body)?;
    }
    // Check fnptr global initializers name real functions.
    for g in &unit.globals {
        if let GlobalInit::FnAddr(f) = &g.init {
            if !info.fns.contains_key(f) {
                return Err(CompileError::Sema {
                    ctx: g.name.clone(),
                    what: format!("initializer names unknown function `{f}`"),
                });
            }
        }
    }
    Ok(info)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_unit;

    fn check(src: &str) -> Result<UnitInfo, CompileError> {
        check_unit(&parse_unit("t", src).unwrap())
    }

    #[test]
    fn well_typed_unit_passes() {
        let info = check(
            "int acc;\n\
             float mean;\n\
             int buf[16];\n\
             extern int lib_hash(int);\n\
             static int helper(int x) { return x * 2; }\n\
             int main() {\n\
               int i = 0;\n\
               for (i = 0; i < 16; i = i + 1) { buf[i] = helper(i); }\n\
               mean = float(acc) / 16.0;\n\
               return lib_hash(acc) + int(mean);\n\
             }",
        )
        .unwrap();
        assert!(info.fns["helper"].is_static);
        assert!(!info.fns["lib_hash"].local_def);
        assert_eq!(info.globals["buf"].array_len, Some(16));
    }

    #[test]
    fn unknown_variable_rejected() {
        assert!(check("int f() { return mystery; }").is_err());
    }

    #[test]
    fn arity_mismatch_rejected() {
        assert!(check("int g(int a, int b) { return a + b; } int f() { return g(1); }").is_err());
    }

    #[test]
    fn fnptr_rules() {
        // Calling through a fnptr variable is fine; arithmetic is not.
        assert!(check("fnptr h; int f(int x) { return x; } int m() { h = &f; return h(1); }")
            .is_ok());
        assert!(check("fnptr h; int m() { return h + 1; }").is_err());
        assert!(check("int m() { return &missing == &missing; }").is_err());
    }

    #[test]
    fn int_only_operators_reject_floats() {
        assert!(check("int f(float x) { return x % 2; }").is_err());
        assert!(check("int f(float x) { return x << 1; }").is_err());
    }

    #[test]
    fn implicit_conversions_allowed() {
        assert!(check("float f(int x) { return x; }").is_ok());
        assert!(check("int f(float x) { return x; }").is_ok());
        assert!(check("float g(float y) { return y * 2.0; } float f() { return g(3); }").is_ok());
    }

    #[test]
    fn whole_array_use_rejected() {
        assert!(check("int a[4]; int f() { return a; }").is_err());
        assert!(check("int a[4]; int f() { a = 3; return 0; }").is_err());
        assert!(check("int x; int f() { return x[0]; }").is_err());
    }

    #[test]
    fn duplicate_definitions_rejected() {
        assert!(check("int f() { return 0; } int f() { return 1; }").is_err());
        assert!(check("int x; float x;").is_err());
    }

    #[test]
    fn block_scoping() {
        assert!(check(
            "int f(int c) { if (c) { int t = 1; c = t; } return t; }"
        )
        .is_err());
        assert!(check(
            "int f(int c) { if (c) { int t = 1; c = t; } int t = 2; return t; }"
        )
        .is_ok());
    }

    #[test]
    fn bad_fnptr_initializer_rejected() {
        assert!(check("fnptr h = &nowhere;").is_err());
    }

    #[test]
    fn condition_must_be_int() {
        assert!(check("int f(float x) { while (x) { x = x - 1.0; } return 0; }").is_err());
    }
}
