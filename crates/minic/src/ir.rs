//! A small three-address intermediate representation.
//!
//! Lowering flattens mini-C's structured control flow into labels and
//! branches, resolves names, makes implicit conversions explicit, and —
//! because the Alpha has no integer divide instruction — rewrites integer
//! `/` and `%` into calls to the library routines `__divq` and `__remq`
//! (the way Alpha/OSF compiled code called libc millicode, and one of the
//! reasons library calls are so common in the paper's benchmarks).

use std::fmt;

/// Register class: integer (also used for `fnptr` values) or floating.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Class {
    Int,
    Fp,
}

/// A virtual register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VReg {
    pub id: u32,
    pub class: Class,
}

impl fmt::Display for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.class {
            Class::Int => write!(f, "v{}", self.id),
            Class::Fp => write!(f, "w{}", self.id),
        }
    }
}

/// An operand: virtual register or immediate constant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Val {
    R(VReg),
    I(i64),
    F(f64),
}

impl Val {
    /// The register, if this operand is one.
    pub fn reg(self) -> Option<VReg> {
        match self {
            Val::R(r) => Some(r),
            _ => None,
        }
    }
}

impl fmt::Display for Val {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Val::R(r) => write!(f, "{r}"),
            Val::I(v) => write!(f, "{v}"),
            Val::F(v) => write!(f, "{v}"),
        }
    }
}

/// A branch target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(pub u32);

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Integer binary operations (divide/remainder are library calls, not ops).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IBin {
    Add,
    Sub,
    Mul,
    And,
    Or,
    Xor,
    Shl,
    /// Arithmetic shift right.
    Shr,
}

/// Floating binary operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FBin {
    Add,
    Sub,
    Mul,
    Div,
}

/// Comparison predicates (result is int 0/1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cmp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl Cmp {
    /// The predicate with operands swapped (`a < b` ⇔ `b > a`).
    pub fn swap(self) -> Cmp {
        match self {
            Cmp::Eq => Cmp::Eq,
            Cmp::Ne => Cmp::Ne,
            Cmp::Lt => Cmp::Gt,
            Cmp::Le => Cmp::Ge,
            Cmp::Gt => Cmp::Lt,
            Cmp::Ge => Cmp::Le,
        }
    }

    /// The negated predicate.
    pub fn negate(self) -> Cmp {
        match self {
            Cmp::Eq => Cmp::Ne,
            Cmp::Ne => Cmp::Eq,
            Cmp::Lt => Cmp::Ge,
            Cmp::Le => Cmp::Gt,
            Cmp::Gt => Cmp::Le,
            Cmp::Ge => Cmp::Lt,
        }
    }
}

/// IR instructions.
#[derive(Debug, Clone, PartialEq)]
pub enum Ir {
    Label(Label),
    Jump(Label),
    /// Branch to `target` when `cond != 0` (or `== 0` with `when_zero`).
    Branch {
        cond: VReg,
        when_zero: bool,
        target: Label,
    },
    BinI { op: IBin, dst: VReg, a: Val, b: Val },
    BinF { op: FBin, dst: VReg, a: Val, b: Val },
    CmpI { op: Cmp, dst: VReg, a: Val, b: Val },
    CmpF { op: Cmp, dst: VReg, a: Val, b: Val },
    MovI { dst: VReg, src: Val },
    MovF { dst: VReg, src: Val },
    /// int → float.
    CvtIF { dst: VReg, src: Val },
    /// float → int (truncating).
    CvtFI { dst: VReg, src: Val },
    /// Load a scalar global.
    LdGlobal { dst: VReg, sym: String },
    StGlobal { sym: String, src: Val },
    /// Load `sym[index]` from a global array (elements are 8 bytes).
    LdElem { dst: VReg, sym: String, index: Val },
    StElem { sym: String, index: Val, src: Val },
    /// Load the address of function `sym` (a procedure value).
    LdFnAddr { dst: VReg, sym: String },
    /// Direct call.
    Call {
        dst: Option<VReg>,
        name: String,
        args: Vec<Val>,
    },
    /// Indirect call through a procedure variable.
    CallInd {
        dst: Option<VReg>,
        target: VReg,
        args: Vec<Val>,
    },
    Ret(Option<Val>),
}

impl Ir {
    /// The destination register this instruction writes, if any.
    pub fn dst(&self) -> Option<VReg> {
        match self {
            Ir::BinI { dst, .. }
            | Ir::BinF { dst, .. }
            | Ir::CmpI { dst, .. }
            | Ir::CmpF { dst, .. }
            | Ir::MovI { dst, .. }
            | Ir::MovF { dst, .. }
            | Ir::CvtIF { dst, .. }
            | Ir::CvtFI { dst, .. }
            | Ir::LdGlobal { dst, .. }
            | Ir::LdElem { dst, .. }
            | Ir::LdFnAddr { dst, .. } => Some(*dst),
            Ir::Call { dst, .. } | Ir::CallInd { dst, .. } => *dst,
            _ => None,
        }
    }

    /// The operand values this instruction reads.
    pub fn uses(&self) -> Vec<Val> {
        match self {
            Ir::Branch { cond, .. } => vec![Val::R(*cond)],
            Ir::BinI { a, b, .. }
            | Ir::BinF { a, b, .. }
            | Ir::CmpI { a, b, .. }
            | Ir::CmpF { a, b, .. } => vec![*a, *b],
            Ir::MovI { src, .. }
            | Ir::MovF { src, .. }
            | Ir::CvtIF { src, .. }
            | Ir::CvtFI { src, .. }
            | Ir::StGlobal { src, .. } => vec![*src],
            Ir::LdElem { index, .. } => vec![*index],
            Ir::StElem { index, src, .. } => vec![*index, *src],
            Ir::Call { args, .. } => args.clone(),
            Ir::CallInd { target, args, .. } => {
                let mut v = vec![Val::R(*target)];
                v.extend(args.iter().copied());
                v
            }
            Ir::Ret(Some(v)) => vec![*v],
            _ => Vec::new(),
        }
    }

    /// True for instructions ending straight-line flow.
    pub fn is_terminator(&self) -> bool {
        matches!(self, Ir::Jump(_) | Ir::Branch { .. } | Ir::Ret(_))
    }
}

/// A lowered function.
#[derive(Debug, Clone, PartialEq)]
pub struct IrFunction {
    pub name: String,
    pub is_static: bool,
    pub ret: Class,
    /// Parameter vregs in declaration order.
    pub params: Vec<VReg>,
    pub body: Vec<Ir>,
    /// Number of integer / fp vregs allocated.
    pub n_int: u32,
    pub n_fp: u32,
}

/// A lowered compilation unit: IR functions plus the original globals (the
/// backend lays globals out; IR references them by name).
#[derive(Debug, Clone, PartialEq)]
pub struct IrUnit {
    pub name: String,
    pub functions: Vec<IrFunction>,
    pub globals: Vec<crate::ast::Global>,
    pub info: crate::sema::UnitInfo,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_negate_and_swap() {
        assert_eq!(Cmp::Lt.negate(), Cmp::Ge);
        assert_eq!(Cmp::Lt.swap(), Cmp::Gt);
        assert_eq!(Cmp::Eq.swap(), Cmp::Eq);
        for c in [Cmp::Eq, Cmp::Ne, Cmp::Lt, Cmp::Le, Cmp::Gt, Cmp::Ge] {
            assert_eq!(c.negate().negate(), c);
            assert_eq!(c.swap().swap(), c);
        }
    }

    #[test]
    fn dst_and_uses() {
        let v = VReg { id: 0, class: Class::Int };
        let w = VReg { id: 1, class: Class::Int };
        let i = Ir::BinI { op: IBin::Add, dst: w, a: Val::R(v), b: Val::I(1) };
        assert_eq!(i.dst(), Some(w));
        assert_eq!(i.uses(), vec![Val::R(v), Val::I(1)]);
        assert!(Ir::Ret(None).is_terminator());
        assert!(!i.is_terminator());
    }
}
