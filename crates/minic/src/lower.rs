//! Lowering from the AST to the three-address IR.

use crate::ast::*;
use crate::error::CompileError;
use crate::ir::*;
use crate::sema::{check_unit, UnitInfo};

/// Lowers a checked unit to IR.
///
/// # Errors
///
/// Runs [`check_unit`] first and propagates its errors; lowering itself
/// cannot fail on a checked unit.
pub fn lower_unit(unit: &Unit) -> Result<IrUnit, CompileError> {
    let info = check_unit(unit)?;
    let functions = unit
        .functions
        .iter()
        .map(|f| Lowerer::new(&info, f).run())
        .collect();
    Ok(IrUnit {
        name: unit.name.clone(),
        functions,
        globals: unit.globals.clone(),
        info,
    })
}

fn class_of(ty: Type) -> Class {
    match ty {
        Type::Float => Class::Fp,
        Type::Int | Type::Fnptr => Class::Int,
    }
}

struct Lowerer<'a> {
    info: &'a UnitInfo,
    func: &'a Function,
    out: Vec<Ir>,
    vars: Vec<(String, VReg, Type)>,
    marks: Vec<usize>,
    n_int: u32,
    n_fp: u32,
    n_label: u32,
}

impl<'a> Lowerer<'a> {
    fn new(info: &'a UnitInfo, func: &'a Function) -> Lowerer<'a> {
        Lowerer {
            info,
            func,
            out: Vec::new(),
            vars: Vec::new(),
            marks: Vec::new(),
            n_int: 0,
            n_fp: 0,
            n_label: 0,
        }
    }

    fn fresh(&mut self, class: Class) -> VReg {
        let id = match class {
            Class::Int => {
                self.n_int += 1;
                self.n_int - 1
            }
            Class::Fp => {
                self.n_fp += 1;
                self.n_fp - 1
            }
        };
        VReg { id, class }
    }

    fn label(&mut self) -> Label {
        self.n_label += 1;
        Label(self.n_label - 1)
    }

    fn run(mut self) -> IrFunction {
        let params: Vec<VReg> = self
            .func
            .params
            .iter()
            .map(|p| {
                let r = self.fresh(class_of(p.ty));
                self.vars.push((p.name.clone(), r, p.ty));
                r
            })
            .collect();

        let body: &[Stmt] = &self.func.body;
        self.stmts(body);

        let ret_ty = self.func.ret.unwrap_or(Type::Int);
        // Guarantee the function ends with a return.
        if !matches!(self.out.last(), Some(Ir::Ret(_))) {
            let zero = match ret_ty {
                Type::Float => Val::F(0.0),
                _ => Val::I(0),
            };
            self.out.push(Ir::Ret(Some(zero)));
        }

        IrFunction {
            name: self.func.name.clone(),
            is_static: self.func.is_static,
            ret: class_of(ret_ty),
            params,
            body: self.out,
            n_int: self.n_int,
            n_fp: self.n_fp,
        }
    }

    fn lookup(&self, name: &str) -> Option<(VReg, Type)> {
        self.vars
            .iter()
            .rev()
            .find(|(n, _, _)| n == name)
            .map(|&(_, r, t)| (r, t))
    }

    fn stmts(&mut self, stmts: &[Stmt]) {
        self.marks.push(self.vars.len());
        for s in stmts {
            self.stmt(s);
        }
        let m = self.marks.pop().expect("unbalanced scope");
        self.vars.truncate(m);
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Local { ty, name, init } => {
                let (v, it) = self.expr(init);
                let v = self.coerce(v, it, *ty);
                let r = self.fresh(class_of(*ty));
                self.mov(r, v);
                self.vars.push((name.clone(), r, *ty));
            }
            Stmt::Assign { lhs, rhs } => {
                let (v, rt) = self.expr(rhs);
                match lhs {
                    LValue::Var(name) => {
                        if let Some((r, lt)) = self.lookup(name) {
                            let v = self.coerce(v, rt, lt);
                            self.mov(r, v);
                        } else {
                            let g = self.info.globals[name];
                            let v = self.coerce(v, rt, g.ty);
                            self.out.push(Ir::StGlobal { sym: name.clone(), src: v });
                        }
                    }
                    LValue::Index { name, index } => {
                        let g = self.info.globals[name.as_str()];
                        let v = self.coerce(v, rt, g.ty);
                        let (iv, _) = self.expr(index);
                        self.out.push(Ir::StElem { sym: name.clone(), index: iv, src: v });
                    }
                }
            }
            Stmt::If { cond, then_body, else_body } => {
                let c = self.cond_reg(cond);
                let l_else = self.label();
                let l_end = self.label();
                self.out.push(Ir::Branch { cond: c, when_zero: true, target: l_else });
                self.stmts(then_body);
                if else_body.is_empty() {
                    self.out.push(Ir::Label(l_else));
                } else {
                    self.out.push(Ir::Jump(l_end));
                    self.out.push(Ir::Label(l_else));
                    self.stmts(else_body);
                    self.out.push(Ir::Label(l_end));
                }
            }
            Stmt::While { cond, body } => {
                let l_head = self.label();
                let l_end = self.label();
                self.out.push(Ir::Label(l_head));
                let c = self.cond_reg(cond);
                self.out.push(Ir::Branch { cond: c, when_zero: true, target: l_end });
                self.stmts(body);
                self.out.push(Ir::Jump(l_head));
                self.out.push(Ir::Label(l_end));
            }
            Stmt::For { init, cond, step, body } => {
                self.marks.push(self.vars.len());
                if let Some(i) = init {
                    self.stmt(i);
                }
                let l_head = self.label();
                let l_end = self.label();
                self.out.push(Ir::Label(l_head));
                let c = self.cond_reg(cond);
                self.out.push(Ir::Branch { cond: c, when_zero: true, target: l_end });
                self.stmts(body);
                if let Some(st) = step {
                    self.stmt(st);
                }
                self.out.push(Ir::Jump(l_head));
                self.out.push(Ir::Label(l_end));
                let m = self.marks.pop().expect("unbalanced scope");
                self.vars.truncate(m);
            }
            Stmt::Return(val) => {
                let ret_ty = self.func.ret.unwrap_or(Type::Int);
                let v = match val {
                    Some(e) => {
                        let (v, t) = self.expr(e);
                        self.coerce(v, t, ret_ty)
                    }
                    None => match ret_ty {
                        Type::Float => Val::F(0.0),
                        _ => Val::I(0),
                    },
                };
                self.out.push(Ir::Ret(Some(v)));
            }
            Stmt::Expr(e) => {
                // Evaluate for side effects; calls keep their result register
                // so the value can simply be ignored.
                let _ = self.expr(e);
            }
        }
    }

    fn mov(&mut self, dst: VReg, src: Val) {
        match dst.class {
            Class::Int => self.out.push(Ir::MovI { dst, src }),
            Class::Fp => self.out.push(Ir::MovF { dst, src }),
        }
    }

    /// Materializes a value into a register of its class.
    fn as_reg(&mut self, v: Val, ty: Type) -> VReg {
        if let Val::R(r) = v {
            return r;
        }
        let r = self.fresh(class_of(ty));
        self.mov(r, v);
        r
    }

    fn coerce(&mut self, v: Val, from: Type, to: Type) -> Val {
        let fc = class_of(from);
        let tc = class_of(to);
        if fc == tc {
            return v;
        }
        match (fc, tc) {
            (Class::Int, Class::Fp) => {
                if let Val::I(c) = v {
                    return Val::F(c as f64);
                }
                let dst = self.fresh(Class::Fp);
                self.out.push(Ir::CvtIF { dst, src: v });
                Val::R(dst)
            }
            (Class::Fp, Class::Int) => {
                if let Val::F(c) = v {
                    return Val::I(c as i64);
                }
                let dst = self.fresh(Class::Int);
                self.out.push(Ir::CvtFI { dst, src: v });
                Val::R(dst)
            }
            _ => unreachable!(),
        }
    }

    /// Evaluates a condition to an int register.
    fn cond_reg(&mut self, e: &Expr) -> VReg {
        let (v, t) = self.expr(e);
        let v = self.coerce(v, t, Type::Int);
        self.as_reg(v, Type::Int)
    }

    /// Lowers an expression, returning its value and source type.
    fn expr(&mut self, e: &Expr) -> (Val, Type) {
        match e {
            Expr::IntLit(v) => (Val::I(*v), Type::Int),
            Expr::FloatLit(v) => (Val::F(*v), Type::Float),
            Expr::Var(name) => {
                if let Some((r, t)) = self.lookup(name) {
                    return (Val::R(r), t);
                }
                let g = self.info.globals[name.as_str()];
                let dst = self.fresh(class_of(g.ty));
                self.out.push(Ir::LdGlobal { dst, sym: name.clone() });
                (Val::R(dst), g.ty)
            }
            Expr::Index { name, index } => {
                let g = self.info.globals[name.as_str()];
                let (iv, _) = self.expr(index);
                let dst = self.fresh(class_of(g.ty));
                self.out.push(Ir::LdElem { dst, sym: name.clone(), index: iv });
                (Val::R(dst), g.ty)
            }
            Expr::Unary { op, expr } => {
                let (v, t) = self.expr(expr);
                match op {
                    UnOp::Neg => {
                        if t == Type::Float {
                            let dst = self.fresh(Class::Fp);
                            self.out.push(Ir::BinF { op: FBin::Sub, dst, a: Val::F(0.0), b: v });
                            (Val::R(dst), Type::Float)
                        } else {
                            let dst = self.fresh(Class::Int);
                            self.out.push(Ir::BinI { op: IBin::Sub, dst, a: Val::I(0), b: v });
                            (Val::R(dst), Type::Int)
                        }
                    }
                    UnOp::Not => {
                        let dst = self.fresh(Class::Int);
                        self.out.push(Ir::CmpI { op: Cmp::Eq, dst, a: v, b: Val::I(0) });
                        (Val::R(dst), Type::Int)
                    }
                }
            }
            Expr::Binary { op, lhs, rhs } => self.binary(*op, lhs, rhs),
            Expr::Call { name, args } => {
                // Indirect through a fnptr variable or global.
                if let Some((r, t)) = self.lookup(name) {
                    assert_eq!(t, Type::Fnptr, "sema admitted non-callable");
                    return self.call_indirect(r, args);
                }
                if let Some(g) = self.info.globals.get(name.as_str()) {
                    if g.ty == Type::Fnptr && g.array_len.is_none() {
                        let r = self.fresh(Class::Int);
                        self.out.push(Ir::LdGlobal { dst: r, sym: name.clone() });
                        return self.call_indirect(r, args);
                    }
                }
                let sig = self.info.fns[name.as_str()].clone();
                let mut vals = Vec::with_capacity(args.len());
                for (a, &pt) in args.iter().zip(&sig.params) {
                    let (v, at) = self.expr(a);
                    vals.push(self.coerce(v, at, pt));
                }
                let dst = self.fresh(class_of(sig.ret));
                self.out.push(Ir::Call { dst: Some(dst), name: name.clone(), args: vals });
                (Val::R(dst), sig.ret)
            }
            Expr::AddrOf(name) => {
                let dst = self.fresh(Class::Int);
                self.out.push(Ir::LdFnAddr { dst, sym: name.clone() });
                (Val::R(dst), Type::Fnptr)
            }
            Expr::Cast { ty, expr } => {
                let (v, t) = self.expr(expr);
                (self.coerce(v, t, *ty), *ty)
            }
        }
    }

    fn call_indirect(&mut self, target: VReg, args: &[Expr]) -> (Val, Type) {
        let mut vals = Vec::with_capacity(args.len());
        for a in args {
            let (v, at) = self.expr(a);
            // Indirect calls pass and return integers by convention.
            vals.push(self.coerce(v, at, Type::Int));
        }
        let dst = self.fresh(Class::Int);
        self.out.push(Ir::CallInd { dst: Some(dst), target, args: vals });
        (Val::R(dst), Type::Int)
    }

    fn binary(&mut self, op: BinOp, lhs: &Expr, rhs: &Expr) -> (Val, Type) {
        // Short-circuit forms first: rhs must not be evaluated eagerly.
        if matches!(op, BinOp::LogAnd | BinOp::LogOr) {
            let dst = self.fresh(Class::Int);
            let l_end = self.label();
            let (seed, when_zero) = if op == BinOp::LogAnd { (0, true) } else { (1, false) };
            self.out.push(Ir::MovI { dst, src: Val::I(seed) });
            let a = self.cond_reg(lhs);
            self.out.push(Ir::Branch { cond: a, when_zero, target: l_end });
            let b = self.cond_reg(rhs);
            self.out.push(Ir::CmpI { op: Cmp::Ne, dst, a: Val::R(b), b: Val::I(0) });
            self.out.push(Ir::Label(l_end));
            return (Val::R(dst), Type::Int);
        }

        let (lv, lt) = self.expr(lhs);
        let (rv, rt) = self.expr(rhs);

        // fnptr equality compares the underlying addresses as integers.
        let float = (lt == Type::Float || rt == Type::Float)
            && lt != Type::Fnptr
            && rt != Type::Fnptr;

        if op.is_comparison() {
            let dst = self.fresh(Class::Int);
            let cmp = match op {
                BinOp::Lt => Cmp::Lt,
                BinOp::Le => Cmp::Le,
                BinOp::Gt => Cmp::Gt,
                BinOp::Ge => Cmp::Ge,
                BinOp::Eq => Cmp::Eq,
                BinOp::Ne => Cmp::Ne,
                _ => unreachable!(),
            };
            if float {
                let a = self.coerce(lv, lt, Type::Float);
                let b = self.coerce(rv, rt, Type::Float);
                self.out.push(Ir::CmpF { op: cmp, dst, a, b });
            } else {
                self.out.push(Ir::CmpI { op: cmp, dst, a: lv, b: rv });
            }
            return (Val::R(dst), Type::Int);
        }

        if float {
            let a = self.coerce(lv, lt, Type::Float);
            let b = self.coerce(rv, rt, Type::Float);
            let dst = self.fresh(Class::Fp);
            let fop = match op {
                BinOp::Add => FBin::Add,
                BinOp::Sub => FBin::Sub,
                BinOp::Mul => FBin::Mul,
                BinOp::Div => FBin::Div,
                _ => unreachable!("sema rejected int-only op on floats"),
            };
            self.out.push(Ir::BinF { op: fop, dst, a, b });
            return (Val::R(dst), Type::Float);
        }

        // Integer divide and remainder become library calls: the Alpha has
        // no integer-divide instruction.
        if matches!(op, BinOp::Div | BinOp::Rem) {
            let name = if op == BinOp::Div { "__divq" } else { "__remq" };
            let dst = self.fresh(Class::Int);
            self.out.push(Ir::Call {
                dst: Some(dst),
                name: name.to_string(),
                args: vec![lv, rv],
            });
            return (Val::R(dst), Type::Int);
        }

        let iop = match op {
            BinOp::Add => IBin::Add,
            BinOp::Sub => IBin::Sub,
            BinOp::Mul => IBin::Mul,
            BinOp::BitAnd => IBin::And,
            BinOp::BitOr => IBin::Or,
            BinOp::BitXor => IBin::Xor,
            BinOp::Shl => IBin::Shl,
            BinOp::Shr => IBin::Shr,
            _ => unreachable!(),
        };
        let dst = self.fresh(Class::Int);
        self.out.push(Ir::BinI { op: iop, dst, a: lv, b: rv });
        (Val::R(dst), Type::Int)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_unit;

    fn lower(src: &str) -> IrUnit {
        lower_unit(&parse_unit("t", src).unwrap()).unwrap()
    }

    fn lower_fn(src: &str) -> IrFunction {
        lower(src).functions.into_iter().next().unwrap()
    }

    #[test]
    fn straight_line_lowering() {
        let f = lower_fn("int f(int a, int b) { return a + b * 2; }");
        assert_eq!(f.params.len(), 2);
        assert!(matches!(f.body[0], Ir::BinI { op: IBin::Mul, .. }));
        assert!(matches!(f.body[1], Ir::BinI { op: IBin::Add, .. }));
        assert!(matches!(f.body[2], Ir::Ret(Some(_))));
    }

    #[test]
    fn division_becomes_library_call() {
        let f = lower_fn("int f(int a, int b) { return a / b + a % b; }");
        let calls: Vec<&str> = f
            .body
            .iter()
            .filter_map(|i| match i {
                Ir::Call { name, .. } => Some(name.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(calls, ["__divq", "__remq"]);
    }

    #[test]
    fn float_division_stays_inline() {
        let f = lower_fn("float f(float a, float b) { return a / b; }");
        assert!(f.body.iter().any(|i| matches!(i, Ir::BinF { op: FBin::Div, .. })));
        assert!(!f.body.iter().any(|i| matches!(i, Ir::Call { .. })));
    }

    #[test]
    fn while_loop_shape() {
        let f = lower_fn("int f(int n) { while (n > 0) { n = n - 1; } return n; }");
        let labels = f.body.iter().filter(|i| matches!(i, Ir::Label(_))).count();
        let branches = f
            .body
            .iter()
            .filter(|i| matches!(i, Ir::Branch { .. } | Ir::Jump(_)))
            .count();
        assert_eq!(labels, 2);
        assert_eq!(branches, 2);
    }

    #[test]
    fn short_circuit_does_not_eval_rhs_eagerly() {
        let u = lower("int g(int x) { return x; } int f(int a) { return a && g(a); }");
        let f = &u.functions[1];
        // The call must come after the branch that can skip it.
        let branch_at = f.body.iter().position(|i| matches!(i, Ir::Branch { .. })).unwrap();
        let call_at = f.body.iter().position(|i| matches!(i, Ir::Call { .. })).unwrap();
        assert!(branch_at < call_at);
    }

    #[test]
    fn global_access_lowered() {
        let u = lower("int g; int a[4]; int f(int i) { g = a[i]; return g; }");
        let f = &u.functions[0];
        assert!(f.body.iter().any(|i| matches!(i, Ir::LdElem { .. })));
        assert!(f.body.iter().any(|i| matches!(i, Ir::StGlobal { .. })));
        assert!(f.body.iter().any(|i| matches!(i, Ir::LdGlobal { .. })));
    }

    #[test]
    fn fnptr_flow() {
        let f = lower(
            "int t(int x) { return x; } fnptr h; int f() { h = &t; return h(5); }",
        );
        let m = &f.functions[1];
        assert!(m.body.iter().any(|i| matches!(i, Ir::LdFnAddr { .. })));
        assert!(m.body.iter().any(|i| matches!(i, Ir::CallInd { .. })));
    }

    #[test]
    fn implicit_conversions_emit_cvt() {
        let f = lower_fn("float f(int x) { return x + 0.5; }");
        assert!(f.body.iter().any(|i| matches!(i, Ir::CvtIF { .. })));
        let g = lower_fn("int f(float x) { return int(x); }");
        assert!(g.body.iter().any(|i| matches!(i, Ir::CvtFI { .. })));
    }

    #[test]
    fn missing_return_synthesized() {
        let f = lower_fn("int f(int x) { x = x + 1; }");
        assert!(matches!(f.body.last(), Some(Ir::Ret(Some(Val::I(0))))));
    }

    #[test]
    fn fnptr_equality_is_integer_compare() {
        let u = lower(
            "int t(int x) { return x; } fnptr h; int f() { return h == &t; }",
        );
        let f = &u.functions[1];
        assert!(f.body.iter().any(|i| matches!(i, Ir::CmpI { op: Cmp::Eq, .. })));
    }
}
