//! Abstract syntax for mini-C.
//!
//! mini-C is the source language of the reproduction's compiler: a small,
//! C-shaped language with 64-bit integers, IEEE doubles, global scalars and
//! fixed-size global arrays, exported and `static` functions, and function
//! pointers (`fnptr`) — the paper's "procedure variables", whose presence is
//! what keeps OM-full from deleting the last few PV loads.

use std::fmt;

/// Scalar types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Type {
    /// 64-bit signed integer.
    Int,
    /// IEEE double.
    Float,
    /// Pointer to a function (procedure variable).
    Fnptr,
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Int => write!(f, "int"),
            Type::Float => write!(f, "float"),
            Type::Fnptr => write!(f, "fnptr"),
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Shl,
    Shr,
    BitAnd,
    BitXor,
    BitOr,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    /// Short-circuit logical and/or.
    LogAnd,
    LogOr,
}

impl BinOp {
    /// True for operators that yield `int` regardless of operand type.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }

    /// True for operators restricted to `int` operands.
    pub fn int_only(self) -> bool {
        matches!(
            self,
            BinOp::Rem
                | BinOp::Shl
                | BinOp::Shr
                | BinOp::BitAnd
                | BinOp::BitXor
                | BinOp::BitOr
                | BinOp::LogAnd
                | BinOp::LogOr
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    Neg,
    /// Logical not (yields 0/1).
    Not,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    IntLit(i64),
    FloatLit(f64),
    /// A variable reference: local, parameter, or global scalar.
    Var(String),
    /// Global array element: `name[index]`.
    Index { name: String, index: Box<Expr> },
    Unary { op: UnOp, expr: Box<Expr> },
    Binary { op: BinOp, lhs: Box<Expr>, rhs: Box<Expr> },
    /// Direct call: `name(args)`. If `name` is a variable of type `fnptr`,
    /// this is an indirect call through a procedure variable.
    Call { name: String, args: Vec<Expr> },
    /// `&name` — address of a function.
    AddrOf(String),
    /// Casts: `int(e)` / `float(e)`.
    Cast { ty: Type, expr: Box<Expr> },
}

/// L-values assignable by `=`.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    Var(String),
    Index { name: String, index: Box<Expr> },
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Local declaration with mandatory initializer: `int x = e;`.
    Local { ty: Type, name: String, init: Expr },
    Assign { lhs: LValue, rhs: Expr },
    If {
        cond: Expr,
        then_body: Vec<Stmt>,
        else_body: Vec<Stmt>,
    },
    While { cond: Expr, body: Vec<Stmt> },
    For {
        init: Option<Box<Stmt>>,
        cond: Expr,
        step: Option<Box<Stmt>>,
        body: Vec<Stmt>,
    },
    Return(Option<Expr>),
    /// Expression evaluated for effect (calls).
    Expr(Expr),
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    pub ty: Type,
    pub name: String,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    pub name: String,
    /// `static` functions are unexported (local visibility).
    pub is_static: bool,
    pub ret: Option<Type>,
    pub params: Vec<Param>,
    pub body: Vec<Stmt>,
}

/// Initializer for a global definition.
#[derive(Debug, Clone, PartialEq)]
pub enum GlobalInit {
    /// Zero-initialized (goes to `.bss`/`.sbss`).
    Zero,
    Int(i64),
    Float(f64),
    /// `&function` for a `fnptr` global.
    FnAddr(String),
    /// Constant element list for an array.
    List(Vec<i64>),
    FloatList(Vec<f64>),
}

/// A global variable definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Global {
    pub name: String,
    pub is_static: bool,
    pub ty: Type,
    /// `Some(n)` for an array of `n` elements, `None` for a scalar.
    pub array_len: Option<u64>,
    pub init: GlobalInit,
}

impl Global {
    /// Size in bytes (elements are 8 bytes; `int`, `float`, and `fnptr` are
    /// all quadwords).
    pub fn size_bytes(&self) -> u64 {
        8 * self.array_len.unwrap_or(1)
    }
}

/// An `extern` declaration of a function defined elsewhere.
#[derive(Debug, Clone, PartialEq)]
pub struct ExternFn {
    pub name: String,
    pub ret: Option<Type>,
    pub params: Vec<Type>,
}

/// An `extern` declaration of a global defined elsewhere.
#[derive(Debug, Clone, PartialEq)]
pub struct ExternGlobal {
    pub name: String,
    pub ty: Type,
    pub array_len: Option<u64>,
}

/// One compilation unit (a source file).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Unit {
    pub name: String,
    pub globals: Vec<Global>,
    pub extern_fns: Vec<ExternFn>,
    pub extern_globals: Vec<ExternGlobal>,
    pub functions: Vec<Function>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_sizes() {
        let scalar = Global {
            name: "x".into(),
            is_static: false,
            ty: Type::Int,
            array_len: None,
            init: GlobalInit::Zero,
        };
        assert_eq!(scalar.size_bytes(), 8);
        let arr = Global { array_len: Some(100), ..scalar };
        assert_eq!(arr.size_bytes(), 800);
    }

    #[test]
    fn binop_classification() {
        assert!(BinOp::Lt.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::Shl.int_only());
        assert!(!BinOp::Div.int_only());
    }

    #[test]
    fn type_display() {
        assert_eq!(Type::Fnptr.to_string(), "fnptr");
    }
}
