//! Symbols: procedures, data, commons, and external references.
//!
//! The symbol table carries the two hints the paper says OM gets from the
//! loader format: procedure boundaries (every procedure is a symbol with a
//! size) and the GP value each procedure uses (here a `gp_group`, resolved to
//! a concrete GP value at layout time — one group per compilation unit's GAT,
//! merged by the linker when tables fit together).

use crate::section::SecId;
use std::fmt;

/// Index of a symbol within one module's symbol table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SymId(pub u32);

impl fmt::Display for SymId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

/// Whether a symbol is visible to other modules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Visibility {
    /// Exported: participates in cross-module resolution. An exported
    /// procedure might also be preempted under dynamic linking, which is why
    /// the compiler cannot optimize calls to it (paper §1, footnote 1).
    Exported,
    /// Local (`static`): resolvable only within its module; the compiler may
    /// optimize intra-module calls to it, and does in compile-all mode.
    Local,
}

/// What a symbol denotes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymbolDef {
    /// A procedure at `offset` in this module's `.text`, occupying `size`
    /// bytes, using the GP of GAT group `gp_group`.
    Proc {
        offset: u64,
        size: u64,
        gp_group: u32,
    },
    /// A data object in a specific section.
    Data { sec: SecId, offset: u64, size: u64 },
    /// A common (tentatively-defined) object: the linker allocates it,
    /// sorting commons by size near the GAT (an OM-simple transformation the
    /// standard linker applies only trivially).
    Common { size: u64, align: u64 },
    /// Defined in some other module.
    Extern,
}

/// A symbol-table entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Symbol {
    /// Link name, unique among exported symbols at link time.
    pub name: String,
    pub vis: Visibility,
    pub def: SymbolDef,
}

impl Symbol {
    /// Creates an exported procedure symbol.
    pub fn proc(name: impl Into<String>, offset: u64, size: u64, gp_group: u32) -> Symbol {
        Symbol {
            name: name.into(),
            vis: Visibility::Exported,
            def: SymbolDef::Proc { offset, size, gp_group },
        }
    }

    /// Creates an external reference.
    pub fn external(name: impl Into<String>) -> Symbol {
        Symbol {
            name: name.into(),
            vis: Visibility::Exported,
            def: SymbolDef::Extern,
        }
    }

    /// Creates a data symbol.
    pub fn data(name: impl Into<String>, sec: SecId, offset: u64, size: u64) -> Symbol {
        Symbol {
            name: name.into(),
            vis: Visibility::Exported,
            def: SymbolDef::Data { sec, offset, size },
        }
    }

    /// Creates a common symbol of `size` bytes.
    pub fn common(name: impl Into<String>, size: u64, align: u64) -> Symbol {
        Symbol {
            name: name.into(),
            vis: Visibility::Exported,
            def: SymbolDef::Common { size, align },
        }
    }

    /// Marks the symbol local (`static`) and returns it.
    pub fn local(mut self) -> Symbol {
        self.vis = Visibility::Local;
        self
    }

    /// True if this entry defines the symbol (anything but `Extern`).
    pub fn is_defined(&self) -> bool {
        !matches!(self.def, SymbolDef::Extern)
    }

    /// True for procedure definitions.
    pub fn is_proc(&self) -> bool {
        matches!(self.def, SymbolDef::Proc { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_fields() {
        let p = Symbol::proc("main", 0, 64, 0);
        assert!(p.is_proc() && p.is_defined());
        assert_eq!(p.vis, Visibility::Exported);

        let e = Symbol::external("printf");
        assert!(!e.is_defined());

        let c = Symbol::common("work", 800, 8);
        assert!(c.is_defined() && !c.is_proc());
    }

    #[test]
    fn local_marks_visibility() {
        let s = Symbol::proc("helper", 128, 32, 0).local();
        assert_eq!(s.vis, Visibility::Local);
    }
}
