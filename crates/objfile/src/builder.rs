//! A convenience builder for assembling modules instruction by instruction.
//!
//! The compiler backend (and tests that hand-write object code) use
//! [`ModuleBuilder`] to emit instructions, attach relocations at the current
//! offset, intern GAT slots, and define symbols, without tracking byte
//! offsets by hand.

use crate::module::{LitaEntry, Module};
use crate::reloc::{Reloc, RelocKind};
use crate::section::SecId;
use crate::symbol::{Symbol, SymbolDef, SymId, Visibility};
use om_alpha::{encode, Inst};
use std::collections::HashMap;

/// Incrementally builds a [`Module`].
#[derive(Debug)]
pub struct ModuleBuilder {
    module: Module,
    lita_interned: HashMap<(SymId, i64), u32>,
    names: HashMap<String, SymId>,
}

impl ModuleBuilder {
    /// Starts a new module.
    pub fn new(name: impl Into<String>) -> ModuleBuilder {
        ModuleBuilder {
            module: Module::new(name),
            lita_interned: HashMap::new(),
            names: HashMap::new(),
        }
    }

    /// Current text offset (the offset the next emitted instruction gets).
    pub fn here(&self) -> u64 {
        self.module.text.len() as u64
    }

    /// Emits an instruction, returning its text offset.
    pub fn emit(&mut self, inst: Inst) -> u64 {
        let off = self.here();
        self.module.text.extend_from_slice(&encode(inst).to_le_bytes());
        off
    }

    /// Emits an instruction with a relocation attached at its offset.
    pub fn emit_reloc(&mut self, inst: Inst, kind: RelocKind) -> u64 {
        let off = self.emit(inst);
        self.module.relocs.push(Reloc::text(off, kind));
        off
    }

    /// Attaches a relocation at an arbitrary section offset.
    pub fn reloc_at(&mut self, sec: SecId, offset: u64, kind: RelocKind) {
        self.module.relocs.push(Reloc { sec, offset, kind });
    }

    /// Interns a GAT slot for `sym + addend`, returning its index. The same
    /// `(sym, addend)` pair always maps to the same slot — compilers keep one
    /// GAT entry per distinct address, and the linker dedups *across* modules.
    pub fn lita_slot(&mut self, sym: SymId, addend: i64) -> u32 {
        if let Some(&i) = self.lita_interned.get(&(sym, addend)) {
            return i;
        }
        let i = self.module.lita.len() as u32;
        self.module.lita.push(LitaEntry { sym, addend });
        self.lita_interned.insert((sym, addend), i);
        i
    }

    /// Adds (or returns the existing id of) a symbol named `name`. If an
    /// `Extern` placeholder exists and `sym` is a definition, the definition
    /// replaces the placeholder.
    pub fn add_symbol(&mut self, sym: Symbol) -> SymId {
        if let Some(&id) = self.names.get(&sym.name) {
            let existing = &mut self.module.symbols[id.0 as usize];
            if !existing.is_defined() && sym.is_defined() {
                *existing = sym;
            }
            return id;
        }
        let id = SymId(self.module.symbols.len() as u32);
        self.names.insert(sym.name.clone(), id);
        self.module.symbols.push(sym);
        id
    }

    /// Declares an external reference by name.
    pub fn external(&mut self, name: &str) -> SymId {
        self.add_symbol(Symbol::external(name))
    }

    /// Appends `bytes` to a data-carrying section, returning the offset.
    ///
    /// # Panics
    ///
    /// Panics for zero-fill sections; use [`ModuleBuilder::reserve`] instead.
    pub fn append_data(&mut self, sec: SecId, bytes: &[u8]) -> u64 {
        let buf = match sec {
            SecId::Data => &mut self.module.data,
            SecId::Sdata => &mut self.module.sdata,
            _ => panic!("append_data on {sec}"),
        };
        let off = buf.len() as u64;
        buf.extend_from_slice(bytes);
        off
    }

    /// Reserves `size` zero-filled bytes in `.bss` or `.sbss`, returning the
    /// offset.
    ///
    /// # Panics
    ///
    /// Panics for sections that carry bytes.
    pub fn reserve(&mut self, sec: SecId, size: u64, align: u64) -> u64 {
        let counter = match sec {
            SecId::Sbss => &mut self.module.sbss_size,
            SecId::Bss => &mut self.module.bss_size,
            _ => panic!("reserve on {sec}"),
        };
        let off = counter.div_ceil(align) * align;
        *counter = off + size;
        off
    }

    /// Defines `name` as a procedure starting at `start` and ending at the
    /// current offset.
    pub fn define_proc(
        &mut self,
        name: &str,
        start: u64,
        gp_group: u32,
        vis: Visibility,
    ) -> SymId {
        let size = self.here() - start;
        let id = self.add_symbol(Symbol {
            name: name.to_string(),
            vis,
            def: SymbolDef::Proc { offset: start, size, gp_group },
        });
        // add_symbol keeps an existing definition; overwrite for re-definition
        // of a forward-declared proc.
        self.module.symbols[id.0 as usize] = Symbol {
            name: name.to_string(),
            vis,
            def: SymbolDef::Proc { offset: start, size, gp_group },
        };
        id
    }

    /// Finishes the module, sorting relocations and validating.
    ///
    /// # Errors
    ///
    /// Returns [`crate::error::ObjError`] if the module is malformed.
    pub fn finish(mut self) -> Result<Module, crate::error::ObjError> {
        self.module
            .relocs
            .sort_by_key(|r| (r.sec, r.offset, reloc_rank(&r.kind)));
        self.module.validate()?;
        Ok(self.module)
    }
}

/// Secondary sort key so a `Literal` at an offset precedes any `Lituse` that
/// (unusually) shares the offset.
fn reloc_rank(kind: &RelocKind) -> u8 {
    match kind {
        RelocKind::Gpdisp { .. } => 0,
        RelocKind::Literal { .. } => 1,
        _ => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_alpha::Reg;

    #[test]
    fn builder_assembles_a_call_site() {
        let mut b = ModuleBuilder::new("m");
        let callee = b.external("callee");
        let slot = b.lita_slot(callee, 0);
        let start = b.here();
        let load = b.emit_reloc(Inst::ldq(Reg::PV, 0, Reg::GP), RelocKind::Literal { lita: slot });
        b.emit_reloc(Inst::jsr(Reg::RA, Reg::PV), RelocKind::LituseJsr { load_offset: load });
        b.emit(Inst::ret());
        b.define_proc("caller", start, 0, Visibility::Exported);
        let m = b.finish().unwrap();
        assert_eq!(m.text.len(), 12);
        assert_eq!(m.lita.len(), 1);
        assert_eq!(m.procedures().len(), 1);
    }

    #[test]
    fn lita_slots_are_interned() {
        let mut b = ModuleBuilder::new("m");
        let s = b.external("x");
        assert_eq!(b.lita_slot(s, 0), b.lita_slot(s, 0));
        assert_ne!(b.lita_slot(s, 0), b.lita_slot(s, 8));
    }

    #[test]
    fn externals_are_deduplicated_and_definitions_win() {
        let mut b = ModuleBuilder::new("m");
        let e1 = b.external("f");
        let e2 = b.external("f");
        assert_eq!(e1, e2);
        b.emit(Inst::ret());
        let d = b.define_proc("f", 0, 0, Visibility::Exported);
        assert_eq!(d, e1);
        let m = b.finish().unwrap();
        assert!(m.symbol(d).is_proc());
    }

    #[test]
    fn reserve_aligns() {
        let mut b = ModuleBuilder::new("m");
        assert_eq!(b.reserve(SecId::Bss, 3, 8), 0);
        assert_eq!(b.reserve(SecId::Bss, 8, 8), 8);
        assert_eq!(b.reserve(SecId::Sbss, 8, 8), 0);
    }

    #[test]
    fn append_data_returns_offsets() {
        let mut b = ModuleBuilder::new("m");
        assert_eq!(b.append_data(SecId::Sdata, &[0; 8]), 0);
        assert_eq!(b.append_data(SecId::Sdata, &[0; 4]), 8);
        assert_eq!(b.append_data(SecId::Data, &[1]), 0);
    }
}
