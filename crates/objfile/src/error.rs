//! Error type for object-format operations.

use std::fmt;

/// Errors produced while constructing, validating, or (de)serializing object
/// files and archives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObjError {
    /// A structural invariant of a module is violated.
    Malformed { module: String, what: String },
    /// Binary input is not a well-formed object file or archive.
    BadFormat { what: String },
    /// An archive member name was not found.
    NoSuchMember { name: String },
}

impl fmt::Display for ObjError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjError::Malformed { module, what } => {
                write!(f, "malformed module `{module}`: {what}")
            }
            ObjError::BadFormat { what } => write!(f, "bad object format: {what}"),
            ObjError::NoSuchMember { name } => write!(f, "no archive member named `{name}`"),
        }
    }
}

impl std::error::Error for ObjError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = ObjError::Malformed { module: "m".into(), what: "bad".into() };
        assert_eq!(e.to_string(), "malformed module `m`: bad");
        let e = ObjError::NoSuchMember { name: "libm".into() };
        assert!(e.to_string().contains("libm"));
    }
}
