//! Relocatable object modules.
//!
//! A [`Module`] is the unit of separate compilation: encoded text, data
//! sections, a typed GAT literal pool (`.lita`), a symbol table, and
//! relocations. [`Module::validate`] checks the structural invariants the
//! downstream consumers (linker, OM) rely on, mirroring how the real OM can
//! "be thorough but still conservative in understanding the input object
//! code" by trusting the loader symbol table and relocation records.

use crate::error::ObjError;
use crate::reloc::{Reloc, RelocKind};
use crate::section::SecId;
use crate::symbol::{Symbol, SymbolDef, SymId};
use std::collections::HashMap;

/// One slot of a module's global address table: the 64-bit address of
/// `sym + addend`, filled in at link time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LitaEntry {
    pub sym: SymId,
    pub addend: i64,
}

/// A relocatable object module.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Module {
    /// Module name (source file stem by convention).
    pub name: String,
    /// Encoded instruction bytes (little-endian 32-bit words).
    pub text: Vec<u8>,
    /// Initialized data.
    pub data: Vec<u8>,
    /// Small initialized data (placed near the GAT at link time).
    pub sdata: Vec<u8>,
    /// Size in bytes of small zero-initialized data.
    pub sbss_size: u64,
    /// Size in bytes of zero-initialized data.
    pub bss_size: u64,
    /// The module's GAT as typed slots.
    pub lita: Vec<LitaEntry>,
    /// Symbol table.
    pub symbols: Vec<Symbol>,
    /// Relocations, sorted by `(sec, offset)`.
    pub relocs: Vec<Reloc>,
}

impl Module {
    /// Creates an empty module.
    pub fn new(name: impl Into<String>) -> Module {
        Module { name: name.into(), ..Module::default() }
    }

    /// Looks up a symbol by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range (module failed validation).
    pub fn symbol(&self, id: SymId) -> &Symbol {
        &self.symbols[id.0 as usize]
    }

    /// Byte length of a section.
    pub fn section_len(&self, sec: SecId) -> u64 {
        match sec {
            SecId::Text => self.text.len() as u64,
            SecId::Data => self.data.len() as u64,
            SecId::Sdata => self.sdata.len() as u64,
            SecId::Sbss => self.sbss_size,
            SecId::Bss => self.bss_size,
        }
    }

    /// Iterates over `(id, symbol)` pairs.
    pub fn symbols_with_ids(&self) -> impl Iterator<Item = (SymId, &Symbol)> {
        self.symbols
            .iter()
            .enumerate()
            .map(|(i, s)| (SymId(i as u32), s))
    }

    /// Finds a symbol id by name (first match).
    pub fn find_symbol(&self, name: &str) -> Option<SymId> {
        self.symbols
            .iter()
            .position(|s| s.name == name)
            .map(|i| SymId(i as u32))
    }

    /// Relocations applying to the text section, in offset order.
    pub fn text_relocs(&self) -> impl Iterator<Item = &Reloc> {
        self.relocs.iter().filter(|r| r.sec == SecId::Text)
    }

    /// A map from text offset to the relocations at that offset.
    pub fn text_reloc_index(&self) -> HashMap<u64, Vec<&Reloc>> {
        let mut map: HashMap<u64, Vec<&Reloc>> = HashMap::new();
        for r in self.text_relocs() {
            map.entry(r.offset).or_default().push(r);
        }
        map
    }

    /// Checks the structural invariants:
    ///
    /// * text length is a multiple of 4,
    /// * relocations are sorted by `(sec, offset)`, their whole patched
    ///   field lies inside the section, text relocations are
    ///   instruction-aligned, and data sections carry only `RefQuad`s,
    /// * `Literal` relocations index existing `.lita` slots,
    /// * `Lituse*` relocations point at a text offset carrying a `Literal`,
    /// * `Gpdisp` pairs land on instruction boundaries inside the text,
    /// * symbol definitions lie inside their sections,
    /// * `.lita` entries name in-range symbols.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant as an [`ObjError`].
    pub fn validate(&self) -> Result<(), ObjError> {
        if !self.text.len().is_multiple_of(4) {
            return Err(ObjError::Malformed {
                module: self.name.clone(),
                what: format!("text length {} not a multiple of 4", self.text.len()),
            });
        }
        let err = |what: String| ObjError::Malformed { module: self.name.clone(), what };

        let mut prev: Option<(SecId, u64)> = None;
        let mut literal_offsets: Vec<u64> = Vec::new();
        for r in &self.relocs {
            if let Some(p) = prev {
                if (r.sec, r.offset) < p {
                    return Err(err(format!("relocations out of order at {r}")));
                }
            }
            prev = Some((r.sec, r.offset));
            // Every relocation patches (or annotates) a field of a known
            // width; the *whole* field must lie inside the section, and text
            // fields must sit on an instruction boundary. Checking the width
            // here (not just `offset < len`) is what lets the linker's patch
            // writes trust their slices: a relocation naming the last two
            // bytes of a section would otherwise pass validation and then
            // index out of bounds at link time.
            let limit = self.section_len(r.sec);
            match (r.sec, &r.kind) {
                (SecId::Text, _) => {
                    if r.offset % 4 != 0 || r.offset + 4 > limit {
                        return Err(err(format!(
                            "text relocation not on a whole instruction: {r}"
                        )));
                    }
                }
                (SecId::Data | SecId::Sdata, RelocKind::RefQuad { .. }) => {
                    if r.offset + 8 > limit {
                        return Err(err(format!("refquad field beyond section end: {r}")));
                    }
                }
                (_, RelocKind::RefQuad { .. }) => {
                    return Err(err(format!("refquad in zero-fill section: {r}")));
                }
                _ => {
                    return Err(err(format!("text-only relocation in data section: {r}")));
                }
            }
            if let RelocKind::Literal { lita } = r.kind {
                if lita as usize >= self.lita.len() {
                    return Err(err(format!("literal index {lita} out of range: {r}")));
                }
                literal_offsets.push(r.offset);
            }
        }
        for r in &self.relocs {
            match r.kind {
                RelocKind::LituseBase { load_offset }
                | RelocKind::LituseJsr { load_offset }
                | RelocKind::LituseAddr { load_offset }
                    if literal_offsets.binary_search(&load_offset).is_err() => {
                        return Err(err(format!("lituse points at non-literal: {r}")));
                    }
                RelocKind::Gpdisp { pair_offset, anchor, .. } => {
                    let lda = r.offset as i64 + pair_offset;
                    if r.offset % 4 != 0
                        || lda % 4 != 0
                        || lda < 0
                        || lda as u64 >= self.text.len() as u64
                        || anchor % 4 != 0
                        || anchor > self.text.len() as u64
                    {
                        return Err(err(format!("malformed gpdisp: {r}")));
                    }
                }
                RelocKind::BrAddr { sym, .. }
                | RelocKind::RefQuad { sym, .. }
                | RelocKind::Gprel16 { sym, .. }
                | RelocKind::GprelHigh { sym, .. }
                | RelocKind::GprelLow { sym, .. }
                    if sym.0 as usize >= self.symbols.len() => {
                        return Err(err(format!("relocation names unknown symbol: {r}")));
                    }
                _ => {}
            }
        }
        for (i, entry) in self.lita.iter().enumerate() {
            if entry.sym.0 as usize >= self.symbols.len() {
                return Err(err(format!("lita[{i}] names unknown symbol {}", entry.sym)));
            }
        }
        for sym in &self.symbols {
            match sym.def {
                SymbolDef::Proc { offset, size, .. }
                    if (offset % 4 != 0 || offset + size > self.text.len() as u64) => {
                        return Err(err(format!("procedure {} outside text", sym.name)));
                    }
                SymbolDef::Data { sec, offset, size }
                    if (sec == SecId::Text || offset + size > self.section_len(sec)) => {
                        return Err(err(format!("data symbol {} outside {}", sym.name, sec)));
                    }
                _ => {}
            }
        }
        Ok(())
    }

    /// The procedures defined in this module, sorted by text offset.
    pub fn procedures(&self) -> Vec<(SymId, &Symbol)> {
        let mut procs: Vec<(SymId, &Symbol)> = self
            .symbols_with_ids()
            .filter(|(_, s)| s.is_proc())
            .collect();
        procs.sort_by_key(|(_, s)| match s.def {
            SymbolDef::Proc { offset, .. } => offset,
            _ => unreachable!(),
        });
        procs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::Visibility;

    fn tiny_module() -> Module {
        let mut m = Module::new("tiny");
        m.text = vec![0; 16];
        m.symbols.push(Symbol::proc("f", 0, 8, 0));
        m.symbols.push(Symbol::external("g"));
        m.lita.push(LitaEntry { sym: SymId(1), addend: 0 });
        m.relocs.push(Reloc::text(4, RelocKind::Literal { lita: 0 }));
        m.relocs.push(Reloc::text(8, RelocKind::LituseJsr { load_offset: 4 }));
        m
    }

    #[test]
    fn valid_module_passes() {
        tiny_module().validate().unwrap();
    }

    #[test]
    fn unsorted_relocs_fail() {
        let mut m = tiny_module();
        m.relocs.reverse();
        assert!(m.validate().is_err());
    }

    #[test]
    fn literal_out_of_range_fails() {
        let mut m = tiny_module();
        m.relocs[0].kind = RelocKind::Literal { lita: 7 };
        assert!(m.validate().is_err());
    }

    #[test]
    fn lituse_must_point_at_literal() {
        let mut m = tiny_module();
        m.relocs[1].kind = RelocKind::LituseJsr { load_offset: 0 };
        assert!(m.validate().is_err());
    }

    #[test]
    fn procedure_outside_text_fails() {
        let mut m = tiny_module();
        m.symbols[0] = Symbol::proc("f", 0, 64, 0);
        assert!(m.validate().is_err());
    }

    #[test]
    fn truncated_patch_field_fails() {
        // Last two bytes of text: `offset < len` holds, but the 4-byte
        // instruction field does not fit — the former panic path in the
        // linker's patch writes.
        let mut m = tiny_module();
        m.relocs.push(Reloc::text(14, RelocKind::LituseJsr { load_offset: 4 }));
        assert!(m.validate().is_err());
    }

    #[test]
    fn unaligned_text_reloc_fails() {
        let mut m = tiny_module();
        m.relocs[0] = Reloc::text(2, RelocKind::Literal { lita: 0 });
        m.relocs.truncate(1);
        assert!(m.validate().is_err());
    }

    #[test]
    fn refquad_field_must_fit_its_section() {
        let mut m = tiny_module();
        m.data = vec![0; 16];
        m.relocs.push(Reloc { sec: SecId::Data, offset: 12, kind: RelocKind::RefQuad { sym: SymId(1), addend: 0 } });
        assert!(m.validate().is_err());
        m.relocs.last_mut().unwrap().offset = 8;
        m.validate().unwrap();
    }

    #[test]
    fn text_kind_reloc_in_data_fails() {
        let mut m = tiny_module();
        m.data = vec![0; 16];
        m.relocs.push(Reloc { sec: SecId::Data, offset: 0, kind: RelocKind::Literal { lita: 0 } });
        assert!(m.validate().is_err());
    }

    #[test]
    fn ragged_text_fails() {
        let mut m = tiny_module();
        m.text.push(0);
        assert!(m.validate().is_err());
    }

    #[test]
    fn symbol_lookup() {
        let m = tiny_module();
        assert_eq!(m.find_symbol("g"), Some(SymId(1)));
        assert_eq!(m.find_symbol("nope"), None);
        assert_eq!(m.symbol(SymId(0)).vis, Visibility::Exported);
    }

    #[test]
    fn procedures_sorted_by_offset() {
        let mut m = tiny_module();
        m.text = vec![0; 32];
        m.symbols.push(Symbol::proc("a", 16, 8, 0));
        m.symbols.push(Symbol::proc("b", 8, 8, 0));
        let names: Vec<&str> = m.procedures().iter().map(|(_, s)| s.name.as_str()).collect();
        assert_eq!(names, ["f", "b", "a"]);
    }

    #[test]
    fn section_lengths() {
        let mut m = tiny_module();
        m.bss_size = 128;
        assert_eq!(m.section_len(SecId::Text), 16);
        assert_eq!(m.section_len(SecId::Bss), 128);
        assert_eq!(m.section_len(SecId::Sdata), 0);
    }
}
